package fedprophet_test

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fedprophet/internal/fldist"
	"fedprophet/pkg/fedprophet"
)

// fastOpts shrinks a run to a couple of seconds for API-contract tests.
func fastOpts(method string) []fedprophet.Option {
	return []fedprophet.Option{
		fedprophet.WithMethod(method),
		fedprophet.WithScale("trimmed"),
		fedprophet.WithSeed(3),
		fedprophet.WithClients(6),
		fedprophet.WithClientsPerRound(3),
		fedprophet.WithLocalIters(2),
	}
}

func TestRegistryHasPaperRoster(t *testing.T) {
	have := map[string]bool{}
	for _, name := range fedprophet.Methods() {
		have[name] = true
	}
	for _, want := range []string{
		"jFAT", "FedDF-AT", "FedET-AT", "HeteroFL-AT", "FedDrop-AT",
		"FedRolex-AT", "FedRBN", "FedProphet",
	} {
		if !have[want] {
			t.Fatalf("method %q missing from registry (have %v)", want, fedprophet.Methods())
		}
	}
}

func TestUnknownMethodWorkloadScaleErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := fedprophet.Run(ctx, fedprophet.WithMethod("NoSuchMethod")); err == nil {
		t.Fatal("unknown method must error")
	}
	if _, err := fedprophet.Run(ctx, fedprophet.WithWorkload("imagenet")); err == nil {
		t.Fatal("unknown workload must error")
	}
	if _, err := fedprophet.Run(ctx, fedprophet.WithScale("galactic")); err == nil {
		t.Fatal("unknown scale must error")
	}
}

func TestRoundHookOneEventPerRound(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const rounds = 3
	var events []fedprophet.RoundMetrics
	res, err := fedprophet.Run(context.Background(), append(fastOpts("jFAT"),
		fedprophet.WithRounds(rounds),
		fedprophet.WithRoundHook(func(m fedprophet.RoundMetrics) {
			events = append(events, m)
		}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != rounds {
		t.Fatalf("hook fired %d times, want %d", len(events), rounds)
	}
	if len(res.History) != rounds {
		t.Fatalf("history has %d rounds, want %d", len(res.History), rounds)
	}
	for i, m := range events {
		if m.Round != i {
			t.Fatalf("event %d reports round %d", i, m.Round)
		}
		if m != res.History[i] {
			t.Fatalf("streamed event %d differs from history entry", i)
		}
	}
	if res.Model == nil {
		t.Fatal("completed run must carry the trained model")
	}
}

func TestRoundChannelStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const rounds = 3
	ch := make(chan fedprophet.RoundMetrics, rounds)
	if _, err := fedprophet.Run(context.Background(), append(fastOpts("jFAT"),
		fedprophet.WithRounds(rounds),
		fedprophet.WithRoundChannel(ch),
	)...); err != nil {
		t.Fatal(err)
	}
	close(ch)
	got := 0
	for range ch {
		got++
	}
	if got != rounds {
		t.Fatalf("channel received %d events, want %d", got, rounds)
	}
}

func TestCancellationMidRoundReturnsPartialProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const rounds = 50 // far more than we let finish
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	start := time.Now()
	res, err := fedprophet.Run(ctx, append(fastOpts("jFAT"),
		fedprophet.WithRounds(rounds),
		fedprophet.WithRoundHook(func(m fedprophet.RoundMetrics) {
			if m.Round == 1 {
				cancel()
			}
		}),
	)...)
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("canceled run must return an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error must wrap context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("canceled run must return the partial result")
	}
	if n := len(res.History); n < 2 || n >= rounds {
		t.Fatalf("partial history has %d rounds, want ≥2 and <%d", n, rounds)
	}
	// "Promptly": a full 50-round run takes tens of seconds; aborting after
	// round 1 must come back in a small fraction of that.
	if elapsed > 15*time.Second {
		t.Fatalf("cancellation took %v, not prompt", elapsed)
	}
}

func TestCancellationBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := fedprophet.Run(ctx, fastOpts("jFAT")...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx must surface context.Canceled, got %v", err)
	}
}

// The headline determinism guarantee: WithClientParallelism(4) reproduces
// the sequential run bit-for-bit for a fixed seed — identical accuracies
// and identical per-round loss/latency series.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, method := range []string{"jFAT", "FedRolex-AT", "FedProphet"} {
		run := func(par int) *fedprophet.Result {
			res, err := fedprophet.Run(context.Background(), append(fastOpts(method),
				fedprophet.WithRounds(3),
				fedprophet.WithRoundsPerModule(2),
				fedprophet.WithClientParallelism(par),
			)...)
			if err != nil {
				t.Fatalf("%s par=%d: %v", method, par, err)
			}
			return res
		}
		seq := run(1)
		par := run(4)

		if seq.CleanAcc != par.CleanAcc || seq.PGDAcc != par.PGDAcc || seq.AAAcc != par.AAAcc {
			t.Fatalf("%s: accuracies diverge: seq %v/%v/%v vs par %v/%v/%v", method,
				seq.CleanAcc, seq.PGDAcc, seq.AAAcc, par.CleanAcc, par.PGDAcc, par.AAAcc)
		}
		if len(seq.History) != len(par.History) {
			t.Fatalf("%s: history lengths diverge: %d vs %d", method, len(seq.History), len(par.History))
		}
		for i := range seq.History {
			if seq.History[i] != par.History[i] {
				t.Fatalf("%s: round %d telemetry diverges:\nseq %+v\npar %+v",
					method, i, seq.History[i], par.History[i])
			}
		}
		if seq.Extra["comm_up_bytes"] != par.Extra["comm_up_bytes"] {
			t.Fatalf("%s: communication accounting diverges", method)
		}
	}
}

func TestPluggableSubstrate(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// A robust aggregator, a deterministic sampler and a one-step attack
	// must all plug in without disturbing the run contract.
	res, err := fedprophet.Run(context.Background(), append(fastOpts("jFAT"),
		fedprophet.WithRounds(2),
		fedprophet.WithAggregator(fedprophet.TrimmedMean{Frac: 0.2}),
		fedprophet.WithSampler(&fedprophet.RoundRobinSampler{}),
		fedprophet.WithAttack(fedprophet.FGSMAttack{}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 {
		t.Fatalf("history has %d rounds, want 2", len(res.History))
	}
}

func TestStandardTrainingViaTrainPGDZero(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	res, err := fedprophet.Run(context.Background(), append(fastOpts("jFAT"),
		fedprophet.WithRounds(2),
		fedprophet.WithTrainPGD(0),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil {
		t.Fatal("standard training must still produce a model")
	}
}

// FedProphet (the default method) must honor the public attack contract:
// WithTrainPGD(0) and WithAttack(NoAttack) both disable input adversarial
// training, observable as a zero module-0 perturbation in the telemetry.
func TestFedProphetHonorsAttackOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	base := append(fastOpts("FedProphet"), fedprophet.WithRoundsPerModule(1))
	run := func(extra ...fedprophet.Option) *fedprophet.Result {
		res, err := fedprophet.Run(context.Background(), append(base, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.History) == 0 {
			t.Fatal("no rounds recorded")
		}
		return res
	}
	if adv := run(); adv.History[0].PerDimPert <= 0 {
		t.Fatalf("default run must adversarially train module 0, pert %v", adv.History[0].PerDimPert)
	}
	if clean := run(fedprophet.WithTrainPGD(0)); clean.History[0].PerDimPert != 0 {
		t.Fatalf("WithTrainPGD(0) must disable module-0 perturbation, got %v", clean.History[0].PerDimPert)
	}
	if noatk := run(fedprophet.WithAttack(fedprophet.NoAttack{})); noatk.History[0].PerDimPert != 0 {
		t.Fatalf("WithAttack(NoAttack) must disable module-0 perturbation, got %v", noatk.History[0].PerDimPert)
	}
}

// The conv-backend contract: a seeded end-to-end run produces the same
// RoundMetrics under the GEMM fast path and the direct reference loops, and
// each backend is bit-identical at client parallelism 1 vs 4. Forward
// activations and weight gradients are bit-equal between backends; the input
// gradient reduces over output channels in a different order, so cross-
// backend telemetry is compared to 1e-9 while within-backend parallelism is
// compared exactly.
func TestConvBackendsMatchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	defer func() {
		if err := fedprophet.SetConvBackend("gemm"); err != nil {
			t.Fatal(err)
		}
	}()
	run := func(backend string, par int) *fedprophet.Result {
		if err := fedprophet.SetConvBackend(backend); err != nil {
			t.Fatal(err)
		}
		res, err := fedprophet.Run(context.Background(), append(fastOpts("jFAT"),
			fedprophet.WithRounds(2),
			fedprophet.WithClientParallelism(par),
		)...)
		if err != nil {
			t.Fatalf("%s par=%d: %v", backend, par, err)
		}
		return res
	}
	gemm := run("gemm", 1)
	gemmPar := run("gemm", 4)
	direct := run("direct", 1)
	directPar := run("direct", 4)

	for name, pair := range map[string][2]*fedprophet.Result{
		"gemm":   {gemm, gemmPar},
		"direct": {direct, directPar},
	} {
		seq, par := pair[0], pair[1]
		if seq.CleanAcc != par.CleanAcc || seq.PGDAcc != par.PGDAcc {
			t.Fatalf("%s: parallelism changed results: %v/%v vs %v/%v",
				name, seq.CleanAcc, seq.PGDAcc, par.CleanAcc, par.PGDAcc)
		}
		for i := range seq.History {
			if seq.History[i] != par.History[i] {
				t.Fatalf("%s: round %d telemetry diverges at par 4", name, i)
			}
		}
	}

	if len(gemm.History) != len(direct.History) {
		t.Fatalf("backends produced different round counts: %d vs %d",
			len(gemm.History), len(direct.History))
	}
	closeEnough := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)) }
	for i := range gemm.History {
		g, d := gemm.History[i], direct.History[i]
		if g.Round != d.Round || g.Module != d.Module || g.Latency != d.Latency ||
			!closeEnough(g.Loss, d.Loss) || !closeEnough(g.PerDimPert, d.PerDimPert) {
			t.Fatalf("round %d telemetry diverges across backends:\ngemm   %+v\ndirect %+v", i, g, d)
		}
	}
	if !closeEnough(gemm.CleanAcc, direct.CleanAcc) || !closeEnough(gemm.PGDAcc, direct.PGDAcc) {
		t.Fatalf("final accuracies diverge across backends: %v/%v vs %v/%v",
			gemm.CleanAcc, gemm.PGDAcc, direct.CleanAcc, direct.PGDAcc)
	}
}

// The public API must expose the buffered bounded-staleness aggregation
// mode: a ParamServer built with WithBufferedAggregation commits on buffer
// fill instead of a round quorum and reports the staleness histogram in
// ServerStats; a synchronous server's stats stay free of the async fields.
func TestParamServerBufferedAggregation(t *testing.T) {
	params := []float64{0.5, -1.25, 2.0, 0.0, 3.5}
	srv := fedprophet.NewParamServer(params, nil, 1,
		fedprophet.WithServerShards(2),
		fedprophet.WithBufferedAggregation(2, 1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	push := func(id, round int) int {
		t.Helper()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(fldist.Update{
			ClientID: id, Round: round, Weight: 1,
			Params: []float64{0.1, 0.1, 0.1, 0.1, 0.1},
		}); err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Post(ts.URL+"/update", "application/octet-stream", &buf)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if st := push(0, 0); st != http.StatusOK {
		t.Fatalf("first push: status %d", st)
	}
	if srv.Round() != 0 {
		t.Fatal("round advanced before the buffer filled")
	}
	// The second update is one round stale relative to nothing yet — same
	// base round 0 — and fills the buffer: the commit happens with no
	// quorum barrier.
	if st := push(1, 0); st != http.StatusOK {
		t.Fatalf("second push: status %d", st)
	}
	if srv.Round() != 1 {
		t.Fatalf("round = %d after the buffer filled, want 1", srv.Round())
	}
	// A base-round-0 push is still inside the staleness window of 1.
	if st := push(2, 0); st != http.StatusOK {
		t.Fatalf("stale-but-in-window push: status %d", st)
	}

	stats := srv.Stats()
	if stats.Buffered == nil || stats.Buffered.BufferSize != 2 || stats.Buffered.MaxStaleness != 1 {
		t.Fatalf("buffered stats section not populated: %+v", stats.Buffered)
	}
	if hist := stats.Buffered.StalenessHist; len(hist) != 2 || hist[0] != 2 || hist[1] != 1 {
		t.Fatalf("staleness histogram = %v, want [2 1]", hist)
	}

	var syncStats fedprophet.ServerStats = fedprophet.NewParamServer(params, nil, 1).Stats()
	if syncStats.Buffered != nil {
		t.Fatalf("synchronous server leaked the buffered stats section: %+v", syncStats)
	}
}

// The transport-facing wire options must resolve to the exact codec a real
// fleet hands to fldist.Client, and must refuse to ride without a
// compressed codec underneath.
func TestWireCompressionOptions(t *testing.T) {
	comp, err := fedprophet.WireCompression(
		fedprophet.WithWireCompression(4, 128),
		fedprophet.WithWireTopK(50),
		fedprophet.WithWireDeltaPull(),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := fldist.Compression{Bits: 4, Chunk: 128, TopK: 50, Delta: true}
	if comp == nil || *comp != want {
		t.Fatalf("WireCompression = %+v, want %+v", comp, want)
	}

	// No compression configured: raw protocol, no codec.
	comp, err = fedprophet.WireCompression()
	if err != nil || comp != nil {
		t.Fatalf("raw WireCompression = %+v err %v, want nil/nil", comp, err)
	}

	// Top-k and delta-pull are codec parameters — without bits they must be
	// rejected, not silently dropped.
	if _, err := fedprophet.WireCompression(fedprophet.WithWireTopK(10)); err == nil {
		t.Fatal("WithWireTopK without WithWireCompression accepted")
	}
	if _, err := fedprophet.WireCompression(fedprophet.WithWireDeltaPull()); err == nil {
		t.Fatal("WithWireDeltaPull without WithWireCompression accepted")
	}
	if _, err := fedprophet.WireCompression(
		fedprophet.WithWireCompression(4, 0), fedprophet.WithWireTopK(-1)); err == nil {
		t.Fatal("negative top-k accepted")
	}
}
