// Package fedprophet is the public API of the FedProphet reproduction: a
// context-aware Runner for memory-heterogeneous federated adversarial
// training, a registry of training methods, pluggable aggregation/sampling/
// attack strategies, streaming per-round telemetry, and parallel client
// execution.
//
// The minimal run is three lines:
//
//	res, err := fedprophet.Run(ctx, fedprophet.WithMethod("FedProphet"))
//	if err != nil { ... }
//	fmt.Println(res.CleanAcc, res.PGDAcc)
//
// Everything is configured through functional options. A fuller example:
//
//	res, err := fedprophet.Run(ctx,
//	    fedprophet.WithMethod("jFAT"),
//	    fedprophet.WithWorkload("cifar"),
//	    fedprophet.WithScale("quick"),
//	    fedprophet.WithSeed(7),
//	    fedprophet.WithRounds(20),
//	    fedprophet.WithClientParallelism(4),
//	    fedprophet.WithRoundHook(func(m fedprophet.RoundMetrics) {
//	        log.Printf("round %d loss %.4f", m.Round, m.Loss)
//	    }),
//	)
//
// Runs are deterministic for a fixed seed: WithClientParallelism(N) trains
// a round's clients on N workers and reproduces the sequential result
// bit-for-bit. Canceling ctx aborts at the next round boundary and returns
// the partial result together with an error wrapping context.Canceled.
//
// Training methods self-register (the paper's eight methods are always
// available); external methods plug in via Register.
package fedprophet

import (
	"context"
	"fmt"

	"fedprophet/internal/device"
	"fedprophet/internal/exp"
	"fedprophet/internal/fl"
	"fedprophet/internal/nn"
)

// Re-exported contract types. The interfaces are satisfied by user code to
// customize the execution substrate; the data types carry results and
// telemetry.
type (
	// Result is the outcome of a training run: final clean/PGD/AutoAttack
	// accuracy, accumulated simulated latency, per-round history, method
	// extras, and the trained global model.
	Result = fl.Result
	// RoundMetrics is one round of streaming telemetry.
	RoundMetrics = fl.RoundMetrics
	// Method is a federated training algorithm; implement it to Register
	// your own.
	Method = fl.Method
	// MethodParams is what a registered factory receives: model builders
	// plus coordinator hyperparameters.
	MethodParams = fl.MethodParams
	// MethodFactory instantiates a Method for one workload.
	MethodFactory = fl.MethodFactory
	// Aggregator combines client updates into the next global model.
	Aggregator = fl.Aggregator
	// ClientSampler selects each round's participating clients.
	ClientSampler = fl.ClientSampler
	// Attack builds the local adversarial-training attack.
	Attack = fl.Attack
)

// Built-in execution-substrate implementations, ready to pass to
// WithAggregator / WithSampler / WithAttack.
type (
	// FedAvg is data-size weighted averaging (the paper default).
	FedAvg = fl.FedAvg
	// TrimmedMean is a Byzantine-robust coordinate-wise trimmed mean.
	TrimmedMean = fl.TrimmedMean
	// UniformSampler draws clients uniformly without replacement.
	UniformSampler = fl.UniformSampler
	// RoundRobinSampler cycles deterministically through the fleet.
	RoundRobinSampler = fl.RoundRobinSampler
	// PGDAttack is ℓ∞ projected gradient descent (the paper default).
	PGDAttack = fl.PGDAttack
	// FGSMAttack is single-step FGSM.
	FGSMAttack = fl.FGSMAttack
	// NoAttack disables adversarial training (standard federated SGD).
	NoAttack = fl.NoAttack
)

// Register adds a named training method to the global registry, making it
// resolvable by WithMethod(name) everywhere — commands included.
// Registering an existing name panics.
func Register(name string, factory MethodFactory) {
	fl.RegisterMethod(name, factory)
}

// Methods lists the registered training methods in sorted order.
func Methods() []string { return fl.MethodNames() }

// SetConvBackend selects the process-wide convolution implementation:
// "gemm" (the default im2col + blocked parallel GEMM fast path) or "direct"
// (the reference loops). The setting is global and consulted on every
// forward pass: all convolution layers that have not pinned a per-layer
// backend follow it, existing models included. The environment variable
// FEDPROPHET_CONV_BACKEND=direct selects the reference path at startup.
// Both backends produce gradcheck-equivalent results; seeded runs remain
// deterministic under either.
func SetConvBackend(name string) error {
	switch name {
	case "gemm":
		nn.SetConvBackend(nn.ConvGEMM)
	case "direct":
		nn.SetConvBackend(nn.ConvDirect)
	default:
		return fmt.Errorf("fedprophet: unknown conv backend %q (gemm or direct)", name)
	}
	return nil
}

// ConvBackend reports the current process-wide convolution backend name.
func ConvBackend() string { return nn.DefaultConvBackend().String() }

// Workloads lists the accepted WithWorkload names.
func Workloads() []string { return []string{"cifar", "caltech"} }

// Scales lists the accepted WithScale names.
func Scales() []string { return []string{"quick", "trimmed", "full"} }

// Runner executes federated training runs. A Runner carries a base option
// set; Run merges per-call options on top, so one Runner can launch many
// related experiments. The zero Runner is valid and runs the paper-default
// FedProphet configuration.
type Runner struct {
	base []Option
}

// NewRunner returns a Runner with the given base options.
func NewRunner(opts ...Option) *Runner { return &Runner{base: opts} }

// Run is a convenience wrapper for NewRunner(opts...).Run(ctx).
func Run(ctx context.Context, opts ...Option) (*Result, error) {
	return NewRunner(opts...).Run(ctx)
}

// Run executes one training run. It blocks until the configured rounds
// complete or ctx is canceled; on cancellation it returns the partial
// result accumulated so far together with an error wrapping ctx.Err().
func (r *Runner) Run(ctx context.Context, opts ...Option) (*Result, error) {
	cfg := defaultConfig()
	for _, o := range r.base {
		o(&cfg)
	}
	for _, o := range opts {
		o(&cfg)
	}

	var s exp.Scale
	switch cfg.scale {
	case "quick":
		s = exp.QuickScale()
	case "trimmed":
		s = exp.TrimmedScale()
	case "full":
		s = exp.FullScale()
	default:
		return nil, fmt.Errorf("fedprophet: unknown scale %q (have %v)", cfg.scale, Scales())
	}
	var w exp.Workload
	switch cfg.workload {
	case "cifar":
		w = exp.CIFAR10S()
	case "caltech":
		w = exp.Caltech256S(cfg.scale != "full")
	default:
		return nil, fmt.Errorf("fedprophet: unknown workload %q (have %v)", cfg.workload, Workloads())
	}
	var h device.Heterogeneity
	switch cfg.hetero {
	case "balanced":
		h = device.Balanced
	case "unbalanced":
		h = device.Unbalanced
	default:
		return nil, fmt.Errorf("fedprophet: unknown heterogeneity %q (balanced or unbalanced)", cfg.hetero)
	}

	// Scale overrides must land before the environment is assembled: the
	// client count shapes the data partition and the device fleet.
	if cfg.rounds > 0 {
		s.Rounds = cfg.rounds
	}
	if cfg.roundsPerModule > 0 {
		s.RoundsPerModule = cfg.roundsPerModule
	}
	if cfg.clients > 0 {
		s.NumClients = cfg.clients
	}
	if cfg.clientsPerRound > 0 {
		s.ClientsPerRound = cfg.clientsPerRound
	}
	if cfg.localIters > 0 {
		s.LocalIters = cfg.localIters
	}
	if cfg.trainPGD != nil {
		s.TrainPGD = *cfg.trainPGD
	}

	if err := cfg.validateWire(); err != nil {
		return nil, err
	}

	params := exp.ParamsFor(w, s)
	params.UseAPA = cfg.apa
	params.UseDMA = cfg.dma
	params.UploadBits = cfg.uploadBits
	params.UploadChunk = cfg.uploadChunk
	method, err := fl.NewMethod(cfg.method, params)
	if err != nil {
		return nil, err
	}

	env := exp.NewEnv(w, s, h, cfg.seed)
	if cfg.trainPGD != nil {
		env.Cfg.TrainPGD = *cfg.trainPGD
	}
	env.Parallelism = cfg.parallelism
	env.Sampler = cfg.sampler
	env.Aggregator = cfg.aggregator
	env.TrainAttack = cfg.attack
	env.Hook = cfg.hook
	if cfg.ch != nil {
		ch, hook := cfg.ch, cfg.hook
		env.Hook = func(m RoundMetrics) {
			if hook != nil {
				hook(m)
			}
			select {
			case ch <- m:
			case <-ctx.Done():
			}
		}
	}

	return method.Run(ctx, env)
}

// validateWire checks the upload/wire codec options as a group. Top-k and
// delta-pull are transport-facing (see WireCompression): they must ride a
// compressed codec, and in-process runs never apply them to module uploads.
func (cfg *runConfig) validateWire() error {
	if cfg.uploadBits != 0 && (cfg.uploadBits < 2 || cfg.uploadBits > 8) {
		return fmt.Errorf("fedprophet: upload/wire-compression bits %d outside [2,8] (0 disables)", cfg.uploadBits)
	}
	if cfg.uploadChunk < 0 {
		return fmt.Errorf("fedprophet: wire-compression chunk %d must be ≥ 0", cfg.uploadChunk)
	}
	if cfg.wireTopK < 0 {
		return fmt.Errorf("fedprophet: wire top-k %d must be ≥ 0 (0 = dense)", cfg.wireTopK)
	}
	if (cfg.wireTopK > 0 || cfg.wireDelta) && cfg.uploadBits == 0 {
		return fmt.Errorf("fedprophet: top-k/delta-pull ride the compressed codec — set WithWireCompression first")
	}
	return nil
}
