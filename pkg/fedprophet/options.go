package fedprophet

import "fedprophet/internal/fldist"

// Option configures a Runner or a single Run call. Options compose left to
// right; later options win.
type Option func(*runConfig)

// runConfig is the resolved option set of one Run call.
type runConfig struct {
	method   string
	workload string
	scale    string
	hetero   string
	seed     int64

	rounds          int
	roundsPerModule int
	clients         int
	clientsPerRound int
	localIters      int
	trainPGD        *int

	apa         bool
	dma         bool
	uploadBits  int
	uploadChunk int
	wireTopK    int
	wireDelta   bool

	parallelism int
	hook        func(RoundMetrics)
	ch          chan<- RoundMetrics

	sampler    ClientSampler
	aggregator Aggregator
	attack     Attack
}

func defaultConfig() runConfig {
	return runConfig{
		method:   "FedProphet",
		workload: "cifar",
		scale:    "quick",
		hetero:   "balanced",
		seed:     1,
		apa:      true,
		dma:      true,
	}
}

// WithMethod selects the training method by registry name (see Methods).
// Default "FedProphet".
func WithMethod(name string) Option { return func(c *runConfig) { c.method = name } }

// WithWorkload selects the workload: "cifar" or "caltech". Default "cifar".
func WithWorkload(name string) Option { return func(c *runConfig) { c.workload = name } }

// WithScale selects the run scale: "quick", "trimmed" or "full". Default
// "quick".
func WithScale(name string) Option { return func(c *runConfig) { c.scale = name } }

// WithHeterogeneity selects the device fleet's systematic heterogeneity:
// "balanced" or "unbalanced". Default "balanced".
func WithHeterogeneity(name string) Option { return func(c *runConfig) { c.hetero = name } }

// WithSeed fixes the random seed. Runs with the same seed and options are
// bit-identical, at any client parallelism. Default 1.
func WithSeed(seed int64) Option { return func(c *runConfig) { c.seed = seed } }

// WithRounds overrides the baselines' communication-round budget.
// FedProphet paces itself per module instead — use WithRoundsPerModule.
func WithRounds(n int) Option { return func(c *runConfig) { c.rounds = n } }

// WithRoundsPerModule overrides FedProphet's per-module round cap.
func WithRoundsPerModule(n int) Option { return func(c *runConfig) { c.roundsPerModule = n } }

// WithClients overrides the fleet size N (the data partition follows).
func WithClients(n int) Option { return func(c *runConfig) { c.clients = n } }

// WithClientsPerRound overrides the per-round cohort size C.
func WithClientsPerRound(n int) Option { return func(c *runConfig) { c.clientsPerRound = n } }

// WithLocalIters overrides the local SGD iteration count E.
func WithLocalIters(n int) Option { return func(c *runConfig) { c.localIters = n } }

// WithTrainPGD overrides the adversarial-training PGD step count; 0 trains
// without perturbation (standard federated SGD — for FedProphet this also
// disables the feature-space PGD of the later cascade modules).
func WithTrainPGD(steps int) Option {
	return func(c *runConfig) { c.trainPGD = &steps }
}

// WithAPA toggles Adaptive Perturbation Adjustment (FedProphet, §6.2).
// Default on.
func WithAPA(on bool) Option { return func(c *runConfig) { c.apa = on } }

// WithDMA toggles Differentiated Module Assignment (FedProphet, §6.3).
// Default on.
func WithDMA(on bool) Option { return func(c *runConfig) { c.dma = on } }

// WithUploadBits enables low-bit quantization of FedProphet client uploads
// (2–8 bits; 0 disables) with a single scale per upload vector. Prefer
// WithWireCompression, which also sets the chunked form the distributed
// transport puts on the wire.
func WithUploadBits(bits int) Option { return func(c *runConfig) { c.uploadBits = bits } }

// WithWireCompression configures the compressed wire protocol parameters:
// client uploads are quantized at `bits` (2–8) with one scale per `chunk`
// values (0 selects the transport default of 256), exactly as
// internal/fldist frames deltas on the wire, and communication-byte
// accounting charges the codec's true frame size. In-process runs apply it
// to FedProphet's module uploads; for a real fleet, pass the same numbers
// to fldist.Client.Compression (cmd/fldist -bits/-chunk). Bits 0 disables
// compression.
func WithWireCompression(bits, chunk int) Option {
	return func(c *runConfig) {
		c.uploadBits = bits
		if bits != 0 && chunk == 0 {
			chunk = fldist.DefaultChunk
		}
		c.uploadChunk = chunk
	}
}

// WithWireTopK keeps only the k largest-magnitude coordinates of each
// client's error-fed delta on the wire (FPQ1 sparse frames, docs/WIRE.md);
// the feedback residual carries everything sparsification drops into the
// next round. Transport-facing: it shapes the codec WireCompression hands
// to fldist.Client (cmd/fldist -topk) and is deliberately NOT applied to
// in-process module uploads — those hand the aggregator full vectors, and
// sparsifying them with no wire in between would bias training for no byte
// saving. Requires WithWireCompression with bits != 0; 0 disables.
func WithWireTopK(k int) Option { return func(c *runConfig) { c.wireTopK = k } }

// WithWireDeltaPull makes a returning client pull only the quantized,
// error-fed global delta against the round it already holds (FPD1 catch-up
// envelopes; the first pull lands a cold chain snapshot) instead of the
// full model. Transport-facing, like WithWireTopK (cmd/fldist -delta-pull).
// Requires WithWireCompression with bits != 0.
func WithWireDeltaPull() Option { return func(c *runConfig) { c.wireDelta = true } }

// WireCompression resolves the wire-facing options to the codec a real
// fleet passes to fldist.Client.Compression (what cmd/fldist builds from
// -bits/-chunk/-topk/-delta-pull). nil with no error means the raw gob
// protocol (no compression configured).
func WireCompression(opts ...Option) (*fldist.Compression, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validateWire(); err != nil {
		return nil, err
	}
	if cfg.uploadBits == 0 {
		return nil, nil
	}
	return &fldist.Compression{
		Bits: cfg.uploadBits, Chunk: cfg.uploadChunk,
		TopK: cfg.wireTopK, Delta: cfg.wireDelta,
	}, nil
}

// WithClientParallelism trains each round's sampled clients on up to n
// concurrent workers. The result is bit-identical to sequential execution
// for a fixed seed; only the wall clock changes. Values ≤ 1 run
// sequentially (the default).
func WithClientParallelism(n int) Option { return func(c *runConfig) { c.parallelism = n } }

// WithRoundHook streams every completed round's telemetry to fn,
// synchronously from the training loop, before the next round starts.
func WithRoundHook(fn func(RoundMetrics)) Option { return func(c *runConfig) { c.hook = fn } }

// WithRoundChannel streams every completed round's telemetry into ch. The
// send blocks until the consumer receives or the run's context is
// canceled, so a slow consumer backpressures training rather than losing
// events. The channel is not closed when the run ends.
func WithRoundChannel(ch chan<- RoundMetrics) Option { return func(c *runConfig) { c.ch = ch } }

// WithSampler replaces uniform client sampling.
func WithSampler(s ClientSampler) Option { return func(c *runConfig) { c.sampler = s } }

// WithAggregator replaces FedAvg weighted averaging.
func WithAggregator(a Aggregator) Option { return func(c *runConfig) { c.aggregator = a } }

// WithAttack replaces the PGD attack used for input-space local
// adversarial training (the baselines' training loop and FedProphet's
// first module). FedProphet's later modules keep the feature-space PGD
// intrinsic to cascade learning; disable it with WithTrainPGD(0).
func WithAttack(a Attack) Option { return func(c *runConfig) { c.attack = a } }
