package fedprophet

import (
	"bytes"
	"context"
	"encoding/gob"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fedprophet/internal/fldist"
)

// The public hierarchical surface end-to-end: a root ParamServer, an
// EdgeAggregator in front of it mounted in a TenantRegistry, and a cohort
// client pushing through the tenant path. The cohort's update must reach
// the root as one combined tier push.
func TestEdgeAggregatorPublicSurface(t *testing.T) {
	init := make([]float64, 64)
	for i := range init {
		init[i] = float64(i) / 128
	}
	root := NewParamServer(init, nil, 1, WithServerShards(2))
	rts := httptest.NewServer(root.Handler())
	defer rts.Close()

	edge := NewEdgeAggregator(rts.URL,
		WithEdgeTier("plant-7"),
		WithEdgeFlush(2, 0),
		WithEdgeStalenessWindow(4),
		WithEdgeShards(2),
		WithEdgeUpstreamID(4096))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := edge.Start(ctx); err != nil {
		t.Fatalf("edge start: %v", err)
	}
	reg := NewTenantRegistry()
	if err := reg.Add("plant-7", edge.Handler()); err != nil {
		t.Fatal(err)
	}
	ets := httptest.NewServer(reg.Handler())
	defer ets.Close()

	for id := 0; id < 2; id++ {
		params := make([]float64, len(init))
		for i := range params {
			params[i] = init[i] + float64(id+1)/256
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(fldist.Update{
			ClientID: id, Round: 0, Weight: 1, Params: params,
		}); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ets.URL+"/plant-7/update", "application/octet-stream",
			bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cohort push via tenant path: status %d", resp.StatusCode)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for root.Round() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("tier push never reached the root")
		}
		time.Sleep(time.Millisecond)
	}
	gotP, _ := root.Snapshot()
	for i := range gotP {
		// Both cohort deltas are powers of two on top of a small dyadic
		// base, so the tiered average is exact: init + (1/256 + 2/256)/2.
		want := init[i] + 3.0/512
		if gotP[i] != want {
			t.Fatalf("root params[%d] = %v, want %v", i, gotP[i], want)
		}
	}
	// The root commits before the edge's push response returns, so the push
	// counter can trail the committed round briefly.
	for edge.Stats().Upstream.Pushes != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("edge upstream stats: %+v", edge.Stats().Upstream)
		}
		time.Sleep(time.Millisecond)
	}
	if up := edge.Stats().Upstream; up.Cohort != "plant-7" || up.FlushK != 1 {
		t.Fatalf("edge upstream stats: %+v", up)
	}
}
