package fedprophet

import (
	"context"
	"fmt"

	"fedprophet/internal/fldist"
	"fedprophet/internal/nn"
)

// The distributed deployment surface: a real HTTP parameter server for
// fleets that federate over the network instead of in-process. The server
// speaks the wire protocol of docs/WIRE.md (raw gob and compressed
// error-fed deltas, negotiated per client) and aggregates under
// parameter-range sharding — concurrent pushes decode and admit in
// parallel, a stats poll never blocks aggregation, and the aggregate is
// bit-identical at any shard count.

type (
	// ParamServer is the HTTP parameter server of the distributed
	// transport: a synchronous FedAvg aggregator with sharded, streaming
	// aggregation. Serve its Handler() (or call ListenAndServe) and point
	// fldist clients — or any client implementing docs/WIRE.md — at it.
	ParamServer = fldist.Server
	// ParamServerOption configures NewParamServer.
	ParamServerOption = fldist.ServerOption
	// ServerStats is the GET /stats payload: traffic counters split raw vs
	// compressed, round progress, shard count, and per-update admit-latency
	// percentiles.
	ServerStats = fldist.Stats
)

// WithServerShards sets how many parameter-range shards the server
// aggregates under. More shards let more concurrent client pushes admit
// without contending; the aggregated model is bit-identical at any shard
// count, so this is purely a throughput knob. Values < 1 select the default
// (GOMAXPROCS, capped at 64).
func WithServerShards(n int) ParamServerOption { return fldist.WithShards(n) }

// WithBufferedAggregation switches the parameter server from the
// synchronous quorum to FedBuff-style buffered bounded-staleness
// aggregation: a client update is admitted as long as the round it trained
// from is at most maxStaleness rounds behind the server, down-weighted by
// 1/(1+staleness), and a new global model commits whenever k admitted
// updates have buffered. There is no round barrier, so fleet throughput is
// not gated by the slowest client and a straggler's training pass inside
// the window is never thrown away. k replaces updatesPerRound as the commit
// threshold; maxStaleness must be in [0, 64] (each tolerated round retains
// one model snapshot server-side). Run fleet clients with Async pipelining
// (fldist.Client.Async / cmd/fldist -async) to exploit it; ServerStats
// gains a per-staleness admission histogram. The wire protocol is unchanged
// — updates always carried their base round.
func WithBufferedAggregation(k, maxStaleness int) ParamServerOption {
	return fldist.WithBufferedAggregation(k, maxStaleness)
}

// WithServerWAL makes the parameter server crash-safe: every commit (and, in
// buffered mode, every admission between commits) is appended to a
// write-ahead log in dir before it takes effect. A process that dies — power
// loss, SIGKILL, panic — resumes the federation at its last commit via
// RecoverParamServer, replaying the admissions its buffer held; clients never
// observe a model older than one they already pulled. The dir must not
// already hold a WAL (recover, don't re-create). See docs/ARCHITECTURE.md
// ("Durability") for the record format, fsync policy and guarantees.
func WithServerWAL(dir string) ParamServerOption { return fldist.WithWAL(dir) }

// ServerWALSyncPolicy selects when the write-ahead log fsyncs; see the
// WALSync constants.
type ServerWALSyncPolicy = fldist.WALSyncPolicy

// The WAL fsync policies: WALSyncCommit (the default) makes commits
// power-loss durable and admissions process-crash durable; WALSyncAlways
// fsyncs every record; WALSyncNone leaves durability to the OS page cache
// (process crashes still lose nothing).
const (
	WALSyncCommit = fldist.WALSyncCommit
	WALSyncAlways = fldist.WALSyncAlways
	WALSyncNone   = fldist.WALSyncNone
)

// WithServerWALSync tunes the WAL fsync policy (default WALSyncCommit). Only
// meaningful together with WithServerWAL or RecoverParamServer.
func WithServerWALSync(p ServerWALSyncPolicy) ParamServerOption {
	return fldist.WithWALSyncPolicy(p)
}

// ParamServerWALExists reports whether dir holds a write-ahead log — the
// switch between NewParamServer(..., WithServerWAL(dir)) on first boot and
// RecoverParamServer(dir) on every boot after.
func ParamServerWALExists(dir string) bool { return fldist.WALExists(dir) }

// RecoverParamServer rebuilds a parameter server from the write-ahead log in
// dir: the model resumes at the last intact commit, admissions logged after
// it re-enter the buffer, and the log stays open for the recovered server's
// own appends. The aggregation mode, commit threshold and staleness window
// come from the log itself; opts may tune runtime-only settings (shards, WAL
// sync policy). It fails with an error while another live process still
// holds the log — use HandoffParamServer to wait that out.
func RecoverParamServer(dir string, opts ...ParamServerOption) (*ParamServer, error) {
	return fldist.RecoverServer(dir, opts...)
}

// HandoffParamServer blocks until the process currently holding the WAL in
// dir releases it (exits, crashes, or closes its server), then recovers and
// returns the server — the live-handoff path: start the successor with
// HandoffParamServer, stop the incumbent, and the federation resumes at its
// last commit with no state lost.
func HandoffParamServer(ctx context.Context, dir string, opts ...ParamServerOption) (*ParamServer, error) {
	return fldist.Handoff(ctx, dir, opts...)
}

// NewParamServer builds a parameter server seeded with the given global
// state — typically ExportModelState of a trained Result, or the export of a
// freshly built model for training from scratch. updatesPerRound is the
// synchronous-round quorum: the server aggregates once that many distinct
// clients have pushed for the current round. Drive it with
// (*ParamServer).ListenAndServe or mount (*ParamServer).Handler on an
// existing mux.
func NewParamServer(initParams, initBN []float64, updatesPerRound int, opts ...ParamServerOption) *ParamServer {
	return fldist.NewServer(initParams, initBN, updatesPerRound, opts...)
}

// ExportModelState flattens a Result's trained global model into the
// parameter and BatchNorm-statistics vectors a ParamServer (or a checkpoint)
// is seeded with. It errors on a result without a model (a run canceled
// before any aggregation).
func ExportModelState(res *Result) (params, bn []float64, err error) {
	if res == nil || res.Model == nil {
		return nil, nil, fmt.Errorf("fedprophet: result carries no trained model")
	}
	return nn.ExportParams(res.Model), nn.ExportBNStats(res.Model), nil
}
