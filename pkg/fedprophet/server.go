package fedprophet

import (
	"fmt"

	"fedprophet/internal/fldist"
	"fedprophet/internal/nn"
)

// The distributed deployment surface: a real HTTP parameter server for
// fleets that federate over the network instead of in-process. The server
// speaks the wire protocol of docs/WIRE.md (raw gob and compressed
// error-fed deltas, negotiated per client) and aggregates under
// parameter-range sharding — concurrent pushes decode and admit in
// parallel, a stats poll never blocks aggregation, and the aggregate is
// bit-identical at any shard count.

type (
	// ParamServer is the HTTP parameter server of the distributed
	// transport: a synchronous FedAvg aggregator with sharded, streaming
	// aggregation. Serve its Handler() (or call ListenAndServe) and point
	// fldist clients — or any client implementing docs/WIRE.md — at it.
	ParamServer = fldist.Server
	// ParamServerOption configures NewParamServer.
	ParamServerOption = fldist.ServerOption
	// ServerStats is the GET /stats payload: traffic counters split raw vs
	// compressed, round progress, shard count, and per-update admit-latency
	// percentiles.
	ServerStats = fldist.Stats
)

// WithServerShards sets how many parameter-range shards the server
// aggregates under. More shards let more concurrent client pushes admit
// without contending; the aggregated model is bit-identical at any shard
// count, so this is purely a throughput knob. Values < 1 select the default
// (GOMAXPROCS, capped at 64).
func WithServerShards(n int) ParamServerOption { return fldist.WithShards(n) }

// WithBufferedAggregation switches the parameter server from the
// synchronous quorum to FedBuff-style buffered bounded-staleness
// aggregation: a client update is admitted as long as the round it trained
// from is at most maxStaleness rounds behind the server, down-weighted by
// 1/(1+staleness), and a new global model commits whenever k admitted
// updates have buffered. There is no round barrier, so fleet throughput is
// not gated by the slowest client and a straggler's training pass inside
// the window is never thrown away. k replaces updatesPerRound as the commit
// threshold; maxStaleness must be in [0, 64] (each tolerated round retains
// one model snapshot server-side). Run fleet clients with Async pipelining
// (fldist.Client.Async / cmd/fldist -async) to exploit it; ServerStats
// gains a per-staleness admission histogram. The wire protocol is unchanged
// — updates always carried their base round.
func WithBufferedAggregation(k, maxStaleness int) ParamServerOption {
	return fldist.WithBufferedAggregation(k, maxStaleness)
}

// NewParamServer builds a parameter server seeded with the given global
// state — typically ExportModelState of a trained Result, or the export of a
// freshly built model for training from scratch. updatesPerRound is the
// synchronous-round quorum: the server aggregates once that many distinct
// clients have pushed for the current round. Drive it with
// (*ParamServer).ListenAndServe or mount (*ParamServer).Handler on an
// existing mux.
func NewParamServer(initParams, initBN []float64, updatesPerRound int, opts ...ParamServerOption) *ParamServer {
	return fldist.NewServer(initParams, initBN, updatesPerRound, opts...)
}

// ExportModelState flattens a Result's trained global model into the
// parameter and BatchNorm-statistics vectors a ParamServer (or a checkpoint)
// is seeded with. It errors on a result without a model (a run canceled
// before any aggregation).
func ExportModelState(res *Result) (params, bn []float64, err error) {
	if res == nil || res.Model == nil {
		return nil, nil, fmt.Errorf("fedprophet: result carries no trained model")
	}
	return nn.ExportParams(res.Model), nn.ExportBNStats(res.Model), nil
}
