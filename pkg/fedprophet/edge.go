package fedprophet

import (
	"time"

	"fedprophet/internal/fldist"
)

// Hierarchical aggregation: edge aggregators stand between client cohorts
// and the root ParamServer. An edge serves its cohort exactly like a
// ParamServer (same routes, same wire protocol, buffered admission) and
// pre-folds the cohort's admitted updates into one combined delta pushed
// upstream as an ordinary wire update — the root cannot tell an edge from a
// big client, topologies nest, and a 2-tier tree commits the same model the
// flat fleet would have over the same admitted multiset. See
// docs/ARCHITECTURE.md "Hierarchical aggregation".

type (
	// EdgeAggregator is the middle tier: a buffered parameter server for its
	// cohort and a client of its upstream. Build with NewEdgeAggregator,
	// Start it (or let Serve do it), and point cohort clients at Handler().
	// Shutdown via context cancellation drains: buffered cohort work is
	// pushed upstream before Serve returns.
	EdgeAggregator = fldist.Edge
	// EdgeAggregatorOption configures NewEdgeAggregator.
	EdgeAggregatorOption = fldist.EdgeOption
	// TenantRegistry mounts several named aggregators — edges, roots — behind
	// one listener, each under its own path prefix.
	TenantRegistry = fldist.Registry
)

// WithEdgeTier names the edge's cohort; the name appears in the /stats
// upstream section and is the tenant name a TenantRegistry mounts the edge
// under.
func WithEdgeTier(name string) EdgeAggregatorOption { return fldist.WithEdgeName(name) }

// WithEdgeFlush sets the flush policy: the edge pushes its combined cohort
// delta upstream once k updates have buffered, or once the oldest buffered
// update is age old — whichever comes first. age 0 disables the age
// trigger. Defaults: k 8, age 500ms.
func WithEdgeFlush(k int, age time.Duration) EdgeAggregatorOption {
	return fldist.WithEdgeFlush(k, age)
}

// WithEdgeStalenessWindow sets the staleness window (in the edge's local
// commit rounds) for cohort admissions, exactly as WithBufferedAggregation's
// maxStaleness does for a root. Default 8.
func WithEdgeStalenessWindow(maxStaleness int) EdgeAggregatorOption {
	return fldist.WithEdgeWindow(maxStaleness)
}

// WithEdgeShards sets the edge's parameter shard count (see
// WithServerShards); the pre-fold is bit-identical at any count.
func WithEdgeShards(n int) EdgeAggregatorOption { return fldist.WithEdgeShards(n) }

// EdgeIDSpan is the block of upstream client IDs each edge owns: an edge
// whose upstream ID is id pushes its committed batches under IDs in
// [id, id+EdgeIDSpan), cycling per batch so two batches pushed from one
// base round never collide in the upstream's per-(round, client) dedup.
const EdgeIDSpan = fldist.EdgeIDSpan

// WithEdgeUpstreamID fixes the base of the EdgeIDSpan-sized client ID block
// the edge pushes upstream under. Every edge and direct client sharing an
// upstream needs a disjoint block; by default edges draw EdgeIDSpan-strided
// blocks from 1<<20 up — within one process only, so multi-process
// deployments must assign explicit disjoint blocks.
func WithEdgeUpstreamID(id int) EdgeAggregatorOption { return fldist.WithEdgeClientID(id) }

// WithEdgeWAL makes the edge's parked upstream batch crash-safe: a committed
// cohort batch whose upstream push has not been acknowledged is persisted in
// dir, and a restarted edge re-pushes it under its original dedup identity —
// the upstream drops the replay as a duplicate if the first attempt had
// landed, so a crash on either side of the acknowledgement loses nothing and
// double-counts nothing.
func WithEdgeWAL(dir string) EdgeAggregatorOption { return fldist.WithEdgeWAL(dir) }

// NewEdgeAggregator builds an edge for the given upstream base URL (a root
// ParamServer or another edge). Like NewParamServer it panics on
// nonsensical configuration; the first upstream pull happens in Start.
func NewEdgeAggregator(upstream string, opts ...EdgeAggregatorOption) *EdgeAggregator {
	return fldist.NewEdge(upstream, opts...)
}

// NewTenantRegistry creates an empty multi-tenant registry.
func NewTenantRegistry() *TenantRegistry { return fldist.NewRegistry() }
