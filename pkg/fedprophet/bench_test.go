package fedprophet_test

import (
	"context"
	"fmt"
	"testing"

	"fedprophet/pkg/fedprophet"
)

// BenchmarkClientParallelism measures the per-run wall clock of the same
// seeded quick-scale CIFAR jFAT workload at increasing client parallelism.
// The results are bit-identical across sub-benchmarks; only the wall clock
// may differ. On a single-core host (GOMAXPROCS=1) the lines coincide —
// the speedup needs real cores.
//
//	go test -bench=ClientParallelism -benchtime=1x ./pkg/fedprophet
func BenchmarkClientParallelism(b *testing.B) {
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := fedprophet.Run(context.Background(),
					fedprophet.WithMethod("jFAT"),
					fedprophet.WithWorkload("cifar"),
					fedprophet.WithScale("quick"),
					fedprophet.WithSeed(1),
					fedprophet.WithRounds(4),
					fedprophet.WithClientParallelism(par),
				)
				if err != nil {
					b.Fatal(err)
				}
				if res.CleanAcc < 0 {
					b.Fatal("bogus result")
				}
			}
		})
	}
}
