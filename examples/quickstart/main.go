// Quickstart: a 30-second end-to-end FedProphet run through the public
// pkg/fedprophet API.
//
//	go run ./examples/quickstart
//
// It trains FedProphet's adversarial cascade on the quick-scale CIFAR10-S
// surrogate across a simulated edge fleet, streaming each round's telemetry
// as it completes, training 4 clients concurrently, and reporting
// clean/adversarial accuracy with the memory saving over end-to-end
// federated adversarial training. Press Ctrl-C to abort mid-run: the
// partial history survives.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"

	"fedprophet/pkg/fedprophet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Println("training FedProphet (adversarial cascade learning)...")
	res, err := fedprophet.Run(ctx,
		fedprophet.WithMethod("FedProphet"),
		fedprophet.WithWorkload("cifar"),
		fedprophet.WithScale("quick"),
		fedprophet.WithSeed(7),
		fedprophet.WithRoundsPerModule(8),
		fedprophet.WithClientParallelism(4),
		fedprophet.WithRoundHook(func(m fedprophet.RoundMetrics) {
			fmt.Printf("  round %2d  module %d  loss %.4f  latency %.3fs\n",
				m.Round, m.Module+1, m.Loss, m.Latency.Total())
		}),
	)
	if err != nil {
		if res != nil {
			fmt.Printf("\naborted: %v (%d rounds completed)\n", err, len(res.History))
		} else {
			fmt.Printf("\nfailed: %v\n", err)
		}
		return
	}

	fmt.Printf("\nClean accuracy:        %.1f%%\n", res.CleanAcc*100)
	fmt.Printf("PGD accuracy:          %.1f%%\n", res.PGDAcc*100)
	fmt.Printf("AutoAttack accuracy:   %.1f%%\n", res.AAAcc*100)
	fmt.Printf("Modules:               %.0f\n", res.Extra["modules"])
	fmt.Printf("Memory reduction:      %.0f%% (%.0f KB -> %.0f KB per client)\n",
		res.Extra["mem_reduction"]*100,
		res.Extra["mem_full_bytes"]/1024, res.Extra["mem_module_bytes"]/1024)
	fmt.Printf("Simulated train time:  %.3f s (compute %.3f s, swap %.3f s)\n",
		res.Latency.Total(), res.Latency.Compute, res.Latency.DataAccess)
}
