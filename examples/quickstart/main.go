// Quickstart: a 30-second end-to-end FedProphet run on a tiny synthetic
// federated workload.
//
//	go run ./examples/quickstart
//
// It partitions a VGG-style model into memory-bounded modules, trains them
// with adversarial cascade learning across 10 simulated edge clients, and
// reports clean/adversarial accuracy along with the memory saving over
// end-to-end federated adversarial training.
package main

import (
	"fmt"
	"math/rand"

	"fedprophet/internal/core"
	"fedprophet/internal/data"
	"fedprophet/internal/device"
	"fedprophet/internal/fl"
	"fedprophet/internal/nn"
)

func main() {
	const seed = 7

	// 1. A synthetic image-classification task (CIFAR10-S surrogate,
	//    6 classes of 3×16×16 images to keep this example fast).
	dcfg := data.SyntheticConfig{
		Name: "quickstart", Classes: 6, Shape: []int{3, 16, 16},
		TrainPerClass: 50, TestPerClass: 10,
		NoiseStd: 0.1, MixMax: 0.3, Seed: seed,
	}
	train, test := data.Generate(dcfg)
	train, val := data.SplitHoldout(train, 0.1, seed)

	// 2. Federated split: 10 clients, 80% of each client's data in 20% of
	//    the classes (the paper's statistical heterogeneity).
	cfg := fl.DefaultConfig()
	cfg.NumClients = 10
	cfg.ClientsPerRound = 5
	cfg.LocalIters = 8
	cfg.Batch = 8
	cfg.LR = 0.04
	cfg.TrainPGD = 3
	cfg.EvalPGD = 5
	cfg.EvalAASteps = 5
	subsets := data.PartitionNonIID(train, data.DefaultPartition(cfg.NumClients, seed))

	// 3. An edge-device fleet from the paper's CIFAR-10 pool (Table 5).
	rng := rand.New(rand.NewSource(seed))
	fleet := device.NewFleet(device.CIFARPool(), cfg.NumClients, device.Balanced, rng)

	env := &fl.Env{
		Train: train, Subsets: subsets, Val: val, Test: test,
		Fleet: fleet, Cfg: cfg, Rng: rng,
	}

	// 4. FedProphet: partition the backbone at Rmin = 20% of the full
	//    training memory and run adversarial cascade learning with APA+DMA.
	opts := core.DefaultOptions(func(r *rand.Rand) *nn.Model {
		return nn.VGG16S([]int{3, 16, 16}, 6, 4, r)
	})
	opts.RoundsPerModule = 8
	opts.Patience = 5
	opts.AlphaInit = 0.5
	opts.FeaturePGDSteps = 3

	fmt.Println("training FedProphet (adversarial cascade learning)...")
	res := core.New(opts).Run(env)

	fmt.Printf("\nClean accuracy:        %.1f%%\n", res.CleanAcc*100)
	fmt.Printf("PGD-5 accuracy:        %.1f%%\n", res.PGDAcc*100)
	fmt.Printf("AutoAttack accuracy:   %.1f%%\n", res.AAAcc*100)
	fmt.Printf("Modules:               %.0f\n", res.Extra["modules"])
	fmt.Printf("Memory reduction:      %.0f%% (%.0f KB -> %.0f KB per client)\n",
		res.Extra["mem_reduction"]*100,
		res.Extra["mem_full_bytes"]/1024, res.Extra["mem_module_bytes"]/1024)
	fmt.Printf("Simulated train time:  %.3f s (compute %.3f s, swap %.3f s)\n",
		res.Latency.Total(), res.Latency.Compute, res.Latency.DataAccess)
}
