// Paramserver: the distributed deployment path — a sharded HTTP parameter
// server built through the public pkg/fedprophet API, federating a small
// concurrent fleet over real HTTP on localhost.
//
//	go run ./examples/paramserver
//
// Six clients (half on the raw gob protocol, half pushing 8-bit error-fed
// compressed deltas) train a CNN3 on non-IID shards of the synthetic
// CIFAR10-S workload for five synchronous rounds. The server aggregates
// under parameter-range sharding: every push decodes and admits in parallel,
// a /stats poll never blocks a round, and the global model is bit-identical
// to single-shard (and pre-shard) aggregation. The final report reads the
// same /stats the benchmark (cmd/benchserve) and operators use.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/fldist"
	"fedprophet/internal/nn"
	"fedprophet/pkg/fedprophet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const (
		clients = 6
		rounds  = 5
		seed    = 11
	)
	build := func() *nn.Model {
		return nn.CNN3([]int{3, 16, 16}, 10, 4, rand.New(rand.NewSource(seed)))
	}
	m := build()

	srv := fedprophet.NewParamServer(nn.ExportParams(m), nn.ExportBNStats(m), clients,
		fedprophet.WithServerShards(4))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	serveCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(serveCtx, ln) }()
	url := "http://" + ln.Addr().String()
	fmt.Printf("parameter server on %s: quorum %d, %d shards, model %s\n",
		url, clients, srv.Shards(), m.Label)

	train, _ := data.Generate(data.CIFAR10SConfig(40, 10, seed))
	subs := data.PartitionNonIID(train, data.DefaultPartition(clients, seed))
	cfg := fl.DefaultConfig()
	cfg.LocalIters = 6
	cfg.Batch = 16

	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &fldist.Client{
				ID:      id,
				BaseURL: url,
				HTTP:    &http.Client{Timeout: 30 * time.Second},
				Model:   build(),
				Subset:  subs[id],
				Cfg:     cfg,
				Rng:     rand.New(rand.NewSource(seed + int64(id))),
			}
			wire := "raw gob"
			if id%2 == 0 {
				c.Compression = &fldist.Compression{Bits: 8}
				wire = "8-bit deltas"
			}
			fmt.Printf("  client %d: %d samples, wire: %s\n", id, subs[id].Len(), wire)
			if err := c.RunRounds(ctx, rounds, 0.05); err != nil {
				fmt.Printf("  client %d: %v\n", id, err)
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	cancel()
	<-done
	fmt.Printf("\n%d rounds in %.2fs (%.1f updates/s)\n",
		st.RoundsCompleted, elapsed.Seconds(),
		float64(st.UpdatesRaw+st.UpdatesCompressed)/elapsed.Seconds())
	fmt.Printf("wire: in %d B raw + %d B compressed | out %d B raw + %d B compressed\n",
		st.BytesInRaw, st.BytesInCompressed, st.BytesOutRaw, st.BytesOutCompressed)
	fmt.Printf("admit latency: p50 %.0fµs  p99 %.0fµs  (%d shards, %d raw + %d compressed updates)\n",
		st.AdmitP50Micros, st.AdmitP99Micros, st.Shards, st.UpdatesRaw, st.UpdatesCompressed)
}
