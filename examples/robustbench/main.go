// Robustbench: adversarial evaluation of standard vs adversarial training
// using this repository's attack suite.
//
//	go run ./examples/robustbench
//
// It trains two copies of a small CNN on a synthetic task — one with
// standard training, one with PGD-3 adversarial training — then sweeps the
// attack budget ε and reports robust accuracy under FGSM, PGD and the
// AutoAttack-style ensemble, reproducing the classic robustness/utility
// trade-off curve that motivates the paper.
package main

import (
	"fmt"
	"math/rand"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/internal/nn"
)

func train(adversarial bool, trainSet *data.Dataset, seed int64) *nn.Model {
	rng := rand.New(rand.NewSource(seed))
	m := nn.CNN3(trainSet.InShape, trainSet.NumClasses, 6, rng)
	opt := nn.NewSGD(0.05, 0.9, 1e-4)
	idx := make([]int, trainSet.Len())
	for i := range idx {
		idx[i] = i
	}
	eps := 8.0 / 255
	for epoch := 0; epoch < 12; epoch++ {
		for _, b := range data.Batches(idx, 16, rng) {
			x, y := data.Batch(trainSet, b)
			if adversarial {
				x = attack.Perturb(attack.PGDConfig(eps, 3), x, attack.CEGradFn(m, y), rng)
			}
			out := m.Forward(x, true)
			_, g := nn.SoftmaxCrossEntropy(out, y)
			nn.ZeroGrads(m)
			m.Backward(g)
			opt.Step(m.Params())
		}
	}
	return m
}

func main() {
	dcfg := data.SyntheticConfig{
		Name: "robustbench", Classes: 5, Shape: []int{3, 12, 12},
		TrainPerClass: 60, TestPerClass: 20,
		NoiseStd: 0.1, MixMax: 0.25, Seed: 11,
	}
	trainSet, testSet := data.Generate(dcfg)
	rng := rand.New(rand.NewSource(42))

	fmt.Println("training standard (ST) and adversarial (AT) models...")
	st := train(false, trainSet, 1)
	at := train(true, trainSet, 1)

	fmt.Printf("\nclean accuracy:  ST %.1f%%  AT %.1f%%\n\n",
		attack.CleanAccuracy(st, testSet, 32)*100,
		attack.CleanAccuracy(at, testSet, 32)*100)

	fmt.Printf("%-8s %-10s %-10s %-10s %-10s\n", "eps", "ST FGSM", "ST PGD-10", "AT PGD-10", "AT AA")
	for _, eps := range []float64{2.0 / 255, 4.0 / 255, 8.0 / 255, 12.0 / 255} {
		fgsmCfg := attack.Config{Eps: eps, StepSize: eps, Steps: 1, Norm: attack.LInf, ClampMin: 0, ClampMax: 1}
		stFGSM := attack.AdvAccuracy(st, testSet, 32, fgsmCfg, rng)
		stPGD := attack.AdvAccuracy(st, testSet, 32, attack.PGDConfig(eps, 10), rng)
		atPGD := attack.AdvAccuracy(at, testSet, 32, attack.PGDConfig(eps, 10), rng)
		atAA := attack.AutoAttackAccuracy(at, testSet, 32, eps, 10, rng)
		fmt.Printf("%-8.4f %-10.1f %-10.1f %-10.1f %-10.1f\n",
			eps, stFGSM*100, stPGD*100, atPGD*100, atAA*100)
	}
	fmt.Println("\n(accuracies in %; AT holds up under attack while ST collapses)")
}
