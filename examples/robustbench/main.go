// Robustbench: adversarial evaluation of standard vs adversarial federated
// training using the public pkg/fedprophet API and this repository's attack
// suite.
//
//	go run ./examples/robustbench
//
// It trains two global models through the public Runner — one with standard
// federated SGD (WithTrainPGD(0) / NoAttack), one with PGD adversarial
// training — then sweeps the attack budget ε over the trained models
// (Result.Model) and reports robust accuracy under FGSM, PGD and the
// AutoAttack-style ensemble, reproducing the classic robustness/utility
// trade-off curve that motivates the paper.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/pkg/fedprophet"
)

func train(ctx context.Context, pgdSteps int) *fedprophet.Result {
	res, err := fedprophet.Run(ctx,
		fedprophet.WithMethod("jFAT"),
		fedprophet.WithWorkload("cifar"),
		fedprophet.WithScale("quick"),
		fedprophet.WithSeed(11),
		fedprophet.WithRounds(8),
		fedprophet.WithTrainPGD(pgdSteps),
		fedprophet.WithClientParallelism(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	ctx := context.Background()

	fmt.Println("federated training: standard (ST) and adversarial (AT) global models...")
	st := train(ctx, 0)
	at := train(ctx, 3)

	// An independent synthetic test set for the sweep.
	_, testSet := data.Generate(data.CIFAR10SConfig(60, 20, 11))
	rng := rand.New(rand.NewSource(42))
	stModel, atModel := st.Model, at.Model

	fmt.Printf("\nclean accuracy:  ST %.1f%%  AT %.1f%%\n\n",
		attack.CleanAccuracy(stModel, testSet, 32)*100,
		attack.CleanAccuracy(atModel, testSet, 32)*100)

	fmt.Printf("%-8s %-10s %-10s %-10s %-10s\n", "eps", "ST FGSM", "ST PGD-10", "AT PGD-10", "AT AA")
	for _, eps := range []float64{2.0 / 255, 4.0 / 255, 8.0 / 255, 12.0 / 255} {
		fgsmCfg := attack.Config{Eps: eps, StepSize: eps, Steps: 1, Norm: attack.LInf, ClampMin: 0, ClampMax: 1}
		stFGSM := attack.AdvAccuracy(stModel, testSet, 32, fgsmCfg, rng)
		stPGD := attack.AdvAccuracy(stModel, testSet, 32, attack.PGDConfig(eps, 10), rng)
		atPGD := attack.AdvAccuracy(atModel, testSet, 32, attack.PGDConfig(eps, 10), rng)
		atAA := attack.AutoAttackAccuracy(atModel, testSet, 32, eps, 10, rng)
		fmt.Printf("%-8.4f %-10.1f %-10.1f %-10.1f %-10.1f\n",
			eps, stFGSM*100, stPGD*100, atPGD*100, atAA*100)
	}
	fmt.Println("\n(accuracies in %; AT holds up under attack while ST collapses)")
}
