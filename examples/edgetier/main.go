// Edgetier: hierarchical aggregation through the public API — two edge
// aggregators pre-fold cohorts of training clients and push one combined
// update each to the root, over real HTTP on localhost.
//
//	go run ./examples/edgetier
//
// Six clients train a CNN3 on non-IID shards of the synthetic CIFAR10-S
// workload, but none of them ever talks to the root: each cohort of three
// (one on the compressed delta wire, two raw) pushes to its edge, the edge
// folds the cohort into one weighted delta and pushes it upstream, and the
// root commits when both tier deltas arrive. The final report reads the
// edges' /stats upstream sections next to the root's: the root admitted two
// pushes per round where a flat fleet would have cost it six, and every
// cohort pull was served from the edges' caches.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/fldist"
	"fedprophet/internal/nn"
	"fedprophet/pkg/fedprophet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	const (
		nEdges  = 2
		fanIn   = 3
		clients = nEdges * fanIn
		rounds  = 4
		seed    = 11
	)
	build := func() *nn.Model {
		return nn.CNN3([]int{3, 16, 16}, 10, 4, rand.New(rand.NewSource(seed)))
	}
	m := build()

	// The root commits one round per full set of tier deltas: buffered
	// aggregation with K = number of edges.
	root := fedprophet.NewParamServer(nn.ExportParams(m), nn.ExportBNStats(m), 1,
		fedprophet.WithServerShards(4),
		fedprophet.WithBufferedAggregation(nEdges, 4))
	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	serveCtx, cancel := context.WithCancel(ctx)
	rootDone := make(chan error, 1)
	go func() { rootDone <- root.Serve(serveCtx, rootLn) }()
	rootURL := "http://" + rootLn.Addr().String()
	fmt.Printf("root on %s: commits every %d tier deltas, %d shards\n",
		rootURL, nEdges, root.Shards())

	// One edge per cohort: flush as soon as the whole cohort has pushed.
	// Serve handles graceful drain on shutdown; here the fleet finishes all
	// its rounds, so every flush fires on depth.
	edges := make([]*fedprophet.EdgeAggregator, nEdges)
	edgeURLs := make([]string, nEdges)
	edgeDone := make([]chan error, nEdges)
	for i := range edges {
		edges[i] = fedprophet.NewEdgeAggregator(rootURL,
			fedprophet.WithEdgeTier(fmt.Sprintf("cohort-%c", 'a'+i)),
			fedprophet.WithEdgeFlush(fanIn, 0),
			fedprophet.WithEdgeShards(4))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		edgeDone[i] = make(chan error, 1)
		e := edges[i]
		go func(c chan error, ln net.Listener) { c <- e.Serve(serveCtx, ln) }(edgeDone[i], ln)
		edgeURLs[i] = "http://" + ln.Addr().String()
		fmt.Printf("edge %q on %s → root (flush K=%d)\n", e.Name(), edgeURLs[i], fanIn)
	}

	train, _ := data.Generate(data.CIFAR10SConfig(40, 10, seed))
	subs := data.PartitionNonIID(train, data.DefaultPartition(clients, seed))
	cfg := fl.DefaultConfig()
	cfg.LocalIters = 6
	cfg.Batch = 16

	var wg sync.WaitGroup
	start := time.Now()
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &fldist.Client{
				ID:      id,
				BaseURL: edgeURLs[id/fanIn], // cohort clients never see the root
				HTTP:    &http.Client{Timeout: 30 * time.Second},
				Model:   build(),
				Subset:  subs[id],
				Cfg:     cfg,
				Rng:     rand.New(rand.NewSource(seed + int64(id))),
			}
			wire := "raw gob"
			if id%fanIn == 0 {
				c.Compression = &fldist.Compression{Bits: 8}
				wire = "8-bit deltas"
			}
			fmt.Printf("  client %d → edge %q: %d samples, wire: %s\n",
				id, edges[id/fanIn].Name(), subs[id].Len(), wire)
			if err := c.RunRounds(ctx, rounds, 0.05); err != nil {
				fmt.Printf("  client %d: %v\n", id, err)
			}
		}(id)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Let the last flush land, then read the tier's accounting before
	// shutting everything down.
	deadline := time.Now().Add(10 * time.Second)
	for root.RoundsCompleted() < rounds && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	rst := root.Stats()
	fmt.Printf("\n%d root rounds in %.2fs: %d push admissions at the root (flat fleet: %d)\n",
		rst.RoundsCompleted, elapsed.Seconds(),
		rst.UpdatesRaw+rst.UpdatesCompressed, int64(clients*rounds))
	for _, e := range edges {
		up := e.Stats().Upstream
		fmt.Printf("edge %q: %d upstream pushes (%d by depth, %d by age, %d by drain), %d cohort pulls served from cache, base round %d\n",
			up.Cohort, up.Pushes, up.FlushK, up.FlushAge, up.FlushDrain,
			up.CohortPulls, up.BaseRound)
	}

	cancel()
	<-rootDone
	for _, c := range edgeDone {
		<-c
	}
}
