// Edgefleet: a systems-level study of FedProphet's server coordinator on a
// heterogeneous edge fleet — no training, pure cost-model analysis.
//
//	go run ./examples/edgefleet
//
// It partitions VGG16-S under the paper's Rmin = 20% constraint, samples the
// Table 5 device pool under balanced and unbalanced heterogeneity, and shows
// for one communication round which modules Differentiated Module Assignment
// gives each client and what the round latency would be with and without
// memory swapping.
package main

import (
	"fmt"
	"math/rand"

	"fedprophet/internal/cascade"
	"fedprophet/internal/core"
	"fedprophet/internal/device"
	"fedprophet/internal/fldist"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/quant"
	"fedprophet/internal/simlat"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	model := nn.VGG16S([]int{3, 16, 16}, 10, 4, rng)
	full := memmodel.MemReqModel(model, 8)
	rmin := int64(0.2 * float64(full.TotalBytes))
	casc := cascade.Partition(model, rmin, 8, rng)

	fmt.Printf("model %s: %d params, training memory %.1f KB\n",
		model.Label, nn.NumParams(model), float64(full.TotalBytes)/1024)
	fmt.Printf("partition at Rmin = 20%%: %d modules\n\n", len(casc.Modules))
	for i := range casc.Modules {
		fmt.Printf("  module %d: %2d atoms, mem %6.1f KB, fwd %6.2f MFLOPs\n",
			i+1, len(casc.Modules[i].Atoms),
			float64(casc.ModuleMemReq(i))/1024,
			float64(casc.ModuleForwardFLOPs(i))/1e6)
	}

	for _, h := range []device.Heterogeneity{device.Balanced, device.Unbalanced} {
		fmt.Printf("\n--- one round under %s heterogeneity (module 1 in training) ---\n", h)
		fleet := device.NewFleet(device.CIFARPool(), 10, h, rng)
		cal := simlat.NewMemCalibration(fleet.PoolMaxMemGB(), full.TotalBytes)

		snaps := make([]device.Snapshot, 10)
		perfMin := 1e18
		for c := range snaps {
			snaps[c] = fleet.Snapshot(c, rng)
			if snaps[c].AvailPerf < perfMin {
				perfMin = snaps[c].AvailPerf
			}
		}
		var withDMA, noSwap []simlat.Latency
		var rawWire, wire8, wire4 int64
		for c, snap := range snaps {
			budget := cal.Budget(snap.AvailMemGB)
			to := core.AssignModules(casc, 0, budget, snap.AvailPerf, perfMin, true)

			// Wire traffic this client causes in one round: pull + push of
			// its assigned module range, raw float64 vs the compressed
			// delta codec at 8 and 4 bits (docs/WIRE.md).
			vec := rangeParams(casc, 0, to)
			rawWire += int64(2 * 8 * len(vec))
			wire8 += int64(2 * quant.QuantizeChunks(vec, 8, fldist.DefaultChunk).Bytes())
			wire4 += int64(2 * quant.QuantizeChunks(vec, 4, fldist.DefaultChunk).Bytes())
			fwd := casc.RangeForwardFLOPs(0, to)
			flops := 8 * memmodel.TrainingFLOPs(fwd, 8, 10)
			lat := simlat.ClientLatency(simlat.Work{
				FLOPs: flops, MemReq: casc.RangeMemReq(0, to), MemBudget: budget,
				Passes: 8 * simlat.PassesPerBatch(10), Swap: false,
			}, snap)
			withDMA = append(withDMA, lat)

			// The jFAT alternative: full model with swapping.
			jl := simlat.ClientLatency(simlat.Work{
				FLOPs:  8 * memmodel.TrainingFLOPs(full.ForwardFLOPs, 8, 10),
				MemReq: full.TotalBytes, MemBudget: budget,
				Passes: 8 * simlat.PassesPerBatch(10), Swap: true,
			}, snap)
			noSwap = append(noSwap, jl)

			fmt.Printf("  client %d on %-16s budget %5.0f KB -> modules 1..%d  (FedProphet %.3fs, jFAT %.3fs)\n",
				c, snap.Device.Name, float64(budget)/1024, to+1, lat.Total(), jl.Total())
		}
		rp := simlat.RoundLatency(withDMA)
		rj := simlat.RoundLatency(noSwap)
		fmt.Printf("  round latency: FedProphet %.3fs vs jFAT %.3fs (%.1fx speedup)\n",
			rp.Total(), rj.Total(), rj.Total()/rp.Total())
		fmt.Printf("  round wire bytes (pull+push, all clients): raw %.1f KB, 8-bit %.1f KB (%.1fx), 4-bit %.1f KB (%.1fx)\n",
			float64(rawWire)/1024,
			float64(wire8)/1024, float64(rawWire)/float64(wire8),
			float64(wire4)/1024, float64(rawWire)/float64(wire4))
	}
}

// rangeParams concatenates the parameter vectors of cascade modules
// from..to inclusive — the payload a client assigned that range would move
// per round.
func rangeParams(casc *cascade.Cascade, from, to int) []float64 {
	var vec []float64
	for m := from; m <= to; m++ {
		for _, atom := range casc.Modules[m].Atoms {
			vec = append(vec, nn.ExportParams(atom)...)
		}
	}
	return vec
}
