module fedprophet

go 1.24
