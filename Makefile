# Build, verify and benchmark the FedProphet reproduction.
#
#   make ci      - everything the tier-1 gate runs: build, vet, test, race
#   make bench   - repository benchmarks (paper tables/figures) with -benchmem
#   make bench-parallel - client-parallelism wall-clock benchmark
#   make bench-conv     - direct vs GEMM convolution backend benchmark
#   make bench-json     - record the conv-backend baseline to BENCH_conv.json
#   make cover   - tests with coverage summary

GO ?= go

.PHONY: all build vet test test-race ci bench bench-parallel bench-conv bench-json cover clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-bearing packages (tensor worker pool + scratch arena,
# parallel GEMM convolutions, client-parallel training) under the race
# detector.
test-race:
	$(GO) test -race ./internal/tensor/... ./internal/nn/... ./internal/fl/...

ci: build vet test test-race

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

bench-parallel:
	$(GO) test -bench=ClientParallelism -benchmem -benchtime=1x ./pkg/fedprophet

bench-conv:
	$(GO) test -bench=ConvBackends -benchmem -benchtime=2s -run '^$$' .

bench-json:
	$(GO) run ./cmd/benchconv -out BENCH_conv.json

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
