# Build, verify and benchmark the FedProphet reproduction.
#
#   make ci      - everything the tier-1 gate runs: build, vet, test, race, docs links
#   make bench   - repository benchmarks (paper tables/figures) with -benchmem
#   make bench-parallel - client-parallelism wall-clock benchmark
#   make bench-conv     - direct vs GEMM convolution backend benchmark
#   make bench-json     - record the conv-backend baseline to BENCH_conv.json
#   make bench-wire     - record the wire-protocol baseline to BENCH_wire.json
#                         (bytes/round + round latency at raw/8/4/2 bits)
#   make check-docs     - fail on dead relative links in README/docs
#   make cover   - tests with coverage summary

GO ?= go

.PHONY: all build vet test test-race check-docs ci bench bench-parallel bench-conv bench-json bench-wire cover clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-bearing packages (tensor worker pool + scratch arena,
# parallel GEMM convolutions, client-parallel training, the HTTP transport
# with concurrent compressed/raw clients) under the race detector.
test-race:
	$(GO) test -race ./internal/tensor/... ./internal/nn/... ./internal/fl/... ./internal/fldist/...

# Dead relative links in the markdown docs fail the build.
check-docs:
	$(GO) run ./cmd/checkdocs README.md ROADMAP.md docs

ci: build vet test test-race check-docs

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

bench-parallel:
	$(GO) test -bench=ClientParallelism -benchmem -benchtime=1x ./pkg/fedprophet

bench-conv:
	$(GO) test -bench=ConvBackends -benchmem -benchtime=2s -run '^$$' .

bench-json:
	$(GO) run ./cmd/benchconv -out BENCH_conv.json

bench-wire:
	$(GO) run ./cmd/benchwire -out BENCH_wire.json

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
