# Build, verify and benchmark the FedProphet reproduction.
#
#   make ci      - everything the tier-1 gate runs: build, vet, lint, test,
#                  race, codec fuzz pass, docs links
#   make bench   - repository benchmarks (paper tables/figures) with -benchmem
#   make bench-parallel - client-parallelism wall-clock benchmark
#   make bench-conv     - direct vs GEMM convolution backend benchmark
#   make bench-json     - record the conv-backend baseline to BENCH_conv.json
#   make bench-wire     - record the wire-protocol baseline to BENCH_wire.json
#                         (bytes/round + round latency at raw/8/4/2 bits)
#   make bench-serve    - record the parameter-server baseline to BENCH_serve.json
#                         (updates/sec + push latency + allocs/op, single-mutex
#                         vs sharded, at N=4/16/64 concurrent clients, plus the
#                         straggler phases: sync quorum vs buffered async with
#                         one 4x-slow client, recording wasted training passes,
#                         plus the pull-heavy phase: 256 concurrent pullers of
#                         a ~1M-parameter model under cache churn;
#                         pinned to GOMAXPROCS=4 so the concurrency plane is
#                         exercised even on smaller CI hosts)
#   make smoke-edge     - 2-tier hierarchical topology check: edge-aggregated
#                         vs flat fleet, bit-identical final models (in ci)
#   make smoke-pull     - ~2s serve-path check: high-fan-out pull phase under
#                         cache churn against both servers (in ci)
#   make smoke-wal      - ~2s crash drill: WAL-backed server SIGKILLed
#                         mid-round twice, recovered, federation finished,
#                         final model bit-identical (in ci)
#   make check-docs     - fail on dead relative links in README/docs
#   make lint    - fplint: the repo's own analyzers (atomicfield, lockorder,
#                  determinism, sentinelerr, poolleak) over the whole module
#   make cover   - tests with coverage summary

GO ?= go

.PHONY: all build vet lint test test-race fuzz check-docs smoke-serve smoke-edge smoke-pull smoke-wal ci bench bench-parallel bench-conv bench-json bench-wire bench-serve cover clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fplint (cmd/fplint + internal/lint) machine-checks the invariants
# docs/ARCHITECTURE.md documents in prose: atomic fields stay atomic, mutexes
# respect the declared hierarchy, deterministic packages stay clock- and
# map-order-free, sentinel errors are matched with errors.Is, and pooled
# buffers are always returned. Built from this module with the standard
# library only — pinned, offline, no tool downloads. Also runnable as
# `go vet -vettool=$(CURDIR)/bin/fplint ./...`.
lint:
	$(GO) build -o bin/fplint ./cmd/fplint
	./bin/fplint ./...

test:
	$(GO) test ./...

# The concurrency-bearing packages (tensor worker pool + scratch arena,
# parallel GEMM convolutions, client-parallel training, the HTTP transport
# with sharded aggregation and concurrent compressed/raw clients, the pooled
# streaming codec) under the race detector.
test-race:
	$(GO) test -race ./internal/tensor/... ./internal/nn/... ./internal/fl/... ./internal/fldist/... ./internal/quant/...

# The wire-codec fuzz target: the checked-in seed corpus (raw, dense, sparse
# and corrupted frames) plus a short live-fuzz pass, so adversarial frames
# hitting quant.Decode/StreamDecoder keep returning ErrCodec instead of
# panicking or over-allocating. ~5s; part of ci.
fuzz:
	$(GO) test ./internal/quant -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime 5s

# Dead relative links in the markdown docs — and dead *.md references cited
# inside Go doc comments — fail the build.
check-docs:
	$(GO) run ./cmd/checkdocs -gosrc . README.md ROADMAP.md docs

# A ~2-second benchserve run (N=8 fleet, both server implementations, plus
# the sync-vs-async straggler phases) so the concurrent push path and the
# buffered-aggregation plane are exercised on every build, not just when
# someone records a baseline.
smoke-serve:
	GOMAXPROCS=4 $(GO) run ./cmd/benchserve -smoke

# A ~2-second hierarchical topology check over real HTTP: 2 edge aggregators
# × 4 clients vs the same 8 clients flat, asserting the final models are
# bit-identical and the root saw 4x fewer push admissions.
smoke-edge:
	GOMAXPROCS=4 $(GO) run ./cmd/benchserve -smoke-edge

# A ~2-second pull-fan-out check: 64 concurrent pullers over mixed codec
# variants against both server implementations while rounds advance and the
# served cache churns — asserts the serve path survives fan-out (every
# puller completes, bytes flow), with no throughput assertion (CI machines
# are not benchmarking machines).
smoke-pull:
	GOMAXPROCS=4 $(GO) run ./cmd/benchserve -smoke-pull

# The ~2-second WAL crash drill: a child-process server is kill -9'd
# mid-round with admitted-but-uncommitted updates buffered, recovered (twice),
# the federation finishes, and the final recovered model must be bit-identical
# to the last served snapshot.
smoke-wal:
	GOMAXPROCS=4 $(GO) run ./cmd/benchserve -smoke-wal

# lint runs right after vet: invariant violations fail the build before the
# minutes-long test/race/smoke stages spend their time.
ci: build vet lint test test-race fuzz check-docs smoke-serve smoke-edge smoke-pull smoke-wal

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

bench-parallel:
	$(GO) test -bench=ClientParallelism -benchmem -benchtime=1x ./pkg/fedprophet

bench-conv:
	$(GO) test -bench=ConvBackends -benchmem -benchtime=2s -run '^$$' .

bench-json:
	$(GO) run ./cmd/benchconv -out BENCH_conv.json

bench-wire:
	$(GO) run ./cmd/benchwire -out BENCH_wire.json \
		-timestamp $$(date -u +%Y-%m-%dT%H:%M:%SZ)

bench-serve:
	GOMAXPROCS=4 $(GO) run ./cmd/benchserve -duration 5s -out BENCH_serve.json \
		-timestamp $$(date -u +%Y-%m-%dT%H:%M:%SZ)

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
