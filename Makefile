# Build, verify and benchmark the FedProphet reproduction.
#
#   make ci      - everything the tier-1 gate runs: build, vet, test
#   make bench   - repository benchmarks (paper tables/figures) with -benchmem
#   make bench-parallel - client-parallelism wall-clock benchmark
#   make cover   - tests with coverage summary

GO ?= go

.PHONY: all build vet test ci bench bench-parallel cover clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

ci: build vet test

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

bench-parallel:
	$(GO) test -bench=ClientParallelism -benchmem -benchtime=1x ./pkg/fedprophet

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
