// Package fedprophet's repository-level benchmarks regenerate every table
// and figure of the FedProphet paper (MLSys 2025) at the quick scale and
// print the same rows the paper reports. Run them with
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Each benchmark corresponds to one paper artifact; docs/ARCHITECTURE.md
// maps the packages they exercise. Absolute values come from the synthetic
// substrate; the shapes — method orderings, latency breakdowns, memory
// reductions — are the reproduction targets, with the measured systems
// baselines tracked in BENCH_conv.json, BENCH_wire.json and
// BENCH_serve.json.
package fedprophet_test

import (
	"context"
	"math/rand"
	"testing"

	"fedprophet/internal/core"
	"fedprophet/internal/device"
	"fedprophet/internal/exp"
	"fedprophet/internal/nn"
	"fedprophet/internal/tensor"
)

// benchScale is the trimmed sweep scale shared with cmd/experiments.
func benchScale() exp.Scale { return exp.TrimmedScale() }

func BenchmarkTable1ModelSizes(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rep := exp.Table1(s, 1)
		b.Log("\n" + rep.String())
	}
}

func BenchmarkFigure2OverheadBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []exp.Workload{exp.CIFAR10S(), exp.Caltech256S(true)} {
			rep := exp.Figure2(w, exp.QuickScale(), 1)
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkFigure6DevicesAndMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := exp.Figure6(exp.CIFAR10S(), exp.QuickScale(), 1)
		b.Log("\n" + rep.String())
	}
}

func BenchmarkTable2AndFigure7AllMethods(b *testing.B) {
	s := benchScale()
	w := exp.CIFAR10S()
	for i := 0; i < b.N; i++ {
		results := exp.RunSetting(w, s, device.Balanced, 1)
		b.Log("\n" + exp.Table2(w, device.Balanced, results).String())
		b.Log("\n" + exp.Figure7(w, device.Balanced, results).String())
	}
}

func BenchmarkFigure8MuSweep(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rep := exp.Figure8(exp.CIFAR10S(), s, []float64{1e-6, 1e-4, 1e-2}, 1)
		b.Log("\n" + rep.String())
	}
}

func BenchmarkFigure9RminSweep(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rep := exp.Figure9(exp.CIFAR10S(), s, []float64{0.2, 0.5, 1.0}, 1)
		b.Log("\n" + rep.String())
	}
}

func BenchmarkTable3APADMAAblation(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rep := exp.Table3(exp.CIFAR10S(), s, device.Balanced, 1)
		b.Log("\n" + rep.String())
	}
}

func BenchmarkFigure10PerturbationTrajectory(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rep := exp.Figure10(exp.CIFAR10S(), s, 1)
		b.Log("\n" + rep.String())
	}
}

func BenchmarkTable4DMALatency(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rep := exp.Table4(exp.CIFAR10S(), s, device.Balanced, 1)
		b.Log("\n" + rep.String())
	}
}

func BenchmarkPartitionTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []exp.Workload{exp.CIFAR10S(), exp.Caltech256S(true)} {
			rep := exp.PartitionTable(w, exp.QuickScale(), 1)
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkDeviceTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, rep := range exp.DeviceTable() {
			b.Log("\n" + rep.String())
		}
	}
}

// BenchmarkAblationQuantizedUploads measures the §8 extension: FedProphet
// with 8-bit and 4-bit quantized module uploads vs full-precision, reporting
// accuracy and upload traffic.
func BenchmarkAblationQuantizedUploads(b *testing.B) {
	s := benchScale()
	w := exp.CIFAR10S()
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{0, 8, 4} {
			opts := exp.FedProphetOptions(w, s)
			opts.UploadBits = bits
			env := exp.NewEnv(w, s, device.Balanced, 1)
			res, err := core.New(opts).Run(context.Background(), env)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("uploadBits=%d clean=%.1f%% pgd=%.1f%% comm=%.1f KB",
				bits, res.CleanAcc*100, res.PGDAcc*100, res.Extra["comm_up_bytes"]/1024)
		}
	}
}

// BenchmarkConvBackends measures the tentpole perf lever: forward+backward
// of a representative mid-stack convolution at batch 16, direct loops vs the
// im2col/GEMM fast path. `make bench-json` records the same comparison to
// BENCH_conv.json.
func BenchmarkConvBackends(b *testing.B) {
	for _, backend := range []nn.ConvBackend{nn.ConvDirect, nn.ConvGEMM} {
		b.Run(backend.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			c := nn.NewConv2D(32, 32, 3, 1, 1, false, rng)
			c.Backend = backend
			x := tensor.Randn(rng, 1, 16, 32, 8, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := c.Forward(x, true)
				nn.ZeroGrads(c)
				c.Backward(out)
			}
		})
	}
}
