package attack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedprophet/internal/tensor"
)

func TestMIFGSMStaysInBallAndClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.Uniform(r, 0.1, 0.9, 2, 3, 4, 4)
		target := tensor.Uniform(r, -1, 2, 2, 3, 4, 4)
		adv := MIFGSM(0.1, 5, 1.0, x, quadGrad(target), rng)
		for i := range adv.Data {
			if math.Abs(adv.Data[i]-x.Data[i]) > 0.1+1e-12 {
				return false
			}
			if adv.Data[i] < 0 || adv.Data[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMIFGSMIncreasesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.Uniform(rng, 0.3, 0.7, 2, 2, 4, 4)
	target := tensor.Uniform(rng, 0.3, 0.7, 2, 2, 4, 4)
	g := quadGrad(target)
	l0, _ := g(x)
	adv := MIFGSM(0.15, 8, 1.0, x, g, rng)
	l1, _ := g(adv)
	if l1 <= l0 {
		t.Fatalf("MI-FGSM failed to increase loss: %g -> %g", l0, l1)
	}
}

func TestMIFGSMDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Uniform(rng, 0, 1, 1, 2, 4, 4)
	orig := x.Clone()
	target := tensor.Uniform(rng, 0, 1, 1, 2, 4, 4)
	MIFGSM(0.1, 3, 1.0, x, quadGrad(target), rng)
	for i := range x.Data {
		if x.Data[i] != orig.Data[i] {
			t.Fatal("MIFGSM mutated its input")
		}
	}
}

func TestSquareAttackStaysInBall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.Uniform(rng, 0.2, 0.8, 3, 2, 6, 6)
	loss := func(a *tensor.Tensor) float64 {
		// Reward moving away from x.
		return tensor.Sub(a, x).L2Norm()
	}
	adv := SquareAttack(0.1, 50, x, loss, rng)
	for i := range adv.Data {
		if math.Abs(adv.Data[i]-x.Data[i]) > 0.1+1e-12 {
			t.Fatalf("square attack left the ball at %d", i)
		}
		if adv.Data[i] < 0 || adv.Data[i] > 1 {
			t.Fatal("square attack left [0,1]")
		}
	}
}

func TestSquareAttackNeverDecreasesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Uniform(rng, 0.2, 0.8, 2, 2, 6, 6)
	loss := func(a *tensor.Tensor) float64 {
		return tensor.Sub(a, x).L2Norm()
	}
	l0 := loss(x)
	adv := SquareAttack(0.1, 80, x, loss, rng)
	if loss(adv) < l0 {
		t.Fatalf("square attack decreased the loss: %g -> %g", l0, loss(adv))
	}
	// With a strictly-increasing objective, some iteration must be kept.
	if loss(adv) == l0 {
		t.Fatal("square attack made no progress on a trivially improvable loss")
	}
}

func TestSquareAttackRejectsNon4D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on 2-D input")
		}
	}()
	rng := rand.New(rand.NewSource(6))
	x := tensor.Uniform(rng, 0, 1, 2, 6)
	SquareAttack(0.1, 3, x, func(*tensor.Tensor) float64 { return 0 }, rng)
}
