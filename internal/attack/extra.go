package attack

import (
	"math"
	"math/rand"

	"fedprophet/internal/nn"
	"fedprophet/internal/tensor"
)

// MIFGSM is the momentum iterative FGSM attack (Dong et al. 2018): PGD whose
// ascent direction is the sign of an accumulated, L1-normalized gradient
// momentum. It transfers better across models than plain PGD and provides a
// differently-biased member for attack ensembles.
func MIFGSM(eps float64, steps int, decay float64, x *tensor.Tensor, grad GradFn, rng *rand.Rand) *tensor.Tensor {
	adv := x.Clone()
	stepSize := eps / float64(steps)
	momentum := tensor.New(x.Shape()...)
	for s := 0; s < steps; s++ {
		_, g := grad(adv)
		// L1-normalize the gradient per sample before accumulating.
		bsz := x.Dim(0)
		per := x.Len() / bsz
		for b := 0; b < bsz; b++ {
			gs := g.Data[b*per : (b+1)*per]
			l1 := 0.0
			for _, v := range gs {
				l1 += math.Abs(v)
			}
			if l1 == 0 {
				continue
			}
			inv := 1.0 / l1
			ms := momentum.Data[b*per : (b+1)*per]
			for i := range gs {
				ms[i] = decay*ms[i] + gs[i]*inv
			}
		}
		for i := range adv.Data {
			if momentum.Data[i] > 0 {
				adv.Data[i] += stepSize
			} else if momentum.Data[i] < 0 {
				adv.Data[i] -= stepSize
			}
		}
		cfg := Config{Eps: eps, Norm: LInf, ClampMin: 0, ClampMax: 1}
		projectAndClamp(cfg, adv, x)
	}
	return adv
}

// TargetedCEGradFn adapts a model to a GradFn that DECREASES the
// cross-entropy toward attacker-chosen target labels: ascending this
// gradient pushes predictions toward the targets. Real AutoAttack's APGD-T
// member works this way; targeted attacks often break models that resist
// untargeted ones.
func TargetedCEGradFn(model nn.Layer, targets []int) GradFn {
	return func(x *tensor.Tensor) (float64, *tensor.Tensor) {
		out := model.Forward(x, false)
		loss, g := nn.SoftmaxCrossEntropy(out, targets)
		nn.ZeroGrads(model)
		dx := model.Backward(g)
		// Negate: maximizing the returned objective minimizes CE(targets).
		dx.ScaleInPlace(-1)
		return -loss, dx
	}
}

// TargetedPGD runs PGD toward each sample's most confusable wrong class
// (the runner-up of the clean prediction), a cheap stand-in for APGD-T's
// per-class sweep.
func TargetedPGD(cfg Config, model nn.Layer, x *tensor.Tensor, labels []int, rng *rand.Rand) *tensor.Tensor {
	out := model.Forward(x, false)
	bsz, k := out.Dim(0), out.Dim(1)
	targets := make([]int, bsz)
	for b := 0; b < bsz; b++ {
		best, bestV := -1, 0.0
		for j := 0; j < k; j++ {
			if j == labels[b] {
				continue
			}
			if v := out.At(b, j); best < 0 || v > bestV {
				best, bestV = j, v
			}
		}
		targets[b] = best
	}
	return Perturb(cfg, x, TargetedCEGradFn(model, targets), rng)
}

// LossFn evaluates only the attacked loss (no gradient), for gradient-free
// attacks.
type LossFn func(x *tensor.Tensor) float64

// SquareAttack is a simplified gradient-free random-search attack in the
// spirit of Andriushchenko et al. (2020): at each iteration a random square
// patch of a random sample is set to ±eps (vertical stripes per channel),
// and the change is kept only if the loss increases. Real AutoAttack includes
// Square as its black-box member; this surrogate plays the same role of
// catching gradient-masked models.
func SquareAttack(eps float64, iters int, x *tensor.Tensor, loss LossFn, rng *rand.Rand) *tensor.Tensor {
	if x.NumDims() != 4 {
		panic("attack: SquareAttack expects NCHW input")
	}
	adv := x.Clone()
	bsz, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	best := loss(adv)
	for it := 0; it < iters; it++ {
		// Patch side shrinks over time, as in the original schedule.
		frac := 0.4 * math.Pow(0.5, float64(4*it)/float64(iters+1))
		side := int(math.Max(1, math.Round(frac*float64(min(h, w)))))
		b := rng.Intn(bsz)
		py := rng.Intn(h - side + 1)
		px := rng.Intn(w - side + 1)

		saved := make([]float64, 0, c*side*side)
		for ch := 0; ch < c; ch++ {
			sign := eps
			if rng.Intn(2) == 0 {
				sign = -eps
			}
			for dy := 0; dy < side; dy++ {
				for dx := 0; dx < side; dx++ {
					idx := ((b*c+ch)*h+py+dy)*w + px + dx
					saved = append(saved, adv.Data[idx])
					v := x.Data[idx] + sign
					if v < 0 {
						v = 0
					} else if v > 1 {
						v = 1
					}
					adv.Data[idx] = v
				}
			}
		}
		cur := loss(adv)
		if cur > best {
			best = cur
		} else {
			// Revert.
			si := 0
			for ch := 0; ch < c; ch++ {
				for dy := 0; dy < side; dy++ {
					for dx := 0; dx < side; dx++ {
						idx := ((b*c+ch)*h+py+dy)*w + px + dx
						adv.Data[idx] = saved[si]
						si++
					}
				}
			}
		}
	}
	return adv
}

// CELossFn adapts a model to a LossFn on the cross-entropy objective.
func CELossFn(model nn.Layer, labels []int) LossFn {
	return func(x *tensor.Tensor) float64 {
		out := model.Forward(x, false)
		l, _ := nn.SoftmaxCrossEntropy(out, labels)
		return l
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
