package attack

import (
	"math"
	"math/rand"
	"testing"

	"fedprophet/internal/data"
	"fedprophet/internal/nn"
)

func TestTargetedPGDStaysInBall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := nn.CNN3([]int{2, 8, 8}, 4, 4, rng)
	cfg := data.SyntheticConfig{
		Name: "t", Classes: 4, Shape: []int{2, 8, 8},
		TrainPerClass: 4, TestPerClass: 2,
		NoiseStd: 0.08, MixMax: 0.2, Seed: 2,
	}
	train, _ := data.Generate(cfg)
	x, y := data.Batch(train, []int{0, 1, 2, 3})
	m.Forward(x, true) // warm BN

	eps := 8.0 / 255
	adv := TargetedPGD(PGDConfig(eps, 5), m, x, y, rng)
	for i := range adv.Data {
		if math.Abs(adv.Data[i]-x.Data[i]) > eps+1e-12 {
			t.Fatal("targeted PGD left the ball")
		}
		if adv.Data[i] < 0 || adv.Data[i] > 1 {
			t.Fatal("targeted PGD left [0,1]")
		}
	}
}

func TestTargetedPGDRaisesTargetProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Train a model so predictions are meaningful.
	m, test := trainTinyModel(t, false)
	x, y := data.Batch(test, []int{0, 1, 2, 3, 4, 5})

	// Pick the runner-up classes as targets (same rule as TargetedPGD).
	out := m.Forward(x, false)
	targets := make([]int, len(y))
	for b := range y {
		best, bestV := -1, 0.0
		for j := 0; j < out.Dim(1); j++ {
			if j == y[b] {
				continue
			}
			if v := out.At(b, j); best < 0 || v > bestV {
				best, bestV = j, v
			}
		}
		targets[b] = best
	}
	probBefore := nn.Softmax(out)

	eps := 12.0 / 255
	adv := TargetedPGD(PGDConfig(eps, 10), m, x, y, rng)
	probAfter := nn.Softmax(m.Forward(adv, false))

	raised := 0
	for b := range y {
		if probAfter.At(b, targets[b]) > probBefore.At(b, targets[b]) {
			raised++
		}
	}
	if raised < len(y)/2 {
		t.Fatalf("targeted PGD raised target probability on only %d/%d samples", raised, len(y))
	}
}

func TestTargetedCEGradFnSignConvention(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := nn.CNN3([]int{2, 8, 8}, 4, 4, rng)
	x, _ := data.Batch(mustDataset(t), []int{0, 1})
	m.Forward(x, true)
	g := TargetedCEGradFn(m, []int{0, 1})
	loss, _ := g(x)
	if loss > 0 {
		t.Fatalf("objective must be −CE ≤ 0, got %v", loss)
	}
}

func mustDataset(t *testing.T) *data.Dataset {
	t.Helper()
	cfg := data.SyntheticConfig{
		Name: "t", Classes: 4, Shape: []int{2, 8, 8},
		TrainPerClass: 2, TestPerClass: 1,
		NoiseStd: 0.05, MixMax: 0.1, Seed: 5,
	}
	train, _ := data.Generate(cfg)
	return train
}
