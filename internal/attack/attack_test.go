package attack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedprophet/internal/data"
	"fedprophet/internal/nn"
	"fedprophet/internal/tensor"
)

// quadGrad is a simple concave loss −‖x−target‖² whose PGD maximum inside a
// ball is the projection of target.
func quadGrad(target *tensor.Tensor) GradFn {
	return func(x *tensor.Tensor) (float64, *tensor.Tensor) {
		g := tensor.Sub(target, x) // gradient of −½‖x−t‖² is (t−x)
		l := -0.5 * math.Pow(tensor.Sub(x, target).L2Norm(), 2)
		return l, g.ScaleInPlace(2)
	}
}

func TestPGDStaysInLInfBall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.Uniform(r, 0.2, 0.8, 2, 6)
		target := tensor.Uniform(r, -1, 2, 2, 6)
		cfg := Config{Eps: 0.1, StepSize: 0.03, Steps: 7, Norm: LInf,
			RandomStart: true, ClampMin: 0, ClampMax: 1}
		adv := Perturb(cfg, x, quadGrad(target), rng)
		for i := range adv.Data {
			d := math.Abs(adv.Data[i] - x.Data[i])
			if d > cfg.Eps+1e-12 {
				return false
			}
			if adv.Data[i] < 0 || adv.Data[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPGDStaysInL2BallPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := tensor.Randn(r, 1, 3, 8)
		target := tensor.Randn(r, 3, 3, 8)
		cfg := FeaturePGDConfig(0.5, 6)
		adv := Perturb(cfg, x, quadGrad(target), rng)
		per := 8
		for b := 0; b < 3; b++ {
			n := 0.0
			for i := 0; i < per; i++ {
				d := adv.Data[b*per+i] - x.Data[b*per+i]
				n += d * d
			}
			if math.Sqrt(n) > cfg.Eps*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPGDIncreasesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Uniform(rng, 0.3, 0.7, 2, 10)
	target := tensor.Uniform(rng, 0.3, 0.7, 2, 10)
	g := quadGrad(target)
	l0, _ := g(x)
	cfg := Config{Eps: 0.2, StepSize: 0.05, Steps: 10, Norm: LInf, ClampMin: 0, ClampMax: 1}
	adv := Perturb(cfg, x, g, rng)
	l1, _ := g(adv)
	if l1 <= l0 {
		t.Fatalf("PGD failed to increase loss: %g -> %g", l0, l1)
	}
}

func TestPGDDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := tensor.Uniform(rng, 0, 1, 2, 5)
	orig := x.Clone()
	target := tensor.Uniform(rng, 0, 1, 2, 5)
	Perturb(PGDConfig(0.1, 3), x, quadGrad(target), rng)
	for i := range x.Data {
		if x.Data[i] != orig.Data[i] {
			t.Fatal("Perturb mutated its input")
		}
	}
}

func TestFGSMEqualsOneStepSign(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Uniform(rng, 0.4, 0.6, 1, 6)
	// Loss with constant gradient direction (+1,−1,+1,...).
	g := func(in *tensor.Tensor) (float64, *tensor.Tensor) {
		gr := tensor.New(in.Shape()...)
		for i := range gr.Data {
			if i%2 == 0 {
				gr.Data[i] = 1
			} else {
				gr.Data[i] = -1
			}
		}
		return 0, gr
	}
	adv := FGSM(0.05, x, g, rng)
	for i := range adv.Data {
		want := x.Data[i] + 0.05
		if i%2 == 1 {
			want = x.Data[i] - 0.05
		}
		if math.Abs(adv.Data[i]-want) > 1e-12 {
			t.Fatalf("FGSM[%d] = %v, want %v", i, adv.Data[i], want)
		}
	}
}

// trainTinyModel fits a small CNN on a tiny synthetic set; used by the
// integration tests below.
func trainTinyModel(t *testing.T, adversarial bool) (*nn.Model, *data.Dataset) {
	t.Helper()
	cfg := data.SyntheticConfig{
		Name: "t", Classes: 3, Shape: []int{2, 8, 8},
		TrainPerClass: 30, TestPerClass: 15,
		NoiseStd: 0.08, MixMax: 0.2, Seed: 11,
	}
	train, test := data.Generate(cfg)
	rng := rand.New(rand.NewSource(7))
	m := nn.CNN3([]int{2, 8, 8}, 3, 4, rng)
	opt := nn.NewSGD(0.05, 0.9, 1e-4)
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	eps := 8.0 / 255
	for epoch := 0; epoch < 12; epoch++ {
		for _, b := range data.Batches(idx, 16, rng) {
			x, y := data.Batch(train, b)
			if adversarial {
				x = Perturb(PGDConfig(eps, 5), x, CEGradFn(m, y), rng)
			}
			out := m.Forward(x, true)
			_, g := nn.SoftmaxCrossEntropy(out, y)
			nn.ZeroGrads(m)
			m.Backward(g)
			opt.Step(m.Params())
		}
	}
	return m, test
}

// Integration: adversarial training confers more robustness than standard
// training, and AutoAttack surrogate is at most as generous as plain PGD.
func TestAdversarialTrainingImprovesRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("training integration test")
	}
	rng := rand.New(rand.NewSource(21))
	eps := 8.0 / 255

	st, test := trainTinyModel(t, false)
	at, _ := trainTinyModel(t, true)

	stClean := CleanAccuracy(st, test, 16)
	atClean := CleanAccuracy(at, test, 16)
	stAdv := AdvAccuracy(st, test, 16, PGDConfig(eps, 10), rng)
	atAdv := AdvAccuracy(at, test, 16, PGDConfig(eps, 10), rng)

	if stClean < 0.5 || atClean < 0.5 {
		t.Fatalf("models failed to learn: ST %v AT %v", stClean, atClean)
	}
	if atAdv <= stAdv {
		t.Fatalf("AT robustness (%v) should exceed ST robustness (%v)", atAdv, stAdv)
	}
	// PGD must cost accuracy relative to clean data on the ST model.
	if stAdv >= stClean {
		t.Fatalf("PGD had no effect on standard model: clean %v adv %v", stClean, stAdv)
	}

	aa := AutoAttackAccuracy(at, test, 16, eps, 10, rng)
	if aa > atAdv+1e-9 {
		t.Fatalf("AA surrogate (%v) should not exceed PGD accuracy (%v)", aa, atAdv)
	}
}

func TestCleanAccuracyMatchesManualCount(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := data.SyntheticConfig{
		Name: "t", Classes: 2, Shape: []int{1, 8, 8},
		TrainPerClass: 4, TestPerClass: 8,
		NoiseStd: 0.05, MixMax: 0.1, Seed: 3,
	}
	_, test := data.Generate(cfg)
	m := nn.CNN3([]int{1, 8, 8}, 2, 2, rng)
	acc := CleanAccuracy(m, test, 5)
	// Manual count.
	correct := 0
	for i := 0; i < test.Len(); i++ {
		x, y := data.Batch(test, []int{i, i}) // duplicate to satisfy BN-free batch shape
		out := m.Forward(x, false)
		if out.ArgMaxRow(0) == y[0] {
			correct++
		}
	}
	want := float64(correct) / float64(test.Len())
	if math.Abs(acc-want) > 1e-12 {
		t.Fatalf("CleanAccuracy %v, manual %v", acc, want)
	}
}
