package attack

import (
	"math/rand"

	"fedprophet/internal/data"
	"fedprophet/internal/nn"
	"fedprophet/internal/tensor"
)

// CEGradFn adapts a model to a GradFn maximizing cross-entropy. The model is
// evaluated in eval mode (running batch-norm statistics) so that attack
// forward passes never pollute training statistics.
func CEGradFn(model nn.Layer, labels []int) GradFn {
	return func(x *tensor.Tensor) (float64, *tensor.Tensor) {
		out := model.Forward(x, false)
		loss, g := nn.SoftmaxCrossEntropy(out, labels)
		nn.ZeroGrads(model)
		return loss, model.Backward(g)
	}
}

// CWGradFn adapts a model to a GradFn maximizing the CW margin loss.
func CWGradFn(model nn.Layer, labels []int) GradFn {
	return func(x *tensor.Tensor) (float64, *tensor.Tensor) {
		out := model.Forward(x, false)
		loss, g := nn.CWMarginLoss(out, labels)
		nn.ZeroGrads(model)
		return loss, model.Backward(g)
	}
}

// CleanAccuracy evaluates the model on the whole dataset in batches.
func CleanAccuracy(model nn.Layer, ds *data.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for start := 0; start < ds.Len(); start += batch {
		end := start + batch
		if end > ds.Len() {
			end = ds.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, y := data.Batch(ds, idx)
		out := model.Forward(x, false)
		for b := range y {
			if out.ArgMaxRow(b) == y[b] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}

// AdvAccuracy evaluates robust accuracy under a single PGD configuration.
func AdvAccuracy(model nn.Layer, ds *data.Dataset, batch int, cfg Config, rng *rand.Rand) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for start := 0; start < ds.Len(); start += batch {
		end := start + batch
		if end > ds.Len() {
			end = ds.Len()
		}
		idx := make([]int, end-start)
		for i := range idx {
			idx[i] = start + i
		}
		x, y := data.Batch(ds, idx)
		adv := Perturb(cfg, x, CEGradFn(model, y), rng)
		out := model.Forward(adv, false)
		for b := range y {
			if out.ArgMaxRow(b) == y[b] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}

// AutoAttackAccuracy is the AutoAttack surrogate: a sample counts as robust
// only if it survives every attack in the ensemble — CE-PGD with two random
// restarts, CW-margin PGD, momentum PGD, and the gradient-free Square-style
// attack (mirroring real AutoAttack's APGD-CE / APGD-DLR / black-box trio).
// By construction the result is ≤ plain PGD accuracy with the same budget.
func AutoAttackAccuracy(model nn.Layer, ds *data.Dataset, batch int, eps float64, steps int, rng *rand.Rand) float64 {
	if ds.Len() == 0 {
		return 0
	}
	robust := make([]bool, ds.Len())
	for i := range robust {
		robust[i] = true
	}

	// forEachSurvivingBatch applies an attack to the still-robust samples
	// and records newly broken ones.
	forEachSurvivingBatch := func(run func(x *tensor.Tensor, y []int) *tensor.Tensor) {
		for start := 0; start < ds.Len(); start += batch {
			end := start + batch
			if end > ds.Len() {
				end = ds.Len()
			}
			idx := make([]int, 0, end-start)
			for i := start; i < end; i++ {
				if robust[i] {
					idx = append(idx, i)
				}
			}
			if len(idx) < 1 {
				continue
			}
			x, y := data.Batch(ds, idx)
			adv := run(x, y)
			out := model.Forward(adv, false)
			for b, id := range idx {
				if out.ArgMaxRow(b) != y[b] {
					robust[id] = false
				}
			}
		}
	}

	cfg := PGDConfig(eps, steps)
	for restart := 0; restart < 2; restart++ {
		forEachSurvivingBatch(func(x *tensor.Tensor, y []int) *tensor.Tensor {
			return Perturb(cfg, x, CEGradFn(model, y), rng)
		})
	}
	forEachSurvivingBatch(func(x *tensor.Tensor, y []int) *tensor.Tensor {
		return Perturb(cfg, x, CWGradFn(model, y), rng)
	})
	forEachSurvivingBatch(func(x *tensor.Tensor, y []int) *tensor.Tensor {
		return MIFGSM(eps, steps, 1.0, x, CEGradFn(model, y), rng)
	})
	if ds.InShape != nil && len(ds.InShape) == 3 {
		forEachSurvivingBatch(func(x *tensor.Tensor, y []int) *tensor.Tensor {
			return SquareAttack(eps, 2*steps, x, CELossFn(model, y), rng)
		})
	}

	n := 0
	for _, r := range robust {
		if r {
			n++
		}
	}
	return float64(n) / float64(ds.Len())
}
