// Package attack implements the adversarial-example machinery of the
// FedProphet reproduction: FGSM, PGD-n under ℓ∞ and ℓ2 constraints, a
// Carlini–Wagner-margin PGD, and a multi-attack ensemble that stands in for
// AutoAttack (one of the paper-scale substitutions; see docs/ARCHITECTURE.md
// for the layer map). Attacks operate on any
// differentiable loss via a GradFn, so the same code perturbs raw images
// (ε = 8/255 in ℓ∞) and intermediate cascade features (ℓ2 balls).
package attack

import (
	"math"
	"math/rand"

	"fedprophet/internal/tensor"
)

// Norm selects the perturbation constraint.
type Norm int

// Supported perturbation norms.
const (
	LInf Norm = iota
	L2
)

// GradFn evaluates the attacked loss and its gradient with respect to the
// (already perturbed) input batch.
type GradFn func(x *tensor.Tensor) (float64, *tensor.Tensor)

// Config describes one PGD attack.
type Config struct {
	Eps         float64 // perturbation budget
	StepSize    float64 // gradient-ascent step α
	Steps       int     // number of PGD iterations (1 = FGSM when RandomStart off)
	Norm        Norm
	RandomStart bool
	// Clamp bounds for the perturbed input; used for image space ([0,1]).
	// Set ClampMin > ClampMax (e.g. 1, 0) to disable clamping for feature
	// space.
	ClampMin, ClampMax float64
}

// PGDConfig returns the paper's training/eval attack: ℓ∞ PGD with
// α = ε/4 (a common choice giving ε coverage in a few steps) and random
// start, clamped to [0,1].
func PGDConfig(eps float64, steps int) Config {
	return Config{
		Eps: eps, StepSize: eps / 4, Steps: steps, Norm: LInf,
		RandomStart: true, ClampMin: 0, ClampMax: 1,
	}
}

// FeaturePGDConfig returns the intermediate-feature attack used by
// adversarial cascade learning: an ℓ2 ball of radius eps with no clamping.
func FeaturePGDConfig(eps float64, steps int) Config {
	return Config{
		Eps: eps, StepSize: eps / 2, Steps: steps, Norm: L2,
		RandomStart: true, ClampMin: 1, ClampMax: 0, // disabled
	}
}

func (c Config) clampEnabled() bool { return c.ClampMin <= c.ClampMax }

// perSample applies f to each sample slice of a batched tensor.
func perSample(t *tensor.Tensor, f func(s []float64)) {
	bsz := t.Dim(0)
	per := t.Len() / bsz
	for b := 0; b < bsz; b++ {
		f(t.Data[b*per : (b+1)*per])
	}
}

func l2norm(s []float64) float64 {
	v := 0.0
	for _, x := range s {
		v += x * x
	}
	return math.Sqrt(v)
}

// Perturb runs PGD from x and returns the adversarial input x+δ with
// ‖δ‖ ≤ Eps per sample. The input tensor is not modified.
func Perturb(cfg Config, x *tensor.Tensor, grad GradFn, rng *rand.Rand) *tensor.Tensor {
	adv := x.Clone()
	if cfg.RandomStart {
		switch cfg.Norm {
		case LInf:
			for i := range adv.Data {
				adv.Data[i] += (rng.Float64()*2 - 1) * cfg.Eps
			}
		case L2:
			noise := tensor.Randn(rng, 1, x.Shape()...)
			perSample(noise, func(s []float64) {
				n := l2norm(s)
				if n > 0 {
					scale := cfg.Eps * rng.Float64() / n
					for i := range s {
						s[i] *= scale
					}
				}
			})
			adv.AddInPlace(noise)
		}
		projectAndClamp(cfg, adv, x)
	}

	for step := 0; step < cfg.Steps; step++ {
		_, g := grad(adv)
		switch cfg.Norm {
		case LInf:
			for i := range adv.Data {
				if g.Data[i] > 0 {
					adv.Data[i] += cfg.StepSize
				} else if g.Data[i] < 0 {
					adv.Data[i] -= cfg.StepSize
				}
			}
		case L2:
			bsz := adv.Dim(0)
			per := adv.Len() / bsz
			for b := 0; b < bsz; b++ {
				gs := g.Data[b*per : (b+1)*per]
				as := adv.Data[b*per : (b+1)*per]
				n := l2norm(gs)
				if n == 0 {
					continue
				}
				scale := cfg.StepSize / n
				for i := range as {
					as[i] += scale * gs[i]
				}
			}
		}
		projectAndClamp(cfg, adv, x)
	}
	return adv
}

// projectAndClamp projects adv−x into the ε-ball per sample, then clamps adv
// into the valid input range.
func projectAndClamp(cfg Config, adv, x *tensor.Tensor) {
	switch cfg.Norm {
	case LInf:
		for i := range adv.Data {
			d := adv.Data[i] - x.Data[i]
			if d > cfg.Eps {
				d = cfg.Eps
			} else if d < -cfg.Eps {
				d = -cfg.Eps
			}
			adv.Data[i] = x.Data[i] + d
		}
	case L2:
		bsz := adv.Dim(0)
		per := adv.Len() / bsz
		for b := 0; b < bsz; b++ {
			as := adv.Data[b*per : (b+1)*per]
			xs := x.Data[b*per : (b+1)*per]
			n := 0.0
			for i := range as {
				d := as[i] - xs[i]
				n += d * d
			}
			n = math.Sqrt(n)
			if n > cfg.Eps && n > 0 {
				scale := cfg.Eps / n
				for i := range as {
					as[i] = xs[i] + (as[i]-xs[i])*scale
				}
			}
		}
	}
	if cfg.clampEnabled() {
		adv.ClampInPlace(cfg.ClampMin, cfg.ClampMax)
	}
}

// FGSM is the single-step sign attack: PGD with one full-budget step and no
// random start.
func FGSM(eps float64, x *tensor.Tensor, grad GradFn, rng *rand.Rand) *tensor.Tensor {
	cfg := Config{Eps: eps, StepSize: eps, Steps: 1, Norm: LInf, ClampMin: 0, ClampMax: 1}
	return Perturb(cfg, x, grad, rng)
}
