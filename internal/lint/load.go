package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader resolves package patterns through the go command and type-checks
// the matched packages from source, importing every dependency from the
// compiler's export data (`go list -export` materializes it in the build
// cache and reports the file paths). That keeps fplint dependency-free — the
// whole analysis stack is the standard library — and offline: nothing is
// downloaded, the go command only reads the module cache and GOROOT.

// Package is one type-checked package ready for analysis: the parsed files
// (comments included — the directive and ignore machinery needs them), the
// type-checker's object resolution, and enough module identity for analyzers
// that distinguish "ours" from imported code.
type Package struct {
	// PkgPath is the import path as listed; a test variant keeps go list's
	// bracketed form ("p [p.test]") so it never collides with the plain one.
	PkgPath string
	// Module is the module path the package belongs to ("" if unknown).
	Module string
	// Dir is the package directory on disk.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// testFiles marks which of Files are _test.go sources.
	testFiles map[*ast.File]bool
}

// IsTestFile reports whether f is one of the package's _test.go sources.
func (p *Package) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// MarkTestFile records f as a _test.go source; used by loaders that build a
// Package by hand (cmd/fplint's vet-tool mode) instead of through Load.
func (p *Package) MarkTestFile(f *ast.File) {
	if p.testFiles == nil {
		p.testFiles = map[*ast.File]bool{}
	}
	p.testFiles[f] = true
}

// listedPkg is the subset of `go list -json` fields the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Module     *struct{ Path string }
	Export     string
	DepOnly    bool
	Standard   bool
	ForTest    string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns in dir (module mode, tests included) and returns the
// matched packages type-checked. When a package has in-package test files,
// only its test variant is returned — it is a superset of the plain build, so
// analyzing both would double every diagnostic in the non-test files.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := []string{
		"list", "-e", "-test", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Module,Export,DepOnly,Standard,ForTest,GoFiles,ImportMap,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.Bytes())
	}

	exports := map[string]string{} // listed ImportPath → export data file
	var targets []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.DepOnly || p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets = append(targets, p)
	}

	// A test variant ("p [p.test]") subsumes the plain package's files.
	variantOf := map[string]bool{}
	for _, t := range targets {
		if t.ForTest != "" && strings.HasPrefix(t.ImportPath, t.ForTest+" ") {
			variantOf[t.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		if variantOf[t.ImportPath] {
			continue
		}
		pkg, err := typecheck(fset, t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one listed package against export data.
func typecheck(fset *token.FileSet, t listedPkg, exports map[string]string) (*Package, error) {
	pkg := &Package{
		PkgPath:   t.ImportPath,
		Dir:       t.Dir,
		Fset:      fset,
		testFiles: map[*ast.File]bool{},
	}
	if t.Module != nil {
		pkg.Module = t.Module.Path
	}
	for _, name := range t.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
		if strings.HasSuffix(name, "_test.go") {
			pkg.testFiles[f] = true
		}
	}
	// Strip go list's variant suffix: the type-checker wants the real path.
	typePath := t.ImportPath
	if i := strings.IndexByte(typePath, ' '); i >= 0 {
		typePath = typePath[:i]
	}
	tpkg, info, err := Check(fset, typePath, pkg.Files, t.ImportMap, exports)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %v", t.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// Check type-checks the parsed files of one package, resolving every import
// through export data files: importMap translates source import strings to
// listed package keys (test variants), exportFiles maps those keys to the
// compiler export data on disk. Shared by the loader and cmd/fplint's
// `go vet -vettool` mode, whose .cfg hands it the same two maps.
func Check(fset *token.FileSet, pkgPath string, files []*ast.File,
	importMap, exportFiles map[string]string) (*types.Package, *types.Info, error) {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}
