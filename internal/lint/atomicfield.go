package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicFieldAnalyzer enforces the repository's "all-atomic stats" rule in
// mechanical form: once a variable or struct field is accessed through
// sync/atomic anywhere in the package, every access must be atomic — a plain
// read may observe a torn or stale value and a plain write can be lost, and
// either silently breaks the guarantee that a /stats poll never needs a lock.
// Typed atomics (atomic.Int64 and family) cannot be read plainly, but copying
// one by value forks its state; those copies are flagged too.
var AtomicFieldAnalyzer = &Analyzer{
	Name: "atomicfield",
	Doc:  "flags plain reads/writes of variables that are elsewhere accessed through sync/atomic, and by-value copies of typed atomics",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass 1: every variable whose address feeds a sync/atomic function is an
	// atomic variable from then on, package-wide.
	atomicVars := map[types.Object]token.Pos{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(info, call) || len(call.Args) == 0 {
				return true
			}
			if addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && addr.Op == token.AND {
				if obj := rootObj(info, addr.X); obj != nil {
					if _, seen := atomicVars[obj]; !seen {
						atomicVars[obj] = call.Pos()
					}
				}
			}
			return true
		})
	}

	// Pass 2: flag every non-atomic use of those variables, and every
	// by-value use of a typed atomic.
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			if e, ok := n.(ast.Expr); ok && flagTypedAtomicCopy(info, e, stack) {
				pass.Reportf(n.Pos(),
					"%s is copied by value; a copied atomic forks its state — share it by pointer",
					typeString(info, e))
				return
			}
			id, ok := n.(*ast.Ident)
			if !ok {
				return
			}
			obj := info.Uses[id]
			if obj == nil {
				return
			}
			if _, tracked := atomicVars[obj]; !tracked {
				return
			}
			if sanctionedAtomicUse(info, id, stack) {
				return
			}
			verb := "read"
			if isWriteContext(stack, id) {
				verb = "written"
			}
			pass.Reportf(id.Pos(),
				"%s is accessed with sync/atomic (%s) but %s plainly here; use the atomic API everywhere",
				obj.Name(), pass.Pkg.Fset.Position(atomicVars[obj]), verb)
		})
	}
	return nil
}

// isAtomicFuncCall reports whether call statically invokes one of
// sync/atomic's package-level functions operating on a caller-owned word
// (Add*, Load*, Store*, Swap*, CompareAndSwap*, And*, Or*).
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeObj(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, prefix := range [...]string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// sanctionedAtomicUse reports whether the identifier id is used in a context
// that never observes the variable's value non-atomically: inside a
// sync/atomic call, under len/cap, or as a value-less range target (which
// reads only the length).
func sanctionedAtomicUse(info *types.Info, id *ast.Ident, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.CallExpr:
			if isAtomicFuncCall(info, a) {
				return true
			}
			if fid, ok := ast.Unparen(a.Fun).(*ast.Ident); ok && (fid.Name == "len" || fid.Name == "cap") {
				if _, isBuiltin := info.Uses[fid].(*types.Builtin); isBuiltin {
					return true
				}
			}
		case *ast.RangeStmt:
			// `for i := range xs` reads only len(xs); a value variable would
			// copy the elements plainly.
			child := ast.Node(id)
			if i+1 < len(stack) {
				child = stack[i+1]
			}
			if a.Value == nil && a.X.Pos() <= child.Pos() && child.End() <= a.X.End() {
				return true
			}
		case *ast.FuncLit, *ast.BlockStmt:
			// A function boundary or statement context ends the expression
			// we're classifying.
			return false
		}
	}
	return false
}

// isWriteContext reports whether id sits on the writing side of an
// assignment or inc/dec, through any selector/index/star wrapping.
func isWriteContext(stack []ast.Node, id ast.Expr) bool {
	node := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr, *ast.UnaryExpr:
			node = stack[i]
		case *ast.AssignStmt:
			for _, lhs := range a.Lhs {
				if lhs == node {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return a.X == node
		default:
			return false
		}
	}
	return false
}

// flagTypedAtomicCopy reports whether expr is a typed atomic
// (sync/atomic.Int64 and family) used by value rather than through a method,
// an address-of, or a field/element access.
func flagTypedAtomicCopy(info *types.Info, expr ast.Expr, stack []ast.Node) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		if info.Defs[e] != nil {
			return false // a declaration names the variable, it does not copy it
		}
	case *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || !tv.IsValue() {
		return false
	}
	// The type must be the atomic struct itself — a pointer to one is shared,
	// not copied.
	named, _ := types.Unalias(tv.Type).(*types.Named)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	switch named.Obj().Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
	default:
		return false
	}
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		return parent.X != expr // method/field access on it is fine
	case *ast.UnaryExpr:
		return parent.Op != token.AND
	case *ast.IndexExpr:
		return parent.X != expr
	case *ast.StarExpr, *ast.ParenExpr:
		return false
	}
	return true
}

// typeString renders expr's type for a message, "" guarded.
func typeString(info *types.Info, expr ast.Expr) string {
	if tv, ok := info.Types[expr]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "atomic value"
}
