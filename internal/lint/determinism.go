package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer guards the replayability contract: a package that marks
// itself deterministic with a //lint:deterministic comment promises that its
// outputs are a pure function of its inputs, so WAL replay, crash recovery,
// and cross-node aggregation all reconverge bit-for-bit. Two things break
// that silently:
//
//   - reading the wall clock (time.Now, time.Since) or the seeded-by-default
//     global math/rand source — each run sees different values;
//   - ranging over a map and folding the iteration into model or aggregate
//     state (accumulating into a variable, appending to a slice) — Go
//     randomizes map order per run, so the fold's result depends on it.
//
// Map iteration is fine when the body is order-insensitive (pure writes to
// distinct keys, commutative integer counting) or when the collected slice is
// sorted before anything consumes it; the analyzer recognizes a sort on the
// collected value in the same block and stays quiet. Deliberate
// nondeterminism — jitter, ID generation — is annotated at the call site with
// //lint:ignore determinism <why this cannot affect replay>.
//
// Test files are exempt: they assert on the results of determinism, they do
// not produce replayed state.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "flags wall-clock reads, global math/rand use, and order-dependent map-iteration folds in packages marked //lint:deterministic",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if _, _, marked := directive(pass.Pkg, "deterministic"); !marked {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if pass.Pkg.IsTestFile(f) {
			continue
		}
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, info, n)
			case *ast.RangeStmt:
				checkMapRange(pass, info, n, stack)
			}
		})
	}
	return nil
}

// checkNondetCall flags direct sources of run-to-run variation.
func checkNondetCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeObj(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		// Methods on an explicit *rand.Rand or a caller-supplied clock are the
		// sanctioned escape: the caller owns the seed/source.
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s in a deterministic package; thread a clock through the caller or annotate with //lint:ignore determinism <reason>",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewZipf", "NewChaCha8":
			// Constructing an explicitly-seeded source is how deterministic
			// code is supposed to get randomness.
			return
		}
		pass.Reportf(call.Pos(),
			"global %s.%s in a deterministic package; use an explicitly seeded *rand.Rand or annotate with //lint:ignore determinism <reason>",
			pathBase(fn.Pkg().Path()), fn.Name())
	}
}

// checkMapRange flags `for k, v := range m` bodies that fold the iteration
// into state whose value depends on visit order: compound accumulation into a
// variable declared outside the loop, or append onto an outer slice. A
// subsequent sort of the written variable in the enclosing block launders the
// order back out and suppresses the finding.
func checkMapRange(pass *Pass, info *types.Info, rng *ast.RangeStmt, stack []ast.Node) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	outer := func(obj types.Object) bool {
		return obj != nil && obj.Pos() != 0 &&
			!(rng.Pos() <= obj.Pos() && obj.Pos() < rng.End())
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if n != rng {
				return false // the inner range reports for itself
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				obj := rootObj(info, lhs)
				if !outer(obj) {
					continue
				}
				switch {
				case isOrderSensitiveOp(info, n, i):
					if !sortedAfter(info, rng, stack, obj) {
						pass.Reportf(n.Pos(),
							"map-range fold: %s accumulates across a randomized iteration order; collect and sort, or restructure the fold",
							obj.Name())
					}
				case isAppendFrom(info, n, i):
					if !sortedAfter(info, rng, stack, obj) {
						pass.Reportf(n.Pos(),
							"map-range fold: %s is appended to in randomized iteration order; sort it before use",
							obj.Name())
					}
				}
			}
		}
		return true
	})
}

// isOrderSensitiveOp reports whether assignment index i is a compound
// floating-point accumulation (+=, -=, *=, /=) — integer += is commutative
// and exact, but float accumulation is not associative, so iteration order
// leaks into the low bits of the result.
func isOrderSensitiveOp(info *types.Info, assign *ast.AssignStmt, i int) bool {
	switch assign.Tok.String() {
	case "+=", "-=", "*=", "/=":
	default:
		return false
	}
	if len(assign.Lhs) <= i {
		return false
	}
	tv, ok := info.Types[assign.Lhs[i]]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isAppendFrom reports whether Rhs[i] is append(lhs, ...).
func isAppendFrom(info *types.Info, assign *ast.AssignStmt, i int) bool {
	if len(assign.Rhs) <= i {
		return false
	}
	call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fid.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[fid].(*types.Builtin)
	return isBuiltin
}

// sortedAfter reports whether, in the block enclosing the range statement, a
// later statement sorts the object obj (sort.Slice, sort.Sort, sort.Strings,
// slices.Sort*, or a method named Sort) — the canonical collect-then-sort
// idiom that makes map iteration safe.
func sortedAfter(info *types.Info, rng *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	for _, stmt := range block.List {
		if stmt.Pos() <= rng.End() {
			continue
		}
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isSortCall(info, call) {
				return true
			}
			if rootObj(info, call.Args[0]) == obj {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall recognizes the standard sorting entry points.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeObj(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
		return false
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return fn.Name() == "Sort"
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
