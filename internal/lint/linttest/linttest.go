// Package linttest runs fplint analyzers over fixture packages and checks
// their diagnostics against expectations written in the fixtures themselves,
// in the style of golang.org/x/tools' analysistest (which this module does
// not depend on):
//
//	err == ErrStale // want `ErrStale compared with ==`
//
// A want comment expects one diagnostic on its own line whose message matches
// the regexp; several patterns may follow one want. Block comments work too —
// /* want `...` */ placed before a line comment under test — which is how the
// //lint:ignore hygiene diagnostics are asserted, since those lines' trailing
// comment position is already taken by the directive being tested.
//
// Every diagnostic must be expected and every expectation must fire; either
// direction of mismatch fails the test.
package linttest

import (
	"regexp"
	"strings"
	"testing"

	"fedprophet/internal/lint"
)

type expectation struct {
	re   *regexp.Regexp
	used bool
}

type posKey struct {
	file string
	line int
}

// Run loads the fixture package matched by pattern under dir, runs the given
// analyzers, and matches diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir, pattern string, analyzers []*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load(dir, pattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages match %s under %s", pattern, dir)
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			t.Fatal(err)
		}
		wants := collectWants(t, pkg)
		for _, d := range diags {
			key := posKey{d.Pos.Filename, d.Pos.Line}
			matched := false
			for _, w := range wants[key] {
				if !w.used && w.re.MatchString(d.Message) {
					w.used = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("unexpected diagnostic: %s", d)
			}
		}
		for key, ws := range wants {
			for _, w := range ws {
				if !w.used {
					t.Errorf("%s:%d: want %q matched no diagnostic", key.file, key.line, w.re)
				}
			}
		}
	}
}

// wantArg matches one expectation pattern: `...` or "..." (with escapes).
var wantArg = regexp.MustCompile("^\\s*(?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

// collectWants parses every want comment in the package's files.
func collectWants(t *testing.T, pkg *lint.Package) map[posKey][]*expectation {
	t.Helper()
	wants := map[posKey][]*expectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if strings.HasPrefix(text, "//") {
					text = text[2:]
				} else if strings.HasPrefix(text, "/*") {
					text = strings.TrimSuffix(text[2:], "*/")
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := posKey{pos.Filename, pos.Line}
				for {
					m := wantArg.FindStringSubmatch(rest)
					if m == nil {
						break
					}
					pat := m[1]
					if m[2] != "" || (pat == "" && strings.Contains(m[0], "\"")) {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
					rest = rest[len(m[0]):]
				}
			}
		}
	}
	return wants
}
