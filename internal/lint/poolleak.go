package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolLeakAnalyzer checks that every sync.Pool.Get is balanced: on each path
// out of the function the gotten value is either handed back with Put or
// deliberately escapes — returned to the caller, passed to another function,
// stored, sent on a channel, or captured by a closure — transferring
// ownership with it. A Get whose value just goes out of scope is a silent
// leak: the program still runs, the pool just stops pooling, and allocation
// pressure creeps back in exactly the hot paths the pool was added to fix.
//
// The path model is syntactic: a deferred Put covers every exit (including
// panics); otherwise a return is covered when some Put/escape precedes it in
// a block that encloses the return. Balancing schemes the model cannot see
// (both arms of an if putting, conditional ownership flags) are annotated
// with //lint:ignore poolleak <why the value is not leaked>.
var PoolLeakAnalyzer = &Analyzer{
	Name: "poolleak",
	Doc:  "flags sync.Pool.Get results that reach a return path without a Put or an ownership-transferring escape",
	Run:  runPoolLeak,
}

func runPoolLeak(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkPoolBody(pass, n.Body)
				}
			case *ast.FuncLit:
				// Each literal is its own ownership domain; checkPoolBody
				// skips nested literals, so every body is checked exactly once.
				checkPoolBody(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// poolGet is one tracked p.Get() binding.
type poolGet struct {
	obj   types.Object
	pos   token.Pos
	block *ast.BlockStmt // innermost block the binding lives in
}

// poolEvent is a Put or an ownership-transferring escape of the tracked value.
type poolEvent struct {
	pos     token.Pos
	block   *ast.BlockStmt // innermost enclosing block
	inDefer bool           // deferred events cover every exit after them
}

func checkPoolBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Collect `v := pool.Get()` (possibly through a type assertion) bindings
	// made directly in this body.
	var gets []poolGet
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		if funcLitIndex(stack, body) >= 0 {
			return
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return
		}
		rhs := ast.Unparen(assign.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			rhs = ast.Unparen(ta.X)
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isPoolMethod(info, call, "Get") {
			return
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		gets = append(gets, poolGet{obj: obj, pos: assign.Pos(), block: innermostBlock(stack, body)})
	})
	if len(gets) == 0 {
		return
	}

	for _, g := range gets {
		var events []poolEvent
		var returns []token.Pos

		walkStack(body, func(n ast.Node, stack []ast.Node) {
			if ret, ok := n.(*ast.ReturnStmt); ok && funcLitIndex(stack, body) < 0 &&
				ret.Pos() > g.pos && g.block.Pos() <= ret.Pos() && ret.Pos() <= g.block.End() {
				returns = append(returns, ret.Pos())
				return
			}
			id, ok := n.(*ast.Ident)
			if !ok || info.Uses[id] != g.obj || id.Pos() <= g.pos {
				return
			}
			if ev, ok := classifyPoolUse(info, id, stack, body); ok {
				events = append(events, ev)
			}
		})
		// Falling off the end of the binding's scope is an exit too.
		returns = append(returns, g.block.End())

		for _, r := range returns {
			covered := false
			for _, ev := range events {
				if ev.pos > r {
					continue
				}
				if ev.inDefer || (ev.block.Pos() <= r && r <= ev.block.End()) {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(g.pos,
					"%s from sync.Pool.Get has no Put or ownership transfer on the exit at %s; the pooled value leaks",
					g.obj.Name(), pass.Pkg.Fset.Position(r))
				break // one report per Get is enough
			}
		}
	}
}

// classifyPoolUse decides whether this use of the tracked value is a Put or
// an escape, and at what position/block the event takes effect.
func classifyPoolUse(info *types.Info, id *ast.Ident, stack []ast.Node, body *ast.BlockStmt) (poolEvent, bool) {
	inDefer := false
	for _, a := range stack {
		if _, ok := a.(*ast.DeferStmt); ok {
			inDefer = true
			break
		}
	}

	// Captured by a (non-deferred) closure: ownership moves into the closure
	// at the point the (outermost) literal is created.
	if funcLitIndex(stack, body) >= 0 && !inDefer {
		for i, a := range stack {
			if fl, ok := a.(*ast.FuncLit); ok && fl.Pos() > body.Pos() {
				return poolEvent{pos: fl.Pos(), block: innermostBlock(stack[:i], body)}, true
			}
		}
	}

	block := innermostBlock(stack, body)
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.CallExpr:
			if id.Pos() < a.Lparen {
				continue // the use is the callee expression, not an argument
			}
			if fid, ok := ast.Unparen(a.Fun).(*ast.Ident); ok && (fid.Name == "len" || fid.Name == "cap") {
				if _, isBuiltin := info.Uses[fid].(*types.Builtin); isBuiltin {
					continue // reading the length transfers nothing
				}
			}
			if isPoolMethod(info, a, "Put") {
				return poolEvent{pos: id.Pos(), block: block, inDefer: inDefer}, true
			}
			// Handed to some other function — append, a transfer helper, a
			// serializer that takes over the buffer.
			return poolEvent{pos: id.Pos(), block: block, inDefer: inDefer}, true
		case *ast.ReturnStmt:
			// The event position is the return keyword itself so the escape
			// covers the very exit it rides out on.
			return poolEvent{pos: a.Pos(), block: block, inDefer: inDefer}, true
		case *ast.SendStmt:
			if a.Value.Pos() <= id.Pos() && id.Pos() < a.Value.End() {
				return poolEvent{pos: id.Pos(), block: block, inDefer: inDefer}, true
			}
		case *ast.AssignStmt:
			for ri, rhs := range a.Rhs {
				if rhs.Pos() <= id.Pos() && id.Pos() < rhs.End() {
					// `_ = v` silences the compiler and stores nothing.
					if len(a.Lhs) == len(a.Rhs) {
						if lid, ok := ast.Unparen(a.Lhs[ri]).(*ast.Ident); ok && lid.Name == "_" {
							return poolEvent{}, false
						}
					}
					// Stored somewhere that outlives the expression.
					return poolEvent{pos: id.Pos(), block: block, inDefer: inDefer}, true
				}
			}
			return poolEvent{}, false
		case *ast.CompositeLit:
			continue // keep climbing: T{buf: v} escapes via whatever holds it
		case *ast.BlockStmt:
			return poolEvent{}, false
		}
	}
	return poolEvent{}, false
}

// isPoolMethod reports whether call invokes the named method of sync.Pool.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil && isNamed(sig.Recv().Type(), "sync", "Pool")
}

// funcLitIndex returns the stack index of the innermost FuncLit ancestor that
// is itself inside body, -1 when the node belongs to body directly.
func funcLitIndex(stack []ast.Node, body *ast.BlockStmt) int {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok && fl.Pos() > body.Pos() {
			return i
		}
	}
	return -1
}

// innermostBlock finds the nearest enclosing BlockStmt on the stack,
// defaulting to body itself.
func innermostBlock(stack []ast.Node, body *ast.BlockStmt) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			return b
		}
	}
	return body
}
