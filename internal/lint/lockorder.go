package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockOrderAnalyzer checks mutex acquisitions against the package's canonical
// lock hierarchy. The hierarchy is declared once, in the code it protects
// (never in the linter), as:
//
//	//lint:lockorder TypeA.mu -> TypeB.otherMu -> TypeC.mu
//
// Each name is <struct type>.<mutex field>. The analyzer derives the
// acquisition graph — which locks can be requested while which others are
// held, following calls through the package — and reports any acquisition
// that runs against the declared order. Locks not named in the declaration
// are unconstrained. A package with no declaration is not checked.
//
// The held-lock tracking is a linear, source-order approximation (branches
// are treated as sequential, a deferred Unlock pins the lock to the end of
// the function), which matches the Lock/Unlock discipline this repository
// uses; genuinely conditional acquisition patterns can be annotated with
// //lint:ignore lockorder.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "flags mutex acquisitions that violate the package's declared //lint:lockorder hierarchy",
	Run:  runLockOrder,
}

// lockEvent is one step of a function body in source order.
type lockEvent struct {
	kind    int // evLock, evUnlock, evCall
	lock    string
	byDefer bool
	callee  *types.Func
	pos     token.Pos
}

const (
	evLock = iota
	evUnlock
	evCall
)

// funcLocks is the per-function summary the interprocedural pass works from.
type funcLocks struct {
	events   []lockEvent
	acquires map[string]token.Pos // lock ids this function may take, directly
}

func runLockOrder(pass *Pass) error {
	decl, declPos, ok := directive(pass.Pkg, "lockorder")
	if !ok {
		return nil
	}
	rank := map[string]int{}
	var order []string
	for _, name := range strings.FieldsFunc(decl, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '-' || r == '>' || r == '→'
	}) {
		if _, dup := rank[name]; dup {
			pass.Reportf(declPos, "lint:lockorder names %q twice", name)
			continue
		}
		rank[name] = len(order)
		order = append(order, name)
	}
	if len(order) < 2 {
		pass.Reportf(declPos, "lint:lockorder needs at least two lock names (Type.field -> Type.field)")
		return nil
	}

	info := pass.Pkg.Info

	// Pass 1: summarize every function and go-routine body in the package.
	summaries := map[*types.Func]*funcLocks{}
	var roots []*funcLocks // bodies with no types.Func identity (go funclits)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			obj, _ := info.Defs[fd.Name].(*types.Func)
			sum, goBodies := summarize(info, fd.Body)
			if obj != nil {
				summaries[obj] = sum
			} else {
				roots = append(roots, sum)
			}
			roots = append(roots, goBodies...)
			return false
		})
	}

	// Pass 2: close the may-acquire sets over the package-local call graph.
	trans := map[*types.Func]map[string]token.Pos{}
	var closure func(fn *types.Func, seen map[*types.Func]bool) map[string]token.Pos
	closure = func(fn *types.Func, seen map[*types.Func]bool) map[string]token.Pos {
		if acq, done := trans[fn]; done {
			return acq
		}
		if seen[fn] {
			return nil // recursion; the fixpoint below still converges
		}
		seen[fn] = true
		sum := summaries[fn]
		if sum == nil {
			return nil
		}
		acq := map[string]token.Pos{}
		for id, pos := range sum.acquires {
			acq[id] = pos
		}
		for _, ev := range sum.events {
			if ev.kind == evCall && ev.callee != nil {
				for id, pos := range closure(ev.callee, seen) {
					if _, have := acq[id]; !have {
						acq[id] = pos
					}
				}
			}
		}
		trans[fn] = acq
		return acq
	}
	for fn := range summaries {
		closure(fn, map[*types.Func]bool{})
	}

	// Pass 3: replay each body, tracking the held multiset in source order,
	// and check every acquisition (direct or through a call) against the
	// declaration.
	check := func(sum *funcLocks) {
		held := map[string]int{}
		heldOrder := []string{}
		acquire := func(id string, pos token.Pos, via string) {
			r, ranked := rank[id]
			if ranked {
				for _, h := range heldOrder {
					if h == id {
						continue
					}
					hr, hRanked := rank[h]
					if hRanked && r < hr {
						msg := fmt.Sprintf("acquires %s while holding %s, against the declared order %s",
							id, h, strings.Join(order, " → "))
						if via != "" {
							msg = fmt.Sprintf("call to %s %s", via, msg)
						}
						pass.Reportf(pos, "%s", msg)
					}
				}
			}
		}
		for _, ev := range sum.events {
			switch ev.kind {
			case evLock:
				acquire(ev.lock, ev.pos, "")
				held[ev.lock]++
				heldOrder = append(heldOrder, ev.lock)
			case evUnlock:
				if ev.byDefer {
					continue // held until function exit
				}
				if held[ev.lock] > 0 {
					held[ev.lock]--
					for i := len(heldOrder) - 1; i >= 0; i-- {
						if heldOrder[i] == ev.lock {
							heldOrder = append(heldOrder[:i], heldOrder[i+1:]...)
							break
						}
					}
				}
			case evCall:
				if ev.callee == nil || len(heldOrder) == 0 {
					continue
				}
				for id, _ := range trans[ev.callee] {
					acquire(id, ev.pos, ev.callee.Name())
				}
			}
		}
	}
	for _, sum := range summaries {
		check(sum)
	}
	for _, sum := range roots {
		check(sum)
	}
	return nil
}

// summarize walks one function body in source order, recording lock events
// and static calls. Function literals launched on their own goroutine run
// without the caller's locks; their bodies come back as independent roots.
// Other function literals are treated as executing where they appear.
func summarize(info *types.Info, body *ast.BlockStmt) (*funcLocks, []*funcLocks) {
	sum := &funcLocks{acquires: map[string]token.Pos{}}
	var goBodies []*funcLocks

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// The spawned body is its own root; arguments evaluate here.
				for _, arg := range n.Call.Args {
					walk(arg, inDefer)
				}
				if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					inner, nested := summarize(info, fl.Body)
					goBodies = append(goBodies, inner)
					goBodies = append(goBodies, nested...)
				}
				return false
			case *ast.DeferStmt:
				if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					for _, arg := range n.Call.Args {
						walk(arg, inDefer)
					}
					walk(fl.Body, true)
					return false
				}
				walk(n.Call, true)
				return false
			case *ast.CallExpr:
				if id, method, isLockCall := lockCall(info, n); isLockCall {
					switch method {
					case "Lock", "RLock":
						sum.events = append(sum.events, lockEvent{kind: evLock, lock: id, pos: n.Pos()})
						if _, have := sum.acquires[id]; !have {
							sum.acquires[id] = n.Pos()
						}
					case "Unlock", "RUnlock":
						sum.events = append(sum.events, lockEvent{kind: evUnlock, lock: id, byDefer: inDefer, pos: n.Pos()})
					}
					return true
				}
				if fn := calleeObj(info, n); fn != nil {
					sum.events = append(sum.events, lockEvent{kind: evCall, callee: fn, pos: n.Pos()})
				}
				return true
			}
			return true
		})
	}
	walk(body, false)
	return sum, goBodies
}

// lockCall decides whether call is sync.Mutex/RWMutex (Un)Lock/(R)(Un)Lock on
// an identifiable lock, returning the lock's canonical id: the receiver's
// "<struct type>.<field>" for a field mutex, "<name>" for a plain variable.
func lockCall(info *types.Info, call *ast.CallExpr) (id, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return lockID(info, sel.X), method, true
}

// lockID names the mutex-valued expression: "Type.field" when it is a struct
// field (however deep the selector chain), otherwise the root identifier's
// name, otherwise "_".
func lockID(info *types.Info, expr ast.Expr) string {
	expr = ast.Unparen(expr)
	if sel, ok := expr.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s != nil {
			if owner := asNamed(s.Recv()); owner != nil {
				return owner.Obj().Name() + "." + sel.Sel.Name
			}
		}
		return "_." + sel.Sel.Name
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return "_"
}
