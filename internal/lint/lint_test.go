package lint_test

import (
	"testing"

	"fedprophet/internal/lint"
	"fedprophet/internal/lint/linttest"
)

func TestAtomicField(t *testing.T) {
	linttest.Run(t, "testdata", "./src/atomicfield", lint.Analyzers())
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata", "./src/lockorder", lint.Analyzers())
}

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata", "./src/determinism", lint.Analyzers())
}

func TestSentinelErr(t *testing.T) {
	linttest.Run(t, "testdata", "./src/sentinelerr", lint.Analyzers())
}

func TestPoolLeak(t *testing.T) {
	linttest.Run(t, "testdata", "./src/poolleak", lint.Analyzers())
}

func TestIgnoreDirectiveHygiene(t *testing.T) {
	linttest.Run(t, "testdata", "./src/directives", lint.Analyzers())
}

// TestModuleClean is the smoke test the CI lint target mirrors: the full
// analyzer suite over the whole module must come back without a finding.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, lint.Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
