package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SentinelErrAnalyzer enforces errors.Is for the module's error sentinels
// (ErrStaleRound, ErrCodec, ErrWAL, ...). The federation wraps errors as they
// cross layers — %w through the WAL, the codec, the RPC shims — so a literal
// == against the sentinel silently stops matching the moment anyone adds
// context to the chain. Comparisons against nil, and against sentinels of
// other modules (io.EOF has documented ==-comparison semantics), are left
// alone: the rule is about our own sentinels, whose wrapping discipline we
// control.
var SentinelErrAnalyzer = &Analyzer{
	Name: "sentinelerr",
	Doc:  "flags ==/!= comparisons against the module's error sentinels where errors.Is is required",
	Run:  runSentinelErr,
}

func runSentinelErr(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return
				}
				if s := sentinelSide(pass, info, n.X, n.Y); s != nil {
					pass.Reportf(n.Pos(),
						"%s compared with %s; sentinels may arrive wrapped — use errors.Is(err, %s)",
						s.Name(), n.Op, s.Name())
				}
			case *ast.SwitchStmt:
				// switch err { case ErrX: } is == in disguise.
				if n.Tag == nil {
					return
				}
				if !isErrorType(info, n.Tag) {
					return
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := moduleSentinel(pass, info, e); s != nil {
							pass.Reportf(e.Pos(),
								"switch case compares %s with ==; sentinels may arrive wrapped — use errors.Is(err, %s)",
								s.Name(), s.Name())
						}
					}
				}
			}
		})
	}
	return nil
}

// sentinelSide returns the module error sentinel on either side of a
// comparison, provided the other side is error-typed and not the nil literal.
func sentinelSide(pass *Pass, info *types.Info, x, y ast.Expr) *types.Var {
	if s := moduleSentinel(pass, info, x); s != nil && !isNilLit(info, y) {
		return s
	}
	if s := moduleSentinel(pass, info, y); s != nil && !isNilLit(info, x) {
		return s
	}
	return nil
}

// moduleSentinel resolves expr to a package-level error variable declared in
// this module, nil otherwise.
func moduleSentinel(pass *Pass, info *types.Info, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	// Package-level: its parent scope is the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorIface(v.Type()) {
		return nil
	}
	if !pass.inModule(v.Pkg().Path()) {
		return nil
	}
	return v
}

func isErrorType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Type != nil && isErrorIface(tv.Type)
}

// isErrorIface reports whether t is exactly the built-in error interface.
func isErrorIface(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isNilLit(info *types.Info, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
