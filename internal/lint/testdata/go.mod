module fplint.test

go 1.24
