// Fixture for the poolleak analyzer.
package poolleak

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func use(b *[]byte) {}

func leakBad() {
	b := bufPool.Get().(*[]byte) // want `b from sync.Pool.Get has no Put or ownership transfer`
	if len(*b) > 0 {
		_ = b
	}
}

func earlyReturnBad(cond bool) *[]byte {
	b := bufPool.Get().(*[]byte) // want `b from sync.Pool.Get has no Put or ownership transfer`
	if cond {
		return nil
	}
	return b
}

func deferOK() {
	b := bufPool.Get().(*[]byte)
	defer bufPool.Put(b)
	use(b)
}

func putPerPathOK(cond bool) *[]byte {
	b := bufPool.Get().(*[]byte)
	if cond {
		bufPool.Put(b)
		return nil
	}
	return b
}

func returnTransferOK() *[]byte {
	b := bufPool.Get().(*[]byte)
	return b
}

func closureHandoffOK() {
	b := bufPool.Get().(*[]byte)
	go func() {
		bufPool.Put(b)
	}()
}

func twoArmsIgnored(cond bool) {
	//lint:ignore poolleak both arms put the buffer back; the linear path model cannot see it
	b := bufPool.Get().(*[]byte)
	if cond {
		bufPool.Put(b)
	} else {
		bufPool.Put(b)
	}
}
