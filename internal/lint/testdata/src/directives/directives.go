// Fixture for the //lint:ignore hygiene rules enforced by the runner itself:
// a directive must name a real analyzer, carry a non-empty reason, and
// actually suppress a finding.
package directives

import "errors"

var ErrBoom = errors.New("boom")

func justified(err error) bool {
	//lint:ignore sentinelerr fixture exercises a justified suppression
	return err == ErrBoom
}

func hygiene() {
	/* want `lint:ignore needs an analyzer name and a non-empty reason` */ //lint:ignore sentinelerr
	/* want `names unknown analyzer "nosuch"` */ //lint:ignore nosuch because reasons
	/* want `suppresses nothing` */ //lint:ignore poolleak stale excuse
}
