// Fixture for the determinism analyzer.
//
//lint:deterministic
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func clockBad() int64 {
	return time.Now().Unix() // want `time.Now in a deterministic package`
}

func sinceBad(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in a deterministic package`
}

func globalRandBad() int {
	return rand.Intn(10) // want `global rand.Intn in a deterministic package`
}

func seededRandOK() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

func jitterIgnored() int {
	//lint:ignore determinism jitter paces retries only and never reaches replayed state
	return rand.Intn(5)
}

func floatFoldBad(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `map-range fold: sum accumulates across a randomized iteration order`
	}
	return sum
}

func appendBad(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys is appended to in randomized iteration order`
	}
	return keys
}

func appendThenSortOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func intCountOK(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func distinctKeyWritesOK(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}
