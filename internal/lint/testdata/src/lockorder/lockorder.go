// Fixture for the lockorder analyzer. The canonical order is declared once,
// here, exactly as production code declares its own:
//
//lint:lockorder registry.mu -> session.mu -> shard.mu
package lockorder

import "sync"

type registry struct{ mu sync.Mutex }
type session struct{ mu sync.RWMutex }
type shard struct{ mu sync.Mutex }

func nestedOK(r *registry, s *session, sh *shard) {
	r.mu.Lock()
	s.mu.RLock()
	sh.mu.Lock()
	sh.mu.Unlock()
	s.mu.RUnlock()
	r.mu.Unlock()
}

func inversionBad(r *registry, s *session) {
	s.mu.Lock()
	r.mu.Lock() // want `acquires registry.mu while holding session.mu`
	r.mu.Unlock()
	s.mu.Unlock()
}

// sequentialOK holds the locks one after the other, never together: textual
// order against the hierarchy, but no nesting, so no violation.
func sequentialOK(sh *shard, r *registry) {
	sh.mu.Lock()
	sh.mu.Unlock()
	r.mu.Lock()
	r.mu.Unlock()
}

func grabRegistry(r *registry) {
	r.mu.Lock()
	r.mu.Unlock()
}

func transitiveBad(sh *shard, r *registry) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	grabRegistry(r) // want `call to grabRegistry acquires registry.mu while holding shard.mu`
}

// goroutineOK: the spawned body runs without the caller's locks, so the
// inversion the text suggests never happens at runtime.
func goroutineOK(r *registry, s *session) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		r.mu.Lock()
		r.mu.Unlock()
	}()
}

// Locks outside the declaration are unconstrained against each other.
type side struct{ mu sync.Mutex }

func unrankedOK(a, b *side, s *session) {
	a.mu.Lock()
	b.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	b.mu.Unlock()
	a.mu.Unlock()
}
