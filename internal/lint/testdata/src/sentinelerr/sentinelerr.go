// Fixture for the sentinelerr analyzer.
package sentinelerr

import (
	"errors"
	"io"
)

var (
	ErrStale = errors.New("stale round")
	ErrCodec = errors.New("codec mismatch")
)

func eqBad(err error) bool {
	return err == ErrStale // want `ErrStale compared with ==`
}

func neqBad(err error) bool {
	return ErrCodec != err // want `ErrCodec compared with !=`
}

func switchBad(err error) string {
	switch err {
	case ErrStale: // want `switch case compares ErrStale with ==`
		return "stale"
	case nil:
		return ""
	}
	return "other"
}

func isOK(err error) bool {
	return errors.Is(err, ErrStale)
}

func nilOK(err error) bool {
	return err == nil
}

// Sentinels of other modules keep their documented == semantics.
func foreignOK(err error) bool {
	return err == io.EOF
}

func ignored(err error) bool {
	//lint:ignore sentinelerr this error is produced one frame up and never wrapped
	return err == ErrCodec
}
