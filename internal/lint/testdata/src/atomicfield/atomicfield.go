// Fixture for the atomicfield analyzer: mixed atomic/plain access.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  int64
	drops int64
}

func good(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	return atomic.LoadInt64(&c.hits)
}

func bad(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	return c.hits // want `hits is accessed with sync/atomic .* but read plainly`
}

func badWrite(c *counters) {
	atomic.AddInt64(&c.drops, 1)
	c.drops = 0 // want `drops is accessed with sync/atomic .* but written plainly`
}

var counts [4]int32

func rangeLenOK() {
	atomic.AddInt32(&counts[0], 1)
	for i := range counts { // value-less range reads only the length
		_ = i
	}
	_ = len(counts)
}

func rangeValueBad() int32 {
	var sum int32
	for _, c := range counts { // want `counts is accessed with sync/atomic .* but read plainly`
		sum += c
	}
	return sum
}

var typed atomic.Int64

func typedMethodsOK() int64 {
	typed.Store(3)
	p := &typed
	return p.Load()
}

func typedCopyBad() int64 {
	v := typed // want `copied by value`
	return v.Load()
}
