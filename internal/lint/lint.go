// Package lint is fplint's analysis engine: a dependency-free equivalent of
// the golang.org/x/tools go/analysis framework, carrying the custom analyzers
// that machine-check this repository's concurrency and determinism
// invariants (docs/ARCHITECTURE.md, "Static analysis"):
//
//   - atomicfield: a variable or field ever accessed through sync/atomic is
//     atomic everywhere — no plain reads or writes (the "all-atomic /stats"
//     rule in mechanical form).
//   - lockorder: mutex acquisitions respect the canonical lock hierarchy,
//     declared once in the code under //lint:lockorder.
//   - determinism: packages marked //lint:deterministic neither read the
//     wall clock or the global math/rand source, nor serialize map
//     iterations into order-dependent state without a sort.
//   - sentinelerr: module error sentinels are matched with errors.Is, never
//     == or !=.
//   - poolleak: every sync.Pool.Get has a Put or an ownership transfer on
//     every return path.
//
// A justified exception is annotated at the offending line (or the line
// above) as:
//
//	//lint:ignore <analyzer> <reason>
//
// The runner enforces the annotation's hygiene: the reason must be
// non-empty, the analyzer name must exist, and the annotation must actually
// suppress a finding — deleting the code it excused turns the stale
// annotation itself into a build break.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker. Run inspects a single type-checked
// package through the Pass and reports findings; analyzers keep no state
// between packages.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass carries one package's worth of analysis input to an Analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding, position resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full fplint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicFieldAnalyzer,
		LockOrderAnalyzer,
		DeterminismAnalyzer,
		SentinelErrAnalyzer,
		PoolLeakAnalyzer,
	}
}

// ignoreDirective is one parsed //lint:ignore annotation.
type ignoreDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
}

// RunPackage runs the given analyzers over one package and returns the
// surviving diagnostics: findings suppressed by a matching //lint:ignore on
// their own line or the line directly above are dropped, and the ignore
// annotations themselves are audited (empty reason, unknown analyzer, or an
// annotation suppressing nothing are each findings in their own right).
// Diagnostics come back sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{Analyzer: a, Pkg: pkg}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		raw = append(raw, pass.diags...)
	}

	directives := collectIgnores(pkg)
	var out []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, ig := range directives {
			if ig.analyzer != d.Analyzer || ig.pos.Filename != d.Pos.Filename {
				continue
			}
			if ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1 {
				ig.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, ig := range directives {
		switch {
		case ig.analyzer == "" || ig.reason == "":
			out = append(out, Diagnostic{Pos: ig.pos, Analyzer: "lintdirective",
				Message: "lint:ignore needs an analyzer name and a non-empty reason: //lint:ignore <analyzer> <reason>"})
		case !known[ig.analyzer]:
			out = append(out, Diagnostic{Pos: ig.pos, Analyzer: "lintdirective",
				Message: fmt.Sprintf("lint:ignore names unknown analyzer %q", ig.analyzer)})
		case !ig.used:
			out = append(out, Diagnostic{Pos: ig.pos, Analyzer: "lintdirective",
				Message: fmt.Sprintf("lint:ignore for %q suppresses nothing — remove the stale annotation", ig.analyzer)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// collectIgnores parses every //lint:ignore annotation in the package.
func collectIgnores(pkg *Package) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				ig := &ignoreDirective{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					ig.analyzer = fields[0]
				}
				if len(fields) > 1 {
					ig.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, ig)
			}
		}
	}
	return out
}

// directive scans the package for a //lint:<name> marker (optionally
// followed by free text) and returns the remainder of the first match.
func directive(pkg *Package, name string) (rest string, pos token.Pos, ok bool) {
	prefix := "//lint:" + name
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if r, found := strings.CutPrefix(c.Text, prefix); found &&
					(r == "" || r[0] == ' ' || r[0] == '\t') {
					return strings.TrimSpace(r), c.Pos(), true
				}
			}
		}
	}
	return "", token.NoPos, false
}
