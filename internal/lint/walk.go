package lint

import (
	"go/ast"
	"go/types"
)

// walkStack traverses root in source order, calling fn with each node and the
// stack of its ancestors (outermost first, not including n itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// calleeObj resolves a call expression to the function or method object it
// statically invokes, nil for indirect calls (function values) and builtins.
func calleeObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether the call statically invokes the named
// package-level function of the given package path.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeObj(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// namedType unwraps pointers and aliases down to the expression type's named
// form, nil when the type has no name (or expr has no recorded type).
func namedType(info *types.Info, expr ast.Expr) *types.Named {
	tv, ok := info.Types[expr]
	if !ok {
		return nil
	}
	return asNamed(tv.Type)
}

// asNamed unwraps pointers and aliases down to a named type, nil otherwise.
func asNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// isNamed reports whether t (through pointers and aliases) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := asNamed(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// rootObj walks an lvalue-ish expression (selector, index, star, paren
// chains) down to the object its leftmost identifier resolves to; nil when
// the root is not a simple identifier.
func rootObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if o := info.Uses[e]; o != nil {
				return o
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			// Prefer the field/var the selector itself resolves to (its
			// deepest component); fall back to the receiver chain only for
			// package-qualified names.
			if sel, ok := info.Selections[e]; ok && sel != nil {
				if v, ok := sel.Obj().(*types.Var); ok {
					return v
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// inModule reports whether pkgPath belongs to the module being analyzed.
// With no module identity (GOPATH mode, incomplete go list output) it falls
// back to comparing the first path element with the analyzed package's.
func (p *Pass) inModule(pkgPath string) bool {
	if p.Pkg.Module != "" {
		return pkgPath == p.Pkg.Module || len(pkgPath) > len(p.Pkg.Module) &&
			pkgPath[:len(p.Pkg.Module)] == p.Pkg.Module && pkgPath[len(p.Pkg.Module)] == '/'
	}
	return firstElem(pkgPath) == firstElem(p.Pkg.PkgPath)
}

func firstElem(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}
