package core

import (
	"fedprophet/internal/fl"
)

// OptionsFromParams maps the registry's generic method parameters onto
// FedProphet's coordinator options. Zero-valued numeric knobs keep the
// paper defaults; the APA/DMA toggles are taken verbatim (Table 3 ablation
// runs rely on switching them off).
func OptionsFromParams(p fl.MethodParams) Options {
	o := DefaultOptions(p.BuildLarge)
	if p.RminFrac > 0 {
		o.RminFrac = p.RminFrac
	}
	if p.RoundsPerModule > 0 {
		o.RoundsPerModule = p.RoundsPerModule
	}
	if p.Patience > 0 {
		o.Patience = p.Patience
	}
	if p.Mu > 0 {
		o.Mu = p.Mu
	}
	if p.AlphaInit > 0 {
		o.AlphaInit = p.AlphaInit
	}
	if p.DeltaAlpha > 0 {
		o.DeltaAlpha = p.DeltaAlpha
	}
	if p.GammaThresh > 0 {
		o.GammaThresh = p.GammaThresh
	}
	if p.FeaturePGDSteps > 0 {
		o.FeaturePGDSteps = p.FeaturePGDSteps
	}
	if p.ValSize > 0 {
		o.ValSize = p.ValSize
	}
	if p.ValPGD > 0 {
		o.ValPGD = p.ValPGD
	}
	o.UseAPA = p.UseAPA
	o.UseDMA = p.UseDMA
	o.UploadBits = p.UploadBits
	o.UploadChunk = p.UploadChunk
	return o
}

func init() {
	fl.RegisterMethod("FedProphet", func(p fl.MethodParams) fl.Method {
		return New(OptionsFromParams(p))
	})
}
