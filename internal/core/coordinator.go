// Package core implements FedProphet itself (paper Algorithm 2): module-wise
// federated adversarial training over a cascade partition, the server-side
// training coordinator with Adaptive Perturbation Adjustment (APA, §6.2,
// Eqs. 11–12) and Differentiated Module Assignment (DMA, §6.3, Eqs. 14–15),
// and the partial-average model aggregator (§6.4, Eqs. 16–17).
package core

import (
	"fedprophet/internal/cascade"
)

// APAState tracks Adaptive Perturbation Adjustment for the module currently
// in training. The perturbation constraint is
//
//	ε(t) = α(t) · E[max ‖Δz‖]                     (Eq. 11)
//
// where the expectation was collected when the previous module was fixed,
// and α(t) moves by ±Δα when the clean/adversarial validation accuracy ratio
// drifts more than γ away from the previous module's final ratio (Eq. 12).
type APAState struct {
	Alpha      float64 // α(t)
	BasePert   float64 // E[max‖Δz_{m-1}‖] collected from clients
	DeltaAlpha float64 // Δα
	Gamma      float64 // γ
	// PrevRatio is C*_{m-1}/A*_{m-1}, the utility/robustness balance of the
	// previously fixed cascade.
	PrevRatio float64
	Enabled   bool
}

// NewAPAState initializes APA for one module stage.
func NewAPAState(alphaInit, deltaAlpha, gamma, basePert, prevRatio float64, enabled bool) *APAState {
	return &APAState{
		Alpha: alphaInit, BasePert: basePert,
		DeltaAlpha: deltaAlpha, Gamma: gamma,
		PrevRatio: prevRatio, Enabled: enabled,
	}
}

// Eps returns the current perturbation constraint ε(t) = α(t)·basePert.
func (s *APAState) Eps() float64 { return s.Alpha * s.BasePert }

// Update applies Eq. (12) given this round's validation clean accuracy C and
// adversarial accuracy A of the cascaded modules. When APA is disabled the
// scaling factor stays fixed.
func (s *APAState) Update(cleanAcc, advAcc float64) {
	if !s.Enabled || s.PrevRatio <= 0 {
		return
	}
	if advAcc <= 0 {
		// Robustness collapsed: the ratio is effectively infinite, raise ε.
		s.Alpha += s.DeltaAlpha
		return
	}
	ratio := cleanAcc / advAcc
	switch {
	case ratio > (1+s.Gamma)*s.PrevRatio:
		s.Alpha += s.DeltaAlpha
	case ratio < (1-s.Gamma)*s.PrevRatio:
		s.Alpha -= s.DeltaAlpha
	}
	if s.Alpha < 0 {
		s.Alpha = 0
	}
}

// AssignModules implements Differentiated Module Assignment (Eqs. 14–15):
// given the module currently in training m, a client's memory budget
// (cost-model bytes) and relative performance, choose the largest M_k such
// that
//
//	RangeMemReq(m, M_k)     ≤ budget            (Eq. 14)
//	RangeFLOPs(m, M_k)      ≤ perf/perfMin · ModuleFLOPs(m)   (Eq. 15)
//
// With DMA disabled every client trains exactly module m.
func AssignModules(c *cascade.Cascade, m int, memBudget int64, perf, perfMin float64, dma bool) int {
	if !dma {
		return m
	}
	limit := int64(float64(c.RangeForwardFLOPs(m, m)) * perf / perfMin)
	best := m
	for to := m; to < len(c.Modules); to++ {
		if c.RangeMemReq(m, to) > memBudget {
			break
		}
		if c.RangeForwardFLOPs(m, to) > limit {
			break
		}
		best = to
	}
	return best
}
