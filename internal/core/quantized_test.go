package core

import (
	"testing"
)

// Quantized uploads (§8's low-bit composition) must cut communication by
// roughly the bit ratio while keeping the model trainable.
func TestFedProphetQuantizedUploads(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	mk := func(bits int) Options {
		opts := DefaultOptions(microBuild)
		opts.RoundsPerModule = 3
		opts.Patience = 3
		opts.FeaturePGDSteps = 2
		opts.ValSize = 16
		opts.ValPGD = 2
		opts.UploadBits = bits
		return opts
	}

	full := mustRun(t, New(mk(0)), microEnv(t, 31))
	q8 := mustRun(t, New(mk(8)), microEnv(t, 31))

	cFull := full.Extra["comm_up_bytes"]
	cQ8 := q8.Extra["comm_up_bytes"]
	if cFull <= 0 || cQ8 <= 0 {
		t.Fatalf("communication accounting missing: %v %v", cFull, cQ8)
	}
	// 8-bit codes vs 4-byte floats: ≥3x saving even with headers and
	// uncompressed BN statistics.
	if cQ8 >= cFull/2 {
		t.Fatalf("8-bit uploads should at least halve traffic: %v vs %v", cQ8, cFull)
	}
	// Training must still work: accuracy within a wide band of the
	// unquantized run (both are tiny runs, so allow slack).
	if q8.CleanAcc < full.CleanAcc-0.25 {
		t.Fatalf("8-bit quantization destroyed training: %v vs %v", q8.CleanAcc, full.CleanAcc)
	}
}

// Chunked upload quantization (the wire codec's form) must deliver the same
// order of communication saving as whole-vector quantization and keep
// training intact.
func TestFedProphetChunkedUploads(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	mk := func(bits, chunk int) Options {
		opts := DefaultOptions(microBuild)
		opts.RoundsPerModule = 3
		opts.Patience = 3
		opts.FeaturePGDSteps = 2
		opts.ValSize = 16
		opts.ValPGD = 2
		opts.UploadBits = bits
		opts.UploadChunk = chunk
		return opts
	}

	full := mustRun(t, New(mk(0, 0)), microEnv(t, 37))
	q4 := mustRun(t, New(mk(4, 64)), microEnv(t, 37))

	cFull := full.Extra["comm_up_bytes"]
	cQ4 := q4.Extra["comm_up_bytes"]
	if cFull <= 0 || cQ4 <= 0 {
		t.Fatalf("communication accounting missing: %v %v", cFull, cQ4)
	}
	// 4-bit codes vs 4-byte floats: well over 4x even charging per-chunk
	// scales.
	if cQ4 >= cFull/4 {
		t.Fatalf("chunked 4-bit uploads should cut traffic ≥4x: %v vs %v", cQ4, cFull)
	}
	if q4.CleanAcc < full.CleanAcc-0.25 {
		t.Fatalf("chunked 4-bit quantization destroyed training: %v vs %v", q4.CleanAcc, full.CleanAcc)
	}
}

func TestCommBytesGrowWithRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	mk := func(rpm int) Options {
		opts := DefaultOptions(microBuild)
		opts.RoundsPerModule = rpm
		opts.Patience = rpm
		opts.FeaturePGDSteps = 2
		opts.ValSize = 8
		opts.ValPGD = 1
		return opts
	}
	short := mustRun(t, New(mk(1)), microEnv(t, 33))
	long := mustRun(t, New(mk(3)), microEnv(t, 33))
	if long.Extra["comm_up_bytes"] <= short.Extra["comm_up_bytes"] {
		t.Fatalf("more rounds must upload more: %v vs %v",
			short.Extra["comm_up_bytes"], long.Extra["comm_up_bytes"])
	}
}
