package core

import (
	"fedprophet/internal/nn"
)

// exportParams flattens a parameter list into one vector.
func exportParams(ps []*nn.Param) []float64 {
	n := 0
	for _, p := range ps {
		n += p.Data.Len()
	}
	out := make([]float64, 0, n)
	for _, p := range ps {
		out = append(out, p.Data.Data...)
	}
	return out
}

// importParams loads a vector produced by exportParams.
func importParams(ps []*nn.Param, v []float64) {
	off := 0
	for _, p := range ps {
		n := p.Data.Len()
		copy(p.Data.Data, v[off:off+n])
		off += n
	}
	if off != len(v) {
		panic("core: importParams length mismatch")
	}
}

// moduleUpdate is one client's trained parameters for one module.
type moduleUpdate struct {
	vec    []float64
	weight float64 // qk
}

// partialAverage aggregates per-module updates (Eq. 16) and per-module aux
// updates (Eq. 17) with the given aggregator (FedAvg weighted averaging in
// the paper; pluggable through fl.Env). updates[n] collects the backbone
// updates of module n from every client k with M_k ≥ n; auxUpdates[n]
// collects aux updates from clients with M_k = n. Modules with no updates
// keep their previous global value (passed in prev).
func partialAverage(updates map[int][]moduleUpdate, prev map[int][]float64, agg func([][]float64, []float64) []float64) map[int][]float64 {
	out := make(map[int][]float64, len(prev))
	for n, v := range prev {
		ups := updates[n]
		if len(ups) == 0 {
			out[n] = v
			continue
		}
		vecs := make([][]float64, len(ups))
		ws := make([]float64, len(ups))
		for i, u := range ups {
			vecs[i] = u.vec
			ws[i] = u.weight
		}
		out[n] = agg(vecs, ws)
	}
	return out
}
