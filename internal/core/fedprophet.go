package core

import (
	"context"
	"math"
	"math/rand"

	"fedprophet/internal/attack"
	"fedprophet/internal/cascade"
	"fedprophet/internal/data"
	"fedprophet/internal/device"
	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/quant"
	"fedprophet/internal/simlat"
	"fedprophet/internal/tensor"
)

// Options configures FedProphet beyond the shared fl.Config.
type Options struct {
	// Build constructs the backbone model.
	Build func(rng *rand.Rand) *nn.Model
	// RminFrac sets the minimal reserved memory as a fraction of the
	// full-model training requirement (0.2 in the paper).
	RminFrac float64
	// RoundsPerModule caps the communication rounds spent per module; the
	// paper uses 500 with early stopping.
	RoundsPerModule int
	// Patience stops a module stage early when validation adversarial
	// accuracy has not improved for this many rounds (50 in the paper).
	Patience int
	// Mu is the strong-convexity regularization coefficient (Eq. 9).
	Mu float64
	// AlphaInit, DeltaAlpha, GammaThresh parameterize APA (§6.2).
	AlphaInit, DeltaAlpha, GammaThresh float64
	// UseAPA / UseDMA toggle the coordinator components (Table 3 ablation).
	UseAPA, UseDMA bool
	// FeaturePGDSteps is the PGD iteration count for intermediate-feature
	// attacks during cascade training.
	FeaturePGDSteps int
	// ValSize / ValPGD control the cheap per-round validation used by APA.
	ValSize, ValPGD int
	// UploadBits, when in [2,8], quantizes client module uploads with
	// symmetric low-bit quantization before partial averaging — the
	// parameter-level compression §8 describes as complementary to module
	// partitioning. 0 disables quantization.
	UploadBits int
	// UploadChunk, when > 0 (with UploadBits set), quantizes uploads with
	// one scale per chunk of UploadChunk values instead of one scale for
	// the whole vector, matching the distributed wire codec
	// (quant.QuantizeChunks); comm-bytes accounting then charges the
	// codec's true frame size.
	UploadChunk int
}

// DefaultOptions returns the paper's coordinator hyperparameters.
func DefaultOptions(build func(rng *rand.Rand) *nn.Model) Options {
	return Options{
		Build:           build,
		RminFrac:        0.2,
		RoundsPerModule: 12,
		Patience:        6,
		Mu:              1e-5,
		AlphaInit:       0.3,
		DeltaAlpha:      0.1,
		GammaThresh:     0.05,
		UseAPA:          true,
		UseDMA:          true,
		FeaturePGDSteps: 5,
		ValSize:         48,
		ValPGD:          5,
	}
}

// FedProphet is the full method of Algorithm 2.
type FedProphet struct {
	Opts Options
}

// New constructs FedProphet with the given options.
func New(opts Options) *FedProphet { return &FedProphet{Opts: opts} }

// Name identifies the method.
func (f *FedProphet) Name() string { return "FedProphet" }

// Run executes Algorithm 2 and evaluates the final backbone.
func (f *FedProphet) Run(ctx context.Context, env *fl.Env) (*fl.Result, error) {
	o := f.Opts
	rng := env.Rng
	// Every worker slot owns a structurally identical (model, cascade)
	// replica built from the same seeds; clients load the global module
	// stores into their slot's replica, so a round's clients train
	// concurrently without sharing mutable state.
	modelSeed := rng.Int63()
	partSeed := rng.Int63()
	build := func() (*nn.Model, *cascade.Cascade, memmodel.Costs) {
		m := o.Build(rand.New(rand.NewSource(modelSeed)))
		cost := memmodel.MemReqModel(m, env.Cfg.Batch)
		rmin := int64(o.RminFrac * float64(cost.TotalBytes))
		return m, cascade.Partition(m, rmin, env.Cfg.Batch, rand.New(rand.NewSource(partSeed))), cost
	}
	workers := env.ClientWorkers()
	cascs := make([]*cascade.Cascade, workers)
	var fullCost memmodel.Costs
	for s := range cascs {
		_, cascs[s], fullCost = build()
	}
	casc := cascs[0] // server-side view: validation, perturbation collection, final eval
	cal := simlat.NewMemCalibration(env.Fleet.PoolMaxMemGB(), fullCost.TotalBytes)

	res := &fl.Result{Method: f.Name(), Extra: map[string]float64{}}
	valSample := fl.SampleDataset(env.Val, o.ValSize, rng)

	// Per-module global parameter stores (weights, aux heads, BN stats).
	globalBackbone := map[int][]float64{}
	globalAux := map[int][]float64{}
	globalBN := map[int][]float64{}
	for i, m := range casc.Modules {
		globalBackbone[i] = exportParams(m.BackboneParams())
		globalBN[i] = m.BNStats()
		if m.Aux != nil {
			globalAux[i] = exportParams(m.Aux.Params())
		}
	}
	loadGlobalsInto := func(c *cascade.Cascade) {
		for i, m := range c.Modules {
			importParams(m.BackboneParams(), globalBackbone[i])
			m.SetBNStats(globalBN[i])
			if m.Aux != nil {
				importParams(m.Aux.Params(), globalAux[i])
			}
		}
	}

	globalRound := 0
	basePert := 0.0  // E[max‖Δz_{m-1}‖] from the previous stage
	prevRatio := 0.0 // C*/A* of the previous stage
	var commBytes int64

	finishPartial := func(err error) (*fl.Result, error) {
		loadGlobalsInto(casc)
		res.Model = casc.Full()
		res.Extra["rounds"] = float64(globalRound)
		return res, fl.PartialProgress(err, globalRound)
	}

	for mIdx := range casc.Modules {
		prefixFwd := casc.PrefixForwardFLOPs(mIdx)
		apa := NewAPAState(o.AlphaInit, o.DeltaAlpha, o.GammaThresh, basePert, prevRatio, o.UseAPA && mIdx > 0)
		bestAdv, bestClean, sincImprove := -1.0, 0.0, 0

		for local := 0; local < o.RoundsPerModule; local++ {
			if err := ctx.Err(); err != nil {
				return finishPartial(err)
			}
			// Module 0 trains against the pluggable input-space attack
			// (PGD by default; fl.NoAttack or TrainPGD = 0 trains cleanly).
			// Later modules use the feature-space PGD intrinsic to cascade
			// learning, disabled alongside input adversarial training.
			var atkCfg attack.Config
			var epsNow float64
			if mIdx == 0 {
				atkCfg = env.TrainAttackConfig(env.Cfg.TrainPGD)
				epsNow = atkCfg.Eps
			} else {
				epsNow = apa.Eps()
				featSteps := o.FeaturePGDSteps
				if env.Cfg.TrainPGD <= 0 {
					featSteps = 0
				}
				atkCfg = attack.FeaturePGDConfig(epsNow, featSteps)
			}

			selected := env.Sample(rng)
			seeds := fl.RoundSeeds(rng, len(selected))
			snaps := make([]struct {
				budget int64
				perf   float64
				snap   device.Snapshot
			}, len(selected))
			perfMin := math.Inf(1)
			for i, k := range selected {
				s := env.Fleet.Snapshot(k, rng)
				snaps[i].budget = cal.Budget(s.AvailMemGB)
				snaps[i].perf = s.AvailPerf
				snaps[i].snap = s
				if s.AvailPerf < perfMin {
					perfMin = s.AvailPerf
				}
			}

			lr := env.Cfg.LR * math.Pow(env.Cfg.LRDecay, float64(globalRound))

			type modVec struct {
				j     int
				vec   []float64
				bytes int64
			}
			type clientOut struct {
				loss     float64
				lossN    int
				weight   float64
				backbone []modVec
				bn       []modVec
				aux      *modVec
				lat      simlat.Latency
			}
			outs := make([]clientOut, len(selected))
			err := fl.ForEachClient(ctx, workers, len(selected), seeds, func(slot, i int, crng *rand.Rand) {
				c := cascs[slot]
				loadGlobalsInto(c)
				to := AssignModules(c, mIdx, snaps[i].budget, snaps[i].perf, perfMin, o.UseDMA)
				opt := nn.NewSGD(lr, env.Cfg.Momentum, env.Cfg.WeightDecay)
				var params []*nn.Param
				for j := mIdx; j <= to; j++ {
					params = append(params, c.Modules[j].Params()...)
				}
				nn.ResetMomentum(params)

				out := &outs[i]
				sub := env.Subsets[selected[i]]
				batches := data.Batches(sub.Indices, env.Cfg.Batch, crng)
				iters := 0
				for iters < env.Cfg.LocalIters && len(batches) > 0 {
					for _, b := range batches {
						if iters >= env.Cfg.LocalIters {
							break
						}
						x, y := data.Batch(sub.Parent, b)
						z := c.ForwardPrefix(x, mIdx)
						out.loss += c.AdversarialStep(z, y, mIdx, to, atkCfg, o.Mu, opt, crng)
						out.lossN++
						iters++
					}
				}

				out.weight = float64(sub.Len())
				for j := mIdx; j <= to; j++ {
					vec, bytes := f.encodeUpload(exportParams(c.Modules[j].BackboneParams()))
					out.backbone = append(out.backbone, modVec{j, vec, bytes})
					bn := c.Modules[j].BNStats()
					out.bn = append(out.bn, modVec{j, bn, int64(4 * len(bn))})
				}
				if aux := c.Modules[to].Aux; aux != nil {
					vec, bytes := f.encodeUpload(exportParams(aux.Params()))
					out.aux = &modVec{to, vec, bytes}
				}

				// Latency accounting: the prefix forward runs once per batch;
				// the assigned range runs PGD attack passes plus the training
				// pass.
				rangeFwd := c.RangeForwardFLOPs(mIdx, to)
				flops := int64(iters) * (prefixFwd*int64(env.Cfg.Batch) +
					memmodel.TrainingFLOPs(rangeFwd, env.Cfg.Batch, atkSteps(atkCfg)))
				out.lat = simlat.ClientLatency(simlat.Work{
					FLOPs:     flops,
					MemReq:    c.RangeMemReq(mIdx, to),
					MemBudget: snaps[i].budget,
					Passes:    int64(iters) * simlat.PassesPerBatch(atkSteps(atkCfg)),
					Swap:      false, // DMA never exceeds the budget
				}, snaps[i].snap)
			})
			if err != nil {
				return finishPartial(err)
			}

			updates := map[int][]moduleUpdate{}
			auxUpdates := map[int][]moduleUpdate{}
			bnUpdates := map[int][]moduleUpdate{}
			var lats []simlat.Latency
			roundLoss, lossN := 0.0, 0
			for i := range outs {
				out := &outs[i]
				for _, mv := range out.backbone {
					updates[mv.j] = append(updates[mv.j], moduleUpdate{vec: mv.vec, weight: out.weight})
					commBytes += mv.bytes
				}
				for _, mv := range out.bn {
					bnUpdates[mv.j] = append(bnUpdates[mv.j], moduleUpdate{vec: mv.vec, weight: out.weight})
					commBytes += mv.bytes
				}
				if out.aux != nil {
					auxUpdates[out.aux.j] = append(auxUpdates[out.aux.j], moduleUpdate{vec: out.aux.vec, weight: out.weight})
					commBytes += out.aux.bytes
				}
				roundLoss += out.loss
				lossN += out.lossN
				lats = append(lats, out.lat)
			}

			globalBackbone = partialAverage(mergeFixed(updates, globalBackbone), globalBackbone, env.Aggregate)
			globalAux = partialAverage(mergeFixed(auxUpdates, globalAux), globalAux, env.Aggregate)
			globalBN = partialAverage(mergeFixed(bnUpdates, globalBN), globalBN, env.Aggregate)
			loadGlobalsInto(casc)

			// Validation of the cascaded modules for APA and early stopping.
			comp := casc.Composite(mIdx)
			cAcc := attack.CleanAccuracy(comp, valSample, env.Cfg.EvalBatch)
			aAcc := attack.AdvAccuracy(comp, valSample, env.Cfg.EvalBatch,
				attack.PGDConfig(env.Cfg.Eps, o.ValPGD), rng)
			apa.Update(cAcc, aAcc)

			roundLat := simlat.RoundLatency(lats)
			res.Latency.Add(roundLat)
			avgLoss := 0.0
			if lossN > 0 {
				avgLoss = roundLoss / float64(lossN)
			}
			env.Record(res, fl.RoundMetrics{
				Round:      globalRound,
				Loss:       avgLoss,
				Latency:    roundLat,
				PerDimPert: perDimPert(epsNow, casc.Modules[mIdx].InShape, mIdx),
				Module:     mIdx,
			})
			globalRound++

			if aAcc > bestAdv {
				bestAdv, bestClean, sincImprove = aAcc, cAcc, 0
			} else {
				sincImprove++
				if sincImprove >= o.Patience {
					break
				}
			}
		}

		// Fix module mIdx; collect E[max‖Δz_m‖] for the next stage (Eq. 11)
		// and record C*/A*.
		if bestAdv > 0 {
			prevRatio = bestClean / bestAdv
		} else {
			prevRatio = 0
		}
		if mIdx < len(casc.Modules)-1 {
			basePert = f.collectOutputPerturbation(env, casc, mIdx, apaEpsOrInput(apa, env.Cfg, mIdx), rng)
			if basePert <= 0 {
				basePert = 0.1
			}
			if mIdx == 0 {
				// d*_1 = E[max‖Δz_1‖], the quantity plotted in Figure 8.
				res.Extra["pert_z1"] = basePert
			}
		}
	}

	clean, pgd, aa := fl.Evaluate(casc.Full(), env.Test, env.Cfg, rng)
	res.CleanAcc, res.PGDAcc, res.AAAcc = clean, pgd, aa
	res.Model = casc.Full()
	res.Extra["modules"] = float64(len(casc.Modules))
	maxMod := int64(0)
	for i := range casc.Modules {
		if r := casc.ModuleMemReq(i); r > maxMod {
			maxMod = r
		}
	}
	res.Extra["mem_full_bytes"] = float64(fullCost.TotalBytes)
	res.Extra["mem_module_bytes"] = float64(maxMod)
	res.Extra["mem_reduction"] = 1 - float64(maxMod)/float64(fullCost.TotalBytes)
	res.Extra["rounds"] = float64(globalRound)
	res.Extra["comm_up_bytes"] = float64(commBytes)
	return res, nil
}

// encodeUpload applies the optional low-bit quantization to one upload
// vector, returning the (possibly lossy) vector the server will aggregate
// and its wire size in bytes. With UploadChunk set it uses the wire codec's
// per-chunk quantization, which confines each outlier weight's damage to
// its own chunk.
func (f *FedProphet) encodeUpload(vec []float64) ([]float64, int64) {
	if f.Opts.UploadBits < 2 || f.Opts.UploadBits > 8 {
		return vec, int64(4 * len(vec))
	}
	if f.Opts.UploadChunk > 0 {
		c := quant.QuantizeChunks(vec, f.Opts.UploadBits, f.Opts.UploadChunk)
		return c.Dequantize(), int64(c.Bytes())
	}
	q := quant.Quantize(vec, f.Opts.UploadBits)
	return q.Dequantize(), int64(q.Bytes())
}

// atkSteps reports the PGD step count of a configured attack.
func atkSteps(cfg attack.Config) int { return cfg.Steps }

// apaEpsOrInput returns the constraint used on module mIdx's input when
// measuring its output perturbation: ε0 for the first module, the APA ε for
// later ones.
func apaEpsOrInput(apa *APAState, cfg fl.Config, mIdx int) attack.Config {
	if mIdx == 0 {
		return attack.PGDConfig(cfg.Eps, 5)
	}
	return attack.FeaturePGDConfig(apa.Eps(), 5)
}

// collectOutputPerturbation estimates E[max‖Δz_m‖] on validation batches,
// standing in for the client-side collection of Algorithm 2.
func (f *FedProphet) collectOutputPerturbation(env *fl.Env, casc *cascade.Cascade, mIdx int, atkCfg attack.Config, rng *rand.Rand) float64 {
	sample := fl.SampleDataset(env.Val, 32, rng)
	if sample.Len() < 2 {
		return 0
	}
	idx := make([]int, sample.Len())
	for i := range idx {
		idx[i] = i
	}
	x, _ := data.Batch(sample, idx)
	var zin *tensor.Tensor = casc.ForwardPrefix(x, mIdx)
	return casc.MaxOutputPerturbation(zin, mIdx, atkCfg, rng)
}

// perDimPert converts an ε constraint into the per-dimension magnitude
// plotted in Figure 10: ℓ∞ radii are already per-dimension; ℓ2 radii are
// divided by √d.
func perDimPert(eps float64, inShape []int, mIdx int) float64 {
	if mIdx == 0 {
		return eps
	}
	d := 1
	for _, s := range inShape {
		d *= s
	}
	return eps / math.Sqrt(float64(d))
}

// mergeFixed ensures every module key in prev exists in updates so that
// partialAverage preserves untouched modules.
func mergeFixed(updates map[int][]moduleUpdate, prev map[int][]float64) map[int][]moduleUpdate {
	for n := range prev {
		if _, ok := updates[n]; !ok {
			updates[n] = nil
		}
	}
	return updates
}
