package core

import (
	"context"
	"math/rand"
	"testing"

	"fedprophet/internal/cascade"
	"fedprophet/internal/data"
	"fedprophet/internal/device"
	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
)

func TestAPAEpsIsAlphaTimesBase(t *testing.T) {
	s := NewAPAState(0.3, 0.1, 0.05, 2.0, 1.5, true)
	if s.Eps() != 0.6 {
		t.Fatalf("Eps = %v, want 0.6", s.Eps())
	}
}

func TestAPAUpdateRaisesAlphaWhenRatioTooHigh(t *testing.T) {
	// PrevRatio 1.5; clean/adv = 0.9/0.4 = 2.25 > 1.05·1.5 → α += Δα.
	s := NewAPAState(0.3, 0.1, 0.05, 1, 1.5, true)
	s.Update(0.9, 0.4)
	if s.Alpha != 0.4 {
		t.Fatalf("Alpha = %v, want 0.4", s.Alpha)
	}
}

func TestAPAUpdateLowersAlphaWhenRatioTooLow(t *testing.T) {
	// clean/adv = 0.5/0.48 ≈ 1.04 < 0.95·1.5 → α −= Δα.
	s := NewAPAState(0.3, 0.1, 0.05, 1, 1.5, true)
	s.Update(0.5, 0.48)
	if s.Alpha >= 0.3 {
		t.Fatalf("Alpha = %v, want < 0.3", s.Alpha)
	}
}

func TestAPAUpdateDeadZone(t *testing.T) {
	// ratio within ±γ of PrevRatio keeps α.
	s := NewAPAState(0.3, 0.1, 0.05, 1, 1.5, true)
	s.Update(0.6, 0.4) // ratio 1.5 exactly
	if s.Alpha != 0.3 {
		t.Fatalf("Alpha = %v, want unchanged 0.3", s.Alpha)
	}
}

func TestAPADisabledNeverMoves(t *testing.T) {
	s := NewAPAState(0.3, 0.1, 0.05, 1, 1.5, false)
	s.Update(1.0, 0.01)
	if s.Alpha != 0.3 {
		t.Fatal("disabled APA must not adjust alpha")
	}
}

func TestAPAZeroAdvAccRaises(t *testing.T) {
	s := NewAPAState(0.3, 0.1, 0.05, 1, 1.5, true)
	s.Update(0.8, 0)
	if s.Alpha != 0.4 {
		t.Fatalf("Alpha = %v, want 0.4 on robustness collapse", s.Alpha)
	}
}

func TestAPAAlphaNeverNegative(t *testing.T) {
	s := NewAPAState(0.05, 0.1, 0.05, 1, 1.5, true)
	s.Update(0.5, 0.49) // force decrease
	if s.Alpha < 0 {
		t.Fatalf("Alpha went negative: %v", s.Alpha)
	}
}

// mustRun executes a method to completion, failing the test on error.
func mustRun(t *testing.T, m fl.Method, env *fl.Env) *fl.Result {
	t.Helper()
	res, err := m.Run(context.Background(), env)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return res
}

func buildTestCascade(t *testing.T) *cascade.Cascade {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	m := nn.VGG16S([]int{3, 16, 16}, 10, 4, rng)
	full := memmodel.MemReqModel(m, 8).TotalBytes
	return cascade.Partition(m, full/5, 8, rng)
}

func TestAssignModulesRespectsMemory(t *testing.T) {
	c := buildTestCascade(t)
	if len(c.Modules) < 3 {
		t.Skip("need ≥3 modules")
	}
	// Budget for exactly one module.
	b1 := c.ModuleMemReq(0)
	got := AssignModules(c, 0, b1, 100, 1, true)
	if got != 0 {
		t.Fatalf("tight budget must assign a single module, got up to %d", got)
	}
	// Huge budget and performance: memory no longer binds.
	huge := c.RangeMemReq(0, len(c.Modules)-1) * 2
	got = AssignModules(c, 0, huge, 1e6, 1, true)
	if got == 0 {
		t.Fatal("prophet client should receive extra modules")
	}
	for to := 0; to <= got; to++ {
		if c.RangeMemReq(0, to) > huge {
			t.Fatal("assignment exceeded memory budget")
		}
	}
}

func TestAssignModulesRespectsFLOPs(t *testing.T) {
	c := buildTestCascade(t)
	if len(c.Modules) < 3 {
		t.Skip("need ≥3 modules")
	}
	huge := c.RangeMemReq(0, len(c.Modules)-1) * 2
	// perf == perfMin: Eq. 15 limits FLOPs to one module's cost.
	got := AssignModules(c, 0, huge, 1.0, 1.0, true)
	limit := c.RangeForwardFLOPs(0, 0)
	if c.RangeForwardFLOPs(0, got) > limit {
		t.Fatalf("FLOPs constraint violated: %d > %d", c.RangeForwardFLOPs(0, got), limit)
	}
}

func TestAssignModulesDisabledDMA(t *testing.T) {
	c := buildTestCascade(t)
	got := AssignModules(c, 1, 1<<62, 1e9, 1, false)
	if got != 1 {
		t.Fatalf("DMA off must assign exactly the current module, got %d", got)
	}
}

func TestAssignModulesNeverBelowCurrent(t *testing.T) {
	c := buildTestCascade(t)
	got := AssignModules(c, 2, 1, 0.001, 1, true) // impossible budget
	if got != 2 {
		t.Fatalf("assignment must include the current module, got %d", got)
	}
}

func TestPartialAverageBasic(t *testing.T) {
	prev := map[int][]float64{
		0: {0, 0},
		1: {7, 7},
	}
	ups := map[int][]moduleUpdate{
		0: {
			{vec: []float64{1, 2}, weight: 1},
			{vec: []float64{3, 4}, weight: 1},
		},
	}
	out := partialAverage(mergeFixed(ups, prev), prev, fl.WeightedAverage)
	if out[0][0] != 2 || out[0][1] != 3 {
		t.Fatalf("module 0 average wrong: %v", out[0])
	}
	if out[1][0] != 7 || out[1][1] != 7 {
		t.Fatalf("untouched module must keep previous value: %v", out[1])
	}
}

func TestPartialAverageWeighted(t *testing.T) {
	prev := map[int][]float64{0: {0}}
	ups := map[int][]moduleUpdate{
		0: {
			{vec: []float64{0}, weight: 3},
			{vec: []float64{4}, weight: 1},
		},
	}
	out := partialAverage(ups, prev, fl.WeightedAverage)
	if out[0][0] != 1 {
		t.Fatalf("weighted average wrong: %v", out[0])
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := nn.NewLinear(4, 3, rng)
	b := nn.NewLinear(4, 3, rand.New(rand.NewSource(3)))
	importParams(b.Params(), exportParams(a.Params()))
	av, bv := exportParams(a.Params()), exportParams(b.Params())
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

// microEnv builds a tiny but complete federated environment.
func microEnv(t *testing.T, seed int64) *fl.Env {
	t.Helper()
	cfg := fl.DefaultConfig()
	cfg.NumClients = 8
	cfg.ClientsPerRound = 3
	cfg.LocalIters = 4
	cfg.Batch = 8
	cfg.TrainPGD = 3
	cfg.EvalPGD = 5
	cfg.EvalAASteps = 5
	cfg.EvalBatch = 16
	cfg.LR = 0.05
	cfg.Seed = seed

	dcfg := data.SyntheticConfig{
		Name: "micro", Classes: 4, Shape: []int{2, 8, 8},
		TrainPerClass: 40, TestPerClass: 12,
		NoiseStd: 0.08, MixMax: 0.2, Seed: seed,
	}
	train, test := data.Generate(dcfg)
	train, val := data.SplitHoldout(train, 0.15, seed)
	train, public := data.SplitHoldout(train, 0.1, seed+1)
	subs := data.PartitionNonIID(train, data.DefaultPartition(cfg.NumClients, seed))
	rng := rand.New(rand.NewSource(seed))
	fleet := device.NewFleet(device.CIFARPool(), cfg.NumClients, device.Balanced, rng)
	return &fl.Env{
		Train: train, Subsets: subs, Val: val, Test: test, Public: public,
		Fleet: fleet, Cfg: cfg, Rng: rng,
	}
}

func microBuild(rng *rand.Rand) *nn.Model {
	return nn.CNN3([]int{2, 8, 8}, 4, 4, rng)
}

func TestFedProphetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	env := microEnv(t, 5)
	opts := DefaultOptions(microBuild)
	opts.RoundsPerModule = 4
	opts.Patience = 4
	opts.FeaturePGDSteps = 3
	opts.ValSize = 24
	opts.ValPGD = 3

	res := mustRun(t, New(opts), env)
	if res.CleanAcc <= 1.0/4+0.1 {
		t.Fatalf("FedProphet failed to learn: clean acc %v", res.CleanAcc)
	}
	if res.PGDAcc < 0 || res.AAAcc > res.PGDAcc+1e-9 {
		t.Fatalf("robustness metrics inconsistent: PGD %v AA %v", res.PGDAcc, res.AAAcc)
	}
	if res.Extra["modules"] < 2 {
		t.Fatalf("expected a multi-module partition, got %v", res.Extra["modules"])
	}
	if res.Extra["mem_reduction"] <= 0.3 {
		t.Fatalf("memory reduction too small: %v", res.Extra["mem_reduction"])
	}
	if res.Latency.Total() <= 0 {
		t.Fatal("latency must be positive")
	}
	if len(res.History) == 0 {
		t.Fatal("history must be recorded")
	}
	// Per-dim perturbation must be recorded for every round and positive
	// once past module 0.
	for _, h := range res.History {
		if h.PerDimPert < 0 {
			t.Fatal("negative per-dim perturbation")
		}
	}
}

func TestFedProphetDeterministicSameSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	opts := DefaultOptions(microBuild)
	opts.RoundsPerModule = 2
	opts.Patience = 2
	opts.FeaturePGDSteps = 2
	opts.ValSize = 16
	opts.ValPGD = 2

	r1 := mustRun(t, New(opts), microEnv(t, 9))
	r2 := mustRun(t, New(opts), microEnv(t, 9))
	if r1.CleanAcc != r2.CleanAcc || r1.PGDAcc != r2.PGDAcc {
		t.Fatalf("same seed must reproduce results: %v/%v vs %v/%v",
			r1.CleanAcc, r1.PGDAcc, r2.CleanAcc, r2.PGDAcc)
	}
}
