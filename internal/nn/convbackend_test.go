package nn

import (
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"fedprophet/internal/tensor"
)

// convCase enumerates the geometries the GEMM lowering must reproduce:
// padded, strided, biased, 1×1, non-square inputs, pad exceeding 1.
var convCases = []struct {
	name                      string
	inC, outC, k, stride, pad int
	bias                      bool
	bsz, h, w                 int
}{
	{"padded3x3", 2, 3, 3, 1, 1, false, 2, 5, 5},
	{"padded3x3bias", 2, 3, 3, 1, 1, true, 2, 5, 5},
	{"strided", 2, 4, 3, 2, 1, false, 2, 6, 6},
	{"stridedBias", 3, 2, 3, 2, 1, true, 1, 7, 7},
	{"oneByOne", 3, 2, 1, 2, 0, false, 2, 4, 4},
	{"nonSquare", 2, 2, 3, 1, 1, true, 2, 4, 6},
	{"widePad", 1, 2, 3, 2, 2, false, 2, 5, 5},
	{"kernelExceedsInput", 1, 2, 6, 1, 2, false, 1, 2, 2},
}

func newConvPair(t *testing.T, seed int64, inC, outC, k, stride, pad int, bias bool) (direct, gemm *Conv2D) {
	t.Helper()
	direct = NewConv2D(inC, outC, k, stride, pad, bias, rand.New(rand.NewSource(seed)))
	gemm = NewConv2D(inC, outC, k, stride, pad, bias, rand.New(rand.NewSource(seed)))
	direct.Backend = ConvDirect
	gemm.Backend = ConvGEMM
	return direct, gemm
}

// The GEMM backend must pass the same finite-difference gradient checks as
// the direct loops, on every geometry.
func TestConvGEMMGradients(t *testing.T) {
	for i, cs := range convCases {
		t.Run(cs.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(100 + int64(i)))
			c := NewConv2D(cs.inC, cs.outC, cs.k, cs.stride, cs.pad, cs.bias, rng)
			c.Backend = ConvGEMM
			x := tensor.Randn(rng, 1, cs.bsz, cs.inC, cs.h, cs.w)
			checkLayerGrads(t, c, x, true, 1e-6)
		})
	}
}

// Forward activations must be BIT-identical between backends: the GEMM
// kernels accumulate each output element over (ic, kh, kw) in exactly the
// direct loops' order, and padding contributes exact-zero terms.
func TestConvBackendsForwardBitIdentical(t *testing.T) {
	for i, cs := range convCases {
		direct, gemm := newConvPair(t, 200+int64(i), cs.inC, cs.outC, cs.k, cs.stride, cs.pad, cs.bias)
		x := tensor.Randn(rand.New(rand.NewSource(300+int64(i))), 1, cs.bsz, cs.inC, cs.h, cs.w)
		outD := direct.Forward(x, true)
		outG := gemm.Forward(x, true)
		if !outD.SameShape(outG) {
			t.Fatalf("%s: shapes diverge %v vs %v", cs.name, outD.Shape(), outG.Shape())
		}
		for j := range outD.Data {
			if outD.Data[j] != outG.Data[j] {
				t.Fatalf("%s: forward[%d] = %v (direct) vs %v (gemm)",
					cs.name, j, outD.Data[j], outG.Data[j])
			}
		}
	}
}

// Weight and bias gradients accumulate in the same order in both backends and
// must be bit-identical; the input gradient groups its sum differently (the
// GEMM path reduces over output channels first) and must agree to ≤1e-9
// relative error — the tolerance the gradcheck contract allows.
func TestConvBackendsBackwardEquivalent(t *testing.T) {
	for i, cs := range convCases {
		direct, gemm := newConvPair(t, 400+int64(i), cs.inC, cs.outC, cs.k, cs.stride, cs.pad, cs.bias)
		rng := rand.New(rand.NewSource(500 + int64(i)))
		x := tensor.Randn(rng, 1, cs.bsz, cs.inC, cs.h, cs.w)

		outD := direct.Forward(x, true)
		grad := tensor.Randn(rng, 1, outD.Shape()...)
		gemm.Forward(x, true)

		ZeroGrads(direct)
		ZeroGrads(gemm)
		dxD := direct.Backward(grad.Clone())
		dxG := gemm.Backward(grad.Clone())

		for j := range direct.W.Grad.Data {
			if direct.W.Grad.Data[j] != gemm.W.Grad.Data[j] {
				t.Fatalf("%s: dW[%d] = %v (direct) vs %v (gemm)",
					cs.name, j, direct.W.Grad.Data[j], gemm.W.Grad.Data[j])
			}
		}
		if cs.bias {
			for j := range direct.B.Grad.Data {
				if direct.B.Grad.Data[j] != gemm.B.Grad.Data[j] {
					t.Fatalf("%s: dB[%d] diverges", cs.name, j)
				}
			}
		}
		for j := range dxD.Data {
			d, g := dxD.Data[j], dxG.Data[j]
			if math.Abs(d-g) > 1e-9*(1+math.Abs(d)) {
				t.Fatalf("%s: dX[%d] = %v (direct) vs %v (gemm)", cs.name, j, d, g)
			}
		}
	}
}

// The layer-cached col buffer must survive batch-size changes (PGD eval and
// train batches differ) and release cleanly to the arena.
func TestConvGEMMScratchLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewConv2D(2, 3, 3, 1, 1, false, rng)
	c.Backend = ConvGEMM
	for _, bsz := range []int{4, 1, 8, 2} {
		x := tensor.Randn(rng, 1, bsz, 2, 6, 6)
		out := c.Forward(x, true)
		ZeroGrads(c)
		dx := c.Backward(tensor.Randn(rng, 1, out.Shape()...))
		if !dx.SameShape(x) {
			t.Fatalf("bsz %d: dx shape %v, want %v", bsz, dx.Shape(), x.Shape())
		}
	}
	c.ReleaseScratch()
	if c.col != nil {
		t.Fatal("ReleaseScratch must drop the cached col buffer")
	}
	// Reacquire transparently.
	x := tensor.Randn(rng, 1, 2, 2, 6, 6)
	c.Forward(x, true)
	if c.col == nil {
		t.Fatal("Forward after ReleaseScratch must rebuild the col buffer")
	}
}

// ReleaseScratch must reach convolutions nested in every container type.
func TestReleaseScratchWalksTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := ResNet10S([]int{3, 16, 16}, 10, 4, rng)
	convs := CollectConvs(m)
	if len(convs) < 9 { // conv1 + 4 stages × (2 convs) ≥ 9, plus projections
		t.Fatalf("CollectConvs found %d convs in ResNet10-S", len(convs))
	}
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	m.Forward(x, true)
	busy := 0
	for _, c := range convs {
		if c.col != nil {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("forward pass must populate col buffers")
	}
	ReleaseScratch(m)
	for _, c := range convs {
		if c.col != nil {
			t.Fatal("ReleaseScratch left a cached buffer behind")
		}
	}
}

// A full model forward/backward must agree across backends within gradcheck
// tolerance, train and eval mode alike.
func TestModelBackendsAgree(t *testing.T) {
	build := func(backend ConvBackend) (*Model, *tensor.Tensor) {
		rng := rand.New(rand.NewSource(77))
		m := CNN3([]int{3, 16, 16}, 10, 4, rng)
		for _, c := range CollectConvs(m) {
			c.Backend = backend
		}
		x := tensor.Randn(rand.New(rand.NewSource(78)), 1, 4, 3, 16, 16)
		return m, x
	}
	md, xd := build(ConvDirect)
	mg, xg := build(ConvGEMM)
	for _, train := range []bool{true, false} {
		outD := md.Forward(xd, train)
		outG := mg.Forward(xg, train)
		for j := range outD.Data {
			if math.Abs(outD.Data[j]-outG.Data[j]) > 1e-9*(1+math.Abs(outD.Data[j])) {
				t.Fatalf("train=%v: logits[%d] diverge: %v vs %v",
					train, j, outD.Data[j], outG.Data[j])
			}
		}
		grad := tensor.Randn(rand.New(rand.NewSource(79)), 1, outD.Shape()...)
		dxD := md.Backward(grad.Clone())
		dxG := mg.Backward(grad.Clone())
		for j := range dxD.Data {
			if math.Abs(dxD.Data[j]-dxG.Data[j]) > 1e-9*(1+math.Abs(dxD.Data[j])) {
				t.Fatalf("train=%v: dX[%d] diverges: %v vs %v", train, j, dxD.Data[j], dxG.Data[j])
			}
		}
	}
}

// Flipping the package default between Forward and Backward must not desync
// the cached state: Backward always runs the backend its Forward used.
func TestBackendFlipBetweenForwardAndBackward(t *testing.T) {
	prev := DefaultConvBackend()
	defer SetConvBackend(prev)

	rng := rand.New(rand.NewSource(21))
	ref := NewConv2D(2, 3, 3, 1, 1, false, rng)
	flip := NewConv2D(2, 3, 3, 1, 1, false, rand.New(rand.NewSource(21)))
	x := tensor.Randn(rand.New(rand.NewSource(22)), 1, 2, 2, 5, 5)

	SetConvBackend(ConvGEMM)
	outRef := ref.Forward(x, true)
	ZeroGrads(ref)
	dxRef := ref.Backward(outRef.Clone())

	outFlip := flip.Forward(x, true)
	SetConvBackend(ConvDirect) // flipped mid-flight
	ZeroGrads(flip)
	dxFlip := flip.Backward(outFlip.Clone())

	for i := range dxRef.Data {
		if dxRef.Data[i] != dxFlip.Data[i] {
			t.Fatalf("dX[%d] diverges after mid-flight backend flip", i)
		}
	}
	for i := range ref.W.Grad.Data {
		if ref.W.Grad.Data[i] != flip.W.Grad.Data[i] {
			t.Fatalf("dW[%d] diverges after mid-flight backend flip", i)
		}
	}
}

func TestMaxPoolPanicsOnIndivisibleInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxPool2D must panic when H or W is not divisible by the kernel")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	NewMaxPool2D(2).Forward(tensor.Randn(rng, 1, 1, 1, 5, 4), true)
}

// The running variance must use the unbiased (÷(n−1)) estimator while batch
// normalization itself stays biased (÷n).
func TestBatchNormRunningVarUnbiased(t *testing.T) {
	bn := NewBatchNorm2D(1)
	// 2 samples of 1×1×1: values 0 and 2 → mean 1, biased var 1, unbiased 2.
	x := tensor.FromSlice([]float64{0, 2}, 2, 1, 1, 1)
	bn.Forward(x, true)
	wantRV := (1-bn.Momentum)*1 + bn.Momentum*2
	if got := bn.RunningVar.Data[0]; math.Abs(got-wantRV) > 1e-12 {
		t.Fatalf("RunningVar = %v, want %v (unbiased)", got, wantRV)
	}
	// Normalization itself must still use the biased variance: with ÷n the
	// outputs are ±1/√(1+eps), with ÷(n−1) they would be ±1/√(2+eps).
	out := bn.Forward(x, true)
	want := 1 / math.Sqrt(1+bn.Eps)
	if math.Abs(out.Data[1]-want) > 1e-9 {
		t.Fatalf("normalized output %v, want %v (biased batch var)", out.Data[1], want)
	}
}

// Give the test binary real concurrency even on single-CPU CI, so the
// GEMM convolution's ParallelFor fan-out (images, weight rows) actually runs
// multi-worker here and under -race, and the bit-identity assertions above
// prove scheduling independence rather than trivially passing inline.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}
