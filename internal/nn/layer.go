// Package nn implements the neural-network substrate of the FedProphet
// reproduction: layers with explicit forward/backward passes, parameter
// containers, an SGD optimizer, losses, and the scaled model families used in
// the paper's evaluation (VGG16-S, ResNet34-S, CNN3/CNN4, and the smaller
// VGG/ResNet variants used by the knowledge-distillation baselines).
//
// Every Layer caches whatever it needs during Forward so that Backward can
// return the gradient with respect to the layer input. That input gradient is
// what powers both PGD adversarial-example generation and cascade learning's
// intermediate-feature perturbations.
package nn

import (
	"fmt"

	"fedprophet/internal/tensor"
)

// Param is a trainable tensor together with its gradient accumulator and
// optimizer state (momentum buffer, managed by SGD).
type Param struct {
	Name string
	Data *tensor.Tensor
	Grad *tensor.Tensor
	// NoDecay marks parameters (biases, batch-norm affine terms) excluded
	// from weight decay, following standard practice.
	NoDecay bool

	momentum *tensor.Tensor // lazily allocated by SGD
}

// NewParam allocates a parameter with a zeroed gradient of matching shape.
func NewParam(name string, data *tensor.Tensor, noDecay bool) *Param {
	return &Param{Name: name, Data: data, Grad: tensor.New(data.Shape()...), NoDecay: noDecay}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumElems returns the number of scalar weights in the parameter.
func (p *Param) NumElems() int { return p.Data.Len() }

// Layer is a differentiable unit. Forward consumes a batched input and
// returns the batched output; Backward consumes dL/d(output) and returns
// dL/d(input), accumulating parameter gradients along the way.
//
// OutShape and ForwardFLOPs describe the per-sample output geometry and
// forward cost given a per-sample input shape (excluding the batch
// dimension); they drive the memory/FLOPs cost model of internal/memmodel.
type Layer interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
	OutShape(in []int) []int
	ForwardFLOPs(in []int) int64
	Name() string
}

// ZeroGrads clears the gradients of every parameter of the layer.
func ZeroGrads(l Layer) {
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total number of scalar parameters in the layer.
func NumParams(l Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.NumElems()
	}
	return n
}

// CopyParams copies parameter values from src to dst. The two layers must
// have structurally identical parameter lists.
func CopyParams(dst, src Layer) {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		panic(fmt.Sprintf("nn: CopyParams arity mismatch %d vs %d", len(dp), len(sp)))
	}
	for i := range dp {
		if dp[i].Data.Len() != sp[i].Data.Len() {
			panic(fmt.Sprintf("nn: CopyParams size mismatch at %s", dp[i].Name))
		}
		copy(dp[i].Data.Data, sp[i].Data.Data)
	}
}

func prodInts(s []int) int {
	p := 1
	for _, v := range s {
		p *= v
	}
	return p
}
