package nn

import (
	"math"
	"math/rand"

	"fedprophet/internal/tensor"
)

// Conv2D is a 2-D convolution over NCHW inputs with square kernels,
// configurable stride and zero padding.
type Conv2D struct {
	InC, OutC   int
	Kernel      int
	Stride      int
	Pad         int
	W           *Param // (OutC, InC, K, K)
	B           *Param // (OutC)
	hasBias     bool
	x           *tensor.Tensor // cached input
	inH, inW    int
	outH, outW  int
	cachedTrain bool
}

// NewConv2D constructs a convolution with Kaiming-normal initialization.
// If bias is false (the usual choice before batch norm), no bias term is
// allocated.
func NewConv2D(inC, outC, kernel, stride, pad int, bias bool, rng *rand.Rand) *Conv2D {
	fanIn := float64(inC * kernel * kernel)
	std := math.Sqrt(2.0 / fanIn)
	w := tensor.Randn(rng, std, outC, inC, kernel, kernel)
	c := &Conv2D{
		InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad,
		W: NewParam("conv.w", w, false), hasBias: bias,
	}
	if bias {
		c.B = NewParam("conv.b", tensor.New(outC), true)
	}
	return c
}

func (c *Conv2D) outDims(h, w int) (int, int) {
	oh := (h+2*c.Pad-c.Kernel)/c.Stride + 1
	ow := (w+2*c.Pad-c.Kernel)/c.Stride + 1
	return oh, ow
}

// Forward performs the convolution via direct loops. Inputs are NCHW.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	bsz, inC, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if inC != c.InC {
		panic("nn: Conv2D channel mismatch")
	}
	oh, ow := c.outDims(h, w)
	c.x, c.inH, c.inW, c.outH, c.outW, c.cachedTrain = x, h, w, oh, ow, train

	out := tensor.New(bsz, c.OutC, oh, ow)
	k, st, pad := c.Kernel, c.Stride, c.Pad
	wd := c.W.Data.Data
	for b := 0; b < bsz; b++ {
		xb := x.Data[b*inC*h*w : (b+1)*inC*h*w]
		ob := out.Data[b*c.OutC*oh*ow : (b+1)*c.OutC*oh*ow]
		for oc := 0; oc < c.OutC; oc++ {
			bias := 0.0
			if c.hasBias {
				bias = c.B.Data.Data[oc]
			}
			oplane := ob[oc*oh*ow : (oc+1)*oh*ow]
			for ic := 0; ic < inC; ic++ {
				xplane := xb[ic*h*w : (ic+1)*h*w]
				wBase := ((oc*inC + ic) * k) * k
				for kh := 0; kh < k; kh++ {
					for kw := 0; kw < k; kw++ {
						wv := wd[wBase+kh*k+kw]
						if wv == 0 {
							continue
						}
						for oy := 0; oy < oh; oy++ {
							iy := oy*st + kh - pad
							if iy < 0 || iy >= h {
								continue
							}
							xrow := xplane[iy*w : (iy+1)*w]
							orow := oplane[oy*ow : (oy+1)*ow]
							for ox := 0; ox < ow; ox++ {
								ix := ox*st + kw - pad
								if ix < 0 || ix >= w {
									continue
								}
								orow[ox] += wv * xrow[ix]
							}
						}
					}
				}
			}
			if bias != 0 {
				for i := range oplane {
					oplane[i] += bias
				}
			}
		}
	}
	return out
}

// Backward accumulates weight/bias gradients and returns dL/dx.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	bsz := grad.Dim(0)
	h, w, oh, ow := c.inH, c.inW, c.outH, c.outW
	k, st, pad := c.Kernel, c.Stride, c.Pad
	dx := tensor.New(bsz, c.InC, h, w)
	wd := c.W.Data.Data
	wg := c.W.Grad.Data

	for b := 0; b < bsz; b++ {
		xb := c.x.Data[b*c.InC*h*w : (b+1)*c.InC*h*w]
		gb := grad.Data[b*c.OutC*oh*ow : (b+1)*c.OutC*oh*ow]
		dxb := dx.Data[b*c.InC*h*w : (b+1)*c.InC*h*w]
		for oc := 0; oc < c.OutC; oc++ {
			gplane := gb[oc*oh*ow : (oc+1)*oh*ow]
			if c.hasBias {
				s := 0.0
				for _, v := range gplane {
					s += v
				}
				c.B.Grad.Data[oc] += s
			}
			for ic := 0; ic < c.InC; ic++ {
				xplane := xb[ic*h*w : (ic+1)*h*w]
				dxplane := dxb[ic*h*w : (ic+1)*h*w]
				wBase := ((oc*c.InC + ic) * k) * k
				for kh := 0; kh < k; kh++ {
					for kw := 0; kw < k; kw++ {
						wv := wd[wBase+kh*k+kw]
						dwAcc := 0.0
						for oy := 0; oy < oh; oy++ {
							iy := oy*st + kh - pad
							if iy < 0 || iy >= h {
								continue
							}
							xrow := xplane[iy*w : (iy+1)*w]
							dxrow := dxplane[iy*w : (iy+1)*w]
							grow := gplane[oy*ow : (oy+1)*ow]
							for ox := 0; ox < ow; ox++ {
								ix := ox*st + kw - pad
								if ix < 0 || ix >= w {
									continue
								}
								g := grow[ox]
								dwAcc += g * xrow[ix]
								dxrow[ix] += g * wv
							}
						}
						wg[wBase+kh*k+kw] += dwAcc
					}
				}
			}
		}
	}
	return dx
}

// Params returns weight (and bias if present).
func (c *Conv2D) Params() []*Param {
	if c.hasBias {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}

// OutShape maps (C,H,W) to (OutC,H',W').
func (c *Conv2D) OutShape(in []int) []int {
	oh, ow := c.outDims(in[1], in[2])
	return []int{c.OutC, oh, ow}
}

// ForwardFLOPs counts 2·K²·InC·OutC·H'·W' per sample.
func (c *Conv2D) ForwardFLOPs(in []int) int64 {
	oh, ow := c.outDims(in[1], in[2])
	return 2 * int64(c.Kernel) * int64(c.Kernel) * int64(c.InC) * int64(c.OutC) * int64(oh) * int64(ow)
}

// Name identifies the layer kind.
func (c *Conv2D) Name() string { return "conv2d" }
