package nn

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"sync/atomic"

	"fedprophet/internal/tensor"
)

// ConvBackend selects the convolution implementation.
type ConvBackend int

const (
	// ConvAuto follows the package-wide default (see SetConvBackend).
	ConvAuto ConvBackend = iota
	// ConvDirect is the original direct-loop implementation, kept as the
	// reference the GEMM path is verified against.
	ConvDirect
	// ConvGEMM lowers the convolution onto im2col plus cache-blocked,
	// batch-parallel GEMM — the default, and the fast path for training.
	ConvGEMM
)

// String names the backend for logs and errors.
func (b ConvBackend) String() string {
	switch b {
	case ConvDirect:
		return "direct"
	case ConvGEMM:
		return "gemm"
	default:
		return "auto"
	}
}

// defaultConvBackend holds the process-wide backend used by convolutions
// whose Backend field is ConvAuto. Atomic because client workers may be
// mid-forward when a caller flips it.
var defaultConvBackend atomic.Int32

func init() {
	b := ConvGEMM
	switch v := strings.ToLower(os.Getenv("FEDPROPHET_CONV_BACKEND")); v {
	case "direct":
		b = ConvDirect
	case "", "gemm":
	default:
		fmt.Fprintf(os.Stderr, "nn: ignoring unknown FEDPROPHET_CONV_BACKEND=%q (want direct or gemm)\n", v)
	}
	defaultConvBackend.Store(int32(b))
}

// SetConvBackend sets the process-wide default convolution backend. The
// environment variable FEDPROPHET_CONV_BACKEND=direct selects the direct
// loops at startup without code changes.
func SetConvBackend(b ConvBackend) {
	if b == ConvAuto {
		b = ConvGEMM
	}
	defaultConvBackend.Store(int32(b))
}

// DefaultConvBackend reports the current process-wide default.
func DefaultConvBackend() ConvBackend { return ConvBackend(defaultConvBackend.Load()) }

// Conv2D is a 2-D convolution over NCHW inputs with square kernels,
// configurable stride and zero padding.
type Conv2D struct {
	InC, OutC int
	Kernel    int
	Stride    int
	Pad       int
	W         *Param // (OutC, InC, K, K)
	B         *Param // (OutC)
	// Backend overrides the implementation for this layer; leave ConvAuto
	// (the zero value) to follow the package default.
	Backend ConvBackend

	hasBias    bool
	x          *tensor.Tensor // cached input
	inH, inW   int
	outH, outW int
	// usedGEMM latches which backend the last Forward ran, so Backward
	// stays consistent with it even if SetConvBackend flips the package
	// default mid-flight.
	usedGEMM bool

	// col caches the im2col unrolling of the last forward input, one
	// (InC·K·K)×(outH·outW) block per image. Forward fills it, Backward
	// reads it, and it is reused across batches so the training hot loop
	// stops allocating. ReleaseScratch returns it to tensor.Scratch.
	col []float64
}

// NewConv2D constructs a convolution with Kaiming-normal initialization.
// If bias is false (the usual choice before batch norm), no bias term is
// allocated.
func NewConv2D(inC, outC, kernel, stride, pad int, bias bool, rng *rand.Rand) *Conv2D {
	fanIn := float64(inC * kernel * kernel)
	std := math.Sqrt(2.0 / fanIn)
	w := tensor.Randn(rng, std, outC, inC, kernel, kernel)
	c := &Conv2D{
		InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad,
		W: NewParam("conv.w", w, false), hasBias: bias,
	}
	if bias {
		c.B = NewParam("conv.b", tensor.New(outC), true)
	}
	return c
}

func (c *Conv2D) outDims(h, w int) (int, int) {
	return tensor.ConvOutDims(h, w, c.Kernel, c.Stride, c.Pad)
}

func (c *Conv2D) backend() ConvBackend {
	if c.Backend != ConvAuto {
		return c.Backend
	}
	return DefaultConvBackend()
}

// ReleaseScratch returns the layer's cached im2col buffer to the shared
// arena. Call it when the layer goes idle (end of a client's training turn);
// the next Forward will transparently reacquire scratch.
func (c *Conv2D) ReleaseScratch() {
	if c.col != nil {
		tensor.Scratch.Put(c.col)
		c.col = nil
	}
}

// Forward performs the convolution. Inputs are NCHW.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	bsz, inC, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if inC != c.InC {
		panic("nn: Conv2D channel mismatch")
	}
	oh, ow := c.outDims(h, w)
	c.x, c.inH, c.inW, c.outH, c.outW = x, h, w, oh, ow

	out := tensor.New(bsz, c.OutC, oh, ow)
	c.usedGEMM = c.backend() != ConvDirect
	if c.usedGEMM {
		c.forwardGEMM(x, out, bsz, h, w, oh, ow)
	} else {
		c.forwardDirect(x, out, bsz, h, w, oh, ow)
	}
	return out
}

// forwardGEMM lowers the convolution onto im2col + GEMM: each image's
// receptive fields are unrolled into a column matrix and the whole layer
// becomes W (OutC × InC·K²) times col (InC·K² × outH·outW), written straight
// into the image's contiguous output block. Images run in parallel; each
// per-element sum accumulates in the same (ic, kh, kw) order as the direct
// loops, so the two backends produce bit-identical forward activations.
func (c *Conv2D) forwardGEMM(x, out *tensor.Tensor, bsz, h, w, oh, ow int) {
	k, st, pad := c.Kernel, c.Stride, c.Pad
	ickk := c.InC * k * k
	ohow := oh * ow
	need := bsz * ickk * ohow
	if cap(c.col) < need {
		tensor.Scratch.Put(c.col)
		c.col = tensor.Scratch.Get(need)
	}
	c.col = c.col[:need]
	wd := c.W.Data.Data
	tensor.ParallelFor(bsz, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			colB := c.col[b*ickk*ohow : (b+1)*ickk*ohow]
			tensor.Im2ColInto(colB, x.Data[b*c.InC*h*w:(b+1)*c.InC*h*w], c.InC, h, w, k, st, pad)
			outB := out.Data[b*c.OutC*ohow : (b+1)*c.OutC*ohow]
			tensor.MatMulInto(outB, wd, colB, c.OutC, ickk, ohow)
			if c.hasBias {
				for oc := 0; oc < c.OutC; oc++ {
					bias := c.B.Data.Data[oc]
					if bias == 0 {
						continue
					}
					oplane := outB[oc*ohow : (oc+1)*ohow]
					for i := range oplane {
						oplane[i] += bias
					}
				}
			}
		}
	})
}

// forwardDirect is the original direct-loop implementation.
func (c *Conv2D) forwardDirect(x, out *tensor.Tensor, bsz, h, w, oh, ow int) {
	inC := c.InC
	k, st, pad := c.Kernel, c.Stride, c.Pad
	wd := c.W.Data.Data
	for b := 0; b < bsz; b++ {
		xb := x.Data[b*inC*h*w : (b+1)*inC*h*w]
		ob := out.Data[b*c.OutC*oh*ow : (b+1)*c.OutC*oh*ow]
		for oc := 0; oc < c.OutC; oc++ {
			bias := 0.0
			if c.hasBias {
				bias = c.B.Data.Data[oc]
			}
			oplane := ob[oc*oh*ow : (oc+1)*oh*ow]
			for ic := 0; ic < inC; ic++ {
				xplane := xb[ic*h*w : (ic+1)*h*w]
				wBase := ((oc*inC + ic) * k) * k
				for kh := 0; kh < k; kh++ {
					for kw := 0; kw < k; kw++ {
						wv := wd[wBase+kh*k+kw]
						if wv == 0 {
							continue
						}
						for oy := 0; oy < oh; oy++ {
							iy := oy*st + kh - pad
							if iy < 0 || iy >= h {
								continue
							}
							xrow := xplane[iy*w : (iy+1)*w]
							orow := oplane[oy*ow : (oy+1)*ow]
							for ox := 0; ox < ow; ox++ {
								ix := ox*st + kw - pad
								if ix < 0 || ix >= w {
									continue
								}
								orow[ox] += wv * xrow[ix]
							}
						}
					}
				}
			}
			if bias != 0 {
				for i := range oplane {
					oplane[i] += bias
				}
			}
		}
	}
}

// Backward accumulates weight/bias gradients and returns dL/dx. It always
// uses the backend the matching Forward ran, so the cached state is
// consistent even if the package default flips between the two calls.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.usedGEMM {
		return c.backwardGEMM(grad)
	}
	return c.backwardDirect(grad)
}

// backwardGEMM computes the three convolution gradients on the col buffer
// cached by forwardGEMM:
//
//	dW += dY_b · col_bᵀ   (MatMulTransBAcc, per image in batch order)
//	dX  = Col2Im(Wᵀ · dY_b)   (MatMulTransA then adjoint scatter, per image)
//
// dX parallelizes over images (disjoint writes) and dW over weight rows,
// with each weight element accumulating images in ascending batch order —
// so gradients are bit-deterministic at every GOMAXPROCS.
func (c *Conv2D) backwardGEMM(grad *tensor.Tensor) *tensor.Tensor {
	bsz := grad.Dim(0)
	h, w, oh, ow := c.inH, c.inW, c.outH, c.outW
	k, st, pad := c.Kernel, c.Stride, c.Pad
	ickk := c.InC * k * k
	ohow := oh * ow
	if len(c.col) != bsz*ickk*ohow {
		panic(fmt.Sprintf("nn: Conv2D GEMM backward without matching forward (col %d, need %d)",
			len(c.col), bsz*ickk*ohow))
	}
	dx := tensor.New(bsz, c.InC, h, w)
	wd := c.W.Data.Data
	wg := c.W.Grad.Data

	if c.hasBias {
		for b := 0; b < bsz; b++ {
			gb := grad.Data[b*c.OutC*ohow : (b+1)*c.OutC*ohow]
			for oc := 0; oc < c.OutC; oc++ {
				s := 0.0
				for _, v := range gb[oc*ohow : (oc+1)*ohow] {
					s += v
				}
				c.B.Grad.Data[oc] += s
			}
		}
	}

	tensor.ParallelFor(bsz, func(lo, hi int) {
		dcol := tensor.Scratch.Get(ickk * ohow)
		defer tensor.Scratch.Put(dcol)
		for b := lo; b < hi; b++ {
			gb := grad.Data[b*c.OutC*ohow : (b+1)*c.OutC*ohow]
			tensor.MatMulTransAInto(dcol, wd, gb, c.OutC, ickk, ohow)
			tensor.Col2ImAccInto(dx.Data[b*c.InC*h*w:(b+1)*c.InC*h*w], dcol, c.InC, h, w, k, st, pad)
		}
	})

	tensor.ParallelFor(c.OutC, func(lo, hi int) {
		for b := 0; b < bsz; b++ {
			gb := grad.Data[b*c.OutC*ohow : (b+1)*c.OutC*ohow]
			colB := c.col[b*ickk*ohow : (b+1)*ickk*ohow]
			tensor.MatMulTransBAccRowsInto(wg, gb, colB, ohow, ickk, lo, hi)
		}
	})
	return dx
}

// backwardDirect is the original direct-loop implementation.
func (c *Conv2D) backwardDirect(grad *tensor.Tensor) *tensor.Tensor {
	bsz := grad.Dim(0)
	h, w, oh, ow := c.inH, c.inW, c.outH, c.outW
	k, st, pad := c.Kernel, c.Stride, c.Pad
	dx := tensor.New(bsz, c.InC, h, w)
	wd := c.W.Data.Data
	wg := c.W.Grad.Data

	for b := 0; b < bsz; b++ {
		xb := c.x.Data[b*c.InC*h*w : (b+1)*c.InC*h*w]
		gb := grad.Data[b*c.OutC*oh*ow : (b+1)*c.OutC*oh*ow]
		dxb := dx.Data[b*c.InC*h*w : (b+1)*c.InC*h*w]
		for oc := 0; oc < c.OutC; oc++ {
			gplane := gb[oc*oh*ow : (oc+1)*oh*ow]
			if c.hasBias {
				s := 0.0
				for _, v := range gplane {
					s += v
				}
				c.B.Grad.Data[oc] += s
			}
			for ic := 0; ic < c.InC; ic++ {
				xplane := xb[ic*h*w : (ic+1)*h*w]
				dxplane := dxb[ic*h*w : (ic+1)*h*w]
				wBase := ((oc*c.InC + ic) * k) * k
				for kh := 0; kh < k; kh++ {
					for kw := 0; kw < k; kw++ {
						wv := wd[wBase+kh*k+kw]
						dwAcc := 0.0
						for oy := 0; oy < oh; oy++ {
							iy := oy*st + kh - pad
							if iy < 0 || iy >= h {
								continue
							}
							xrow := xplane[iy*w : (iy+1)*w]
							dxrow := dxplane[iy*w : (iy+1)*w]
							grow := gplane[oy*ow : (oy+1)*ow]
							for ox := 0; ox < ow; ox++ {
								ix := ox*st + kw - pad
								if ix < 0 || ix >= w {
									continue
								}
								g := grow[ox]
								dwAcc += g * xrow[ix]
								dxrow[ix] += g * wv
							}
						}
						wg[wBase+kh*k+kw] += dwAcc
					}
				}
			}
		}
	}
	return dx
}

// Params returns weight (and bias if present).
func (c *Conv2D) Params() []*Param {
	if c.hasBias {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}

// OutShape maps (C,H,W) to (OutC,H',W').
func (c *Conv2D) OutShape(in []int) []int {
	oh, ow := c.outDims(in[1], in[2])
	return []int{c.OutC, oh, ow}
}

// ForwardFLOPs counts 2·K²·InC·OutC·H'·W' per sample.
func (c *Conv2D) ForwardFLOPs(in []int) int64 {
	oh, ow := c.outDims(in[1], in[2])
	return 2 * int64(c.Kernel) * int64(c.Kernel) * int64(c.InC) * int64(c.OutC) * int64(oh) * int64(ow)
}

// Name identifies the layer kind.
func (c *Conv2D) Name() string { return "conv2d" }

// CollectConvs returns every Conv2D reachable inside the layer tree
// (Sequential, BasicBlock, Model containers), mirroring CollectBatchNorms.
func CollectConvs(l Layer) []*Conv2D {
	var out []*Conv2D
	switch v := l.(type) {
	case *Conv2D:
		out = append(out, v)
	case *Sequential:
		for _, sub := range v.Layers {
			out = append(out, CollectConvs(sub)...)
		}
	case *BasicBlock:
		out = append(out, v.Conv1, v.Conv2)
		if v.DownConv != nil {
			out = append(out, v.DownConv)
		}
	case *Model:
		for _, a := range v.Atoms {
			out = append(out, CollectConvs(a)...)
		}
	}
	return out
}

// ReleaseScratch returns the cached im2col buffers of every convolution in
// the layer tree to the shared arena. Safe to call on an idle model; the
// buffers are reacquired lazily on the next Forward.
func ReleaseScratch(l Layer) {
	for _, c := range CollectConvs(l) {
		c.ReleaseScratch()
	}
}
