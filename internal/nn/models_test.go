package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedprophet/internal/tensor"
)

func TestVGG16SShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := VGG16S([]int{3, 16, 16}, 10, 4, rng)
	if len(m.Atoms) != 16 {
		t.Fatalf("VGG16-S should have 16 atoms (13 conv + 3 fc), got %d", len(m.Atoms))
	}
	out := m.OutShape([]int{3, 16, 16})
	if len(out) != 1 || out[0] != 10 {
		t.Fatalf("OutShape = %v, want [10]", out)
	}
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	y := m.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("forward shape %v", y.Shape())
	}
}

func TestResNet34SShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := ResNet34S([]int{3, 24, 24}, 32, 4, rng)
	// conv1 + 16 blocks + head = 18 atoms.
	if len(m.Atoms) != 18 {
		t.Fatalf("ResNet34-S should have 18 atoms, got %d", len(m.Atoms))
	}
	out := m.OutShape([]int{3, 24, 24})
	if out[0] != 32 {
		t.Fatalf("OutShape = %v", out)
	}
	x := tensor.Randn(rng, 1, 2, 3, 24, 24)
	y := m.Forward(x, true)
	if y.Dim(1) != 32 {
		t.Fatalf("forward shape %v", y.Shape())
	}
}

func TestSmallModels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, m := range []*Model{
		CNN3([]int{3, 16, 16}, 10, 4, rng),
		CNN4([]int{3, 24, 24}, 32, 4, rng),
		VGG11S([]int{3, 16, 16}, 10, 4, rng),
		VGG13S([]int{3, 16, 16}, 10, 4, rng),
		ResNet10S([]int{3, 24, 24}, 32, 4, rng),
		ResNet18S([]int{3, 24, 24}, 32, 4, rng),
	} {
		out := m.OutShape(m.InShape)
		if out[0] != m.NumClasses {
			t.Fatalf("%s OutShape = %v, want %d classes", m.Label, out, m.NumClasses)
		}
		x := tensor.Randn(rng, 1, 2, m.InShape[0], m.InShape[1], m.InShape[2])
		y := m.Forward(x, false)
		if y.Dim(1) != m.NumClasses {
			t.Fatalf("%s forward shape %v", m.Label, y.Shape())
		}
	}
}

func TestModelFLOPsPositiveAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := CNN3([]int{3, 16, 16}, 10, 4, rng)
	large := VGG16S([]int{3, 16, 16}, 10, 8, rng)
	fs := small.ForwardFLOPs(small.InShape)
	fl := large.ForwardFLOPs(large.InShape)
	if fs <= 0 || fl <= 0 {
		t.Fatalf("FLOPs must be positive: %d %d", fs, fl)
	}
	if fl <= fs {
		t.Fatalf("VGG16-S (%d) must cost more than CNN3 (%d)", fl, fs)
	}
}

func TestExportImportParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := CNN3([]int{3, 16, 16}, 10, 4, rng)
	b := CNN3([]int{3, 16, 16}, 10, 4, rand.New(rand.NewSource(6)))
	v := ExportParams(a)
	ImportParams(b, v)
	va, vb := ExportParams(a), ExportParams(b)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestSGDStepReducesQuadratic(t *testing.T) {
	// Minimize f(w) = ½‖w‖² with SGD; the iterates must decay geometrically.
	p := NewParam("w", tensor.FromSlice([]float64{5, -3}, 2), false)
	opt := NewSGD(0.1, 0, 0)
	for i := 0; i < 100; i++ {
		copy(p.Grad.Data, p.Data.Data) // grad of ½‖w‖² is w
		opt.Step([]*Param{p})
	}
	if p.Data.L2Norm() > 1e-3 {
		t.Fatalf("SGD failed to minimize quadratic, ‖w‖=%g", p.Data.L2Norm())
	}
}

func TestSGDMomentumAcceleratesOnIllConditioned(t *testing.T) {
	run := func(momentum float64) float64 {
		p := NewParam("w", tensor.FromSlice([]float64{1, 1}, 2), false)
		opt := NewSGD(0.02, momentum, 0)
		for i := 0; i < 60; i++ {
			p.Grad.Data[0] = p.Data.Data[0] * 10 // κ = 10
			p.Grad.Data[1] = p.Data.Data[1]
			opt.Step([]*Param{p})
		}
		return p.Data.L2Norm()
	}
	if run(0.9) >= run(0) {
		t.Fatal("momentum should converge faster on ill-conditioned quadratic")
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float64{1}, 1), false)
	opt := NewSGD(0.1, 0, 0.5)
	p.Grad.Data[0] = 0
	opt.Step([]*Param{p})
	if p.Data.Data[0] >= 1 {
		t.Fatal("weight decay must shrink weights with zero gradient")
	}
	// NoDecay parameters are untouched by decay.
	q := NewParam("b", tensor.FromSlice([]float64{1}, 1), true)
	opt.Step([]*Param{q})
	if q.Data.Data[0] != 1 {
		t.Fatal("NoDecay parameter must not shrink")
	}
}

func TestSGDDecay(t *testing.T) {
	opt := NewSGD(1.0, 0, 0)
	opt.Decay(0.5)
	opt.Decay(0.5)
	if math.Abs(opt.LR-0.25) > 1e-15 {
		t.Fatalf("LR = %v, want 0.25", opt.LR)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Softmax(tensor.Randn(rng, 3, 5, 7))
	for b := 0; b < 5; b++ {
		s := 0.0
		for j := 0; j < 7; j++ {
			s += p.At(b, j)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", b, s)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 2, 0,
		5, 1, 1,
		0, 0, 3,
	}, 3, 3)
	got := Accuracy(logits, []int{1, 0, 0})
	if math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("Accuracy = %v", got)
	}
}

// A one-batch overfit test: a small CNN trained on a fixed batch must drive
// the loss near zero. This is the classic end-to-end sanity check that the
// whole substrate (conv, bn, pool, linear, CE, SGD) learns.
func TestOverfitSingleBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := CNN3([]int{3, 8, 8}, 4, 4, rng)
	x := tensor.Randn(rng, 1, 8, 3, 8, 8)
	labels := []int{0, 1, 2, 3, 0, 1, 2, 3}
	opt := NewSGD(0.05, 0.9, 0)

	var loss float64
	for it := 0; it < 150; it++ {
		out := m.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = SoftmaxCrossEntropy(out, labels)
		ZeroGrads(m)
		m.Backward(grad)
		opt.Step(m.Params())
	}
	if loss > 0.1 {
		t.Fatalf("failed to overfit single batch, loss %g", loss)
	}
	out := m.Forward(x, false)
	if acc := Accuracy(out, labels); acc < 0.99 {
		t.Fatalf("train accuracy %v after overfit", acc)
	}
}
