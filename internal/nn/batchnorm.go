package nn

import (
	"math"

	"fedprophet/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW tensor over the batch and
// spatial dimensions, with learnable affine parameters and running statistics
// used at evaluation time. The running statistics are themselves exposed as
// state for FedRBN-style robustness propagation.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate

	Gamma *Param // (C)
	Beta  *Param // (C)

	// RunningMean and RunningVar are the EMA statistics used in eval mode.
	// FedRBN copies these across clients, so they are exported tensors.
	RunningMean *tensor.Tensor
	RunningVar  *tensor.Tensor

	// caches for backward
	x       *tensor.Tensor
	xhat    []float64
	mean    []float64
	invStd  []float64
	trained bool
}

// NewBatchNorm2D constructs a batch norm over c channels.
func NewBatchNorm2D(c int) *BatchNorm2D {
	gamma := tensor.New(c)
	gamma.Fill(1)
	rv := tensor.New(c)
	rv.Fill(1)
	return &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam("bn.gamma", gamma, true),
		Beta:        NewParam("bn.beta", tensor.New(c), true),
		RunningMean: tensor.New(c),
		RunningVar:  rv,
	}
}

// Forward normalizes x; in train mode it uses batch statistics and updates
// the running averages, in eval mode it uses the running statistics.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	bsz, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != bn.C {
		panic("nn: BatchNorm2D channel mismatch")
	}
	n := bsz * h * w
	bn.x, bn.trained = x, train
	if cap(bn.mean) < c {
		bn.mean = make([]float64, c)
		bn.invStd = make([]float64, c)
	}
	bn.mean = bn.mean[:c]
	bn.invStd = bn.invStd[:c]
	if cap(bn.xhat) < x.Len() {
		bn.xhat = make([]float64, x.Len())
	}
	bn.xhat = bn.xhat[:x.Len()]

	out := tensor.New(bsz, c, h, w)
	hw := h * w
	for ch := 0; ch < c; ch++ {
		var mean, varr float64
		if train {
			s := 0.0
			for b := 0; b < bsz; b++ {
				base := (b*c + ch) * hw
				for i := 0; i < hw; i++ {
					s += x.Data[base+i]
				}
			}
			mean = s / float64(n)
			v := 0.0
			for b := 0; b < bsz; b++ {
				base := (b*c + ch) * hw
				for i := 0; i < hw; i++ {
					d := x.Data[base+i] - mean
					v += d * d
				}
			}
			varr = v / float64(n)
			// The biased (÷n) variance normalizes the batch, but the running
			// statistic uses the unbiased (÷(n−1)) estimator as PyTorch does,
			// so eval-mode outputs are not systematically sharpened at small
			// batch sizes.
			runVar := varr
			if n > 1 {
				runVar = v / float64(n-1)
			}
			bn.RunningMean.Data[ch] = (1-bn.Momentum)*bn.RunningMean.Data[ch] + bn.Momentum*mean
			bn.RunningVar.Data[ch] = (1-bn.Momentum)*bn.RunningVar.Data[ch] + bn.Momentum*runVar
		} else {
			mean = bn.RunningMean.Data[ch]
			varr = bn.RunningVar.Data[ch]
		}
		invStd := 1.0 / math.Sqrt(varr+bn.Eps)
		bn.mean[ch] = mean
		bn.invStd[ch] = invStd
		g := bn.Gamma.Data.Data[ch]
		be := bn.Beta.Data.Data[ch]
		for b := 0; b < bsz; b++ {
			base := (b*c + ch) * hw
			for i := 0; i < hw; i++ {
				xh := (x.Data[base+i] - mean) * invStd
				bn.xhat[base+i] = xh
				out.Data[base+i] = g*xh + be
			}
		}
	}
	return out
}

// Backward implements the standard batch-norm gradient. In eval mode the
// statistics are constants, which simplifies the input gradient to
// gamma·invStd·grad — that path is used by PGD at evaluation time.
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	bsz, c, h, w := grad.Dim(0), grad.Dim(1), grad.Dim(2), grad.Dim(3)
	hw := h * w
	n := float64(bsz * hw)
	dx := tensor.New(bsz, c, h, w)

	for ch := 0; ch < c; ch++ {
		g := bn.Gamma.Data.Data[ch]
		invStd := bn.invStd[ch]
		var sumDy, sumDyXhat float64
		for b := 0; b < bsz; b++ {
			base := (b*c + ch) * hw
			for i := 0; i < hw; i++ {
				dy := grad.Data[base+i]
				sumDy += dy
				sumDyXhat += dy * bn.xhat[base+i]
			}
		}
		bn.Beta.Grad.Data[ch] += sumDy
		bn.Gamma.Grad.Data[ch] += sumDyXhat

		if !bn.trained {
			// Statistics are constants in eval mode.
			scale := g * invStd
			for b := 0; b < bsz; b++ {
				base := (b*c + ch) * hw
				for i := 0; i < hw; i++ {
					dx.Data[base+i] = scale * grad.Data[base+i]
				}
			}
			continue
		}
		for b := 0; b < bsz; b++ {
			base := (b*c + ch) * hw
			for i := 0; i < hw; i++ {
				dy := grad.Data[base+i]
				xh := bn.xhat[base+i]
				dx.Data[base+i] = g * invStd * (dy - sumDy/n - xh*sumDyXhat/n)
			}
		}
	}
	return dx
}

// Params returns gamma and beta.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// OutShape is the identity.
func (bn *BatchNorm2D) OutShape(in []int) []int { return append([]int(nil), in...) }

// ForwardFLOPs counts roughly four ops per element.
func (bn *BatchNorm2D) ForwardFLOPs(in []int) int64 { return 4 * int64(prodInts(in)) }

// Name identifies the layer kind.
func (bn *BatchNorm2D) Name() string { return "batchnorm2d" }

// CollectBatchNorms returns every BatchNorm2D reachable inside the layer
// tree (Sequential, BasicBlock, Model containers). FedRBN propagates
// adversarial robustness through these layers' running statistics.
func CollectBatchNorms(l Layer) []*BatchNorm2D {
	var out []*BatchNorm2D
	switch v := l.(type) {
	case *BatchNorm2D:
		out = append(out, v)
	case *Sequential:
		for _, sub := range v.Layers {
			out = append(out, CollectBatchNorms(sub)...)
		}
	case *BasicBlock:
		out = append(out, v.BN1, v.BN2)
		if v.DownBN != nil {
			out = append(out, v.DownBN)
		}
	case *Model:
		for _, a := range v.Atoms {
			out = append(out, CollectBatchNorms(a)...)
		}
	}
	return out
}

// ExportBNStats flattens the running statistics of every batch norm in the
// layer into one vector (means then variances, per layer).
// NumBNStats returns how many running-statistic values ExportBNStats would
// emit, without materializing them — shape checks on hot paths use this.
func NumBNStats(l Layer) int {
	n := 0
	for _, bn := range CollectBatchNorms(l) {
		n += bn.RunningMean.Len() + bn.RunningVar.Len()
	}
	return n
}

func ExportBNStats(l Layer) []float64 {
	var out []float64
	for _, bn := range CollectBatchNorms(l) {
		out = append(out, bn.RunningMean.Data...)
		out = append(out, bn.RunningVar.Data...)
	}
	return out
}

// ImportBNStats restores a vector produced by ExportBNStats.
func ImportBNStats(l Layer, v []float64) {
	off := 0
	for _, bn := range CollectBatchNorms(l) {
		n := bn.RunningMean.Len()
		copy(bn.RunningMean.Data, v[off:off+n])
		off += n
		copy(bn.RunningVar.Data, v[off:off+n])
		off += n
	}
	if off != len(v) {
		panic("nn: ImportBNStats length mismatch")
	}
}
