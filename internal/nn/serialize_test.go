package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"fedprophet/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := CNN3([]int{3, 16, 16}, 10, 4, rng)
	// Train one step so BN running stats are non-trivial.
	x := tensor.Uniform(rng, 0, 1, 4, 3, 16, 16)
	src.Forward(x, true)

	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}

	dst := CNN3([]int{3, 16, 16}, 10, 4, rand.New(rand.NewSource(99)))
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}

	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("restored model produces different outputs")
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := CNN3([]int{3, 16, 16}, 10, 4, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	other := CNN4([]int{3, 24, 24}, 32, 4, rng)
	if err := LoadParams(&buf, other); err == nil {
		t.Fatal("loading into a mismatched architecture must fail")
	}
	// And the target must be untouched on failure paths that detect the
	// mismatch before writing.
}

func TestLoadRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := CNN3([]int{3, 16, 16}, 10, 4, rng)
	if err := LoadParams(bytes.NewReader([]byte("not a checkpoint")), m); err == nil {
		t.Fatal("garbage input must fail to decode")
	}
}

func TestSaveLoadResNetWithBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := ResNet10S([]int{3, 16, 16}, 8, 4, rng)
	x := tensor.Uniform(rng, 0, 1, 2, 3, 16, 16)
	src.Forward(x, true)

	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := ResNet10S([]int{3, 16, 16}, 8, 4, rand.New(rand.NewSource(5)))
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("ResNet round trip failed")
		}
	}
}
