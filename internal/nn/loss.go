package nn

import (
	"math"

	"fedprophet/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (B, K) against integer labels, returning the loss value and the gradient
// with respect to the logits (already divided by the batch size).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	bsz, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != bsz {
		panic("nn: label count does not match batch size")
	}
	grad := tensor.New(bsz, k)
	loss := 0.0
	inv := 1.0 / float64(bsz)
	for b := 0; b < bsz; b++ {
		row := logits.Data[b*k : (b+1)*k]
		grow := grad.Data[b*k : (b+1)*k]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for i, v := range row {
			e := math.Exp(v - maxv)
			grow[i] = e
			sum += e
		}
		y := labels[b]
		loss += -math.Log(grow[y]/sum + 1e-300)
		for i := range grow {
			grow[i] = grow[i] / sum * inv
		}
		grow[y] -= inv
	}
	return loss * inv, grad
}

// Softmax returns row-wise softmax probabilities of logits (B, K).
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	bsz, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(bsz, k)
	for b := 0; b < bsz; b++ {
		row := logits.Data[b*k : (b+1)*k]
		orow := out.Data[b*k : (b+1)*k]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for i, v := range row {
			e := math.Exp(v - maxv)
			orow[i] = e
			sum += e
		}
		for i := range orow {
			orow[i] /= sum
		}
	}
	return out
}

// CWMarginLoss computes the Carlini–Wagner margin loss
// mean_b (max_{j≠y} z_j − z_y) and its gradient with respect to the logits.
// Maximizing this loss drives misclassification; it is the second attack in
// our AutoAttack-style ensemble.
func CWMarginLoss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	bsz, k := logits.Dim(0), logits.Dim(1)
	grad := tensor.New(bsz, k)
	loss := 0.0
	inv := 1.0 / float64(bsz)
	for b := 0; b < bsz; b++ {
		row := logits.Data[b*k : (b+1)*k]
		y := labels[b]
		bestJ, bestV := -1, math.Inf(-1)
		for j, v := range row {
			if j != y && v > bestV {
				bestJ, bestV = j, v
			}
		}
		loss += (bestV - row[y]) * inv
		grad.Data[b*k+bestJ] += inv
		grad.Data[b*k+y] -= inv
	}
	return loss, grad
}

// KLDivergence computes mean KL(p ‖ softmax(logits)) for teacher
// probabilities p and student logits, with the gradient w.r.t. the logits.
// Used by the knowledge-distillation baselines (FedDF-AT, FedET-AT).
func KLDivergence(logits, teacherProbs *tensor.Tensor) (float64, *tensor.Tensor) {
	bsz, k := logits.Dim(0), logits.Dim(1)
	probs := Softmax(logits)
	grad := tensor.New(bsz, k)
	loss := 0.0
	inv := 1.0 / float64(bsz)
	for b := 0; b < bsz; b++ {
		for j := 0; j < k; j++ {
			p := teacherProbs.Data[b*k+j]
			q := probs.Data[b*k+j]
			if p > 1e-12 {
				loss += p * math.Log(p/(q+1e-300)) * inv
			}
			grad.Data[b*k+j] = (q - p) * inv
		}
	}
	return loss, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	bsz := logits.Dim(0)
	if bsz == 0 {
		return 0
	}
	correct := 0
	for b := 0; b < bsz; b++ {
		if logits.ArgMaxRow(b) == labels[b] {
			correct++
		}
	}
	return float64(correct) / float64(bsz)
}
