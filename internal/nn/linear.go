package nn

import (
	"math"
	"math/rand"

	"fedprophet/internal/tensor"
)

// Linear is a fully connected layer computing y = x·Wᵀ + b for
// x of shape (B, In) and W of shape (Out, In).
type Linear struct {
	In, Out int
	W       *Param // (Out, In)
	B       *Param // (Out)

	x *tensor.Tensor // cached input
}

// NewLinear constructs a Linear layer with Kaiming-uniform initialization.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	bound := math.Sqrt(6.0 / float64(in))
	w := tensor.Uniform(rng, -bound, bound, out, in)
	b := tensor.New(out)
	return &Linear{
		In:  in,
		Out: out,
		W:   NewParam("linear.w", w, false),
		B:   NewParam("linear.b", b, true),
	}
}

// Forward computes x·Wᵀ + b.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	out := tensor.MatMulTransBPar(x, l.W.Data) // (B,In)·(Out,In)ᵀ = (B,Out)
	bsz := x.Dim(0)
	for i := 0; i < bsz; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := 0; j < l.Out; j++ {
			row[j] += l.B.Data.Data[j]
		}
	}
	return out
}

// Backward accumulates dW = gradᵀ·x, db = Σ grad, and returns grad·W.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW (Out,In) = gradᵀ (Out,B) · x (B,In)
	dw := tensor.MatMulTransAPar(grad, l.x)
	l.W.Grad.AddInPlace(dw)

	bsz := grad.Dim(0)
	for i := 0; i < bsz; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j := 0; j < l.Out; j++ {
			l.B.Grad.Data[j] += row[j]
		}
	}
	// dX (B,In) = grad (B,Out) · W (Out,In)
	return tensor.MatMulPar(grad, l.W.Data)
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// OutShape maps a per-sample input shape to (Out).
func (l *Linear) OutShape(in []int) []int { return []int{l.Out} }

// ForwardFLOPs counts 2·In·Out multiply-adds per sample.
func (l *Linear) ForwardFLOPs(in []int) int64 {
	return 2 * int64(l.In) * int64(l.Out)
}

// Name identifies the layer kind and size.
func (l *Linear) Name() string { return "linear" }
