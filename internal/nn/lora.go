package nn

import (
	"math"
	"math/rand"

	"fedprophet/internal/tensor"
)

// LoRALinear is a low-rank-adapted linear layer (Hu et al. 2021), the
// layer-level memory-efficient training method the paper's §8 names as
// complementary to FedProphet's module partitioning: the frozen base weight
// W is augmented with a trainable rank-r update ΔW = (α/r)·BᵀA, so the
// optimizer state and gradients cover only r·(In+Out) scalars instead of
// In·Out.
//
//	y = x·Wᵀ + (α/r)·(x·Aᵀ)·Bᵀ + b
type LoRALinear struct {
	In, Out, Rank int
	Scale         float64 // α/r

	// Base weights are frozen: not returned by Params.
	W *tensor.Tensor // (Out, In)
	b *tensor.Tensor // (Out)

	A *Param // (Rank, In), Gaussian init
	B *Param // (Out, Rank), zero init so training starts at the base model

	x  *tensor.Tensor // cached input
	xa *tensor.Tensor // cached x·Aᵀ
}

// NewLoRALinear wraps an existing Linear layer with rank-r adapters; the
// base weights are copied and frozen.
func NewLoRALinear(base *Linear, rank int, alpha float64, rng *rand.Rand) *LoRALinear {
	if rank < 1 {
		panic("nn: LoRA rank must be ≥ 1")
	}
	std := 1.0 / math.Sqrt(float64(base.In))
	return &LoRALinear{
		In: base.In, Out: base.Out, Rank: rank,
		Scale: alpha / float64(rank),
		W:     base.W.Data.Clone(),
		b:     base.B.Data.Clone(),
		A:     NewParam("lora.a", tensor.Randn(rng, std, rank, base.In), false),
		B:     NewParam("lora.b", tensor.New(base.Out, rank), false),
	}
}

// Forward computes the adapted projection.
func (l *LoRALinear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	out := tensor.MatMulTransB(x, l.W) // (B,Out)
	l.xa = tensor.MatMulTransB(x, l.A.Data)
	delta := tensor.MatMulTransB(l.xa, l.B.Data) // (B,Out)
	out.AxpyInPlace(l.Scale, delta)
	bsz := x.Dim(0)
	for i := 0; i < bsz; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := 0; j < l.Out; j++ {
			row[j] += l.b.Data[j]
		}
	}
	return out
}

// Backward accumulates adapter gradients only; the base stays frozen.
func (l *LoRALinear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dB (Out,Rank) = scale · gradᵀ·xa
	dB := tensor.MatMulTransA(grad, l.xa)
	l.B.Grad.AxpyInPlace(l.Scale, dB)

	// dA (Rank,In) = scale · (grad·B)ᵀ·x
	gB := tensor.MatMul(grad, l.B.Data) // (B,Rank)
	dA := tensor.MatMulTransA(gB, l.x)
	l.A.Grad.AxpyInPlace(l.Scale, dA)

	// dx = grad·W + scale·(grad·B)·A
	dx := tensor.MatMul(grad, l.W)
	dx.AxpyInPlace(l.Scale, tensor.MatMul(gB, l.A.Data))
	return dx
}

// Params returns only the adapters (the base is frozen).
func (l *LoRALinear) Params() []*Param { return []*Param{l.A, l.B} }

// OutShape maps a feature vector to (Out).
func (l *LoRALinear) OutShape(in []int) []int { return []int{l.Out} }

// ForwardFLOPs counts base plus adapter multiply-adds.
func (l *LoRALinear) ForwardFLOPs(in []int) int64 {
	base := 2 * int64(l.In) * int64(l.Out)
	adapter := 2 * int64(l.Rank) * int64(l.In+l.Out)
	return base + adapter
}

// Name identifies the layer kind.
func (l *LoRALinear) Name() string { return "lora-linear" }

// MergedWeight returns W + (α/r)·B·A, the effective linear weight after
// adaptation; used to fold adapters back into a plain Linear layer.
func (l *LoRALinear) MergedWeight() *tensor.Tensor {
	delta := tensor.MatMul(l.B.Data, l.A.Data) // (Out,In)
	out := l.W.Clone()
	out.AxpyInPlace(l.Scale, delta)
	return out
}
