package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedprophet/internal/tensor"
)

// numericalGrad estimates d(loss)/d(v[i]) by central differences, where loss
// is recomputed through the full forward pass each time.
func numericalGrad(loss func() float64, v []float64, i int) float64 {
	const h = 1e-5
	orig := v[i]
	v[i] = orig + h
	lp := loss()
	v[i] = orig - h
	lm := loss()
	v[i] = orig
	return (lp - lm) / (2 * h)
}

// checkLayerGrads validates both parameter gradients and the input gradient
// of a layer against finite differences of a scalar loss L = Σ w ⊙ out
// (random fixed weights w make the check sensitive to every output element).
func checkLayerGrads(t *testing.T, l Layer, x *tensor.Tensor, train bool, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var lossWeights *tensor.Tensor

	forwardLoss := func() float64 {
		out := l.Forward(x, train)
		if lossWeights == nil {
			lossWeights = tensor.Randn(rng, 1, out.Shape()...)
		}
		return tensor.Dot(out, lossWeights)
	}

	// Analytic gradients.
	loss0 := forwardLoss()
	_ = loss0
	ZeroGrads(l)
	dx := l.Backward(lossWeights.Clone())

	// Check input gradient on a sample of positions.
	for trial := 0; trial < 12; trial++ {
		i := rng.Intn(len(x.Data))
		ng := numericalGrad(forwardLoss, x.Data, i)
		ag := dx.Data[i]
		if math.Abs(ng-ag) > tol*(1+math.Abs(ng)) {
			t.Fatalf("input grad mismatch at %d: numeric %g analytic %g", i, ng, ag)
		}
	}

	// Check parameter gradients on a sample of positions.
	for _, p := range l.Params() {
		for trial := 0; trial < 8; trial++ {
			i := rng.Intn(p.Data.Len())
			ng := numericalGrad(forwardLoss, p.Data.Data, i)
			ag := p.Grad.Data[i]
			if math.Abs(ng-ag) > tol*(1+math.Abs(ng)) {
				t.Fatalf("%s grad mismatch at %d: numeric %g analytic %g", p.Name, i, ng, ag)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(6, 4, rng)
	x := tensor.Randn(rng, 1, 3, 6)
	checkLayerGrads(t, l, x, true, 1e-6)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(2, 3, 3, 1, 1, true, rng)
	x := tensor.Randn(rng, 1, 2, 2, 5, 5)
	checkLayerGrads(t, c, x, true, 1e-6)
}

func TestConv2DStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2D(2, 4, 3, 2, 1, false, rng)
	x := tensor.Randn(rng, 1, 2, 2, 6, 6)
	checkLayerGrads(t, c, x, true, 1e-6)
}

func TestConv2D1x1Gradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewConv2D(3, 2, 1, 2, 0, false, rng)
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	checkLayerGrads(t, c, x, true, 1e-6)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.Randn(rng, 1, 4, 7)
	// Nudge values away from 0 to avoid kink issues in finite differences.
	for i, v := range x.Data {
		if math.Abs(v) < 0.05 {
			x.Data[i] = 0.1
		}
	}
	checkLayerGrads(t, NewReLU(), x, true, 1e-6)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	checkLayerGrads(t, NewMaxPool2D(2), x, true, 1e-5)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	checkLayerGrads(t, NewGlobalAvgPool2D(), x, true, 1e-6)
}

func TestBatchNormTrainGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm2D(3)
	x := tensor.Randn(rng, 1, 4, 3, 3, 3)
	checkLayerGrads(t, bn, x, true, 1e-4)
}

func TestBatchNormEvalGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bn := NewBatchNorm2D(2)
	// Populate running stats with a train pass first.
	warm := tensor.Randn(rng, 1, 8, 2, 4, 4)
	bn.Forward(warm, true)
	x := tensor.Randn(rng, 1, 3, 2, 4, 4)
	checkLayerGrads(t, bn, x, false, 1e-6)
}

func TestBasicBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	b := NewBasicBlock(2, 4, 2, rng)
	x := tensor.Randn(rng, 1, 2, 2, 6, 6)
	checkLayerGrads(t, b, x, true, 1e-4)
}

func TestBasicBlockIdentityGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBasicBlock(3, 3, 1, rng)
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	checkLayerGrads(t, b, x, true, 1e-4)
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := NewSequential("test",
		NewConv2D(2, 3, 3, 1, 1, false, rng),
		NewBatchNorm2D(3),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewLinear(3*2*2, 5, rng),
	)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	checkLayerGrads(t, s, x, true, 1e-4)
}

func TestSoftmaxCrossEntropyGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	logits := tensor.Randn(rng, 1, 4, 5)
	labels := []int{1, 0, 3, 2}

	_, grad := SoftmaxCrossEntropy(logits, labels)
	for trial := 0; trial < 20; trial++ {
		i := rng.Intn(logits.Len())
		ng := numericalGrad(func() float64 {
			l, _ := SoftmaxCrossEntropy(logits, labels)
			return l
		}, logits.Data, i)
		if math.Abs(ng-grad.Data[i]) > 1e-6*(1+math.Abs(ng)) {
			t.Fatalf("CE grad mismatch at %d: numeric %g analytic %g", i, ng, grad.Data[i])
		}
	}
}

func TestCWMarginLossGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	logits := tensor.Randn(rng, 2, 3, 6) // well-separated to avoid argmax kinks
	labels := []int{1, 5, 0}
	_, grad := CWMarginLoss(logits, labels)
	for trial := 0; trial < 15; trial++ {
		i := rng.Intn(logits.Len())
		ng := numericalGrad(func() float64 {
			l, _ := CWMarginLoss(logits, labels)
			return l
		}, logits.Data, i)
		if math.Abs(ng-grad.Data[i]) > 1e-5*(1+math.Abs(ng)) {
			t.Fatalf("CW grad mismatch at %d: numeric %g analytic %g", i, ng, grad.Data[i])
		}
	}
}

func TestKLDivergenceGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	logits := tensor.Randn(rng, 1, 3, 4)
	teacher := Softmax(tensor.Randn(rng, 1, 3, 4))
	_, grad := KLDivergence(logits, teacher)
	for trial := 0; trial < 15; trial++ {
		i := rng.Intn(logits.Len())
		ng := numericalGrad(func() float64 {
			l, _ := KLDivergence(logits, teacher)
			return l
		}, logits.Data, i)
		if math.Abs(ng-grad.Data[i]) > 1e-5*(1+math.Abs(ng)) {
			t.Fatalf("KL grad mismatch at %d: numeric %g analytic %g", i, ng, grad.Data[i])
		}
	}
}
