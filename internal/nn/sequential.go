package nn

import (
	"fedprophet/internal/tensor"
)

// Sequential chains layers, itself satisfying Layer. It is the container for
// both whole models and the "atoms" (conv+bn+relu triples, residual blocks)
// that FedProphet's model partitioner treats as indivisible.
type Sequential struct {
	Layers []Layer
	label  string
}

// NewSequential constructs a chain of layers with a diagnostic label.
func NewSequential(label string, layers ...Layer) *Sequential {
	return &Sequential{Layers: layers, label: label}
}

// Forward applies each layer in order.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward applies the layers' backward passes in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params concatenates the parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutShape threads the per-sample shape through every layer.
func (s *Sequential) OutShape(in []int) []int {
	for _, l := range s.Layers {
		in = l.OutShape(in)
	}
	return in
}

// ForwardFLOPs sums per-layer costs along the shape chain.
func (s *Sequential) ForwardFLOPs(in []int) int64 {
	var total int64
	for _, l := range s.Layers {
		total += l.ForwardFLOPs(in)
		in = l.OutShape(in)
	}
	return total
}

// Name returns the label given at construction.
func (s *Sequential) Name() string { return s.label }

// BasicBlock is the ResNet residual unit: conv-bn-relu-conv-bn plus a skip
// connection (with an optional 1×1 strided projection), followed by ReLU.
type BasicBlock struct {
	Conv1 *Conv2D
	BN1   *BatchNorm2D
	Conv2 *Conv2D
	BN2   *BatchNorm2D
	// Downsample projects the identity branch when stride>1 or channels
	// change; nil otherwise.
	DownConv *Conv2D
	DownBN   *BatchNorm2D

	relu1, relu2 *ReLU
	skipInput    *tensor.Tensor
}

// OutShape maps (C,H,W) through the residual block.
func (b *BasicBlock) OutShape(in []int) []int {
	s := b.Conv1.OutShape(in)
	return b.Conv2.OutShape(s)
}

// ForwardFLOPs sums both branches.
func (b *BasicBlock) ForwardFLOPs(in []int) int64 {
	mid := b.Conv1.OutShape(in)
	total := b.Conv1.ForwardFLOPs(in) + b.BN1.ForwardFLOPs(mid) + b.relu1FLOPs(mid)
	out := b.Conv2.OutShape(mid)
	total += b.Conv2.ForwardFLOPs(mid) + b.BN2.ForwardFLOPs(out)
	if b.DownConv != nil {
		total += b.DownConv.ForwardFLOPs(in) + b.DownBN.ForwardFLOPs(out)
	}
	total += 2 * int64(prodInts(out)) // residual add + final relu
	return total
}

func (b *BasicBlock) relu1FLOPs(in []int) int64 { return int64(prodInts(in)) }

// Forward runs the two-branch computation, caching for backward.
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b.skipInput = x
	out := b.Conv1.Forward(x, train)
	out = b.BN1.Forward(out, train)
	out = b.relu1.Forward(out, train)
	out = b.Conv2.Forward(out, train)
	out = b.BN2.Forward(out, train)

	var skip *tensor.Tensor
	if b.DownConv != nil {
		skip = b.DownConv.Forward(x, train)
		skip = b.DownBN.Forward(skip, train)
	} else {
		skip = x
	}
	out = tensor.Add(out, skip)
	return b.relu2.Forward(out, train)
}

// Backward propagates through both branches and sums the input gradients.
func (b *BasicBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	grad = b.relu2.Backward(grad)

	// Main branch.
	g := b.BN2.Backward(grad)
	g = b.Conv2.Backward(g)
	g = b.relu1.Backward(g)
	g = b.BN1.Backward(g)
	dxMain := b.Conv1.Backward(g)

	// Skip branch.
	var dxSkip *tensor.Tensor
	if b.DownConv != nil {
		gs := b.DownBN.Backward(grad)
		dxSkip = b.DownConv.Backward(gs)
	} else {
		dxSkip = grad
	}
	return tensor.Add(dxMain, dxSkip)
}

// Params concatenates both branches' parameters.
func (b *BasicBlock) Params() []*Param {
	ps := append(b.Conv1.Params(), b.BN1.Params()...)
	ps = append(ps, b.Conv2.Params()...)
	ps = append(ps, b.BN2.Params()...)
	if b.DownConv != nil {
		ps = append(ps, b.DownConv.Params()...)
		ps = append(ps, b.DownBN.Params()...)
	}
	return ps
}

// Name identifies the layer kind.
func (b *BasicBlock) Name() string { return "basicblock" }
