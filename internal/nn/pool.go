package nn

import (
	"fmt"

	"fedprophet/internal/tensor"
)

// MaxPool2D is a max pooling layer with square window and stride equal to
// the window size (the configuration used throughout the VGG family).
type MaxPool2D struct {
	Kernel int

	argmax  []int // flat input index of each output element
	inShape []int
}

// NewMaxPool2D constructs a max-pool with window k × k and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{Kernel: k} }

// Forward computes the pooled output and caches the winning indices.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	bsz, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	k := m.Kernel
	if h%k != 0 || w%k != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D input %dx%d is not divisible by kernel %d; trailing rows/cols would be silently dropped", h, w, k))
	}
	oh, ow := h/k, w/k
	m.inShape = append(m.inShape[:0], x.Shape()...)
	out := tensor.New(bsz, c, oh, ow)
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]

	oi := 0
	for b := 0; b < bsz; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx, bestVal := -1, 0.0
					for ky := 0; ky < k; ky++ {
						iy := oy*k + ky
						for kx := 0; kx < k; kx++ {
							ix := ox*k + kx
							idx := base + iy*w + ix
							v := x.Data[idx]
							if bestIdx < 0 || v > bestVal {
								bestIdx, bestVal = idx, v
							}
						}
					}
					out.Data[oi] = bestVal
					m.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to the winning input position.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.inShape...)
	for i, g := range grad.Data {
		dx.Data[m.argmax[i]] += g
	}
	return dx
}

// Params returns nil: pooling is parameter-free.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutShape maps (C,H,W) to (C,H/k,W/k).
func (m *MaxPool2D) OutShape(in []int) []int {
	return []int{in[0], in[1] / m.Kernel, in[2] / m.Kernel}
}

// ForwardFLOPs counts one comparison per input element.
func (m *MaxPool2D) ForwardFLOPs(in []int) int64 { return int64(prodInts(in)) }

// Name identifies the layer kind.
func (m *MaxPool2D) Name() string { return "maxpool2d" }

// GlobalAvgPool2D averages each channel plane to a single value,
// mapping (B,C,H,W) to (B,C).
type GlobalAvgPool2D struct {
	inShape []int
}

// NewGlobalAvgPool2D constructs a global average pooling layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Forward averages over the spatial dimensions.
func (g *GlobalAvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	bsz, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.inShape = append(g.inShape[:0], x.Shape()...)
	out := tensor.New(bsz, c)
	hw := h * w
	inv := 1.0 / float64(hw)
	for b := 0; b < bsz; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * hw
			s := 0.0
			for i := 0; i < hw; i++ {
				s += x.Data[base+i]
			}
			out.Data[b*c+ch] = s * inv
		}
	}
	return out
}

// Backward spreads each channel gradient uniformly over the plane.
func (g *GlobalAvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	bsz, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	dx := tensor.New(g.inShape...)
	hw := h * w
	inv := 1.0 / float64(hw)
	for b := 0; b < bsz; b++ {
		for ch := 0; ch < c; ch++ {
			gv := grad.Data[b*c+ch] * inv
			base := (b*c + ch) * hw
			for i := 0; i < hw; i++ {
				dx.Data[base+i] = gv
			}
		}
	}
	return dx
}

// Params returns nil: pooling is parameter-free.
func (g *GlobalAvgPool2D) Params() []*Param { return nil }

// OutShape maps (C,H,W) to (C).
func (g *GlobalAvgPool2D) OutShape(in []int) []int { return []int{in[0]} }

// ForwardFLOPs counts one add per input element.
func (g *GlobalAvgPool2D) ForwardFLOPs(in []int) int64 { return int64(prodInts(in)) }

// Name identifies the layer kind.
func (g *GlobalAvgPool2D) Name() string { return "gap2d" }
