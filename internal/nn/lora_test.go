package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedprophet/internal/tensor"
)

func TestLoRAStartsAtBaseModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := NewLinear(6, 4, rng)
	lora := NewLoRALinear(base, 2, 4, rng)
	x := tensor.Randn(rng, 1, 3, 6)
	a := base.Forward(x, false)
	b := lora.Forward(x, false)
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-12 {
			t.Fatal("zero-initialized B must make LoRA match the base model")
		}
	}
}

func TestLoRAGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := NewLinear(5, 3, rng)
	lora := NewLoRALinear(base, 2, 2, rng)
	// Make B nonzero so its gradient path is exercised.
	for i := range lora.B.Data.Data {
		lora.B.Data.Data[i] = rng.NormFloat64() * 0.1
	}
	x := tensor.Randn(rng, 1, 4, 5)
	checkLayerGrads(t, lora, x, true, 1e-5)
}

func TestLoRAOnlyAdaptersTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := NewLinear(4, 4, rng)
	lora := NewLoRALinear(base, 2, 2, rng)
	if len(lora.Params()) != 2 {
		t.Fatalf("LoRA must expose exactly A and B, got %d params", len(lora.Params()))
	}
	if NumParams(lora) >= NumParams(base) {
		t.Fatalf("rank-2 adapters (%d) must be smaller than the 4x4 base (%d)",
			NumParams(lora), NumParams(base))
	}
	wBefore := lora.W.Clone()
	// One training step.
	x := tensor.Randn(rng, 1, 4, 4)
	out := lora.Forward(x, true)
	_, g := SoftmaxCrossEntropy(out, []int{0, 1, 2, 3})
	ZeroGrads(lora)
	lora.Backward(g)
	NewSGD(0.1, 0, 0).Step(lora.Params())
	for i := range wBefore.Data {
		if lora.W.Data[i] != wBefore.Data[i] {
			t.Fatal("frozen base weight changed")
		}
	}
}

func TestLoRACanFitResidualTask(t *testing.T) {
	// The base maps everything through a fixed random matrix; LoRA adapters
	// must be able to learn a low-rank correction toward a target function.
	rng := rand.New(rand.NewSource(4))
	base := NewLinear(6, 6, rng)
	lora := NewLoRALinear(base, 3, 6, rng)
	opt := NewSGD(0.05, 0.9, 0)

	x := tensor.Randn(rng, 1, 16, 6)
	target := tensor.MatMulTransB(x, base.W.Data)
	// Target adds a rank-1 shift.
	u := tensor.Randn(rng, 1, 6, 1)
	vt := tensor.Randn(rng, 1, 1, 6)
	shift := tensor.MatMul(u, vt)
	target.AddInPlace(tensor.MatMulTransB(x, shift))

	loss := func() float64 {
		out := lora.Forward(x, true)
		d := tensor.Sub(out, target)
		return 0.5 * tensor.Dot(d, d) / 16
	}
	first := loss()
	for it := 0; it < 200; it++ {
		out := lora.Forward(x, true)
		d := tensor.Sub(out, target)
		d.ScaleInPlace(1.0 / 16)
		ZeroGrads(lora)
		lora.Backward(d)
		opt.Step(lora.Params())
	}
	last := loss()
	if last > first*0.05 {
		t.Fatalf("LoRA failed to fit a rank-1 residual: %g -> %g", first, last)
	}
}

func TestLoRAMergedWeightMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := NewLinear(5, 4, rng)
	lora := NewLoRALinear(base, 2, 2, rng)
	for i := range lora.B.Data.Data {
		lora.B.Data.Data[i] = rng.NormFloat64()
	}
	x := tensor.Randn(rng, 1, 3, 5)
	want := lora.Forward(x, false)

	merged := NewLinear(5, 4, rng)
	copy(merged.W.Data.Data, lora.MergedWeight().Data)
	copy(merged.B.Data.Data, lora.b.Data)
	got := merged.Forward(x, false)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatal("merged weight disagrees with adapted forward")
		}
	}
}

func TestLoRAFLOPsAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := NewLinear(8, 4, rng)
	lora := NewLoRALinear(base, 2, 2, rng)
	if got := lora.OutShape([]int{8}); got[0] != 4 {
		t.Fatalf("OutShape %v", got)
	}
	if lora.ForwardFLOPs([]int{8}) <= base.ForwardFLOPs([]int{8}) {
		t.Fatal("adapter FLOPs must add to the base cost")
	}
}
