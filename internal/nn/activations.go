package nn

import (
	"fedprophet/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool
}

// NewReLU constructs a ReLU activation.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative entries, caching the activation mask.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward zeroes the gradient where the activation was clipped.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns nil: ReLU is parameter-free.
func (r *ReLU) Params() []*Param { return nil }

// OutShape is the identity.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// ForwardFLOPs counts one comparison per element.
func (r *ReLU) ForwardFLOPs(in []int) int64 { return int64(prodInts(in)) }

// Name identifies the layer kind.
func (r *ReLU) Name() string { return "relu" }

// Flatten reshapes (B, C, H, W) (or any rank) into (B, C·H·W).
type Flatten struct {
	inShape []int
}

// NewFlatten constructs a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all non-batch dimensions.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	return x.Reshape(x.Dim(0), x.Len()/x.Dim(0))
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params returns nil: Flatten is parameter-free.
func (f *Flatten) Params() []*Param { return nil }

// OutShape collapses the per-sample shape to a vector.
func (f *Flatten) OutShape(in []int) []int { return []int{prodInts(in)} }

// ForwardFLOPs is zero: flattening is free.
func (f *Flatten) ForwardFLOPs(in []int) int64 { return 0 }

// Name identifies the layer kind.
func (f *Flatten) Name() string { return "flatten" }
