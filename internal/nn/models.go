package nn

import (
	"fmt"
	"math/rand"

	"fedprophet/internal/tensor"
)

// Model is a backbone network expressed as an ordered list of "atoms" — the
// indivisible units of FedProphet's model partitioner (§6.1): a single
// conv/linear layer group for plain networks, a residual block for ResNets.
// Model itself satisfies Layer, so it can be trained end-to-end (jFAT) or
// sliced into cascaded modules (FedProphet).
type Model struct {
	Label      string
	Atoms      []Layer
	InShape    []int // per-sample input shape (C,H,W)
	NumClasses int
}

// Forward threads the input through every atom.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, a := range m.Atoms {
		x = a.Forward(x, train)
	}
	return x
}

// Backward runs the atoms' backward passes in reverse.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.Atoms) - 1; i >= 0; i-- {
		grad = m.Atoms[i].Backward(grad)
	}
	return grad
}

// Params concatenates all atoms' parameters.
func (m *Model) Params() []*Param {
	var ps []*Param
	for _, a := range m.Atoms {
		ps = append(ps, a.Params()...)
	}
	return ps
}

// OutShape threads the per-sample shape through every atom.
func (m *Model) OutShape(in []int) []int {
	for _, a := range m.Atoms {
		in = a.OutShape(in)
	}
	return in
}

// ForwardFLOPs sums all atoms' forward costs.
func (m *Model) ForwardFLOPs(in []int) int64 {
	var total int64
	for _, a := range m.Atoms {
		total += a.ForwardFLOPs(in)
		in = a.OutShape(in)
	}
	return total
}

// Name returns the model label.
func (m *Model) Name() string { return m.Label }

// ExportParams flattens all parameter values into a single vector, in a
// stable order. Used to ship local updates to the server.
func ExportParams(l Layer) []float64 {
	var out []float64
	for _, p := range l.Params() {
		out = append(out, p.Data.Data...)
	}
	return out
}

// ImportParams loads a vector produced by ExportParams back into the layer.
func ImportParams(l Layer, v []float64) {
	off := 0
	for _, p := range l.Params() {
		n := p.Data.Len()
		if off+n > len(v) {
			panic("nn: ImportParams vector too short")
		}
		copy(p.Data.Data, v[off:off+n])
		off += n
	}
	if off != len(v) {
		panic(fmt.Sprintf("nn: ImportParams vector length %d, consumed %d", len(v), off))
	}
}

// convAtom builds a conv(3×3, pad 1) + batchnorm + ReLU atom, optionally
// followed by a 2×2 max pool.
func convAtom(label string, inC, outC int, pool bool, rng *rand.Rand) Layer {
	layers := []Layer{
		NewConv2D(inC, outC, 3, 1, 1, false, rng),
		NewBatchNorm2D(outC),
		NewReLU(),
	}
	if pool {
		layers = append(layers, NewMaxPool2D(2))
	}
	return NewSequential(label, layers...)
}

// linearAtom builds a linear layer atom with optional ReLU.
func linearAtom(label string, in, out int, relu bool, rng *rand.Rand) Layer {
	layers := []Layer{NewLinear(in, out, rng)}
	if relu {
		layers = append(layers, NewReLU())
	}
	return NewSequential(label, layers...)
}

// NewBasicBlock builds a ResNet basic block in→out channels with the given
// stride on the first convolution. A 1×1 projection is added on the skip
// path whenever the stride or channel count changes.
func NewBasicBlock(inC, outC, stride int, rng *rand.Rand) *BasicBlock {
	b := &BasicBlock{
		Conv1: NewConv2D(inC, outC, 3, stride, 1, false, rng),
		BN1:   NewBatchNorm2D(outC),
		Conv2: NewConv2D(outC, outC, 3, 1, 1, false, rng),
		BN2:   NewBatchNorm2D(outC),
		relu1: NewReLU(),
		relu2: NewReLU(),
	}
	if stride != 1 || inC != outC {
		b.DownConv = NewConv2D(inC, outC, 1, stride, 0, false, rng)
		b.DownBN = NewBatchNorm2D(outC)
	}
	return b
}

// VGG16S builds the scaled VGG16 used on CIFAR10-S: 13 convolution atoms in
// the VGG16 topology (pools after convs 2, 4, 7 and 10) and 3 linear atoms,
// with base width w. For the default w=8 and a 3×16×16 input the final
// feature map is 8w×1×1.
func VGG16S(inShape []int, classes, w int, rng *rand.Rand) *Model {
	plan := []struct {
		out  int
		pool bool
	}{
		{w, false}, {w, true},
		{2 * w, false}, {2 * w, true},
		{4 * w, false}, {4 * w, false}, {4 * w, true},
		{8 * w, false}, {8 * w, false}, {8 * w, true},
		{8 * w, false}, {8 * w, false}, {8 * w, false},
	}
	atoms := make([]Layer, 0, 16)
	inC := inShape[0]
	for i, p := range plan {
		atoms = append(atoms, convAtom(fmt.Sprintf("conv%d", i+1), inC, p.out, p.pool, rng))
		inC = p.out
	}
	// Spatial size after 4 pools.
	h := inShape[1] / 16
	wid := inShape[2] / 16
	feat := inC * h * wid
	atoms = append(atoms,
		NewSequential("fc1", NewFlatten(), NewLinear(feat, 4*w, rng), NewReLU()),
		linearAtom("fc2", 4*w, 4*w, true, rng),
		linearAtom("fc3", 4*w, classes, false, rng),
	)
	return &Model{Label: "VGG16-S", Atoms: atoms, InShape: append([]int(nil), inShape...), NumClasses: classes}
}

// vggVariant builds smaller VGG-family models for the KD baselines' model
// groups. convPlan entries are output widths; pool marks pooling positions.
func vggVariant(label string, inShape []int, classes, w int, plan []struct {
	out  int
	pool bool
}, pools int, rng *rand.Rand) *Model {
	atoms := make([]Layer, 0, len(plan)+3)
	inC := inShape[0]
	for i, p := range plan {
		atoms = append(atoms, convAtom(fmt.Sprintf("conv%d", i+1), inC, p.out, p.pool, rng))
		inC = p.out
	}
	div := 1 << pools
	feat := inC * (inShape[1] / div) * (inShape[2] / div)
	atoms = append(atoms,
		NewSequential("fc1", NewFlatten(), NewLinear(feat, 4*w, rng), NewReLU()),
		linearAtom("fc2", 4*w, classes, false, rng),
	)
	return &Model{Label: label, Atoms: atoms, InShape: append([]int(nil), inShape...), NumClasses: classes}
}

// VGG11S builds an 8-conv scaled VGG11.
func VGG11S(inShape []int, classes, w int, rng *rand.Rand) *Model {
	plan := []struct {
		out  int
		pool bool
	}{
		{w, true}, {2 * w, true}, {4 * w, false}, {4 * w, true},
		{8 * w, false}, {8 * w, true}, {8 * w, false}, {8 * w, false},
	}
	return vggVariant("VGG11-S", inShape, classes, w, plan, 4, rng)
}

// VGG13S builds a 10-conv scaled VGG13.
func VGG13S(inShape []int, classes, w int, rng *rand.Rand) *Model {
	plan := []struct {
		out  int
		pool bool
	}{
		{w, false}, {w, true}, {2 * w, false}, {2 * w, true},
		{4 * w, false}, {4 * w, true}, {8 * w, false}, {8 * w, true},
		{8 * w, false}, {8 * w, false},
	}
	return vggVariant("VGG13-S", inShape, classes, w, plan, 4, rng)
}

// CNN3 is the paper's small CIFAR-10 model: three conv atoms and a linear
// classifier (Table 1, "Small (1×)").
func CNN3(inShape []int, classes, w int, rng *rand.Rand) *Model {
	atoms := []Layer{
		convAtom("conv1", inShape[0], w, true, rng),
		convAtom("conv2", w, 2*w, true, rng),
		convAtom("conv3", 2*w, 4*w, true, rng),
	}
	feat := 4 * w * (inShape[1] / 8) * (inShape[2] / 8)
	atoms = append(atoms, NewSequential("fc", NewFlatten(), NewLinear(feat, classes, rng)))
	return &Model{Label: "CNN3", Atoms: atoms, InShape: append([]int(nil), inShape...), NumClasses: classes}
}

// CNN4 is the paper's small Caltech-256 model: four conv atoms and a linear
// classifier.
func CNN4(inShape []int, classes, w int, rng *rand.Rand) *Model {
	atoms := []Layer{
		convAtom("conv1", inShape[0], w, true, rng),
		convAtom("conv2", w, 2*w, true, rng),
		convAtom("conv3", 2*w, 4*w, true, rng),
		convAtom("conv4", 4*w, 4*w, false, rng),
	}
	feat := 4 * w * (inShape[1] / 8) * (inShape[2] / 8)
	atoms = append(atoms, NewSequential("fc", NewFlatten(), NewLinear(feat, classes, rng)))
	return &Model{Label: "CNN4", Atoms: atoms, InShape: append([]int(nil), inShape...), NumClasses: classes}
}

// resNet builds a scaled ResNet with the given block counts per stage.
// Stage channels are w, 2w, 4w, 8w with stride-2 downsampling at the start
// of stages 2–4, mirroring ResNet34's structure at reduced width.
func resNet(label string, inShape []int, classes, w int, blocks [4]int, rng *rand.Rand) *Model {
	atoms := []Layer{
		NewSequential("conv1",
			NewConv2D(inShape[0], w, 3, 1, 1, false, rng),
			NewBatchNorm2D(w),
			NewReLU(),
		),
	}
	inC := w
	stageC := [4]int{w, 2 * w, 4 * w, 8 * w}
	blockID := 1
	for stage := 0; stage < 4; stage++ {
		for i := 0; i < blocks[stage]; i++ {
			stride := 1
			if stage > 0 && i == 0 {
				stride = 2
			}
			atoms = append(atoms, NewBasicBlock(inC, stageC[stage], stride, rng))
			inC = stageC[stage]
			blockID++
		}
	}
	atoms = append(atoms, NewSequential("head",
		NewGlobalAvgPool2D(),
		NewLinear(inC, classes, rng),
	))
	return &Model{Label: label, Atoms: atoms, InShape: append([]int(nil), inShape...), NumClasses: classes}
}

// ResNet34S builds the scaled ResNet34 used on Caltech256-S:
// 16 basic blocks arranged (3,4,6,3).
func ResNet34S(inShape []int, classes, w int, rng *rand.Rand) *Model {
	return resNet("ResNet34-S", inShape, classes, w, [4]int{3, 4, 6, 3}, rng)
}

// ResNet18S builds a (2,2,2,2) scaled ResNet18.
func ResNet18S(inShape []int, classes, w int, rng *rand.Rand) *Model {
	return resNet("ResNet18-S", inShape, classes, w, [4]int{2, 2, 2, 2}, rng)
}

// ResNet10S builds a (1,1,1,1) scaled ResNet10.
func ResNet10S(inShape []int, classes, w int, rng *rand.Rand) *Model {
	return resNet("ResNet10-S", inShape, classes, w, [4]int{1, 1, 1, 1}, rng)
}
