package nn

import (
	"fedprophet/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum and decoupled
// L2 weight decay, matching the paper's training hyperparameters
// (momentum 0.9, weight decay 1e-4, exponential LR decay).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Step applies one update to each parameter:
//
//	v ← momentum·v + grad + wd·w;  w ← w − lr·v
//
// and leaves the gradients untouched (callers zero them explicitly).
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if p.momentum == nil {
			p.momentum = tensor.New(p.Data.Shape()...)
		}
		wd := o.WeightDecay
		if p.NoDecay {
			wd = 0
		}
		v := p.momentum.Data
		w := p.Data.Data
		g := p.Grad.Data
		for i := range w {
			v[i] = o.Momentum*v[i] + g[i] + wd*w[i]
			w[i] -= o.LR * v[i]
		}
	}
}

// Decay multiplies the learning rate by factor (ηt = γ^t · η0 in the paper).
func (o *SGD) Decay(factor float64) { o.LR *= factor }

// ResetMomentum clears the optimizer state of the given parameters. Federated
// clients start each local training phase with fresh optimizer state.
func ResetMomentum(params []*Param) {
	for _, p := range params {
		p.momentum = nil
	}
}

// OptimizerStatesPerParam reports how many scalar optimizer-state values SGD
// keeps per parameter (the momentum buffer). The memory cost model uses this.
const OptimizerStatesPerParam = 1
