package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// checkpoint is the on-wire format of a model's trainable state: parameter
// tensors in Params() order plus batch-norm running statistics.
type checkpoint struct {
	Label   string
	Params  [][]float64
	BNStats []float64
}

// SaveParams serializes the layer's parameters and batch-norm statistics to
// w using encoding/gob. The layer's architecture is NOT serialized — loading
// requires a structurally identical layer, which keeps checkpoints compact
// and forward-compatible with code changes that do not alter shapes.
func SaveParams(w io.Writer, l Layer) error {
	cp := checkpoint{Label: l.Name(), BNStats: ExportBNStats(l)}
	for _, p := range l.Params() {
		vec := make([]float64, p.Data.Len())
		copy(vec, p.Data.Data)
		cp.Params = append(cp.Params, vec)
	}
	return gob.NewEncoder(w).Encode(cp)
}

// LoadParams restores a checkpoint produced by SaveParams into a
// structurally identical layer.
func LoadParams(r io.Reader, l Layer) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	ps := l.Params()
	if len(cp.Params) != len(ps) {
		return fmt.Errorf("nn: checkpoint has %d parameter tensors, layer has %d",
			len(cp.Params), len(ps))
	}
	for i, p := range ps {
		if len(cp.Params[i]) != p.Data.Len() {
			return fmt.Errorf("nn: checkpoint tensor %d has %d elements, layer needs %d",
				i, len(cp.Params[i]), p.Data.Len())
		}
	}
	for i, p := range ps {
		copy(p.Data.Data, cp.Params[i])
	}
	if len(cp.BNStats) != len(ExportBNStats(l)) {
		return fmt.Errorf("nn: checkpoint BN statistics size mismatch")
	}
	if len(cp.BNStats) > 0 {
		ImportBNStats(l, cp.BNStats)
	}
	return nil
}
