package simlat

import (
	"math"
	"testing"

	"fedprophet/internal/device"
)

func snap(perfTFLOPS, memGB, bwGBs float64) device.Snapshot {
	return device.Snapshot{
		Device:     device.Device{Name: "test", PeakTFLOPS: perfTFLOPS, PeakMemGB: memGB, IOBandwidth: bwGBs},
		AvailMemGB: memGB,
		AvailPerf:  perfTFLOPS,
	}
}

func TestComputeLatencyScalesWithFLOPs(t *testing.T) {
	s := snap(1.0, 4, 16)
	a := ClientLatency(Work{FLOPs: 1e12}, s)
	b := ClientLatency(Work{FLOPs: 2e12}, s)
	if math.Abs(b.Compute-2*a.Compute) > 1e-9*a.Compute {
		t.Fatalf("compute must scale linearly: %v vs %v", a.Compute, b.Compute)
	}
	if a.DataAccess != 0 {
		t.Fatal("no swap requested, data access must be zero")
	}
}

func TestSwapTrafficOnlyWhenOverBudget(t *testing.T) {
	s := snap(1.0, 4, 2)
	under := ClientLatency(Work{FLOPs: 1e9, MemReq: 100, MemBudget: 200, Passes: 10, Swap: true}, s)
	if under.DataAccess != 0 {
		t.Fatal("within budget must not swap")
	}
	over := ClientLatency(Work{FLOPs: 1e9, MemReq: 300, MemBudget: 200, Passes: 10, Swap: true}, s)
	if over.DataAccess <= 0 {
		t.Fatal("over budget with swap must incur data access")
	}
	noswap := ClientLatency(Work{FLOPs: 1e9, MemReq: 300, MemBudget: 200, Passes: 10, Swap: false}, s)
	if noswap.DataAccess != 0 {
		t.Fatal("swap disabled must not incur data access")
	}
}

func TestSwapTrafficFormula(t *testing.T) {
	s := snap(1.0, 4, 1) // 1 GB/s
	w := Work{FLOPs: 0, MemReq: device.GB + 1000, MemBudget: 1000, Passes: 3, Swap: true}
	lat := ClientLatency(w, s)
	// traffic = 2 × 1GB × 3 = 6GB at 1GB/s × DriverEfficiency.
	want := 6.0 / DriverEfficiency
	if math.Abs(lat.DataAccess-want) > 1e-9 {
		t.Fatalf("DataAccess = %v, want %v", lat.DataAccess, want)
	}
}

func TestSlowStorageHurtsMore(t *testing.T) {
	w := Work{FLOPs: 1e9, MemReq: 1 << 28, MemBudget: 1 << 26, Passes: 11, Swap: true}
	fast := ClientLatency(w, snap(1, 4, 16))
	slow := ClientLatency(w, snap(1, 4, 1.5))
	if slow.DataAccess <= fast.DataAccess {
		t.Fatal("lower bandwidth must increase data-access latency")
	}
}

func TestRoundLatencyIsMax(t *testing.T) {
	ls := []Latency{
		{Compute: 1, DataAccess: 0},
		{Compute: 0.5, DataAccess: 2},
		{Compute: 0.1, DataAccess: 0.1},
	}
	r := RoundLatency(ls)
	if r.Total() != 2.5 {
		t.Fatalf("RoundLatency total = %v, want 2.5", r.Total())
	}
}

func TestMemCalibration(t *testing.T) {
	cal := NewMemCalibration(4, 1000)
	// Strongest device (4 GB) gets 1.25× the full model requirement.
	if got := cal.Budget(4); got != 1250 {
		t.Fatalf("Budget(4GB) = %d, want 1250", got)
	}
	// A 1 GB device gets a quarter of that.
	if got := cal.Budget(1); got != 312 {
		t.Fatalf("Budget(1GB) = %d, want 312", got)
	}
	if cal.Budget(0.8) >= cal.Budget(3.2) {
		t.Fatal("budget must be monotone in available memory")
	}
}

func TestPassesPerBatch(t *testing.T) {
	if PassesPerBatch(10) != 11 {
		t.Fatalf("PassesPerBatch(10) = %d", PassesPerBatch(10))
	}
	if PassesPerBatch(0) != 1 {
		t.Fatal("standard training is one pass")
	}
}

// The Figure 2 regime: with ~20% of required memory, swap-based training must
// be dominated by data access on a low-bandwidth device.
func TestSwapDominatesInFigure2Regime(t *testing.T) {
	memReq := int64(300 << 20) // ~300 MB, as VGG16 in the paper
	budget := memReq / 5       // 20%
	w := Work{
		FLOPs:     5e12,
		MemReq:    memReq,
		MemBudget: budget,
		Passes:    11 * 30, // PGD-10 × 30 local iterations
		Swap:      true,
	}
	lat := ClientLatency(w, snap(1.3, 4, 1.5)) // TX2
	if lat.DataAccess <= lat.Compute {
		t.Fatalf("data access (%v) should dominate compute (%v) when swapping",
			lat.DataAccess, lat.Compute)
	}
}
