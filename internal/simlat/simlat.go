// Package simlat is the analytic latency simulator of the FedProphet
// reproduction. It converts the training work of a federated round —
// measured in FLOPs by internal/memmodel — and the memory-swap traffic
// implied by training beyond a device's available memory into wall-clock
// seconds, using each device's real-time performance and storage I/O
// bandwidth (internal/device). Figure 2, Figure 7, Table 4 and the speedup
// claims are all produced by this model.
package simlat

import (
	"fedprophet/internal/device"
)

// Utilization is the fraction of a device's peak FLOP rate that a training
// workload actually achieves (kernel-launch overheads, memory-bound layers).
// A constant is sufficient because only latency *ratios* between methods
// matter for the reproduced figures.
const Utilization = 0.35

// MemCalibration maps a device-pool memory capacity (GB) to an effective
// training budget in cost-model bytes, so that the scaled-down Go models
// face the same *relative* memory pressure as the paper's full-size models:
// the strongest device in the pool can just train the whole model
// (budget = Headroom × full-model requirement), and every other device
// scales linearly. With the paper's pools this leaves the weakest devices
// around 20–30% of the full requirement — exactly the regime in which jFAT
// must swap and FedProphet's Rmin = 20% partition is feasible everywhere.
type MemCalibration struct {
	PoolMaxGB    float64
	FullModelReq int64   // bytes, from memmodel.MemReqModel
	Headroom     float64 // budget of the strongest device, in full-model units
}

// NewMemCalibration builds the calibration used by all experiments
// (headroom 1.25).
func NewMemCalibration(poolMaxGB float64, fullModelReq int64) MemCalibration {
	return MemCalibration{PoolMaxGB: poolMaxGB, FullModelReq: fullModelReq, Headroom: 1.25}
}

// Budget converts an available memory in GB into cost-model bytes.
func (c MemCalibration) Budget(availGB float64) int64 {
	if c.PoolMaxGB == 0 {
		return 0
	}
	return int64(availGB / c.PoolMaxGB * c.Headroom * float64(c.FullModelReq))
}

// Work is the local training work of one client in one round.
type Work struct {
	FLOPs     int64 // total training FLOPs across all local iterations
	MemReq    int64 // bytes required to train the assigned (sub)model
	MemBudget int64 // bytes available on the device
	Passes    int64 // forward+backward passes across all local iterations
	Swap      bool  // whether the method swaps when MemReq > MemBudget
}

// Latency is a compute/data-access breakdown in seconds.
type Latency struct {
	Compute    float64
	DataAccess float64
}

// Total returns compute + data access.
func (l Latency) Total() float64 { return l.Compute + l.DataAccess }

// Add accumulates another latency.
func (l *Latency) Add(o Latency) {
	l.Compute += o.Compute
	l.DataAccess += o.DataAccess
}

// ClientLatency evaluates the wall-clock cost of w on a device snapshot.
//
// Compute time is FLOPs / (perf × utilization). If the work's memory
// requirement exceeds the budget and the method swaps, every forward+backward
// pass must spill and refill the overflow through storage:
// traffic = 2 × (MemReq − MemBudget) × Passes, at the device's I/O bandwidth.
// A fixed per-byte software-driver overhead factor is folded into the
// bandwidth term via DriverOverhead.
func ClientLatency(w Work, snap device.Snapshot) Latency {
	var lat Latency
	perf := snap.AvailPerf * device.TFLOPS * Utilization
	if perf > 0 {
		lat.Compute = float64(w.FLOPs) / perf
	}
	if w.Swap && w.MemReq > w.MemBudget {
		overflow := w.MemReq - w.MemBudget
		traffic := 2 * float64(overflow) * float64(w.Passes)
		bw := snap.Device.IOBandwidth * float64(device.GB) * DriverEfficiency
		if bw > 0 {
			lat.DataAccess = traffic / bw
		}
	}
	return lat
}

// DriverEfficiency is the fraction of raw storage bandwidth that survives
// software-driver management overhead (§3 attributes the high data-access
// latency to driver overhead and low storage bandwidth).
const DriverEfficiency = 0.25

// RoundLatency is the synchronization-time of one synchronous FL round: the
// maximum over the participating clients' latencies (the paper's FL rounds
// are synchronous; the slowest client gates the round).
func RoundLatency(clients []Latency) Latency {
	var worst Latency
	for _, l := range clients {
		if l.Total() > worst.Total() {
			worst = l
		}
	}
	return worst
}

// PassesPerBatch returns the number of forward+backward passes one training
// batch costs under PGD-n adversarial training: n attack passes plus one
// training pass.
func PassesPerBatch(pgdSteps int) int64 { return int64(pgdSteps) + 1 }
