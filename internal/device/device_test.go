package device

import (
	"math/rand"
	"testing"
)

func TestPoolsMatchPaperTables(t *testing.T) {
	c := CIFARPool()
	if len(c) != 10 {
		t.Fatalf("CIFAR pool has %d devices, want 10", len(c))
	}
	// Spot-check entries against Table 5.
	if c[0].Name != "GTX 1650m" || c[0].PeakTFLOPS != 3.1 || c[0].PeakMemGB != 4 || c[0].IOBandwidth != 16 {
		t.Fatalf("GTX 1650m row wrong: %+v", c[0])
	}
	if c[3].Name != "VC709" || c[3].PeakTFLOPS != 0.1 {
		t.Fatalf("VC709 row wrong: %+v", c[3])
	}

	cal := CaltechPool()
	if len(cal) != 10 {
		t.Fatalf("Caltech pool has %d devices, want 10", len(cal))
	}
	if cal[5].Name != "RTX 4090m" || cal[5].PeakTFLOPS != 33.0 || cal[5].PeakMemGB != 16 {
		t.Fatalf("RTX 4090m row wrong: %+v", cal[5])
	}
}

func TestFleetAssignsEveryClient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewFleet(CIFARPool(), 50, Balanced, rng)
	if len(f.Devices) != 50 {
		t.Fatalf("fleet size %d", len(f.Devices))
	}
	for _, d := range f.Devices {
		if d.Name == "" {
			t.Fatal("unassigned device")
		}
	}
}

func TestUnbalancedSkewsTowardWeakDevices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 3000
	bal := NewFleet(CIFARPool(), n, Balanced, rng)
	unb := NewFleet(CIFARPool(), n, Unbalanced, rng)
	mean := func(f *Fleet) float64 {
		s := 0.0
		for _, d := range f.Devices {
			s += d.PeakTFLOPS * d.PeakMemGB
		}
		return s / float64(n)
	}
	if mean(unb) >= mean(bal) {
		t.Fatalf("unbalanced fleet should be weaker: bal %v unb %v", mean(bal), mean(unb))
	}
}

func TestSnapshotWithinDegradationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := NewFleet(CIFARPool(), 10, Balanced, rng)
	for c := 0; c < 10; c++ {
		for trial := 0; trial < 20; trial++ {
			s := f.Snapshot(c, rng)
			d := f.Devices[c]
			if s.AvailMemGB > d.PeakMemGB || s.AvailMemGB < 0.8*d.PeakMemGB-1e-9 {
				t.Fatalf("memory availability %v out of [0.8,1.0]×%v", s.AvailMemGB, d.PeakMemGB)
			}
			if s.AvailPerf > d.PeakTFLOPS || s.AvailPerf < 0.1*d.PeakTFLOPS-1e-9 {
				t.Fatalf("performance availability %v out of [0.1,1.0]×%v", s.AvailPerf, d.PeakTFLOPS)
			}
		}
	}
}

func TestPoolMaxAndMin(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := NewFleet(CaltechPool(), 5, Balanced, rng)
	if f.PoolMaxMemGB() != 16 {
		t.Fatalf("PoolMaxMemGB = %v", f.PoolMaxMemGB())
	}
	if f.MinPeakMemGB() <= 0 || f.MinPeakMemGB() > 16 {
		t.Fatalf("MinPeakMemGB = %v", f.MinPeakMemGB())
	}
}

func TestHeterogeneityString(t *testing.T) {
	if Balanced.String() != "balanced" || Unbalanced.String() != "unbalanced" {
		t.Fatal("bad Stringer")
	}
}
