// Package device models the edge-device fleets of the FedProphet evaluation:
// the two device pools of Appendix B.1 (Tables 5 and 6), the runtime
// degradation of available memory and performance caused by co-running
// applications, and the balanced/unbalanced systematic-heterogeneity
// samplings of §7.1.
package device

import (
	"math/rand"
)

// GB is one gibibyte in bytes.
const GB = 1 << 30

// TFLOPS is 1e12 floating-point operations per second.
const TFLOPS = 1e12

// Device is an edge accelerator with peak capabilities.
type Device struct {
	Name        string
	PeakTFLOPS  float64
	PeakMemGB   float64
	IOBandwidth float64 // GB/s between memory and external storage
}

// CIFARPool is the device pool for CIFAR-10 training (paper Table 5).
func CIFARPool() []Device {
	return []Device{
		{"GTX 1650m", 3.1, 4, 16},
		{"TX2", 1.3, 4, 1.5},
		{"KCU1500", 0.2, 2, 2},
		{"VC709", 0.1, 2, 1.5},
		{"Radeon HD 6870", 2.7, 1, 16},
		{"Quadro M2200", 2.1, 4, 1.5},
		{"A12 GPU", 0.5, 4, 1.5},
		{"Geforce 750", 1.1, 1, 16},
		{"Grid K240q", 2.3, 1, 16},
		{"Radeon RX 6300m", 3.7, 2, 16},
	}
}

// CaltechPool is the device pool for Caltech-256 training (paper Table 6).
func CaltechPool() []Device {
	return []Device{
		{"Radeon RX 7600", 21.8, 8, 16},
		{"Radeon RX 6800", 16.2, 16, 16},
		{"Arc A770", 19.7, 16, 16},
		{"Quadro P5000", 5.3, 16, 1.5},
		{"RTX 3080m", 19.0, 8, 16},
		{"RTX 4090m", 33.0, 16, 16},
		{"A17 GPU", 2.1, 8, 1.5},
		{"GTX 1650m", 3.1, 4, 16},
		{"TX2", 1.3, 4, 1.5},
		{"P104 101", 8.6, 4, 16},
	}
}

// Heterogeneity selects the device-sampling regime.
type Heterogeneity int

// Sampling regimes of §7.1.
const (
	// Balanced samples devices uniformly.
	Balanced Heterogeneity = iota
	// Unbalanced over-weights devices with small memory and low performance.
	Unbalanced
)

// String implements fmt.Stringer.
func (h Heterogeneity) String() string {
	if h == Unbalanced {
		return "unbalanced"
	}
	return "balanced"
}

// Snapshot is the real-time availability of a client's device in one round:
// peak capabilities degraded by co-running applications (Appendix B.1: the
// memory degradation factor is U[0,0.2] of peak, the performance factor
// U[0,1.0] of peak).
type Snapshot struct {
	Device     Device
	AvailMemGB float64
	AvailPerf  float64 // TFLOPS
}

// Fleet assigns one device per client and produces per-round availability
// snapshots.
type Fleet struct {
	Devices []Device // per client
	pool    []Device
}

// NewFleet samples a device for each of n clients from the pool under the
// given heterogeneity regime.
func NewFleet(pool []Device, n int, h Heterogeneity, rng *rand.Rand) *Fleet {
	weights := make([]float64, len(pool))
	switch h {
	case Balanced:
		for i := range weights {
			weights[i] = 1
		}
	case Unbalanced:
		// Weight inversely proportional to a capability score so weak
		// devices dominate the fleet.
		for i, d := range pool {
			score := d.PeakMemGB * (0.5 + d.PeakTFLOPS)
			weights[i] = 1 / score
		}
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	devs := make([]Device, n)
	for c := 0; c < n; c++ {
		r := rng.Float64() * total
		acc := 0.0
		pick := len(pool) - 1
		for i, w := range weights {
			acc += w
			if r <= acc {
				pick = i
				break
			}
		}
		devs[c] = pool[pick]
	}
	return &Fleet{Devices: devs, pool: pool}
}

// Snapshot returns the real-time availability of client c for one round.
func (f *Fleet) Snapshot(c int, rng *rand.Rand) Snapshot {
	d := f.Devices[c]
	memFactor := rng.Float64() * 0.2  // fraction of memory consumed by co-running apps
	perfFactor := rng.Float64() * 1.0 // fraction of performance consumed
	return Snapshot{
		Device:     d,
		AvailMemGB: d.PeakMemGB * (1 - memFactor),
		AvailPerf:  d.PeakTFLOPS * (1 - perfFactor*0.9), // keep ≥10% so progress is possible
	}
}

// PoolMaxMemGB returns the largest peak memory in the fleet's pool; the
// experiment harness uses it to calibrate device memory against model
// memory requirements (see simlat.MemCalibration).
func (f *Fleet) PoolMaxMemGB() float64 {
	m := 0.0
	for _, d := range f.pool {
		if d.PeakMemGB > m {
			m = d.PeakMemGB
		}
	}
	return m
}

// MinPeakMemGB returns the smallest peak memory across the fleet's clients.
func (f *Fleet) MinPeakMemGB() float64 {
	if len(f.Devices) == 0 {
		return 0
	}
	m := f.Devices[0].PeakMemGB
	for _, d := range f.Devices {
		if d.PeakMemGB < m {
			m = d.PeakMemGB
		}
	}
	return m
}
