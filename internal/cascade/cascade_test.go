package cascade

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedprophet/internal/attack"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/tensor"
)

func testModel(rng *rand.Rand) *nn.Model {
	return nn.VGG16S([]int{3, 16, 16}, 10, 4, rng)
}

func TestPartitionCoversAllAtomsInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 8).TotalBytes
	c := Partition(m, full/5, 8, rng)

	var atoms []nn.Layer
	for _, mod := range c.Modules {
		atoms = append(atoms, mod.Atoms...)
	}
	if len(atoms) != len(m.Atoms) {
		t.Fatalf("partition has %d atoms, model %d", len(atoms), len(m.Atoms))
	}
	for i := range atoms {
		if atoms[i] != m.Atoms[i] {
			t.Fatalf("atom %d out of order", i)
		}
	}
}

func TestPartitionModuleShapesChain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 8).TotalBytes
	c := Partition(m, full/5, 8, rng)
	if len(c.Modules) < 2 {
		t.Fatalf("expected multiple modules, got %d", len(c.Modules))
	}
	shape := m.InShape
	for i, mod := range c.Modules {
		if len(mod.InShape) != len(shape) {
			t.Fatalf("module %d InShape rank mismatch", i)
		}
		for j := range shape {
			if mod.InShape[j] != shape[j] {
				t.Fatalf("module %d InShape %v, want %v", i, mod.InShape, shape)
			}
		}
		shape = mod.OutShape
	}
	// Final module outputs class logits and has no aux head.
	last := c.Modules[len(c.Modules)-1]
	if !last.IsLast() {
		t.Fatal("final module must have no aux head")
	}
	if last.OutShape[0] != 10 {
		t.Fatalf("final OutShape %v", last.OutShape)
	}
	for _, mod := range c.Modules[:len(c.Modules)-1] {
		if mod.Aux == nil {
			t.Fatalf("intermediate module %d lacks aux head", mod.Index)
		}
	}
}

func TestPartitionRespectsRminWhenFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 8).TotalBytes
	rmin := full / 4
	c := Partition(m, rmin, 8, rng)
	// Multi-atom modules must fit under Rmin (single-atom modules are kept
	// regardless, as in Algorithm 1).
	for i, mod := range c.Modules {
		if len(mod.Atoms) > 1 {
			// Removing the last atom then re-adding it was the partition
			// decision; verify the accepted candidate respected the bound.
			if c.ModuleMemReq(i) >= rmin && len(mod.Atoms) > 1 {
				t.Fatalf("module %d (%d atoms) mem %d ≥ Rmin %d",
					i, len(mod.Atoms), c.ModuleMemReq(i), rmin)
			}
		}
	}
}

func TestPartitionMonotoneInRmin(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 8).TotalBytes
	f := func(fracRaw uint8) bool {
		frac1 := 0.15 + float64(fracRaw%40)/100.0 // 0.15..0.54
		frac2 := frac1 + 0.2
		c1 := Partition(m, int64(frac1*float64(full)), 8, rng)
		c2 := Partition(m, int64(frac2*float64(full)), 8, rng)
		return len(c2.Modules) <= len(c1.Modules)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionDegeneratesToSingleModule(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 8).TotalBytes
	c := Partition(m, full*10, 8, rng)
	if len(c.Modules) != 1 {
		t.Fatalf("huge Rmin should yield 1 module, got %d", len(c.Modules))
	}
	if !c.Modules[0].IsLast() {
		t.Fatal("single module must be final")
	}
}

func TestForwardPrefixMatchesComposite(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 4).TotalBytes
	c := Partition(m, full/5, 4, rng)
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)

	// Full forward through prefix then remaining modules equals whole model.
	mid := len(c.Modules) / 2
	z := c.ForwardPrefix(x, mid)
	for i := mid; i < len(c.Modules); i++ {
		z = c.Modules[i].ForwardAtoms(z, false)
	}
	want := m.Forward(x, false)
	for i := range want.Data {
		if math.Abs(z.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatal("prefix+suffix forward disagrees with whole model")
		}
	}
}

func TestCompositeFullMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 4).TotalBytes
	c := Partition(m, full/5, 4, rng)
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	a := c.Full().Forward(x, false)
	b := m.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Composite(full) disagrees with the backbone model")
		}
	}
}

func TestEarlyExitLossGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 4).TotalBytes
	c := Partition(m, full/5, 4, rng)

	mod := 1
	z := tensor.Randn(rng, 0.5, 3, c.Modules[mod].InShape[0], c.Modules[mod].InShape[1], c.Modules[mod].InShape[2])
	labels := []int{0, 3, 7}
	mu := 1e-3

	// BatchNorm in eval mode needs warmed running stats for a fair check.
	c.EarlyExitLoss(z, labels, mod, mod, mu, true)

	c.zeroRangeGrads(mod, mod)
	_, grad := c.EarlyExitLoss(z, labels, mod, mod, mu, false)

	for trial := 0; trial < 10; trial++ {
		i := rng.Intn(z.Len())
		const h = 1e-5
		orig := z.Data[i]
		z.Data[i] = orig + h
		lp, _ := c.EarlyExitLoss(z, labels, mod, mod, mu, false)
		z.Data[i] = orig - h
		lm, _ := c.EarlyExitLoss(z, labels, mod, mod, mu, false)
		z.Data[i] = orig
		ng := (lp - lm) / (2 * h)
		if math.Abs(ng-grad.Data[i]) > 1e-4*(1+math.Abs(ng)) {
			t.Fatalf("early-exit grad mismatch at %d: numeric %g analytic %g", i, ng, grad.Data[i])
		}
	}
}

func TestStrongConvexityRegularizerIncreasesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 4).TotalBytes
	c := Partition(m, full/5, 4, rng)
	z := tensor.Randn(rng, 0.5, 2, c.Modules[0].InShape[0], c.Modules[0].InShape[1], c.Modules[0].InShape[2])
	labels := []int{1, 2}
	c.EarlyExitLoss(z, labels, 0, 0, 0, true) // warm BN
	l0, _ := c.EarlyExitLoss(z, labels, 0, 0, 0, false)
	l1, _ := c.EarlyExitLoss(z, labels, 0, 0, 1e-2, false)
	if l1 <= l0 {
		t.Fatalf("µ>0 must increase the loss unless features are zero: %g vs %g", l0, l1)
	}
}

func TestAdversarialStepReducesLossOverIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := nn.CNN3([]int{2, 8, 8}, 4, 4, rng)
	full := memmodel.MemReqModel(m, 8).TotalBytes
	c := Partition(m, full/3, 8, rng)
	if len(c.Modules) < 2 {
		t.Skip("partition produced a single module at this scale")
	}
	opt := nn.NewSGD(0.05, 0.9, 0)
	z := tensor.Uniform(rng, 0, 1, 8, 2, 8, 8)
	labels := []int{0, 1, 2, 3, 0, 1, 2, 3}
	atk := attack.FeaturePGDConfig(0.05, 3)

	first := c.AdversarialStep(z, labels, 0, 0, atk, 1e-5, opt, rng)
	var last float64
	for i := 0; i < 60; i++ {
		last = c.AdversarialStep(z, labels, 0, 0, atk, 1e-5, opt, rng)
	}
	if last >= first {
		t.Fatalf("adversarial training did not reduce module loss: %g -> %g", first, last)
	}
}

func TestMaxOutputPerturbationProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 4).TotalBytes
	c := Partition(m, full/5, 4, rng)
	z := tensor.Uniform(rng, 0, 1, 4, 3, 16, 16)

	// Warm BN stats of module 0.
	c.Modules[0].ForwardAtoms(z, true)

	small := c.MaxOutputPerturbation(z, 0, attack.Config{
		Eps: 0.01, StepSize: 0.005, Steps: 4, Norm: attack.L2, RandomStart: true, ClampMin: 1, ClampMax: 0,
	}, rng)
	large := c.MaxOutputPerturbation(z, 0, attack.Config{
		Eps: 0.2, StepSize: 0.1, Steps: 4, Norm: attack.L2, RandomStart: true, ClampMin: 1, ClampMax: 0,
	}, rng)
	if small < 0 || large < 0 {
		t.Fatal("perturbation magnitudes must be non-negative")
	}
	if large <= small {
		t.Fatalf("larger input ball must produce larger output perturbation: %g vs %g", small, large)
	}
	// Zero budget → (near) zero output perturbation.
	zero := c.MaxOutputPerturbation(z, 0, attack.Config{
		Eps: 0, StepSize: 0, Steps: 1, Norm: attack.L2, ClampMin: 1, ClampMax: 0,
	}, rng)
	if zero > 1e-9 {
		t.Fatalf("zero-eps perturbation should be ~0, got %g", zero)
	}
}

func TestRangeMemAndFLOPsExceedSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := testModel(rng)
	full := memmodel.MemReqModel(m, 8).TotalBytes
	c := Partition(m, full/5, 8, rng)
	if len(c.Modules) < 3 {
		t.Skip("need ≥3 modules")
	}
	if c.RangeMemReq(0, 1) <= c.ModuleMemReq(0) {
		t.Fatal("range memory must exceed a single module")
	}
	if c.RangeForwardFLOPs(0, 2) <= c.RangeForwardFLOPs(0, 1) {
		t.Fatal("range FLOPs must grow with more modules")
	}
	if c.RangeMemReq(0, 0) != c.ModuleMemReq(0) {
		t.Fatal("degenerate range must equal single module")
	}
}
