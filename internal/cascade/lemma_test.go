package cascade

import (
	"math"
	"math/rand"
	"testing"

	"fedprophet/internal/attack"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/tensor"
)

// TestLemma1StrongConvexityBound verifies the paper's Lemma 1 pointwise: for
// the µ-strongly-convex early-exit loss
//
//	lm(z) = CE(Wᵀz + b, y) + µ/2·‖z‖²
//
// and ANY input perturbation δ, the output perturbation Δz = z(x+δ) − z(x)
// obeys
//
//	‖Δz‖₂ ≤ ‖∇lm(z)‖₂/µ + sqrt(2·c/µ + ‖∇lm(z)‖₂²/µ²)
//
// where c = lm(z+Δz) − lm(z) is that point's loss increase. The bound is an
// exact consequence of strong convexity (Appendix A.1), so it must hold for
// every perturbation we can construct — adversarial or random.
func TestLemma1StrongConvexityBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	model := nn.CNN3([]int{2, 8, 8}, 4, 4, rng)
	full := memmodel.MemReqModel(model, 2).TotalBytes
	c := Partition(model, full/3, 2, rng)
	if len(c.Modules) < 2 {
		t.Skip("need an intermediate module with an aux head")
	}
	mod := c.Modules[0]
	mu := 0.05
	label := []int{1}

	// One-sample batch keeps per-sample and batch-mean norms identical.
	zin := tensor.Uniform(rng, 0, 1, 1, 2, 8, 8)
	// Warm the batch-norm statistics, then freeze in eval mode.
	mod.ForwardAtoms(tensor.Uniform(rng, 0, 1, 8, 2, 8, 8), true)

	// lm(zout) and its gradient with respect to zout.
	lm := func(zout *tensor.Tensor) float64 {
		logits := mod.Aux.Forward(zout, false)
		l, _ := nn.SoftmaxCrossEntropy(logits, label)
		return l + mu/2*tensor.Dot(zout, zout)
	}
	gradLm := func(zout *tensor.Tensor) *tensor.Tensor {
		logits := mod.Aux.Forward(zout, false)
		_, g := nn.SoftmaxCrossEntropy(logits, label)
		for _, p := range mod.Aux.Params() {
			p.ZeroGrad()
		}
		gz := mod.Aux.Backward(g)
		gz.AxpyInPlace(mu, zout)
		return gz
	}

	zClean := mod.ForwardAtoms(zin, false).Clone()
	lClean := lm(zClean)
	gNorm := gradLm(zClean).L2Norm()

	check := func(zAdvIn *tensor.Tensor, what string) {
		zOut := mod.ForwardAtoms(zAdvIn, false)
		dz := tensor.Sub(zOut, zClean)
		cPt := lm(zOut) - lClean
		if cPt < 0 {
			cPt = 0 // the bound only strengthens if the loss decreased
		}
		bound := gNorm/mu + math.Sqrt(2*cPt/mu+gNorm*gNorm/(mu*mu))
		if dz.L2Norm() > bound*(1+1e-9) {
			t.Fatalf("%s: Lemma 1 violated: ‖Δz‖=%g > bound %g (c=%g, ‖∇‖=%g)",
				what, dz.L2Norm(), bound, cPt, gNorm)
		}
	}

	// Adversarial perturbations of increasing radius.
	for _, eps := range []float64{0.05, 0.2, 0.5} {
		atk := attack.FeaturePGDConfig(eps, 6)
		adv := attack.Perturb(atk, zin, func(z *tensor.Tensor) (float64, *tensor.Tensor) {
			for _, p := range mod.Params() {
				p.ZeroGrad()
			}
			out := mod.ForwardAtoms(z, false)
			l := lm(out)
			g := gradLm(out)
			return l, mod.BackwardAtoms(g)
		}, rng)
		check(adv, "adversarial")
	}
	// Random perturbations.
	for trial := 0; trial < 10; trial++ {
		noise := tensor.Randn(rng, 0.1, zin.Shape()...)
		check(tensor.Add(zin, noise), "random")
	}
}

// TestProposition1RobustnessChain exercises the induction behind
// Proposition 1: bounding each module's output perturbation bounds the
// joint-loss degradation of the full cascade. We verify the measurable
// consequence — feeding module m+1 a perturbation no larger than module m's
// measured max output perturbation produces a bounded output perturbation at
// m+1, i.e. MaxOutputPerturbation composes monotonically along the cascade.
func TestProposition1RobustnessChain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	model := nn.VGG16S([]int{3, 16, 16}, 10, 4, rng)
	full := memmodel.MemReqModel(model, 4).TotalBytes
	c := Partition(model, full/5, 4, rng)
	if len(c.Modules) < 3 {
		t.Skip("need ≥3 modules")
	}
	x := tensor.Uniform(rng, 0, 1, 4, 3, 16, 16)
	// Warm all BN stats.
	c.Full().Forward(x, true)

	eps := 8.0 / 255
	atk0 := attack.Config{Eps: eps, StepSize: eps / 2, Steps: 4, Norm: attack.LInf,
		RandomStart: true, ClampMin: 0, ClampMax: 1}
	d1 := c.MaxOutputPerturbation(x, 0, atk0, rng)
	if d1 <= 0 {
		t.Fatal("module 1 must propagate some perturbation")
	}

	z1 := c.ForwardPrefix(x, 1)
	d2 := c.MaxOutputPerturbation(z1, 1, attack.FeaturePGDConfig(d1, 4), rng)
	if d2 <= 0 {
		t.Fatal("module 2 must propagate some perturbation")
	}
	// The chain must be finite and roughly proportional to its input ball:
	// quadrupling the input ball must not shrink the output perturbation.
	d2big := c.MaxOutputPerturbation(z1, 1, attack.FeaturePGDConfig(4*d1, 4), rng)
	if d2big < d2*0.9 {
		t.Fatalf("output perturbation should grow with the input ball: %g vs %g", d2, d2big)
	}
}
