// Package cascade implements FedProphet's robust and consistent cascade
// learning (paper §5 and §6.1): the partition of a backbone model into
// memory-bounded cascaded modules (Algorithm 1), the auxiliary linear output
// heads, the strongly-convex early-exit loss of Eq. (9), adversarial training
// on intermediate features, and the measurement of output-feature
// perturbations that drives Adaptive Perturbation Adjustment.
package cascade

import (
	"fmt"
	"math"
	"math/rand"

	"fedprophet/internal/attack"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/tensor"
)

// Module is one cascaded slice of the backbone: a run of atoms plus, for all
// but the final module, an auxiliary fully connected output head θm
// (a single linear layer per §5.1 design (1), preserving convexity of the
// early-exit loss).
type Module struct {
	Index    int
	Atoms    []nn.Layer
	Aux      *nn.Sequential // flatten + linear; nil for the final module
	InShape  []int          // per-sample input feature shape
	OutShape []int          // per-sample output feature shape
}

// IsLast reports whether this module contains the backbone's own classifier.
func (m *Module) IsLast() bool { return m.Aux == nil }

// ForwardAtoms runs only the backbone atoms (not the aux head).
func (m *Module) ForwardAtoms(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, a := range m.Atoms {
		x = a.Forward(x, train)
	}
	return x
}

// BackwardAtoms back-propagates through the backbone atoms.
func (m *Module) BackwardAtoms(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.Atoms) - 1; i >= 0; i-- {
		grad = m.Atoms[i].Backward(grad)
	}
	return grad
}

// Params returns the module's trainable parameters including the aux head.
func (m *Module) Params() []*nn.Param {
	var ps []*nn.Param
	for _, a := range m.Atoms {
		ps = append(ps, a.Params()...)
	}
	if m.Aux != nil {
		ps = append(ps, m.Aux.Params()...)
	}
	return ps
}

// BackboneParams returns only the backbone atoms' parameters (what partial
// averaging aggregates into the global model).
func (m *Module) BackboneParams() []*nn.Param {
	var ps []*nn.Param
	for _, a := range m.Atoms {
		ps = append(ps, a.Params()...)
	}
	return ps
}

// BNStats flattens the batch-norm running statistics of the module's atoms;
// the server aggregates these alongside the weights.
func (m *Module) BNStats() []float64 {
	var out []float64
	for _, a := range m.Atoms {
		out = append(out, nn.ExportBNStats(a)...)
	}
	return out
}

// SetBNStats restores a vector produced by BNStats.
func (m *Module) SetBNStats(v []float64) {
	off := 0
	for _, a := range m.Atoms {
		n := len(nn.ExportBNStats(a))
		nn.ImportBNStats(a, v[off:off+n])
		off += n
	}
}

// Cascade is a partitioned backbone model.
type Cascade struct {
	Model      *nn.Model
	Modules    []*Module
	NumClasses int
	Batch      int // batch size assumed by the memory analysis
}

// NewAuxHead builds the auxiliary output model θm: flatten + one linear
// layer onto the class logits.
func NewAuxHead(featShape []int, classes int, rng *rand.Rand) *nn.Sequential {
	feat := 1
	for _, d := range featShape {
		feat *= d
	}
	return nn.NewSequential("aux", nn.NewFlatten(), nn.NewLinear(feat, classes, rng))
}

// moduleMemReq estimates the training memory of a candidate module: its
// atoms plus (for non-final candidates) an aux head on its output features.
func moduleMemReq(atoms []nn.Layer, inShape []int, classes, batch int, withAux bool, rng *rand.Rand) int64 {
	c := memmodel.MemReq(atoms, inShape, batch)
	total := c.TotalBytes
	if withAux {
		shape := inShape
		for _, a := range atoms {
			shape = a.OutShape(shape)
		}
		aux := NewAuxHead(shape, classes, rng)
		ac := memmodel.MemReq([]nn.Layer{aux}, shape, batch)
		total += ac.TotalBytes
	}
	return total
}

// Partition implements Algorithm 1 (memory-constrained model partition):
// greedily append atoms into the current module until adding the next atom
// would reach the minimal reserved memory Rmin, then start a new module.
// It yields the minimum number of modules for the given constraint.
//
// The final module keeps the backbone's own classifier and gets no aux head.
func Partition(model *nn.Model, rminBytes int64, batch int, rng *rand.Rand) *Cascade {
	c := &Cascade{Model: model, NumClasses: model.NumClasses, Batch: batch}
	var cur []nn.Layer
	curIn := append([]int(nil), model.InShape...)
	shape := append([]int(nil), model.InShape...)

	flush := func() {
		if len(cur) == 0 {
			return
		}
		m := &Module{
			Index:   len(c.Modules),
			Atoms:   cur,
			InShape: append([]int(nil), curIn...),
		}
		out := curIn
		for _, a := range cur {
			out = a.OutShape(out)
		}
		m.OutShape = append([]int(nil), out...)
		c.Modules = append(c.Modules, m)
		cur = nil
		curIn = append([]int(nil), out...)
	}

	for _, atom := range model.Atoms {
		candidate := append(append([]nn.Layer(nil), cur...), atom)
		if len(cur) > 0 && moduleMemReq(candidate, curIn, model.NumClasses, batch, true, rng) >= rminBytes {
			flush()
			candidate = []nn.Layer{atom}
		}
		cur = candidate
		shape = atom.OutShape(shape)
	}
	flush()

	// Attach aux heads to all but the final module.
	for _, m := range c.Modules[:len(c.Modules)-1] {
		m.Aux = NewAuxHead(m.OutShape, model.NumClasses, rng)
	}
	return c
}

// ModuleMemReq returns the training memory requirement (bytes) of module i
// including its aux head, at the cascade's batch size.
func (c *Cascade) ModuleMemReq(i int) int64 {
	m := c.Modules[i]
	cost := memmodel.MemReq(m.Atoms, m.InShape, c.Batch)
	total := cost.TotalBytes
	if m.Aux != nil {
		ac := memmodel.MemReq([]nn.Layer{m.Aux}, m.OutShape, c.Batch)
		total += ac.TotalBytes
	}
	return total
}

// RangeMemReq returns the training memory of modules [from, to] trained
// jointly with the aux head of module `to` (Differentiated Module
// Assignment's memory constraint, Eq. 14).
func (c *Cascade) RangeMemReq(from, to int) int64 {
	var atoms []nn.Layer
	for i := from; i <= to; i++ {
		atoms = append(atoms, c.Modules[i].Atoms...)
	}
	cost := memmodel.MemReq(atoms, c.Modules[from].InShape, c.Batch)
	total := cost.TotalBytes
	if aux := c.Modules[to].Aux; aux != nil {
		ac := memmodel.MemReq([]nn.Layer{aux}, c.Modules[to].OutShape, c.Batch)
		total += ac.TotalBytes
	}
	return total
}

// ModuleForwardFLOPs returns the per-sample forward FLOPs of module i
// including its aux head.
func (c *Cascade) ModuleForwardFLOPs(i int) int64 {
	m := c.Modules[i]
	shape := m.InShape
	var f int64
	for _, a := range m.Atoms {
		f += a.ForwardFLOPs(shape)
		shape = a.OutShape(shape)
	}
	if m.Aux != nil {
		f += m.Aux.ForwardFLOPs(m.OutShape)
	}
	return f
}

// RangeForwardFLOPs returns the per-sample forward FLOPs of modules
// [from, to] plus the aux head of `to` (DMA's FLOPs constraint, Eq. 15).
func (c *Cascade) RangeForwardFLOPs(from, to int) int64 {
	var f int64
	shape := c.Modules[from].InShape
	for i := from; i <= to; i++ {
		for _, a := range c.Modules[i].Atoms {
			f += a.ForwardFLOPs(shape)
			shape = a.OutShape(shape)
		}
	}
	if aux := c.Modules[to].Aux; aux != nil {
		f += aux.ForwardFLOPs(c.Modules[to].OutShape)
	}
	return f
}

// PrefixForwardFLOPs returns the per-sample forward FLOPs of the fixed
// prefix modules 0..mIdx-1 (no aux heads) — the cost of producing z_{m-1}.
func (c *Cascade) PrefixForwardFLOPs(mIdx int) int64 {
	var f int64
	shape := c.Model.InShape
	for i := 0; i < mIdx; i++ {
		for _, a := range c.Modules[i].Atoms {
			f += a.ForwardFLOPs(shape)
			shape = a.OutShape(shape)
		}
	}
	return f
}

// ForwardPrefix computes the input feature z_{m-1} of module mIdx for raw
// input x by running the (fixed) modules 0..mIdx-1 in eval mode.
func (c *Cascade) ForwardPrefix(x *tensor.Tensor, mIdx int) *tensor.Tensor {
	for i := 0; i < mIdx; i++ {
		x = c.Modules[i].ForwardAtoms(x, false)
	}
	return x
}

// Composite builds an evaluable model of modules 0..mIdx plus the aux head
// of module mIdx (or the real classifier if mIdx is the final module). It is
// used for validation accuracy C_m, A_m during APA and for final evaluation.
func (c *Cascade) Composite(mIdx int) nn.Layer {
	var layers []nn.Layer
	for i := 0; i <= mIdx; i++ {
		layers = append(layers, c.Modules[i].Atoms...)
	}
	if aux := c.Modules[mIdx].Aux; aux != nil {
		layers = append(layers, aux)
	}
	return nn.NewSequential(fmt.Sprintf("cascade[0..%d]", mIdx), layers...)
}

// Full returns the whole backbone as a single evaluable layer.
func (c *Cascade) Full() nn.Layer { return c.Composite(len(c.Modules) - 1) }

// EarlyExitLoss evaluates Eq. (9)/(13): forward z through modules
// [from, to], apply the aux head of `to` (or the real classifier), and return
//
//	loss = CE(logits, y) + µ/2 · mean_b ‖z_to(b)‖²₂
//
// together with the gradient with respect to z. If train is true, parameter
// gradients of the touched modules are accumulated (callers must zero them
// first); in eval mode only the input gradient is produced.
func (c *Cascade) EarlyExitLoss(z *tensor.Tensor, labels []int, from, to int, mu float64, train bool) (float64, *tensor.Tensor) {
	cur := z
	for i := from; i <= to; i++ {
		cur = c.Modules[i].ForwardAtoms(cur, train)
	}
	feat := cur
	var logits *tensor.Tensor
	last := c.Modules[to]
	if last.Aux != nil {
		logits = last.Aux.Forward(feat, train)
	} else {
		logits = feat
	}

	loss, glogits := nn.SoftmaxCrossEntropy(logits, labels)

	// Strong-convexity regularizer µ/2·E‖z‖² on the module output features.
	// For the final module the features are the logits themselves.
	bsz := z.Dim(0)
	reg := 0.0
	var gfeat *tensor.Tensor
	if last.Aux != nil {
		gfeat = last.Aux.Backward(glogits)
	} else {
		gfeat = glogits
	}
	if mu > 0 {
		norm2 := 0.0
		for _, v := range feat.Data {
			norm2 += v * v
		}
		reg = mu / 2 * norm2 / float64(bsz)
		scale := mu / float64(bsz)
		for i, v := range feat.Data {
			gfeat.Data[i] += scale * v
		}
	}

	grad := gfeat
	for i := to; i >= from; i-- {
		grad = c.Modules[i].BackwardAtoms(grad)
	}
	return loss + reg, grad
}

// FeatureGradFn adapts the early-exit loss to an attack.GradFn over the
// module-range input feature, for intermediate-feature PGD.
func (c *Cascade) FeatureGradFn(labels []int, from, to int, mu float64) attack.GradFn {
	return func(z *tensor.Tensor) (float64, *tensor.Tensor) {
		c.zeroRangeGrads(from, to)
		return c.EarlyExitLoss(z, labels, from, to, mu, false)
	}
}

func (c *Cascade) zeroRangeGrads(from, to int) {
	for i := from; i <= to; i++ {
		for _, p := range c.Modules[i].Params() {
			p.ZeroGrad()
		}
	}
}

// AdversarialStep performs one local adversarial training iteration on
// modules [from, to]: perturb the input feature z inside the configured
// ball, then one SGD step on the strongly-convex early-exit loss. Returns
// the training loss on the perturbed batch.
func (c *Cascade) AdversarialStep(z *tensor.Tensor, labels []int, from, to int, atk attack.Config, mu float64, opt *nn.SGD, rng *rand.Rand) float64 {
	adv := z
	if atk.Eps > 0 && atk.Steps > 0 {
		adv = attack.Perturb(atk, z, c.FeatureGradFn(labels, from, to, mu), rng)
	}
	c.zeroRangeGrads(from, to)
	loss, _ := c.EarlyExitLoss(adv, labels, from, to, mu, true)
	var params []*nn.Param
	for i := from; i <= to; i++ {
		params = append(params, c.Modules[i].Params()...)
	}
	opt.Step(params)
	return loss
}

// MaxOutputPerturbation estimates E[max_{‖δ‖≤eps} ‖Δz_out‖₂] for module
// mIdx: PGD maximizes ‖z(z_in+δ) − z(z_in)‖² over the input ball and the
// per-sample output perturbation norms are averaged. This is the quantity
// the server collects to set the next module's ε (Eq. 11).
func (c *Cascade) MaxOutputPerturbation(zin *tensor.Tensor, mIdx int, atk attack.Config, rng *rand.Rand) float64 {
	m := c.Modules[mIdx]
	clean := m.ForwardAtoms(zin, false)
	cleanCopy := clean.Clone()

	gradFn := func(z *tensor.Tensor) (float64, *tensor.Tensor) {
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
		out := m.ForwardAtoms(z, false)
		diff := tensor.Sub(out, cleanCopy)
		obj := 0.5 * tensor.Dot(diff, diff)
		return obj, m.BackwardAtoms(diff)
	}
	adv := attack.Perturb(atk, zin, gradFn, rng)
	out := m.ForwardAtoms(adv, false)

	bsz := zin.Dim(0)
	per := out.Len() / bsz
	total := 0.0
	for b := 0; b < bsz; b++ {
		n := 0.0
		for i := 0; i < per; i++ {
			d := out.Data[b*per+i] - cleanCopy.Data[b*per+i]
			n += d * d
		}
		total += math.Sqrt(n)
	}
	return total / float64(bsz)
}
