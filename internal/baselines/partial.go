package baselines

import (
	"context"
	"math/rand"

	"fedprophet/internal/device"
	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/simlat"
)

// PartialVariant selects the sub-model extraction strategy.
type PartialVariant int

// The three partial-training baselines of Appendix B.2.
const (
	HeteroFL PartialVariant = iota
	FedDrop
	FedRolex
)

// PartialTraining is partial-training federated adversarial training:
// each client adversarially trains a channel-wise sub-model whose size
// matches its memory budget (keep fraction = R_k / Rmax), and the server
// aggregates with element-wise partial averaging. The variant controls
// which channels are extracted (HeteroFL-AT, FedDrop-AT, FedRolex-AT).
type PartialTraining struct {
	Build   func(rng *rand.Rand) *nn.Model
	Variant PartialVariant
}

// Name identifies the method.
func (p *PartialTraining) Name() string {
	switch p.Variant {
	case FedDrop:
		return "FedDrop-AT"
	case FedRolex:
		return "FedRolex-AT"
	default:
		return "HeteroFL-AT"
	}
}

func (p *PartialTraining) picker(round int, rng *rand.Rand) pickFn {
	switch p.Variant {
	case FedDrop:
		return dropPick(rng)
	case FedRolex:
		return rolexPick(round)
	default:
		return heteroPick
	}
}

// ExtractSubModel exposes the channel-wise sub-model extraction used by the
// partial-training baselines, for cost analyses (Figure 2's "Lim. w/o Swap"
// regime trains exactly such a sub-model).
func ExtractSubModel(global *nn.Model, frac float64, variant PartialVariant, round int, rng *rand.Rand) *nn.Model {
	p := &PartialTraining{Variant: variant}
	return extractSub(global, frac, p.picker(round, rng), rng).model
}

// lastLinear finds the final classifier layer of a model (kept at full width
// in every sub-model).
func lastLinear(m *nn.Model) *nn.Linear {
	var last *nn.Linear
	for _, atom := range m.Atoms {
		if seq, ok := atom.(*nn.Sequential); ok {
			for _, l := range seq.Layers {
				if lin, ok := l.(*nn.Linear); ok {
					last = lin
				}
			}
		}
	}
	return last
}

// Run executes the federated rounds.
func (p *PartialTraining) Run(ctx context.Context, env *fl.Env) (*fl.Result, error) {
	rng := env.Rng
	global := p.Build(rng)
	fullCost := memmodel.MemReqModel(global, env.Cfg.Batch)
	cal := simlat.NewMemCalibration(env.Fleet.PoolMaxMemGB(), fullCost.TotalBytes)
	res := &fl.Result{Method: p.Name(), Extra: map[string]float64{}}
	atk := env.TrainAttackConfig(env.Cfg.TrainPGD)
	var commBytes int64

	for round := 0; round < env.Cfg.Rounds; round++ {
		selected := env.Sample(rng)
		seeds := fl.RoundSeeds(rng, len(selected))
		snaps := make([]device.Snapshot, len(selected))
		for i, k := range selected {
			snaps[i] = env.Fleet.Snapshot(k, rng)
		}
		lr := decayedLR(env.Cfg, round)

		// Sub-model extraction only reads the global tensors, so clients
		// run concurrently; their updates are scattered back sequentially
		// in sampling order after the pool drains.
		type clientOut struct {
			loss  float64
			sub   *subModel
			lat   simlat.Latency
			bytes int64
		}
		outs := make([]clientOut, len(selected))
		err := fl.ForEachClient(ctx, env.ClientWorkers(), len(selected), seeds, func(slot, i int, crng *rand.Rand) {
			budget := cal.Budget(snaps[i].AvailMemGB)
			frac := float64(budget) / float64(fullCost.TotalBytes)
			if frac > 1 {
				frac = 1
			}
			if frac < 0.1 {
				frac = 0.1
			}
			sub := extractSub(global, frac, p.picker(round, crng), crng)
			loss, iters := localTrain(sub.model, env.Subsets[selected[i]], env.Cfg, lr, atk, crng)
			subCost := memmodel.MemReqModel(sub.model, env.Cfg.Batch)
			w := clientWork(subCost.ForwardFLOPs, subCost.TotalBytes, budget,
				iters, env.Cfg.Batch, atk.Steps, false /* sub-model avoids swapping */)
			outs[i] = clientOut{loss, sub, simlat.ClientLatency(w, snaps[i]),
				int64(4 * (nn.NumParams(sub.model) + len(nn.ExportBNStats(sub.model))))}
		})
		if err != nil {
			res.Model = global
			return res, fl.PartialProgress(err, round)
		}

		acc := newAccumulator()
		var lats []simlat.Latency
		roundLoss := 0.0
		for i, o := range outs {
			o.sub.scatter(acc, float64(env.Subsets[selected[i]].Len()))
			lats = append(lats, o.lat)
			roundLoss += o.loss
			commBytes += o.bytes
		}
		acc.apply()
		roundLat := simlat.RoundLatency(lats)
		res.Latency.Add(roundLat)
		env.Record(res, fl.RoundMetrics{
			Round: round, Loss: roundLoss / float64(len(selected)), Latency: roundLat,
		})
	}
	res.Extra["mem_full_bytes"] = float64(fullCost.TotalBytes)
	res.Extra["comm_up_bytes"] = float64(commBytes)
	return finishResult(res, global, env), nil
}
