// Package baselines implements the seven comparison methods of the
// FedProphet evaluation (§7.1, Appendix B.2): joint federated adversarial
// training (jFAT), the partial-training family (HeteroFL-AT, FedDrop-AT,
// FedRolex-AT), the knowledge-distillation family (FedDF-AT, FedET-AT), and
// Federated Robustness Propagation (FedRBN). All of them share the fl.Method
// interface, the local PGD adversarial-training loop, and the latency
// accounting of internal/simlat.
package baselines

import (
	"math"
	"math/rand"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/simlat"
)

// localTrain runs E local iterations of (adversarially) perturbed SGD on
// `model` over the client subset and reports the mean training loss and the
// number of iterations executed. A zero-step attack config selects standard
// training.
func localTrain(model nn.Layer, sub *data.Subset, cfg fl.Config, lr float64, atk attack.Config, rng *rand.Rand) (float64, int) {
	opt := nn.NewSGD(lr, cfg.Momentum, cfg.WeightDecay)
	nn.ResetMomentum(model.Params())
	batches := data.Batches(sub.Indices, cfg.Batch, rng)
	if len(batches) == 0 {
		return 0, 0
	}
	totalLoss := 0.0
	iters := 0
	for iters < cfg.LocalIters {
		for _, b := range batches {
			if iters >= cfg.LocalIters {
				break
			}
			x, y := data.Batch(sub.Parent, b)
			if atk.Steps > 0 {
				x = attack.Perturb(atk, x, attack.CEGradFn(model, y), rng)
			}
			out := model.Forward(x, true)
			loss, g := nn.SoftmaxCrossEntropy(out, y)
			nn.ZeroGrads(model)
			model.Backward(g)
			opt.Step(model.Params())
			totalLoss += loss
			iters++
		}
	}
	return totalLoss / float64(iters), iters
}

// clientWork builds the simlat work unit for one client's local training.
func clientWork(forwardPerSample int64, memReq, budget int64, iters, batch, pgdSteps int, swap bool) simlat.Work {
	return simlat.Work{
		FLOPs:     int64(iters) * memmodel.TrainingFLOPs(forwardPerSample, batch, pgdSteps),
		MemReq:    memReq,
		MemBudget: budget,
		Passes:    int64(iters) * simlat.PassesPerBatch(pgdSteps),
		Swap:      swap,
	}
}

// decayedLR returns ηt = γ^t·η0.
func decayedLR(cfg fl.Config, round int) float64 {
	return cfg.LR * math.Pow(cfg.LRDecay, float64(round))
}

// finishResult evaluates the final model and fills the result.
func finishResult(res *fl.Result, model nn.Layer, env *fl.Env) *fl.Result {
	clean, pgd, aa := fl.Evaluate(model, env.Test, env.Cfg, env.Rng)
	res.CleanAcc, res.PGDAcc, res.AAAcc = clean, pgd, aa
	res.Model = model
	return res
}

// buildReplicas constructs one structurally identical model replica per
// worker slot, all seeded from the same modelSeed so that initial weights
// (immediately overwritten by the global import) and architecture agree.
func buildReplicas(build func(*rand.Rand) *nn.Model, workers int, modelSeed int64) []*nn.Model {
	replicas := make([]*nn.Model, workers)
	for s := range replicas {
		replicas[s] = build(rand.New(rand.NewSource(modelSeed)))
	}
	return replicas
}
