package baselines

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedprophet/internal/nn"
	"fedprophet/internal/tensor"
)

func TestPickersShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	picks := []pickFn{heteroPick, dropPick(rng), rolexPick(7)}
	for pi, pick := range picks {
		for _, tc := range []struct{ total, keep int }{{8, 3}, {5, 5}, {16, 1}, {7, 6}} {
			idx := pick(2, tc.total, tc.keep)
			if len(idx) != tc.keep {
				t.Fatalf("picker %d returned %d of %d", pi, len(idx), tc.keep)
			}
			seen := map[int]bool{}
			for _, i := range idx {
				if i < 0 || i >= tc.total || seen[i] {
					t.Fatalf("picker %d bad index %d (total %d)", pi, i, tc.total)
				}
				seen[i] = true
			}
		}
	}
}

func TestHeteroPickIsPrefix(t *testing.T) {
	idx := heteroPick(0, 10, 4)
	for i, v := range idx {
		if v != i {
			t.Fatalf("heteroPick must be the prefix, got %v", idx)
		}
	}
}

func TestRolexPickRolls(t *testing.T) {
	a := rolexPick(0)(0, 10, 4)
	b := rolexPick(3)(0, 10, 4)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("rolling window must move across rounds")
	}
}

func TestKeepCountBounds(t *testing.T) {
	if keepCount(10, 0.0) != 1 {
		t.Fatal("must keep at least one channel")
	}
	if keepCount(10, 2.0) != 10 {
		t.Fatal("must not exceed total")
	}
	if keepCount(10, 0.5) != 5 {
		t.Fatalf("keepCount(10,0.5) = %d", keepCount(10, 0.5))
	}
}

// Full-fraction extraction must reproduce the global model exactly.
func TestExtractSubFullFractionIsIdentity(t *testing.T) {
	for _, build := range []func(*rand.Rand) *nn.Model{
		func(r *rand.Rand) *nn.Model { return nn.VGG11S([]int{3, 16, 16}, 10, 4, r) },
		func(r *rand.Rand) *nn.Model { return nn.ResNet10S([]int{3, 16, 16}, 10, 4, r) },
	} {
		rng := rand.New(rand.NewSource(3))
		global := build(rng)
		sub := extractSub(global, 1.0, heteroPick, rng)

		x := tensor.Uniform(rng, 0, 1, 2, 3, 16, 16)
		a := global.Forward(x, false)
		b := sub.model.Forward(x, false)
		for i := range a.Data {
			if math.Abs(a.Data[i]-b.Data[i]) > 1e-9 {
				t.Fatalf("%s: full-fraction sub-model diverges from global", global.Label)
			}
		}
	}
}

// Sub-models must run forward/backward and keep the full class count.
func TestExtractSubHalfFractionRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, build := range []func(*rand.Rand) *nn.Model{
		func(r *rand.Rand) *nn.Model { return nn.VGG11S([]int{3, 16, 16}, 10, 4, r) },
		func(r *rand.Rand) *nn.Model { return nn.ResNet18S([]int{3, 16, 16}, 10, 4, r) },
		func(r *rand.Rand) *nn.Model { return nn.CNN3([]int{3, 16, 16}, 10, 4, r) },
	} {
		global := build(rng)
		for _, frac := range []float64{0.3, 0.5, 0.75} {
			sub := extractSub(global, frac, dropPick(rng), rng)
			x := tensor.Uniform(rng, 0, 1, 2, 3, 16, 16)
			out := sub.model.Forward(x, true)
			if out.Dim(1) != 10 {
				t.Fatalf("%s frac %v: classifier width %d", global.Label, frac, out.Dim(1))
			}
			_, g := nn.SoftmaxCrossEntropy(out, []int{1, 2})
			nn.ZeroGrads(sub.model)
			sub.model.Backward(g)
			if nn.NumParams(sub.model) >= nn.NumParams(global) {
				t.Fatalf("%s frac %v: sub-model not smaller", global.Label, frac)
			}
		}
	}
}

// Property: extraction copies exactly the mapped global values.
func TestExtractSubCopiesGlobalWeights(t *testing.T) {
	f := func(seed int64, fracRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		frac := 0.25 + float64(fracRaw%60)/100
		global := nn.VGG11S([]int{3, 16, 16}, 10, 4, rng)
		sub := extractSub(global, frac, rolexPick(int(seed%13)), rng)
		for _, m := range sub.maps {
			for i, j := range m.idx {
				if m.sub.Data.Data[i] != m.global.Data.Data[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Scatter + apply must write back modified sub weights at mapped positions
// and leave untouched positions alone.
func TestScatterApplyPartialAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	global := nn.CNN3([]int{3, 16, 16}, 10, 4, rng)
	before := nn.ExportParams(global)

	sub := extractSub(global, 0.5, heteroPick, rng)
	// Modify all sub weights.
	for _, m := range sub.maps {
		for i := range m.sub.Data.Data {
			m.sub.Data.Data[i] += 1.0
		}
	}
	acc := newAccumulator()
	sub.scatter(acc, 2.0)
	acc.apply()

	after := nn.ExportParams(global)
	touched := map[int]bool{}
	// Rebuild the global offsets of each param to verify positions.
	offsets := map[*nn.Param]int{}
	off := 0
	for _, p := range global.Params() {
		offsets[p] = off
		off += p.Data.Len()
	}
	for _, m := range sub.maps {
		base := offsets[m.global]
		for i, j := range m.idx {
			want := m.sub.Data.Data[i] // single contributor → exact value
			if math.Abs(after[base+j]-want) > 1e-12 {
				t.Fatalf("scatter wrote %v, want %v", after[base+j], want)
			}
			touched[base+j] = true
		}
	}
	for i := range before {
		if !touched[i] && before[i] != after[i] {
			t.Fatalf("untouched weight %d changed", i)
		}
	}
}

// Two clients with equal weights average elementwise on the overlap.
func TestAccumulatorAveragesTwoClients(t *testing.T) {
	g := tensor.FromSlice([]float64{0, 0, 0}, 3)
	acc := newAccumulator()
	acc.add(g, []int{0, 1}, []float64{2, 4}, 1)
	acc.add(g, []int{1, 2}, []float64{8, 10}, 1)
	acc.apply()
	if g.Data[0] != 2 || g.Data[1] != 6 || g.Data[2] != 10 {
		t.Fatalf("overlap average wrong: %v", g.Data)
	}
}

func TestLastLinearFindsClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := nn.VGG16S([]int{3, 16, 16}, 10, 4, rng)
	l := lastLinear(m)
	if l == nil || l.Out != 10 {
		t.Fatalf("lastLinear wrong: %+v", l)
	}
}
