package baselines

import (
	"fmt"
	"math/rand"

	"fedprophet/internal/nn"
	"fedprophet/internal/tensor"
)

// pickFn chooses which `keep` of `total` output channels/neurons a
// sub-model retains at selectable layer layerID. Implementations must return
// distinct indices in [0,total). The three partial-training baselines differ
// only in this function:
//
//	HeteroFL-AT: the static prefix 0..keep-1
//	FedDrop-AT : a fresh random subset every round
//	FedRolex-AT: a rolling window advanced by the round index
type pickFn func(layerID, total, keep int) []int

// heteroPick is HeteroFL's static ordered selection.
func heteroPick(_, total, keep int) []int {
	idx := make([]int, keep)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// dropPick returns FedDrop's random selection bound to an RNG.
func dropPick(rng *rand.Rand) pickFn {
	return func(_, total, keep int) []int {
		perm := rng.Perm(total)[:keep]
		// Sorted for cache-friendly scatter; selection is what matters.
		insertionSort(perm)
		return perm
	}
}

// rolexPick returns FedRolex's rolling-window selection for a given round.
func rolexPick(round int) pickFn {
	return func(layerID, total, keep int) []int {
		start := ((round+layerID)%total + total) % total
		idx := make([]int, keep)
		for i := range idx {
			idx[i] = (start + i) % total
		}
		insertionSort(idx)
		return idx
	}
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// paramMap ties one sub-model parameter to the flat indices of the global
// parameter it was extracted from.
type paramMap struct {
	sub    *nn.Param
	global *nn.Param
	idx    []int
}

// statMap does the same for batch-norm running statistics (not Params, but
// aggregated across clients all the same).
type statMap struct {
	sub    *tensor.Tensor
	global *tensor.Tensor
	idx    []int
}

// subModel is an extracted trainable sub-network plus the mappings needed to
// scatter its updates back into the global model.
type subModel struct {
	model *nn.Model
	maps  []paramMap
	stats []statMap
}

// keepCount converts a channel fraction into a channel count, at least 1.
func keepCount(total int, frac float64) int {
	k := int(float64(total)*frac + 0.5)
	if k < 1 {
		k = 1
	}
	if k > total {
		k = total
	}
	return k
}

// extractSub builds a sub-model of `global` keeping roughly `frac` of the
// channels in every hidden layer (the final classifier keeps all outputs).
// Weights are copied from the global model; maps record where each copied
// scalar lives globally. Supports the model families used in the paper:
// plain conv/linear cascades (VGG, CNN) and ResNets of BasicBlocks.
func extractSub(global *nn.Model, frac float64, pick pickFn, rng *rand.Rand) *subModel {
	sm := &subModel{}
	finalLinear := lastLinear(global)

	// inSel tracks the retained channel (or neuron) indices of the current
	// feature; spatial dims follow the original model's shapes.
	inSel := identity(global.InShape[0])
	shape := append([]int(nil), global.InShape...)
	layerID := 0

	var subAtoms []nn.Layer
	for _, atom := range global.Atoms {
		switch a := atom.(type) {
		case *nn.Sequential:
			var subLayers []nn.Layer
			for _, l := range a.Layers {
				sub, newSel := sm.extractLayer(l, inSel, shape, frac, pick, &layerID, finalLinear, rng)
				subLayers = append(subLayers, sub)
				inSel = newSel
				shape = l.OutShape(shape)
			}
			subAtoms = append(subAtoms, nn.NewSequential(a.Name(), subLayers...))
		case *nn.BasicBlock:
			sub, newSel := sm.extractBlock(a, inSel, frac, pick, &layerID, rng)
			subAtoms = append(subAtoms, sub)
			inSel = newSel
			shape = a.OutShape(shape)
		default:
			panic(fmt.Sprintf("baselines: unsupported atom type %T", atom))
		}
	}
	sm.model = &nn.Model{
		Label:      global.Label + "-sub",
		Atoms:      subAtoms,
		InShape:    append([]int(nil), global.InShape...),
		NumClasses: global.NumClasses,
	}
	return sm
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// extractLayer handles one primitive layer inside a Sequential atom.
func (sm *subModel) extractLayer(l nn.Layer, inSel []int, shape []int, frac float64, pick pickFn, layerID *int, finalLinear *nn.Linear, rng *rand.Rand) (nn.Layer, []int) {
	switch v := l.(type) {
	case *nn.Conv2D:
		keep := keepCount(v.OutC, frac)
		outSel := pick(*layerID, v.OutC, keep)
		*layerID++
		sub := nn.NewConv2D(len(inSel), len(outSel), v.Kernel, v.Stride, v.Pad, v.B != nil, rng)
		sm.mapConv(sub, v, inSel, outSel)
		return sub, outSel

	case *nn.BatchNorm2D:
		sub := nn.NewBatchNorm2D(len(inSel))
		sm.mapBN(sub, v, inSel)
		return sub, inSel

	case *nn.Linear:
		if v == finalLinear {
			outSel := identity(v.Out)
			sub := nn.NewLinear(len(inSel), v.Out, rng)
			sm.mapLinear(sub, v, inSel, outSel)
			return sub, outSel
		}
		keep := keepCount(v.Out, frac)
		outSel := pick(*layerID, v.Out, keep)
		*layerID++
		sub := nn.NewLinear(len(inSel), len(outSel), rng)
		sm.mapLinear(sub, v, inSel, outSel)
		return sub, outSel

	case *nn.ReLU:
		return nn.NewReLU(), inSel
	case *nn.MaxPool2D:
		return nn.NewMaxPool2D(v.Kernel), inSel
	case *nn.GlobalAvgPool2D:
		return nn.NewGlobalAvgPool2D(), inSel
	case *nn.Flatten:
		// Expand channel selection over the spatial plane of the ORIGINAL
		// feature map: channel c covers flat features c·H·W .. (c+1)·H·W−1.
		hw := 1
		for _, d := range shape[1:] {
			hw *= d
		}
		newSel := make([]int, 0, len(inSel)*hw)
		for _, c := range inSel {
			for s := 0; s < hw; s++ {
				newSel = append(newSel, c*hw+s)
			}
		}
		return nn.NewFlatten(), newSel
	default:
		panic(fmt.Sprintf("baselines: unsupported layer type %T", l))
	}
}

// extractBlock slices a BasicBlock. Identity blocks keep outSel = inSel so
// the skip connection stays valid; projection blocks pick a fresh output set
// which also serves as the mid-channel set.
func (sm *subModel) extractBlock(b *nn.BasicBlock, inSel []int, frac float64, pick pickFn, layerID *int, rng *rand.Rand) (nn.Layer, []int) {
	stride := b.Conv1.Stride
	var outSel []int
	if b.DownConv == nil {
		outSel = inSel
	} else {
		keep := keepCount(b.Conv2.OutC, frac)
		outSel = pick(*layerID, b.Conv2.OutC, keep)
		*layerID++
	}
	midSel := outSel // conv1's output channels = conv2's input channels

	sub := nn.NewBasicBlock(len(inSel), len(outSel), stride, rng)
	if (sub.DownConv == nil) != (b.DownConv == nil) {
		// NewBasicBlock adds a projection iff stride≠1 or channel counts
		// differ; identity blocks always keep matching counts here, so the
		// structures must agree.
		panic("baselines: block projection structure mismatch")
	}
	sm.mapConv(sub.Conv1, b.Conv1, inSel, midSel)
	sm.mapBN(sub.BN1, b.BN1, midSel)
	sm.mapConv(sub.Conv2, b.Conv2, midSel, outSel)
	sm.mapBN(sub.BN2, b.BN2, outSel)
	if b.DownConv != nil {
		sm.mapConv(sub.DownConv, b.DownConv, inSel, outSel)
		sm.mapBN(sub.DownBN, b.DownBN, outSel)
	}
	return sub, outSel
}

// mapConv copies W[outSel×inSel] (and bias) from global into sub and records
// the index mapping.
func (sm *subModel) mapConv(sub, global *nn.Conv2D, inSel, outSel []int) {
	k := global.Kernel
	idx := make([]int, 0, len(outSel)*len(inSel)*k*k)
	for _, oc := range outSel {
		for _, ic := range inSel {
			base := ((oc*global.InC + ic) * k) * k
			for p := 0; p < k*k; p++ {
				idx = append(idx, base+p)
			}
		}
	}
	copyByIndex(sub.W.Data.Data, global.W.Data.Data, idx)
	sm.maps = append(sm.maps, paramMap{sub: sub.W, global: global.W, idx: idx})
	if global.B != nil && sub.B != nil {
		copyByIndex(sub.B.Data.Data, global.B.Data.Data, outSel)
		sm.maps = append(sm.maps, paramMap{sub: sub.B, global: global.B, idx: append([]int(nil), outSel...)})
	}
}

// mapBN copies affine parameters and running statistics along sel.
func (sm *subModel) mapBN(sub, global *nn.BatchNorm2D, sel []int) {
	cp := append([]int(nil), sel...)
	copyByIndex(sub.Gamma.Data.Data, global.Gamma.Data.Data, cp)
	copyByIndex(sub.Beta.Data.Data, global.Beta.Data.Data, cp)
	copyByIndex(sub.RunningMean.Data, global.RunningMean.Data, cp)
	copyByIndex(sub.RunningVar.Data, global.RunningVar.Data, cp)
	sm.maps = append(sm.maps,
		paramMap{sub: sub.Gamma, global: global.Gamma, idx: cp},
		paramMap{sub: sub.Beta, global: global.Beta, idx: cp},
	)
	sm.stats = append(sm.stats,
		statMap{sub: sub.RunningMean, global: global.RunningMean, idx: cp},
		statMap{sub: sub.RunningVar, global: global.RunningVar, idx: cp},
	)
}

// mapLinear copies W[outSel×inSel] and b[outSel].
func (sm *subModel) mapLinear(sub, global *nn.Linear, inSel, outSel []int) {
	idx := make([]int, 0, len(outSel)*len(inSel))
	for _, o := range outSel {
		for _, i := range inSel {
			idx = append(idx, o*global.In+i)
		}
	}
	copyByIndex(sub.W.Data.Data, global.W.Data.Data, idx)
	sm.maps = append(sm.maps, paramMap{sub: sub.W, global: global.W, idx: idx})
	copyByIndex(sub.B.Data.Data, global.B.Data.Data, outSel)
	sm.maps = append(sm.maps, paramMap{sub: sub.B, global: global.B, idx: append([]int(nil), outSel...)})
}

func copyByIndex(dst, src []float64, idx []int) {
	if len(dst) != len(idx) {
		panic(fmt.Sprintf("baselines: copyByIndex size mismatch %d vs %d", len(dst), len(idx)))
	}
	for i, j := range idx {
		dst[i] = src[j]
	}
}

// accumulator gathers weighted partial updates destined for global tensors.
type accumulator struct {
	sums    map[*tensor.Tensor][]float64
	weights map[*tensor.Tensor][]float64
}

func newAccumulator() *accumulator {
	return &accumulator{
		sums:    map[*tensor.Tensor][]float64{},
		weights: map[*tensor.Tensor][]float64{},
	}
}

func (a *accumulator) add(global *tensor.Tensor, idx []int, values []float64, w float64) {
	s, ok := a.sums[global]
	if !ok {
		s = make([]float64, global.Len())
		a.sums[global] = s
		a.weights[global] = make([]float64, global.Len())
	}
	wt := a.weights[global]
	for i, j := range idx {
		s[j] += w * values[i]
		wt[j] += w
	}
}

// scatter accumulates one trained sub-model into the accumulator with FedAvg
// weight w.
func (sm *subModel) scatter(acc *accumulator, w float64) {
	for _, m := range sm.maps {
		acc.add(m.global.Data, m.idx, m.sub.Data.Data, w)
	}
	for _, s := range sm.stats {
		acc.add(s.global, s.idx, s.sub.Data, w)
	}
}

// apply writes the accumulated partial averages into the global tensors;
// positions no client touched keep their previous values (Eq. 16's partial
// average).
func (a *accumulator) apply() {
	for t, sums := range a.sums {
		ws := a.weights[t]
		for i := range sums {
			if ws[i] > 0 {
				t.Data[i] = sums[i] / ws[i]
			}
		}
	}
}
