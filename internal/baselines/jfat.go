package baselines

import (
	"context"
	"math/rand"

	"fedprophet/internal/device"
	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/simlat"
)

// JFAT is joint federated adversarial training (Zizzo et al. 2020): standard
// FedAvg where every selected client adversarially trains the whole large
// model end-to-end, swapping through storage whenever its memory cannot hold
// the full training state.
type JFAT struct {
	Build func(rng *rand.Rand) *nn.Model
}

// Name identifies the method.
func (j *JFAT) Name() string { return "jFAT" }

// Run executes the federated rounds.
func (j *JFAT) Run(ctx context.Context, env *fl.Env) (*fl.Result, error) {
	rng := env.Rng
	modelSeed := rng.Int63()
	replicas := buildReplicas(j.Build, env.ClientWorkers(), modelSeed)
	model := replicas[0]
	cost := memmodel.MemReqModel(model, env.Cfg.Batch)
	cal := simlat.NewMemCalibration(env.Fleet.PoolMaxMemGB(), cost.TotalBytes)
	res := &fl.Result{Method: j.Name(), Extra: map[string]float64{}}
	atk := env.TrainAttackConfig(env.Cfg.TrainPGD)

	global := nn.ExportParams(model)
	globalBN := nn.ExportBNStats(model)
	var commBytes int64
	for round := 0; round < env.Cfg.Rounds; round++ {
		selected := env.Sample(rng)
		seeds := fl.RoundSeeds(rng, len(selected))
		snaps := make([]device.Snapshot, len(selected))
		for i, k := range selected {
			snaps[i] = env.Fleet.Snapshot(k, rng)
		}
		lr := decayedLR(env.Cfg, round)

		type clientOut struct {
			loss  float64
			vec   []float64
			bn    []float64
			lat   simlat.Latency
			bytes int64
		}
		outs := make([]clientOut, len(selected))
		err := fl.ForEachClient(ctx, env.ClientWorkers(), len(selected), seeds, func(slot, i int, crng *rand.Rand) {
			m := replicas[slot]
			nn.ImportParams(m, global)
			nn.ImportBNStats(m, globalBN)
			loss, iters := localTrain(m, env.Subsets[selected[i]], env.Cfg, lr, atk, crng)
			vec := nn.ExportParams(m)
			bn := nn.ExportBNStats(m)
			w := clientWork(cost.ForwardFLOPs, cost.TotalBytes, cal.Budget(snaps[i].AvailMemGB),
				iters, env.Cfg.Batch, atk.Steps, true /* swap when constrained */)
			outs[i] = clientOut{loss, vec, bn, simlat.ClientLatency(w, snaps[i]), int64(4 * (len(vec) + len(bn)))}
		})
		if err != nil {
			nn.ImportParams(model, global)
			nn.ImportBNStats(model, globalBN)
			res.Model = model
			return res, fl.PartialProgress(err, round)
		}

		vecs := make([][]float64, len(outs))
		bnVecs := make([][]float64, len(outs))
		var lats []simlat.Latency
		roundLoss := 0.0
		for i, o := range outs {
			vecs[i], bnVecs[i] = o.vec, o.bn
			lats = append(lats, o.lat)
			roundLoss += o.loss
			commBytes += o.bytes
		}
		weights := fl.SubsetWeights(env.Subsets, selected)
		global = env.Aggregate(vecs, weights)
		globalBN = env.Aggregate(bnVecs, weights)
		roundLat := simlat.RoundLatency(lats)
		res.Latency.Add(roundLat)
		env.Record(res, fl.RoundMetrics{
			Round: round, Loss: roundLoss / float64(len(selected)), Latency: roundLat,
		})
	}
	nn.ImportParams(model, global)
	nn.ImportBNStats(model, globalBN)
	res.Extra["mem_full_bytes"] = float64(cost.TotalBytes)
	res.Extra["comm_up_bytes"] = float64(commBytes)
	return finishResult(res, model, env), nil
}
