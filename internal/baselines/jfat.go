package baselines

import (
	"math/rand"

	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/simlat"
)

// JFAT is joint federated adversarial training (Zizzo et al. 2020): standard
// FedAvg where every selected client adversarially trains the whole large
// model end-to-end, swapping through storage whenever its memory cannot hold
// the full training state.
type JFAT struct {
	Build func(rng *rand.Rand) *nn.Model
}

// Name identifies the method.
func (j *JFAT) Name() string { return "jFAT" }

// Run executes the federated rounds.
func (j *JFAT) Run(env *fl.Env) *fl.Result {
	rng := env.Rng
	model := j.Build(rng)
	cost := memmodel.MemReqModel(model, env.Cfg.Batch)
	cal := simlat.NewMemCalibration(env.Fleet.PoolMaxMemGB(), cost.TotalBytes)
	res := &fl.Result{Method: j.Name(), Extra: map[string]float64{}}

	global := nn.ExportParams(model)
	globalBN := nn.ExportBNStats(model)
	var commBytes int64
	for round := 0; round < env.Cfg.Rounds; round++ {
		selected := fl.SampleClients(env.Cfg.NumClients, env.Cfg.ClientsPerRound, rng)
		lr := decayedLR(env.Cfg, round)
		var vecs, bnVecs [][]float64
		var lats []simlat.Latency
		roundLoss := 0.0

		for _, k := range selected {
			nn.ImportParams(model, global)
			nn.ImportBNStats(model, globalBN)
			loss, iters := localTrain(model, env.Subsets[k], env.Cfg, lr, env.Cfg.TrainPGD, rng)
			roundLoss += loss
			vecs = append(vecs, nn.ExportParams(model))
			bnVecs = append(bnVecs, nn.ExportBNStats(model))
			commBytes += int64(4 * (len(vecs[len(vecs)-1]) + len(bnVecs[len(bnVecs)-1])))

			snap := env.Fleet.Snapshot(k, rng)
			w := clientWork(cost.ForwardFLOPs, cost.TotalBytes, cal.Budget(snap.AvailMemGB),
				iters, env.Cfg.Batch, env.Cfg.TrainPGD, true /* swap when constrained */)
			lats = append(lats, simlat.ClientLatency(w, snap))
		}
		weights := fl.SubsetWeights(env.Subsets, selected)
		global = fl.WeightedAverage(vecs, weights)
		globalBN = fl.WeightedAverage(bnVecs, weights)
		roundLat := simlat.RoundLatency(lats)
		res.Latency.Add(roundLat)
		res.History = append(res.History, fl.RoundMetrics{
			Round: round, Loss: roundLoss / float64(len(selected)), Latency: roundLat,
		})
	}
	nn.ImportParams(model, global)
	nn.ImportBNStats(model, globalBN)
	res.Extra["mem_full_bytes"] = float64(cost.TotalBytes)
	res.Extra["comm_up_bytes"] = float64(commBytes)
	return finishResult(res, model, env)
}
