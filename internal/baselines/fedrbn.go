package baselines

import (
	"math/rand"

	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/simlat"
)

// FedRBN is Federated Robustness Propagation (Hong et al. 2023) adapted to
// the memory-heterogeneous setting as in Appendix B.2: clients whose memory
// cannot afford adversarial training run standard training on the full model
// instead, and robustness is propagated by sharing the batch-norm statistics
// of the adversarially training clients. Homogeneous models avoid objective
// inconsistency (high clean accuracy) but robustness collapses when most
// clients cannot afford AT — the behaviour Table 2 reports.
type FedRBN struct {
	Build func(rng *rand.Rand) *nn.Model
	// ATCostFactor scales the memory a client needs before it is allowed to
	// adversarially train: AT needs the full training state plus the
	// perturbed-batch workspace.
	ATCostFactor float64
}

// Name identifies the method.
func (f *FedRBN) Name() string { return "FedRBN" }

// Run executes the federated rounds.
func (f *FedRBN) Run(env *fl.Env) *fl.Result {
	rng := env.Rng
	model := f.Build(rng)
	cost := memmodel.MemReqModel(model, env.Cfg.Batch)
	cal := simlat.NewMemCalibration(env.Fleet.PoolMaxMemGB(), cost.TotalBytes)
	res := &fl.Result{Method: f.Name(), Extra: map[string]float64{}}
	atFactor := f.ATCostFactor
	if atFactor <= 0 {
		atFactor = 1.0
	}

	global := nn.ExportParams(model)
	globalBN := nn.ExportBNStats(model)
	atClients := 0
	totalClients := 0
	var commBytes int64

	for round := 0; round < env.Cfg.Rounds; round++ {
		selected := fl.SampleClients(env.Cfg.NumClients, env.Cfg.ClientsPerRound, rng)
		lr := decayedLR(env.Cfg, round)
		var vecs [][]float64
		var ws []float64
		var robustBN [][]float64
		var robustW []float64
		var lats []simlat.Latency
		roundLoss := 0.0

		for _, k := range selected {
			snap := env.Fleet.Snapshot(k, rng)
			budget := cal.Budget(snap.AvailMemGB)
			doAT := float64(budget) >= atFactor*float64(cost.TotalBytes)
			steps := 0
			if doAT {
				steps = env.Cfg.TrainPGD
				atClients++
			}
			totalClients++

			nn.ImportParams(model, global)
			nn.ImportBNStats(model, globalBN)
			loss, iters := localTrain(model, env.Subsets[k], env.Cfg, lr, steps, rng)
			roundLoss += loss
			vecs = append(vecs, nn.ExportParams(model))
			ws = append(ws, float64(env.Subsets[k].Len()))
			commBytes += int64(4 * (nn.NumParams(model) + len(globalBN)))
			if doAT {
				robustBN = append(robustBN, nn.ExportBNStats(model))
				robustW = append(robustW, float64(env.Subsets[k].Len()))
			}

			w := clientWork(cost.ForwardFLOPs, cost.TotalBytes, budget,
				iters, env.Cfg.Batch, steps, true /* full model may swap */)
			lats = append(lats, simlat.ClientLatency(w, snap))
		}
		global = fl.WeightedAverage(vecs, ws)
		// Robustness propagation: adversarial BN statistics come only from
		// the AT clients; without any this round, keep the previous ones.
		if len(robustBN) > 0 {
			globalBN = fl.WeightedAverage(robustBN, robustW)
		}
		roundLat := simlat.RoundLatency(lats)
		res.Latency.Add(roundLat)
		res.History = append(res.History, fl.RoundMetrics{
			Round: round, Loss: roundLoss / float64(len(selected)), Latency: roundLat,
		})
	}
	nn.ImportParams(model, global)
	nn.ImportBNStats(model, globalBN)
	res.Extra["mem_full_bytes"] = float64(cost.TotalBytes)
	res.Extra["at_client_frac"] = float64(atClients) / float64(totalClients)
	res.Extra["comm_up_bytes"] = float64(commBytes)
	return finishResult(res, model, env)
}
