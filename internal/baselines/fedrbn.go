package baselines

import (
	"context"
	"math/rand"

	"fedprophet/internal/device"
	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/simlat"
)

// FedRBN is Federated Robustness Propagation (Hong et al. 2023) adapted to
// the memory-heterogeneous setting as in Appendix B.2: clients whose memory
// cannot afford adversarial training run standard training on the full model
// instead, and robustness is propagated by sharing the batch-norm statistics
// of the adversarially training clients. Homogeneous models avoid objective
// inconsistency (high clean accuracy) but robustness collapses when most
// clients cannot afford AT — the behaviour Table 2 reports.
type FedRBN struct {
	Build func(rng *rand.Rand) *nn.Model
	// ATCostFactor scales the memory a client needs before it is allowed to
	// adversarially train: AT needs the full training state plus the
	// perturbed-batch workspace.
	ATCostFactor float64
}

// Name identifies the method.
func (f *FedRBN) Name() string { return "FedRBN" }

// Run executes the federated rounds.
func (f *FedRBN) Run(ctx context.Context, env *fl.Env) (*fl.Result, error) {
	rng := env.Rng
	modelSeed := rng.Int63()
	replicas := buildReplicas(f.Build, env.ClientWorkers(), modelSeed)
	model := replicas[0]
	cost := memmodel.MemReqModel(model, env.Cfg.Batch)
	cal := simlat.NewMemCalibration(env.Fleet.PoolMaxMemGB(), cost.TotalBytes)
	res := &fl.Result{Method: f.Name(), Extra: map[string]float64{}}
	atk := env.TrainAttackConfig(env.Cfg.TrainPGD)
	atFactor := f.ATCostFactor
	if atFactor <= 0 {
		atFactor = 1.0
	}

	global := nn.ExportParams(model)
	globalBN := nn.ExportBNStats(model)
	atClients := 0
	totalClients := 0
	var commBytes int64

	for round := 0; round < env.Cfg.Rounds; round++ {
		selected := env.Sample(rng)
		seeds := fl.RoundSeeds(rng, len(selected))
		snaps := make([]device.Snapshot, len(selected))
		for i, k := range selected {
			snaps[i] = env.Fleet.Snapshot(k, rng)
		}
		lr := decayedLR(env.Cfg, round)

		type clientOut struct {
			doAT  bool
			loss  float64
			vec   []float64
			bn    []float64
			lat   simlat.Latency
			bytes int64
		}
		outs := make([]clientOut, len(selected))
		err := fl.ForEachClient(ctx, env.ClientWorkers(), len(selected), seeds, func(slot, i int, crng *rand.Rand) {
			budget := cal.Budget(snaps[i].AvailMemGB)
			doAT := float64(budget) >= atFactor*float64(cost.TotalBytes)
			catk := atk
			if !doAT {
				catk = env.TrainAttackConfig(0)
			}
			m := replicas[slot]
			nn.ImportParams(m, global)
			nn.ImportBNStats(m, globalBN)
			loss, iters := localTrain(m, env.Subsets[selected[i]], env.Cfg, lr, catk, crng)
			vec := nn.ExportParams(m)
			bn := nn.ExportBNStats(m)
			w := clientWork(cost.ForwardFLOPs, cost.TotalBytes, budget,
				iters, env.Cfg.Batch, catk.Steps, true /* full model may swap */)
			outs[i] = clientOut{doAT, loss, vec, bn, simlat.ClientLatency(w, snaps[i]),
				int64(4 * (len(vec) + len(bn)))}
		})
		if err != nil {
			nn.ImportParams(model, global)
			nn.ImportBNStats(model, globalBN)
			res.Model = model
			return res, fl.PartialProgress(err, round)
		}

		var vecs, robustBN [][]float64
		var ws, robustW []float64
		var lats []simlat.Latency
		roundLoss := 0.0
		for i, o := range outs {
			weight := float64(env.Subsets[selected[i]].Len())
			vecs = append(vecs, o.vec)
			ws = append(ws, weight)
			if o.doAT {
				robustBN = append(robustBN, o.bn)
				robustW = append(robustW, weight)
				atClients++
			}
			totalClients++
			lats = append(lats, o.lat)
			roundLoss += o.loss
			commBytes += o.bytes
		}
		global = env.Aggregate(vecs, ws)
		// Robustness propagation: adversarial BN statistics come only from
		// the AT clients; without any this round, keep the previous ones.
		if len(robustBN) > 0 {
			globalBN = env.Aggregate(robustBN, robustW)
		}
		roundLat := simlat.RoundLatency(lats)
		res.Latency.Add(roundLat)
		env.Record(res, fl.RoundMetrics{
			Round: round, Loss: roundLoss / float64(len(selected)), Latency: roundLat,
		})
	}
	nn.ImportParams(model, global)
	nn.ImportBNStats(model, globalBN)
	res.Extra["mem_full_bytes"] = float64(cost.TotalBytes)
	res.Extra["at_client_frac"] = float64(atClients) / float64(totalClients)
	res.Extra["comm_up_bytes"] = float64(commBytes)
	return finishResult(res, model, env), nil
}
