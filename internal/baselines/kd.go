package baselines

import (
	"context"
	"math/rand"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/internal/device"
	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/simlat"
	"fedprophet/internal/tensor"
)

// KDVariant selects the knowledge-distillation aggregation flavour.
type KDVariant int

// The two knowledge-distillation baselines of Appendix B.2.
const (
	// FedDF (Lin et al. 2020): ensemble distillation with uniformly
	// averaged teacher probabilities on a public dataset.
	FedDF KDVariant = iota
	// FedET (Cho et al. 2022): heterogeneous ensemble knowledge transfer
	// with confidence-weighted teachers, distilling on both clean and
	// adversarially perturbed public data.
	FedET
)

// KDTraining is knowledge-distillation federated adversarial training: each
// client adversarially trains the largest model of a fixed architecture
// group that fits its memory budget; the server federated-averages within
// each architecture family and then distills the family ensemble into the
// large global model on a small public dataset.
type KDTraining struct {
	// Group builds the architecture family, ordered small → large; the last
	// entry is the reported global model ({CNN3, VGG11, VGG13, VGG16} on
	// CIFAR-10, {CNN4, ResNet10, ResNet18, ResNet34} on Caltech-256).
	Group   []func(rng *rand.Rand) *nn.Model
	Variant KDVariant
	// DistillIters is the number of server-side distillation steps per
	// round (128 in the paper; scaled down with everything else here).
	DistillIters int
}

// Name identifies the method.
func (k *KDTraining) Name() string {
	if k.Variant == FedET {
		return "FedET-AT"
	}
	return "FedDF-AT"
}

// Run executes the federated rounds.
func (k *KDTraining) Run(ctx context.Context, env *fl.Env) (*fl.Result, error) {
	rng := env.Rng
	models := make([]*nn.Model, len(k.Group))
	costs := make([]memmodel.Costs, len(k.Group))
	for i, build := range k.Group {
		models[i] = build(rng)
		costs[i] = memmodel.MemReqModel(models[i], env.Cfg.Batch)
	}
	// Per worker slot, one replica of every family member, all built from
	// the same seed so the families agree structurally across slots.
	replicaSeed := rng.Int63()
	replicas := make([][]*nn.Model, env.ClientWorkers())
	for s := range replicas {
		replicas[s] = make([]*nn.Model, len(k.Group))
		for i, build := range k.Group {
			replicas[s][i] = build(rand.New(rand.NewSource(replicaSeed)))
		}
	}
	big := models[len(models)-1]
	cal := simlat.NewMemCalibration(env.Fleet.PoolMaxMemGB(), costs[len(costs)-1].TotalBytes)
	res := &fl.Result{Method: k.Name(), Extra: map[string]float64{}}
	atk := env.TrainAttackConfig(env.Cfg.TrainPGD)

	globals := make([][]float64, len(models))
	globalsBN := make([][]float64, len(models))
	for i, m := range models {
		globals[i] = nn.ExportParams(m)
		globalsBN[i] = nn.ExportBNStats(m)
	}
	distillIters := k.DistillIters
	if distillIters <= 0 {
		distillIters = 16
	}
	var commBytes int64

	for round := 0; round < env.Cfg.Rounds; round++ {
		selected := env.Sample(rng)
		seeds := fl.RoundSeeds(rng, len(selected))
		snaps := make([]device.Snapshot, len(selected))
		for i, c := range selected {
			snaps[i] = env.Fleet.Snapshot(c, rng)
		}
		lr := decayedLR(env.Cfg, round)

		type clientOut struct {
			pick  int
			loss  float64
			vec   []float64
			bn    []float64
			lat   simlat.Latency
			bytes int64
		}
		outs := make([]clientOut, len(selected))
		err := fl.ForEachClient(ctx, env.ClientWorkers(), len(selected), seeds, func(slot, i int, crng *rand.Rand) {
			budget := cal.Budget(snaps[i].AvailMemGB)
			// Largest family member that fits.
			pick := 0
			for j := range models {
				if costs[j].TotalBytes <= budget {
					pick = j
				}
			}
			m := replicas[slot][pick]
			nn.ImportParams(m, globals[pick])
			nn.ImportBNStats(m, globalsBN[pick])
			loss, iters := localTrain(m, env.Subsets[selected[i]], env.Cfg, lr, atk, crng)
			vec := nn.ExportParams(m)
			bn := nn.ExportBNStats(m)
			w := clientWork(costs[pick].ForwardFLOPs, costs[pick].TotalBytes, budget,
				iters, env.Cfg.Batch, atk.Steps, false)
			outs[i] = clientOut{pick, loss, vec, bn, simlat.ClientLatency(w, snaps[i]),
				int64(4 * (len(vec) + len(bn)))}
		})
		if err != nil {
			res.Model = big
			return res, fl.PartialProgress(err, round)
		}

		vecs := make([][][]float64, len(models))
		bnVecs := make([][][]float64, len(models))
		weights := make([][]float64, len(models))
		var lats []simlat.Latency
		roundLoss := 0.0
		for i, o := range outs {
			vecs[o.pick] = append(vecs[o.pick], o.vec)
			bnVecs[o.pick] = append(bnVecs[o.pick], o.bn)
			weights[o.pick] = append(weights[o.pick], float64(env.Subsets[selected[i]].Len()))
			lats = append(lats, o.lat)
			roundLoss += o.loss
			commBytes += o.bytes
		}

		// FedAvg within each architecture family.
		for i := range models {
			if len(vecs[i]) > 0 {
				globals[i] = env.Aggregate(vecs[i], weights[i])
				globalsBN[i] = env.Aggregate(bnVecs[i], weights[i])
			}
			nn.ImportParams(models[i], globals[i])
			nn.ImportBNStats(models[i], globalsBN[i])
		}

		// Server-side ensemble distillation into the big model.
		k.distill(models, big, env, distillIters, lr, rng)
		globals[len(globals)-1] = nn.ExportParams(big)
		globalsBN[len(globalsBN)-1] = nn.ExportBNStats(big)

		roundLat := simlat.RoundLatency(lats)
		res.Latency.Add(roundLat)
		env.Record(res, fl.RoundMetrics{
			Round: round, Loss: roundLoss / float64(len(selected)), Latency: roundLat,
		})
	}
	nn.ImportParams(big, globals[len(globals)-1])
	nn.ImportBNStats(big, globalsBN[len(globalsBN)-1])
	res.Extra["mem_full_bytes"] = float64(costs[len(costs)-1].TotalBytes)
	res.Extra["comm_up_bytes"] = float64(commBytes)
	return finishResult(res, big, env), nil
}

// distill runs server-side knowledge distillation of the family ensemble
// into the big model on the public dataset.
func (k *KDTraining) distill(models []*nn.Model, big *nn.Model, env *fl.Env, iters int, lr float64, rng *rand.Rand) {
	if env.Public == nil || env.Public.Len() < 2 {
		return
	}
	opt := nn.NewSGD(lr, env.Cfg.Momentum, 0)
	nn.ResetMomentum(big.Params())
	idx := make([]int, env.Public.Len())
	for i := range idx {
		idx[i] = i
	}
	batches := data.Batches(idx, env.Cfg.Batch, rng)
	done := 0
	for done < iters {
		for _, b := range batches {
			if done >= iters {
				break
			}
			x, y := data.Batch(env.Public, b)
			if k.Variant == FedET {
				// FedET transfers robustness by distilling on perturbed
				// public data as well.
				if done%2 == 1 {
					x = attack.Perturb(attack.PGDConfig(env.Cfg.Eps, 3), x,
						attack.CEGradFn(big, y), rng)
				}
			}
			teacher := k.ensembleProbs(models, x)
			out := big.Forward(x, true)
			_, g := nn.KLDivergence(out, teacher)
			nn.ZeroGrads(big)
			big.Backward(g)
			opt.Step(big.Params())
			done++
		}
		if len(batches) == 0 {
			break
		}
	}
}

// ensembleProbs combines the family models' predictions: uniform averaging
// for FedDF, confidence-weighted averaging for FedET.
func (k *KDTraining) ensembleProbs(models []*nn.Model, x *tensor.Tensor) *tensor.Tensor {
	bsz := x.Dim(0)
	var probs []*tensor.Tensor
	for _, m := range models {
		probs = append(probs, nn.Softmax(m.Forward(x, false)))
	}
	classes := probs[0].Dim(1)
	out := tensor.New(bsz, classes)
	for b := 0; b < bsz; b++ {
		totalW := 0.0
		for _, p := range probs {
			w := 1.0
			if k.Variant == FedET {
				// Confidence weight: the teacher's max probability.
				maxp := 0.0
				for j := 0; j < classes; j++ {
					if v := p.At(b, j); v > maxp {
						maxp = v
					}
				}
				w = maxp
			}
			totalW += w
			for j := 0; j < classes; j++ {
				out.Data[b*classes+j] += w * p.At(b, j)
			}
		}
		for j := 0; j < classes; j++ {
			out.Data[b*classes+j] /= totalW
		}
	}
	return out
}
