package baselines

import (
	"math/rand"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/nn"
	"fedprophet/internal/simlat"
	"fedprophet/internal/tensor"
)

// KDVariant selects the knowledge-distillation aggregation flavour.
type KDVariant int

// The two knowledge-distillation baselines of Appendix B.2.
const (
	// FedDF (Lin et al. 2020): ensemble distillation with uniformly
	// averaged teacher probabilities on a public dataset.
	FedDF KDVariant = iota
	// FedET (Cho et al. 2022): heterogeneous ensemble knowledge transfer
	// with confidence-weighted teachers, distilling on both clean and
	// adversarially perturbed public data.
	FedET
)

// KDTraining is knowledge-distillation federated adversarial training: each
// client adversarially trains the largest model of a fixed architecture
// group that fits its memory budget; the server federated-averages within
// each architecture family and then distills the family ensemble into the
// large global model on a small public dataset.
type KDTraining struct {
	// Group builds the architecture family, ordered small → large; the last
	// entry is the reported global model ({CNN3, VGG11, VGG13, VGG16} on
	// CIFAR-10, {CNN4, ResNet10, ResNet18, ResNet34} on Caltech-256).
	Group   []func(rng *rand.Rand) *nn.Model
	Variant KDVariant
	// DistillIters is the number of server-side distillation steps per
	// round (128 in the paper; scaled down with everything else here).
	DistillIters int
}

// Name identifies the method.
func (k *KDTraining) Name() string {
	if k.Variant == FedET {
		return "FedET-AT"
	}
	return "FedDF-AT"
}

// Run executes the federated rounds.
func (k *KDTraining) Run(env *fl.Env) *fl.Result {
	rng := env.Rng
	models := make([]*nn.Model, len(k.Group))
	costs := make([]memmodel.Costs, len(k.Group))
	for i, build := range k.Group {
		models[i] = build(rng)
		costs[i] = memmodel.MemReqModel(models[i], env.Cfg.Batch)
	}
	big := models[len(models)-1]
	cal := simlat.NewMemCalibration(env.Fleet.PoolMaxMemGB(), costs[len(costs)-1].TotalBytes)
	res := &fl.Result{Method: k.Name(), Extra: map[string]float64{}}

	globals := make([][]float64, len(models))
	globalsBN := make([][]float64, len(models))
	for i, m := range models {
		globals[i] = nn.ExportParams(m)
		globalsBN[i] = nn.ExportBNStats(m)
	}
	distillIters := k.DistillIters
	if distillIters <= 0 {
		distillIters = 16
	}
	var commBytes int64

	for round := 0; round < env.Cfg.Rounds; round++ {
		selected := fl.SampleClients(env.Cfg.NumClients, env.Cfg.ClientsPerRound, rng)
		lr := decayedLR(env.Cfg, round)
		vecs := make([][][]float64, len(models))
		bnVecs := make([][][]float64, len(models))
		weights := make([][]float64, len(models))
		var lats []simlat.Latency
		roundLoss := 0.0

		for _, c := range selected {
			snap := env.Fleet.Snapshot(c, rng)
			budget := cal.Budget(snap.AvailMemGB)
			// Largest family member that fits.
			pick := 0
			for i := range models {
				if costs[i].TotalBytes <= budget {
					pick = i
				}
			}
			nn.ImportParams(models[pick], globals[pick])
			nn.ImportBNStats(models[pick], globalsBN[pick])
			loss, iters := localTrain(models[pick], env.Subsets[c], env.Cfg, lr, env.Cfg.TrainPGD, rng)
			roundLoss += loss
			vecs[pick] = append(vecs[pick], nn.ExportParams(models[pick]))
			bnVecs[pick] = append(bnVecs[pick], nn.ExportBNStats(models[pick]))
			commBytes += int64(4 * (nn.NumParams(models[pick]) + len(globalsBN[pick])))
			weights[pick] = append(weights[pick], float64(env.Subsets[c].Len()))

			w := clientWork(costs[pick].ForwardFLOPs, costs[pick].TotalBytes, budget,
				iters, env.Cfg.Batch, env.Cfg.TrainPGD, false)
			lats = append(lats, simlat.ClientLatency(w, snap))
		}

		// FedAvg within each architecture family.
		for i := range models {
			if len(vecs[i]) > 0 {
				globals[i] = fl.WeightedAverage(vecs[i], weights[i])
				globalsBN[i] = fl.WeightedAverage(bnVecs[i], weights[i])
			}
			nn.ImportParams(models[i], globals[i])
			nn.ImportBNStats(models[i], globalsBN[i])
		}

		// Server-side ensemble distillation into the big model.
		k.distill(models, big, env, distillIters, lr, rng)
		globals[len(globals)-1] = nn.ExportParams(big)
		globalsBN[len(globalsBN)-1] = nn.ExportBNStats(big)

		roundLat := simlat.RoundLatency(lats)
		res.Latency.Add(roundLat)
		res.History = append(res.History, fl.RoundMetrics{
			Round: round, Loss: roundLoss / float64(len(selected)), Latency: roundLat,
		})
	}
	nn.ImportParams(big, globals[len(globals)-1])
	nn.ImportBNStats(big, globalsBN[len(globalsBN)-1])
	res.Extra["mem_full_bytes"] = float64(costs[len(costs)-1].TotalBytes)
	res.Extra["comm_up_bytes"] = float64(commBytes)
	return finishResult(res, big, env)
}

// distill runs server-side knowledge distillation of the family ensemble
// into the big model on the public dataset.
func (k *KDTraining) distill(models []*nn.Model, big *nn.Model, env *fl.Env, iters int, lr float64, rng *rand.Rand) {
	if env.Public == nil || env.Public.Len() < 2 {
		return
	}
	opt := nn.NewSGD(lr, env.Cfg.Momentum, 0)
	nn.ResetMomentum(big.Params())
	idx := make([]int, env.Public.Len())
	for i := range idx {
		idx[i] = i
	}
	batches := data.Batches(idx, env.Cfg.Batch, rng)
	done := 0
	for done < iters {
		for _, b := range batches {
			if done >= iters {
				break
			}
			x, y := data.Batch(env.Public, b)
			if k.Variant == FedET {
				// FedET transfers robustness by distilling on perturbed
				// public data as well.
				if done%2 == 1 {
					x = attack.Perturb(attack.PGDConfig(env.Cfg.Eps, 3), x,
						attack.CEGradFn(big, y), rng)
				}
			}
			teacher := k.ensembleProbs(models, x)
			out := big.Forward(x, true)
			_, g := nn.KLDivergence(out, teacher)
			nn.ZeroGrads(big)
			big.Backward(g)
			opt.Step(big.Params())
			done++
		}
		if len(batches) == 0 {
			break
		}
	}
}

// ensembleProbs combines the family models' predictions: uniform averaging
// for FedDF, confidence-weighted averaging for FedET.
func (k *KDTraining) ensembleProbs(models []*nn.Model, x *tensor.Tensor) *tensor.Tensor {
	bsz := x.Dim(0)
	var probs []*tensor.Tensor
	for _, m := range models {
		probs = append(probs, nn.Softmax(m.Forward(x, false)))
	}
	classes := probs[0].Dim(1)
	out := tensor.New(bsz, classes)
	for b := 0; b < bsz; b++ {
		totalW := 0.0
		for _, p := range probs {
			w := 1.0
			if k.Variant == FedET {
				// Confidence weight: the teacher's max probability.
				maxp := 0.0
				for j := 0; j < classes; j++ {
					if v := p.At(b, j); v > maxp {
						maxp = v
					}
				}
				w = maxp
			}
			totalW += w
			for j := 0; j < classes; j++ {
				out.Data[b*classes+j] += w * p.At(b, j)
			}
		}
		for j := 0; j < classes; j++ {
			out.Data[b*classes+j] /= totalW
		}
	}
	return out
}
