package baselines

import (
	"fedprophet/internal/fl"
)

// The seven comparison methods self-register so entry points resolve them
// by name through the fl registry instead of switch-casing constructors.
func init() {
	fl.RegisterMethod("jFAT", func(p fl.MethodParams) fl.Method {
		return &JFAT{Build: p.BuildLarge}
	})
	fl.RegisterMethod("FedDF-AT", func(p fl.MethodParams) fl.Method {
		return &KDTraining{Group: p.KDGroup, Variant: FedDF, DistillIters: p.DistillIters}
	})
	fl.RegisterMethod("FedET-AT", func(p fl.MethodParams) fl.Method {
		return &KDTraining{Group: p.KDGroup, Variant: FedET, DistillIters: p.DistillIters}
	})
	fl.RegisterMethod("HeteroFL-AT", func(p fl.MethodParams) fl.Method {
		return &PartialTraining{Build: p.BuildLarge, Variant: HeteroFL}
	})
	fl.RegisterMethod("FedDrop-AT", func(p fl.MethodParams) fl.Method {
		return &PartialTraining{Build: p.BuildLarge, Variant: FedDrop}
	})
	fl.RegisterMethod("FedRolex-AT", func(p fl.MethodParams) fl.Method {
		return &PartialTraining{Build: p.BuildLarge, Variant: FedRolex}
	})
	fl.RegisterMethod("FedRBN", func(p fl.MethodParams) fl.Method {
		return &FedRBN{Build: p.BuildLarge, ATCostFactor: 1}
	})
}
