package baselines

import (
	"context"
	"math/rand"
	"testing"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/internal/device"
	"fedprophet/internal/fl"
	"fedprophet/internal/nn"
)

// mustRun executes a method to completion, failing the test on error.
func mustRun(t *testing.T, m fl.Method, env *fl.Env) *fl.Result {
	t.Helper()
	res, err := m.Run(context.Background(), env)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	return res
}

// microEnv builds a tiny but complete federated environment for method
// integration tests.
func microEnv(t *testing.T, seed int64) *fl.Env {
	t.Helper()
	cfg := fl.DefaultConfig()
	cfg.NumClients = 8
	cfg.ClientsPerRound = 3
	cfg.Rounds = 3
	cfg.LocalIters = 4
	cfg.Batch = 8
	cfg.TrainPGD = 3
	cfg.EvalPGD = 5
	cfg.EvalAASteps = 5
	cfg.EvalBatch = 16
	cfg.LR = 0.05
	cfg.Seed = seed

	dcfg := data.SyntheticConfig{
		Name: "micro", Classes: 4, Shape: []int{2, 8, 8},
		TrainPerClass: 40, TestPerClass: 12,
		NoiseStd: 0.08, MixMax: 0.2, Seed: seed,
	}
	train, test := data.Generate(dcfg)
	train, val := data.SplitHoldout(train, 0.15, seed)
	train, public := data.SplitHoldout(train, 0.1, seed+1)
	subs := data.PartitionNonIID(train, data.DefaultPartition(cfg.NumClients, seed))
	rng := rand.New(rand.NewSource(seed))
	fleet := device.NewFleet(device.CIFARPool(), cfg.NumClients, device.Balanced, rng)
	return &fl.Env{
		Train: train, Subsets: subs, Val: val, Test: test, Public: public,
		Fleet: fleet, Cfg: cfg, Rng: rng,
	}
}

func microBuild(rng *rand.Rand) *nn.Model {
	return nn.CNN3([]int{2, 8, 8}, 4, 4, rng)
}

func microBuildTiny(rng *rand.Rand) *nn.Model {
	return nn.CNN3([]int{2, 8, 8}, 4, 2, rng)
}

// checkResult verifies the structural invariants every method must satisfy.
func checkResult(t *testing.T, res *fl.Result, wantRounds int) {
	t.Helper()
	if res.CleanAcc < 0 || res.CleanAcc > 1 ||
		res.PGDAcc < 0 || res.PGDAcc > 1 ||
		res.AAAcc < 0 || res.AAAcc > 1 {
		t.Fatalf("accuracies out of range: %+v", res)
	}
	if res.AAAcc > res.PGDAcc+1e-9 {
		t.Fatalf("AA accuracy (%v) must not exceed PGD accuracy (%v)", res.AAAcc, res.PGDAcc)
	}
	if res.Latency.Total() <= 0 {
		t.Fatal("latency must be positive")
	}
	if len(res.History) != wantRounds {
		t.Fatalf("history has %d rounds, want %d", len(res.History), wantRounds)
	}
	if res.Extra["comm_up_bytes"] <= 0 {
		t.Fatalf("%s: communication accounting missing", res.Method)
	}
}

func TestJFATRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	env := microEnv(t, 11)
	res := mustRun(t, &JFAT{Build: microBuild}, env)
	checkResult(t, res, env.Cfg.Rounds)
	if res.CleanAcc <= 0.3 {
		t.Fatalf("jFAT failed to learn anything: %v", res.CleanAcc)
	}
}

func TestJFATIncursDataAccessWhenConstrained(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	env := microEnv(t, 12)
	// The memory calibration gives the weakest devices ~25% of the full
	// model requirement, so jFAT must swap on them whatever the model size.
	res := mustRun(t, &JFAT{Build: microBuild}, env)
	if res.Latency.DataAccess <= 0 {
		t.Fatal("jFAT on a large model must incur swap data-access latency")
	}
}

func TestPartialTrainingVariantsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, v := range []PartialVariant{HeteroFL, FedDrop, FedRolex} {
		env := microEnv(t, 13+int64(v))
		res := mustRun(t, &PartialTraining{Build: microBuild, Variant: v}, env)
		checkResult(t, res, env.Cfg.Rounds)
		if res.Latency.DataAccess != 0 {
			t.Fatalf("%s must avoid swapping entirely", res.Method)
		}
	}
}

func TestPartialVariantNames(t *testing.T) {
	if (&PartialTraining{Variant: HeteroFL}).Name() != "HeteroFL-AT" ||
		(&PartialTraining{Variant: FedDrop}).Name() != "FedDrop-AT" ||
		(&PartialTraining{Variant: FedRolex}).Name() != "FedRolex-AT" {
		t.Fatal("bad variant names")
	}
}

func TestKDTrainingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	group := []func(*rand.Rand) *nn.Model{microBuildTiny, microBuild}
	for _, v := range []KDVariant{FedDF, FedET} {
		env := microEnv(t, 17+int64(v))
		res := mustRun(t, &KDTraining{Group: group, Variant: v, DistillIters: 4}, env)
		checkResult(t, res, env.Cfg.Rounds)
	}
}

func TestKDNames(t *testing.T) {
	if (&KDTraining{Variant: FedDF}).Name() != "FedDF-AT" ||
		(&KDTraining{Variant: FedET}).Name() != "FedET-AT" {
		t.Fatal("bad KD names")
	}
}

func TestFedRBNRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	env := microEnv(t, 19)
	res := mustRun(t, &FedRBN{Build: microBuild, ATCostFactor: 1}, env)
	checkResult(t, res, env.Cfg.Rounds)
	frac, ok := res.Extra["at_client_frac"]
	if !ok || frac < 0 || frac > 1 {
		t.Fatalf("at_client_frac missing or invalid: %v", frac)
	}
}

func TestLocalTrainReducesLoss(t *testing.T) {
	env := microEnv(t, 23)
	rng := rand.New(rand.NewSource(1))
	m := microBuild(rng)
	cfg := env.Cfg
	cfg.LocalIters = 30
	first, _ := localTrain(m, env.Subsets[0], cfg, 0.05, attack.Config{}, rng)
	last, _ := localTrain(m, env.Subsets[0], cfg, 0.05, attack.Config{}, rng)
	if last >= first {
		t.Fatalf("local training loss did not decrease: %g -> %g", first, last)
	}
}

func TestDecayedLR(t *testing.T) {
	cfg := fl.DefaultConfig()
	cfg.LR = 1
	cfg.LRDecay = 0.5
	if decayedLR(cfg, 0) != 1 || decayedLR(cfg, 2) != 0.25 {
		t.Fatal("decayedLR wrong")
	}
}
