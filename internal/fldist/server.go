// Package fldist provides a real distributed transport for the federated
// training loop: an HTTP parameter server and a client that pulls the global
// model, trains locally (PGD adversarial training), and pushes weighted
// updates. Everything else in this repository simulates federation
// in-process for experimental control; this package is the deployment path a
// downstream user of the library would run on actual edge devices, with the
// same FedAvg/partial-average semantics.
//
// Two wire protocols coexist and are negotiated per client (docs/WIRE.md):
//
//   - Raw: gob-encoded ModelBlob / Update bodies with full-precision
//     float64 parameters — the original protocol, kept as the fallback so
//     old clients interoperate.
//   - Compressed deltas: the client pulls a chunk-quantized global model
//     (binary quant frames) and pushes a quantized *delta* against that
//     pulled base, carrying the quantization residual into its next round's
//     delta (error feedback) so compression error does not accumulate in
//     the global model. The server dequantizes, reconstructs base+delta,
//     and feeds the result into the same weighted average as raw updates —
//     a mixed fleet aggregates correctly.
//
// The server aggregates under parameter-range sharding (shard.go): the
// global model is a copy-on-write snapshot read lock-free by every handler,
// push bodies stream-decode chunk-by-chunk into pooled buffers with O(chunk)
// transient memory, and the only global critical section on the push path is
// a constant-size admission registry (O(shards) pointer appends, nothing
// proportional to the model). Stats are atomics, so a /stats poll never
// blocks in-flight aggregation. GET /stats exposes bytes-on-wire counters
// split raw vs compressed plus admit-latency percentiles.
//
// Aggregation runs in one of two modes. The synchronous default collects a
// fixed quorum for the current round and 409s anything else. Buffered mode
// (WithBufferedAggregation) is FedBuff-style bounded staleness: updates
// whose base round is at most maxStaleness rounds old are admitted with
// weight discounted by 1/(1+staleness), and the model commits every bufferK
// admitted updates — a straggler's training pass is never discarded while it
// stays inside the window, and fleet throughput is no longer gated by the
// slowest client. The wire protocol is identical in both modes (the update
// envelope always carried its base round; see docs/WIRE.md).
//
// The package is marked deterministic: commits, WAL records, and served
// frames must be pure functions of the admitted updates so crash recovery
// and cross-node aggregation reconverge bit-for-bit. Wall-clock and jitter
// reads are confined to individually justified sites (fplint enforces this;
// see docs/ARCHITECTURE.md, "Static analysis").
//
//lint:deterministic
package fldist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fedprophet/internal/quant"
)

// ModelBlob is the wire format of the global model state.
type ModelBlob struct {
	Round  int
	Params []float64
	BN     []float64
}

// Update is one client's contribution for a round.
type Update struct {
	ClientID int
	Round    int
	Weight   float64 // FedAvg weight qk (local dataset size)
	Params   []float64
	BN       []float64
}

// Server is a FedAvg parameter server with two aggregation modes:
//
//   - Synchronous (default): it collects updatesPerRound client updates for
//     the current round, aggregates them with data-size weighting, and
//     advances the round. Late or mismatched-round updates are rejected
//     with 409 so clients re-pull.
//   - Buffered (WithBufferedAggregation): FedBuff-style bounded staleness —
//     an update is admitted while its base round is at most maxStaleness
//     rounds old, down-weighted by 1/(1+staleness), and the model commits
//     whenever bufferK updates have buffered. No quorum barrier, no wasted
//     training pass inside the window.
//
// Lock hierarchy (see docs/ARCHITECTURE.md). The machine-readable
// declaration below is the single source of truth fplint's lockorder
// analyzer checks every acquisition against:
//
// model is an atomic copy-on-write snapshot — reads take no lock at all.
// pendMu guards only the small admission registry (dedup set + quorum
// counter); the model-sized decode/validate/reconstruct work of every push
// happens before it, concurrently across requests. Each shard's mutex guards
// that shard's pending-contribution list. serveMu guards the per-codec
// served-model cache and downlink error-feedback state, touched once per
// client per round on pulls, never on the push fast path. All counters are
// atomics.
//
//lint:lockorder servedEntry.mu -> Server.serveMu -> Server.pendMu -> shard.mu
type Server struct {
	updatesPerRound int
	nShards         int

	// Buffered bounded-staleness mode (WithBufferedAggregation): async
	// selects it, bufferK is the commit threshold, maxStale the admission
	// window in rounds.
	async    bool
	bufferK  int
	maxStale int

	// Tier hooks (edge.go). manual switches buffered mode from auto-commit
	// (the handler filling the buffer runs the fold) to edge-driven commits:
	// admissions never trigger a commit themselves — the edge's flusher
	// calls commitNow when its flush policy fires and adopt after every
	// upstream resync. flushSignal, when non-nil, receives a (non-blocking)
	// token after every manual-mode admission so the flusher can re-check
	// its K threshold without polling. Both are set before the server starts
	// serving and never change.
	manual      bool
	flushSignal chan struct{}
	// manualCap bounds pendingN in manual mode, where nothing on the
	// admission path ever drains the buffer: with the tier's flusher wedged
	// (an upstream outage, a stalled resync), admissions would otherwise
	// retain model-sized update buffers without limit. At the cap, admission
	// answers the retryable buffer-full verdict until the flusher catches
	// up. Set alongside manual, before serving starts.
	manualCap int

	// model is the current immutable global state; round advance installs a
	// fresh snapshot. The swap happens under pendMu (and, for the serving
	// state, under serveMu) so registrations and cache builds always observe
	// a consistent (round, pending, served) triple.
	model atomic.Pointer[snapshot]

	// pendMu guards the admission registry: which clients already counted
	// toward the current round, how many, their summed effective weight, and
	// the pooled buffers to release when it folds. committing marks an
	// edge-driven commit in flight (manual mode only) — it blocks admission
	// exactly as a full buffer does in auto mode, and clears when the fold
	// publishes its snapshot.
	pendMu      sync.Mutex
	pendingIDs  map[int]bool
	pendingN    int
	pendingW    float64
	pendingBufs []*updateBuf
	committing  bool

	// admitted is buffered mode's dedup horizon, replacing pendingIDs: per
	// base round still inside the staleness window, the set of clients whose
	// update for that base was counted — a retry of an already-counted push
	// stays idempotent even across commits. Guarded by pendMu; evicted with
	// the window at each commit.
	admitted map[int]map[int]bool

	// shards partition the parameter vector; bnShard holds the (small)
	// BatchNorm statistics vector whole.
	shards  []shard
	bnShard shard

	// served caches, per (bits, chunk) requested this round, the encoded
	// compressed model body and the dequantized base the clients actually
	// received, each behind a servedEntry: an atomic pointer read lock-free
	// by pulls plus a per-variant single-flight latch held across the build.
	// Building an entry is a pure function of (snapshot, downErr, codec
	// params), so a cache miss recomputes identical bytes. serveMu guards
	// only the variant-map bookkeeping (entry lookup/create, the variant
	// cap, reading downErr, the generation counter) — it never spans
	// O(model) work, so distinct variants build concurrently and a build
	// never stalls an unrelated pull. downErr is the downlink error-feedback
	// residual per codec variant, committed from the served cache when the
	// round advances (see advanceRound). serveGen increments at every
	// snapshot swap; a build publishes only if the generation it started
	// under is still current, so a body built from a retired (snapshot,
	// downErr) pair is discarded instead of served.
	serveMu  sync.Mutex
	served   map[Compression]*servedEntry
	downErr  map[Compression][]float64
	serveGen uint64

	// servedRO is the lock-free view of served for the pull fast path: every
	// mutation of the map under serveMu (variant creation is copy-on-write;
	// retire installs a fresh empty map) publishes the new map here, so a
	// current-round pull that finds its variant already built touches no lock
	// at all. A pull racing a round commit may resolve the retiring round's
	// body through the old map — indistinguishable from the pull having
	// arrived a moment earlier, and the window closes at the pointer swap.
	servedRO atomic.Pointer[map[Compression]*servedEntry]

	// buildSegments fixes how many chunk-aligned segments a served-model
	// build encodes concurrently; 0 (the default) tracks GOMAXPROCS. The
	// served bytes are bit-identical at any value (the stitch identity —
	// TestServeSegmentInvariance); tests pin it to cross-check counts.
	buildSegments int

	// buildHook, when non-nil, runs at the start of every served-model
	// build, under the variant's latch but outside serveMu. Test seam for
	// pinning build concurrency; set before serving, never changed.
	buildHook func(Compression)

	// history (buffered mode) retains, per base round still inside the
	// staleness window, the round's immutable snapshot and its served-model
	// cache, so a stale push can be reconstructed against the exact base its
	// client pulled. Guarded by serveMu; evicted with the window at each
	// commit.
	history map[int]*roundState

	// deltaChains holds the delta-downlink state per codec variant that
	// negotiated delta=1 (servedelta.go). deltaMu guards only the map; each
	// chain's own mutex is the single-flight latch across its O(model)
	// advances, so distinct variants advance concurrently. The chains are a
	// separate subsystem from served/downErr on purpose: they advance lazily
	// at pull time from the immutable snapshot, so round transitions never
	// touch them.
	deltaMu     sync.Mutex
	deltaChains map[Compression]*deltaChain

	// Counters and latency window — atomics, so Stats never contends with
	// aggregation.
	roundsCompleted   atomic.Int64
	duplicatesDropped atomic.Int64
	bytesInRaw        atomic.Int64
	bytesInComp       atomic.Int64
	bytesOutRaw       atomic.Int64
	bytesOutComp      atomic.Int64
	updatesRaw        atomic.Int64
	updatesComp       atomic.Int64
	bytesInSparse     atomic.Int64
	updatesSparse     atomic.Int64
	bytesOutDelta     atomic.Int64
	bytesOutCold      atomic.Int64
	deltaPulls        atomic.Int64
	coldPulls         atomic.Int64
	staleRejected     atomic.Int64
	servedBuilds      atomic.Int64
	admitLat          latRing
	pullLat           latRing

	// bufferedNow mirrors pendingN as an atomic so tier flush policy and
	// /stats can read the live buffer depth without taking pendMu.
	bufferedNow atomic.Int64

	// oldestAdmit is the admission time (UnixNano) of the oldest update in
	// the current buffer, 0 while it is empty. Recorded at admission so a
	// tier's age-based flush deadline runs from when the update actually
	// buffered, not from when the flusher first looked at the buffer.
	// Written under pendMu, read lock-free by the flusher.
	oldestAdmit atomic.Int64

	// stalenessHist (buffered mode) counts admitted updates per observed
	// staleness 0..maxStale. Atomics, so /stats never contends with
	// admission.
	stalenessHist []atomic.Int64

	// bufPool recycles decoded-update buffers across pushes.
	bufPool sync.Pool

	// wal, when non-nil, is the open write-ahead log (WithWAL /
	// RecoverServer): commits and buffered-mode admissions are logged before
	// they take effect, so a crashed process resumes at its last commit. Set
	// before serving, never changed.
	wal *wal

	// warnf receives operational warnings (WAL write failures, lossy
	// shutdowns); nil means the process log. Set before serving.
	warnf func(format string, args ...any)

	closeOnce sync.Once
	closeErr  error
}

// servedModel is one round's compressed pull body, its exact client-visible
// (dequantized) parameter values, and the downlink residual to carry into
// the next round if this round commits.
type servedModel struct {
	round   int
	body    []byte
	params  []float64
	bn      []float64
	nextErr []float64

	// codec and clen are the response's codec-echo and Content-Length header
	// values, formatted once at build time so the pull hot path writes
	// precomputed strings instead of formatting per request.
	codec string
	clen  string
}

// servedEntry is one codec variant's slot in the round's served cache. val
// is the immutable built model, read lock-free; mu is the variant's
// single-flight latch, held across the O(model) build so N racing pulls for
// one variant run exactly one build while pulls for other variants (their
// own entries) and everything on serveMu proceed untouched. Entries are
// created under serveMu and the map is replaced wholesale when the round
// retires, so a live entry's val is always nil or the current round's body.
type servedEntry struct {
	mu  sync.Mutex
	val atomic.Pointer[servedModel]
}

// roundState is one committed round's retained state in buffered mode: the
// immutable snapshot (the base of that round's raw pushes) and the codec
// variants actually served (the bases of its delta pushes).
type roundState struct {
	snap   *snapshot
	served map[Compression]*servedModel
}

// maxCodecVariants bounds how many distinct (bits, chunk) parameter sets
// the server will serve within one round. Each variant costs a few
// model-sized buffers; without a bound, a client cycling through chunk
// values could grow server memory without limit.
const maxCodecVariants = 8

// NewServer creates a parameter server seeded with the initial global model.
// By default the aggregation plane is split into GOMAXPROCS parameter
// shards; WithShards overrides the count. The aggregate is bit-identical at
// any shard count.
func NewServer(initParams, initBN []float64, updatesPerRound int, opts ...ServerOption) *Server {
	if updatesPerRound < 1 {
		panic("fldist: updatesPerRound must be ≥ 1")
	}
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	nShards := resolveShards(cfg.shards, len(initParams))
	s := &Server{
		updatesPerRound: updatesPerRound,
		nShards:         nShards,
		pendingIDs:      map[int]bool{},
		shards:          makeShards(len(initParams), nShards),
		bnShard:         shard{lo: 0, hi: len(initBN)},
		served:          map[Compression]*servedEntry{},
		downErr:         map[Compression][]float64{},
		deltaChains:     map[Compression]*deltaChain{},
	}
	s.setServedLocked(s.served)
	if cfg.bufferK != 0 || cfg.maxStale != 0 {
		if cfg.bufferK < 1 {
			panic("fldist: buffered aggregation needs a commit threshold ≥ 1")
		}
		if cfg.maxStale < 0 || cfg.maxStale > maxStalenessLimit {
			panic(fmt.Sprintf("fldist: max staleness %d outside [0,%d]", cfg.maxStale, maxStalenessLimit))
		}
		s.async = true
		s.bufferK = cfg.bufferK
		s.maxStale = cfg.maxStale
		s.admitted = map[int]map[int]bool{}
		s.history = map[int]*roundState{}
		s.stalenessHist = make([]atomic.Int64, cfg.maxStale+1)
	}
	s.model.Store(&snapshot{
		round:  0,
		params: append([]float64(nil), initParams...),
		bn:     append([]float64(nil), initBN...),
	})
	s.bufPool.New = func() any {
		return &updateBuf{
			params: make([]float64, len(initParams)),
			bn:     make([]float64, len(initBN)),
		}
	}
	s.warnf = cfg.warnf
	if cfg.walDir != "" {
		m := walMeta{
			async:    s.async,
			maxStale: s.maxStale,
			nParams:  len(initParams),
			nBN:      len(initBN),
		}
		if s.async {
			m.quorumOrK = s.bufferK
		} else {
			m.quorumOrK = updatesPerRound
		}
		w, err := createWAL(cfg.walDir, m, cfg.walSync)
		if err != nil {
			panic(fmt.Sprintf("fldist: WAL: %v", err))
		}
		w.warnf = s.warn
		// The initial model is the first commit record: recovery always has
		// a snapshot to land on, even before any round completes.
		snap := s.model.Load()
		if err := w.appendCommit(w.reserve(), walCommit{round: 0, params: snap.params, bn: snap.bn}); err != nil {
			w.Close()
			panic(fmt.Sprintf("fldist: WAL initial commit: %v", err))
		}
		s.wal = w
	}
	return s
}

// warn reports an operational condition through warnf, defaulting to the
// process log.
func (s *Server) warn(format string, args ...any) {
	if s.warnf != nil {
		s.warnf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Shards returns the number of parameter shards the aggregation plane runs
// under.
func (s *Server) Shards() int { return s.nShards }

// Handler returns the HTTP routes of the parameter server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/round", s.handleRound)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// handleRound serves just the current round number, so clients waiting out a
// synchronous aggregation can poll cheaply instead of re-downloading the
// whole model blob. Lock-free.
func (s *Server) handleRound(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintf(w, "%d", s.model.Load().round)
}

// countReader counts bytes read through it.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	//lint:ignore determinism pull-latency stats only; never reaches served or replayed state
	start := time.Now()
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	comp, baseR, compressed, err := parseCodec(r.Header.Get(codecHeader))
	if err != nil {
		// A client that asked for compression we cannot parse must hear
		// about it rather than silently receive a gob blob it may not
		// expect.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if compressed {
		if comp.Delta {
			s.handleDeltaModel(w, comp, baseR, start)
			return
		}
		// serveKey: a topk negotiation without delta shapes only the uplink,
		// so those clients share the dense variant's served body and base.
		sm, err := s.getServed(comp.serveKey(), -1)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The body is an immutable finished byte slice — one Write, no
		// per-pull encode, no staging buffer. Content-Length lets clients
		// preallocate, and the counter charges what actually left (a puller
		// hanging up mid-body must not inflate the wire-saving numbers).
		w.Header().Set(codecHeader, sm.codec)
		w.Header().Set("Content-Type", contentTypeModel)
		w.Header().Set("Content-Length", sm.clen)
		n, _ := w.Write(sm.body)
		s.bytesOutComp.Add(int64(n))
		//lint:ignore determinism latency histogram only; /stats is observability, not state
		s.pullLat.record(time.Since(start))
		return
	}
	// Raw pull: the snapshot's lazily built (once per round, single-flight)
	// gob body is written straight out — no per-pull encode, no lock.
	body := s.model.Load().gobBody()
	w.Header().Set("Content-Type", contentTypeGob)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	n, _ := w.Write(body)
	s.bytesOutRaw.Add(int64(n))
	//lint:ignore determinism latency histogram only; /stats is observability, not state
	s.pullLat.record(time.Since(start))
}

// gobBody returns the snapshot's raw-protocol pull body, gob-encoding it on
// first use. sync.Once makes the encode single-flight and the result
// immutable, so a raw pull after the first is one Write of a shared slice.
func (sn *snapshot) gobBody() []byte {
	sn.rawOnce.Do(func() {
		var buf bytes.Buffer
		blob := ModelBlob{Round: sn.round, Params: sn.params, BN: sn.bn}
		if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
			// Plain ints and float64 slices into a bytes.Buffer; unreachable.
			panic(fmt.Sprintf("fldist: encoding model snapshot: %v", err))
		}
		sn.rawBody = buf.Bytes()
	})
	return sn.rawBody
}

// getServed returns (building on first use this round) the compressed pull
// body for the given codec parameters and the exact client-visible base
// values it exposes. wantRound ≥ 0 demands the entry belong to that round —
// the delta-update path uses this so a push never reconstructs against a
// base from a different round; wantRound < 0 accepts the current round.
//
// Parameters are chunk-quantized with downlink error feedback: the residual
// of quantizing the previous round's model at these codec parameters is
// folded in before quantizing, so pull-side compression error cancels over
// rounds instead of re-truncating the model to the quantization grid every
// round. The residual is only *read* here — the new one (nextErr) is
// committed when the round advances — so rebuilding within a round is
// idempotent and every participant sees the same base. The BatchNorm
// statistics travel as a raw frame — they are a few dozen values whose
// distortion (a running variance crushed toward zero) destabilizes
// normalization out of all proportion to the bytes saved.
func (s *Server) getServed(c Compression, wantRound int) (*servedModel, error) {
	// Lock-free fast path: a current-round pull whose variant is already
	// built resolves through the published map view without touching any
	// lock — two atomic loads and it holds the immutable body.
	if wantRound < 0 {
		if e := (*s.servedRO.Load())[c]; e != nil {
			if sm := e.val.Load(); sm != nil {
				return sm, nil
			}
		}
	}
	for {
		s.serveMu.Lock()
		snap := s.model.Load()
		if wantRound >= 0 && snap.round != wantRound {
			// Buffered mode: a delta push may reconstruct against a base up
			// to maxStale rounds old. Its client pulled before pushing, so if
			// the round is still retained, the variant's served entry exists.
			if s.async {
				if rs := s.history[wantRound]; rs != nil {
					if sm := rs.served[c]; sm != nil {
						s.serveMu.Unlock()
						return sm, nil
					}
				}
			}
			s.serveMu.Unlock()
			return nil, errStaleServe
		}
		e, ok := s.served[c]
		if !ok {
			if len(s.served) >= maxCodecVariants {
				s.serveMu.Unlock()
				return nil, fmt.Errorf("fldist: more than %d codec variants in one round", maxCodecVariants)
			}
			e = &servedEntry{}
			next := make(map[Compression]*servedEntry, len(s.served)+1)
			for k, v := range s.served {
				next[k] = v
			}
			next[c] = e
			s.setServedLocked(next)
		}
		if sm := e.val.Load(); sm != nil {
			// Entries never outlive their round (the map is replaced at
			// retire, under this lock), so a published value is current.
			s.serveMu.Unlock()
			return sm, nil
		}
		prevErr := s.downErr[c]
		gen := s.serveGen
		s.serveMu.Unlock()

		// Build outside serveMu, under the variant's own latch: racing pulls
		// for this variant queue here and find val set; pulls for other
		// variants, and everything else on serveMu, never wait on this
		// O(model) work.
		e.mu.Lock()
		if sm := e.val.Load(); sm != nil {
			e.mu.Unlock()
			return sm, nil
		}
		if s.buildHook != nil {
			s.buildHook(c)
		}
		sm := s.buildServed(snap, prevErr, c)
		s.servedBuilds.Add(1)
		// Publish only if no snapshot swap happened mid-build: a body built
		// from a retired (snapshot, downErr) pairing must not be served as
		// the new round's state. The stale build is discarded and the loop
		// re-resolves against the current round.
		s.serveMu.Lock()
		fresh := gen == s.serveGen
		if fresh {
			e.val.Store(sm)
		}
		s.serveMu.Unlock()
		e.mu.Unlock()
		if fresh {
			return sm, nil
		}
	}
}

// errStaleServe reports a served-base lookup for a round the server has
// already aggregated past (synchronous mode) or evicted from the staleness
// window (buffered mode). Matched with errors.Is so wrapping stays safe.
var errStaleServe = errors.New("fldist: served base for a stale round")

// baseAt resolves the global snapshot a raw push with the given base round
// trained from: the current model (lock-free — the common case must not
// queue the push fast path behind serveMu, where a concurrent pull may be
// running an O(model) served-cache build), or — in buffered mode — a
// retained round inside the staleness window.
func (s *Server) baseAt(round int) (*snapshot, error) {
	if snap := s.model.Load(); round == snap.round {
		return snap, nil
	}
	s.serveMu.Lock()
	defer s.serveMu.Unlock()
	// Re-read under the lock: the round may have advanced since the
	// lock-free check, moving the wanted snapshot into history.
	if snap := s.model.Load(); round == snap.round {
		return snap, nil
	}
	if rs := s.history[round]; rs != nil {
		return rs.snap, nil
	}
	return nil, errStaleServe
}

// buildServed constructs one codec variant's served model from an immutable
// snapshot, segment-parallel: the frame sizes are closed-form
// (quant.FrameBytes / quant.SegmentBytes), so the exact-size body is
// allocated up front, the envelope and frame headers written in place, and
// each chunk-aligned segment encoded by its own goroutine into its disjoint
// byte range — EF-residual add before the encode and residual fold after it
// both happen per segment, so no pass over the model is serial. The stitch
// identity (quant.EncodeSegmentInto doc, TestSegmentStitchGoldenBytes) makes
// the result byte-identical to the sequential EncodeStream build at any
// segment count and GOMAXPROCS; TestServeSegmentInvariance pins that end to
// end.
func (s *Server) buildServed(snap *snapshot, prevErr []float64, c Compression) *servedModel {
	n := len(snap.params)
	sm := &servedModel{
		round:  snap.round,
		params: make([]float64, n),
		bn:     snap.bn, // immutable snapshot slice — safe to share
	}
	next := make([]float64, n)
	bnFrame := quant.EncodeRaw(snap.bn)
	body := make([]byte, 9+quant.FrameBytes(n, c.Chunk, c.Bits)+len(bnFrame))
	copy(body, modelMagic)
	body[4] = envVersion
	binary.LittleEndian.PutUint32(body[5:9], uint32(snap.round))
	if err := quant.PutFrameHeader(body[9:9+quant.FrameHeaderSize], c.Bits, n, c.Chunk); err != nil {
		// c was validated by normalize() and n fits a frame; unreachable.
		panic(fmt.Sprintf("fldist: building served model: %v", err))
	}
	payload := body[9+quant.FrameHeaderSize : len(body)-len(bnFrame)]
	copy(body[len(body)-len(bnFrame):], bnFrame)

	encodeSegment := func(lo, hi int) {
		v := next[lo:hi]
		copy(v, snap.params[lo:hi])
		if len(prevErr) == n {
			pe := prevErr[lo:hi]
			for i := range v {
				v[i] += pe[i]
			}
		}
		blo := quant.SegmentBytes(lo, c.Chunk, c.Bits)
		bhi := quant.SegmentBytes(hi, c.Chunk, c.Bits)
		deq := sm.params[lo:hi]
		if err := quant.EncodeSegmentInto(payload[blo:bhi], v, c.Bits, c.Chunk, deq); err != nil {
			panic(fmt.Sprintf("fldist: building served model: %v", err))
		}
		for i := range v {
			v[i] -= deq[i]
		}
	}
	segs := s.buildSegments
	if segs <= 0 {
		segs = runtime.GOMAXPROCS(0)
	}
	bounds := quant.SegmentBounds(n, c.Chunk, segs)
	if len(bounds) > 2 && runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		for k := 0; k+2 < len(bounds); k++ {
			lo, hi := bounds[k], bounds[k+1]
			wg.Add(1)
			go func() {
				defer wg.Done()
				encodeSegment(lo, hi)
			}()
		}
		// The last segment runs on the calling goroutine.
		encodeSegment(bounds[len(bounds)-2], bounds[len(bounds)-1])
		wg.Wait()
	} else {
		for k := 0; k+1 < len(bounds); k++ {
			encodeSegment(bounds[k], bounds[k+1])
		}
	}
	sm.nextErr = next
	sm.body = body
	sm.codec = codecValue(c)
	sm.clen = strconv.Itoa(len(body))
	return sm
}

// bodyLimit caps one /update body at a generous multiple of the model size
// so an oversized POST cannot exhaust server memory: the largest legitimate
// body is the raw gob update (~10 bytes per float64 plus framing), well
// under 16 bytes/value.
func bodyLimit(snap *snapshot) int64 {
	return 4096 + 16*int64(len(snap.params)+len(snap.bn))
}

// pushScratch is the pooled per-request machinery of the streaming delta
// path: a byte-counting reader, a buffered reader batching small chunk reads
// off the HTTP body, and two reusable frame decoders. One Get/Put pair per
// push keeps the handler's own allocation count flat.
type pushScratch struct {
	cr countReader
	br *bufio.Reader
	pd quant.StreamDecoder
	bd quant.StreamDecoder
}

var pushScratchPool = sync.Pool{
	New: func() any { return &pushScratch{br: bufio.NewReaderSize(nil, 32<<10)} },
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	//lint:ignore determinism admit-latency stats only; never reaches folded or replayed state
	start := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if r.Header.Get("Content-Type") == contentTypeDelta {
		s.handleDeltaUpdate(w, r, start)
		return
	}
	snap := s.model.Load()
	cr := &countReader{r: http.MaxBytesReader(w, r.Body, bodyLimit(snap))}
	defer func() { s.bytesInRaw.Add(cr.n) }()
	var u Update
	if err := gob.NewDecoder(cr).Decode(&u); err != nil {
		http.Error(w, fmt.Sprintf("bad update: %v", err), http.StatusBadRequest)
		return
	}
	if !s.admissibleRound(w, u.Round, snap) {
		return
	}
	if len(u.Params) != len(snap.params) || len(u.BN) != len(snap.bn) {
		http.Error(w, "shape mismatch", http.StatusBadRequest)
		return
	}
	if err := checkWeight(u.Weight); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, vec := range [][]float64{u.Params, u.BN} {
		for _, x := range vec {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				http.Error(w, "non-finite value in update", http.StatusBadRequest)
				return
			}
		}
	}
	// The gob decoder already allocated the vectors; hand them to the shards
	// directly (no pooled buffer to release).
	buf := &updateBuf{params: u.Params, bn: u.BN}
	if s.async {
		base, err := s.baseAt(u.Round)
		if err != nil {
			s.rejectStale(w, u.Round)
			return
		}
		s.finishUpdateAsync(w, u.ClientID, u.Round, u.Weight, buf, false,
			[]*atomic.Int64{&s.updatesRaw}, base.params, base.bn, start, nil)
		return
	}
	s.finishUpdate(w, u.ClientID, u.Round, u.Weight, buf, false, []*atomic.Int64{&s.updatesRaw}, start)
}

// admissibleRound runs the cheap pre-admission round check of both push
// paths against the lock-free snapshot (the admission registry re-checks
// authoritatively): in synchronous mode the update must carry the current
// round; in buffered mode its base round must sit inside the staleness
// window. A failed check answers 409 and reports false.
func (s *Server) admissibleRound(w http.ResponseWriter, round int, snap *snapshot) bool {
	if s.async {
		if d := snap.round - round; d < 0 || d > s.maxStale {
			s.rejectStale(w, round)
			return false
		}
		return true
	}
	if round != snap.round {
		http.Error(w, fmt.Sprintf("stale round %d, server at %d", round, snap.round),
			http.StatusConflict)
		return false
	}
	return true
}

// rejectStale answers 409 for a buffered-mode push outside the staleness
// window and charges the stale-rejection counter (a client hearing this has
// wasted the training pass).
func (s *Server) rejectStale(w http.ResponseWriter, round int) {
	s.staleRejected.Add(1)
	http.Error(w, fmt.Sprintf("stale round %d, outside the staleness window", round),
		http.StatusConflict)
}

// handleDeltaUpdate accepts a compressed push: quantized deltas that the
// server stream-decodes chunk-by-chunk — O(chunk) transient memory, never
// the whole wire body — and applies to the exact base it served this round
// at the same codec parameters, feeding the reconstructed full vectors into
// the same aggregation path as raw updates.
//
// Unlike the raw path, no MaxBytesReader is needed: every read is
// closed-form bounded before it happens — the fixed 21-byte envelope header,
// two 14-byte frame headers, and chunk payloads whose sizes follow from the
// frame's value count, which is validated against the model shape before any
// payload byte is read. A body longer than its frames fails the trailing-
// bytes probe with 400; the excess is never buffered.
func (s *Server) handleDeltaUpdate(w http.ResponseWriter, r *http.Request, start time.Time) {
	snap := s.model.Load()
	sc := pushScratchPool.Get().(*pushScratch)
	sc.cr = countReader{r: r.Body}
	sparse := false // set once the params frame turns out to be sparse
	defer func() {
		s.bytesInComp.Add(sc.cr.n)
		if sparse {
			s.bytesInSparse.Add(sc.cr.n)
		}
		sc.br.Reset(nil) // drop the request body reference before pooling
		pushScratchPool.Put(sc)
	}()

	// The envelope header is read straight off the body, not through the
	// buffered reader: with a WAL attached the frame bytes after it are teed
	// into the admission capture, and the tee must see every byte the
	// decoders consume — bufio read-ahead that started before the tee would
	// smuggle frame bytes past it.
	var hdr [21]byte
	if _, err := io.ReadFull(&sc.cr, hdr[:]); err != nil {
		http.Error(w, fmt.Sprintf("fldist: update envelope header: %v", err), http.StatusBadRequest)
		return
	}
	if string(hdr[:4]) != updateMagic {
		http.Error(w, fmt.Sprintf("fldist: update envelope magic %q", hdr[:4]), http.StatusBadRequest)
		return
	}
	if hdr[4] != envVersion {
		http.Error(w, fmt.Sprintf("fldist: update envelope version %d, want %d", hdr[4], envVersion),
			http.StatusBadRequest)
		return
	}
	clientID := int(binary.LittleEndian.Uint32(hdr[5:9]))
	round := int(binary.LittleEndian.Uint32(hdr[9:13]))
	weight := math.Float64frombits(binary.LittleEndian.Uint64(hdr[13:21]))
	if !s.admissibleRound(w, round, snap) {
		return
	}
	if err := checkWeight(weight); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// With a WAL attached, tee the rest of the body — the wire frames,
	// verbatim — into a pooled admission capture as the decoders stream it:
	// the log's frame-form record replays them through this same handler
	// arithmetic on recovery (recover.go). ~50µs of memcpy for an 8-bit
	// frame, against the ~ms of delta capture and raw-frame encode the
	// delta-form record would cost on the same push. Speculative: rejected
	// pushes release the capture unwritten.
	// A delta-downlink client (codec negotiated with delta=1) declares its
	// codec on the push too: its training base is a chain entry in the
	// per-round base registry (servedelta.go), not a served model. Those
	// admissions skip the verbatim frame tee below — the chain is not
	// persisted across restarts, so with a WAL attached they are captured in
	// delta form instead (finishUpdateAsync), which replays without a base.
	pushComp, _, pushNeg, err := parseCodec(r.Header.Get(codecHeader))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	deltaPush := pushNeg && pushComp.Delta

	var wrec *walAdmit
	src := io.Reader(&sc.cr)
	if s.async && s.wal != nil && !deltaPush {
		wrec = s.wal.newAdmit()
		defer func() {
			if wrec != nil {
				s.wal.releaseAdmit(wrec)
			}
		}()
		src = io.TeeReader(src, appendWriter{&wrec.frames})
	}
	sc.br.Reset(src)
	br := sc.br

	dec := &sc.pd
	if err := dec.Reset(br); err != nil {
		http.Error(w, fmt.Sprintf("fldist: update params frame: %v", err), http.StatusBadRequest)
		return
	}
	if dec.IsRaw() {
		http.Error(w, "fldist: delta update must carry a quantized params frame", http.StatusBadRequest)
		return
	}
	comp, err := Compression{Bits: dec.Bits(), Chunk: dec.Chunk()}.normalize()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if dec.Len() != len(snap.params) {
		http.Error(w, "shape mismatch", http.StatusBadRequest)
		return
	}
	// The base the client trained from: for a delta-mode client, the chain
	// entry at its held round (the per-round base registry, servedelta.go);
	// otherwise the base round's served dequantized model at the same codec
	// parameters — deterministic, so recomputing on a cache miss yields the
	// same values (buffered mode looks the entry up in the retained window
	// instead).
	var baseP, baseBN []float64
	if deltaPush {
		var ok bool
		baseP, baseBN, ok = s.deltaBaseAt(pushComp, round)
		if !ok {
			// No chain (the server restarted) or the round fell out of the
			// window: the client must re-pull — landing cold on the fresh
			// chain — and retrain.
			if s.async {
				s.rejectStale(w, round)
				return
			}
			http.Error(w, fmt.Sprintf("stale round %d", round), http.StatusConflict)
			return
		}
	} else {
		sm, err := s.getServed(comp, round)
		if errors.Is(err, errStaleServe) {
			if s.async {
				s.rejectStale(w, round)
				return
			}
			http.Error(w, fmt.Sprintf("stale round %d", round), http.StatusConflict)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		baseP, baseBN = sm.params, sm.bn
	}

	buf := s.bufPool.Get().(*updateBuf)
	if dec.IsSparse() {
		// Sparse top-k frame: every unsent coordinate is exactly zero delta,
		// so reconstruction copies the base and scatter-adds the k stored
		// values; one finiteness sweep then covers the whole vector (a wire
		// scale can be hostile, so the added values are not trusted).
		sparse = true
		copy(buf.params, baseP)
		if err := dec.ApplySparse(buf.params); err != nil {
			s.bufPool.Put(buf)
			http.Error(w, fmt.Sprintf("fldist: update params frame: %v", err), http.StatusBadRequest)
			return
		}
		for _, v := range buf.params {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				s.bufPool.Put(buf)
				http.Error(w, "non-finite value in update", http.StatusBadRequest)
				return
			}
		}
	} else {
		// Stream the dense delta chunks into the pooled buffer,
		// reconstructing base+delta and rejecting non-finite results as each
		// chunk lands.
		off := 0
		for l := dec.NextLen(); l > 0; l = dec.NextLen() {
			dst := buf.params[off : off+l]
			if err := dec.Next(dst); err != nil {
				s.bufPool.Put(buf)
				http.Error(w, fmt.Sprintf("fldist: update params frame: %v", err), http.StatusBadRequest)
				return
			}
			base := baseP[off : off+l]
			for i := range dst {
				v := dst[i] + base[i]
				if math.IsNaN(v) || math.IsInf(v, 0) {
					s.bufPool.Put(buf)
					http.Error(w, "non-finite value in update", http.StatusBadRequest)
					return
				}
				dst[i] = v
			}
			off += l
		}
	}

	bnDec := &sc.bd
	if err := bnDec.Reset(br); err != nil {
		s.bufPool.Put(buf)
		http.Error(w, fmt.Sprintf("fldist: update bn frame: %v", err), http.StatusBadRequest)
		return
	}
	if bnDec.Len() != len(snap.bn) {
		s.bufPool.Put(buf)
		http.Error(w, "shape mismatch", http.StatusBadRequest)
		return
	}
	if err := bnDec.DecodeAll(buf.bn); err != nil {
		s.bufPool.Put(buf)
		http.Error(w, fmt.Sprintf("fldist: update bn frame: %v", err), http.StatusBadRequest)
		return
	}
	for i := range buf.bn {
		v := buf.bn[i] + baseBN[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			s.bufPool.Put(buf)
			http.Error(w, "non-finite value in update", http.StatusBadRequest)
			return
		}
		buf.bn[i] = v
	}
	if _, err := br.ReadByte(); err != io.EOF {
		s.bufPool.Put(buf)
		http.Error(w, "fldist: update envelope has trailing bytes", http.StatusBadRequest)
		return
	}
	// Per-form attribution: a sparse push charges the sparse series on top
	// of the compressed total, so /stats can split traffic by frame form.
	counters := []*atomic.Int64{&s.updatesComp}
	if sparse {
		counters = append(counters, &s.updatesSparse)
	}
	if s.async {
		rec := wrec
		wrec = nil // ownership passes; finishUpdateAsync releases on rejection
		s.finishUpdateAsync(w, clientID, round, weight, buf, true, counters,
			baseP, baseBN, start, rec)
		return
	}
	s.finishUpdate(w, clientID, round, weight, buf, true, counters, start)
}

// appendWriter is the tee target of the delta handler's WAL capture: an
// io.Writer appending into a pooled byte slice.
type appendWriter struct{ b *[]byte }

func (w appendWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

// checkWeight rejects non-positive and non-finite FedAvg weights. NaN
// compares false to everything, so `weight > 0` (not `<= 0`) is the shape of
// the check; one poisoned weight would corrupt the weighted average for
// every client with no recovery.
func checkWeight(w float64) error {
	if !(w > 0) || math.IsInf(w, 0) {
		return fmt.Errorf("weight must be a positive finite value")
	}
	return nil
}

// registerOutcome is the admission registry's verdict on one decoded update.
type registerOutcome int

const (
	regAdmitted     registerOutcome = iota
	regAdmittedLast                 // admitted, and this update filled the quorum
	regDuplicate
	regStale
	regQuorumFull // quorum filled, fold in flight: stale once the round advances
	regBufferFull // manual mode: admission cap reached, flusher behind — retryable, nothing to wait out
)

// register runs the small global critical section of the push path: the
// round check, the duplicate check, and the quorum count, then parks the
// decoded vectors in the shards' pending lists (O(shards) pointer appends).
// The model-sized work — decode, dequantize, base reconstruction,
// finiteness — happened before this call, outside any lock. pooled marks
// buffers leased from bufPool (released after the fold).
func (s *Server) register(clientID, round int, weight float64, buf *updateBuf, pooled bool) registerOutcome {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	snap := s.model.Load()
	if round != snap.round {
		return regStale
	}
	if s.pendingIDs[clientID] {
		s.duplicatesDropped.Add(1)
		return regDuplicate
	}
	if s.pendingN >= s.updatesPerRound {
		// Quorum already reached; the filling update's handler is folding
		// the round right now. This update is stale, but the caller waits
		// out the fold before answering so the 409 is only observable once
		// /round reports the new round — a straggler that immediately
		// re-pulls gets the fresh model, never a wasted training cycle on
		// the old one (matching the pre-shard server, whose mutex provided
		// the same ordering).
		return regQuorumFull
	}
	s.pendingIDs[clientID] = true
	s.pendingN++
	if pooled {
		s.pendingBufs = append(s.pendingBufs, buf)
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.add(contrib{clientID: clientID, weight: weight, vals: buf.params[sh.lo:sh.hi]})
	}
	s.bnShard.add(contrib{clientID: clientID, weight: weight, vals: buf.bn})
	if s.pendingN == s.updatesPerRound {
		return regAdmittedLast
	}
	return regAdmitted
}

// finishUpdate runs the transport-independent tail of both push paths:
// admission, stats attribution, the round-advance barrier when the quorum
// fills, and the HTTP verdict. pooled marks buffers leased from bufPool;
// they are returned here on the non-admitted outcomes and by advanceRound
// after the fold otherwise. counters attribute the update to its /stats
// series (the compressed total plus, for a sparse push, the sparse subset),
// charged only once the update actually counts toward the round.
func (s *Server) finishUpdate(w http.ResponseWriter, clientID, round int, weight float64,
	buf *updateBuf, pooled bool, counters []*atomic.Int64, start time.Time) {
	outcome := s.register(clientID, round, weight, buf, pooled)
	switch outcome {
	case regStale, regQuorumFull:
		if pooled {
			s.bufPool.Put(buf)
		}
		if outcome == regQuorumFull {
			s.awaitRoundAdvance(round)
		}
		http.Error(w, fmt.Sprintf("stale round %d", round), http.StatusConflict)
		return
	case regDuplicate:
		// Retry of an already-counted update (e.g. the client timed out
		// waiting for a slow 200). Acknowledge without re-counting so the
		// FedAvg weights stay correct and the client moves on.
		if pooled {
			s.bufPool.Put(buf)
		}
		w.Header().Set("X-Fldist-Duplicate", "1")
		w.WriteHeader(http.StatusOK)
		return
	}
	for _, ctr := range counters {
		ctr.Add(1)
	}
	//lint:ignore determinism latency histogram only; /stats is observability, not state
	s.admitLat.record(time.Since(start))
	if outcome == regAdmittedLast {
		s.advanceRound()
	}
	w.WriteHeader(http.StatusOK)
}

// registerAsync is buffered mode's admission registry: the authoritative
// staleness-window check, the per-(baseRound, client) duplicate check, the
// buffer count, and the shard appends, all under pendMu. The contribution's
// effective weight is discounted here — weight/(1+staleness) — with the
// staleness the registry observes, which is stable until the next commit.
// baseP/baseBN are the exact base vectors the update trained from (retained
// snapshot or served model — immutable either way); each shard keeps its
// range of them so the commit can fold the update as a delta. It returns the
// outcome plus the round the registry observed, so a quorum-full caller can
// wait out the in-flight commit and retry. wrec, when non-nil, is the
// update's WAL capture (delta already computed by the caller, outside any
// lock): on admission its sequence number is reserved here — inside pendMu,
// where logical order is decided, so the log's file order matches admission
// order — along with the observed round and effective weight.
func (s *Server) registerAsync(clientID, baseRound int, weight float64, buf *updateBuf,
	pooled bool, baseP, baseBN []float64, wrec *walAdmit) (registerOutcome, int) {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	snap := s.model.Load()
	stale := snap.round - baseRound
	if stale < 0 || stale > s.maxStale {
		return regStale, snap.round
	}
	if s.admitted[baseRound][clientID] {
		s.duplicatesDropped.Add(1)
		return regDuplicate, snap.round
	}
	if s.committing || (!s.manual && s.pendingN >= s.bufferK) {
		// A commit is folding right now: the buffer filled (auto mode) or the
		// edge's flusher froze it (manual mode). Unlike the synchronous
		// server this is not a terminal verdict — the update may still be
		// inside the next round's staleness window, so the caller waits out
		// the commit and re-registers. Manual mode never fills-and-folds on
		// the admission path, so the bufferK threshold does not gate it —
		// manualCap below does, so a wedged flusher cannot let admissions
		// buffer without bound.
		return regQuorumFull, snap.round
	}
	if s.manual && s.manualCap > 0 && s.pendingN >= s.manualCap {
		// Only the flusher drains a manual-mode buffer, and it is behind —
		// wedged against an unreachable upstream, or mid-resync. No commit
		// is in flight to wait out, so the caller answers the retryable
		// verdict immediately instead of spinning.
		return regBufferFull, snap.round
	}
	set := s.admitted[baseRound]
	if set == nil {
		set = map[int]bool{}
		s.admitted[baseRound] = set
	}
	set[clientID] = true
	s.pendingN++
	if s.pendingN == 1 {
		//lint:ignore determinism admission age clock paces edge flushes; folded bytes are unaffected
		s.oldestAdmit.Store(time.Now().UnixNano())
	}
	if pooled {
		s.pendingBufs = append(s.pendingBufs, buf)
	}
	effW := weight / float64(1+stale)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.add(contrib{clientID: clientID, baseRound: baseRound, weight: effW,
			vals: buf.params[sh.lo:sh.hi], base: baseP[sh.lo:sh.hi]})
	}
	s.bnShard.add(contrib{clientID: clientID, baseRound: baseRound, weight: effW,
		vals: buf.bn, base: baseBN})
	s.pendingW += effW
	s.bufferedNow.Add(1)
	s.stalenessHist[stale].Add(1)
	if wrec != nil {
		wrec.seq = s.wal.reserve()
		wrec.admitRound = snap.round
		wrec.effW = effW
	}
	if !s.manual && s.pendingN == s.bufferK {
		return regAdmittedLast, snap.round
	}
	return regAdmitted, snap.round
}

// finishUpdateAsync is buffered mode's counterpart of finishUpdate:
// admission with the staleness window, the commit barrier when the buffer
// fills, and the HTTP verdict. A registration racing an in-flight commit
// waits the commit out and retries — the update may still be admissible one
// round later — instead of answering a premature 409.
func (s *Server) finishUpdateAsync(w http.ResponseWriter, clientID, baseRound int, weight float64,
	buf *updateBuf, pooled bool, counters []*atomic.Int64, baseP, baseBN []float64, start time.Time,
	wrec *walAdmit) {
	// With a WAL attached and no wire-frame capture teed off by the caller
	// (the raw-gob path has no frames to tee), capture the update's delta
	// against its base here — outside every lock, while this handler still
	// owns buf — so the log can replay the contribution bit-identically as
	// (delta, zero base): the fold only ever consumes weight·(vals−base),
	// and vals−0 ≡ delta. Speculative on the rare non-admitted outcomes; the
	// capture is pooled either way.
	if s.wal != nil && wrec == nil {
		wrec = s.wal.newAdmit()
		if wrec.dp == nil {
			wrec.dp = make([]float64, len(baseP))
			wrec.db = make([]float64, len(baseBN))
		}
		subVec(wrec.dp, buf.params, baseP)
		subVec(wrec.db, buf.bn, baseBN)
	}
	if wrec != nil {
		wrec.clientID = clientID
		wrec.baseRound = baseRound
		wrec.comp = pooled
	}
	for {
		outcome, observed := s.registerAsync(clientID, baseRound, weight, buf, pooled, baseP, baseBN, wrec)
		switch outcome {
		case regQuorumFull:
			s.awaitRoundAdvance(observed)
			if s.model.Load().round == observed {
				// The commit never landed within the deadline; fail the push
				// rather than spin. This is a server-side stall, not a
				// staleness-window violation: the update may be perfectly
				// fresh, so staleRejected is not charged and the retry
				// header tells the client to re-push the same body instead
				// of discarding the training pass.
				if pooled {
					s.bufPool.Put(buf)
				}
				if wrec != nil {
					s.wal.releaseAdmit(wrec)
				}
				w.Header().Set(retryHeader, "1")
				http.Error(w, fmt.Sprintf("round %d commit still in flight, retry", observed),
					http.StatusConflict)
				return
			}
			continue
		case regStale:
			if pooled {
				s.bufPool.Put(buf)
			}
			if wrec != nil {
				s.wal.releaseAdmit(wrec)
			}
			s.rejectStale(w, baseRound)
			return
		case regBufferFull:
			// Not a staleness verdict (staleRejected stays uncharged): the
			// buffer is full because the tier's flusher is behind. The retry
			// header tells the client to re-push the same body later instead
			// of discarding the training pass.
			if pooled {
				s.bufPool.Put(buf)
			}
			if wrec != nil {
				s.wal.releaseAdmit(wrec)
			}
			w.Header().Set(retryHeader, "1")
			http.Error(w, "update buffer full, retry", http.StatusConflict)
			return
		case regDuplicate:
			if pooled {
				s.bufPool.Put(buf)
			}
			if wrec != nil {
				s.wal.releaseAdmit(wrec)
			}
			w.Header().Set("X-Fldist-Duplicate", "1")
			w.WriteHeader(http.StatusOK)
			return
		}
		for _, ctr := range counters {
			ctr.Add(1)
		}
		//lint:ignore determinism latency histogram only; /stats is observability, not state
		s.admitLat.record(time.Since(start))
		if wrec != nil {
			// Write this admission's record before a possible commit: the
			// commit record's ordered append waits for every earlier
			// sequence number, ours included, and this goroutine is the one
			// that runs the commit below.
			_ = s.wal.appendAdmit(wrec) // failure warns once and sticks; serving continues
		}
		if outcome == regAdmittedLast {
			s.commitBuffer()
		}
		if s.manual {
			s.signalFlush()
		}
		w.WriteHeader(http.StatusOK)
		return
	}
}

// awaitRoundAdvance briefly blocks a quorum-raced update until the
// in-flight fold publishes the next snapshot, so its 409 is never observed
// while /round still reports the old round. The fold is O(model) work in
// another handler — milliseconds — but a deadline bounds the wait anyway.
func (s *Server) awaitRoundAdvance(round int) {
	//lint:ignore determinism deadline bounds a wait; the published snapshot is the same either way
	deadline := time.Now().Add(2 * time.Second)
	//lint:ignore determinism deadline bounds a wait; the published snapshot is the same either way
	for s.model.Load().round == round && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
}

// advanceRound is the round barrier: it folds every shard's pending
// contributions into a fresh snapshot (shards fold concurrently, each under
// its own lock, each in clientID order — see shard.foldInto for the
// determinism argument), commits the downlink error-feedback residuals of
// the codec variants served this round, publishes the new snapshot, and
// resets the admission registry. Only the handler whose update filled the
// quorum runs this; concurrent registrations observe either the full old
// round (and get 409) or the fresh empty one.
func (s *Server) advanceRound() {
	old := s.model.Load()
	next := &snapshot{
		round:  old.round + 1,
		params: make([]float64, len(old.params)),
		bn:     make([]float64, len(old.bn)),
	}
	s.foldShards(
		func(sh *shard) { sh.foldInto(next.params) },
		func() { s.bnShard.foldInto(next.bn) },
	)

	// Commit the downlink error-feedback residuals of the codec variants
	// actually served this round (bounded by maxCodecVariants), replacing
	// last round's state, and drop the round's served cache. The snapshot
	// swap happens inside both serveMu and pendMu so cache builders and
	// update registrations each observe a consistent round; the generation
	// bump voids any build still in flight against the old state.
	s.serveMu.Lock()
	served := s.collectServedLocked(old.round)
	downErr := make(map[Compression][]float64, len(served))
	for c, sm := range served {
		downErr[c] = sm.nextErr
	}
	s.downErr = downErr
	s.setServedLocked(map[Compression]*servedEntry{})
	s.serveGen++

	s.pendMu.Lock()
	if s.wal != nil {
		s.logCommitLocked(next)
	}
	s.model.Store(next)
	clear(s.pendingIDs)
	s.resetPendingLocked()
	s.pendMu.Unlock()
	s.serveMu.Unlock()

	s.roundsCompleted.Add(1)
}

// logCommitLocked appends the commit record — the new snapshot plus the
// downlink error-feedback residual of every codec variant carried forward —
// to the WAL, before the snapshot is published: log-then-publish is what
// makes a served round always recoverable. Caller holds serveMu and pendMu
// (the reservation under pendMu orders the record after every admission it
// folded; the record's fsync seals them all). A write failure warns once and
// degrades the server to in-memory durability; it never blocks the commit.
func (s *Server) logCommitLocked(next *snapshot) {
	c := walCommit{round: next.round, params: next.params, bn: next.bn}
	for comp, res := range s.downErr {
		c.downErr = append(c.downErr, walVariantErr{comp: comp, residual: res})
	}
	// The record must be byte-identical across runs for replay to reconverge;
	// map iteration order is not.
	sort.Slice(c.downErr, func(i, j int) bool {
		return c.downErr[i].comp.less(c.downErr[j].comp)
	})
	_ = s.wal.appendCommit(s.wal.reserve(), c)
}

// subVec writes a−b into dst, element-wise.
func subVec(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// collectServedLocked gathers the codec variants actually built for the
// given round out of the entry map — an entry whose build is still in
// flight (val unset) has served nobody and is skipped; the generation bump
// at retire makes that build discard itself. Caller holds serveMu.
func (s *Server) collectServedLocked(round int) map[Compression]*servedModel {
	out := make(map[Compression]*servedModel, len(s.served))
	for c, e := range s.served {
		if sm := e.val.Load(); sm != nil && sm.round == round {
			out[c] = sm
		}
	}
	return out
}

// retireRoundLocked is the serve-plane half of a buffered-mode round
// transition, shared by commitBuffer and the edge tier's adopt: it advances
// the downlink error-feedback chain of the variants served in the retiring
// round (variants that skipped the round — buffered commits can outpace a
// slow puller — keep their previous residual instead of losing the chain;
// if that ever grows the map past the per-round variant bound, the unserved
// entries are the ones dropped), retains the retiring round's snapshot and
// served cache for stale-push reconstruction, evicts rounds that fell out
// of the staleness window, resets the served map, and voids in-flight
// builds via the generation bump. Caller holds serveMu.
func (s *Server) retireRoundLocked(old *snapshot, nextRound int) {
	served := s.collectServedLocked(old.round)
	for c, sm := range served {
		s.downErr[c] = sm.nextErr
	}
	if len(s.downErr) > maxCodecVariants {
		for c := range s.downErr {
			if _, ok := served[c]; !ok {
				delete(s.downErr, c)
			}
		}
	}
	s.history[old.round] = &roundState{snap: old, served: served}
	for r := range s.history {
		if r < nextRound-s.maxStale {
			delete(s.history, r)
		}
	}
	s.setServedLocked(map[Compression]*servedEntry{})
	s.serveGen++
}

// setServedLocked replaces the served-variant map and publishes the new map
// to the lock-free reader view. Caller holds serveMu; the map passed in must
// never be mutated afterwards — readers hold it without a lock.
func (s *Server) setServedLocked(m map[Compression]*servedEntry) {
	s.served = m
	s.servedRO.Store(&m)
}

// foldShards runs fold over every parameter shard — concurrently when the
// runtime can actually parallelize; on a single-P runtime the goroutine
// fan-out is pure overhead and an inline loop produces the same
// (order-independent) result — with the small BN fold on the calling
// goroutine either way.
func (s *Server) foldShards(fold func(*shard), foldBN func()) {
	if len(s.shards) > 1 && runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		for i := range s.shards {
			sh := &s.shards[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				fold(sh)
			}()
		}
		foldBN()
		wg.Wait()
	} else {
		for i := range s.shards {
			fold(&s.shards[i])
		}
		foldBN()
	}
}

// resetPendingLocked recycles the folded round's pooled update buffers into
// bufPool and zeroes the buffer count, its weight sum, and the in-flight
// commit mark. Caller holds pendMu, and the fold must already have drained
// the shards' references to these buffers; truncating keeps the slice's
// capacity for the next round's appends.
func (s *Server) resetPendingLocked() {
	s.pendingN = 0
	s.pendingW = 0
	s.committing = false
	s.bufferedNow.Store(0)
	s.oldestAdmit.Store(0)
	for i, b := range s.pendingBufs {
		s.bufPool.Put(b)
		s.pendingBufs[i] = nil
	}
	s.pendingBufs = s.pendingBufs[:0]
}

// commitBuffer is buffered mode's round barrier: it folds the bufferK
// buffered contributions — each a staleness-discounted delta against its own
// base round — onto the current model (shards fold concurrently, each in
// (baseRound, clientID) order; see shard.foldAsyncInto for the determinism
// argument), retains the committed round's snapshot and served cache for the
// staleness window, evicts state that fell out of the window, and publishes
// the new snapshot. Only the handler whose update filled the buffer runs
// this; racing registrations observe either the full old buffer (and wait
// the commit out) or the fresh empty one.
func (s *Server) commitBuffer() {
	old := s.model.Load()
	next := &snapshot{
		round:  old.round + 1,
		params: make([]float64, len(old.params)),
		bn:     make([]float64, len(old.bn)),
	}
	s.foldShards(
		func(sh *shard) { sh.foldAsyncInto(next.params, old.params) },
		func() { s.bnShard.foldAsyncInto(next.bn, old.bn) },
	)

	s.serveMu.Lock()
	s.retireRoundLocked(old, next.round)

	s.pendMu.Lock()
	if s.wal != nil {
		s.logCommitLocked(next)
	}
	s.model.Store(next)
	for r := range s.admitted {
		if r < next.round-s.maxStale {
			delete(s.admitted, r)
		}
	}
	s.resetPendingLocked()
	s.pendMu.Unlock()
	s.serveMu.Unlock()

	s.roundsCompleted.Add(1)
}

// handleStats serves the traffic and progress counters as JSON. Counters are
// atomics: a stats poll never blocks — or is blocked by — in-flight
// aggregation.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// Stats returns a snapshot of the server's traffic and progress counters.
// It reads only atomics and the immutable model snapshot — it never blocks
// in-flight pushes or pulls.
func (s *Server) Stats() Stats {
	p50, p99 := s.admitLat.percentiles()
	pullP50, pullP99 := s.pullLat.percentiles()
	st := Stats{
		Round:              s.model.Load().round,
		RoundsCompleted:    int(s.roundsCompleted.Load()),
		DuplicatesDropped:  int(s.duplicatesDropped.Load()),
		Shards:             s.nShards,
		BytesInRaw:         s.bytesInRaw.Load(),
		BytesInCompressed:  s.bytesInComp.Load(),
		BytesOutRaw:        s.bytesOutRaw.Load(),
		BytesOutCompressed: s.bytesOutComp.Load(),
		UpdatesRaw:         s.updatesRaw.Load(),
		UpdatesCompressed:  s.updatesComp.Load(),
		AdmitP50Micros:     p50,
		AdmitP99Micros:     p99,
		PullP50Micros:      pullP50,
		PullP99Micros:      pullP99,
		ServedBuilds:       s.servedBuilds.Load(),
		BytesInSparse:      s.bytesInSparse.Load(),
		UpdatesSparse:      s.updatesSparse.Load(),
		BytesOutDelta:      s.bytesOutDelta.Load(),
		BytesOutCold:       s.bytesOutCold.Load(),
		DeltaPulls:         s.deltaPulls.Load(),
		ColdPulls:          s.coldPulls.Load(),
	}
	if s.wal != nil {
		st.WAL = s.wal.stats()
	}
	if s.async {
		b := &BufferedStats{
			BufferSize:    s.bufferK,
			MaxStaleness:  s.maxStale,
			StaleRejected: s.staleRejected.Load(),
			StalenessHist: make([]int64, len(s.stalenessHist)),
		}
		for i := range b.StalenessHist {
			b.StalenessHist[i] = s.stalenessHist[i].Load()
		}
		st.Buffered = b
	}
	return st
}

// Round returns the server's current round. Lock-free.
func (s *Server) Round() int { return s.model.Load().round }

// RoundsCompleted returns how many aggregations have happened. Lock-free.
func (s *Server) RoundsCompleted() int { return int(s.roundsCompleted.Load()) }

// DuplicatesDropped returns how many same-round retries were idempotently
// ignored. Lock-free.
func (s *Server) DuplicatesDropped() int { return int(s.duplicatesDropped.Load()) }

// Snapshot returns a copy of the current global parameters and BN stats.
func (s *Server) Snapshot() ([]float64, []float64) {
	snap := s.model.Load()
	return append([]float64(nil), snap.params...), append([]float64(nil), snap.bn...)
}

// ListenAndServe runs the parameter server on addr until ctx is canceled,
// then shuts the HTTP server down gracefully (in-flight pulls and pushes
// finish; new connections are refused). It returns nil on a clean
// ctx-triggered shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fldist: listen: %w", err)
	}
	return s.Serve(ctx, ln)
}

// Serve runs the parameter server on an existing listener until ctx is
// canceled, then shuts down gracefully. The listener is closed on return,
// and so is the server (Close — the WAL is released for a successor).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer s.Close()
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("fldist: shutdown: %w", err)
		}
		<-errc // drain the ErrServerClosed from Serve
		return nil
	case err := <-errc:
		return fmt.Errorf("fldist: serve: %w", err)
	}
}

// Close releases the server's durable resources (the WAL and its lock — the
// handoff signal for a waiting successor) and accounts for what a stop at
// this instant abandons: a non-empty admission buffer is work clients
// already got a 200 for. With a WAL in buffered mode every such update is in
// the log and RecoverServer replays it; in every other configuration the
// buffered state dies with the process and the close warns with the count,
// so operators can tell a clean drain from a lossy stop. Serve calls Close
// on the way out; call it directly when the handlers are mounted on an
// external mux. Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.pendMu.Lock()
		n := s.pendingN
		s.pendMu.Unlock()
		if n > 0 {
			switch {
			case s.wal != nil && s.async:
				logged := s.wal.uncommitted.Load()
				if logged == int64(n) {
					s.warn("fldist: closing with %d buffered update(s) uncommitted — all logged; RecoverServer replays them", n)
				} else {
					s.warn("fldist: closing with %d buffered update(s) uncommitted but only %d in the WAL (write failures?) — the missing ones are lost; their clients must re-push", n, logged)
				}
			case s.wal != nil:
				s.warn("fldist: closing with %d update(s) of an unfilled quorum — sync mode logs commits only; their clients must re-push after recovery", n)
			default:
				s.warn("fldist: closing with %d buffered update(s) pending and no WAL — they are lost; their clients must re-push", n)
			}
		}
		if s.wal != nil {
			s.closeErr = s.wal.Close()
		}
	})
	return s.closeErr
}
