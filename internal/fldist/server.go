// Package fldist provides a real distributed transport for the federated
// training loop: an HTTP parameter server speaking gob-encoded model blobs,
// and a client that pulls the global model, trains locally (PGD adversarial
// training), and pushes weighted updates. Everything else in this repository
// simulates federation in-process for experimental control; this package is
// the deployment path a downstream user of the library would run on actual
// edge devices, with the same FedAvg/partial-average semantics.
package fldist

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"fedprophet/internal/fl"
)

// ModelBlob is the wire format of the global model state.
type ModelBlob struct {
	Round  int
	Params []float64
	BN     []float64
}

// Update is one client's contribution for a round.
type Update struct {
	ClientID int
	Round    int
	Weight   float64 // FedAvg weight qk (local dataset size)
	Params   []float64
	BN       []float64
}

// Server is a synchronous FedAvg parameter server: it collects
// UpdatesPerRound client updates for the current round, aggregates them with
// data-size weighting, and advances the round. Late or mismatched-round
// updates are rejected with 409 so clients re-pull.
type Server struct {
	mu              sync.Mutex
	round           int
	params          []float64
	bn              []float64
	updatesPerRound int

	pendingParams [][]float64
	pendingBN     [][]float64
	pendingW      []float64
	// pendingIDs tracks which clients already contributed to the current
	// round, so a client that retries after a slow 200 cannot be
	// double-counted in the FedAvg weights. The first update wins; repeats
	// are acknowledged idempotently.
	pendingIDs map[int]bool

	// RoundsCompleted counts aggregations, exposed for tests/monitoring.
	roundsCompleted int
	// duplicatesDropped counts idempotently ignored retries.
	duplicatesDropped int
}

// NewServer creates a parameter server seeded with the initial global model.
func NewServer(initParams, initBN []float64, updatesPerRound int) *Server {
	if updatesPerRound < 1 {
		panic("fldist: updatesPerRound must be ≥ 1")
	}
	return &Server{
		params:          append([]float64(nil), initParams...),
		bn:              append([]float64(nil), initBN...),
		updatesPerRound: updatesPerRound,
		pendingIDs:      map[int]bool{},
	}
}

// Handler returns the HTTP routes of the parameter server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/round", s.handleRound)
	mux.HandleFunc("/update", s.handleUpdate)
	return mux
}

// handleRound serves just the current round number, so clients waiting out a
// synchronous aggregation can poll cheaply instead of re-downloading the
// whole model blob.
func (s *Server) handleRound(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintf(w, "%d", s.Round())
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	blob := ModelBlob{
		Round:  s.round,
		Params: append([]float64(nil), s.params...),
		BN:     append([]float64(nil), s.bn...),
	}
	s.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var u Update
	if err := gob.NewDecoder(r.Body).Decode(&u); err != nil {
		http.Error(w, fmt.Sprintf("bad update: %v", err), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if u.Round != s.round {
		http.Error(w, fmt.Sprintf("stale round %d, server at %d", u.Round, s.round),
			http.StatusConflict)
		return
	}
	if len(u.Params) != len(s.params) || len(u.BN) != len(s.bn) {
		http.Error(w, "shape mismatch", http.StatusBadRequest)
		return
	}
	if u.Weight <= 0 {
		http.Error(w, "non-positive weight", http.StatusBadRequest)
		return
	}
	if s.pendingIDs[u.ClientID] {
		// Retry of an already-counted update (e.g. the client timed out
		// waiting for a slow 200). Acknowledge without re-counting so the
		// FedAvg weights stay correct and the client moves on.
		s.duplicatesDropped++
		w.Header().Set("X-Fldist-Duplicate", "1")
		w.WriteHeader(http.StatusOK)
		return
	}
	s.pendingIDs[u.ClientID] = true
	s.pendingParams = append(s.pendingParams, u.Params)
	s.pendingBN = append(s.pendingBN, u.BN)
	s.pendingW = append(s.pendingW, u.Weight)
	if len(s.pendingParams) >= s.updatesPerRound {
		s.params = fl.WeightedAverage(s.pendingParams, s.pendingW)
		if len(s.bn) > 0 {
			s.bn = fl.WeightedAverage(s.pendingBN, s.pendingW)
		}
		s.pendingParams, s.pendingBN, s.pendingW = nil, nil, nil
		s.pendingIDs = map[int]bool{}
		s.round++
		s.roundsCompleted++
	}
	w.WriteHeader(http.StatusOK)
}

// Round returns the server's current round.
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// RoundsCompleted returns how many aggregations have happened.
func (s *Server) RoundsCompleted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.roundsCompleted
}

// DuplicatesDropped returns how many same-round retries were idempotently
// ignored.
func (s *Server) DuplicatesDropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duplicatesDropped
}

// Snapshot returns a copy of the current global parameters and BN stats.
func (s *Server) Snapshot() ([]float64, []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.params...), append([]float64(nil), s.bn...)
}

// ListenAndServe runs the parameter server on addr until ctx is canceled,
// then shuts the HTTP server down gracefully (in-flight pulls and pushes
// finish; new connections are refused). It returns nil on a clean
// ctx-triggered shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fldist: listen: %w", err)
	}
	return s.Serve(ctx, ln)
}

// Serve runs the parameter server on an existing listener until ctx is
// canceled, then shuts down gracefully. The listener is closed on return.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("fldist: shutdown: %w", err)
		}
		<-errc // drain the ErrServerClosed from Serve
		return nil
	case err := <-errc:
		return fmt.Errorf("fldist: serve: %w", err)
	}
}
