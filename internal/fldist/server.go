// Package fldist provides a real distributed transport for the federated
// training loop: an HTTP parameter server and a client that pulls the global
// model, trains locally (PGD adversarial training), and pushes weighted
// updates. Everything else in this repository simulates federation
// in-process for experimental control; this package is the deployment path a
// downstream user of the library would run on actual edge devices, with the
// same FedAvg/partial-average semantics.
//
// Two wire protocols coexist and are negotiated per client (docs/WIRE.md):
//
//   - Raw: gob-encoded ModelBlob / Update bodies with full-precision
//     float64 parameters — the original protocol, kept as the fallback so
//     old clients interoperate.
//   - Compressed deltas: the client pulls a chunk-quantized global model
//     (binary quant frames) and pushes a quantized *delta* against that
//     pulled base, carrying the quantization residual into its next round's
//     delta (error feedback) so compression error does not accumulate in
//     the global model. The server dequantizes, reconstructs base+delta,
//     and feeds the result into the same weighted average as raw updates —
//     a mixed fleet aggregates correctly.
//
// GET /stats exposes bytes-on-wire counters split raw vs compressed.
package fldist

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"fedprophet/internal/fl"
	"fedprophet/internal/quant"
)

// ModelBlob is the wire format of the global model state.
type ModelBlob struct {
	Round  int
	Params []float64
	BN     []float64
}

// Update is one client's contribution for a round.
type Update struct {
	ClientID int
	Round    int
	Weight   float64 // FedAvg weight qk (local dataset size)
	Params   []float64
	BN       []float64
}

// Server is a synchronous FedAvg parameter server: it collects
// UpdatesPerRound client updates for the current round, aggregates them with
// data-size weighting, and advances the round. Late or mismatched-round
// updates are rejected with 409 so clients re-pull.
type Server struct {
	mu              sync.Mutex
	round           int
	params          []float64
	bn              []float64
	updatesPerRound int

	pendingParams [][]float64
	pendingBN     [][]float64
	pendingW      []float64
	// pendingIDs tracks which clients already contributed to the current
	// round, so a client that retries after a slow 200 cannot be
	// double-counted in the FedAvg weights. The first update wins; repeats
	// are acknowledged idempotently.
	pendingIDs map[int]bool

	// RoundsCompleted counts aggregations, exposed for tests/monitoring.
	roundsCompleted int
	// duplicatesDropped counts idempotently ignored retries.
	duplicatesDropped int

	// served caches, per (bits, chunk) requested this round, the encoded
	// compressed model body and the dequantized base the clients actually
	// received — the base deltas must be applied to. Building an entry is a
	// pure function of (global model, downErr, codec params), so a cache
	// miss recomputes identical bytes. The cache is dropped when the round
	// advances.
	served map[Compression]*servedModel
	// downErr is the downlink error-feedback state, per codec parameters:
	// the residual of quantizing the global model for the last served
	// round, folded into the next round's served model so pull-side
	// compression error cancels over rounds instead of re-truncating the
	// model to the quantization grid every round. It is committed from the
	// served cache when the round advances and holds only the codec
	// variants actually used that round, so client-supplied (bits, chunk)
	// pairs cannot grow server state without bound.
	downErr map[Compression][]float64

	// Traffic counters (model-plane bodies only; see Stats).
	bytesInRaw, bytesInComp   int64
	bytesOutRaw, bytesOutComp int64
	updatesRaw, updatesComp   int64
}

// servedModel is one round's compressed pull body, its exact client-visible
// (dequantized) parameter values, and the downlink residual to carry into
// the next round if this round commits.
type servedModel struct {
	body    []byte
	params  []float64
	bn      []float64
	nextErr []float64
}

// maxCodecVariants bounds how many distinct (bits, chunk) parameter sets
// the server will serve within one round. Each variant costs a few
// model-sized buffers; without a bound, a client cycling through chunk
// values could grow server memory without limit.
const maxCodecVariants = 8

// NewServer creates a parameter server seeded with the initial global model.
func NewServer(initParams, initBN []float64, updatesPerRound int) *Server {
	if updatesPerRound < 1 {
		panic("fldist: updatesPerRound must be ≥ 1")
	}
	return &Server{
		params:          append([]float64(nil), initParams...),
		bn:              append([]float64(nil), initBN...),
		updatesPerRound: updatesPerRound,
		pendingIDs:      map[int]bool{},
		served:          map[Compression]*servedModel{},
		downErr:         map[Compression][]float64{},
	}
}

// Handler returns the HTTP routes of the parameter server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/model", s.handleModel)
	mux.HandleFunc("/round", s.handleRound)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// handleRound serves just the current round number, so clients waiting out a
// synchronous aggregation can poll cheaply instead of re-downloading the
// whole model blob.
func (s *Server) handleRound(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintf(w, "%d", s.Round())
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	comp, compressed, err := parseCodec(r.Header.Get(codecHeader))
	if err != nil {
		// A client that asked for compression we cannot parse must hear
		// about it rather than silently receive a gob blob it may not
		// expect.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if compressed {
		s.mu.Lock()
		if _, known := s.served[comp]; !known && len(s.served) >= maxCodecVariants {
			s.mu.Unlock()
			http.Error(w, fmt.Sprintf("fldist: more than %d codec variants in one round", maxCodecVariants),
				http.StatusBadRequest)
			return
		}
		sm := s.servedModelLocked(comp)
		body := sm.body
		s.bytesOutComp += int64(len(body))
		s.mu.Unlock()
		w.Header().Set(codecHeader, codecValue(comp))
		w.Header().Set("Content-Type", contentTypeModel)
		_, _ = w.Write(body)
		return
	}
	s.mu.Lock()
	blob := ModelBlob{
		Round:  s.round,
		Params: append([]float64(nil), s.params...),
		BN:     append([]float64(nil), s.bn...),
	}
	s.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	s.bytesOutRaw += int64(buf.Len())
	s.mu.Unlock()
	w.Header().Set("Content-Type", contentTypeGob)
	_, _ = w.Write(buf.Bytes())
}

// servedModelLocked returns (building on first use this round) the
// compressed pull body for the given codec parameters and the exact
// client-visible base values it exposes. Parameters are chunk-quantized; the
// BatchNorm statistics travel as a raw frame — they are a few dozen values
// whose distortion (a running variance crushed toward zero) destabilizes
// normalization out of all proportion to the bytes saved. Callers must hold
// s.mu.
func (s *Server) servedModelLocked(c Compression) *servedModel {
	if sm, ok := s.served[c]; ok {
		return sm
	}
	// Downlink error feedback: quantize the global model plus the residual
	// left over from the previous round served at these codec parameters.
	// The residual itself is only *read* here — the new one (nextErr) is
	// committed when the round advances — so rebuilding within a round is
	// idempotent and every participant sees the same base.
	v := append([]float64(nil), s.params...)
	if e := s.downErr[c]; len(e) == len(v) {
		for i := range v {
			v[i] += e[i]
		}
	}
	qp := quant.QuantizeChunks(v, c.Bits, c.Chunk)
	sm := &servedModel{
		body:   encodeModelEnvelope(s.round, quant.Encode(qp), quant.EncodeRaw(s.bn)),
		params: qp.Dequantize(),
		bn:     append([]float64(nil), s.bn...),
	}
	for i := range v {
		v[i] -= sm.params[i]
	}
	sm.nextErr = v
	s.served[c] = sm
	return sm
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if r.Header.Get("Content-Type") == contentTypeDelta {
		s.handleDeltaUpdate(w, r)
		return
	}
	body, err := s.readUpdateBody(w, r)
	if err != nil {
		http.Error(w, fmt.Sprintf("reading update: %v", err), http.StatusBadRequest)
		return
	}
	var u Update
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&u); err != nil {
		http.Error(w, fmt.Sprintf("bad update: %v", err), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesInRaw += int64(len(body))
	s.admitLocked(w, u.ClientID, u.Round, u.Weight, u.Params, u.BN, false)
}

// handleDeltaUpdate accepts a compressed push: quantized deltas that the
// server dequantizes and applies to the exact base it served this round at
// the same codec parameters, feeding the reconstructed full vectors into
// the same aggregation path as raw updates.
func (s *Server) handleDeltaUpdate(w http.ResponseWriter, r *http.Request) {
	body, err := s.readUpdateBody(w, r)
	if err != nil {
		http.Error(w, fmt.Sprintf("reading update: %v", err), http.StatusBadRequest)
		return
	}
	u, err := decodeUpdateEnvelope(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if u.Params.IsRaw() {
		http.Error(w, "fldist: delta update must carry a quantized params frame", http.StatusBadRequest)
		return
	}
	comp, err := Compression{Bits: u.Params.Bits, Chunk: u.Params.Chunk}.normalize()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesInComp += int64(len(body))
	if u.Round != s.round {
		http.Error(w, fmt.Sprintf("stale round %d, server at %d", u.Round, s.round),
			http.StatusConflict)
		return
	}
	if u.Params.Len() != len(s.params) || u.BN.Len() != len(s.bn) {
		http.Error(w, "shape mismatch", http.StatusBadRequest)
		return
	}
	if _, known := s.served[comp]; !known && len(s.served) >= maxCodecVariants {
		http.Error(w, fmt.Sprintf("fldist: more than %d codec variants in one round", maxCodecVariants),
			http.StatusBadRequest)
		return
	}
	// Reconstruct the client's full vectors: the base it pulled (this
	// round's served dequantized model at the same codec parameters —
	// deterministic, so recomputing on a cache miss yields the same values)
	// plus its dequantized delta.
	sm := s.servedModelLocked(comp)
	params := u.Params.Vector()
	for i := range params {
		params[i] += sm.params[i]
	}
	bn := u.BN.Vector()
	for i := range bn {
		bn[i] += sm.bn[i]
	}
	s.admitLocked(w, u.ClientID, u.Round, u.Weight, params, bn, true)
}

// admitLocked runs the transport-independent admission path: weight and
// duplicate checks, pending accumulation, and the synchronous FedAvg
// aggregation once the quorum is reached; `compressed` attributes the
// update to the right Stats counter, charged only once the update is
// actually counted toward the round (rejected and duplicate pushes are
// not updates). Callers must hold s.mu and have verified round and shapes.
func (s *Server) admitLocked(w http.ResponseWriter, clientID, round int, weight float64, params, bn []float64, compressed bool) {
	if round != s.round {
		http.Error(w, fmt.Sprintf("stale round %d, server at %d", round, s.round),
			http.StatusConflict)
		return
	}
	if len(params) != len(s.params) || len(bn) != len(s.bn) {
		http.Error(w, "shape mismatch", http.StatusBadRequest)
		return
	}
	// NaN compares false to everything, so `weight > 0` (not `<= 0`) is the
	// shape of the check; and one non-finite parameter — reachable through
	// either wire protocol's attacker-shaped float64 bits — would poison
	// the weighted average for every client with no recovery.
	if !(weight > 0) || math.IsInf(weight, 0) {
		http.Error(w, "weight must be a positive finite value", http.StatusBadRequest)
		return
	}
	for _, vec := range [][]float64{params, bn} {
		for _, x := range vec {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				http.Error(w, "non-finite value in update", http.StatusBadRequest)
				return
			}
		}
	}
	if s.pendingIDs[clientID] {
		// Retry of an already-counted update (e.g. the client timed out
		// waiting for a slow 200). Acknowledge without re-counting so the
		// FedAvg weights stay correct and the client moves on.
		s.duplicatesDropped++
		w.Header().Set("X-Fldist-Duplicate", "1")
		w.WriteHeader(http.StatusOK)
		return
	}
	s.pendingIDs[clientID] = true
	s.pendingParams = append(s.pendingParams, params)
	s.pendingBN = append(s.pendingBN, bn)
	s.pendingW = append(s.pendingW, weight)
	if compressed {
		s.updatesComp++
	} else {
		s.updatesRaw++
	}
	if len(s.pendingParams) >= s.updatesPerRound {
		s.params = fl.WeightedAverage(s.pendingParams, s.pendingW)
		if len(s.bn) > 0 {
			s.bn = fl.WeightedAverage(s.pendingBN, s.pendingW)
		}
		s.pendingParams, s.pendingBN, s.pendingW = nil, nil, nil
		s.pendingIDs = map[int]bool{}
		// Commit the downlink error-feedback residuals of the codec
		// variants actually served this round (bounded by
		// maxCodecVariants), replacing last round's state, and drop the
		// round's served cache.
		s.downErr = make(map[Compression][]float64, len(s.served))
		for c, sm := range s.served {
			s.downErr[c] = sm.nextErr
		}
		s.served = map[Compression]*servedModel{}
		s.round++
		s.roundsCompleted++
	}
	w.WriteHeader(http.StatusOK)
}

// readUpdateBody buffers one /update request body, capped at a generous
// multiple of the model size so an oversized POST cannot exhaust server
// memory: the largest legitimate body is the raw gob update (~10 bytes per
// float64 plus framing), well under 16 bytes/value.
func (s *Server) readUpdateBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	s.mu.Lock()
	limit := 4096 + 16*int64(len(s.params)+len(s.bn))
	s.mu.Unlock()
	return io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
}

// handleStats serves the traffic and progress counters as JSON.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// Stats returns a snapshot of the server's traffic and progress counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Round:              s.round,
		RoundsCompleted:    s.roundsCompleted,
		DuplicatesDropped:  s.duplicatesDropped,
		BytesInRaw:         s.bytesInRaw,
		BytesInCompressed:  s.bytesInComp,
		BytesOutRaw:        s.bytesOutRaw,
		BytesOutCompressed: s.bytesOutComp,
		UpdatesRaw:         s.updatesRaw,
		UpdatesCompressed:  s.updatesComp,
	}
}

// Round returns the server's current round.
func (s *Server) Round() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.round
}

// RoundsCompleted returns how many aggregations have happened.
func (s *Server) RoundsCompleted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.roundsCompleted
}

// DuplicatesDropped returns how many same-round retries were idempotently
// ignored.
func (s *Server) DuplicatesDropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duplicatesDropped
}

// Snapshot returns a copy of the current global parameters and BN stats.
func (s *Server) Snapshot() ([]float64, []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.params...), append([]float64(nil), s.bn...)
}

// ListenAndServe runs the parameter server on addr until ctx is canceled,
// then shuts the HTTP server down gracefully (in-flight pulls and pushes
// finish; new connections are refused). It returns nil on a clean
// ctx-triggered shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fldist: listen: %w", err)
	}
	return s.Serve(ctx, ln)
}

// Serve runs the parameter server on an existing listener until ctx is
// canceled, then shuts down gracefully. The listener is closed on return.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("fldist: shutdown: %w", err)
		}
		<-errc // drain the ErrServerClosed from Serve
		return nil
	case err := <-errc:
		return fmt.Errorf("fldist: serve: %w", err)
	}
}
