package fldist

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The sharded aggregation plane of the parameter server. The flat weight
// vector is split into nShards contiguous ranges; each shard owns its range's
// pending contributions under its own lock, so concurrent /update handlers
// never serialize on a model-sized critical section. The global model itself
// is a copy-on-write snapshot: handlers read the current *snapshot lock-free
// via an atomic pointer, and only the round-advance barrier installs a new
// one. See docs/ARCHITECTURE.md ("Sharded aggregation") for the lock
// hierarchy and the determinism argument.

// snapshot is one round's immutable global model state. Nothing mutates a
// snapshot after it is published; pulls, pushes and stats all read it without
// locks.
type snapshot struct {
	round  int
	params []float64
	bn     []float64
}

// contrib is one admitted client's contribution restricted to a shard's
// value range.
type contrib struct {
	clientID int
	weight   float64
	vals     []float64
}

// shard owns one contiguous range [lo, hi) of the flat parameter vector (or
// the whole BN-statistics vector) and the round's pending contributions for
// it. Its mutex guards only pend: appends are O(1) pointer pushes, and the
// O(range) fold work happens once per round inside foldInto.
type shard struct {
	mu   sync.Mutex
	lo   int
	hi   int
	pend []contrib
}

// add appends one contribution for this shard's range.
func (sh *shard) add(c contrib) {
	sh.mu.Lock()
	sh.pend = append(sh.pend, c)
	sh.mu.Unlock()
}

// foldInto weight-averages the shard's pending contributions into
// dst[lo:hi] and resets the pending list. Contributions are folded in
// ascending clientID order, which makes the result a pure function of the
// round's admitted (clientID, weight, values) set — independent of arrival
// order, shard count, and GOMAXPROCS — and element-for-element identical to
// fl.WeightedAverage over the same clients in ID order (the pre-shard
// aggregation path).
func (sh *shard) foldInto(dst []float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Insertion sort by clientID: pending lists are quorum-sized (tens of
	// entries) and this avoids sort.Slice's per-call closure allocation on
	// the round barrier.
	for i := 1; i < len(sh.pend); i++ {
		for j := i; j > 0 && sh.pend[j].clientID < sh.pend[j-1].clientID; j-- {
			sh.pend[j], sh.pend[j-1] = sh.pend[j-1], sh.pend[j]
		}
	}
	out := dst[sh.lo:sh.hi]
	total := 0.0
	for _, c := range sh.pend {
		total += c.weight
		for i, x := range c.vals {
			out[i] += c.weight * x
		}
	}
	if total != 0 {
		inv := 1.0 / total
		for i := range out {
			out[i] *= inv
		}
	}
	// Keep the backing array for next round's appends; drop the references
	// so released update buffers are not pinned past the fold.
	for i := range sh.pend {
		sh.pend[i] = contrib{}
	}
	sh.pend = sh.pend[:0]
}

// updateBuf is a pooled pair of decoded-update vectors: the reconstructed
// full parameter and BN values of one client's push. Buffers are leased from
// Server.bufPool for the decode, parked in the shards' pending lists until
// the round folds, and returned to the pool afterwards — the steady-state
// push path allocates no model-sized memory.
type updateBuf struct {
	params []float64
	bn     []float64
}

// maxShards caps the shard count: beyond this, per-update bookkeeping
// outweighs any contention win.
const maxShards = 64

// serverConfig carries NewServer's optional settings.
type serverConfig struct {
	shards int
}

// ServerOption configures NewServer.
type ServerOption func(*serverConfig)

// WithShards sets the number of parameter shards the server aggregates
// under. More shards admit more concurrent pushes without lock contention;
// the aggregate is bit-identical at any shard count. Values < 1 select the
// default (GOMAXPROCS, capped at 64).
func WithShards(n int) ServerOption {
	return func(c *serverConfig) { c.shards = n }
}

// resolveShards clamps the configured shard count against the model size.
func resolveShards(configured, nParams int) int {
	n := configured
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	if n > nParams {
		n = nParams
	}
	if n < 1 {
		n = 1
	}
	return n
}

// makeShards splits [0, n) into count contiguous, nearly equal ranges.
func makeShards(n, count int) []shard {
	shards := make([]shard, count)
	base, rem := n/count, n%count
	lo := 0
	for i := range shards {
		size := base
		if i < rem {
			size++
		}
		shards[i] = shard{lo: lo, hi: lo + size}
		lo += size
	}
	return shards
}

// latRingSize is the sliding window of admit-latency samples backing the
// /stats percentiles.
const latRingSize = 4096

// latRing is a lock-free sliding window of duration samples: writers claim a
// slot with one atomic add and store racily-but-atomically; readers copy the
// window and sort. Good enough for operational percentiles, zero contention
// on the admit path.
type latRing struct {
	n   atomic.Uint64
	buf [latRingSize]atomic.Int64
}

// record adds one sample.
func (l *latRing) record(d time.Duration) {
	i := l.n.Add(1) - 1
	l.buf[i%latRingSize].Store(int64(d))
}

// percentiles returns the p50 and p99 of the current window, in
// microseconds. Both are 0 before any sample.
func (l *latRing) percentiles() (p50, p99 float64) {
	n := l.n.Load()
	if n == 0 {
		return 0, 0
	}
	if n > latRingSize {
		n = latRingSize
	}
	samples := make([]int64, n)
	for i := range samples {
		samples[i] = l.buf[i].Load()
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pick := func(q float64) float64 {
		idx := int(q * float64(len(samples)-1))
		return float64(samples[idx]) / float64(time.Microsecond)
	}
	return pick(0.50), pick(0.99)
}
