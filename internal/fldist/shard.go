package fldist

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The sharded aggregation plane of the parameter server. The flat weight
// vector is split into nShards contiguous ranges; each shard owns its range's
// pending contributions under its own lock, so concurrent /update handlers
// never serialize on a model-sized critical section. The global model itself
// is a copy-on-write snapshot: handlers read the current *snapshot lock-free
// via an atomic pointer, and only the round-advance barrier installs a new
// one. See docs/ARCHITECTURE.md ("Sharded aggregation") for the lock
// hierarchy and the determinism argument.

// snapshot is one round's immutable global model state. Nothing mutates a
// snapshot after it is published; pulls, pushes and stats all read it without
// locks. Snapshots are always handled by pointer (rawOnce makes a value copy
// a vet error), and the raw-protocol pull body is built lazily once per
// snapshot (gobBody in server.go) so raw pulls after the first are one write
// of a shared immutable slice.
type snapshot struct {
	round  int
	params []float64
	bn     []float64

	rawOnce sync.Once
	rawBody []byte
}

// contrib is one admitted client's contribution restricted to a shard's
// value range. In synchronous mode only (clientID, weight, vals) are set.
// In buffered mode baseRound tags the round of the base the client trained
// from, weight is the staleness-discounted effective weight, and base is the
// exact base values (for this shard's range) the update is a delta against.
type contrib struct {
	clientID  int
	baseRound int
	weight    float64
	vals      []float64
	base      []float64
}

// shard owns one contiguous range [lo, hi) of the flat parameter vector (or
// the whole BN-statistics vector) and the round's pending contributions for
// it. Its mutex guards only pend: appends are O(1) pointer pushes, and the
// O(range) fold work happens once per round inside foldInto.
type shard struct {
	mu   sync.Mutex
	lo   int
	hi   int
	pend []contrib
}

// add appends one contribution for this shard's range.
func (sh *shard) add(c contrib) {
	sh.mu.Lock()
	sh.pend = append(sh.pend, c)
	sh.mu.Unlock()
}

// foldInto weight-averages the shard's pending contributions into
// dst[lo:hi] and resets the pending list. Contributions are folded in
// ascending clientID order, which makes the result a pure function of the
// round's admitted (clientID, weight, values) set — independent of arrival
// order, shard count, and GOMAXPROCS — and element-for-element identical to
// fl.WeightedAverage over the same clients in ID order (the pre-shard
// aggregation path).
func (sh *shard) foldInto(dst []float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Insertion sort by clientID: pending lists are quorum-sized (tens of
	// entries) and this avoids sort.Slice's per-call closure allocation on
	// the round barrier.
	for i := 1; i < len(sh.pend); i++ {
		for j := i; j > 0 && sh.pend[j].clientID < sh.pend[j-1].clientID; j-- {
			sh.pend[j], sh.pend[j-1] = sh.pend[j-1], sh.pend[j]
		}
	}
	out := dst[sh.lo:sh.hi]
	total := 0.0
	for _, c := range sh.pend {
		total += c.weight
		for i, x := range c.vals {
			out[i] += c.weight * x
		}
	}
	if total != 0 {
		inv := 1.0 / total
		for i := range out {
			out[i] *= inv
		}
	}
	sh.reset()
}

// foldAsyncInto applies the shard's buffered contributions as
// staleness-weighted deltas on top of cur[lo:hi], writing the result into
// dst[lo:hi] (which arrives zeroed):
//
//	dst = cur + Σ wₖ·(valsₖ − baseₖ) / Σ wₖ
//
// where each wₖ is the effective (already staleness-discounted) weight and
// baseₖ the exact base the client trained from. Contributions are folded in
// ascending (baseRound, clientID) order — the per-(baseRound, client) dedup
// horizon makes that key unique within a buffer — so the committed model is
// a pure function of the buffer's admitted multiset, independent of arrival
// order, shard count and GOMAXPROCS, with one fixed per-element operation
// sequence.
func (sh *shard) foldAsyncInto(dst, cur []float64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := 1; i < len(sh.pend); i++ {
		for j := i; j > 0 && less(sh.pend[j], sh.pend[j-1]); j-- {
			sh.pend[j], sh.pend[j-1] = sh.pend[j-1], sh.pend[j]
		}
	}
	out := dst[sh.lo:sh.hi]
	cur = cur[sh.lo:sh.hi]
	total := 0.0
	for _, c := range sh.pend {
		total += c.weight
		for i, x := range c.vals {
			out[i] += c.weight * (x - c.base[i])
		}
	}
	if total != 0 {
		inv := 1.0 / total
		for i := range out {
			out[i] = cur[i] + out[i]*inv
		}
	} else {
		copy(out, cur)
	}
	sh.reset()
}

// less orders contributions by (baseRound, clientID).
func less(a, b contrib) bool {
	if a.baseRound != b.baseRound {
		return a.baseRound < b.baseRound
	}
	return a.clientID < b.clientID
}

// reset keeps the pending list's backing array for next round's appends but
// drops the references so released update buffers are not pinned past the
// fold.
func (sh *shard) reset() {
	for i := range sh.pend {
		sh.pend[i] = contrib{}
	}
	sh.pend = sh.pend[:0]
}

// updateBuf is a pooled pair of decoded-update vectors: the reconstructed
// full parameter and BN values of one client's push. Buffers are leased from
// Server.bufPool for the decode, parked in the shards' pending lists until
// the round folds, and returned to the pool afterwards — the steady-state
// push path allocates no model-sized memory.
type updateBuf struct {
	params []float64
	bn     []float64
}

// maxShards caps the shard count: beyond this, per-update bookkeeping
// outweighs any contention win.
const maxShards = 64

// serverConfig carries NewServer's optional settings.
type serverConfig struct {
	shards   int
	bufferK  int
	maxStale int
	walDir   string
	walSync  WALSyncPolicy
	warnf    func(format string, args ...any)
}

// maxStalenessLimit bounds the buffered-mode staleness window: the server
// retains one model snapshot (plus served codec bodies) per round inside the
// window, so an unbounded window would be an unbounded memory commitment.
const maxStalenessLimit = 64

// WithBufferedAggregation switches the server from the synchronous quorum to
// FedBuff-style buffered bounded-staleness aggregation: an update whose base
// round is at most maxStaleness rounds behind the current round is admitted
// (down-weighted by 1/(1+staleness)) instead of rejected with 409, and a new
// global model commits whenever k admitted updates have buffered — there is
// no round barrier, so fleet throughput is no longer gated by the slowest
// client and a straggler's training pass is never thrown away while it stays
// inside the window. k replaces updatesPerRound as the commit threshold.
// maxStaleness must be in [0, 64] (each retained round costs one model
// snapshot of server memory); 0 tolerates no staleness but still commits in
// buffers of k. The committed model is a pure function of each buffer's
// admitted multiset — bit-identical across arrival order, shard count and
// GOMAXPROCS (TestAsyncArrivalOrderInvariance).
func WithBufferedAggregation(k, maxStaleness int) ServerOption {
	return func(c *serverConfig) {
		c.bufferK = k
		c.maxStale = maxStaleness
	}
}

// ServerOption configures NewServer.
type ServerOption func(*serverConfig)

// WithShards sets the number of parameter shards the server aggregates
// under. More shards admit more concurrent pushes without lock contention;
// the aggregate is bit-identical at any shard count. Values < 1 select the
// default (GOMAXPROCS, capped at 64).
func WithShards(n int) ServerOption {
	return func(c *serverConfig) { c.shards = n }
}

// WithWAL makes the server crash-safe: every commit's snapshot (and, in
// buffered mode, every admission between commits) is appended to a
// write-ahead log in dir before it takes effect, so a process that dies —
// SIGKILL included — resumes the federation at its last commit via
// RecoverServer (or hands it to a live successor via Handoff). The dir must
// not already hold a WAL; NewServer panics otherwise (recovery, not
// re-creation, is the path there — cmd/fldist switches on WALExists). See
// docs/ARCHITECTURE.md ("Durability") for the record format, fsync policy
// and recovery guarantees.
func WithWAL(dir string) ServerOption {
	return func(c *serverConfig) { c.walDir = dir }
}

// WithWALSyncPolicy tunes when the WAL fsyncs (default WALSyncCommit:
// commits are power-loss durable, admissions process-crash durable). Only
// meaningful together with WithWAL, or as a RecoverServer option.
func WithWALSyncPolicy(p WALSyncPolicy) ServerOption {
	return func(c *serverConfig) { c.walSync = p }
}

// withWarnf routes the server's operational warnings (WAL write failures,
// lossy shutdowns) somewhere other than the process log. Test seam.
func withWarnf(f func(format string, args ...any)) ServerOption {
	return func(c *serverConfig) { c.warnf = f }
}

// resolveShards clamps the configured shard count against the model size.
func resolveShards(configured, nParams int) int {
	n := configured
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	if n > nParams {
		n = nParams
	}
	if n < 1 {
		n = 1
	}
	return n
}

// makeShards splits [0, n) into count contiguous, nearly equal ranges.
func makeShards(n, count int) []shard {
	shards := make([]shard, count)
	base, rem := n/count, n%count
	lo := 0
	for i := range shards {
		size := base
		if i < rem {
			size++
		}
		shards[i] = shard{lo: lo, hi: lo + size}
		lo += size
	}
	return shards
}

// latRingSize is the sliding window of admit-latency samples backing the
// /stats percentiles.
const latRingSize = 4096

// latRing is a lock-free sliding window of duration samples: writers claim a
// slot with one atomic add and store racily-but-atomically; readers copy the
// window and sort. Good enough for operational percentiles, zero contention
// on the admit path.
type latRing struct {
	n   atomic.Uint64
	buf [latRingSize]atomic.Int64
}

// record adds one sample.
func (l *latRing) record(d time.Duration) {
	i := l.n.Add(1) - 1
	l.buf[i%latRingSize].Store(int64(d))
}

// percentiles returns the p50 and p99 of the current window, in
// microseconds. Both are 0 before any sample.
func (l *latRing) percentiles() (p50, p99 float64) {
	n := l.n.Load()
	if n == 0 {
		return 0, 0
	}
	if n > latRingSize {
		n = latRingSize
	}
	samples := make([]int64, n)
	for i := range samples {
		samples[i] = l.buf[i].Load()
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pick := func(q float64) float64 {
		idx := int(q * float64(len(samples)-1))
		return float64(samples[idx]) / float64(time.Microsecond)
	}
	return pick(0.50), pick(0.99)
}
