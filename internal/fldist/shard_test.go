package fldist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fedprophet/internal/fl"
	"fedprophet/internal/quant"
)

// The tests in this file drive the server with hand-rolled wire bodies over
// plain parameter vectors — no neural network, no training — so the sharded
// aggregation plane can be exercised with many clients, exact expected
// values, and fast -race runs.

// synthVec builds a deterministic pseudo-random vector.
func synthVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// perturb is the "local training" of the synthetic clients: a deterministic
// per-(client, round) modification of the pulled base.
func perturb(base []float64, id, round int) []float64 {
	out := make([]float64, len(base))
	for i := range base {
		out[i] = base[i] + 1e-3*float64((id+1)*(round+2))*float64(i%17-8)
	}
	return out
}

// decodeModelEnvelopeT parses a compressed pull body — the test-side
// counterpart of Client.streamModelEnvelope, built on the same streaming
// decoder so the wire format has exactly one parser per direction.
func decodeModelEnvelopeT(body io.Reader) (round int, params, bn []float64, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(body, hdr[:]); err != nil {
		return 0, nil, nil, err
	}
	if string(hdr[:4]) != modelMagic || hdr[4] != envVersion {
		return 0, nil, nil, fmt.Errorf("bad model envelope header % x", hdr)
	}
	round = int(binary.LittleEndian.Uint32(hdr[5:9]))
	for _, dst := range []*[]float64{&params, &bn} {
		dec, err := quant.NewStreamDecoder(body)
		if err != nil {
			return 0, nil, nil, err
		}
		*dst = make([]float64, dec.Len())
		if err := dec.DecodeAll(*dst); err != nil {
			return 0, nil, nil, err
		}
	}
	return round, params, bn, nil
}

// synthClient is a hand-rolled protocol participant: raw gob when comp is
// nil, compressed deltas (with client-side error feedback) otherwise.
type synthClient struct {
	id     int
	weight float64
	comp   *Compression

	base     []float64 // pulled params base (exact values for raw)
	baseBN   []float64
	residual []float64 // uplink error-feedback state
}

// pull fetches the model and retains the base; returns the round.
func (c *synthClient) pull(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/model", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.comp != nil {
		req.Header.Set(codecHeader, codecValue(*c.comp))
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("client %d pull: %s: %s", c.id, resp.Status, b)
	}
	if c.comp != nil {
		round, params, bn, err := decodeModelEnvelopeT(resp.Body)
		if err != nil {
			t.Fatalf("client %d pull: %v", c.id, err)
		}
		c.base = params
		c.baseBN = bn
		return round
	}
	var blob ModelBlob
	if err := gob.NewDecoder(resp.Body).Decode(&blob); err != nil {
		t.Fatal(err)
	}
	c.base = blob.Params
	c.baseBN = blob.BN
	return blob.Round
}

// push trains (perturbs) and uploads for the given round, returning the HTTP
// status, whether the server marked it duplicate, and the exact contribution
// the server must have reconstructed.
func (c *synthClient) push(t *testing.T, ts *httptest.Server, round int) (status int, dup bool, params, bn []float64) {
	t.Helper()
	params = perturb(c.base, c.id, round)
	bn = perturb(c.baseBN, c.id, round)
	var contentType string
	var body []byte
	if c.comp != nil {
		q, next := deltaQuantize(params, c.base, c.residual, *c.comp)
		dBN := make([]float64, len(bn))
		for i := range dBN {
			dBN[i] = bn[i] - c.baseBN[i]
		}
		env, err := encodeUpdateEnvelope(c.id, round, c.weight, quant.Encode(q), quant.EncodeRaw(dBN))
		if err != nil {
			t.Fatal(err)
		}
		contentType, body = contentTypeDelta, env
		// The server reconstructs base + deq(delta).
		deq := q.Dequantize()
		for i := range params {
			params[i] = c.base[i] + deq[i]
		}
		c.residual = next
	} else {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(Update{
			ClientID: c.id, Round: round, Weight: c.weight, Params: params, BN: bn,
		}); err != nil {
			t.Fatal(err)
		}
		contentType, body = contentTypeGob, buf.Bytes()
	}
	resp, err := ts.Client().Post(ts.URL+"/update", contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Fldist-Duplicate") != "", params, bn
}

// mixedFleet builds the standard 4-client mix used by the invariance test:
// two raw clients and two compressed ones at different codec parameters.
func mixedFleet() []*synthClient {
	return []*synthClient{
		{id: 0, weight: 3},
		{id: 1, weight: 5},
		{id: 2, weight: 2, comp: &Compression{Bits: 8, Chunk: 64}},
		{id: 3, weight: 7, comp: &Compression{Bits: 4, Chunk: 32}},
	}
}

// referenceRun replays the exact protocol semantics sequentially with the
// pre-shard aggregation path: contributions collected in client-ID order and
// folded with fl.WeightedAverage, served bases computed per codec variant
// with downlink error feedback. This is the bit-exact oracle the sharded
// server must reproduce at every shard count.
func referenceRun(initParams, initBN []float64, rounds int) ([]float64, []float64) {
	global := append([]float64(nil), initParams...)
	bn := append([]float64(nil), initBN...)
	clients := mixedFleet()
	downErr := map[Compression][]float64{}
	for r := 0; r < rounds; r++ {
		// Served bases for the codec variants pulled this round.
		bases := map[Compression][]float64{}
		nextErr := map[Compression][]float64{}
		for _, c := range clients {
			if c.comp == nil {
				continue
			}
			comp, err := c.comp.normalize()
			if err != nil {
				panic(err)
			}
			if _, ok := bases[comp]; ok {
				continue
			}
			v := append([]float64(nil), global...)
			if e := downErr[comp]; len(e) == len(v) {
				for i := range v {
					v[i] += e[i]
				}
			}
			deq := quant.QuantizeChunks(v, comp.Bits, comp.Chunk).Dequantize()
			bases[comp] = deq
			for i := range v {
				v[i] -= deq[i]
			}
			nextErr[comp] = v
		}
		var vecs, bns [][]float64
		var weights []float64
		for _, c := range clients { // client-ID order
			if c.comp == nil {
				p := perturb(global, c.id, r)
				vecs = append(vecs, p)
				bns = append(bns, perturb(bn, c.id, r))
				weights = append(weights, c.weight)
				continue
			}
			comp, _ := c.comp.normalize()
			base := bases[comp]
			p := perturb(base, c.id, r)
			q, next := deltaQuantize(p, base, c.residual, comp)
			c.residual = next
			deq := q.Dequantize()
			rec := make([]float64, len(base))
			for i := range rec {
				rec[i] = base[i] + deq[i]
			}
			vecs = append(vecs, rec)
			bns = append(bns, perturb(bn, c.id, r))
			weights = append(weights, c.weight)
		}
		global = fl.WeightedAverage(vecs, weights)
		if len(bn) > 0 {
			bn = fl.WeightedAverage(bns, weights)
		}
		downErr = nextErr
	}
	return global, bn
}

// serverRun drives the same fleet against a real sharded server, pushing
// sequentially in client-ID order.
func serverRun(t *testing.T, initParams, initBN []float64, rounds, shards int) ([]float64, []float64) {
	t.Helper()
	srv := NewServer(initParams, initBN, 4, WithShards(shards))
	if srv.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", srv.Shards(), shards)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	clients := mixedFleet()
	for r := 0; r < rounds; r++ {
		for _, c := range clients {
			if got := c.pull(t, ts); got != r {
				t.Fatalf("client %d pulled round %d, want %d", c.id, got, r)
			}
		}
		for _, c := range clients {
			status, dup, _, _ := c.push(t, ts, r)
			if status != http.StatusOK || dup {
				t.Fatalf("round %d client %d push: status %d dup %v", r, c.id, status, dup)
			}
		}
		if srv.Round() != r+1 {
			t.Fatalf("round %d did not advance (at %d)", r, srv.Round())
		}
	}
	return srv.Snapshot()
}

// The headline determinism pin: a seeded mixed-fleet run aggregates
// bit-identically to the pre-shard single-mutex path at shard counts 1, 4
// and 8 — downlink error feedback, base reconstruction and FedAvg fold all
// included.
func TestShardCountInvariance(t *testing.T) {
	initParams := synthVec(1003, 1) // odd length: uneven shard ranges + ragged tail chunks
	initBN := synthVec(10, 2)
	const rounds = 3
	wantP, wantBN := referenceRun(initParams, initBN, rounds)
	for _, shards := range []int{1, 4, 8} {
		gotP, gotBN := serverRun(t, initParams, initBN, rounds, shards)
		for i := range wantP {
			if gotP[i] != wantP[i] {
				t.Fatalf("shards=%d: params[%d] = %v, want %v (not bit-identical)", shards, i, gotP[i], wantP[i])
			}
		}
		for i := range wantBN {
			if gotBN[i] != wantBN[i] {
				t.Fatalf("shards=%d: bn[%d] = %v, want %v (not bit-identical)", shards, i, gotBN[i], wantBN[i])
			}
		}
	}
}

// 32 concurrent clients — mixed raw and compressed, every one retrying its
// push — across two round boundaries: no update may be lost or
// double-counted, and the aggregate must equal the sequential reference
// computed in client-ID order.
func TestConcurrentMixedFleetStress(t *testing.T) {
	const clients = 32
	const rounds = 2
	initParams := synthVec(2000, 3)
	initBN := synthVec(8, 4)
	srv := NewServer(initParams, initBN, clients, WithShards(8))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	codecs := []*Compression{nil, {Bits: 8, Chunk: 64}, {Bits: 4, Chunk: 128}, nil}
	mk := func(id int) *synthClient {
		return &synthClient{id: id, weight: float64(id + 1), comp: codecs[id%len(codecs)]}
	}

	// contributions[r][id] is what the server must have folded, recorded by
	// each goroutine from its own push.
	type contribRec struct {
		params, bn []float64
	}
	contributions := make([]sync.Map, rounds)

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := mk(id)
			for r := 0; r < rounds; r++ {
				if got := c.pull(t, ts); got != r {
					errs[id] = fmt.Errorf("client %d pulled round %d, want %d", id, got, r)
					return
				}
				status, dup, params, bn := c.push(t, ts, r)
				if status != http.StatusOK || dup {
					errs[id] = fmt.Errorf("client %d round %d push: status %d dup %v", id, r, status, dup)
					return
				}
				contributions[r].Store(id, contribRec{params, bn})
				// Retry the same round: must be acknowledged as duplicate
				// (200 + marker) or rejected as stale (409) — never
				// double-counted. The retry races the round boundary on
				// purpose.
				c2 := &synthClient{id: id, weight: c.weight, comp: c.comp,
					base: c.base, baseBN: c.baseBN}
				if st, d, _, _ := c2.push(t, ts, r); st == http.StatusOK && !d {
					errs[id] = fmt.Errorf("client %d round %d retry was counted again", id, r)
					return
				}
				// Wait out the aggregation.
				deadline := time.Now().Add(10 * time.Second)
				for srv.Round() <= r {
					if time.Now().After(deadline) {
						errs[id] = fmt.Errorf("client %d: round %d never advanced", id, r)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}

	if got := srv.RoundsCompleted(); got != rounds {
		t.Fatalf("RoundsCompleted = %d, want %d", got, rounds)
	}
	st := srv.Stats()
	if st.UpdatesRaw+st.UpdatesCompressed != clients*rounds {
		t.Fatalf("counted %d+%d updates, want exactly %d (lost or double-counted)",
			st.UpdatesRaw, st.UpdatesCompressed, clients*rounds)
	}
	if st.Shards != 8 {
		t.Fatalf("stats shards = %d, want 8", st.Shards)
	}
	if st.AdmitP50Micros <= 0 || st.AdmitP99Micros < st.AdmitP50Micros {
		t.Fatalf("admit percentiles p50=%v p99=%v not populated/ordered", st.AdmitP50Micros, st.AdmitP99Micros)
	}

	// Replay the recorded contributions sequentially in client-ID order —
	// the pre-shard aggregation semantics — and demand bitwise equality.
	global, bn := append([]float64(nil), initParams...), append([]float64(nil), initBN...)
	for r := 0; r < rounds; r++ {
		var vecs, bns [][]float64
		var weights []float64
		for id := 0; id < clients; id++ {
			v, ok := contributions[r].Load(id)
			if !ok {
				t.Fatalf("round %d: client %d's update was lost", r, id)
			}
			rec := v.(contribRec)
			vecs = append(vecs, rec.params)
			bns = append(bns, rec.bn)
			weights = append(weights, float64(id+1))
		}
		global = fl.WeightedAverage(vecs, weights)
		bn = fl.WeightedAverage(bns, weights)
	}
	gotP, gotBN := srv.Snapshot()
	for i := range global {
		if gotP[i] != global[i] {
			t.Fatalf("params[%d] = %v, want sequential reference %v", i, gotP[i], global[i])
		}
	}
	for i := range bn {
		if gotBN[i] != bn[i] {
			t.Fatalf("bn[%d] = %v, want sequential reference %v", i, gotBN[i], bn[i])
		}
	}
}

// A /stats poll must answer while an /update body is stalled mid-stream —
// the counters are atomics and the push path holds no lock while reading
// the wire.
func TestStatsRespondsDuringStalledPush(t *testing.T) {
	initParams := synthVec(500, 5)
	srv := NewServer(initParams, nil, 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Open a raw connection and send an /update whose body stalls after the
	// envelope header: the handler goroutine is now blocked in a read.
	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	partial, err := encodeUpdateEnvelope(0, 0, 1, quant.Encode(quant.QuantizeChunks(initParams, 8, 64)),
		quant.EncodeRaw(nil))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /update HTTP/1.1\r\nHost: x\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		contentTypeDelta, len(partial))
	if _, err := conn.Write(partial[:30]); err != nil { // header + a sliver of the params frame
		t.Fatal(err)
	}

	// Give the handler a moment to enter the body read, then poll stats
	// with a hard deadline.
	time.Sleep(50 * time.Millisecond)
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("/stats blocked behind a stalled push: %v", err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Round != 0 || st.UpdatesCompressed != 0 {
		t.Fatalf("stats during stalled push: %+v", st)
	}
}

// The round endpoint and registration must agree across the advance barrier:
// an update for the pre-advance round arriving after the quorum filled is
// answered 409, exactly like the pre-shard server.
func TestLateUpdateAfterQuorumIsStale(t *testing.T) {
	initParams := synthVec(100, 6)
	srv := NewServer(initParams, nil, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	a := &synthClient{id: 0, weight: 1}
	b := &synthClient{id: 1, weight: 1}
	if r := a.pull(t, ts); r != 0 {
		t.Fatalf("round %d", r)
	}
	if r := b.pull(t, ts); r != 0 {
		t.Fatalf("round %d", r)
	}
	if status, _, _, _ := a.push(t, ts, 0); status != http.StatusOK {
		t.Fatalf("first push: %d", status)
	}
	if status, _, _, _ := b.push(t, ts, 0); status != http.StatusConflict {
		t.Fatalf("late push for an aggregated round: %d, want 409", status)
	}
}

// The streaming delta decoder must enforce the same body-size cap as the
// buffered path: a push with an oversized Content-Length is rejected, not
// buffered.
func TestOversizedPushRejected(t *testing.T) {
	initParams := synthVec(64, 7)
	srv := NewServer(initParams, nil, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	huge := bytes.Repeat([]byte{0xAB}, 64*1024)
	resp, err := ts.Client().Post(ts.URL+"/update", contentTypeDelta, bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized push: status %d, want 400", resp.StatusCode)
	}
}

// A server with more shards than parameters must clamp rather than build
// empty shards, and the shard count must surface on /stats.
func TestShardClamping(t *testing.T) {
	srv := NewServer(synthVec(3, 9), nil, 1, WithShards(16))
	if got := srv.Shards(); got != 3 {
		t.Fatalf("Shards() = %d for a 3-param model, want clamp to 3", got)
	}
	if got := srv.Stats().Shards; got != 3 {
		t.Fatalf("stats shards = %d, want 3", got)
	}
}
