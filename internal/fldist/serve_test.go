package fldist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedprophet/internal/quant"
)

// Tests for the serve plane: the segment-parallel served-model build, the
// per-variant single-flight cache, and the pull-side accounting. All run
// under -race via the standard suite.

// seqServedBody replays the pre-refactor sequential served-model build — the
// whole EF-adjusted vector through quant.EncodeStream in one pass — and
// returns the envelope bytes plus the downlink residual to carry forward.
// This is the oracle the segment-parallel build must reproduce byte-for-byte.
func seqServedBody(round int, params, bn, prevErr []float64, c Compression) (deq, nextErr []float64, enc []byte) {
	n := len(params)
	v := append([]float64(nil), params...)
	if len(prevErr) == n {
		for i := range v {
			v[i] += prevErr[i]
		}
	}
	deq = make([]float64, n)
	var buf bytes.Buffer
	buf.WriteString(modelMagic)
	buf.WriteByte(envVersion)
	var rd [4]byte
	binary.LittleEndian.PutUint32(rd[:], uint32(round))
	buf.Write(rd[:])
	if err := quant.EncodeStream(&buf, v, c.Bits, c.Chunk, deq); err != nil {
		panic(fmt.Sprintf("seqServedBody: %v", err))
	}
	buf.Write(quant.EncodeRaw(bn))
	for i := range v {
		v[i] -= deq[i]
	}
	return deq, v, buf.Bytes()
}

// TestServeSegmentInvariance pins the acceptance matrix: the served body is
// bit-identical to the pre-refactor sequential encoder across segment counts
// {1, 4, 8} × GOMAXPROCS {1, 4}, over multiple rounds so the downlink
// error-feedback residual (folded per segment in the parallel build) is
// exercised, not just the first clean encode.
func TestServeSegmentInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	const rounds = 3
	initP := synthVec(8*1024+37, 11) // ragged tail against every chunk size below
	initBN := synthVec(32, 12)
	for _, comp := range []Compression{{Bits: 8, Chunk: 64}, {Bits: 4, Chunk: 256}} {
		// The model evolves independently of the codec here (one raw update
		// per round), so the sequential oracle can be replayed standalone.
		var wantBodies [][]byte
		var wantDeqs [][]float64
		params, bn := initP, initBN
		var prevErr []float64
		for r := 0; r < rounds; r++ {
			deq, next, enc := seqServedBody(r, params, bn, prevErr, comp)
			wantBodies = append(wantBodies, enc)
			wantDeqs = append(wantDeqs, deq)
			prevErr = next
			params, bn = perturb(initP, 0, r), perturb(initBN, 0, r)
		}
		for _, procs := range []int{1, 4} {
			runtime.GOMAXPROCS(procs)
			for _, segs := range []int{1, 4, 8} {
				s := NewServer(initP, initBN, 1, WithShards(4))
				s.buildSegments = segs
				for r := 0; r < rounds; r++ {
					sm, err := s.getServed(comp, -1)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(sm.body, wantBodies[r]) {
						t.Fatalf("bits=%d chunk=%d segs=%d procs=%d round %d: served body differs from sequential encoder",
							comp.Bits, comp.Chunk, segs, procs, r)
					}
					for i := range sm.params {
						if sm.params[i] != wantDeqs[r][i] {
							t.Fatalf("bits=%d chunk=%d segs=%d procs=%d round %d: served base[%d] = %v, want %v",
								comp.Bits, comp.Chunk, segs, procs, r, i, sm.params[i], wantDeqs[r][i])
						}
					}
					// One raw quorum-of-1 update advances the round so the
					// next build runs the committed-EF path.
					buf := &updateBuf{params: perturb(initP, 0, r), bn: perturb(initBN, 0, r)}
					if out := s.register(0, r, 1, buf, false); out != regAdmittedLast {
						t.Fatalf("register outcome %v", out)
					}
					s.advanceRound()
				}
			}
		}
	}
}

// TestDistinctVariantsBuildConcurrently pins that two codec variants' cache
// builds overlap: each build blocks in the test hook until the other has
// also started, so if one variant's O(model) build excluded the other (the
// pre-refactor serveMu behavior) both pulls would deadlock against the hook
// timeout and fail the test.
func TestDistinctVariantsBuildConcurrently(t *testing.T) {
	s := NewServer(synthVec(20000, 3), synthVec(16, 4), 1)
	barrier := make(chan struct{})
	var arrived atomic.Int32
	var serialized atomic.Bool
	s.buildHook = func(Compression) {
		if arrived.Add(1) == 2 {
			close(barrier)
		}
		select {
		case <-barrier:
		case <-time.After(5 * time.Second):
			serialized.Store(true)
		}
	}
	variants := []Compression{{Bits: 8, Chunk: 64}, {Bits: 4, Chunk: 256}}
	var wg sync.WaitGroup
	for _, c := range variants {
		wg.Add(1)
		go func(c Compression) {
			defer wg.Done()
			if _, err := s.getServed(c, -1); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	if serialized.Load() {
		t.Fatal("one variant's build blocked behind the other's")
	}
	if n := s.servedBuilds.Load(); n != 2 {
		t.Fatalf("served builds = %d, want 2", n)
	}
}

// TestRacingPullsSingleBuild pins the per-variant single-flight latch: N
// racing pulls for one variant trigger exactly one build, and every pull
// returns the identical body.
func TestRacingPullsSingleBuild(t *testing.T) {
	s := NewServer(synthVec(20000, 5), synthVec(16, 6), 1)
	comp := Compression{Bits: 8, Chunk: 64}
	const racers = 16
	start := make(chan struct{})
	bodies := make([][]byte, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			sm, err := s.getServed(comp, -1)
			if err != nil {
				t.Error(err)
				return
			}
			bodies[i] = sm.body
		}(i)
	}
	close(start)
	wg.Wait()
	if n := s.servedBuilds.Load(); n != 1 {
		t.Fatalf("%d racing pulls ran %d builds, want exactly 1", racers, n)
	}
	if st := s.Stats(); st.ServedBuilds != 1 {
		t.Fatalf("Stats.ServedBuilds = %d, want 1", st.ServedBuilds)
	}
	for i := 1; i < racers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("racer %d saw a different body", i)
		}
	}
}

// TestPullAccounting pins the satellite fixes: compressed and raw pulls both
// carry Content-Length, the byte counters charge exactly what was written,
// pull percentiles populate from the serve ring, and a repeated raw pull
// reuses the snapshot's cached gob body byte-for-byte.
func TestPullAccounting(t *testing.T) {
	s := NewServer(synthVec(4096, 7), synthVec(16, 8), 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pull := func(codec string) (int, []byte, http.Header) {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/model", nil)
		if err != nil {
			t.Fatal(err)
		}
		if codec != "" {
			req.Header.Set(codecHeader, codec)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body, resp.Header
	}

	comp := Compression{Bits: 8, Chunk: 64}
	code, compBody, hdr := pull(codecValue(comp))
	if code != http.StatusOK {
		t.Fatalf("compressed pull: %d", code)
	}
	if cl := hdr.Get("Content-Length"); cl != strconv.Itoa(len(compBody)) {
		t.Fatalf("compressed Content-Length %q, body %d bytes", cl, len(compBody))
	}
	if got := s.Stats().BytesOutCompressed; got != int64(len(compBody)) {
		t.Fatalf("BytesOutCompressed = %d, want %d", got, len(compBody))
	}

	code, rawBody, hdr := pull("")
	if code != http.StatusOK {
		t.Fatalf("raw pull: %d", code)
	}
	if cl := hdr.Get("Content-Length"); cl != strconv.Itoa(len(rawBody)) {
		t.Fatalf("raw Content-Length %q, body %d bytes", cl, len(rawBody))
	}
	if got := s.Stats().BytesOutRaw; got != int64(len(rawBody)) {
		t.Fatalf("BytesOutRaw = %d, want %d", got, len(rawBody))
	}
	_, rawBody2, _ := pull("")
	if !bytes.Equal(rawBody, rawBody2) {
		t.Fatal("repeated raw pull served different bytes")
	}
	st := s.Stats()
	if got := st.BytesOutRaw; got != 2*int64(len(rawBody)) {
		t.Fatalf("BytesOutRaw after second pull = %d, want %d", got, 2*len(rawBody))
	}
	if st.PullP99Micros <= 0 {
		t.Fatalf("PullP99Micros = %v after 3 pulls, want > 0", st.PullP99Micros)
	}
}
