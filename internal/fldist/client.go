package fldist

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/nn"
	"fedprophet/internal/quant"
)

// Client is one federated participant talking to a parameter Server over
// HTTP. It owns a local model replica (structurally identical to the
// server's), its local data subset, and the training hyperparameters.
type Client struct {
	ID       int
	BaseURL  string
	HTTP     *http.Client
	Model    nn.Layer
	Subset   *data.Subset
	Cfg      fl.Config
	Rng      *rand.Rand
	PGDSteps int // 0 = standard training

	// Async switches RunRounds to the buffered-aggregation pipeline —
	// pull → train → push with no round barrier — for servers running
	// WithBufferedAggregation. A push is counted as long as its base round
	// is inside the server's staleness window, so a slow client's training
	// pass is not discarded just because faster clients committed rounds
	// meanwhile.
	Async bool

	// StaleRetrains counts training passes RunRounds had to throw away
	// because the server had aggregated past the pushed base round (HTTP
	// 409): every increment is wasted client compute. Against a buffered
	// server with an adequate staleness window this stays 0 even for
	// stragglers.
	StaleRetrains int

	// Compression, when non-nil, requests the compressed delta wire
	// protocol: Pull asks for a chunk-quantized global model and Push sends
	// quantized deltas against the pulled base with error feedback. If the
	// server does not echo the codec negotiation header, the client falls
	// back to the raw gob protocol transparently.
	Compression *Compression

	// negotiated reports whether the last Pull established the compressed
	// protocol with the server.
	negotiated bool
	// baseParams/baseBN are the exact (dequantized) global values the last
	// compressed Pull delivered — the base the next Push's delta is taken
	// against, and the base the server will reconstruct with.
	baseParams, baseBN []float64
	// errParams carries the quantization residual of the previous
	// compressed Push into the next round's parameter delta (error
	// feedback), so per-round compression error stays bounded instead of
	// accumulating in the global model. BN statistics travel raw and need
	// no residual.
	errParams []float64
	// residualRound is 1 + the round whose push last committed the
	// residual, so a redundant re-push of an already-acknowledged round
	// cannot advance the feedback state twice. 0 means none committed.
	residualRound int
	// errBN carries the residual of the quantized BN delta frames a top-k
	// push sends (bnDeltaBits, error-fed like the params); dense pushes ship
	// the BN delta raw and keep no residual.
	errBN []float64
	// heldRound/hasChain are the delta-downlink state: the chain round whose
	// exact base vectors baseParams/baseBN currently hold. A delta-mode pull
	// declares heldRound so the server sends only the frames from there to
	// the chain head; with hasChain false (first pull, or after a failed
	// catch-up left the base torn) the pull goes cold and lands on the chain
	// head whole.
	heldRound int
	hasChain  bool

	// testAfterTrain, when non-nil, runs after every local training pass
	// and before the push. Tests use it to simulate stragglers without
	// touching the training loop.
	testAfterTrain func()
}

// Pull fetches the current global model and loads it into the local replica.
// It returns the server round the blob belongs to. Canceling ctx aborts the
// request. With Compression set, Pull negotiates the compressed protocol:
// it requests a chunk-quantized model, remembers the exact dequantized base
// for the next Push's delta, and falls back to the raw gob protocol if the
// server does not acknowledge the codec.
func (c *Client) Pull(ctx context.Context) (int, error) {
	var comp Compression
	if c.Compression != nil {
		var err error
		if comp, err = c.Compression.normalize(); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/model", nil)
	if err != nil {
		return 0, fmt.Errorf("fldist: pull: %w", err)
	}
	if c.Compression != nil {
		v := codecValue(comp)
		if comp.Delta && c.hasChain {
			// Declare the chain round we hold so the server can answer with
			// just the delta frames from there to the head.
			v += ";base=" + strconv.Itoa(c.heldRound)
		}
		req.Header.Set(codecHeader, v)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, fmt.Errorf("fldist: pull: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("fldist: pull: %s: %s", resp.Status, body)
	}
	switch resp.Header.Get("Content-Type") {
	case contentTypeModel:
		round, err := c.streamModelEnvelope(resp.Body)
		if err != nil {
			return 0, fmt.Errorf("fldist: pull: %w", err)
		}
		if comp.Delta {
			// A cold delta-mode pull lands exactly on the chain head; later
			// pulls catch up from here.
			c.hasChain = true
			c.heldRound = round
		}
		nn.ImportParams(c.Model, c.baseParams)
		if len(c.baseBN) > 0 {
			nn.ImportBNStats(c.Model, c.baseBN)
		}
		return round, nil
	case contentTypeModelDelta:
		round, err := c.streamDeltaEnvelope(resp.Body)
		if err != nil {
			return 0, fmt.Errorf("fldist: pull: %w", err)
		}
		nn.ImportParams(c.Model, c.baseParams)
		if len(c.baseBN) > 0 {
			nn.ImportBNStats(c.Model, c.baseBN)
		}
		return round, nil
	}
	var blob ModelBlob
	if err := gob.NewDecoder(resp.Body).Decode(&blob); err != nil {
		return 0, fmt.Errorf("fldist: decoding model: %w", err)
	}
	if err := c.checkModelShape(len(blob.Params), len(blob.BN)); err != nil {
		return 0, err
	}
	c.negotiated = false
	c.hasChain = false
	nn.ImportParams(c.Model, blob.Params)
	if len(blob.BN) > 0 {
		nn.ImportBNStats(c.Model, blob.BN)
	}
	return blob.Round, nil
}

// streamModelEnvelope decodes a compressed pull body incrementally: the
// 9-byte envelope header, then the params and BN frames chunk-by-chunk into
// c.baseParams / c.baseBN — which are reused across rounds, so a
// steady-state client pulls with O(chunk) transient allocation instead of
// buffering the wire body and materializing fresh vectors every round.
func (c *Client) streamModelEnvelope(body io.Reader) (int, error) {
	// The reused base buffers are overwritten in place below, so a pull that
	// fails mid-stream leaves them half-old/half-new. Dropping `negotiated`
	// up front (restored only on full success) makes that state harmless: a
	// caller that pushes after a failed pull takes the raw path, which
	// carries exact parameters and needs no base.
	c.negotiated = false
	var hdr [9]byte
	if _, err := io.ReadFull(body, hdr[:]); err != nil {
		return 0, fmt.Errorf("model envelope header: %w", err)
	}
	if string(hdr[:4]) != modelMagic {
		return 0, fmt.Errorf("model envelope magic %q", hdr[:4])
	}
	if hdr[4] != envVersion {
		return 0, fmt.Errorf("model envelope version %d, want %d", hdr[4], envVersion)
	}
	round := int(binary.LittleEndian.Uint32(hdr[5:9]))
	pd, err := quant.NewStreamDecoder(body)
	if err != nil {
		return 0, fmt.Errorf("model params frame: %w", err)
	}
	// Shape-check before decoding so a server seeded with a different
	// architecture is an error, not a corrupted local replica.
	wantP := nn.NumParams(c.Model)
	wantB := nn.NumBNStats(c.Model)
	if pd.Len() != wantP {
		return 0, fmt.Errorf("server model has %d params, local replica has %d", pd.Len(), wantP)
	}
	c.baseParams = resize(c.baseParams, pd.Len())
	if err := pd.DecodeAll(c.baseParams); err != nil {
		return 0, fmt.Errorf("model params frame: %w", err)
	}
	bd, err := quant.NewStreamDecoder(body)
	if err != nil {
		return 0, fmt.Errorf("model bn frame: %w", err)
	}
	if bd.Len() != wantB {
		return 0, fmt.Errorf("server model has %d bn stats, local replica has %d", bd.Len(), wantB)
	}
	c.baseBN = resize(c.baseBN, bd.Len())
	if err := bd.DecodeAll(c.baseBN); err != nil {
		return 0, fmt.Errorf("model bn frame: %w", err)
	}
	// io.ReadFull distinguishes "no byte left" (0, io.EOF) from a reader
	// that returns data alongside io.EOF or (0, nil) — a bare Read would
	// miss trailing garbage on the former and spuriously fail on the latter.
	var one [1]byte
	if _, err := io.ReadFull(body, one[:]); err != io.EOF {
		return 0, fmt.Errorf("model envelope has trailing bytes")
	}
	c.negotiated = true
	return round, nil
}

// streamDeltaEnvelope decodes an FPD1 catch-up body: the 17-byte header
// (magic, version, from-round, to-round, entry count), then per entry a
// round number and two quantized delta frames — params, then BN — each
// applied onto the held chain base in place. Sparse frames scatter-add their
// k values directly; dense frames stream chunk-by-chunk through an O(chunk)
// scratch. The applied bases are bit-identical to the server's chain entries
// (and therefore to what a cold-pulling client receives whole), which is
// what lets the next push's delta resolve against the server-side base
// registry exactly.
func (c *Client) streamDeltaEnvelope(body io.Reader) (int, error) {
	// As in streamModelEnvelope, the in-place mutation of the base buffers
	// makes a mid-stream failure leave them torn: dropping negotiated AND
	// hasChain up front (both restored only on full success) forces the next
	// pull cold, which rewrites the base whole.
	c.negotiated = false
	c.hasChain = false
	var hdr [17]byte
	if _, err := io.ReadFull(body, hdr[:]); err != nil {
		return 0, fmt.Errorf("model delta header: %w", err)
	}
	if string(hdr[:4]) != deltaMagic {
		return 0, fmt.Errorf("model delta magic %q", hdr[:4])
	}
	if hdr[4] != envVersion {
		return 0, fmt.Errorf("model delta version %d, want %d", hdr[4], envVersion)
	}
	from := int(binary.LittleEndian.Uint32(hdr[5:9]))
	to := int(binary.LittleEndian.Uint32(hdr[9:13]))
	count := int(binary.LittleEndian.Uint32(hdr[13:17]))
	if from != c.heldRound {
		return 0, fmt.Errorf("model delta from round %d, client holds %d", from, c.heldRound)
	}
	wantP := nn.NumParams(c.Model)
	wantB := nn.NumBNStats(c.Model)
	if len(c.baseParams) != wantP || len(c.baseBN) != wantB {
		return 0, fmt.Errorf("model delta against a base of %d+%d values, replica has %d+%d",
			len(c.baseParams), len(c.baseBN), wantP, wantB)
	}
	held := from
	for e := 0; e < count; e++ {
		var rb [4]byte
		if _, err := io.ReadFull(body, rb[:]); err != nil {
			return 0, fmt.Errorf("model delta entry %d round: %w", e, err)
		}
		r := int(binary.LittleEndian.Uint32(rb[:]))
		if r <= held {
			return 0, fmt.Errorf("model delta entry %d round %d not after %d", e, r, held)
		}
		if err := applyDeltaFrame(body, c.baseParams, wantP); err != nil {
			return 0, fmt.Errorf("model delta entry %d params frame: %w", e, err)
		}
		if err := applyDeltaFrame(body, c.baseBN, wantB); err != nil {
			return 0, fmt.Errorf("model delta entry %d bn frame: %w", e, err)
		}
		held = r
	}
	if held != to {
		return 0, fmt.Errorf("model delta ends at round %d, header says %d", held, to)
	}
	var one [1]byte
	if _, err := io.ReadFull(body, one[:]); err != io.EOF {
		return 0, fmt.Errorf("model delta has trailing bytes")
	}
	c.heldRound = to
	c.hasChain = true
	c.negotiated = true
	return to, nil
}

// applyDeltaFrame streams one quantized delta frame and adds it onto dst:
// sparse frames scatter-add their stored coordinates, dense frames stream
// chunk-by-chunk through a scratch bounded by the chunk size.
func applyDeltaFrame(body io.Reader, dst []float64, want int) (err error) {
	d, err := quant.NewStreamDecoder(body)
	if err != nil {
		return err
	}
	if d.Len() != want {
		return fmt.Errorf("frame carries %d values, want %d", d.Len(), want)
	}
	if d.IsSparse() {
		return d.ApplySparse(dst)
	}
	if d.IsRaw() {
		return fmt.Errorf("raw frame on a delta chain")
	}
	scratch := make([]float64, min(d.Chunk(), want))
	off := 0
	for l := d.NextLen(); l > 0; l = d.NextLen() {
		buf := scratch[:l]
		if err := d.Next(buf); err != nil {
			return err
		}
		out := dst[off : off+l]
		for i := range out {
			out[i] += buf[i]
		}
		off += l
	}
	return nil
}

// resize returns v with exactly length n, reusing its backing array when it
// is already big enough.
func resize(v []float64, n int) []float64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]float64, n)
}

// checkModelShape rejects a pulled model whose vector lengths do not match
// the local replica — a server seeded with a different architecture — as an
// error instead of letting nn.ImportParams panic the client process.
func (c *Client) checkModelShape(nParams, nBN int) error {
	wantP := nn.NumParams(c.Model)
	wantB := nn.NumBNStats(c.Model)
	if nParams != wantP || nBN != wantB {
		return fmt.Errorf("fldist: pull: server model shape %d params + %d bn stats, local replica has %d + %d",
			nParams, nBN, wantP, wantB)
	}
	return nil
}

// TrainLocal runs the configured number of local (adversarial) SGD
// iterations on the local subset, mirroring the in-process trainers.
func (c *Client) TrainLocal(lr float64) float64 {
	opt := nn.NewSGD(lr, c.Cfg.Momentum, c.Cfg.WeightDecay)
	nn.ResetMomentum(c.Model.Params())
	batches := data.Batches(c.Subset.Indices, c.Cfg.Batch, c.Rng)
	if len(batches) == 0 {
		return 0
	}
	total := 0.0
	iters := 0
	for iters < c.Cfg.LocalIters {
		for _, b := range batches {
			if iters >= c.Cfg.LocalIters {
				break
			}
			x, y := data.Batch(c.Subset.Parent, b)
			if c.PGDSteps > 0 {
				x = attack.Perturb(attack.PGDConfig(c.Cfg.Eps, c.PGDSteps), x,
					attack.CEGradFn(c.Model, y), c.Rng)
			}
			out := c.Model.Forward(x, true)
			loss, g := nn.SoftmaxCrossEntropy(out, y)
			nn.ZeroGrads(c.Model)
			c.Model.Backward(g)
			opt.Step(c.Model.Params())
			total += loss
			iters++
		}
	}
	return total / float64(iters)
}

// Push uploads the trained replica for the given round. counted reports
// whether the server added this update to the round's aggregate; it is false
// when the server had already counted an update from this client for the
// round (the X-Fldist-Duplicate marker) and idempotently dropped this copy.
// Canceling ctx aborts the request. Pushes are idempotent per
// (client, round): the server counts only the first copy, so retrying after
// a lost response is safe — the retry just reports counted=false.
//
// Sentinel contract: a 409 response (the server aggregated past the pushed
// round — or, on a buffered server, past its staleness window) is reported
// as an error satisfying errors.Is(err, ErrStaleRound), so the caller knows
// to re-pull and retrain. Always match it with errors.Is, never ==; the
// sentinel may arrive wrapped with call-site context.
func (c *Client) Push(ctx context.Context, round int) (counted bool, err error) {
	if c.Compression != nil && c.negotiated {
		return c.pushDelta(ctx, round)
	}
	u := Update{
		ClientID: c.ID,
		Round:    round,
		Weight:   float64(c.Subset.Len()),
		Params:   nn.ExportParams(c.Model),
		BN:       nn.ExportBNStats(c.Model),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(u); err != nil {
		return false, fmt.Errorf("fldist: encoding update: %w", err)
	}
	return c.postUpdate(ctx, contentTypeGob, "", buf.Bytes())
}

// pushDelta sends the compressed update: the quantized difference between
// the trained replica and the base pulled this round, plus the residual
// carried over from the previous compressed push (error feedback). The new
// residual — what quantization lost this time — is committed only once the
// server acknowledges the update with 200, so a failed or stale push does
// not corrupt the feedback state.
func (c *Client) pushDelta(ctx context.Context, round int) (counted bool, err error) {
	comp, err := c.Compression.normalize()
	if err != nil {
		return false, err
	}
	params := nn.ExportParams(c.Model)
	bn := nn.ExportBNStats(c.Model)
	if len(params) != len(c.baseParams) || len(bn) != len(c.baseBN) {
		return false, fmt.Errorf("fldist: push: local model shape changed since pull")
	}
	if len(c.errParams) != len(params) {
		// Shape changed since the residual was recorded (or first push):
		// a stale residual must not be folded into the delta.
		c.errParams = nil
	}
	var pFrame []byte
	var eP []float64
	if comp.TopK > 0 {
		// Top-k sparse uplink: form the error-fed delta, keep only the K
		// largest-magnitude coordinates as a sparse frame, and let the
		// residual absorb everything sparsification dropped — an unsent
		// coordinate's entire delta rides to the next round, so sparsifying
		// delays small movements instead of losing them.
		d := formDelta(params, c.baseParams, c.errParams)
		idx := quant.TopKIndices(d, comp.TopK)
		deq := make([]float64, len(idx))
		pFrame = quant.EncodeSparse(d, idx, comp.Bits, comp.Chunk, deq)
		for j, ix := range idx {
			d[ix] -= deq[j]
		}
		eP = d
	} else {
		var qP quant.Chunked
		qP, eP = deltaQuantize(params, c.baseParams, c.errParams, comp)
		pFrame = quant.Encode(qP)
	}
	// The BN statistics delta: raw on a dense push — a handful of values
	// whose quantization damage (running variances crushed toward zero) far
	// outweighs the bytes, and raw means no residual to feed back. On a
	// top-k push the params frame is so small that raw BN would dominate the
	// body, so BN travels as a dense bnDeltaBits frame with its own
	// error-feedback residual instead.
	var bnFrame []byte
	var eBN []float64
	if comp.TopK > 0 {
		if len(c.errBN) != len(bn) {
			c.errBN = nil
		}
		dB := formDelta(bn, c.baseBN, c.errBN)
		qB := quant.QuantizeChunks(dB, bnDeltaBits, comp.Chunk)
		bnFrame = quant.Encode(qB)
		deqB := qB.Dequantize()
		for i := range dB {
			dB[i] -= deqB[i]
		}
		eBN = dB
	} else {
		dB := formDelta(bn, c.baseBN, nil)
		bnFrame = quant.EncodeRaw(dB)
	}
	body, err := encodeUpdateEnvelope(c.ID, round, float64(c.Subset.Len()), pFrame, bnFrame)
	if err != nil {
		return false, err
	}
	// A delta-downlink push declares its codec so the server resolves the
	// training base out of the chain's per-round base registry instead of
	// the dense served cache.
	codec := ""
	if comp.Delta {
		codec = codecValue(comp)
	}
	counted, err = c.postUpdate(ctx, contentTypeDelta, codec, body)
	if err == nil && c.residualRound != round+1 {
		// 200 (counted, or duplicate of an already-counted push of this
		// same delta whose response was lost): the quantized delta is part
		// of the server's round, so the residual advances — once per round.
		c.errParams = eP
		c.errBN = eBN
		c.residualRound = round + 1
	}
	return counted, err
}

// formDelta returns trained − base (+ residual when non-nil), element-wise.
func formDelta(trained, base, residual []float64) []float64 {
	d := make([]float64, len(trained))
	for i := range d {
		d[i] = trained[i] - base[i]
		if residual != nil {
			d[i] += residual[i]
		}
	}
	return d
}

// deltaQuantize forms the error-fed delta d = (params − base) + residual,
// quantizes it, and returns the quantized form together with the next
// residual d − dequantize(q).
func deltaQuantize(params, base, residual []float64, comp Compression) (quant.Chunked, []float64) {
	d := formDelta(params, base, residual)
	q := quant.QuantizeChunks(d, comp.Bits, comp.Chunk)
	deq := q.Dequantize()
	for i := range d {
		d[i] -= deq[i]
	}
	return q, d
}

// postUpdate POSTs one update body and maps the server's verdict to the
// (counted, err) contract shared by both wire protocols. A 409 carrying the
// retry marker is a transient server-side stall (a buffered commit still
// publishing), not a staleness verdict — the identical body is re-sent a
// few times before the push is given up as stale, so a fresh training pass
// is not discarded over a slow commit.
func (c *Client) postUpdate(ctx context.Context, contentType, codec string, body []byte) (bool, error) {
	const retries = 3
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/update",
			bytes.NewReader(body))
		if err != nil {
			return false, fmt.Errorf("fldist: push: %w", err)
		}
		req.Header.Set("Content-Type", contentType)
		if codec != "" {
			req.Header.Set(codecHeader, codec)
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			return false, fmt.Errorf("fldist: push: %w", err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			counted := resp.Header.Get("X-Fldist-Duplicate") == ""
			resp.Body.Close()
			return counted, nil
		case http.StatusConflict:
			retry := resp.Header.Get(retryHeader) != ""
			resp.Body.Close()
			if retry && attempt < retries {
				continue
			}
			return false, ErrStaleRound
		default:
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return false, fmt.Errorf("fldist: push: %s: %s", resp.Status, b)
		}
	}
}

// ErrStaleRound signals that the server moved on before this client's
// update arrived (on a buffered server: moved past the staleness window);
// the client should Pull and retrain. Match it with errors.Is — callers and
// intermediaries are free to wrap it.
var ErrStaleRound = errors.New("fldist: update for a stale round")

// RunRounds participates in n federated rounds: pull, train, push, retrying
// on stale rounds (each such retrain is tallied in StaleRetrains).
//
// Against the default synchronous server, after a counted push the client
// waits for the round to advance before pulling again — otherwise a fast
// client would retrain on the unchanged global model and push updates the
// server idempotently drops as duplicates (and mistake those for progress).
//
// With Async set (a server running WithBufferedAggregation), the loop
// pipelines pull → train → push with no round polling between rounds: a
// counted push immediately flows into the next pull, because the buffered
// server accepts the next update even if its base round is a little stale.
// The client only falls back to polling /round when it outruns the buffer —
// its own update is the newest thing on the server and pushing again from
// the same base would be dropped as a duplicate.
//
// Canceling ctx stops between steps and aborts in-flight requests.
func (c *Client) RunRounds(ctx context.Context, n int, lr float64) error {
	if c.Async {
		return c.runRoundsAsync(ctx, n, lr)
	}
	for done := 0; done < n; {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("fldist: client %d stopped after %d rounds: %w", c.ID, done, err)
		}
		round, err := c.Pull(ctx)
		if err != nil {
			return err
		}
		c.trainPass(lr)
		counted, err := c.Push(ctx, round)
		switch {
		case err == nil && counted:
			done++
			if done < n {
				if err := c.awaitRoundAfter(ctx, round); err != nil {
					return err
				}
			}
		case err == nil:
			// Duplicate: an earlier update of ours already counted toward
			// this round. Wait out the aggregation instead of spinning.
			if err := c.awaitRoundAfter(ctx, round); err != nil {
				return err
			}
		case errors.Is(err, ErrStaleRound):
			c.StaleRetrains++
			continue // re-pull and retrain on the fresh model
		default:
			return err
		}
	}
	return nil
}

// runRoundsAsync is the buffered-aggregation participation loop: see
// RunRounds.
func (c *Client) runRoundsAsync(ctx context.Context, n int, lr float64) error {
	lastCounted := -1 // base round of our last counted push
	for done := 0; done < n; {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("fldist: client %d stopped after %d rounds: %w", c.ID, done, err)
		}
		if lastCounted >= 0 {
			// Our previous push counted. If no commit has landed since, a
			// second push from the same base would be dropped as a
			// duplicate, so training now would be wasted work — and so
			// would re-downloading the model just to find that out. Probe
			// the cheap /round first and wait out the commit if needed.
			cur, err := c.Round(ctx)
			if err != nil {
				return err
			}
			if cur == lastCounted {
				if err := c.awaitRoundAfter(ctx, lastCounted); err != nil {
					return err
				}
			}
		}
		round, err := c.Pull(ctx)
		if err != nil {
			return err
		}
		if round == lastCounted {
			// Unreachable while rounds only advance (the probe above saw a
			// newer round before the pull); kept as defense so a surprise
			// never turns into duplicate-push training waste.
			if err := c.awaitRoundAfter(ctx, round); err != nil {
				return err
			}
			continue
		}
		c.trainPass(lr)
		counted, err := c.Push(ctx, round)
		switch {
		case err == nil && counted:
			done++
			lastCounted = round
		case err == nil:
			// Duplicate: a retried push from this base already counted.
			lastCounted = round
		case errors.Is(err, ErrStaleRound):
			// Only past the staleness window — this training pass is lost.
			c.StaleRetrains++
			continue
		default:
			return err
		}
	}
	return nil
}

// trainPass runs one local training pass plus the test straggler hook.
func (c *Client) trainPass(lr float64) {
	c.TrainLocal(lr)
	if c.testAfterTrain != nil {
		c.testAfterTrain()
	}
}

// Round fetches the server's current round number without transferring the
// model blob.
func (c *Client) Round(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/round", nil)
	if err != nil {
		return 0, fmt.Errorf("fldist: round: %w", err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, fmt.Errorf("fldist: round: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("fldist: round: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("fldist: round: %s: %s", resp.Status, body)
	}
	// strconv.Atoi over the trimmed body, not fmt.Sscanf: Sscanf("%d") stops
	// at the first non-digit and would silently accept a corrupted body like
	// "3 oops" as round 3. Anything but a bare decimal is a protocol error.
	round, err := strconv.Atoi(string(bytes.TrimSpace(body)))
	if err != nil {
		return 0, fmt.Errorf("fldist: round: malformed body %q: %w", body, err)
	}
	if round < 0 {
		return 0, fmt.Errorf("fldist: round: negative round %d", round)
	}
	return round, nil
}

// awaitRoundAfter polls the server's round counter (not the full model)
// until it exceeds round, with *jittered* exponential backoff between polls.
// The jitter matters at fleet scale: a synchronous round releases every
// client at the same instant, so a fixed backoff schedule keeps the whole
// fleet polling /round in lockstep — a thundering herd that shows up clearly
// at benchserve N=64. Drawing each sleep uniformly from [backoff/2, backoff)
// decorrelates the fleet while keeping the same mean. It returns when the
// aggregation that includes this client's update has completed, or with
// ctx's error on cancellation.
func (c *Client) awaitRoundAfter(ctx context.Context, round int) error {
	backoff := 2 * time.Millisecond
	const maxBackoff = 100 * time.Millisecond
	for {
		cur, err := c.Round(ctx)
		if err != nil {
			return err
		}
		if cur > round {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fldist: client %d canceled waiting for round %d: %w",
				c.ID, round+1, ctx.Err())
		case <-time.After(c.jitter(backoff)):
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// jitter draws a sleep uniformly from [d/2, d). It deliberately does NOT use
// c.Rng: the number of polls depends on wall-clock timing, so consuming the
// training RNG here would make a seeded client's batch order — and therefore
// its trained parameters — timing-dependent. The global source is
// thread-safe and only influences sleep lengths, never results.
func (c *Client) jitter(d time.Duration) time.Duration {
	return jitterDur(d)
}

// jitterDur draws a duration uniformly from [d/2, d) off the global RNG —
// shared by the client's round polling and the edge aggregator's upstream
// retries, so every backoff in the tree is decorrelated the same way.
func jitterDur(d time.Duration) time.Duration {
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	//lint:ignore determinism retry jitter decorrelates clients; it paces requests and never reaches model state
	return time.Duration(half + rand.Int63n(half))
}
