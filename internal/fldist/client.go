package fldist

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net/http"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/nn"
)

// Client is one federated participant talking to a parameter Server over
// HTTP. It owns a local model replica (structurally identical to the
// server's), its local data subset, and the training hyperparameters.
type Client struct {
	ID       int
	BaseURL  string
	HTTP     *http.Client
	Model    nn.Layer
	Subset   *data.Subset
	Cfg      fl.Config
	Rng      *rand.Rand
	PGDSteps int // 0 = standard training
}

// Pull fetches the current global model and loads it into the local replica.
// It returns the server round the blob belongs to. Canceling ctx aborts the
// request.
func (c *Client) Pull(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/model", nil)
	if err != nil {
		return 0, fmt.Errorf("fldist: pull: %w", err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, fmt.Errorf("fldist: pull: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("fldist: pull: %s: %s", resp.Status, body)
	}
	var blob ModelBlob
	if err := gob.NewDecoder(resp.Body).Decode(&blob); err != nil {
		return 0, fmt.Errorf("fldist: decoding model: %w", err)
	}
	nn.ImportParams(c.Model, blob.Params)
	if len(blob.BN) > 0 {
		nn.ImportBNStats(c.Model, blob.BN)
	}
	return blob.Round, nil
}

// TrainLocal runs the configured number of local (adversarial) SGD
// iterations on the local subset, mirroring the in-process trainers.
func (c *Client) TrainLocal(lr float64) float64 {
	opt := nn.NewSGD(lr, c.Cfg.Momentum, c.Cfg.WeightDecay)
	nn.ResetMomentum(c.Model.Params())
	batches := data.Batches(c.Subset.Indices, c.Cfg.Batch, c.Rng)
	if len(batches) == 0 {
		return 0
	}
	total := 0.0
	iters := 0
	for iters < c.Cfg.LocalIters {
		for _, b := range batches {
			if iters >= c.Cfg.LocalIters {
				break
			}
			x, y := data.Batch(c.Subset.Parent, b)
			if c.PGDSteps > 0 {
				x = attack.Perturb(attack.PGDConfig(c.Cfg.Eps, c.PGDSteps), x,
					attack.CEGradFn(c.Model, y), c.Rng)
			}
			out := c.Model.Forward(x, true)
			loss, g := nn.SoftmaxCrossEntropy(out, y)
			nn.ZeroGrads(c.Model)
			c.Model.Backward(g)
			opt.Step(c.Model.Params())
			total += loss
			iters++
		}
	}
	return total / float64(iters)
}

// Push uploads the trained replica for the given round. A 409 response
// (stale round) is reported as ErrStaleRound so callers can re-pull.
// Canceling ctx aborts the request. Pushes are idempotent per (client,
// round): the server counts only the first copy, so retrying after a lost
// response is safe.
func (c *Client) Push(ctx context.Context, round int) error {
	u := Update{
		ClientID: c.ID,
		Round:    round,
		Weight:   float64(c.Subset.Len()),
		Params:   nn.ExportParams(c.Model),
		BN:       nn.ExportBNStats(c.Model),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(u); err != nil {
		return fmt.Errorf("fldist: encoding update: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/update", &buf)
	if err != nil {
		return fmt.Errorf("fldist: push: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("fldist: push: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return ErrStaleRound
	default:
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("fldist: push: %s: %s", resp.Status, body)
	}
}

// ErrStaleRound signals that the server moved on before this client's
// update arrived; the client should Pull and retrain.
var ErrStaleRound = fmt.Errorf("fldist: update for a stale round")

// RunRounds participates in n federated rounds: pull, train, push,
// retrying on stale rounds. Canceling ctx stops between steps and aborts
// in-flight requests.
func (c *Client) RunRounds(ctx context.Context, n int, lr float64) error {
	for done := 0; done < n; {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("fldist: client %d stopped after %d rounds: %w", c.ID, done, err)
		}
		round, err := c.Pull(ctx)
		if err != nil {
			return err
		}
		c.TrainLocal(lr)
		switch err := c.Push(ctx, round); err {
		case nil:
			done++
		case ErrStaleRound:
			continue // re-pull and retrain on the fresh model
		default:
			return err
		}
	}
	return nil
}
