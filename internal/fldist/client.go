package fldist

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/nn"
)

// Client is one federated participant talking to a parameter Server over
// HTTP. It owns a local model replica (structurally identical to the
// server's), its local data subset, and the training hyperparameters.
type Client struct {
	ID       int
	BaseURL  string
	HTTP     *http.Client
	Model    nn.Layer
	Subset   *data.Subset
	Cfg      fl.Config
	Rng      *rand.Rand
	PGDSteps int // 0 = standard training
}

// Pull fetches the current global model and loads it into the local replica.
// It returns the server round the blob belongs to. Canceling ctx aborts the
// request.
func (c *Client) Pull(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/model", nil)
	if err != nil {
		return 0, fmt.Errorf("fldist: pull: %w", err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, fmt.Errorf("fldist: pull: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("fldist: pull: %s: %s", resp.Status, body)
	}
	var blob ModelBlob
	if err := gob.NewDecoder(resp.Body).Decode(&blob); err != nil {
		return 0, fmt.Errorf("fldist: decoding model: %w", err)
	}
	nn.ImportParams(c.Model, blob.Params)
	if len(blob.BN) > 0 {
		nn.ImportBNStats(c.Model, blob.BN)
	}
	return blob.Round, nil
}

// TrainLocal runs the configured number of local (adversarial) SGD
// iterations on the local subset, mirroring the in-process trainers.
func (c *Client) TrainLocal(lr float64) float64 {
	opt := nn.NewSGD(lr, c.Cfg.Momentum, c.Cfg.WeightDecay)
	nn.ResetMomentum(c.Model.Params())
	batches := data.Batches(c.Subset.Indices, c.Cfg.Batch, c.Rng)
	if len(batches) == 0 {
		return 0
	}
	total := 0.0
	iters := 0
	for iters < c.Cfg.LocalIters {
		for _, b := range batches {
			if iters >= c.Cfg.LocalIters {
				break
			}
			x, y := data.Batch(c.Subset.Parent, b)
			if c.PGDSteps > 0 {
				x = attack.Perturb(attack.PGDConfig(c.Cfg.Eps, c.PGDSteps), x,
					attack.CEGradFn(c.Model, y), c.Rng)
			}
			out := c.Model.Forward(x, true)
			loss, g := nn.SoftmaxCrossEntropy(out, y)
			nn.ZeroGrads(c.Model)
			c.Model.Backward(g)
			opt.Step(c.Model.Params())
			total += loss
			iters++
		}
	}
	return total / float64(iters)
}

// Push uploads the trained replica for the given round. counted reports
// whether the server added this update to the round's aggregate; it is false
// when the server had already counted an update from this client for the
// round (the X-Fldist-Duplicate marker) and idempotently dropped this copy.
// A 409 response (stale round) is reported as ErrStaleRound so callers can
// re-pull. Canceling ctx aborts the request. Pushes are idempotent per
// (client, round): the server counts only the first copy, so retrying after
// a lost response is safe — the retry just reports counted=false.
func (c *Client) Push(ctx context.Context, round int) (counted bool, err error) {
	u := Update{
		ClientID: c.ID,
		Round:    round,
		Weight:   float64(c.Subset.Len()),
		Params:   nn.ExportParams(c.Model),
		BN:       nn.ExportBNStats(c.Model),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(u); err != nil {
		return false, fmt.Errorf("fldist: encoding update: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/update", &buf)
	if err != nil {
		return false, fmt.Errorf("fldist: push: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return false, fmt.Errorf("fldist: push: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return resp.Header.Get("X-Fldist-Duplicate") == "", nil
	case http.StatusConflict:
		return false, ErrStaleRound
	default:
		body, _ := io.ReadAll(resp.Body)
		return false, fmt.Errorf("fldist: push: %s: %s", resp.Status, body)
	}
}

// ErrStaleRound signals that the server moved on before this client's
// update arrived; the client should Pull and retrain.
var ErrStaleRound = fmt.Errorf("fldist: update for a stale round")

// RunRounds participates in n federated rounds: pull, train, push, retrying
// on stale rounds. The server is a synchronous FedAvg aggregator, so after a
// counted push the client waits for the round to advance before pulling
// again — otherwise a fast client would retrain on the unchanged global
// model and push updates the server idempotently drops as duplicates (and
// mistake those for progress). Canceling ctx stops between steps and aborts
// in-flight requests.
func (c *Client) RunRounds(ctx context.Context, n int, lr float64) error {
	for done := 0; done < n; {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("fldist: client %d stopped after %d rounds: %w", c.ID, done, err)
		}
		round, err := c.Pull(ctx)
		if err != nil {
			return err
		}
		c.TrainLocal(lr)
		counted, err := c.Push(ctx, round)
		switch {
		case err == nil && counted:
			done++
			if done < n {
				if err := c.awaitRoundAfter(ctx, round); err != nil {
					return err
				}
			}
		case err == nil:
			// Duplicate: an earlier update of ours already counted toward
			// this round. Wait out the aggregation instead of spinning.
			if err := c.awaitRoundAfter(ctx, round); err != nil {
				return err
			}
		case err == ErrStaleRound:
			continue // re-pull and retrain on the fresh model
		default:
			return err
		}
	}
	return nil
}

// Round fetches the server's current round number without transferring the
// model blob.
func (c *Client) Round(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/round", nil)
	if err != nil {
		return 0, fmt.Errorf("fldist: round: %w", err)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, fmt.Errorf("fldist: round: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("fldist: round: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("fldist: round: %s: %s", resp.Status, body)
	}
	var round int
	if _, err := fmt.Sscanf(string(bytes.TrimSpace(body)), "%d", &round); err != nil {
		return 0, fmt.Errorf("fldist: round: parsing %q: %w", body, err)
	}
	return round, nil
}

// awaitRoundAfter polls the server's round counter (not the full model)
// until it exceeds round, with exponential backoff between polls. It returns
// when the aggregation that includes this client's update has completed, or
// with ctx's error on cancellation.
func (c *Client) awaitRoundAfter(ctx context.Context, round int) error {
	backoff := 2 * time.Millisecond
	const maxBackoff = 100 * time.Millisecond
	for {
		cur, err := c.Round(ctx)
		if err != nil {
			return err
		}
		if cur > round {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fldist: client %d canceled waiting for round %d: %w",
				c.ID, round+1, ctx.Err())
		case <-time.After(backoff):
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}
