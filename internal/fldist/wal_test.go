package fldist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"fedprophet/internal/quant"
)

// Golden-vector and corruption tests of the FWL1 record format. The encoders
// must be byte-stable — recovery determinism and the docs/ARCHITECTURE.md
// format spec both depend on the bytes never drifting — so every record type
// is pinned against a checked-in reference encoding under testdata/. The
// decoders must uphold the ErrWAL contract: structurally bad bytes yield an
// error wrapping ErrWAL, never a panic, no matter where the corruption sits.

var updateGolden = flag.Bool("update", false, "rewrite the golden WAL vectors under testdata/")

// goldenVec builds a small deterministic vector of exactly representable
// values, so the golden bytes are stable across platforms.
func goldenVec(n int, scale float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = scale * (float64(i) - 1.5)
	}
	return v
}

// goldenWALRecords enumerates one reference record per type, with fixed
// logical content. Changing any encoder in wal.go breaks these on purpose:
// a byte-level format change must be a deliberate, versioned decision.
func goldenWALRecords() map[string][]byte {
	meta := walMeta{async: true, quorumOrK: 4, maxStale: 2, nParams: 5, nBN: 2}
	commit := walCommit{
		round:  3,
		params: goldenVec(5, 0.25),
		bn:     goldenVec(2, -2),
		downErr: []walVariantErr{
			// Deliberately out of (bits, chunk) order: the encoder must sort.
			{comp: Compression{Bits: 8, Chunk: 64}, residual: goldenVec(5, 0.125)},
			{comp: Compression{Bits: 4, Chunk: 32}, residual: goldenVec(5, -0.5)},
		},
	}
	admit := &walAdmit{
		admitRound: 3, baseRound: 2, clientID: 9, comp: true, effW: 1.5,
		dp: goldenVec(5, 2), db: goldenVec(2, 0.75),
	}
	// Frame form: wire frames verbatim — a quantized params frame (power-of-two
	// scales, so the encoding is exact and platform-stable) and a raw BN frame.
	frameAdmit := &walAdmit{
		admitRound: 4, baseRound: 3, clientID: 11, comp: true, effW: 0.5,
		frames: append(
			quant.Encode(quant.QuantizeChunks(goldenVec(8, 0.5), 8, 4)),
			quant.EncodeRaw(goldenVec(2, 1))...),
	}
	edge := walEdgeBatch{
		pushID: 1 << 20, pushSeq: 3, baseRnd: 2, weight: 2.5, updates: 4,
		payloadP: goldenVec(5, 1), payloadB: goldenVec(2, -1),
		baseP: goldenVec(5, 0.5), baseBN: goldenVec(2, 4),
	}
	return map[string][]byte{
		"fwl1_meta.bin":         appendWALRecord(nil, walRecMeta, 0, appendWALMeta(nil, meta)),
		"fwl1_commit.bin":       appendWALRecord(nil, walRecCommit, 7, appendWALCommit(nil, commit)),
		"fwl1_admit.bin":        appendWALRecord(nil, walRecAdmit, 8, appendWALAdmit(nil, admit)),
		"fwl1_admit_frames.bin": appendWALRecord(nil, walRecAdmit, 9, appendWALAdmit(nil, frameAdmit)),
		"fwl1_edge.bin":         appendWALRecord(nil, walRecEdgeBatch, 0, appendWALEdgeBatch(nil, edge)),
	}
}

// Encode byte-stability: every record type's encoding matches the checked-in
// golden bytes exactly. Run with -update to regenerate after a deliberate
// format change (and bump walVersion when doing so).
func TestWALGoldenVectors(t *testing.T) {
	for name, got := range goldenWALRecords() {
		path := filepath.Join("testdata", name)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to generate)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: encoding drifted from golden bytes (%d vs %d bytes); a format change needs a version bump and -update", name, len(got), len(want))
		}
	}
}

// Round trip: every golden record parses back to its logical content.
func TestWALRecordRoundTrip(t *testing.T) {
	recs := goldenWALRecords()

	typ, seq, payload, size, err := parseWALRecord(recs["fwl1_commit.bin"])
	if err != nil || typ != walRecCommit || seq != 7 || size != len(recs["fwl1_commit.bin"]) {
		t.Fatalf("commit header: typ=%d seq=%d size=%d err=%v", typ, seq, size, err)
	}
	c, err := parseWALCommit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if c.round != 3 || len(c.params) != 5 || len(c.bn) != 2 || len(c.downErr) != 2 {
		t.Fatalf("commit content: %+v", c)
	}
	// The encoder sorted the variants by (bits, chunk).
	if c.downErr[0].comp != (Compression{Bits: 4, Chunk: 32}) || c.downErr[1].comp != (Compression{Bits: 8, Chunk: 64}) {
		t.Fatalf("variants not in (bits, chunk) order: %+v", c.downErr)
	}
	for i, v := range goldenVec(5, 0.25) {
		if c.params[i] != v {
			t.Fatalf("params[%d] = %v, want %v", i, c.params[i], v)
		}
	}

	_, _, payload, _, err = parseWALRecord(recs["fwl1_admit.bin"])
	if err != nil {
		t.Fatal(err)
	}
	a, err := parseWALAdmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if a.admitRound != 3 || a.baseRound != 2 || a.clientID != 9 || !a.comp || a.effW != 1.5 {
		t.Fatalf("admit content: %+v", a)
	}
	if len(a.frames) != 0 {
		t.Fatalf("delta-form admit decoded with %d frame bytes", len(a.frames))
	}

	_, _, payload, _, err = parseWALRecord(recs["fwl1_admit_frames.bin"])
	if err != nil {
		t.Fatal(err)
	}
	fa, err := parseWALAdmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if fa.admitRound != 4 || fa.baseRound != 3 || fa.clientID != 11 || !fa.comp || fa.effW != 0.5 {
		t.Fatalf("frame admit content: %+v", fa)
	}
	wantFrames := append(
		quant.Encode(quant.QuantizeChunks(goldenVec(8, 0.5), 8, 4)),
		quant.EncodeRaw(goldenVec(2, 1))...)
	if !bytes.Equal(fa.frames, wantFrames) {
		t.Fatalf("frame admit: frames did not round-trip verbatim (%d vs %d bytes)", len(fa.frames), len(wantFrames))
	}
	if fa.dp != nil || fa.db != nil {
		t.Fatalf("frame-form admit decoded delta vectors: dp=%v db=%v", fa.dp, fa.db)
	}

	_, _, payload, _, err = parseWALRecord(recs["fwl1_edge.bin"])
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseWALEdgeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if b.pushID != 1<<20 || b.pushSeq != 3 || b.baseRnd != 2 || b.weight != 2.5 || b.updates != 4 {
		t.Fatalf("edge batch content: %+v", b)
	}

	_, _, payload, _, err = parseWALRecord(recs["fwl1_meta.bin"])
	if err != nil {
		t.Fatal(err)
	}
	m, err := parseWALMeta(payload)
	if err != nil {
		t.Fatal(err)
	}
	if m != (walMeta{async: true, quorumOrK: 4, maxStale: 2, nParams: 5, nBN: 2}) {
		t.Fatalf("meta content: %+v", m)
	}
}

// The corruption contract: every hand-corrupted variant of a valid record
// yields an error wrapping ErrWAL — never a panic, never a silent success.
func TestWALRecordCorruption(t *testing.T) {
	valid := goldenWALRecords()["fwl1_commit.bin"]

	cases := []struct {
		name    string
		corrupt func() []byte
	}{
		{"bad magic", func() []byte {
			b := append([]byte(nil), valid...)
			b[0] ^= 0xff
			return b
		}},
		{"bad crc via payload flip", func() []byte {
			b := append([]byte(nil), valid...)
			b[len(b)-1] ^= 0x01
			return b
		}},
		{"bad crc via header flip", func() []byte {
			b := append([]byte(nil), valid...)
			b[4] ^= 0x01 // record type participates in the CRC
			return b
		}},
		{"zero-length record", func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(b[5:9], 0)
			return b
		}},
		{"oversized declared length", func() []byte {
			b := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint32(b[5:9], uint32(walMaxPayload+1))
			return b
		}},
		{"truncated payload", func() []byte {
			return append([]byte(nil), valid[:len(valid)-3]...)
		}},
		{"truncated header", func() []byte {
			return append([]byte(nil), valid[:walHeaderSize-2]...)
		}},
		{"empty buffer", func() []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, _, err := parseWALRecord(tc.corrupt())
			if !errors.Is(err, ErrWAL) {
				t.Fatalf("err = %v, want ErrWAL", err)
			}
		})
	}
}

// Payload-level corruption below the CRC (a buggy or foreign writer, not bit
// rot): the per-type parsers must also uphold the ErrWAL contract.
func TestWALPayloadCorruption(t *testing.T) {
	if _, err := parseWALMeta([]byte{1, 2, 3}); !errors.Is(err, ErrWAL) {
		t.Fatalf("short meta: %v", err)
	}
	if _, err := parseWALMeta(append([]byte{7}, make([]byte, 16)...)); !errors.Is(err, ErrWAL) {
		t.Fatalf("bad meta mode: %v", err)
	}

	// Commit whose variant count promises more than the payload holds.
	c := appendWALCommit(nil, walCommit{round: 1, params: goldenVec(3, 1), bn: goldenVec(2, 1)})
	binary.LittleEndian.PutUint32(c[len(c)-4:], 5)
	if _, err := parseWALCommit(c); !errors.Is(err, ErrWAL) {
		t.Fatalf("truncated variants: %v", err)
	}
	// Variant count beyond the served-codec cap: refused before any loop.
	c2 := appendWALCommit(nil, walCommit{round: 1, params: goldenVec(3, 1), bn: goldenVec(2, 1)})
	binary.LittleEndian.PutUint32(c2[len(c2)-4:], uint32(maxCodecVariants+1))
	if _, err := parseWALCommit(c2); !errors.Is(err, ErrWAL) {
		t.Fatalf("variant count over cap: %v", err)
	}
	// Trailing bytes after a complete commit payload.
	c3 := append(appendWALCommit(nil, walCommit{round: 1, params: goldenVec(3, 1), bn: goldenVec(2, 1)}), 0xee)
	if _, err := parseWALCommit(c3); !errors.Is(err, ErrWAL) {
		t.Fatalf("trailing bytes: %v", err)
	}
	// A quantized frame where the WAL requires raw.
	q := quant.QuantizeChunks(goldenVec(8, 1), 4, 4)
	bad := binary.LittleEndian.AppendUint32(nil, 1)
	bad = append(bad, quant.Encode(q)...)
	if _, err := parseWALCommit(bad); !errors.Is(err, ErrWAL) {
		t.Fatalf("quantized frame in commit: %v", err)
	}

	if _, err := parseWALAdmit(make([]byte, 10)); !errors.Is(err, ErrWAL) {
		t.Fatalf("short admit: %v", err)
	}
	// Frame-form flag set but no frame bytes behind the fixed header.
	emptyFrames := make([]byte, 21)
	emptyFrames[12] = walAdmitFrames
	if _, err := parseWALAdmit(emptyFrames); !errors.Is(err, ErrWAL) {
		t.Fatalf("frame-form admit with no frames: %v", err)
	}
	// Unknown flag bits: refused rather than silently reinterpreted by a
	// future reader that assigns them meaning.
	unknownFlags := make([]byte, 22)
	unknownFlags[12] = walAdmitFrames | 0x80
	if _, err := parseWALAdmit(unknownFlags); !errors.Is(err, ErrWAL) {
		t.Fatalf("unknown admit flags: %v", err)
	}
	if _, err := parseWALEdgeBatch(make([]byte, 10)); !errors.Is(err, ErrWAL) {
		t.Fatalf("short edge batch: %v", err)
	}
}

// The idx checkpoint: round trip, the 255-entry cap, and the corruption
// contract (a bad idx must read as ErrWAL so recovery falls back to the full
// scan instead of trusting it).
func TestWALIdxRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	in := []walIdxEntry{{round: 3, off: 17}, {round: 4, off: 900}, {round: 5, off: 4096}}
	if err := writeWALIdx(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := readWALIdx(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}

	path := filepath.Join(dir, walIdxName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func([]byte) []byte{
		"flipped crc":    func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"bad magic":      func(b []byte) []byte { b[0] ^= 1; return b },
		"length mangled": func(b []byte) []byte { return b[:len(b)-5] },
		"truncated":      func(b []byte) []byte { return b[:4] },
	} {
		if err := os.WriteFile(path, mut(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readWALIdx(dir); !errors.Is(err, ErrWAL) {
			t.Fatalf("%s: err = %v, want ErrWAL", name, err)
		}
	}
}

// The edge parked-batch slot: write/read/clear round trip, empty-slot
// reporting, and corruption → ErrWAL (a corrupt slot must never be silently
// dropped as "no batch").
func TestEdgeWALSlot(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := readEdgeWAL(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	in := walEdgeBatch{
		pushID: 42, pushSeq: 7, baseRnd: 3, weight: 1.25, updates: 2,
		payloadP: goldenVec(6, 1), payloadB: goldenVec(2, 2),
		baseP: goldenVec(6, 3), baseBN: goldenVec(2, 4),
	}
	if err := writeEdgeWAL(dir, in); err != nil {
		t.Fatal(err)
	}
	out, ok, err := readEdgeWAL(dir)
	if err != nil || !ok {
		t.Fatalf("read: ok=%v err=%v", ok, err)
	}
	if out.pushID != in.pushID || out.pushSeq != in.pushSeq || out.baseRnd != in.baseRnd ||
		out.weight != in.weight || out.updates != in.updates {
		t.Fatalf("slot round trip: %+v", out)
	}
	for i := range in.payloadP {
		if out.payloadP[i] != in.payloadP[i] {
			t.Fatalf("payloadP[%d] = %v, want %v", i, out.payloadP[i], in.payloadP[i])
		}
	}

	// Replace wins whole: a second write atomically supersedes the first.
	in2 := in
	in2.baseRnd = 9
	if err := writeEdgeWAL(dir, in2); err != nil {
		t.Fatal(err)
	}
	if out, _, _ := readEdgeWAL(dir); out.baseRnd != 9 {
		t.Fatalf("rewrite: baseRnd = %d, want 9", out.baseRnd)
	}

	// Corrupt slot: ErrWAL, not an empty read.
	raw, err := os.ReadFile(filepath.Join(dir, edgeWALName))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 1
	if err := os.WriteFile(filepath.Join(dir, edgeWALName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readEdgeWAL(dir); !errors.Is(err, ErrWAL) {
		t.Fatalf("corrupt slot: err = %v, want ErrWAL", err)
	}

	if err := clearEdgeWAL(dir); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := readEdgeWAL(dir); err != nil || ok {
		t.Fatalf("after clear: ok=%v err=%v", ok, err)
	}
	if err := clearEdgeWAL(dir); err != nil { // missing is success
		t.Fatal(err)
	}
}
