package fldist

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/internal/fl"
	"fedprophet/internal/nn"
)

func testSetup(t *testing.T, clients int, seed int64) (*data.Dataset, *data.Dataset, []*data.Subset, func() *nn.Model) {
	t.Helper()
	cfg := data.SyntheticConfig{
		Name: "dist", Classes: 3, Shape: []int{2, 8, 8},
		TrainPerClass: 30, TestPerClass: 10,
		NoiseStd: 0.08, MixMax: 0.2, Seed: seed,
	}
	train, test := data.Generate(cfg)
	subs := data.PartitionNonIID(train, data.DefaultPartition(clients, seed))
	build := func() *nn.Model {
		return nn.CNN3([]int{2, 8, 8}, 3, 4, rand.New(rand.NewSource(seed)))
	}
	return train, test, subs, build
}

func clientCfg() fl.Config {
	cfg := fl.DefaultConfig()
	cfg.LocalIters = 6
	cfg.Batch = 8
	cfg.Momentum = 0.9
	cfg.WeightDecay = 1e-4
	return cfg
}

func TestServerModelRoundTrip(t *testing.T) {
	_, _, subs, build := testSetup(t, 2, 1)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &Client{
		ID: 0, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[0], Cfg: clientCfg(),
		Rng: rand.New(rand.NewSource(2)),
	}
	round, err := c.Pull(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if round != 0 {
		t.Fatalf("round = %d, want 0", round)
	}
	a := nn.ExportParams(m)
	b := nn.ExportParams(c.Model)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pulled model differs from the server's global")
		}
	}
}

func TestPushAggregatesAndAdvancesRound(t *testing.T) {
	_, _, subs, build := testSetup(t, 2, 3)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mk := func(id int) *Client {
		return &Client{
			ID: id, BaseURL: ts.URL, HTTP: ts.Client(),
			Model: build(), Subset: subs[id], Cfg: clientCfg(),
			Rng: rand.New(rand.NewSource(int64(10 + id))),
		}
	}
	c0, c1 := mk(0), mk(1)
	for _, c := range []*Client{c0, c1} {
		if _, err := c.Pull(context.Background()); err != nil {
			t.Fatal(err)
		}
		c.TrainLocal(0.05)
	}
	if counted, err := c0.Push(context.Background(), 0); err != nil || !counted {
		t.Fatalf("push: counted=%v err=%v", counted, err)
	}
	if srv.Round() != 0 {
		t.Fatal("round must not advance before quorum")
	}
	if counted, err := c1.Push(context.Background(), 0); err != nil || !counted {
		t.Fatalf("push: counted=%v err=%v", counted, err)
	}
	if srv.Round() != 1 {
		t.Fatalf("round = %d after quorum, want 1", srv.Round())
	}
	// The aggregate must be the weighted mean of the two uploads.
	p0 := nn.ExportParams(c0.Model)
	p1 := nn.ExportParams(c1.Model)
	w0, w1 := float64(subs[0].Len()), float64(subs[1].Len())
	got, _ := srv.Snapshot()
	for i := range got {
		want := (w0*p0[i] + w1*p1[i]) / (w0 + w1)
		if diff := got[i] - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("aggregate[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestStaleRoundRejected(t *testing.T) {
	_, _, subs, build := testSetup(t, 3, 5)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mk := func(id int) *Client {
		return &Client{
			ID: id, BaseURL: ts.URL, HTTP: ts.Client(),
			Model: build(), Subset: subs[id], Cfg: clientCfg(),
			Rng: rand.New(rand.NewSource(int64(20 + id))),
		}
	}
	fast, slow := mk(0), mk(1)
	if _, err := slow.Pull(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Fast client completes round 0 (quorum 1 → aggregation).
	if _, err := fast.Pull(context.Background()); err != nil {
		t.Fatal(err)
	}
	fast.TrainLocal(0.05)
	if _, err := fast.Push(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	// Slow client now pushes for round 0 and must be told it is stale. The
	// sentinel contract is errors.Is, never ==: Push is free to wrap it.
	slow.TrainLocal(0.05)
	if _, err := slow.Push(context.Background(), 0); !errors.Is(err, ErrStaleRound) {
		t.Fatalf("want ErrStaleRound, got %v", err)
	}
}

// The /round body must be a bare ASCII decimal: a trailing-garbage body that
// fmt.Sscanf("%d") would have silently accepted (e.g. "3 oops" → 3) is a
// protocol error, as is anything non-numeric or negative.
func TestRoundParsingRejectsGarbage(t *testing.T) {
	cases := []struct {
		body string
		want int
		ok   bool
	}{
		{"3", 3, true},
		{" 7\n", 7, true}, // surrounding whitespace is tolerated
		{"0", 0, true},
		{"3 oops", 0, false},
		{"3.5", 0, false},
		{"", 0, false},
		{"-1", 0, false},
		{"0x10", 0, false},
	}
	for _, tc := range cases {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, tc.body)
		}))
		c := &Client{ID: 0, BaseURL: ts.URL, HTTP: ts.Client()}
		got, err := c.Round(context.Background())
		ts.Close()
		if tc.ok {
			if err != nil || got != tc.want {
				t.Fatalf("Round(%q) = %d, %v; want %d, nil", tc.body, got, err, tc.want)
			}
			continue
		}
		if err == nil {
			t.Fatalf("Round(%q) = %d, want protocol error", tc.body, got)
		}
	}
}

func TestMalformedAndWrongShapeUpdates(t *testing.T) {
	_, _, _, build := testSetup(t, 2, 7)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/update", "application/octet-stream",
		bytes.NewReader([]byte("garbage")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage update: status %d", resp.StatusCode)
	}

	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(Update{Round: 0, Weight: 1, Params: []float64{1, 2}})
	resp2, err := ts.Client().Post(ts.URL+"/update", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-shape update: status %d", resp2.StatusCode)
	}
}

// End-to-end: concurrent clients federate over real HTTP and the global
// model learns the task.
func TestDistributedFederationLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed integration test")
	}
	const clients = 3
	const rounds = 6
	train, test, subs, build := testSetup(t, clients, 9)
	_ = train
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), clients)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &Client{
				ID: id, BaseURL: ts.URL, HTTP: ts.Client(),
				Model: build(), Subset: subs[id], Cfg: clientCfg(),
				Rng: rand.New(rand.NewSource(int64(100 + id))),
			}
			errs[id] = c.RunRounds(context.Background(), rounds, 0.05)
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	if srv.RoundsCompleted() < rounds {
		t.Fatalf("server completed %d rounds, want ≥ %d", srv.RoundsCompleted(), rounds)
	}

	params, bn := srv.Snapshot()
	final := build()
	nn.ImportParams(final, params)
	nn.ImportBNStats(final, bn)
	acc := attack.CleanAccuracy(final, test, 16)
	if acc <= 0.5 {
		t.Fatalf("distributed federation failed to learn: accuracy %v", acc)
	}
}

// A client that retries its push after a lost/slow 200 must not be
// double-counted in the round's FedAvg weights.
func TestDuplicateUpdateNotDoubleCounted(t *testing.T) {
	_, _, subs, build := testSetup(t, 2, 13)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mk := func(id int) *Client {
		return &Client{
			ID: id, BaseURL: ts.URL, HTTP: ts.Client(),
			Model: build(), Subset: subs[id], Cfg: clientCfg(),
			Rng: rand.New(rand.NewSource(int64(40 + id))),
		}
	}
	ctx := context.Background()
	c0, c1 := mk(0), mk(1)
	for _, c := range []*Client{c0, c1} {
		if _, err := c.Pull(ctx); err != nil {
			t.Fatal(err)
		}
		c.TrainLocal(0.05)
	}
	// Client 0 pushes, then retries the same round (simulating a lost 200).
	if counted, err := c0.Push(ctx, 0); err != nil || !counted {
		t.Fatalf("first push: counted=%v err=%v", counted, err)
	}
	counted, err := c0.Push(ctx, 0)
	if err != nil {
		t.Fatalf("duplicate push must be acknowledged idempotently, got %v", err)
	}
	if counted {
		t.Fatal("duplicate push must report counted=false so the client does not mistake it for progress")
	}
	if srv.Round() != 0 {
		t.Fatal("duplicate must not count toward the quorum")
	}
	if got := srv.DuplicatesDropped(); got != 1 {
		t.Fatalf("DuplicatesDropped = %d, want 1", got)
	}
	if counted, err := c1.Push(ctx, 0); err != nil || !counted {
		t.Fatalf("push: counted=%v err=%v", counted, err)
	}
	if srv.Round() != 1 {
		t.Fatalf("round = %d after both distinct clients pushed, want 1", srv.Round())
	}
	// The aggregate must weight each client exactly once.
	p0, p1 := nn.ExportParams(c0.Model), nn.ExportParams(c1.Model)
	w0, w1 := float64(subs[0].Len()), float64(subs[1].Len())
	got, _ := srv.Snapshot()
	for i := range got {
		want := (w0*p0[i] + w1*p1[i]) / (w0 + w1)
		if diff := got[i] - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("aggregate[%d] = %v, want single-counted %v", i, got[i], want)
		}
	}
}

// Serve must run until canceled, then shut down gracefully.
func TestServerGracefulShutdown(t *testing.T) {
	_, _, _, build := testSetup(t, 2, 17)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()

	// Wait until the server answers, then cancel and expect a clean exit.
	c := &Client{ID: 0, BaseURL: "http://" + ln.Addr().String(), HTTP: &http.Client{}, Model: build()}
	var pullErr error
	for i := 0; i < 50; i++ {
		if _, pullErr = c.Pull(ctx); pullErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if pullErr != nil {
		t.Fatalf("server never came up: %v", pullErr)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down after cancel")
	}
}

// The lightweight round endpoint must track aggregations without shipping
// the model blob.
func TestRoundEndpoint(t *testing.T) {
	_, _, subs, build := testSetup(t, 2, 19)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &Client{
		ID: 0, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[0], Cfg: clientCfg(),
		Rng: rand.New(rand.NewSource(60)),
	}
	ctx := context.Background()
	if r, err := c.Round(ctx); err != nil || r != 0 {
		t.Fatalf("Round = %d, %v; want 0, nil", r, err)
	}
	if _, err := c.Pull(ctx); err != nil {
		t.Fatal(err)
	}
	c.TrainLocal(0.05)
	if counted, err := c.Push(ctx, 0); err != nil || !counted {
		t.Fatalf("push: counted=%v err=%v", counted, err)
	}
	if r, err := c.Round(ctx); err != nil || r != 1 {
		t.Fatalf("Round after quorum = %d, %v; want 1, nil", r, err)
	}
}
