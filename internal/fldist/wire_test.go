package fldist

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"fedprophet/internal/attack"
	"fedprophet/internal/nn"
	"fedprophet/internal/quant"
)

// mkClient builds a test client; comp == nil means the raw gob protocol.
func mkClient(t *testing.T, ts *httptest.Server, id int, seed int64, comp *Compression) *Client {
	t.Helper()
	_, _, subs, build := testSetup(t, 3, 3)
	return &Client{
		ID: id, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[id], Cfg: clientCfg(),
		Rng:         rand.New(rand.NewSource(seed)),
		Compression: comp,
	}
}

// A compressed pull must negotiate the codec, deliver the quantized model,
// and a compressed push must land as base + dequantized delta.
func TestCompressedPullPushRoundTrip(t *testing.T) {
	_, _, subs, build := testSetup(t, 2, 1)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	comp := Compression{Bits: 8, Chunk: 64}
	c := &Client{
		ID: 0, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[0], Cfg: clientCfg(),
		Rng:         rand.New(rand.NewSource(2)),
		Compression: &comp,
	}
	ctx := context.Background()
	round, err := c.Pull(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if round != 0 || !c.negotiated {
		t.Fatalf("round=%d negotiated=%v, want 0/true", round, c.negotiated)
	}
	// The pulled model is the server's global quantized at 8 bits: close to
	// but (generically) not equal to the exact params, and exactly equal to
	// the base the client retains.
	global := nn.ExportParams(m)
	pulled := nn.ExportParams(c.Model)
	qExpect := quant.QuantizeChunks(global, comp.Bits, comp.Chunk)
	wantBase := qExpect.Dequantize()
	for i := range pulled {
		if pulled[i] != wantBase[i] || c.baseParams[i] != wantBase[i] {
			t.Fatalf("pulled[%d]=%v base=%v want quantized global %v",
				i, pulled[i], c.baseParams[i], wantBase[i])
		}
	}

	c.TrainLocal(0.05)
	trained := nn.ExportParams(c.Model)
	// Recompute the exact reconstruction the server must produce.
	qd, _ := deltaQuantize(trained, c.baseParams, nil, comp)
	want := qd.Dequantize()
	for i := range want {
		want[i] += wantBase[i]
	}
	counted, err := c.Push(ctx, 0)
	if err != nil || !counted {
		t.Fatalf("push: counted=%v err=%v", counted, err)
	}
	if srv.Round() != 1 {
		t.Fatalf("round = %d after quorum-1 push, want 1", srv.Round())
	}
	got, _ := srv.Snapshot()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("server[%d] = %v, want base+delta reconstruction %v", i, got[i], want[i])
		}
	}
	// Error feedback state advanced and holds the quantization residual.
	if c.errParams == nil || c.residualRound != 1 {
		t.Fatalf("residual not committed: err=%v round=%d", c.errParams != nil, c.residualRound)
	}
}

// One compressed and one raw client in the same round must aggregate into
// the exact weighted average of (base+delta reconstruction) and the raw
// parameters.
func TestMixedFleetAggregatesCorrectly(t *testing.T) {
	_, _, subs, build := testSetup(t, 2, 3)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	comp := Compression{Bits: 4, Chunk: 32}
	cc := &Client{
		ID: 0, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[0], Cfg: clientCfg(),
		Rng: rand.New(rand.NewSource(10)), Compression: &comp,
	}
	cr := &Client{
		ID: 1, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[1], Cfg: clientCfg(),
		Rng: rand.New(rand.NewSource(11)),
	}
	ctx := context.Background()
	for _, c := range []*Client{cc, cr} {
		if _, err := c.Pull(ctx); err != nil {
			t.Fatal(err)
		}
		c.TrainLocal(0.05)
	}
	if cc.negotiated == false || cr.negotiated == true {
		t.Fatalf("negotiation wrong: compressed=%v raw=%v", cc.negotiated, cr.negotiated)
	}

	// Expected contributions, computed independently of the server.
	trained := nn.ExportParams(cc.Model)
	qd, _ := deltaQuantize(trained, cc.baseParams, nil, comp)
	pc := qd.Dequantize()
	for i := range pc {
		pc[i] += cc.baseParams[i]
	}
	pr := nn.ExportParams(cr.Model)

	if counted, err := cc.Push(ctx, 0); err != nil || !counted {
		t.Fatalf("compressed push: counted=%v err=%v", counted, err)
	}
	if counted, err := cr.Push(ctx, 0); err != nil || !counted {
		t.Fatalf("raw push: counted=%v err=%v", counted, err)
	}
	if srv.Round() != 1 {
		t.Fatalf("round = %d after mixed quorum, want 1", srv.Round())
	}
	w0, w1 := float64(subs[0].Len()), float64(subs[1].Len())
	got, _ := srv.Snapshot()
	for i := range got {
		want := (w0*pc[i] + w1*pr[i]) / (w0 + w1)
		if diff := math.Abs(got[i] - want); diff > 1e-12 {
			t.Fatalf("mixed aggregate[%d] = %v, want %v", i, got[i], want)
		}
	}
	st := srv.Stats()
	if st.UpdatesCompressed != 1 || st.UpdatesRaw != 1 {
		t.Fatalf("stats updates: comp=%d raw=%d, want 1/1", st.UpdatesCompressed, st.UpdatesRaw)
	}
}

// The second compressed round's delta must carry the first round's
// quantization residual (error feedback).
func TestErrorFeedbackCarriesResidual(t *testing.T) {
	_, _, subs, build := testSetup(t, 2, 5)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	comp := Compression{Bits: 2, Chunk: 16} // aggressive: large residuals
	c := &Client{
		ID: 0, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[0], Cfg: clientCfg(),
		Rng: rand.New(rand.NewSource(7)), Compression: &comp,
	}
	ctx := context.Background()
	round, err := c.Pull(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c.TrainLocal(0.05)
	trained := nn.ExportParams(c.Model)
	_, wantResidual := deltaQuantize(trained, c.baseParams, nil, comp)
	if _, err := c.Push(ctx, round); err != nil {
		t.Fatal(err)
	}
	nonzero := false
	for i := range wantResidual {
		if c.errParams[i] != wantResidual[i] {
			t.Fatalf("residual[%d] = %v, want %v", i, c.errParams[i], wantResidual[i])
		}
		if wantResidual[i] != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("2-bit quantization of a trained delta should leave a residual")
	}

	// Round 1: the served base changed, and the pushed delta must include
	// the carried residual — verify the server lands on base + deq(d) with
	// d = (p − base) + residual.
	round, err = c.Pull(ctx)
	if err != nil || round != 1 {
		t.Fatalf("second pull: round=%d err=%v", round, err)
	}
	c.TrainLocal(0.05)
	trained = nn.ExportParams(c.Model)
	qd, _ := deltaQuantize(trained, c.baseParams, wantResidual, comp)
	want := qd.Dequantize()
	for i := range want {
		want[i] += c.baseParams[i]
	}
	if _, err := c.Push(ctx, round); err != nil {
		t.Fatal(err)
	}
	got, _ := srv.Snapshot()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("round-1 aggregate[%d] = %v, want error-fed %v", i, got[i], want[i])
		}
	}
}

// Corrupt or truncated compressed bodies must be rejected with 400, not
// crash the server or poison the round.
func TestCorruptDeltaRejected(t *testing.T) {
	_, _, subs, build := testSetup(t, 2, 7)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(b []byte) int {
		resp, err := ts.Client().Post(ts.URL+"/update", contentTypeDelta, bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post([]byte("garbage")); got != http.StatusBadRequest {
		t.Fatalf("garbage delta: status %d", got)
	}

	// A well-formed envelope, then truncated mid-frame.
	comp := Compression{Bits: 8, Chunk: 64}
	c := &Client{
		ID: 0, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[0], Cfg: clientCfg(),
		Rng: rand.New(rand.NewSource(9)), Compression: &comp,
	}
	ctx := context.Background()
	if _, err := c.Pull(ctx); err != nil {
		t.Fatal(err)
	}
	c.TrainLocal(0.05)
	qP, _ := deltaQuantize(nn.ExportParams(c.Model), c.baseParams, nil, comp)
	env, err := encodeUpdateEnvelope(0, 0, 1, quant.Encode(qP),
		quant.EncodeRaw(make([]float64, len(c.baseBN))))
	if err != nil {
		t.Fatal(err)
	}
	if got := post(env[:len(env)-5]); got != http.StatusBadRequest {
		t.Fatalf("truncated delta: status %d", got)
	}
	if got := post(append(env, 0xFF)); got != http.StatusBadRequest {
		t.Fatalf("trailing-garbage delta: status %d", got)
	}
	// A raw frame smuggled into the delta path is rejected too.
	rawEnv, err := encodeUpdateEnvelope(0, 0, 1,
		quant.EncodeRaw([]float64{1}), quant.EncodeRaw(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := post(rawEnv); got != http.StatusBadRequest {
		t.Fatalf("raw-frame delta: status %d", got)
	}
	// Attacker-shaped float64 bits must not poison the aggregate: a NaN
	// weight and a NaN value in the raw BN delta frame are both rejected.
	nanWeight, err := encodeUpdateEnvelope(0, 0, math.NaN(), quant.Encode(qP),
		quant.EncodeRaw(make([]float64, len(c.baseBN))))
	if err != nil {
		t.Fatal(err)
	}
	if got := post(nanWeight); got != http.StatusBadRequest {
		t.Fatalf("NaN weight: status %d", got)
	}
	nanBN := make([]float64, len(c.baseBN))
	if len(nanBN) > 0 {
		nanBN[0] = math.NaN()
	}
	nanBNEnv, err := encodeUpdateEnvelope(0, 0, 1, quant.Encode(qP), quant.EncodeRaw(nanBN))
	if err != nil {
		t.Fatal(err)
	}
	if got := post(nanBNEnv); got != http.StatusBadRequest {
		t.Fatalf("NaN BN value: status %d", got)
	}
	// None of that may have advanced the round or counted an update.
	if srv.Round() != 0 {
		t.Fatalf("round moved to %d on rejected updates", srv.Round())
	}
	// A malformed negotiation header on pull is a 400, not a silent
	// downgrade.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/model", nil)
	req.Header.Set(codecHeader, "fpq1;bits=77")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bits=77 negotiation: status %d", resp.StatusCode)
	}
}

// The server bounds how many distinct codec parameter sets it will serve
// per round, so header-cycling clients cannot grow its memory without
// limit.
func TestCodecVariantCap(t *testing.T) {
	_, _, _, build := testSetup(t, 2, 21)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pull := func(chunk int) int {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/model", nil)
		req.Header.Set(codecHeader, codecValue(Compression{Bits: 8, Chunk: chunk}))
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for i := 0; i < maxCodecVariants; i++ {
		if got := pull(16 + i); got != http.StatusOK {
			t.Fatalf("variant %d: status %d", i, got)
		}
	}
	if got := pull(999); got != http.StatusBadRequest {
		t.Fatalf("variant beyond cap must be rejected, got %d", got)
	}
	// A variant already served this round keeps working.
	if got := pull(16); got != http.StatusOK {
		t.Fatalf("known variant after cap: status %d", got)
	}
}

// An old server that does not speak the codec must transparently downgrade
// a compression-requesting client to the raw gob protocol.
func TestFallbackToRawAgainstOldServer(t *testing.T) {
	_, _, subs, build := testSetup(t, 2, 9)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)
	// Simulate the pre-codec server by stripping the negotiation header
	// before it reaches the handler.
	strip := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del(codecHeader)
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(strip)
	defer ts.Close()

	comp := Compression{Bits: 8}
	c := &Client{
		ID: 0, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[0], Cfg: clientCfg(),
		Rng: rand.New(rand.NewSource(12)), Compression: &comp,
	}
	ctx := context.Background()
	if _, err := c.Pull(ctx); err != nil {
		t.Fatal(err)
	}
	if c.negotiated {
		t.Fatal("client must detect the missing codec echo and fall back")
	}
	c.TrainLocal(0.05)
	if counted, err := c.Push(ctx, 0); err != nil || !counted {
		t.Fatalf("fallback push: counted=%v err=%v", counted, err)
	}
	// The raw push carries exact params: the aggregate equals them.
	want := nn.ExportParams(c.Model)
	got, _ := srv.Snapshot()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("fallback aggregate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// /stats must report the wire saving: compressed pull+push bytes well below
// the raw gob equivalent for the same model.
func TestStatsEndpointCountsBytes(t *testing.T) {
	_, _, subs, build := testSetup(t, 2, 11)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	comp := Compression{Bits: 8}
	cc := &Client{
		ID: 0, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[0], Cfg: clientCfg(),
		Rng: rand.New(rand.NewSource(13)), Compression: &comp,
	}
	cr := &Client{
		ID: 1, BaseURL: ts.URL, HTTP: ts.Client(),
		Model: build(), Subset: subs[1], Cfg: clientCfg(),
		Rng: rand.New(rand.NewSource(14)),
	}
	ctx := context.Background()
	for _, c := range []*Client{cc, cr} {
		if _, err := c.Pull(ctx); err != nil {
			t.Fatal(err)
		}
		c.TrainLocal(0.05)
		if _, err := c.Push(ctx, 0); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.RoundsCompleted != 1 || st.UpdatesRaw != 1 || st.UpdatesCompressed != 1 {
		t.Fatalf("stats: %+v", st)
	}
	for name, v := range map[string]int64{
		"BytesInRaw": st.BytesInRaw, "BytesInCompressed": st.BytesInCompressed,
		"BytesOutRaw": st.BytesOutRaw, "BytesOutCompressed": st.BytesOutCompressed,
	} {
		if v <= 0 {
			t.Fatalf("%s = %d, want > 0", name, v)
		}
	}
	// Same model, same directionality: the compressed path must be several
	// times cheaper than gob float64 on both legs.
	if st.BytesOutCompressed*4 > st.BytesOutRaw {
		t.Fatalf("compressed pull %d B not ≪ raw pull %d B", st.BytesOutCompressed, st.BytesOutRaw)
	}
	if st.BytesInCompressed*4 > st.BytesInRaw {
		t.Fatalf("compressed push %d B not ≪ raw push %d B", st.BytesInCompressed, st.BytesInRaw)
	}
}

// The accuracy pin of the tentpole: error-fed 4-bit training over the real
// HTTP transport converges to within 0.10 clean accuracy of the raw-wire
// run on the seed task (both runs: 3 clients, 6 synchronous rounds).
func TestErrorFed4BitConvergesNearRaw(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed convergence test")
	}
	run := func(comp *Compression) float64 {
		const clients = 3
		const rounds = 6
		_, test, subs, build := testSetup(t, clients, 9)
		m := build()
		srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), clients)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		var wg sync.WaitGroup
		errs := make([]error, clients)
		for id := 0; id < clients; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c := &Client{
					ID: id, BaseURL: ts.URL, HTTP: ts.Client(),
					Model: build(), Subset: subs[id], Cfg: clientCfg(),
					Rng:         rand.New(rand.NewSource(int64(100 + id))),
					Compression: comp,
				}
				errs[id] = c.RunRounds(context.Background(), rounds, 0.05)
			}(id)
		}
		wg.Wait()
		for id, err := range errs {
			if err != nil {
				t.Fatalf("client %d: %v", id, err)
			}
		}
		params, bn := srv.Snapshot()
		final := build()
		nn.ImportParams(final, params)
		nn.ImportBNStats(final, bn)
		return attack.CleanAccuracy(final, test, 16)
	}

	rawAcc := run(nil)
	compAcc := run(&Compression{Bits: 4})
	t.Logf("raw acc %.4f, error-fed 4-bit acc %.4f", rawAcc, compAcc)
	if rawAcc <= 0.5 {
		t.Fatalf("raw-wire run failed to learn: %.4f", rawAcc)
	}
	const gap = 0.10 // the stated accuracy gap pinned by this test
	if compAcc < rawAcc-gap {
		t.Fatalf("4-bit run %.4f more than %.2f below raw %.4f", compAcc, gap, rawAcc)
	}
}
