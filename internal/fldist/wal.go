package fldist

// The write-ahead log behind WithWAL: everything a restarted (or taking-over)
// process needs to resume the federation at the last commit — committed
// snapshots, buffered-mode admission deltas, and the downlink error-feedback
// residuals per served codec variant — appended as CRC-guarded FWL1 records.
// recover.go holds the replay side; docs/ARCHITECTURE.md ("Durability") the
// format and the determinism argument.
//
// Durability contract: a commit record is written before the commit's
// snapshot is published to any client, and every admission record the commit
// folded precedes it in the file — so a recoverable commit always has its
// full input history. A process crash (SIGKILL) loses nothing: the kernel
// holds the written pages. Against power loss, the default WALSyncCommit
// policy group-commits: a background goroutine fsyncs after commit records,
// rate-limited to one fsync per walGroupSyncEvery (each fsync seals every
// record before it, so commits become power-durable within that interval
// without ever stalling admissions on device latency — an fsync's writeback
// contends with concurrent appends through the filesystem journal, so pacing
// it is what keeps the log off the admission path's critical budget). If
// power fails inside the window, recovery resumes from the last fsynced
// commit plus the admissions logged after it — the same torn-tail case it
// already handles. WALSyncAlways makes every record synchronously durable
// instead.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fedprophet/internal/quant"
)

const (
	walMagic      = "FWL1"
	walVersion    = 1
	walHeaderSize = 21 // magic(4) + type(1) + payload len(4) + seq(8) + crc32c(4)

	// walMaxPayload bounds a record's declared payload length before anything
	// trusts it: record headers read back from disk are as attacker-controlled
	// as wire bytes (a corrupted length must not drive an allocation).
	walMaxPayload = 1 << 30

	walLogName  = "wal.log"
	walIdxName  = "wal.idx"
	walLockName = "wal.lock"
)

// walGroupSyncEvery paces the WALSyncCommit background fsync: at most one
// fsync starts per interval, coalescing every commit that lands in between.
// The power-loss exposure window is bounded by this interval plus one device
// flush; shrinking it buys tighter durability at the price of more journal
// contention with concurrent appends (see the durability contract above).
const walGroupSyncEvery = 100 * time.Millisecond

// Record types. The meta record is always first in the file; commit records
// carry full snapshots; admit records the buffered-mode admissions between
// commits; the edge batch record is the single-slot parked-push file an Edge
// keeps (edge.go), reusing the same framing.
const (
	walRecMeta      byte = 1
	walRecCommit    byte = 2
	walRecAdmit     byte = 3
	walRecEdgeBatch byte = 4
)

// ErrWAL is the sentinel wrapped by every WAL decode error, mirroring
// quant.ErrCodec's corruption contract: structurally bad bytes — wrong magic,
// bad CRC, truncated or zero or oversized length — yield an error, never a
// panic, and callers distinguish corruption from IO failures with errors.Is.
var ErrWAL = errors.New("fldist: bad WAL record")

// ErrWALLocked reports that another live process holds the WAL (the flock on
// wal.lock is held). Handoff waits this state out; RecoverServer refuses it.
var ErrWALLocked = errors.New("fldist: WAL held by another process")

// walCRC is the Castagnoli table; CRC32C has hardware support on the
// platforms this serves from.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

// WALSyncPolicy picks when the log fsyncs.
type WALSyncPolicy int

const (
	// WALSyncCommit (the default) fsyncs after commit records only, on a
	// background goroutine rate-limited to one fsync per walGroupSyncEvery
	// (group commit): a commit is durable against power loss once its fsync
	// lands — within the pacing interval plus one device flush — without
	// stalling admissions on device latency or journal contention. Admission
	// records between commits ride the page cache until the next fsync seals
	// them.
	WALSyncCommit WALSyncPolicy = iota
	// WALSyncAlways fsyncs every record.
	WALSyncAlways
	// WALSyncNone never fsyncs; the OS flushes on its own schedule. Still
	// recovers everything written before a process crash (the kernel holds
	// the pages), but not necessarily before a power loss.
	WALSyncNone
)

// walFile is the sink a WAL writes through — *os.File in production, wrapped
// by the crash-injection tests to fail, short-write, or truncate at exact
// record boundaries (crashtest_test.go).
type walFile interface {
	io.Writer
	Sync() error
	Close() error
}

// walWrapFile, when non-nil, wraps every freshly opened WAL log file. Test
// seam for fault injection; set only by tests in this package, never in
// production.
var walWrapFile func(walFile) walFile

// walMeta is the configuration fingerprint the meta record pins: recovery
// rebuilds a server equivalent to the one that wrote the log, and refuses a
// log whose shape does not match the stored model.
type walMeta struct {
	async     bool
	quorumOrK int // updatesPerRound (sync) or bufferK (buffered)
	maxStale  int
	nParams   int
	nBN       int
}

// walVariantErr is one codec variant's downlink error-feedback residual
// inside a commit record, keyed by its normalized compression parameters.
type walVariantErr struct {
	comp     Compression
	residual []float64
}

// walCommit is a commit record's logical content: the committed snapshot and
// the downlink EF residuals of every variant served in the retiring round.
type walCommit struct {
	round   int
	params  []float64
	bn      []float64
	downErr []walVariantErr
}

// walAdmit is one buffered-mode admission, captured in one of two forms:
//
// Delta form (raw-gob pushes): the update's *delta* against its base
// (vals − base), computed at admission. The commit fold only ever consumes
// weight·(vals−base) per element, so replaying the contribution as
// (delta, zero-base) feeds the identical difference into the identical fold —
// without persisting any base vector.
//
// Frame form (compressed pushes): the client's wire frames, verbatim — the
// quantized params frame and the raw BN frame exactly as they crossed the
// network. Replay re-runs the handler's own path — stream-decode, add the
// served base the client pulled, fold as (vals, base) — against a base that
// recovery rebuilds deterministically from the base round's commit record
// (snapshot + entry residual), so the arithmetic is bit-for-bit the live
// handler's. An 8-bit frame is ~8× smaller than its raw delta, which is what
// keeps the per-admission log cost off the admission path's critical budget.
type walAdmit struct {
	seq        uint64
	admitRound int // the round the registry observed at admission
	baseRound  int
	clientID   int
	comp       bool // stats attribution only: arrived via the compressed path
	effW       float64
	dp, db     []float64 // delta form: delta params / delta BN
	frames     []byte    // frame form (len > 0): params frame ++ bn frame, wire bytes
	enc        []byte    // record scratch, reused across admissions
}

// walEdgeBatch is an edge's parked upstream batch (edge.go): everything a
// restarted edge needs to re-push with the batch's original dedup identity —
// the already-rebased payload, its base round, and the base vectors a
// staleness-409 rebase needs.
type walEdgeBatch struct {
	pushID   int
	pushSeq  int // e.pushSeq after this batch drew its ID
	baseRnd  int
	weight   float64
	updates  int
	payloadP []float64
	payloadB []float64
	baseP    []float64
	baseBN   []float64
}

// ---- record framing --------------------------------------------------------

// appendWALRecord frames one record onto dst:
//
//	magic "FWL1" | type u8 | payload len u32 | seq u64 | crc32c u32 | payload
//
// little-endian throughout; the CRC covers type, length, seq and payload, so
// a flipped bit anywhere but the magic fails the checksum (and a flipped
// magic fails the magic check).
func appendWALRecord(dst []byte, typ byte, seq uint64, payload []byte) []byte {
	start := len(dst)
	dst = reserveWALHeader(dst)
	dst = append(dst, payload...)
	finishWALRecord(dst, start, typ, seq)
	return dst
}

// reserveWALHeader appends a zeroed record header to dst. The caller appends
// the payload in place behind it and then seals the record with
// finishWALRecord — the in-place path the hot appenders use to avoid staging
// a model-sized payload in a second buffer just to copy it into the frame.
func reserveWALHeader(dst []byte) []byte {
	var hdr [walHeaderSize]byte
	return append(dst, hdr[:]...)
}

// finishWALRecord stamps the header reserved at b[start:] — everything past
// it is the payload — filling magic, type, payload length, seq and the CRC.
func finishWALRecord(b []byte, start int, typ byte, seq uint64) {
	plen := len(b) - start - walHeaderSize
	if plen <= 0 || plen > walMaxPayload {
		panic(fmt.Sprintf("fldist: WAL record payload %d bytes outside (0,%d]", plen, walMaxPayload))
	}
	h := b[start : start+walHeaderSize]
	copy(h, walMagic)
	h[4] = typ
	binary.LittleEndian.PutUint32(h[5:9], uint32(plen))
	binary.LittleEndian.PutUint64(h[9:17], seq)
	crc := crc32.Update(0, walCRC, h[4:17])
	crc = crc32.Update(crc, walCRC, b[start+walHeaderSize:])
	binary.LittleEndian.PutUint32(h[17:21], crc)
}

// parseWALRecord parses the record at the head of b, returning its type, seq,
// payload (aliasing b) and total encoded size. Every structural violation —
// short buffer, wrong magic, zero or oversized declared length, truncated
// payload, CRC mismatch — returns an error wrapping ErrWAL; no input panics.
// Recovery treats any such error at the tail of the log as a torn final
// record (the crash hit mid-append) and recovers the intact prefix.
func parseWALRecord(b []byte) (typ byte, seq uint64, payload []byte, size int, err error) {
	if len(b) < walHeaderSize {
		return 0, 0, nil, 0, fmt.Errorf("%w: %d bytes, header needs %d", ErrWAL, len(b), walHeaderSize)
	}
	if string(b[:4]) != walMagic {
		return 0, 0, nil, 0, fmt.Errorf("%w: magic %q, want %q", ErrWAL, b[:4], walMagic)
	}
	typ = b[4]
	plen := int(binary.LittleEndian.Uint32(b[5:9]))
	if plen == 0 {
		return 0, 0, nil, 0, fmt.Errorf("%w: zero-length record", ErrWAL)
	}
	if plen > walMaxPayload {
		return 0, 0, nil, 0, fmt.Errorf("%w: declared payload %d exceeds cap %d", ErrWAL, plen, walMaxPayload)
	}
	if len(b) < walHeaderSize+plen {
		return 0, 0, nil, 0, fmt.Errorf("%w: payload truncated: have %d of %d bytes",
			ErrWAL, len(b)-walHeaderSize, plen)
	}
	seq = binary.LittleEndian.Uint64(b[9:17])
	payload = b[walHeaderSize : walHeaderSize+plen]
	crc := crc32.Update(0, walCRC, b[4:17])
	crc = crc32.Update(crc, walCRC, payload)
	if got := binary.LittleEndian.Uint32(b[17:21]); got != crc {
		return 0, 0, nil, 0, fmt.Errorf("%w: crc %08x, want %08x", ErrWAL, got, crc)
	}
	return typ, seq, payload, walHeaderSize + plen, nil
}

// ---- payload codecs --------------------------------------------------------
//
// Vector payloads are quant raw frames (quant.AppendRaw / DecodeFirst): the
// same byte-stable float64 framing the wire uses, so a logged snapshot
// re-encodes to identical bytes and the corruption checks come for free.

// walFormat is the log's feature level, appended as the meta payload's final
// byte. Format 2 marks a log that may contain sparse (top-k) frames inside
// frame-form admission records. The byte sits at the payload's *end* on
// purpose: a pre-sparse binary's meta parser demanded exactly 17 bytes, so
// it refuses a format-2 log outright instead of replaying sparse admissions
// it cannot decode; this parser accepts the old 17-byte form (format 1) and
// refuses formats above its own.
const walFormat = 2

func appendWALMeta(dst []byte, m walMeta) []byte {
	mode := byte(0)
	if m.async {
		mode = 1
	}
	dst = append(dst, mode)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.quorumOrK))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.maxStale))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.nParams))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.nBN))
	return append(dst, walFormat)
}

func parseWALMeta(p []byte) (walMeta, error) {
	if len(p) != 17 && len(p) != 18 {
		return walMeta{}, fmt.Errorf("%w: meta payload %d bytes, want 17 or 18", ErrWAL, len(p))
	}
	if len(p) == 18 && p[17] > walFormat {
		return walMeta{}, fmt.Errorf("%w: log format %d requires a newer binary (this one reads up to %d)",
			ErrWAL, p[17], walFormat)
	}
	if p[0] > 1 {
		return walMeta{}, fmt.Errorf("%w: meta mode %d", ErrWAL, p[0])
	}
	return walMeta{
		async:     p[0] == 1,
		quorumOrK: int(binary.LittleEndian.Uint32(p[1:5])),
		maxStale:  int(binary.LittleEndian.Uint32(p[5:9])),
		nParams:   int(binary.LittleEndian.Uint32(p[9:13])),
		nBN:       int(binary.LittleEndian.Uint32(p[13:17])),
	}, nil
}

func appendWALCommit(dst []byte, c walCommit) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(c.round))
	dst = quant.AppendRaw(dst, c.params)
	dst = quant.AppendRaw(dst, c.bn)
	// Variants in (bits, chunk) order, so a commit's bytes are a pure
	// function of its logical content (maps iterate randomly).
	vs := append([]walVariantErr(nil), c.downErr...)
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].comp.Bits != vs[j].comp.Bits {
			return vs[i].comp.Bits < vs[j].comp.Bits
		}
		return vs[i].comp.Chunk < vs[j].comp.Chunk
	})
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = append(dst, byte(v.comp.Bits))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.comp.Chunk))
		dst = quant.AppendRaw(dst, v.residual)
	}
	return dst
}

// walFrame pulls one raw quant frame off p, translating codec corruption into
// the WAL's own sentinel.
func walFrame(p []byte) ([]float64, []byte, error) {
	f, rest, err := quant.DecodeFirst(p)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: vector frame: %v", ErrWAL, err)
	}
	if !f.IsRaw() {
		return nil, nil, fmt.Errorf("%w: vector frame quantized (bits %d), want raw", ErrWAL, f.Bits)
	}
	return f.Raw, rest, nil
}

func parseWALCommit(p []byte) (walCommit, error) {
	var c walCommit
	if len(p) < 4 {
		return c, fmt.Errorf("%w: commit payload %d bytes", ErrWAL, len(p))
	}
	c.round = int(binary.LittleEndian.Uint32(p[:4]))
	var err error
	if c.params, p, err = walFrame(p[4:]); err != nil {
		return c, err
	}
	if c.bn, p, err = walFrame(p); err != nil {
		return c, err
	}
	if len(p) < 4 {
		return c, fmt.Errorf("%w: commit variant count truncated", ErrWAL)
	}
	nv := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	if nv > maxCodecVariants {
		return c, fmt.Errorf("%w: commit carries %d variants, cap %d", ErrWAL, nv, maxCodecVariants)
	}
	for i := 0; i < nv; i++ {
		if len(p) < 5 {
			return c, fmt.Errorf("%w: commit variant %d truncated", ErrWAL, i)
		}
		v := walVariantErr{comp: Compression{Bits: int(p[0]), Chunk: int(binary.LittleEndian.Uint32(p[1:5]))}}
		if v.residual, p, err = walFrame(p[5:]); err != nil {
			return c, err
		}
		c.downErr = append(c.downErr, v)
	}
	if len(p) != 0 {
		return c, fmt.Errorf("%w: %d trailing bytes after commit payload", ErrWAL, len(p))
	}
	return c, nil
}

// Admit flag bits. walAdmitFrames selects the frame form: the fixed fields
// are followed by the push's verbatim wire frames instead of two raw delta
// frames.
const (
	walAdmitComp   byte = 1
	walAdmitFrames byte = 2
)

func appendWALAdmit(dst []byte, a *walAdmit) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.admitRound))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.baseRound))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.clientID))
	flags := byte(0)
	if a.comp {
		flags |= walAdmitComp
	}
	if len(a.frames) > 0 {
		flags |= walAdmitFrames
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.effW))
	if len(a.frames) > 0 {
		return append(dst, a.frames...)
	}
	dst = quant.AppendRaw(dst, a.dp)
	return quant.AppendRaw(dst, a.db)
}

func parseWALAdmit(p []byte) (*walAdmit, error) {
	if len(p) < 21 {
		return nil, fmt.Errorf("%w: admit payload %d bytes", ErrWAL, len(p))
	}
	a := &walAdmit{
		admitRound: int(binary.LittleEndian.Uint32(p[:4])),
		baseRound:  int(binary.LittleEndian.Uint32(p[4:8])),
		clientID:   int(binary.LittleEndian.Uint32(p[8:12])),
		comp:       p[12]&walAdmitComp != 0,
		effW:       math.Float64frombits(binary.LittleEndian.Uint64(p[13:21])),
	}
	if flags := p[12]; flags&^(walAdmitComp|walAdmitFrames) != 0 {
		return nil, fmt.Errorf("%w: admit flags %#x", ErrWAL, flags)
	}
	if p[12]&walAdmitFrames != 0 {
		// Frame form: the rest of the payload is the push's wire frames. Their
		// internal structure is validated by the replay decoder; the record
		// CRC already vouches for the bytes.
		if len(p) == 21 {
			return nil, fmt.Errorf("%w: frame-form admit with no frame bytes", ErrWAL)
		}
		a.frames = p[21:]
		return a, nil
	}
	var err error
	if a.dp, p, err = walFrame(p[21:]); err != nil {
		return nil, err
	}
	if a.db, p, err = walFrame(p); err != nil {
		return nil, err
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after admit payload", ErrWAL, len(p))
	}
	return a, nil
}

func appendWALEdgeBatch(dst []byte, b walEdgeBatch) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.pushID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.pushSeq))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.baseRnd))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.updates))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.weight))
	dst = quant.AppendRaw(dst, b.payloadP)
	dst = quant.AppendRaw(dst, b.payloadB)
	dst = quant.AppendRaw(dst, b.baseP)
	return quant.AppendRaw(dst, b.baseBN)
}

func parseWALEdgeBatch(p []byte) (walEdgeBatch, error) {
	var b walEdgeBatch
	if len(p) < 24 {
		return b, fmt.Errorf("%w: edge batch payload %d bytes", ErrWAL, len(p))
	}
	b.pushID = int(binary.LittleEndian.Uint32(p[:4]))
	b.pushSeq = int(binary.LittleEndian.Uint32(p[4:8]))
	b.baseRnd = int(binary.LittleEndian.Uint32(p[8:12]))
	b.updates = int(binary.LittleEndian.Uint32(p[12:16]))
	b.weight = math.Float64frombits(binary.LittleEndian.Uint64(p[16:24]))
	var err error
	if b.payloadP, p, err = walFrame(p[24:]); err != nil {
		return b, err
	}
	if b.payloadB, p, err = walFrame(p); err != nil {
		return b, err
	}
	if b.baseP, p, err = walFrame(p); err != nil {
		return b, err
	}
	if b.baseBN, p, err = walFrame(p); err != nil {
		return b, err
	}
	if len(p) != 0 {
		return b, fmt.Errorf("%w: %d trailing bytes after edge batch payload", ErrWAL, len(p))
	}
	return b, nil
}

// ---- the log ---------------------------------------------------------------

// walIdxEntry is one retained commit's position in the log.
type walIdxEntry struct {
	round int
	off   int64
}

// wal is the open write-ahead log. Appends are seq-ordered: a writer reserves
// its sequence number inside the admission registry's critical section
// (pendMu), where logical order is decided, then encodes and writes outside
// it — the cond gate below replays the pendMu order onto the file, so file
// order always equals admission order and a commit record is always preceded
// by every admission it folded.
type wal struct {
	dir    string
	f      *os.File
	sink   walFile // f, possibly wrapped by the fault-injection seam
	lockF  *os.File
	policy WALSyncPolicy
	keep   int // commits retained in the idx (staleness window + 1)

	mu          sync.Mutex
	cond        *sync.Cond
	nextSeq     uint64
	writeSeq    uint64
	off         int64
	werr        error // sticky first write failure; later appends are refused
	closed      bool
	syncPending bool          // a commit landed since the last fsync started
	closeCh     chan struct{} // closed by Close; wakes the paced fsync sleep

	// commitEnc is the reused commit-record scratch. Commits are single-flight
	// — logCommitLocked runs under serveMu and pendMu — so plain reuse between
	// calls is safe, and it spares a model-sized allocation per round.
	commitEnc []byte
	syncing   bool // the background fsync goroutine is alive
	idx       []walIdxEntry

	admitPool sync.Pool // *walAdmit with model-sized dp/db

	records     atomic.Int64
	commits     atomic.Int64
	admits      atomic.Int64
	bytes       atomic.Int64
	writeErrs   atomic.Int64
	uncommitted atomic.Int64 // admit records since the last commit record
	lastRound   atomic.Int64

	warnOnce sync.Once
	warnf    func(format string, args ...any)
}

// lockWALDir takes the exclusive flock on dir/wal.lock without blocking.
// The kernel releases a flock when its holder dies — any exit, SIGKILL
// included — which is exactly the property both crash recovery (a dead
// incumbent never wedges the log) and live handoff (release-on-exit is the
// handoff signal) need.
func lockWALDir(dir string) (*os.File, error) {
	lf, err := os.OpenFile(filepath.Join(dir, walLockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lf.Close()
		if err == syscall.EWOULDBLOCK {
			return nil, ErrWALLocked
		}
		return nil, err
	}
	return lf, nil
}

// WALExists reports whether dir holds a WAL with any content — the
// create-or-recover switch for cmd/fldist's -wal flag.
func WALExists(dir string) bool {
	fi, err := os.Stat(filepath.Join(dir, walLogName))
	return err == nil && fi.Size() > 0
}

// createWAL starts a fresh log in dir: meta record first, then the caller
// logs the initial commit. It refuses a dir that already holds log content —
// recovery, not re-creation, is the path there (RecoverServer).
func createWAL(dir string, m walMeta, policy WALSyncPolicy) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if WALExists(dir) {
		return nil, fmt.Errorf("fldist: WAL already exists in %s (use RecoverServer)", dir)
	}
	lf, err := lockWALDir(dir)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walLogName), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		lf.Close()
		return nil, err
	}
	w := newWAL(dir, f, lf, m, policy)
	seq := w.reserve()
	rec := appendWALRecord(nil, walRecMeta, seq, appendWALMeta(nil, m))
	if _, err := w.append(seq, walRecMeta, rec, true); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

func newWAL(dir string, f, lf *os.File, m walMeta, policy WALSyncPolicy) *wal {
	w := &wal{
		dir:    dir,
		f:      f,
		lockF:  lf,
		policy: policy,
		keep:   m.maxStale + 1,
	}
	w.sink = walFile(f)
	if walWrapFile != nil {
		w.sink = walWrapFile(w.sink)
	}
	w.cond = sync.NewCond(&w.mu)
	w.closeCh = make(chan struct{})
	// Captures start empty: the frame form never touches dp/db, so the
	// model-sized delta scratch is allocated lazily by the first raw-gob
	// capture a pooled object serves (and kept across reuses).
	w.admitPool.New = func() any { return new(walAdmit) }
	return w
}

// reserve claims the next sequence number. Callers on the admission path
// invoke it while holding pendMu, so the sequence order is the admission
// order; the write gate in append then makes it the file order too.
func (w *wal) reserve() uint64 {
	w.mu.Lock()
	s := w.nextSeq
	w.nextSeq++
	w.mu.Unlock()
	return s
}

// append writes one framed record at its sequence slot, waiting for every
// earlier reservation to hit the file first, and returns the offset the
// record starts at. A failed write sticks: the record boundary where the
// failure happened is the end of the recoverable log, and every later append
// is refused with the same error rather than scribbling records after a
// hole. The slot always advances — a failure never wedges later writers
// waiting on the gate. The uncommitted-admissions gauge is maintained here,
// under the write gate, so it tracks the exact record order on disk.
func (w *wal) append(seq uint64, typ byte, rec []byte, syncNow bool) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.writeSeq != seq {
		w.cond.Wait()
	}
	defer func() {
		w.writeSeq++
		w.cond.Broadcast()
	}()
	off := w.off
	if w.werr != nil {
		return off, w.werr
	}
	if w.closed {
		return off, errors.New("fldist: WAL closed")
	}
	n, err := w.sink.Write(rec)
	if err == nil && n < len(rec) {
		err = io.ErrShortWrite
	}
	if err == nil && w.policy == WALSyncAlways {
		err = w.sink.Sync()
	} else if err == nil && syncNow && w.policy == WALSyncCommit {
		// Group commit: the fsync runs on a background goroutine so the
		// admission pipeline — the caller holds serveMu and pendMu across a
		// commit append — is never stalled on device flush latency. A commit
		// is durable against power loss once that fsync lands (a process
		// crash loses nothing either way: the kernel holds the written
		// pages); until then recovery falls back to the previous commit plus
		// the admissions logged after it, which is exactly the torn-tail case
		// it already handles.
		w.scheduleSyncLocked()
	}
	if err != nil {
		w.werr = err
		w.writeErrs.Add(1)
		return off, err
	}
	switch typ {
	case walRecAdmit:
		w.uncommitted.Add(1)
	case walRecCommit:
		w.uncommitted.Store(0)
	}
	w.off += int64(len(rec))
	w.records.Add(1)
	w.bytes.Add(int64(len(rec)))
	return off, nil
}

// newAdmit leases an admission capture from the pool, its frame scratch
// emptied for a fresh tee.
func (w *wal) newAdmit() *walAdmit {
	a := w.admitPool.Get().(*walAdmit)
	a.frames = a.frames[:0]
	return a
}

// releaseAdmit returns a capture to the pool.
func (w *wal) releaseAdmit(a *walAdmit) {
	w.admitPool.Put(a)
}

// appendAdmit encodes and appends one admission record, returning the capture
// to the pool. Called outside every server lock; ordering is carried by the
// seq reserved at admission.
func (w *wal) appendAdmit(a *walAdmit) error {
	enc := reserveWALHeader(a.enc[:0])
	enc = appendWALAdmit(enc, a)
	finishWALRecord(enc, 0, walRecAdmit, a.seq)
	a.enc = enc
	_, err := w.append(a.seq, walRecAdmit, a.enc, false)
	w.releaseAdmit(a)
	if err != nil {
		w.warnWriteErr(err)
		return err
	}
	w.admits.Add(1)
	return nil
}

// appendCommit appends one commit record and rewrites the idx checkpoint.
// Called with serveMu and pendMu held, just before the commit's snapshot is
// published — log-then-publish is the write-ahead property. The fsync (under
// the default policy) also seals every admission record this commit folded:
// they precede it in the file.
func (w *wal) appendCommit(seq uint64, c walCommit) error {
	rec := reserveWALHeader(w.commitEnc[:0])
	rec = appendWALCommit(rec, c)
	finishWALRecord(rec, 0, walRecCommit, seq)
	w.commitEnc = rec
	off, err := w.append(seq, walRecCommit, rec, w.policy != WALSyncNone)
	if err != nil {
		w.warnWriteErr(err)
		return err
	}
	w.commits.Add(1)
	w.lastRound.Store(int64(c.round))
	w.mu.Lock()
	w.idx = append(w.idx, walIdxEntry{round: c.round, off: off})
	if len(w.idx) > w.keep {
		w.idx = w.idx[len(w.idx)-w.keep:]
	}
	idx := append([]walIdxEntry(nil), w.idx...)
	w.mu.Unlock()
	if err := writeWALIdx(w.dir, idx); err != nil {
		// The idx is an optimization: recovery falls back to a full forward
		// scan without it. Warn, don't fail the commit.
		w.warnWriteErr(err)
	}
	return nil
}

// scheduleSyncLocked marks the log dirty and ensures the background fsync
// goroutine is running. Caller holds w.mu. The single goroutine coalesces
// bursts: however many commits land while one fsync is in flight, one more
// fsync seals them all.
func (w *wal) scheduleSyncLocked() {
	w.syncPending = true
	if !w.syncing {
		w.syncing = true
		go w.runSync()
	}
}

// runSync is the background group-commit fsync loop: flush, then — if more
// commits landed meanwhile — wait out the pacing interval and flush again.
// The pacing matters for throughput, not just politeness: an fsync writes
// back every dirty log page and holds the filesystem journal while it does,
// which stalls concurrent record appends; one paced fsync seals a burst of
// rounds at a fraction of that contention. A sync failure is sticky like a
// write failure — later appends are refused at the same boundary recovery
// will find. Close waits for this goroutine (via syncing/cond) before
// closing the file, and wakes the pacing sleep through closeCh.
func (w *wal) runSync() {
	w.mu.Lock()
	for w.syncPending && w.werr == nil && !w.closed {
		w.syncPending = false
		w.mu.Unlock()
		//lint:ignore determinism group-sync pacing only; record contents and order are clock-free
		start := time.Now()
		err := w.sink.Sync()
		if err == nil {
			//lint:ignore determinism group-sync pacing only; record contents and order are clock-free
			if d := walGroupSyncEvery - time.Since(start); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-w.closeCh:
					t.Stop()
				}
			}
		}
		w.mu.Lock()
		if err != nil && w.werr == nil {
			w.werr = err
			w.writeErrs.Add(1)
			w.mu.Unlock()
			w.warnWriteErr(err)
			w.mu.Lock()
		}
	}
	w.syncing = false
	w.cond.Broadcast()
	w.mu.Unlock()
}

// warnWriteErr reports the first WAL write failure once. The server keeps
// serving — degraded to in-memory durability — and recovery recovers the
// intact prefix; Stats carries the error count.
func (w *wal) warnWriteErr(err error) {
	w.warnOnce.Do(func() {
		f := w.warnf
		if f == nil {
			return
		}
		f("fldist: WAL write failed, continuing without durability (recovery will see state up to the last intact record): %v", err)
	})
}

// Close flushes, fsyncs and closes the log and releases the lock file (and
// with it the flock — the handoff signal). Idempotent.
func (w *wal) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.closeCh) // wake a paced fsync sleep; the loop re-checks closed
	for w.syncing {
		w.cond.Wait()
	}
	w.mu.Unlock()
	err := w.sink.Sync()
	if cerr := w.sink.Close(); err == nil {
		err = cerr
	}
	if w.lockF != nil {
		w.lockF.Close() // closing drops the flock
	}
	return err
}

// stats snapshots the log's counters for the /stats WAL section.
func (w *wal) stats() *WALStats {
	w.mu.Lock()
	broken := w.werr != nil
	w.mu.Unlock()
	return &WALStats{
		Dir:             w.dir,
		Records:         w.records.Load(),
		Commits:         w.commits.Load(),
		Admits:          w.admits.Load(),
		Bytes:           w.bytes.Load(),
		WriteErrors:     w.writeErrs.Load(),
		Broken:          broken,
		LastCommitRound: w.lastRound.Load(),
		PendingAdmits:   w.uncommitted.Load(),
	}
}

// ---- idx checkpoint --------------------------------------------------------
//
// wal.idx pins the file offsets of the last (staleness window + 1) commit
// records so recovery seeks straight to the oldest in-window commit instead
// of scanning the whole log — O(window), independent of log length. It is
// rewritten whole (temp + rename, so a crash mid-rewrite leaves the previous
// idx) at every commit, and it is advisory: recovery validates the entry it
// lands on and falls back to a full scan on any mismatch.

const walIdxMagic = "FWI1"

func writeWALIdx(dir string, entries []walIdxEntry) error {
	if len(entries) > 255 {
		entries = entries[len(entries)-255:]
	}
	buf := make([]byte, 0, 9+12*len(entries)+4)
	buf = append(buf, walIdxMagic...)
	buf = append(buf, walVersion)
	buf = append(buf, byte(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.round))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.off))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, walCRC))
	tmp, err := os.CreateTemp(dir, walIdxName+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(buf)
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, walIdxName))
}

func readWALIdx(dir string) ([]walIdxEntry, error) {
	b, err := os.ReadFile(filepath.Join(dir, walIdxName))
	if err != nil {
		return nil, err
	}
	if len(b) < 10 || string(b[:4]) != walIdxMagic || b[4] != walVersion {
		return nil, fmt.Errorf("%w: bad idx header", ErrWAL)
	}
	n := int(b[5])
	if len(b) != 6+12*n+4 {
		return nil, fmt.Errorf("%w: idx length %d for %d entries", ErrWAL, len(b), n)
	}
	if crc32.Checksum(b[:len(b)-4], walCRC) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return nil, fmt.Errorf("%w: idx crc mismatch", ErrWAL)
	}
	entries := make([]walIdxEntry, n)
	for i := range entries {
		off := 6 + 12*i
		entries[i] = walIdxEntry{
			round: int(binary.LittleEndian.Uint32(b[off : off+4])),
			off:   int64(binary.LittleEndian.Uint64(b[off+4 : off+12])),
		}
	}
	return entries, nil
}

// ---- edge parked-batch slot ------------------------------------------------
//
// An edge aggregator's durable state is a single parked upstream batch, not a
// growing log: at any instant it has at most one combined cohort delta that
// has been committed locally but not yet acknowledged upstream. That batch is
// kept in a one-record file (edge.wal) written whole via temp + rename —
// atomically replaced when a staleness rebase changes the payload, removed
// when the upstream acknowledges the push. A restarted edge re-pushes the
// parked batch with its original pushID, and the upstream's (round, pushID)
// dedup horizon (EdgeIDSpan) turns the replay into a duplicate 200 if the
// first attempt had in fact landed — re-push is idempotent, so the slot never
// needs to know whether the crash hit before or after the acknowledgement.

// edgeWALName is the single-slot parked-batch file inside an edge's WAL dir.
const edgeWALName = "edge.wal"

// writeEdgeWAL atomically replaces dir's parked-batch slot with b.
func writeEdgeWAL(dir string, b walEdgeBatch) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fldist: edge wal: %w", err)
	}
	rec := appendWALRecord(nil, walRecEdgeBatch, 0, appendWALEdgeBatch(nil, b))
	tmp, err := os.CreateTemp(dir, edgeWALName+".tmp*")
	if err != nil {
		return fmt.Errorf("fldist: edge wal: %w", err)
	}
	defer os.Remove(tmp.Name())
	_, werr := tmp.Write(rec)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("fldist: edge wal: %w", werr)
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, edgeWALName))
}

// readEdgeWAL loads dir's parked batch. ok is false when the slot is empty
// (no batch was parked, or the previous run pushed and cleared it); a present
// but corrupt slot is an ErrWAL error, never a silently dropped batch.
func readEdgeWAL(dir string) (b walEdgeBatch, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, edgeWALName))
	if os.IsNotExist(err) {
		return b, false, nil
	}
	if err != nil {
		return b, false, fmt.Errorf("fldist: edge wal: %w", err)
	}
	typ, _, payload, size, err := parseWALRecord(raw)
	if err != nil {
		return b, false, err
	}
	if typ != walRecEdgeBatch || size != len(raw) {
		return b, false, fmt.Errorf("%w: edge wal slot holds record type %d (%d of %d bytes)", ErrWAL, typ, size, len(raw))
	}
	b, err = parseWALEdgeBatch(payload)
	if err != nil {
		return b, false, err
	}
	return b, true, nil
}

// clearEdgeWAL empties dir's parked-batch slot. Missing is success.
func clearEdgeWAL(dir string) error {
	err := os.Remove(filepath.Join(dir, edgeWALName))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("fldist: edge wal: %w", err)
	}
	return nil
}
