package fldist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// A registry-mounted tenant serves exactly the routes it would serve on its
// own listener, just under its prefix — a full pull/push round trip through
// the mux must behave like talking to the server directly.
func TestRegistryRoutesTenantsWithPrefixStripped(t *testing.T) {
	init := gridVec(32, 20)
	srv := NewServer(init, nil, 1)
	reg := NewRegistry()
	if err := reg.Add("cohort-a", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("echo", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, r.URL.Path)
	})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	hc := ts.Client()

	round, base, _ := pullRawT(t, hc, ts.URL+"/cohort-a")
	if round != 0 {
		t.Fatalf("tenant pull round = %d", round)
	}
	params := addVecs(base, gridDelta(len(base), 0))
	if st := pushRawT(t, hc, ts.URL+"/cohort-a", 0, round, 1, params, nil); st != http.StatusOK {
		t.Fatalf("tenant push: status %d", st)
	}
	if srv.Round() != 1 {
		t.Fatalf("tenant server round = %d after push through registry", srv.Round())
	}

	// The prefix is stripped: the tenant sees /deep/path, not /echo/deep/path.
	resp, err := hc.Get(ts.URL + "/echo/deep/path")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 64)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if got := string(body[:n]); got != "/deep/path" {
		t.Fatalf("tenant saw path %q, want /deep/path", got)
	}
}

func TestRegistryListsAndRejects(t *testing.T) {
	reg := NewRegistry()
	nop := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if err := reg.Add("", nop); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if err := reg.Add("a/b", nop); err == nil {
		t.Fatal("slashed tenant name accepted")
	}
	for _, name := range []string{"beta", "alpha"} {
		if err := reg.Add(name, nop); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	var listing map[string][]string
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := listing["tenants"]; len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("tenant listing = %v", got)
	}

	resp, err = http.Get(ts.URL + "/nope/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", resp.StatusCode)
	}

	reg.Remove("beta")
	resp, err = http.Get(ts.URL + "/beta/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("removed tenant: status %d, want 404", resp.StatusCode)
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "alpha" {
		t.Fatalf("names after remove = %v", names)
	}
}
