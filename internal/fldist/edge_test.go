package fldist

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// The hierarchical-aggregation tests. The bit-identity tests drive both the
// tiered tree and the flat fleet with *grid-valued* synthetic updates:
// every parameter sits on the 2⁻¹² lattice with a small integer numerator,
// every weight is 1.0, and every batch size is a power of two, so every
// product, sum and division in both folds is exact in float64 — the
// root==flat identity then holds bitwise because the underlying algebra is
// grouping-invariant, not because two float expression trees happen to
// round alike. (For general values, regrouping a weighted average is a
// reassociation and bitwise equality is NOT an IEEE-754 identity; the
// full-precision test below pins tiered-run determinism bitwise and
// tiered-vs-flat to tolerance instead. docs/ARCHITECTURE.md spells the
// argument out.)

// gridVec builds a deterministic vector on the 2⁻¹² lattice.
func gridVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(rng.Intn(4096)-2048) / 4096
	}
	return v
}

// gridDelta is client id's fixed training delta on the 2⁻¹⁰ lattice. The
// delta is independent of the pulled base, so a client contributes the same
// delta whether it trains from the root model or an edge's local model —
// what makes multi-flush tiered schedules comparable to their flat
// counterparts value-for-value.
func gridDelta(n, id int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((id+1)*(i%13-6)) / 1024
	}
	return out
}

func addVecs(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range out {
		out[i] = a[i] + b[i]
	}
	return out
}

// pushRawT pushes a raw gob update and returns the HTTP status.
func pushRawT(t *testing.T, hc *http.Client, baseURL string, id, round int, weight float64, params, bn []float64) int {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Update{
		ClientID: id, Round: round, Weight: weight, Params: params, BN: bn,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := hc.Post(baseURL+"/update", contentTypeGob, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// pullRawT pulls the raw model from any aggregator (root or edge).
func pullRawT(t *testing.T, hc *http.Client, baseURL string) (int, []float64, []float64) {
	t.Helper()
	resp, err := hc.Get(baseURL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pull: %s", resp.Status)
	}
	var blob ModelBlob
	if err := gob.NewDecoder(resp.Body).Decode(&blob); err != nil {
		t.Fatal(err)
	}
	return blob.Round, blob.Params, blob.BN
}

// awaitFn polls f until it reports true, failing the test after deadline.
func awaitFn(t *testing.T, what string, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !f() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// cohortRun pulls the edge and pushes base+gridDelta(id) for each id, in
// order, all at weight 1.
func cohortRun(t *testing.T, hc *http.Client, edgeURL string, ids []int) {
	t.Helper()
	for _, id := range ids {
		round, base, baseBN := pullRawT(t, hc, edgeURL)
		params := addVecs(base, gridDelta(len(base), id))
		bn := addVecs(baseBN, gridDelta(len(baseBN), id))
		if st := pushRawT(t, hc, edgeURL, id, round, 1, params, bn); st != http.StatusOK {
			t.Fatalf("cohort client %d push via edge: status %d", id, st)
		}
	}
}

// flatRun aggregates the same 8 grid clients against a flat synchronous
// root and returns the committed model.
func flatRun(t *testing.T, init, initBN []float64, shards int, ids []int) ([]float64, []float64) {
	t.Helper()
	root := NewServer(init, initBN, len(ids), WithShards(shards))
	ts := httptest.NewServer(root.Handler())
	defer ts.Close()
	hc := ts.Client()
	for _, id := range ids {
		round, base, baseBN := pullRawT(t, hc, ts.URL)
		params := addVecs(base, gridDelta(len(base), id))
		bn := addVecs(baseBN, gridDelta(len(baseBN), id))
		if st := pushRawT(t, hc, ts.URL, id, round, 1, params, bn); st != http.StatusOK {
			t.Fatalf("flat client %d push: status %d", id, st)
		}
	}
	awaitFn(t, "flat root commit", func() bool { return root.Round() == 1 })
	return root.Snapshot()
}

// startEdge builds, starts and serves an edge over httptest, returning the
// edge and its base URL. Cleanup tears the edge down before the upstream.
func startEdge(t *testing.T, upstream string, opts ...EdgeOption) (*Edge, string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	e := NewEdge(upstream, opts...)
	if err := e.Start(ctx); err != nil {
		cancel()
		t.Fatalf("edge start: %v", err)
	}
	ets := httptest.NewServer(e.Handler())
	t.Cleanup(func() {
		ets.Close()
		cancel()
		<-e.done
	})
	return e, ets.URL
}

// The headline tentpole pin, in the -race suite: a 2-tier tree over a fixed
// admitted multiset commits bit-identically to the flat fleet, across shard
// counts, GOMAXPROCS, and edge/direct mixes.
func TestTwoTierCommitBitIdenticalToFlatFleet(t *testing.T) {
	const nParams, nBN = 257, 6
	init := gridVec(nParams, 1)
	initBN := gridVec(nBN, 2)
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}

	for _, tc := range []struct {
		name    string
		shards  int
		gmp     int
		cohorts [][]int // clients behind each edge
		direct  []int   // clients pushing straight at the root
	}{
		{"2edges/shards1/gmp1", 1, 1, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}, nil},
		{"2edges/shards3/gmp4", 3, 4, [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}, nil},
		{"mixed/shards5/gmp2", 5, 2, [][]int{{0, 1, 2, 3}}, []int{4, 5, 6, 7}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(tc.gmp))

			wantP, wantBN := flatRun(t, init, initBN, tc.shards, ids)

			quorum := len(tc.cohorts) + len(tc.direct)
			root := NewServer(init, initBN, quorum, WithShards(tc.shards))
			ts := httptest.NewServer(root.Handler())
			defer ts.Close()
			hc := ts.Client()

			var edges []*Edge
			for i, cohort := range tc.cohorts {
				e, edgeURL := startEdge(t, ts.URL,
					WithEdgeClientID(1000+i*EdgeIDSpan),
					WithEdgeFlush(len(cohort), 0),
					WithEdgeShards(tc.shards))
				edges = append(edges, e)
				cohortRun(t, hc, edgeURL, cohort)
			}
			for _, id := range tc.direct {
				round, base, baseBN := pullRawT(t, hc, ts.URL)
				params := addVecs(base, gridDelta(nParams, id))
				bn := addVecs(baseBN, gridDelta(nBN, id))
				if st := pushRawT(t, hc, ts.URL, id, round, 1, params, bn); st != http.StatusOK {
					t.Fatalf("direct client %d push: status %d", id, st)
				}
			}

			awaitFn(t, "tiered root commit", func() bool { return root.Round() == 1 })
			gotP, gotBN := root.Snapshot()
			for i := range wantP {
				if gotP[i] != wantP[i] {
					t.Fatalf("params[%d] = %v, flat fleet committed %v (not bit-identical)", i, gotP[i], wantP[i])
				}
			}
			for i := range wantBN {
				if gotBN[i] != wantBN[i] {
					t.Fatalf("bn[%d] = %v, flat fleet committed %v (not bit-identical)", i, gotBN[i], wantBN[i])
				}
			}

			// Every edge resyncs after its flush: adopted base round 1, one
			// counted upstream push, flushed on the K trigger.
			for i, e := range edges {
				awaitFn(t, "edge resync", func() bool { return int(e.baseRoundA.Load()) == 1 })
				up := e.Stats().Upstream
				if up.Pushes != 1 || up.FlushK != 1 || up.FlushAge != 0 {
					t.Fatalf("edge %d upstream stats: %+v", i, up)
				}
			}
		})
	}
}

// Multi-flush schedules stay on the flat fleet's trajectory: with flush K=2
// against a buffered root, two flush cycles per edge (commit → push → adopt
// the root's intermediate model) commit bit-identically to the flat
// buffered fleet pushing the same deltas in the same two batches.
func TestTwoTierMultiFlushBitIdenticalToFlat(t *testing.T) {
	const nParams, nBN = 130, 4
	init := gridVec(nParams, 3)
	initBN := gridVec(nBN, 4)

	// Flat reference: buffered root, K=4; batch 1 = clients {0,1,4,5} from
	// round 0, batch 2 = clients {2,3,6,7} from the committed round 1.
	flat := NewServer(init, initBN, 1, WithBufferedAggregation(4, 2))
	fts := httptest.NewServer(flat.Handler())
	defer fts.Close()
	for _, batch := range [][]int{{0, 1, 4, 5}, {2, 3, 6, 7}} {
		before := flat.Round()
		cohortRun(t, fts.Client(), fts.URL, batch)
		awaitFn(t, "flat buffered commit", func() bool { return flat.Round() == before+1 })
	}
	wantP, wantBN := flat.Snapshot()

	// Tiered: buffered root committing every 2 tier deltas, 2 edges with
	// flush K=2, the same clients in the same batches.
	root := NewServer(init, initBN, 1, WithBufferedAggregation(2, 2))
	ts := httptest.NewServer(root.Handler())
	defer ts.Close()
	eA, urlA := startEdge(t, ts.URL, WithEdgeClientID(1000), WithEdgeFlush(2, 0))
	eB, urlB := startEdge(t, ts.URL, WithEdgeClientID(1000+EdgeIDSpan), WithEdgeFlush(2, 0))

	cohortRun(t, ts.Client(), urlA, []int{0, 1})
	cohortRun(t, ts.Client(), urlB, []int{4, 5})
	awaitFn(t, "root round 1", func() bool { return root.Round() == 1 })
	// Both edges must adopt round 1 before the second batch pulls, so the
	// second batch's deltas are taken against the intermediate model.
	awaitFn(t, "edge A adopt", func() bool { return int(eA.baseRoundA.Load()) == 1 })
	awaitFn(t, "edge B adopt", func() bool { return int(eB.baseRoundA.Load()) == 1 })

	cohortRun(t, ts.Client(), urlA, []int{2, 3})
	cohortRun(t, ts.Client(), urlB, []int{6, 7})
	awaitFn(t, "root round 2", func() bool { return root.Round() == 2 })

	gotP, gotBN := root.Snapshot()
	for i := range wantP {
		if gotP[i] != wantP[i] {
			t.Fatalf("params[%d] = %v, flat fleet committed %v (not bit-identical)", i, gotP[i], wantP[i])
		}
	}
	for i := range wantBN {
		if gotBN[i] != wantBN[i] {
			t.Fatalf("bn[%d] = %v, flat fleet committed %v", i, gotBN[i], wantBN[i])
		}
	}
	for _, e := range []*Edge{eA, eB} {
		// The root commits before the edge's push response returns, so the
		// push counter can trail the committed round briefly.
		awaitFn(t, "edge push accounting", func() bool { return e.Stats().Upstream.Pushes == 2 })
		if up := e.Stats().Upstream; up.FlushK != 2 {
			t.Fatalf("edge upstream stats after two flush cycles: %+v", up)
		}
	}
}

// Full-precision (off-grid) runs: regrouping a weighted average reassociates
// float64 additions, so tiered-vs-flat is pinned to tolerance — but the
// tiered run itself must be bit-deterministic across shard counts,
// GOMAXPROCS and cohort push order.
func TestTwoTierFullPrecisionDeterminism(t *testing.T) {
	const nParams, nBN = 301, 5
	init := synthVec(nParams, 10)
	initBN := synthVec(nBN, 11)

	run := func(shards, gmp int, order []int) ([]float64, []float64) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gmp))
		root := NewServer(init, initBN, 2, WithShards(shards))
		ts := httptest.NewServer(root.Handler())
		defer ts.Close()
		_, urlA := startEdge(t, ts.URL, WithEdgeClientID(1000), WithEdgeFlush(4, 0), WithEdgeShards(shards))
		_, urlB := startEdge(t, ts.URL, WithEdgeClientID(1000+EdgeIDSpan), WithEdgeFlush(4, 0), WithEdgeShards(shards))
		for _, id := range order {
			url := urlA
			if id >= 4 {
				url = urlB
			}
			round, base, baseBN := pullRawT(t, ts.Client(), url)
			params := make([]float64, nParams)
			for i := range params {
				params[i] = base[i] + 1e-3*float64(id+1)*synthVec(nParams, int64(id))[i]
			}
			bn := make([]float64, nBN)
			for i := range bn {
				bn[i] = baseBN[i] + 1e-3*float64(id+1)*synthVec(nBN, int64(id+100))[i]
			}
			if st := pushRawT(t, ts.Client(), url, id, round, float64(id+1), params, bn); st != http.StatusOK {
				t.Fatalf("client %d push: status %d", id, st)
			}
		}
		awaitFn(t, "tiered root commit", func() bool { return root.Round() == 1 })
		return root.Snapshot()
	}

	wantP, wantBN := run(1, 1, []int{0, 1, 2, 3, 4, 5, 6, 7})
	for _, tc := range []struct {
		shards, gmp int
		order       []int
	}{
		{4, 4, []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{7, 2, []int{3, 0, 2, 1, 7, 5, 4, 6}},
	} {
		gotP, gotBN := run(tc.shards, tc.gmp, tc.order)
		for i := range wantP {
			if gotP[i] != wantP[i] {
				t.Fatalf("shards=%d gmp=%d: params[%d] = %v, want %v (tiered run not deterministic)",
					tc.shards, tc.gmp, i, gotP[i], wantP[i])
			}
		}
		for i := range wantBN {
			if gotBN[i] != wantBN[i] {
				t.Fatalf("shards=%d gmp=%d: bn[%d] not deterministic", tc.shards, tc.gmp, i)
			}
		}
	}
}

// The age trigger: fewer than K updates still reach the root once the oldest
// buffered update is flushAge old, as one combined delta of the right
// weight (sync root: fold of W·m′ at total weight W reproduces m′ exactly).
func TestEdgeAgeFlush(t *testing.T) {
	const nParams, nBN = 65, 3
	init := gridVec(nParams, 5)
	initBN := gridVec(nBN, 6)
	root := NewServer(init, initBN, 1)
	ts := httptest.NewServer(root.Handler())
	defer ts.Close()

	e, edgeURL := startEdge(t, ts.URL, WithEdgeClientID(1000), WithEdgeFlush(100, 40*time.Millisecond))
	cohortRun(t, ts.Client(), edgeURL, []int{0, 1})

	awaitFn(t, "age-triggered root commit", func() bool { return root.Round() == 1 })
	// The root commits before the edge's push response returns; await the
	// edge-side accounting rather than asserting it immediately.
	awaitFn(t, "edge push accounting", func() bool { return e.Stats().Upstream.Pushes == 1 })
	up := e.Stats().Upstream
	if up.FlushAge != 1 || up.FlushK != 0 {
		t.Fatalf("upstream stats after age flush: %+v", up)
	}

	gotP, _ := root.Snapshot()
	sum := addVecs(gridDelta(nParams, 0), gridDelta(nParams, 1))
	for i := range gotP {
		want := init[i] + sum[i]/2
		if gotP[i] != want {
			t.Fatalf("params[%d] = %v, want %v", i, gotP[i], want)
		}
	}
}

// Graceful drain: an edge whose flush policy never fired pushes its buffer
// upstream on shutdown — SIGTERM does not strand admitted cohort work.
func TestEdgeDrainFlushesBufferedUpdates(t *testing.T) {
	const nParams, nBN = 65, 3
	init := gridVec(nParams, 7)
	initBN := gridVec(nBN, 8)
	root := NewServer(init, initBN, 1)
	ts := httptest.NewServer(root.Handler())
	defer ts.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := NewEdge(ts.URL, WithEdgeClientID(1000), WithEdgeFlush(100, 0))
	serveErr := make(chan error, 1)
	go func() { serveErr <- e.Serve(ctx, ln) }()
	edgeURL := "http://" + ln.Addr().String()
	awaitFn(t, "edge serving", func() bool {
		resp, err := http.Get(edgeURL + "/round")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return true
	})

	cohortRun(t, ts.Client(), edgeURL, []int{0, 1})
	if root.Round() != 0 {
		t.Fatalf("root advanced before drain: round %d", root.Round())
	}

	cancel()
	if err := <-serveErr; err != nil {
		t.Fatalf("edge serve: %v", err)
	}
	if root.Round() != 1 {
		t.Fatalf("drain did not reach the root: round %d", root.Round())
	}
	if up := e.Stats().Upstream; up.FlushDrain != 1 {
		t.Fatalf("upstream stats after drain: %+v", up)
	}
	gotP, _ := root.Snapshot()
	sum := addVecs(gridDelta(nParams, 0), gridDelta(nParams, 1))
	for i := range gotP {
		want := init[i] + sum[i]/2
		if gotP[i] != want {
			t.Fatalf("params[%d] = %v, want %v", i, gotP[i], want)
		}
	}
}

// A mid-flight drain racing the root's own graceful shutdown is atomic at
// the root: the flush is either fully admitted (committed model) or cleanly
// rejected (untouched model) — never half-applied.
func TestEdgeDrainVsRootShutdownAtomic(t *testing.T) {
	const nParams = 65
	init := gridVec(nParams, 9)
	for _, delay := range []time.Duration{0, 2 * time.Millisecond, 8 * time.Millisecond} {
		root := NewServer(init, nil, 1)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rootCtx, cancelRoot := context.WithCancel(context.Background())
		rootErr := make(chan error, 1)
		go func() { rootErr <- root.Serve(rootCtx, ln) }()
		rootURL := "http://" + ln.Addr().String()
		awaitFn(t, "root serving", func() bool {
			resp, err := http.Get(rootURL + "/round")
			if err != nil {
				return false
			}
			resp.Body.Close()
			return true
		})

		e, edgeURL := startEdge(t, rootURL, WithEdgeClientID(1000), WithEdgeFlush(100, 0))
		cohortRun(t, http.DefaultClient, edgeURL, []int{0, 1})

		drainCtx, cancelDrain := context.WithTimeout(context.Background(), 500*time.Millisecond)
		drained := make(chan error, 1)
		go func() { drained <- e.Drain(drainCtx) }()
		time.Sleep(delay)
		cancelRoot()
		derr := <-drained
		cancelDrain()
		if err := <-rootErr; err != nil {
			t.Fatalf("root serve: %v", err)
		}

		gotP, _ := root.Snapshot()
		switch root.Round() {
		case 0:
			if derr == nil {
				t.Fatalf("delay %v: drain reported success but the root never admitted", delay)
			}
			for i := range gotP {
				if gotP[i] != init[i] {
					t.Fatalf("delay %v: rejected drain mutated the root model", delay)
				}
			}
		case 1:
			sum := addVecs(gridDelta(nParams, 0), gridDelta(nParams, 1))
			for i := range gotP {
				if want := init[i] + sum[i]/2; gotP[i] != want {
					t.Fatalf("delay %v: admitted drain only half-applied: params[%d] = %v, want %v",
						delay, i, gotP[i], want)
				}
			}
		default:
			t.Fatalf("delay %v: root at round %d", delay, root.Round())
		}
	}
}

// Upstream failure: while the root is unreachable the edge retries with
// jittered backoff and keeps serving cohort pulls from its cache; when the
// root returns, the buffered flush lands intact.
func TestEdgeRetriesUnreachableUpstreamAndServesCachedPulls(t *testing.T) {
	const nParams, nBN = 65, 3
	init := gridVec(nParams, 12)
	initBN := gridVec(nBN, 13)
	root := NewServer(init, initBN, 1)
	inner := root.Handler()
	var up atomic.Bool
	up.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			http.Error(w, "upstream down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	e, edgeURL := startEdge(t, ts.URL, WithEdgeClientID(1000), WithEdgeFlush(2, 0))
	up.Store(false) // kill the upstream after the initial pull
	cohortRun(t, ts.Client(), edgeURL, []int{0, 1})

	awaitFn(t, "upstream retries", func() bool { return e.Stats().Upstream.Retries >= 2 })
	// Cohort pulls keep working off the edge's local model while the flush
	// retries: the flush already committed locally (round 1), so the cache
	// serves the folded cohort model without the root's help.
	round, params, _ := pullRawT(t, ts.Client(), edgeURL)
	if round != 1 {
		t.Fatalf("cached pull round = %d, want 1 (local commit)", round)
	}
	sumD := addVecs(gridDelta(nParams, 0), gridDelta(nParams, 1))
	for i := range params {
		if want := init[i] + sumD[i]/2; params[i] != want {
			t.Fatalf("cached pull diverged from the local commit at [%d]: %v, want %v", i, params[i], want)
		}
	}
	if e.Stats().Upstream.CohortPulls < 3 {
		t.Fatalf("cohort pulls not counted: %+v", e.Stats().Upstream)
	}
	if root.Round() != 0 {
		t.Fatal("push reached a down upstream")
	}

	up.Store(true)
	awaitFn(t, "flush landing after recovery", func() bool { return root.Round() == 1 })
	// Await the edge-side accounting: the root commit precedes the push
	// response that increments the counter.
	awaitFn(t, "push accounting after recovery", func() bool { return e.Stats().Upstream.Pushes == 1 })
}

// Staleness compounding: a tier delta pushed from a base the root has
// committed past is admitted with the root's 1/(1+s) discount on the
// cohort's combined weight — the edge push lands in the root histogram at
// its root-side staleness, and the committed model carries the discount
// exactly (grid values, power-of-two weights).
func TestEdgeStalePushLandsWithCombinedStaleness(t *testing.T) {
	const nParams = 129
	init := gridVec(nParams, 14)
	root := NewServer(init, nil, 1, WithBufferedAggregation(2, 2))
	ts := httptest.NewServer(root.Handler())
	defer ts.Close()

	eA, urlA := startEdge(t, ts.URL, WithEdgeClientID(1000), WithEdgeFlush(1, 0))
	eB, urlB := startEdge(t, ts.URL, WithEdgeClientID(1000+EdgeIDSpan), WithEdgeFlush(1, 0))

	// Two direct clients commit root round 1 while both edges still hold
	// round-0 bases.
	for _, id := range []int{50, 51} {
		round, base, _ := pullRawT(t, ts.Client(), ts.URL)
		params := addVecs(base, gridDelta(nParams, id))
		if st := pushRawT(t, ts.Client(), ts.URL, id, round, 1, params, nil); st != http.StatusOK {
			t.Fatalf("direct client %d push: status %d", id, st)
		}
	}
	awaitFn(t, "root round 1", func() bool { return root.Round() == 1 })
	m1, _ := root.Snapshot()

	// One cohort client behind each edge: the flushes push base round 0
	// against a round-1 root — staleness 1, effective weight 1/2 each.
	cohortRun(t, ts.Client(), urlA, []int{0})
	cohortRun(t, ts.Client(), urlB, []int{4})
	awaitFn(t, "root round 2", func() bool { return root.Round() == 2 })

	hist := root.Stats().Buffered.StalenessHist
	if hist[0] != 2 || hist[1] != 2 {
		t.Fatalf("root staleness histogram = %v, want [2 2 ...]", hist)
	}
	for _, e := range []*Edge{eA, eB} {
		if ih := e.Stats().Buffered.StalenessHist; ih[0] != 1 {
			t.Fatalf("edge inner histogram = %v, want [1 ...]", ih)
		}
	}

	// m2 = m1 + (½·δ0 + ½·δ4)/(½+½): both tier deltas at weight 1,
	// discounted to ½ by staleness 1 — exact on the grid.
	gotP, _ := root.Snapshot()
	for i := range gotP {
		want := m1[i] + (gridDelta(nParams, 0)[i]/2+gridDelta(nParams, 4)[i]/2)/1
		if gotP[i] != want {
			t.Fatalf("params[%d] = %v, want %v (staleness discount misapplied)", i, gotP[i], want)
		}
	}
}

// Topologies nest: a 3-tier chain (client → edge2 → edge1 → root) delivers
// the single client's exact delta to the root.
func TestEdgeTiersNest(t *testing.T) {
	const nParams = 33
	init := gridVec(nParams, 15)
	root := NewServer(init, nil, 1)
	ts := httptest.NewServer(root.Handler())
	defer ts.Close()

	_, url1 := startEdge(t, ts.URL, WithEdgeClientID(1000), WithEdgeFlush(1, 0))
	_, url2 := startEdge(t, url1, WithEdgeClientID(2000), WithEdgeFlush(1, 0))

	cohortRun(t, ts.Client(), url2, []int{0})
	awaitFn(t, "3-tier delivery", func() bool { return root.Round() == 1 })
	gotP, _ := root.Snapshot()
	for i := range gotP {
		want := init[i] + gridDelta(nParams, 0)[i]
		if gotP[i] != want {
			t.Fatalf("params[%d] = %v, want %v", i, gotP[i], want)
		}
	}
}

// The edge's /stats carries both the inner buffered section and the
// upstream tier section over HTTP.
func TestEdgeStatsEndpoint(t *testing.T) {
	init := gridVec(32, 16)
	root := NewServer(init, nil, 1)
	ts := httptest.NewServer(root.Handler())
	defer ts.Close()
	_, edgeURL := startEdge(t, ts.URL,
		WithEdgeName("cohort-a"), WithEdgeClientID(1000), WithEdgeFlush(100, 0))

	cohortRun(t, ts.Client(), edgeURL, []int{0})
	resp, err := http.Get(edgeURL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Buffered == nil {
		t.Fatal("edge stats missing the buffered section")
	}
	if st.Upstream == nil {
		t.Fatal("edge stats missing the upstream section")
	}
	if st.Upstream.Cohort != "cohort-a" || st.Upstream.URL != ts.URL {
		t.Fatalf("upstream section = %+v", st.Upstream)
	}
	if st.Upstream.Buffered != 1 || st.Upstream.CohortPulls != 1 {
		t.Fatalf("upstream section = %+v", st.Upstream)
	}
}

// Two drain pushes from one adopted base land as two distinct admissions at
// a buffered upstream: each committed batch pushes under its own identity
// inside the edge's EdgeIDSpan ID block, so the upstream's per-(round,
// client) dedup — which would answer a reused identity with a duplicate-200
// the edge cannot tell from success — never swallows the rebased second
// batch. (A synchronous root masks this case by advancing its round between
// the pushes; a buffered root sitting below its commit threshold does not.)
func TestEdgeDrainTwiceFromOneBaseNotDeduped(t *testing.T) {
	const nParams, nBN = 65, 3
	init := gridVec(nParams, 17)
	initBN := gridVec(nBN, 18)
	// Buffered root, K=2: the first drain push buffers without committing,
	// so the second drain pushes from the very same base round.
	root := NewServer(init, initBN, 1, WithBufferedAggregation(2, 4))
	ts := httptest.NewServer(root.Handler())
	defer ts.Close()

	e, edgeURL := startEdge(t, ts.URL, WithEdgeClientID(1000), WithEdgeFlush(100, 0))
	ctx := context.Background()

	cohortRun(t, ts.Client(), edgeURL, []int{0})
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("first drain: %v", err)
	}
	if root.Round() != 0 {
		t.Fatalf("root committed after one buffered admission: round %d", root.Round())
	}
	cohortRun(t, ts.Client(), edgeURL, []int{1})
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}

	// The second batch fills the root's K=2 buffer: both drain batches were
	// admitted (no dedup drop), and the committed model carries both deltas.
	if root.Round() != 1 {
		t.Fatalf("root round = %d after two drains, want 1 (second drain batch dedup-dropped?)", root.Round())
	}
	if n := root.DuplicatesDropped(); n != 0 {
		t.Fatalf("root dedup swallowed a drain batch: %d duplicates dropped", n)
	}
	gotP, gotBN := root.Snapshot()
	sumP := addVecs(gridDelta(nParams, 0), gridDelta(nParams, 1))
	for i := range gotP {
		if want := init[i] + sumP[i]/2; gotP[i] != want {
			t.Fatalf("params[%d] = %v, want %v (a drain batch was lost)", i, gotP[i], want)
		}
	}
	sumBN := addVecs(gridDelta(nBN, 0), gridDelta(nBN, 1))
	for i := range gotBN {
		if want := initBN[i] + sumBN[i]/2; gotBN[i] != want {
			t.Fatalf("bn[%d] = %v, want %v (a drain batch was lost)", i, gotBN[i], want)
		}
	}
}

// While the flusher is wedged against an unreachable upstream, cohort
// admissions are capped at a small multiple of flush K instead of buffering
// model-sized vectors without bound; beyond the cap the edge answers the
// retryable buffer-full 409 (retry header set, staleness counter uncharged)
// until the flusher catches up.
func TestEdgeAdmissionCappedWhileUpstreamDown(t *testing.T) {
	const nParams, nBN = 33, 2
	init := gridVec(nParams, 19)
	initBN := gridVec(nBN, 20)
	root := NewServer(init, initBN, 1)
	inner := root.Handler()
	var up atomic.Bool
	up.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			http.Error(w, "upstream down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	e, edgeURL := startEdge(t, ts.URL, WithEdgeClientID(1000), WithEdgeFlush(2, 0))
	up.Store(false)
	// Two updates trip the K=2 flush: the batch commits locally and the
	// flusher wedges in the upstream retry loop.
	cohortRun(t, ts.Client(), edgeURL, []int{0, 1})
	awaitFn(t, "flusher wedged in retries", func() bool { return e.Stats().Upstream.Retries >= 1 })

	// The wedged flusher never drains the buffer, so admissions stop at the
	// manual-mode cap of 4*K = 8.
	round, base, baseBN := pullRawT(t, ts.Client(), edgeURL)
	for id := 2; id < 10; id++ {
		params := addVecs(base, gridDelta(nParams, id))
		bn := addVecs(baseBN, gridDelta(nBN, id))
		if st := pushRawT(t, ts.Client(), edgeURL, id, round, 1, params, bn); st != http.StatusOK {
			t.Fatalf("cohort client %d within the cap: status %d", id, st)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Update{
		ClientID: 10, Round: round, Weight: 1,
		Params: addVecs(base, gridDelta(nParams, 10)),
		BN:     addVecs(baseBN, gridDelta(nBN, 10)),
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(edgeURL+"/update", contentTypeGob, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || resp.Header.Get(retryHeader) == "" {
		t.Fatalf("push beyond the cap: status %d, retry header %q; want retryable 409",
			resp.StatusCode, resp.Header.Get(retryHeader))
	}
	if got := e.inner.bufferedNow.Load(); got != 8 {
		t.Fatalf("buffer depth = %d at the cap, want 8", got)
	}
	if sr := e.Stats().Buffered.StaleRejected; sr != 0 {
		t.Fatalf("buffer-full rejection charged the staleness counter: %d", sr)
	}

	// Recovery: the wedged flush lands, the flusher drains, and the capped
	// client's retry is admissible again.
	up.Store(true)
	awaitFn(t, "flusher catching up after recovery", func() bool { return e.inner.bufferedNow.Load() == 0 })
}

// The age deadline runs from admission, not from when the flusher first
// looks at the buffer: an update admitted while the flusher was wedged in a
// long flush is pushed as soon as the flusher frees up once its age is
// already spent, instead of waiting a whole fresh flushAge from that point.
func TestEdgeAgeDeadlineRunsFromAdmission(t *testing.T) {
	const nParams = 33
	const flushAge = 800 * time.Millisecond
	init := gridVec(nParams, 21)
	root := NewServer(init, nil, 1)
	inner := root.Handler()
	var up atomic.Bool
	up.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			http.Error(w, "upstream down", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	e, edgeURL := startEdge(t, ts.URL, WithEdgeClientID(1000), WithEdgeFlush(2, flushAge))
	up.Store(false)
	cohortRun(t, ts.Client(), edgeURL, []int{0, 1}) // K-flush wedges against the dead upstream
	awaitFn(t, "flusher wedged in retries", func() bool { return e.Stats().Upstream.Retries >= 1 })
	cohortRun(t, ts.Client(), edgeURL, []int{2}) // admitted mid-wedge; its age clock starts now
	time.Sleep(flushAge + 200*time.Millisecond)  // let it age past flushAge while the flusher is stuck

	up.Store(true)
	awaitFn(t, "wedged flush landing", func() bool { return root.Round() >= 1 })
	t0 := time.Now()
	awaitFn(t, "age flush of the already-aged update", func() bool { return root.Round() >= 2 })
	if d := time.Since(t0); d > flushAge/2 {
		t.Fatalf("age flush took %v after the flusher freed up; the update's %v deadline had already passed at admission+%v",
			d, flushAge, flushAge)
	}
	if upSt := e.Stats().Upstream; upSt.FlushAge != 1 || upSt.FlushK != 1 {
		t.Fatalf("upstream stats: %+v, want one K flush and one age flush", upSt)
	}
}
