package fldist

// Registry is the multi-tenant mux of the tier: several named aggregators —
// root Servers, Edges, anything exposing an http.Handler — mounted behind
// one listener, each under its own path prefix. cmd/fldist -edge uses it to
// host one edge per cohort on a single port, and benchserve's topology
// phases spin fleets of tenants the same way.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Registry routes /<name>/<path> to the tenant registered under name, with
// the prefix stripped — a tenant mounted as "cohort-a" serves exactly the
// routes it would serve at the root of its own listener, so clients just
// append the tenant prefix to their base URL. GET / lists the tenant names
// as JSON. Safe for concurrent use; tenants may be added and removed while
// serving.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]http.Handler
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: map[string]http.Handler{}}
}

// Add mounts h under name. Names must be non-empty and slash-free (they are
// one path segment); re-adding a name replaces the previous tenant.
func (reg *Registry) Add(name string, h http.Handler) error {
	if name == "" || strings.Contains(name, "/") {
		return fmt.Errorf("fldist: registry name %q must be one non-empty path segment", name)
	}
	reg.mu.Lock()
	reg.tenants[name] = h
	reg.mu.Unlock()
	return nil
}

// Remove unmounts the named tenant; unknown names are a no-op.
func (reg *Registry) Remove(name string) {
	reg.mu.Lock()
	delete(reg.tenants, name)
	reg.mu.Unlock()
}

// Get returns the named tenant's handler, or nil.
func (reg *Registry) Get(name string) http.Handler {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return reg.tenants[name]
}

// Names returns the mounted tenant names, sorted.
func (reg *Registry) Names() []string {
	reg.mu.RLock()
	names := make([]string, 0, len(reg.tenants))
	for n := range reg.tenants {
		names = append(names, n)
	}
	reg.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Handler returns the registry's router.
func (reg *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trimmed := strings.TrimPrefix(r.URL.Path, "/")
		name, rest, _ := strings.Cut(trimmed, "/")
		if name == "" {
			if r.Method != http.MethodGet {
				http.Error(w, "GET only", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string][]string{"tenants": reg.Names()})
			return
		}
		h := reg.Get(name)
		if h == nil {
			http.Error(w, fmt.Sprintf("fldist: no tenant %q", name), http.StatusNotFound)
			return
		}
		// Shallow-clone the request with the tenant prefix stripped so the
		// tenant sees the same paths it would on its own listener.
		r2 := new(http.Request)
		*r2 = *r
		u2 := *r.URL
		u2.Path = "/" + rest
		r2.URL = &u2
		h.ServeHTTP(w, r2)
	})
}
