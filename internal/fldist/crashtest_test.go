package fldist

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// The crash-injection harness. Three failure models, one invariant:
//
//   - prefix truncation at (and inside) every record boundary — the on-disk
//     image of a kill at any instant under any reordering-free filesystem;
//   - a fault-injecting WAL sink that errors or short-writes at a chosen
//     record — torn tails and dying disks, with the server expected to keep
//     serving degraded;
//   - a real SIGKILL of a child process mid-federation — the page cache keeps
//     what the process wrote, recovery resumes it.
//
// The invariant, everywhere: recovery lands on a snapshot bit-identical to
// the last intact commit record in the log — never a blend, never a torn
// state, never a panic — and a log with no intact commit is a clean error.

// walScript drives a deterministic buffered fleet against a WAL-backed
// server: `commits` full buffers of K=3 pushes plus `extra` admitted-but-
// uncommitted pushes at the end. It returns the reference snapshot after
// every commit (index = round) and the live server for further inspection.
// The caller owns srv.Close.
func walScript(t *testing.T, dir string, commits, extra, shards int) (srv *Server, refP, refBN map[int][]float64) {
	t.Helper()
	initParams := synthVec(257, 71) // odd length: ragged shards
	initBN := synthVec(5, 72)
	srv = NewServer(initParams, initBN, 1,
		WithShards(shards), WithBufferedAggregation(walTestBufferK, 2),
		WithWAL(dir), withWarnf(t.Logf))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	refP = map[int][]float64{0: append([]float64(nil), initParams...)}
	refBN = map[int][]float64{0: append([]float64(nil), initBN...)}

	push := func(c *synthClient, wantRound int) {
		if r := c.pull(t, ts); r != wantRound {
			t.Fatalf("client %d pulled round %d, want %d", c.id, r, wantRound)
		}
		if st, dup, _, _ := c.push(t, ts, wantRound); st != http.StatusOK || dup {
			t.Fatalf("client %d push: status %d dup %v", c.id, st, dup)
		}
	}
	id := 0
	for r := 0; r < commits; r++ {
		for i := 0; i < walTestBufferK; i++ {
			c := &synthClient{id: id, weight: float64(id%4 + 1)}
			if id%3 == 2 {
				c.comp = &Compression{Bits: 8, Chunk: 64}
			}
			push(c, r)
			id++
		}
		if srv.Round() != r+1 {
			t.Fatalf("round = %d after buffer %d, want %d", srv.Round(), r, r+1)
		}
		p, bn := srv.Snapshot()
		refP[r+1], refBN[r+1] = p, bn
	}
	for i := 0; i < extra; i++ {
		push(&synthClient{id: id, weight: 2}, commits)
		id++
	}
	return srv, refP, refBN
}

// walTestBufferK is the commit threshold every scripted run in this file
// uses; walBoundaries needs it to predict recovery's folds.
const walTestBufferK = 3

// walBoundaries walks a finished log and returns each record's end offset
// together with the round a recovery of the prefix ending there lands on
// (-1 while no commit is included yet). That round is the last wholly
// contained commit — plus one when the prefix also holds a full buffer of
// admissions after it, because recovery replays those and deterministically
// folds the commit the dying process never got to log.
func walBoundaries(t *testing.T, log []byte) (ends []int64, recoversTo []int) {
	t.Helper()
	off, commit, admitsSince := int64(0), -1, 0
	rest := log
	for len(rest) > 0 {
		typ, _, payload, n, err := parseWALRecord(rest)
		if err != nil {
			t.Fatalf("finished log corrupt at offset %d: %v", off, err)
		}
		switch typ {
		case walRecCommit:
			c, cerr := parseWALCommit(payload)
			if cerr != nil {
				t.Fatal(cerr)
			}
			commit, admitsSince = c.round, 0
		case walRecAdmit:
			admitsSince++
		}
		off += int64(n)
		rest = rest[n:]
		ends = append(ends, off)
		want := commit
		if commit >= 0 && admitsSince >= walTestBufferK {
			want = commit + 1
		}
		recoversTo = append(recoversTo, want)
	}
	return ends, recoversTo
}

// assertRecovered recovers dir and checks the snapshot is bit-identical to
// the reference vectors of wantRound. It closes the recovered server.
func assertRecovered(t *testing.T, dir string, shards, wantRound int, refP, refBN map[int][]float64) {
	t.Helper()
	rec, err := RecoverServer(dir, WithShards(shards), withWarnf(t.Logf))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rec.Close()
	if rec.Round() != wantRound {
		t.Fatalf("recovered round %d, want %d", rec.Round(), wantRound)
	}
	p, bn := rec.Snapshot()
	wp, wbn := refP[wantRound], refBN[wantRound]
	if len(p) != len(wp) || len(bn) != len(wbn) {
		t.Fatalf("recovered shape (%d,%d), want (%d,%d)", len(p), len(bn), len(wp), len(wbn))
	}
	for i := range wp {
		if p[i] != wp[i] {
			t.Fatalf("round %d params[%d] = %v, want %v (not bit-identical)", wantRound, i, p[i], wp[i])
		}
	}
	for i := range wbn {
		if bn[i] != wbn[i] {
			t.Fatalf("round %d bn[%d] = %v, want %v (not bit-identical)", wantRound, i, bn[i], wbn[i])
		}
	}
}

// Prefix truncation at every record boundary and at torn cuts inside every
// record: recovery always lands on the last wholly-contained commit,
// bit-identically, and errors cleanly (never panics) when no commit survives.
// Runs the sweep both with the (then stale) idx checkpoint present and
// without it, so the idx fast path and the full-scan fallback both face every
// cut.
func TestWALCrashTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	srv, refP, refBN := walScript(t, dir, 3, 1, 4)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(filepath.Join(dir, walLogName))
	if err != nil {
		t.Fatal(err)
	}
	idxBytes, err := os.ReadFile(filepath.Join(dir, walIdxName))
	if err != nil {
		t.Fatal(err)
	}
	ends, lastCommit := walBoundaries(t, logBytes)

	try := func(t *testing.T, cut int64, want int, withIdx bool) {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, walLogName), logBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if withIdx {
			// The idx from the end of the run: stale for most cuts, so it may
			// point past the truncation — recovery must detect and rescan.
			if err := os.WriteFile(filepath.Join(sub, walIdxName), idxBytes, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if want < 0 {
			rec, err := RecoverServer(sub, withWarnf(t.Logf))
			if err == nil {
				rec.Close()
				t.Fatalf("cut %d: recovery succeeded with no intact commit", cut)
			}
			return
		}
		assertRecovered(t, sub, 2, want, refP, refBN)
	}

	for _, withIdx := range []bool{false, true} {
		// Every record boundary.
		prevEnd := int64(0)
		for i, end := range ends {
			try(t, end, lastCommit[i], withIdx)
			// Torn cuts inside this record: one byte in (mid-header) and one
			// byte short of complete (mid-payload) — the prefix covers only
			// the earlier records.
			covered := -1
			if i > 0 {
				covered = lastCommit[i-1]
			}
			if prevEnd+1 < end {
				try(t, prevEnd+1, covered, withIdx)
			}
			if end-1 > prevEnd {
				try(t, end-1, covered, withIdx)
			}
			prevEnd = end
		}
	}

	// A recovered-then-truncated log is itself recoverable: recovery truncated
	// the torn tail in place, so a second recovery sees a clean log.
	sub := t.TempDir()
	cut := ends[len(ends)-1] - 2 // torn final record
	if err := os.WriteFile(filepath.Join(sub, walLogName), logBytes[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	want := lastCommit[len(ends)-2]
	assertRecovered(t, sub, 1, want, refP, refBN)
	assertRecovered(t, sub, 4, want, refP, refBN)
}

// faultSink is the walWrapFile fault injection: it forwards writes until the
// budget runs out, then optionally writes a partial prefix (a torn record)
// and fails every write (and sync) from then on. Its own mutex makes it safe
// against the WAL's background group-commit fsync, which calls Sync from a
// goroutine concurrent with appends.
type faultSink struct {
	mu      sync.Mutex
	f       walFile
	budget  int // appends to allow before failing
	partial int // bytes of the failing write to let through (torn tail)
	broken  bool
}

var errInjected = errors.New("injected WAL fault")

func (fs *faultSink) Write(p []byte) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.broken {
		return 0, errInjected
	}
	if fs.budget > 0 {
		fs.budget--
		return fs.f.Write(p)
	}
	fs.broken = true
	if fs.partial > 0 && fs.partial < len(p) {
		n, _ := fs.f.Write(p[:fs.partial])
		return n, errInjected
	}
	return 0, errInjected
}

func (fs *faultSink) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.broken {
		return errInjected
	}
	return fs.f.Sync()
}

func (fs *faultSink) Close() error { return fs.f.Close() }

// A WAL whose sink starts failing mid-run (cleanly or with a torn partial
// record): the server must keep serving — every push still admitted, every
// buffer still committed — warn exactly once, flag Broken in stats, and
// recovery must land bit-identically on the last commit that reached disk.
func TestWALWriteFaultInjection(t *testing.T) {
	// First, a clean run to count appends and capture references.
	cleanDir := t.TempDir()
	srv, refP, refBN := walScript(t, cleanDir, 3, 1, 4)
	total := int(srv.wal.records.Load())
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	for _, partial := range []int{0, 7} {
		for budget := 0; budget < total; budget++ {
			dir := t.TempDir()
			var sink *faultSink
			walWrapFile = func(f walFile) walFile {
				sink = &faultSink{f: f, budget: budget, partial: partial}
				return sink
			}
			restore := func() { walWrapFile = nil }

			var warns []string
			// The meta record and initial commit are appended inside NewServer
			// — a budget that small panics there by contract (a server that
			// cannot create its WAL must not start). Catch and move on.
			created := func() (s *Server, ok bool) {
				defer func() {
					if r := recover(); r != nil {
						ok = false
					}
				}()
				s = NewServer(synthVec(257, 71), synthVec(5, 72), 1,
					WithShards(4), WithBufferedAggregation(3, 2), WithWAL(dir),
					withWarnf(func(f string, a ...any) { warns = append(warns, f) }))
				return s, true
			}
			s, ok := created()
			restore()
			if !ok {
				if budget >= 2 {
					t.Fatalf("budget %d: NewServer panicked after the initial records", budget)
				}
				continue
			}

			// Drive the same script by hand; every push must succeed even
			// while the WAL is refusing writes.
			ts := httptest.NewServer(s.Handler())
			id := 0
			for r := 0; r < 3; r++ {
				for i := 0; i < 3; i++ {
					c := &synthClient{id: id, weight: float64(id%4 + 1)}
					if id%3 == 2 {
						c.comp = &Compression{Bits: 8, Chunk: 64}
					}
					if got := c.pull(t, ts); got != r {
						t.Fatalf("budget %d: pulled %d, want %d", budget, got, r)
					}
					if st, dup, _, _ := c.push(t, ts, r); st != http.StatusOK || dup {
						t.Fatalf("budget %d: push status %d dup %v with broken WAL", budget, st, dup)
					}
					id++
				}
				if s.Round() != r+1 {
					t.Fatalf("budget %d: round %d, want %d — a WAL fault stalled aggregation", budget, s.Round(), r+1)
				}
			}
			ts.Close()

			if sink.broken {
				if len(warns) == 0 {
					t.Fatalf("budget %d: WAL broke with no warning", budget)
				}
				if !s.Stats().WAL.Broken {
					t.Fatalf("budget %d: stats does not flag the broken WAL", budget)
				}
			}
			s.Close()

			// Recovery: bit-identical to the last commit that reached disk.
			logBytes, err := os.ReadFile(filepath.Join(dir, walLogName))
			if err != nil {
				t.Fatal(err)
			}
			_, lastCommit := walBoundaries(t, truncateToIntact(logBytes))
			want := -1
			if len(lastCommit) > 0 {
				want = lastCommit[len(lastCommit)-1]
			}
			if want < 0 {
				if rec, err := RecoverServer(dir, withWarnf(t.Logf)); err == nil {
					rec.Close()
					t.Fatalf("budget %d: recovery succeeded with no intact commit", budget)
				}
				continue
			}
			assertRecovered(t, dir, 4, want, refP, refBN)
		}
	}
}

// truncateToIntact cuts a log at its first structurally bad record, the same
// prefix recovery uses.
func truncateToIntact(log []byte) []byte {
	off := 0
	rest := log
	for len(rest) > 0 {
		_, _, _, n, err := parseWALRecord(rest)
		if err != nil {
			break
		}
		off += n
		rest = rest[n:]
	}
	return log[:off]
}

// crashChildEnv marks the re-exec'd child of the SIGKILL test.
const crashChildEnv = "FLDIST_WAL_CRASH_CHILD_DIR"

// TestWALCrashChildMain is not a test of its own: it is the body of the
// child process the SIGKILL test abandons. It creates (or recovers) a
// WAL-backed server in the directory named by the env var and federates
// deterministic pushes forever, until the parent kills -9 it.
func TestWALCrashChildMain(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("child body; driven by TestWALCrashSIGKILL")
	}
	var srv *Server
	if WALExists(dir) {
		s, err := RecoverServer(dir, WithShards(2))
		if err != nil {
			t.Fatalf("child recover: %v", err)
		}
		srv = s
	} else {
		srv = NewServer(synthVec(257, 71), synthVec(5, 72), 1,
			WithShards(2), WithBufferedAggregation(3, 2), WithWAL(dir))
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Signal the parent that commits are flowing.
	started := srv.RoundsCompleted()
	for id := 0; ; id++ {
		c := &synthClient{id: id, weight: float64(id%4 + 1)}
		r := c.pull(t, ts)
		if st, dup, _, _ := c.push(t, ts, r); st != http.StatusOK || dup {
			t.Fatalf("child push: %d dup %v", st, dup)
		}
		if srv.RoundsCompleted() > started {
			started = srv.RoundsCompleted()
			os.Stdout.WriteString("COMMIT\n")
		}
	}
}

// A real SIGKILL mid-federation, repeated across restarts: each incarnation
// recovers the previous one's WAL, federates further, and is killed in turn.
// After every kill the log recovers to a snapshot bit-identical to its last
// intact commit record — SIGKILL loses nothing that reached the page cache.
func TestWALCrashSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	for incarnation := 0; incarnation < 3; incarnation++ {
		cmd := exec.Command(os.Args[0], "-test.run", "TestWALCrashChildMain")
		cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Wait for at least one commit of this incarnation, then a beat more
		// so the kill lands mid-flight, then SIGKILL.
		buf := make([]byte, 7)
		deadline := time.Now().Add(20 * time.Second)
		for {
			if _, err := stdout.Read(buf); err == nil {
				break
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatal("child produced no commit before the deadline")
			}
		}
		time.Sleep(time.Duration(5+incarnation*7) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		cmd.Wait()

		// The kernel has released the dead child's flock; recovery must land
		// exactly on the last intact commit record.
		logBytes, err := os.ReadFile(filepath.Join(dir, walLogName))
		if err != nil {
			t.Fatal(err)
		}
		intact := truncateToIntact(logBytes)
		_, lastCommit := walBoundaries(t, intact)
		if len(lastCommit) == 0 || lastCommit[len(lastCommit)-1] < 0 {
			t.Fatalf("incarnation %d: no intact commit in the log", incarnation)
		}
		wantRound := lastCommit[len(lastCommit)-1]
		rec, err := RecoverServer(dir, WithShards(2), withWarnf(t.Logf))
		if err != nil {
			t.Fatalf("incarnation %d: recover: %v", incarnation, err)
		}
		// Recovery may fold a buffer that had filled right as the kill hit
		// (the commit the dead process was about to log) — the recovered
		// round is then wantRound+1; bit-identity against the *logged* commit
		// holds either way because that fold is itself logged.
		gotRound := rec.Round()
		if gotRound != wantRound && gotRound != wantRound+1 {
			t.Fatalf("incarnation %d: recovered round %d, want %d or %d", incarnation, gotRound, wantRound, wantRound+1)
		}
		// Re-read the log: recovery appends a commit record when it folds a
		// full recovered buffer, and bit-identity is checked against the
		// record for whatever round the recovered server landed on.
		logBytes, err = os.ReadFile(filepath.Join(dir, walLogName))
		if err != nil {
			t.Fatal(err)
		}
		var wantC *walCommit
		rest := truncateToIntact(logBytes)
		for len(rest) > 0 {
			typ, _, payload, n, perr := parseWALRecord(rest)
			if perr != nil {
				t.Fatal(perr)
			}
			if typ == walRecCommit {
				c, cerr := parseWALCommit(payload)
				if cerr != nil {
					t.Fatal(cerr)
				}
				if c.round == gotRound {
					wantC = &c
				}
			}
			rest = rest[n:]
		}
		if wantC == nil {
			t.Fatalf("incarnation %d: no commit record for recovered round %d", incarnation, gotRound)
		}
		p, bn := rec.Snapshot()
		for i := range wantC.params {
			if p[i] != wantC.params[i] {
				t.Fatalf("incarnation %d: params[%d] = %v, want logged %v", incarnation, i, p[i], wantC.params[i])
			}
		}
		for i := range wantC.bn {
			if bn[i] != wantC.bn[i] {
				t.Fatalf("incarnation %d: bn[%d] = %v, want logged %v", incarnation, i, bn[i], wantC.bn[i])
			}
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
