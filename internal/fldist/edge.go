package fldist

// Hierarchical multi-tier aggregation. An Edge stands between a cohort of
// clients and an upstream parameter server (the root, or another edge —
// topologies nest arbitrarily):
//
//   - To its cohort it IS a parameter server. The embedded buffered Server
//     admits cohort pushes with the very same shard fold, staleness window,
//     dedup horizon and 1/(1+s) down-weighting as the root — edge.go adds no
//     second aggregation algorithm.
//   - To its upstream it is an ordinary client. Each flush pre-folds the
//     buffered cohort updates into ONE combined update — weight = the sum of
//     the cohort's effective weights, base round = the upstream round the
//     edge last adopted — and pushes it as a plain raw wire update
//     (docs/WIRE.md is unchanged; the root cannot tell an edge from a big
//     client, and its staleness down-weighting of an old base round applies
//     to tier deltas for free).
//
// The pre-fold IS the embedded server's buffered commit, run in manual mode:
// cohort admissions never auto-commit; the edge's single flusher goroutine
// calls (*Server).commitNow when its flush policy fires (K updates buffered,
// or the oldest buffered update reaching age T), pushes the committed model
// upstream, waits for the upstream round that includes it, and adopts the
// freshly pulled upstream model as the next base. One inner commit per
// upstream push is the invariant that keeps the algebra exact: an inner
// commit produces m' = b + Σwᵢ(xᵢ−bᵢ)/W over the batch (W = Σwᵢ), so the
// upstream's own fold of the tier delta, W·(m'−b), reproduces the cohort sum
// Σwᵢ(xᵢ−bᵢ) — the identical contribution the flat fleet would have made,
// which is why a 2-tier tree commits the same model as the flat fleet over
// the same admitted multiset (see docs/ARCHITECTURE.md "Hierarchical
// aggregation" for the exactness fine print, and TestTwoTierBitIdentical*).
//
// The edge also acts as a pull-through model cache: cohort pulls are served
// from the adopted base (plus any local commits) without touching the root,
// so N clients behind an edge cost the root one pull per flush cycle instead
// of N.

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// edgeConfig carries NewEdge's optional settings.
type edgeConfig struct {
	name     string
	clientID int
	flushK   int
	flushAge time.Duration
	window   int
	shards   int
	walDir   string
	hc       *http.Client
}

// EdgeOption configures NewEdge.
type EdgeOption func(*edgeConfig)

// WithEdgeName names the edge's cohort; the name appears in the stats
// upstream section and is the tenant name a Registry mounts the edge under.
func WithEdgeName(name string) EdgeOption {
	return func(c *edgeConfig) { c.name = name }
}

// WithEdgeClientID fixes the base of the EdgeIDSpan-sized block of client
// IDs the edge pushes upstream under (see EdgeIDSpan). Every edge (and
// direct client) sharing an upstream needs a disjoint block — the upstream's
// per-(round, client) dedup would silently drop a colliding edge's flush
// otherwise. By default edges draw EdgeIDSpan-strided blocks from 1<<20 up,
// clear of small hand-assigned client IDs — but only within one process;
// separate edge processes sharing an upstream must be given explicit
// disjoint blocks (cmd/fldist -edge-id randomizes its default for this
// reason).
func WithEdgeClientID(id int) EdgeOption {
	return func(c *edgeConfig) { c.clientID = id }
}

// WithEdgeFlush sets the flush policy: the edge pushes its combined cohort
// delta upstream once k updates have buffered, or once the oldest buffered
// update is age old — whichever comes first. age 0 disables the age trigger
// (flushes happen on depth k and drain only). Defaults: k 8, age 500ms.
func WithEdgeFlush(k int, age time.Duration) EdgeOption {
	return func(c *edgeConfig) { c.flushK = k; c.flushAge = age }
}

// WithEdgeWindow sets the staleness window (in the edge's local commit
// rounds) for cohort admissions, exactly as WithBufferedAggregation's
// maxStaleness does for a root. Default 8.
func WithEdgeWindow(maxStaleness int) EdgeOption {
	return func(c *edgeConfig) { c.window = maxStaleness }
}

// WithEdgeShards sets the embedded server's parameter shard count (see
// WithShards). The edge's pre-fold is bit-identical at any shard count.
func WithEdgeShards(n int) EdgeOption {
	return func(c *edgeConfig) { c.shards = n }
}

// WithEdgeWAL makes the edge's parked upstream batch crash-safe: every
// committed-but-unacknowledged batch is persisted (whole, via atomic replace)
// in dir's single-slot edge.wal before the push, and a restarted edge
// re-pushes it with its original pushID before doing anything else — the
// upstream's (round, pushID) dedup turns the replay into a duplicate 200 if
// the first attempt had in fact landed, so a crash on either side of the
// acknowledgement costs nothing and double-counts nothing. Only the parked
// batch is durable: cohort updates still buffering toward the next commit die
// with the process (their clients re-push, exactly as they would against a
// restarted root without a WAL). The slot also restores the batch ID cursor,
// keeping later batches' dedup identities on the same EdgeIDSpan cycle.
func WithEdgeWAL(dir string) EdgeOption {
	return func(c *edgeConfig) { c.walDir = dir }
}

// WithEdgeHTTPClient sets the http.Client used for upstream pulls and
// pushes. Default http.DefaultClient.
func WithEdgeHTTPClient(hc *http.Client) EdgeOption {
	return func(c *edgeConfig) { c.hc = hc }
}

// EdgeIDSpan is the block of upstream client IDs each edge owns: an edge
// configured with client ID id pushes under IDs in [id, id+EdgeIDSpan).
// Successive committed batches cycle through the block, so two *different*
// batches pushed from the same upstream base round never share the
// upstream's per-(round, client) dedup key — without this, the second of two
// drain pushes from one adopted base (or the first flush after an
// interrupted resync) would be answered with a duplicate-200 and a whole
// cohort batch silently discarded. Retries of the *same* batch keep their
// ID, so upstream dedup still makes interrupted pushes idempotent. Anything
// assigning edge IDs by hand must space them by at least this span.
const EdgeIDSpan = 64

// edgeAutoID hands out default upstream client ID blocks, EdgeIDSpan apart,
// starting high so they never collide with hand-assigned fleet client IDs.
var edgeAutoID atomic.Int64

func init() { edgeAutoID.Store(1 << 20) }

// unpushedBatch is a committed cohort batch whose upstream push has not
// succeeded yet (the flush was interrupted by context cancellation). Drain
// completes it before committing anything further — one inner commit per
// upstream push is the exactness invariant. pushID is the batch's dedup
// identity within the edge's EdgeIDSpan block, fixed at commit time so
// retries and rebases of this batch stay idempotent upstream while the next
// batch pushes under a fresh key.
// The payload and base are frozen at park time (parkBatchLocked), not at push
// time: what the WAL holds is byte-for-byte what the wire will carry, so a
// restarted edge re-pushes exactly what the crashed one would have. snap is
// nil for a batch recovered from the edge WAL — the inner model it came from
// died with the previous process.
type unpushedBatch struct {
	snap   *snapshot
	batch  commitInfo
	pushID int

	payloadP  []float64
	payloadB  []float64
	baseRound int
	baseP     []float64
	baseB     []float64
}

// Edge is an edge aggregator: a buffered parameter server for its cohort and
// a client of its upstream. Build with NewEdge, call Start (or let Serve do
// it), and point cohort clients — plain fldist.Clients, raw or compressed —
// at its Handler. See the package comment at the top of this file.
type Edge struct {
	upstream string
	name     string
	clientID int
	hc       *http.Client

	flushK   int
	flushAge time.Duration
	window   int
	shards   int
	walDir   string

	inner        *Server
	innerHandler http.Handler

	// flushMu serializes every upstream interaction (flusher flushes and
	// Drain) and guards the base/last-push bookkeeping below. The cohort
	// admission path never takes it.
	flushMu sync.Mutex
	// baseRound/baseParams/baseBN are the currently adopted upstream state:
	// the base the next flush's combined delta is expressed against.
	baseRound  int
	baseParams []float64
	baseBN     []float64
	// lastPushedP/lastPushedB are the inner model as of the last successful
	// upstream push; cleanBase marks that no push has happened since the last
	// adopt (the common case, where the push payload is the inner model
	// verbatim). When a drain pushes twice from one base, the second payload
	// is re-expressed as base + (model − lastPushed) so the first batch is
	// not double-counted upstream.
	lastPushedP []float64
	lastPushedB []float64
	cleanBase   bool
	unpushed    *unpushedBatch
	// pushSeq counts committed batches; each batch's upstream dedup identity
	// is clientID + pushSeq%EdgeIDSpan (see EdgeIDSpan).
	pushSeq int

	// baseRoundA mirrors baseRound for the lock-free Stats read.
	baseRoundA atomic.Int64

	started atomic.Bool
	// done closes when the flusher goroutine exits (its context canceled);
	// Serve waits on it before draining so flusher and drain never overlap a
	// push.
	done chan struct{}

	upPushes     atomic.Int64
	upRetries    atomic.Int64
	upRebased    atomic.Int64
	flushByK     atomic.Int64
	flushByAge   atomic.Int64
	flushByDrain atomic.Int64
	cohortPulls  atomic.Int64
}

// NewEdge creates an edge aggregator for the given upstream base URL (e.g.
// "http://root:8080"). Like NewServer it panics on nonsensical
// configuration; it does not touch the network — the first upstream pull
// happens in Start.
func NewEdge(upstream string, opts ...EdgeOption) *Edge {
	if upstream == "" {
		panic("fldist: edge needs an upstream URL")
	}
	cfg := edgeConfig{
		clientID: int(edgeAutoID.Add(EdgeIDSpan) - EdgeIDSpan),
		flushK:   8,
		flushAge: 500 * time.Millisecond,
		window:   8,
		hc:       http.DefaultClient,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.flushK < 1 {
		panic("fldist: edge flush threshold must be ≥ 1")
	}
	if cfg.flushAge < 0 {
		panic("fldist: edge flush age must be ≥ 0")
	}
	if cfg.window < 0 || cfg.window > maxStalenessLimit {
		panic(fmt.Sprintf("fldist: edge staleness window %d outside [0,%d]", cfg.window, maxStalenessLimit))
	}
	return &Edge{
		upstream: upstream,
		name:     cfg.name,
		clientID: cfg.clientID,
		hc:       cfg.hc,
		flushK:   cfg.flushK,
		flushAge: cfg.flushAge,
		window:   cfg.window,
		shards:   cfg.shards,
		walDir:   cfg.walDir,
		done:     make(chan struct{}),
	}
}

// Name returns the cohort name ("" when unnamed).
func (e *Edge) Name() string { return e.name }

// ClientID returns the client ID the edge pushes upstream under.
func (e *Edge) ClientID() int { return e.clientID }

// Start pulls the initial model from the upstream (retrying transport
// failures with jittered backoff until ctx is canceled), seeds the embedded
// cohort server with it, and launches the flusher goroutine. The flusher
// stops when ctx is canceled; Start must be called at most once.
func (e *Edge) Start(ctx context.Context) error {
	if e.started.Swap(true) {
		return errors.New("fldist: edge already started")
	}
	if e.walDir != "" {
		if err := e.recoverParkedBatch(ctx); err != nil {
			e.started.Store(false)
			return err
		}
	}
	blob, err := e.pullUpstreamRetry(ctx)
	if err != nil {
		e.started.Store(false)
		return fmt.Errorf("fldist: edge initial pull: %w", err)
	}
	inner := NewServer(blob.Params, blob.BN, 1,
		WithShards(e.shards), WithBufferedAggregation(e.flushK, e.window))
	inner.manual = true
	inner.flushSignal = make(chan struct{}, 1)
	// Bound the cohort buffer: in manual mode nothing on the admission path
	// drains it, so while the flusher is wedged (an upstream outage's retry
	// loop, a stalled resync) admissions would otherwise retain model-sized
	// buffers without limit. Beyond a few flushes' worth, cohort pushes get
	// the retryable buffer-full verdict until the flusher catches up.
	inner.manualCap = 4 * e.flushK
	e.inner = inner
	e.innerHandler = inner.Handler()
	e.setBase(blob)
	go e.flusher(ctx)
	return nil
}

// recoverParkedBatch completes the push a previous run of this edge parked in
// the WAL but never got acknowledged for. It runs before the initial pull and
// before the inner server exists: the parked payload was frozen at park time,
// so pushing it needs no local model state — only the stored base (for a
// staleness rebase) and the stored pushID (for upstream dedup). The batch ID
// cursor is restored from the slot so batches committed after the restart
// keep drawing fresh dedup identities.
func (e *Edge) recoverParkedBatch(ctx context.Context) error {
	b, ok, err := readEdgeWAL(e.walDir)
	if err != nil {
		return fmt.Errorf("fldist: edge wal recovery: %w", err)
	}
	if !ok {
		return nil
	}
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.pushSeq = b.pushSeq
	e.unpushed = &unpushedBatch{
		batch:     commitInfo{updates: b.updates, weight: b.weight},
		pushID:    b.pushID,
		payloadP:  b.payloadP,
		payloadB:  b.payloadB,
		baseRound: b.baseRnd,
		baseP:     b.baseP,
		baseB:     b.baseBN,
	}
	if err := e.pushBatchLocked(ctx, false); err != nil {
		return fmt.Errorf("fldist: edge wal recovery: %w", err)
	}
	return nil
}

// setBase records blob as the adopted upstream state. Caller holds flushMu
// or is the still-single-threaded Start.
func (e *Edge) setBase(blob *ModelBlob) {
	e.baseRound = blob.Round
	e.baseParams = blob.Params
	e.baseBN = blob.BN
	e.lastPushedP = blob.Params
	e.lastPushedB = blob.BN
	e.cleanBase = true
	e.baseRoundA.Store(int64(blob.Round))
}

// Handler returns the edge's HTTP routes: the embedded cohort server's
// /model, /round and /update verbatim (plus a pull-cache hit counter), with
// /stats replaced by the edge's own stats carrying the upstream section.
// Start must have succeeded first.
func (e *Edge) Handler() http.Handler {
	if e.inner == nil {
		panic("fldist: Edge.Handler before Start")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", e.handleStats)
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/model" {
			e.cohortPulls.Add(1)
		}
		e.innerHandler.ServeHTTP(w, r)
	}))
	return mux
}

func (e *Edge) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(e.Stats())
}

// Stats returns the embedded cohort server's stats with the Upstream tier
// section filled in. Like (*Server).Stats it reads only atomics — it never
// blocks cohort admission or an in-flight flush.
func (e *Edge) Stats() Stats {
	st := e.inner.Stats()
	st.Upstream = &UpstreamStats{
		URL:         e.upstream,
		Cohort:      e.name,
		BaseRound:   int(e.baseRoundA.Load()),
		Pushes:      e.upPushes.Load(),
		Retries:     e.upRetries.Load(),
		Rebased:     e.upRebased.Load(),
		FlushK:      e.flushByK.Load(),
		FlushAge:    e.flushByAge.Load(),
		FlushDrain:  e.flushByDrain.Load(),
		CohortPulls: e.cohortPulls.Load(),
		Buffered:    e.inner.bufferedNow.Load(),
	}
	return st
}

// Round returns the edge's local (cohort-facing) round. Lock-free.
func (e *Edge) Round() int { return e.inner.Round() }

// flusher is the edge's only committing goroutine: it watches the admission
// signal, applies the K/age flush policy, and runs each flush to completion
// (commit → push upstream → adopt the new upstream model) before looking at
// the buffer again. Single-threaded flushing is what guarantees one inner
// commit per upstream push.
func (e *Edge) flusher(ctx context.Context) {
	defer close(e.done)
	var ageTimer *time.Timer
	var ageC <-chan time.Time
	stopAge := func() {
		if ageTimer != nil {
			ageTimer.Stop()
			ageTimer = nil
			ageC = nil
		}
	}
	defer stopAge()
	// armAge points the age trigger at the *admission time* of the oldest
	// buffered update (recorded by the admission path, not by this
	// goroutine), reporting true when that deadline has already passed — so
	// an update that sat buffered while the flusher was inside a long flush
	// (upstream retries) is pushed the moment the flusher frees up, instead
	// of waiting a whole fresh flushAge. No-op when the trigger is disabled,
	// already armed, or the buffer is empty.
	armAge := func() (due bool) {
		if e.flushAge <= 0 || ageC != nil {
			return false
		}
		oldest := e.inner.oldestAdmit.Load()
		if oldest == 0 {
			return false
		}
		//lint:ignore determinism flush-age pacing only; which updates flush is decided by count and round, their bytes by content
		remaining := e.flushAge - time.Since(time.Unix(0, oldest))
		if remaining <= 0 {
			return true
		}
		ageTimer = time.NewTimer(remaining)
		ageC = ageTimer.C
		return false
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-e.inner.flushSignal:
			if int(e.inner.bufferedNow.Load()) >= e.flushK {
				e.flush(ctx, &e.flushByK)
				stopAge()
			} else if armAge() {
				e.flush(ctx, &e.flushByAge)
			}
		case <-ageC:
			ageTimer = nil
			ageC = nil
			if e.inner.bufferedNow.Load() == 0 {
				continue
			}
			// The buffer the timer was armed for may have flushed and
			// refilled since; re-arm against the current oldest admission if
			// its deadline is still in the future.
			if armAge() {
				e.flush(ctx, &e.flushByAge)
			}
		}
	}
}

// flush runs one complete flush cycle. On context cancellation mid-push the
// committed batch is parked for Drain to complete.
func (e *Edge) flush(ctx context.Context, reason *atomic.Int64) {
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	if e.unpushed == nil {
		batch, ok := e.inner.commitNow()
		if !ok {
			return
		}
		reason.Add(1)
		e.parkBatchLocked(batch)
	}
	if err := e.pushBatchLocked(ctx, true); err != nil {
		return // ctx canceled; e.unpushed survives for Drain
	}
}

// nextPushIDLocked draws the upstream dedup identity for a freshly committed
// batch: the edge's client ID plus a per-batch offset cycling through the
// edge's EdgeIDSpan-sized ID block. Distinct batches pushed from the same
// base round (drain's second push; a flush after an interrupted resync) thus
// never collide in the upstream's per-(round, client) dedup, while retries
// of one batch reuse its identity and stay idempotent. Caller holds flushMu.
func (e *Edge) nextPushIDLocked() int {
	id := e.clientID + e.pushSeq%EdgeIDSpan
	e.pushSeq++
	return id
}

// parkBatchLocked freezes a freshly committed batch into the unpushed slot:
// it draws the batch's upstream dedup identity, computes the exact payload
// the push will carry — the inner model verbatim on the first push since the
// last adopt, otherwise re-expressed as base + (model − lastPushed) so the
// previous push from this base is not double-counted upstream — and, when the
// edge has a WAL dir, persists the parked batch so a restarted edge re-pushes
// it under the same identity. Caller holds flushMu.
func (e *Edge) parkBatchLocked(batch commitInfo) {
	snap := e.inner.model.Load()
	params, bn := snap.params, snap.bn
	if !e.cleanBase {
		params = rebaseVec(e.baseParams, snap.params, e.lastPushedP)
		bn = rebaseVec(e.baseBN, snap.bn, e.lastPushedB)
	}
	e.unpushed = &unpushedBatch{
		snap:      snap,
		batch:     batch,
		pushID:    e.nextPushIDLocked(),
		payloadP:  params,
		payloadB:  bn,
		baseRound: e.baseRound,
		baseP:     e.baseParams,
		baseB:     e.baseBN,
	}
	e.persistUnpushedLocked()
}

// persistUnpushedLocked writes the parked batch to the edge WAL slot. A write
// failure downgrades durability, not correctness: the push proceeds, and only
// a crash before its acknowledgement would lose the batch — so it warns and
// carries on. Caller holds flushMu; no-op without a WAL dir.
func (e *Edge) persistUnpushedLocked() {
	if e.walDir == "" || e.unpushed == nil {
		return
	}
	u := e.unpushed
	err := writeEdgeWAL(e.walDir, walEdgeBatch{
		pushID:   u.pushID,
		pushSeq:  e.pushSeq,
		baseRnd:  u.baseRound,
		weight:   u.batch.weight,
		updates:  u.batch.updates,
		payloadP: u.payloadP,
		payloadB: u.payloadB,
		baseP:    u.baseP,
		baseBN:   u.baseB,
	})
	if err != nil {
		log.Printf("fldist: edge: parking batch durably failed (a crash before the push lands would lose it): %v", err)
	}
}

// Drain flushes everything still buffered upstream: first any batch whose
// push a canceled context interrupted, then a final commit of the live
// buffer. Serve calls it on graceful shutdown (with a fresh context — the
// serve context is already canceled by then); it is also safe to call
// directly on an edge mounted on an external mux. The returned error is
// non-nil only when ctx expired before the upstream acknowledged.
func (e *Edge) Drain(ctx context.Context) error {
	if e.inner == nil {
		return nil
	}
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	if e.unpushed != nil {
		if err := e.pushBatchLocked(ctx, false); err != nil {
			return fmt.Errorf("fldist: edge drain: %w", err)
		}
	}
	batch, ok := e.inner.commitNow()
	if !ok {
		return nil
	}
	e.flushByDrain.Add(1)
	e.parkBatchLocked(batch)
	if err := e.pushBatchLocked(ctx, false); err != nil {
		return fmt.Errorf("fldist: edge drain: %w", err)
	}
	return nil
}

// pushBatchLocked pushes e.unpushed upstream, retrying transport failures
// with jittered exponential backoff and rebasing on a staleness 409, then —
// when resync is set — waits for the upstream round that includes the push
// and adopts the fresh upstream model as the next base. Caller holds
// flushMu. It returns nil exactly when the push was acknowledged; e.unpushed
// is cleared then and kept otherwise.
func (e *Edge) pushBatchLocked(ctx context.Context, resync bool) error {
	u := e.unpushed
	backoff := 10 * time.Millisecond
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		err := e.pushUpstream(ctx, Update{
			ClientID: u.pushID,
			Round:    u.baseRound,
			Weight:   u.batch.weight,
			Params:   u.payloadP,
			BN:       u.payloadB,
		})
		switch {
		case err == nil:
			e.upPushes.Add(1)
			if u.snap != nil {
				// A recovered batch (nil snap) has no inner model to record:
				// Start adopts a fresh upstream base right after this push.
				e.lastPushedP = u.snap.params
				e.lastPushedB = u.snap.bn
				e.cleanBase = false
			}
			e.unpushed = nil
			if e.walDir != "" {
				if cerr := clearEdgeWAL(e.walDir); cerr != nil {
					log.Printf("fldist: edge: clearing pushed batch: %v", cerr)
				}
			}
			if resync {
				e.resyncLocked(ctx, u.baseRound)
			}
			return nil
		case errors.Is(err, ErrStaleRound):
			// The upstream aggregated past our base's staleness window while
			// the batch buffered. The cohort's training is not thrown away:
			// pull the current upstream model and re-express the combined
			// delta against it — the rebased payload carries the identical
			// cohort delta at a fresh (possibly zero) staleness. The parked
			// slot (and its WAL record) is rewritten before the re-push so
			// durable state always matches what the wire will carry.
			blob, perr := e.pullUpstreamRetry(ctx)
			if perr != nil {
				return perr
			}
			if len(blob.Params) != len(u.payloadP) || len(blob.BN) != len(u.payloadB) {
				return fmt.Errorf("fldist: edge push: upstream model shape changed")
			}
			u.payloadP = rebaseVec(blob.Params, u.payloadP, u.baseP)
			u.payloadB = rebaseVec(blob.BN, u.payloadB, u.baseB)
			u.baseRound = blob.Round
			u.baseP, u.baseB = blob.Params, blob.BN
			e.persistUnpushedLocked()
			e.upRebased.Add(1)
		default:
			// Transport failure or upstream commit stall: the upstream is
			// unreachable or busy. Retry forever (bounded only by ctx) —
			// meanwhile the embedded server keeps admitting cohort pushes
			// and serving cached pulls; nothing downstream notices.
			e.upRetries.Add(1)
			if !sleepCtx(ctx, jitterDur(backoff)) {
				return ctx.Err()
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
	}
}

// rebaseVec re-expresses a model vector against a new base:
// newBase + (vec − oldBase), element-wise.
func rebaseVec(newBase, vec, oldBase []float64) []float64 {
	out := make([]float64, len(vec))
	for i := range out {
		out[i] = newBase[i] + (vec[i] - oldBase[i])
	}
	return out
}

// resyncLocked waits until the upstream round exceeds pushedRound (the
// commit that folds our flush in), pulls the resulting model, and adopts it:
// the embedded server installs it as a new local round (retaining the old
// snapshot for the staleness window, leaving buffered admissions untouched)
// and the edge records it as the base of the next flush. Transport failures
// retry with the same jittered backoff as the client fleet's round polling.
// Caller holds flushMu.
func (e *Edge) resyncLocked(ctx context.Context, pushedRound int) {
	probe := &Client{ID: e.clientID, BaseURL: e.upstream, HTTP: e.hc}
	for {
		err := probe.awaitRoundAfter(ctx, pushedRound)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return
		}
		e.upRetries.Add(1)
		if !sleepCtx(ctx, jitterDur(50*time.Millisecond)) {
			return
		}
	}
	blob, err := e.pullUpstreamRetry(ctx)
	if err != nil {
		return
	}
	e.inner.adopt(blob.Params, blob.BN)
	e.setBase(blob)
}

// pullUpstreamRetry pulls the upstream model, retrying transport failures
// with jittered exponential backoff until ctx is canceled.
func (e *Edge) pullUpstreamRetry(ctx context.Context) (*ModelBlob, error) {
	backoff := 10 * time.Millisecond
	for {
		blob, err := e.pullUpstream(ctx)
		if err == nil {
			return blob, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		e.upRetries.Add(1)
		if !sleepCtx(ctx, jitterDur(backoff)) {
			return nil, ctx.Err()
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// pullUpstream fetches the upstream model over the raw protocol. The edge
// always pulls raw: its base must be the upstream's exact float64 state for
// the tier algebra to be exact; cohort links are where compression pays.
func (e *Edge) pullUpstream(ctx context.Context) (*ModelBlob, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.upstream+"/model", nil)
	if err != nil {
		return nil, fmt.Errorf("fldist: edge pull: %w", err)
	}
	resp, err := e.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fldist: edge pull: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("fldist: edge pull: %s: %s", resp.Status, body)
	}
	var blob ModelBlob
	if err := gob.NewDecoder(resp.Body).Decode(&blob); err != nil {
		return nil, fmt.Errorf("fldist: edge pull: decoding model: %w", err)
	}
	if e.inner != nil {
		snap := e.inner.model.Load()
		if len(blob.Params) != len(snap.params) || len(blob.BN) != len(snap.bn) {
			return nil, fmt.Errorf("fldist: edge pull: upstream model shape changed")
		}
	}
	return &blob, nil
}

// pushUpstream POSTs one raw update and maps the verdict: nil on 200 (a
// duplicate 200 means an earlier retry of this same push already counted —
// equally done), ErrStaleRound on a staleness 409, and a plain error on a
// retry-marked 409 (upstream commit stall) or any transport failure, both of
// which the caller retries with the identical body.
func (e *Edge) pushUpstream(ctx context.Context, u Update) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(u); err != nil {
		return fmt.Errorf("fldist: edge push: encoding: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.upstream+"/update",
		bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("fldist: edge push: %w", err)
	}
	req.Header.Set("Content-Type", contentTypeGob)
	resp, err := e.hc.Do(req)
	if err != nil {
		return fmt.Errorf("fldist: edge push: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		if resp.Header.Get(retryHeader) != "" {
			return fmt.Errorf("fldist: edge push: upstream commit in flight")
		}
		return ErrStaleRound
	default:
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("fldist: edge push: %s: %s", resp.Status, body)
	}
}

// ListenAndServe runs the edge on addr until ctx is canceled, then shuts the
// cohort listener down gracefully and drains the remaining buffer upstream.
func (e *Edge) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fldist: listen: %w", err)
	}
	return e.Serve(ctx, ln)
}

// Serve runs the edge on an existing listener until ctx is canceled
// (starting it first if Start has not run), then shuts down gracefully:
// in-flight cohort pushes finish and land in the buffer, the flusher stops,
// and a final drain pushes everything still buffered upstream under a fresh
// timeout — SIGTERM never strands admitted cohort work on the edge.
func (e *Edge) Serve(ctx context.Context, ln net.Listener) error {
	if e.inner == nil {
		if err := e.Start(ctx); err != nil {
			ln.Close()
			return err
		}
	}
	hs := &http.Server{Handler: e.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("fldist: edge shutdown: %w", err)
		}
		<-errc // drain the ErrServerClosed from Serve
		<-e.done
		drainCtx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelDrain()
		return e.Drain(drainCtx)
	case err := <-errc:
		return fmt.Errorf("fldist: edge serve: %w", err)
	}
}

// sleepCtx sleeps for d, reporting false if ctx was canceled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// ---- Server tier hooks -----------------------------------------------------
//
// The methods below are what manual (edge-driven) commit mode adds to the
// buffered Server. They are deliberately unexported: tiers compose Servers,
// they do not change what a Server is.

// commitInfo describes one edge-driven commit: the local round it produced,
// how many cohort updates it folded, and their summed effective weight — the
// weight the combined tier delta carries upstream.
type commitInfo struct {
	round   int
	updates int
	weight  float64
}

// signalFlush wakes the flusher without blocking the admission path; the
// capacity-1 channel coalesces bursts.
func (s *Server) signalFlush() {
	select {
	case s.flushSignal <- struct{}{}:
	default:
	}
}

// commitNow runs one edge-driven buffer commit: it freezes admission
// (registrations racing the fold wait it out exactly as they wait out an
// auto-mode commit), folds whatever the buffer holds — all of it, not just
// K — and reports the folded batch. ok=false (nothing committed) on an empty
// buffer or a commit already in flight. Manual mode only.
func (s *Server) commitNow() (commitInfo, bool) {
	s.pendMu.Lock()
	if s.pendingN == 0 || s.committing {
		s.pendMu.Unlock()
		return commitInfo{}, false
	}
	s.committing = true
	info := commitInfo{
		round:   s.model.Load().round + 1,
		updates: s.pendingN,
		weight:  s.pendingW,
	}
	s.pendMu.Unlock()
	s.commitBuffer() // clears committing when it resets the registry
	return info, true
}

// adopt installs an externally supplied model — the tier's freshly pulled
// upstream state — as the new current snapshot, advancing the local round by
// one and retaining the replaced round (snapshot, served codec cache,
// downlink feedback chain) for the staleness window exactly like a commit.
// The pending buffer is NOT touched: contributions admitted while the flush
// was in flight keep their retained bases and fold onto the adopted model at
// the next commit — FedBuff's apply-to-latest semantics, one tier up.
// Buffered mode only; the edge's flusher is the only caller.
func (s *Server) adopt(params, bn []float64) int {
	s.serveMu.Lock()
	old := s.model.Load()
	next := &snapshot{
		round:  old.round + 1,
		params: append([]float64(nil), params...),
		bn:     append([]float64(nil), bn...),
	}
	s.retireRoundLocked(old, next.round)

	s.pendMu.Lock()
	s.model.Store(next)
	for r := range s.admitted {
		if r < next.round-s.maxStale {
			delete(s.admitted, r)
		}
	}
	s.pendMu.Unlock()
	s.serveMu.Unlock()
	return next.round
}
