package fldist

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedprophet/internal/attack"
	"fedprophet/internal/nn"
)

// Tests of the buffered bounded-staleness aggregation mode
// (WithBufferedAggregation): admission-window semantics, the determinism
// pin across arrival orders / shard counts / GOMAXPROCS, the straggler
// regression (no training pass thrown away inside the window), a -race
// stress of pushes spanning the window against racing buffer commits, and
// the end-to-end convergence pin against the synchronous mode.

// asyncPushRec records one admitted contribution exactly as the server must
// fold it: the reconstructed full vectors, the base they are a delta
// against, and the staleness observed at admission.
type asyncPushRec struct {
	id        int
	baseRound int
	weight    float64
	staleness int
	params    []float64
	bn        []float64
	base      []float64
	baseBN    []float64
}

// refCommitAsync replays one buffer commit with the buffered fold's exact
// semantics and per-element operation sequence: contributions sorted by
// (baseRound, clientID), each a delta against its own base, weighted by
// weight/(1+staleness), applied on top of cur.
func refCommitAsync(cur []float64, recs []asyncPushRec, bn bool) []float64 {
	sorted := append([]asyncPushRec(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].baseRound != sorted[j].baseRound {
			return sorted[i].baseRound < sorted[j].baseRound
		}
		return sorted[i].id < sorted[j].id
	})
	acc := make([]float64, len(cur))
	total := 0.0
	for _, r := range sorted {
		vals, base := r.params, r.base
		if bn {
			vals, base = r.bn, r.baseBN
		}
		w := r.weight / float64(1+r.staleness)
		total += w
		for i, x := range vals {
			acc[i] += w * (x - base[i])
		}
	}
	out := make([]float64, len(cur))
	if total == 0 {
		copy(out, cur)
		return out
	}
	inv := 1.0 / total
	for i := range out {
		out[i] = cur[i] + acc[i]*inv
	}
	return out
}

// asyncFleet is the mixed fleet of the invariance scenario: raw and
// compressed clients at two codec parameter sets.
func asyncFleet() map[int]*synthClient {
	return map[int]*synthClient{
		0: {id: 0, weight: 1},
		1: {id: 1, weight: 2},
		2: {id: 2, weight: 3, comp: &Compression{Bits: 8, Chunk: 64}},
		3: {id: 3, weight: 4, comp: &Compression{Bits: 4, Chunk: 32}},
		4: {id: 4, weight: 5},
		5: {id: 5, weight: 6, comp: &Compression{Bits: 8, Chunk: 64}},
		6: {id: 6, weight: 7},
		7: {id: 7, weight: 8, comp: &Compression{Bits: 4, Chunk: 32}},
	}
}

// runAsyncScenario drives a fixed two-commit script whose second buffer
// mixes staleness 0 and 1 contributions, pushing that final group in the
// given order. It returns the final snapshot plus the recorded admitted
// multisets of both commits.
func runAsyncScenario(t *testing.T, initParams, initBN []float64, shards int, perm [4]int) (
	gotP, gotBN []float64, commit1, commit2 []asyncPushRec) {
	t.Helper()
	srv := NewServer(initParams, initBN, 1, WithShards(shards), WithBufferedAggregation(4, 2))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fleet := asyncFleet()

	record := func(c *synthClient, baseRound, staleness int) asyncPushRec {
		base, baseBN := c.base, c.baseBN
		status, dup, params, bn := c.push(t, ts, baseRound)
		if status != http.StatusOK || dup {
			t.Fatalf("client %d push base %d: status %d dup %v", c.id, baseRound, status, dup)
		}
		return asyncPushRec{id: c.id, baseRound: baseRound, weight: c.weight,
			staleness: staleness, params: params, bn: bn, base: base, baseBN: baseBN}
	}

	// Commit 1: clients 0..3 pull and push at round 0 (staleness 0). Clients
	// 4 and 5 pull round 0 *before* the commit so their later pushes are one
	// round stale.
	for _, id := range []int{0, 1, 2, 3, 4, 5} {
		if r := fleet[id].pull(t, ts); r != 0 {
			t.Fatalf("client %d pulled round %d, want 0", id, r)
		}
	}
	for _, id := range []int{0, 1, 2} {
		commit1 = append(commit1, record(fleet[id], 0, 0))
	}
	commit1 = append(commit1, record(fleet[3], 0, 0)) // fills the buffer
	if srv.Round() != 1 {
		t.Fatalf("round = %d after first full buffer, want 1", srv.Round())
	}

	// Commit 2: clients 6 and 7 pull the committed round; the buffer then
	// fills with {4, 5} at staleness 1 and {6, 7} at staleness 0, pushed in
	// the permuted order.
	for _, id := range []int{6, 7} {
		if r := fleet[id].pull(t, ts); r != 1 {
			t.Fatalf("client %d pulled round %d, want 1", id, r)
		}
	}
	group := map[int]struct{ baseRound, staleness int }{
		4: {0, 1}, 5: {0, 1}, 6: {1, 0}, 7: {1, 0},
	}
	recs := map[int]asyncPushRec{}
	for _, id := range perm[:] {
		g := group[id]
		recs[id] = record(fleet[id], g.baseRound, g.staleness)
	}
	for _, id := range []int{4, 5, 6, 7} {
		commit2 = append(commit2, recs[id])
	}
	if srv.Round() != 2 {
		t.Fatalf("round = %d after second full buffer, want 2", srv.Round())
	}
	gotP, gotBN = srv.Snapshot()
	return gotP, gotBN, commit1, commit2
}

// permutations4 enumerates all orderings of four elements.
func permutations4(elems [4]int) [][4]int {
	var out [][4]int
	var rec func(cur []int, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			var p [4]int
			copy(p[:], cur)
			out = append(out, p)
			return
		}
		for i := range rest {
			next := append(append([]int{}, rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), next)
		}
	}
	rec(nil, elems[:])
	return out
}

// The headline determinism pin of buffered mode: the committed aggregate is
// a pure function of each buffer's admitted multiset — bit-identical across
// every arrival-order permutation of a mixed-staleness buffer, across shard
// counts, and across GOMAXPROCS — and equals the sequential reference fold
// in (baseRound, clientID) order with 1/(1+staleness) weights.
func TestAsyncArrivalOrderInvariance(t *testing.T) {
	initParams := synthVec(1003, 41) // odd length: uneven shards, ragged chunks
	initBN := synthVec(10, 42)

	check := func(t *testing.T, shards int, perm [4]int, wantP, wantBN []float64) ([]float64, []float64) {
		gotP, gotBN, c1, c2 := runAsyncScenario(t, initParams, initBN, shards, perm)
		// The aggregate must equal the reference fold replayed from the
		// recorded multisets.
		g1 := refCommitAsync(initParams, c1, false)
		g2 := refCommitAsync(g1, c2, false)
		b1 := refCommitAsync(initBN, c1, true)
		b2 := refCommitAsync(b1, c2, true)
		for i := range g2 {
			if gotP[i] != g2[i] {
				t.Fatalf("shards=%d perm=%v: params[%d] = %v, want reference %v", shards, perm, i, gotP[i], g2[i])
			}
		}
		for i := range b2 {
			if gotBN[i] != b2[i] {
				t.Fatalf("shards=%d perm=%v: bn[%d] = %v, want reference %v", shards, perm, i, gotBN[i], b2[i])
			}
		}
		// And bit-identical to every other run of the scenario.
		if wantP != nil {
			for i := range wantP {
				if gotP[i] != wantP[i] {
					t.Fatalf("shards=%d perm=%v: params[%d] = %v, want %v (not arrival/shard invariant)",
						shards, perm, i, gotP[i], wantP[i])
				}
			}
			for i := range wantBN {
				if gotBN[i] != wantBN[i] {
					t.Fatalf("shards=%d perm=%v: bn[%d] = %v, want %v (not arrival/shard invariant)",
						shards, perm, i, gotBN[i], wantBN[i])
				}
			}
		}
		return gotP, gotBN
	}

	group := [4]int{4, 5, 6, 7}
	wantP, wantBN := check(t, 4, group, nil, nil)
	// Every arrival order of the mixed-staleness buffer.
	for _, perm := range permutations4(group) {
		check(t, 4, perm, wantP, wantBN)
	}
	// Shard counts, forward and reversed arrival.
	reversed := [4]int{7, 6, 5, 4}
	for _, shards := range []int{1, 8} {
		check(t, shards, group, wantP, wantBN)
		check(t, shards, reversed, wantP, wantBN)
	}
	// GOMAXPROCS: single-P (inline fold) and multi-P (concurrent fold).
	for _, gmp := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(gmp)
		check(t, 4, reversed, wantP, wantBN)
		runtime.GOMAXPROCS(prev)
	}
}

// Admission-window semantics: in-window stale pushes are admitted (via the
// retained history base), retries stay idempotent across commits, the
// window evicts, and the /stats histogram attributes staleness correctly.
func TestAsyncStalenessWindowSemantics(t *testing.T) {
	initParams := synthVec(300, 51)
	initBN := synthVec(4, 52)
	srv := NewServer(initParams, initBN, 1, WithShards(4), WithBufferedAggregation(2, 1))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	a := &synthClient{id: 0, weight: 1}
	b := &synthClient{id: 1, weight: 2}
	c := &synthClient{id: 2, weight: 3}
	d := &synthClient{id: 3, weight: 4}
	e := &synthClient{id: 4, weight: 5, comp: &Compression{Bits: 8, Chunk: 64}}

	for _, cl := range []*synthClient{a, b, d, e} {
		if r := cl.pull(t, ts); r != 0 {
			t.Fatalf("client %d pulled round %d, want 0", cl.id, r)
		}
	}
	if st, dup, _, _ := a.push(t, ts, 0); st != http.StatusOK || dup {
		t.Fatalf("a push: %d dup=%v", st, dup)
	}
	// Same (client, base) again before the commit: idempotent duplicate.
	a2 := &synthClient{id: 0, weight: 1, base: a.base, baseBN: a.baseBN}
	if st, dup, _, _ := a2.push(t, ts, 0); st != http.StatusOK || !dup {
		t.Fatalf("a retry pre-commit: %d dup=%v, want 200 duplicate", st, dup)
	}
	if st, dup, _, _ := b.push(t, ts, 0); st != http.StatusOK || dup {
		t.Fatalf("b push: %d dup=%v", st, dup)
	}
	if srv.Round() != 1 {
		t.Fatalf("round = %d after full buffer, want 1", srv.Round())
	}
	// Retry after the commit: base round 0 is still inside the window, so
	// the dedup horizon must still answer duplicate, not double-count.
	a3 := &synthClient{id: 0, weight: 1, base: a.base, baseBN: a.baseBN}
	if st, dup, _, _ := a3.push(t, ts, 0); st != http.StatusOK || !dup {
		t.Fatalf("a retry post-commit: %d dup=%v, want 200 duplicate", st, dup)
	}
	// A compressed push one round stale: reconstructed against the retained
	// round-0 served base, admitted with staleness 1.
	if st, dup, _, _ := e.push(t, ts, 0); st != http.StatusOK || dup {
		t.Fatalf("stale-but-in-window compressed push: %d dup=%v", st, dup)
	}
	if r := c.pull(t, ts); r != 1 {
		t.Fatalf("c pulled round %d, want 1", r)
	}
	if st, dup, _, _ := c.push(t, ts, 1); st != http.StatusOK || dup {
		t.Fatalf("c push: %d dup=%v", st, dup)
	}
	if srv.Round() != 2 {
		t.Fatalf("round = %d after second buffer, want 2", srv.Round())
	}
	// d's base round 0 is now 2 > maxStaleness=1 rounds old: rejected.
	if st, _, _, _ := d.push(t, ts, 0); st != http.StatusConflict {
		t.Fatalf("out-of-window push: status %d, want 409", st)
	}
	// And the dedup horizon for round 0 was evicted with the window, so a
	// re-push of an old counted update is stale too, never re-counted.
	a4 := &synthClient{id: 0, weight: 1, base: a.base, baseBN: a.baseBN}
	if st, _, _, _ := a4.push(t, ts, 0); st != http.StatusConflict {
		t.Fatalf("evicted-horizon retry: status %d, want 409", st)
	}

	st := srv.Stats()
	if st.Buffered == nil || st.Buffered.BufferSize != 2 || st.Buffered.MaxStaleness != 1 {
		t.Fatalf("stats buffered section = %+v", st.Buffered)
	}
	if st.UpdatesRaw+st.UpdatesCompressed != 4 {
		t.Fatalf("counted %d+%d updates, want 4", st.UpdatesRaw, st.UpdatesCompressed)
	}
	if st.RoundsCompleted != 2 {
		t.Fatalf("RoundsCompleted = %d, want 2", st.RoundsCompleted)
	}
	if hist := st.Buffered.StalenessHist; len(hist) != 2 || hist[0] != 3 || hist[1] != 1 {
		t.Fatalf("staleness hist = %v, want [3 1]", hist)
	}
	if st.Buffered.StaleRejected != 2 {
		t.Fatalf("StaleRejected = %d, want 2", st.Buffered.StaleRejected)
	}
	if st.DuplicatesDropped != 2 {
		t.Fatalf("DuplicatesDropped = %d, want 2", st.DuplicatesDropped)
	}
}

// The straggler regression the buffered mode exists for: under the
// synchronous quorum a slow client's training pass is discarded (409 →
// retrain); inside the buffered staleness window it never is.
func TestAsyncStragglerNoWastedPasses(t *testing.T) {
	run := func(t *testing.T, async bool) (slowRetrains int, counted int64) {
		_, _, subs, build := testSetup(t, 3, 23)
		m := build()
		opts := []ServerOption{WithShards(4)}
		if async {
			opts = append(opts, WithBufferedAggregation(2, 8))
		}
		srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 2, opts...)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		mk := func(id int) *Client {
			return &Client{
				ID: id, BaseURL: ts.URL, HTTP: ts.Client(),
				Model: build(), Subset: subs[id], Cfg: clientCfg(),
				Rng:   rand.New(rand.NewSource(int64(70 + id))),
				Async: async,
			}
		}
		fast0, fast1, slow := mk(0), mk(1), mk(2)
		// The straggler's "slowness" is deterministic: after training it
		// holds its (now stale) update until the fast pair has committed two
		// rounds, so its push is always 2 rounds behind.
		slow.testAfterTrain = func() {
			deadline := time.Now().Add(10 * time.Second)
			for srv.Round() < 2 && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
		}

		ctx := context.Background()
		var wg sync.WaitGroup
		errs := make([]error, 3)
		for i, cl := range []*Client{fast0, fast1} {
			wg.Add(1)
			go func(i int, cl *Client) {
				defer wg.Done()
				errs[i] = cl.RunRounds(ctx, 2, 0.05)
			}(i, cl)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[2] = slow.RunRounds(ctx, 1, 0.05)
		}()
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("client %d: %v", i, err)
			}
		}
		st := srv.Stats()
		return slow.StaleRetrains, st.UpdatesRaw + st.UpdatesCompressed
	}

	syncRetrains, _ := run(t, false)
	if syncRetrains < 1 {
		t.Fatalf("sync mode: straggler discarded %d training passes, want ≥ 1", syncRetrains)
	}
	asyncRetrains, counted := run(t, true)
	if asyncRetrains != 0 {
		t.Fatalf("async mode: straggler discarded %d training passes, want 0", asyncRetrains)
	}
	// Every client's every pass counted: 2+2 fast + 1 straggler.
	if counted != 5 {
		t.Fatalf("async mode counted %d updates, want 5", counted)
	}
}

// Concurrent pushes spanning the staleness window race buffer commits under
// the race detector: nothing may be lost, double-counted, or torn — every
// commit consumed exactly bufferK admitted updates.
func TestAsyncBufferCommitStress(t *testing.T) {
	const (
		clients  = 24
		attempts = 4
		bufferK  = 8
		maxStale = 2
	)
	initParams := synthVec(1200, 61)
	initBN := synthVec(6, 62)
	srv := NewServer(initParams, initBN, 1, WithShards(8), WithBufferedAggregation(bufferK, maxStale))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	codecs := []*Compression{nil, {Bits: 8, Chunk: 64}, {Bits: 4, Chunk: 128}, nil}
	var counted, dups, stale atomic.Int64
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := &synthClient{id: id, weight: float64(id%5 + 1), comp: codecs[id%len(codecs)]}
			rng := rand.New(rand.NewSource(int64(900 + id)))
			for i := 0; i < attempts; i++ {
				round := c.pull(t, ts)
				if id%4 == 3 {
					// Laggards hold their base across racing commits so some
					// pushes land stale-in-window and some past it.
					time.Sleep(time.Duration(1+rng.Intn(8)) * time.Millisecond)
				}
				status, dup, _, _ := c.push(t, ts, round)
				switch {
				case status == http.StatusOK && !dup:
					counted.Add(1)
				case status == http.StatusOK:
					dups.Add(1)
				case status == http.StatusConflict:
					stale.Add(1)
				default:
					t.Errorf("client %d: unexpected push status %d", id, status)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	st := srv.Stats()
	got := st.UpdatesRaw + st.UpdatesCompressed
	if got != counted.Load() {
		t.Fatalf("server counted %d updates, clients observed %d", got, counted.Load())
	}
	if int64(st.DuplicatesDropped) != dups.Load() {
		t.Fatalf("DuplicatesDropped = %d, clients observed %d", st.DuplicatesDropped, dups.Load())
	}
	if st.Buffered.StaleRejected != stale.Load() {
		t.Fatalf("StaleRejected = %d, clients observed %d", st.Buffered.StaleRejected, stale.Load())
	}
	// Commits consume exactly bufferK admitted updates each; the remainder
	// is still buffered.
	if want := got / bufferK; int64(st.RoundsCompleted) != want {
		t.Fatalf("RoundsCompleted = %d with %d counted updates, want %d", st.RoundsCompleted, got, want)
	}
	var histSum int64
	for s, n := range st.Buffered.StalenessHist {
		if s > maxStale && n != 0 {
			t.Fatalf("histogram bucket %d beyond the window: %v", s, st.Buffered.StalenessHist)
		}
		histSum += n
	}
	if histSum != got {
		t.Fatalf("staleness histogram sums to %d, want %d", histSum, got)
	}
}

// End-to-end convergence pin: a mixed raw/compressed fleet training the seed
// CNN through the buffered server reaches accuracy within tolerance of the
// synchronous quorum run on the same seed and training budget.
func TestAsyncConvergesNearSync(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed integration test")
	}
	const clients = 3
	_, test, subs, build := testSetup(t, clients, 9)
	comps := []*Compression{nil, {Bits: 8, Chunk: 256}, {Bits: 4, Chunk: 128}}

	run := func(t *testing.T, async bool) float64 {
		m := build()
		opts := []ServerOption{}
		if async {
			// A fleet-sized buffer: commits need no round barrier and
			// tolerate stale bases, but every client's data keeps flowing
			// into the aggregate — with this non-IID partition each client
			// is the sole holder of a class, so a smaller K would let
			// scheduling starve a class out of the model entirely rather
			// than reveal anything about the aggregation mode.
			opts = append(opts, WithBufferedAggregation(clients, 3))
		}
		srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), clients, opts...)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		// Equal training budgets: 6 synchronous quorum-3 rounds consume 18
		// passes, as do 6 buffered commits at K=3. The async fleet runs
		// until the commit budget is met and is then released by ctx — a
		// buffered client with no peers left pushing would otherwise wait
		// for a commit that cannot come.
		const syncRounds = 6
		const asyncCommits = 6
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if async {
			go func() {
				for srv.RoundsCompleted() < asyncCommits && ctx.Err() == nil {
					time.Sleep(5 * time.Millisecond)
				}
				cancel()
			}()
		}

		var wg sync.WaitGroup
		errs := make([]error, clients)
		for id := 0; id < clients; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c := &Client{
					ID: id, BaseURL: ts.URL, HTTP: ts.Client(),
					Model: build(), Subset: subs[id], Cfg: clientCfg(),
					Rng:         rand.New(rand.NewSource(int64(100 + id))),
					Compression: comps[id],
					Async:       async,
				}
				n := syncRounds
				if async {
					n = 1 << 20 // effectively unbounded; ctx ends the run
				}
				errs[id] = c.RunRounds(ctx, n, 0.05)
			}(id)
		}
		wg.Wait()
		for id, err := range errs {
			if err != nil && !async {
				t.Fatalf("client %d: %v", id, err)
			}
			_ = id // async clients end with ctx.Canceled by design
		}
		if async && srv.RoundsCompleted() < asyncCommits {
			t.Fatalf("async run committed %d rounds, want ≥ %d", srv.RoundsCompleted(), asyncCommits)
		}

		params, bn := srv.Snapshot()
		final := build()
		nn.ImportParams(final, params)
		nn.ImportBNStats(final, bn)
		return attack.CleanAccuracy(final, test, 16)
	}

	syncAcc := run(t, false)
	asyncAcc := run(t, true)
	t.Logf("clean accuracy: sync %.3f, async %.3f", syncAcc, asyncAcc)
	if asyncAcc < syncAcc-0.15 {
		t.Fatalf("async accuracy %.3f more than 0.15 below sync %.3f", asyncAcc, syncAcc)
	}
	if asyncAcc <= 0.5 {
		t.Fatalf("async federation failed to learn: accuracy %v", asyncAcc)
	}
}
