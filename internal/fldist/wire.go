package fldist

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Compression configures the compressed delta wire protocol of a client:
// model bodies travel as chunk-quantized binary frames instead of gob
// float64 blobs, and pushes carry quantized *deltas* against the pulled
// global model with client-side error feedback. See docs/WIRE.md for the
// byte-level specification.
type Compression struct {
	// Bits is the quantization width, 2..8.
	Bits int
	// Chunk is the number of values per quantization scale; 0 selects
	// DefaultChunk. Smaller chunks confine outliers better but spend one
	// float64 scale per chunk of wire space.
	Chunk int
	// TopK, when > 0, sparsifies the uplink: each push carries only the K
	// largest-magnitude coordinates of the error-fed delta as a sparse FPQ1
	// frame, with the client-side error-feedback residual absorbing every
	// coordinate sparsification drops. 0 sends dense frames.
	TopK int
	// Delta switches the downlink to per-client delta pulls: the client
	// declares the round of the chain base it holds and receives only the
	// quantized, error-fed global delta(s) against that base (docs/WIRE.md,
	// "Delta downlink"). A client without a usable base receives the chain
	// base itself, raw, as a cold pull.
	Delta bool
}

// less orders Compression values by (Bits, Chunk, TopK, Delta) — an
// arbitrary but total order, used wherever variants collected from a map
// must serialize deterministically (WAL commit records).
func (c Compression) less(o Compression) bool {
	if c.Bits != o.Bits {
		return c.Bits < o.Bits
	}
	if c.Chunk != o.Chunk {
		return c.Chunk < o.Chunk
	}
	if c.TopK != o.TopK {
		return c.TopK < o.TopK
	}
	return !c.Delta && o.Delta
}

// DefaultChunk is the chunk size used when Compression.Chunk is 0: 8 bytes
// of scale amortized over 256 values costs ~3% overhead while still
// isolating outliers to 256-value neighborhoods.
const DefaultChunk = 256

// maxChunk bounds the accepted chunk size: beyond a million values per
// scale, chunking is indistinguishable from whole-vector quantization and
// huge header-supplied values only serve to stress the server.
const maxChunk = 1 << 20

// maxTopK bounds the accepted uplink sparsity: beyond 16M coordinates the
// header-supplied value no longer describes any plausible model and only
// serves to stress the server.
const maxTopK = 1 << 24

// normalize applies defaults and validates the configuration.
func (c Compression) normalize() (Compression, error) {
	if c.Chunk == 0 {
		c.Chunk = DefaultChunk
	}
	if c.Bits < 2 || c.Bits > 8 {
		return c, fmt.Errorf("fldist: compression bits %d outside [2,8]", c.Bits)
	}
	if c.Chunk < 1 || c.Chunk > maxChunk {
		return c, fmt.Errorf("fldist: compression chunk %d outside [1,%d]", c.Chunk, maxChunk)
	}
	if c.TopK < 0 || c.TopK > maxTopK {
		return c, fmt.Errorf("fldist: compression topk %d outside [0,%d]", c.TopK, maxTopK)
	}
	return c, nil
}

// serveKey is the served-variant identity of a negotiated Compression.
// Without Delta, TopK shapes only what the *client* sends — every uplink-only
// top-k client pulls the same dense body (and pushes against the same dense
// base) as a plain client at the same (bits, chunk), so TopK is erased from
// the key and they share one cache entry and one downlink-EF chain. With
// Delta, TopK shapes the served delta frames themselves and stays in the key.
func (c Compression) serveKey() Compression {
	if !c.Delta {
		c.TopK = 0
	}
	return c
}

// Wire negotiation and body framing constants. A client that wants
// compression sends `X-Fldist-Codec: fpq1;bits=B;chunk=C` on GET /model;
// a server that honors it echoes the same header on the response and will
// accept a delta-encoded POST /update at those parameters for that round.
// Absent the echo, the client must fall back to the raw gob protocol —
// that is how old clients and old servers interoperate.
const (
	codecHeader = "X-Fldist-Codec"
	codecName   = "fpq1"

	// retryHeader marks a 409 that is a transient server-side condition (a
	// buffered commit still being published), not a staleness verdict: the
	// same push body may be re-sent as-is. Clients that ignore it and treat
	// the 409 as stale still behave correctly, just wastefully.
	retryHeader = "X-Fldist-Retry"

	contentTypeGob   = "application/octet-stream"
	contentTypeModel = "application/x-fldist-model"
	contentTypeDelta = "application/x-fldist-delta"
	// contentTypeModelDelta marks a catch-up pull body: an FPD1 envelope of
	// per-round delta frames against the chain base the client declared,
	// instead of a full FPM1 model body.
	contentTypeModelDelta = "application/x-fldist-mdelta"

	modelMagic  = "FPM1"
	updateMagic = "FPU1"
	deltaMagic  = "FPD1"
	envVersion  = 1
)

// codecValue formats the negotiation header value. New parameters are only
// emitted when set, so a client at the PR-3 parameter set produces the exact
// header an old server accepts; a server that predates a parameter answers
// 400 to it (parseCodec's unknown-parameter rule) rather than silently
// serving the wrong protocol — the client operator hears about the
// downgrade instead of debugging a hung delta chain.
func codecValue(c Compression) string {
	v := fmt.Sprintf("%s;bits=%d;chunk=%d", codecName, c.Bits, c.Chunk)
	if c.TopK > 0 {
		v += ";topk=" + strconv.Itoa(c.TopK)
	}
	if c.Delta {
		v += ";delta=1"
	}
	return v
}

// parseCodec parses a negotiation header value. An empty value reports
// ok=false with no error (no compression requested); a malformed or
// unsupported value reports an error so the server can answer 400 rather
// than silently downgrading a client that asked for compression. The parse
// walks the string with strings.Cut instead of splitting into a slice — it
// runs on the pull hot path of every compressed GET /model, where a
// per-request allocation is measurable at high fan-out.
//
// base is per-request state, not part of the codec identity: a delta-pull
// client appends `;base=R` to declare the round of the chain base it holds.
// Absent, base reports −1 (no usable base — serve the chain cold).
func parseCodec(v string) (c Compression, base int, ok bool, err error) {
	base = -1
	v = strings.TrimSpace(v)
	if v == "" {
		return Compression{}, base, false, nil
	}
	name, rest, _ := strings.Cut(v, ";")
	if strings.TrimSpace(name) != codecName {
		return Compression{}, base, false, fmt.Errorf("fldist: unsupported codec %q", name)
	}
	for rest != "" {
		var p string
		p, rest, _ = strings.Cut(rest, ";")
		k, val, found := strings.Cut(strings.TrimSpace(p), "=")
		if !found {
			return Compression{}, base, false, fmt.Errorf("fldist: malformed codec parameter %q", p)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return Compression{}, base, false, fmt.Errorf("fldist: codec parameter %q: %w", p, err)
		}
		switch k {
		case "bits":
			c.Bits = n
		case "chunk":
			c.Chunk = n
		case "topk":
			c.TopK = n
		case "delta":
			if n != 1 {
				return Compression{}, base, false, fmt.Errorf("fldist: codec parameter delta=%d, want 1", n)
			}
			c.Delta = true
		case "base":
			if n < 0 {
				return Compression{}, base, false, fmt.Errorf("fldist: codec parameter base=%d negative", n)
			}
			base = n
		default:
			return Compression{}, base, false, fmt.Errorf("fldist: unknown codec parameter %q", k)
		}
	}
	c, err = c.normalize()
	if err != nil {
		return Compression{}, -1, false, err
	}
	return c, base, true, nil
}

// encodeModelEnvelope frames a global-model pull: a fixed header carrying
// the round, then one quant frame for the parameters and one for the BN
// statistics.
func encodeModelEnvelope(round int, params, bn []byte) []byte {
	buf := make([]byte, 0, 9+len(params)+len(bn))
	buf = append(buf, modelMagic...)
	buf = append(buf, envVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(round))
	buf = append(buf, params...)
	buf = append(buf, bn...)
	return buf
}

// Decoding of these envelopes is streaming-only: the server parses pushes in
// handleDeltaUpdate and the client parses pulls in streamModelEnvelope, both
// on quant.StreamDecoder, so there is exactly one parser per direction.

// encodeUpdateEnvelope frames a compressed push.
func encodeUpdateEnvelope(clientID, round int, weight float64, params, bn []byte) ([]byte, error) {
	if clientID < 0 || int64(clientID) > math.MaxUint32 {
		return nil, fmt.Errorf("fldist: client id %d not representable on the wire", clientID)
	}
	buf := make([]byte, 0, 21+len(params)+len(bn))
	buf = append(buf, updateMagic...)
	buf = append(buf, envVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(clientID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(round))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(weight))
	buf = append(buf, params...)
	buf = append(buf, bn...)
	return buf, nil
}

// Stats is a point-in-time snapshot of the server's traffic and progress
// counters, served as JSON on GET /stats. Byte counts cover model-plane
// bodies only (pull responses and push requests), split by whether the
// compressed codec was in use, so operators can read the wire saving
// directly as BytesInRaw+BytesOutRaw vs BytesInCompressed+BytesOutCompressed.
// AdmitP50Micros/AdmitP99Micros are per-update admit-time percentiles
// (receive → counted toward the round) over a sliding window of recent
// admitted pushes — the same numbers cmd/benchserve reports, so operators
// and the benchmark read one source. Every field is backed by an atomic or
// the immutable model snapshot: polling /stats never blocks aggregation.
type Stats struct {
	Round              int     `json:"round"`
	RoundsCompleted    int     `json:"rounds_completed"`
	DuplicatesDropped  int     `json:"duplicates_dropped"`
	Shards             int     `json:"shards"`
	BytesInRaw         int64   `json:"bytes_in_raw"`
	BytesInCompressed  int64   `json:"bytes_in_compressed"`
	BytesOutRaw        int64   `json:"bytes_out_raw"`
	BytesOutCompressed int64   `json:"bytes_out_compressed"`
	UpdatesRaw         int64   `json:"updates_raw"`
	UpdatesCompressed  int64   `json:"updates_compressed"`
	AdmitP50Micros     float64 `json:"admit_p50_us"`
	AdmitP99Micros     float64 `json:"admit_p99_us"`

	// Per-frame-form splits of the compressed byte counters (each is a
	// subset of the matching *Compressed total, so the dense share is the
	// difference): BytesInSparse covers pushes whose params frame arrived in
	// the sparse top-k form; BytesOutDelta covers catch-up pull bodies (FPD1
	// delta envelopes); BytesOutCold covers delta-mode cold pulls (the raw
	// chain base a returning client without a usable base receives).
	// UpdatesSparse / DeltaPulls / ColdPulls count the same events.
	BytesInSparse int64 `json:"bytes_in_sparse"`
	UpdatesSparse int64 `json:"updates_sparse"`
	BytesOutDelta int64 `json:"bytes_out_delta"`
	BytesOutCold  int64 `json:"bytes_out_cold"`
	DeltaPulls    int64 `json:"delta_pulls"`
	ColdPulls     int64 `json:"cold_pulls"`

	// PullP50Micros/PullP99Micros are per-pull serve-time percentiles
	// (request parse → body written) over the same sliding-window ring as
	// the admit percentiles; ServedBuilds counts served-model cache builds
	// (compressed variants only), so a cache-rebuild storm — many builds per
	// round — is visible instead of hiding inside pull tail latency.
	PullP50Micros float64 `json:"pull_p50_us"`
	PullP99Micros float64 `json:"pull_p99_us"`
	ServedBuilds  int64   `json:"served_builds"`

	// Buffered is the buffered-aggregation section, non-nil exactly when
	// the server runs WithBufferedAggregation — presence is the mode
	// indicator, so a legal MaxStaleness of 0 is still distinguishable from
	// "not buffered", and a synchronous server's JSON payload is unchanged.
	Buffered *BufferedStats `json:"buffered,omitempty"`

	// WAL is the durability section, non-nil exactly when the server runs
	// with a write-ahead log (WithWAL / RecoverServer). Broken flags a log
	// that took a write error and stopped accepting records — the server
	// keeps serving, but a crash from that point loses what the log missed.
	WAL *WALStats `json:"wal,omitempty"`

	// Upstream is the tier section, non-nil exactly when these stats come
	// from an edge aggregator (Edge.Stats / GET /stats on an edge): the
	// edge's client-side view of its upstream server. Like every other
	// section it is backed by atomics only — polling an edge's /stats never
	// blocks cohort admission or an in-flight upstream flush.
	Upstream *UpstreamStats `json:"upstream,omitempty"`
}

// BufferedStats is the buffered bounded-staleness section of Stats.
// StalenessHist[s] counts admitted updates whose base round was s rounds
// behind the current round at admission, s ∈ [0, MaxStaleness];
// StaleRejected counts pushes 409-ed for falling outside the window — each
// one is a training pass some client threw away.
type BufferedStats struct {
	BufferSize    int     `json:"buffer_size"`
	MaxStaleness  int     `json:"max_staleness"`
	StaleRejected int64   `json:"stale_rejected"`
	StalenessHist []int64 `json:"staleness_hist"`
}

// WALStats is the write-ahead-log section of Stats. Records/Commits/Admits/
// Bytes count what has been appended since this process opened the log (not
// since the log was created); LastCommitRound is the round of the newest
// durable commit record; PendingAdmits is the number of admission records
// logged since that commit — exactly the updates RecoverServer would replay
// if the process died now. WriteErrors counts refused appends after the
// first failure; Broken mirrors the sticky error state.
type WALStats struct {
	Dir             string `json:"dir"`
	Records         int64  `json:"records"`
	Commits         int64  `json:"commits"`
	Admits          int64  `json:"admits"`
	Bytes           int64  `json:"bytes"`
	WriteErrors     int64  `json:"write_errors"`
	Broken          bool   `json:"broken"`
	LastCommitRound int64  `json:"last_commit_round"`
	PendingAdmits   int64  `json:"pending_admits"`
}

// UpstreamStats is the hierarchical-aggregation section of an edge's Stats:
// everything the edge has done as a *client* of its upstream server. Pushes
// counts combined cohort deltas admitted upstream; Rebased counts flushes
// whose base fell out of the upstream staleness window mid-buffer and were
// re-expressed against a freshly pulled base instead of being thrown away;
// Retries counts transport-level retry sleeps against an unreachable or
// stalled upstream. FlushK / FlushAge / FlushDrain split the flushes by what
// triggered them (buffer depth K, oldest-update age T, graceful drain).
// CohortPulls counts cohort GET /model requests served from the edge's
// pull-through cache — every one of them is a pull the root did not see.
// Buffered is the live depth of the cohort buffer awaiting the next flush.
type UpstreamStats struct {
	URL         string `json:"url"`
	Cohort      string `json:"cohort,omitempty"`
	BaseRound   int    `json:"base_round"`
	Pushes      int64  `json:"pushes"`
	Retries     int64  `json:"retries"`
	Rebased     int64  `json:"rebased"`
	FlushK      int64  `json:"flush_k"`
	FlushAge    int64  `json:"flush_age"`
	FlushDrain  int64  `json:"flush_drain"`
	CohortPulls int64  `json:"cohort_pulls"`
	Buffered    int64  `json:"buffered"`
}
