package fldist

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"fedprophet/internal/attack"
	"fedprophet/internal/fl"
	"fedprophet/internal/nn"
	"fedprophet/internal/quant"
)

// This file pins the compounding wire diet: top-k sparse uplink frames and
// the per-client delta downlink. The aggregation-plane tests reuse the
// synthetic-client machinery from shard_test.go (exact expected values, no
// training); the convergence and delta-chain tests drive real clients.

// TestParseCodecSparseParams pins the negotiation grammar for the sparse and
// delta parameters: codecValue/parseCodec round-trip, the per-request base
// parameter, and the reject cases an old client or a fuzzer can produce.
func TestParseCodecSparseParams(t *testing.T) {
	for _, comp := range []Compression{
		{Bits: 8, Chunk: 64},
		{Bits: 4, Chunk: 32, TopK: 50},
		{Bits: 4, Chunk: 64, TopK: 7, Delta: true},
		{Bits: 2, Chunk: 128, Delta: true},
	} {
		got, base, ok, err := parseCodec(codecValue(comp))
		if err != nil || !ok {
			t.Fatalf("parseCodec(%q): ok=%v err=%v", codecValue(comp), ok, err)
		}
		want, _ := comp.normalize()
		if got != want {
			t.Fatalf("parseCodec(%q) = %+v, want %+v", codecValue(comp), got, want)
		}
		if base != -1 {
			t.Fatalf("parseCodec(%q) base = %d, want -1 (absent)", codecValue(comp), base)
		}
	}

	// base=R is per-request state riding alongside the codec identity.
	v := codecValue(Compression{Bits: 4, Chunk: 64, TopK: 10, Delta: true}) + ";base=7"
	comp, base, ok, err := parseCodec(v)
	if err != nil || !ok || base != 7 || !comp.Delta || comp.TopK != 10 {
		t.Fatalf("parseCodec(%q) = %+v base=%d ok=%v err=%v", v, comp, base, ok, err)
	}

	for _, bad := range []string{
		"fpq1;bits=8;chunk=64;topk=abc",
		"fpq1;bits=8;chunk=64;topk=-3",
		"fpq1;bits=8;chunk=64;topk=99999999", // > maxTopK
		"fpq1;bits=8;chunk=64;delta=2",
		"fpq1;bits=8;chunk=64;base=-1",
		"fpq1;bits=8;chunk=64;sparse=1", // unknown parameter: old servers 400 new clients
	} {
		if _, _, _, err := parseCodec(bad); err == nil {
			t.Fatalf("parseCodec(%q) accepted, want error", bad)
		}
	}
}

// sparseDelta encodes the top-k sparse uplink frame for trained-vs-base with
// error feedback: it returns the wire frame, the exact reconstruction the
// server must produce (base + scatter-add of the dequantized survivors), and
// the next residual (the sparsification error rides in the residual alongside
// the quantization error). Shared by the synthetic sparse client and the
// sequential reference fold so both sides derive the oracle identically.
func sparseDelta(trained, base, residual []float64, comp Compression) (frame []byte, rec, next []float64) {
	d := make([]float64, len(trained))
	for i := range d {
		d[i] = trained[i] - base[i]
		if residual != nil {
			d[i] += residual[i]
		}
	}
	idx := quant.TopKIndices(d, comp.TopK)
	deq := make([]float64, len(idx))
	frame = quant.EncodeSparse(d, idx, comp.Bits, comp.Chunk, deq)
	rec = append([]float64(nil), base...)
	for j, ix := range idx {
		rec[ix] += deq[j]
		d[ix] -= deq[j]
	}
	return frame, rec, d
}

// sparsePush is the synthetic client's top-k uplink: params as a sparse
// frame, BN as a raw delta (exact). Mirrors synthClient.push for the dense
// case.
func (c *synthClient) sparsePush(t *testing.T, ts *httptest.Server, round int) (status int, dup bool, params, bn []float64) {
	t.Helper()
	comp, err := c.comp.normalize()
	if err != nil {
		t.Fatal(err)
	}
	trained := perturb(c.base, c.id, round)
	bn = perturb(c.baseBN, c.id, round)
	frame, rec, next := sparseDelta(trained, c.base, c.residual, comp)
	c.residual = next
	dBN := make([]float64, len(bn))
	for i := range dBN {
		dBN[i] = bn[i] - c.baseBN[i]
	}
	env, err := encodeUpdateEnvelope(c.id, round, c.weight, frame, quant.EncodeRaw(dBN))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/update", contentTypeDelta, bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Fldist-Duplicate") != "", rec, bn
}

// pushAny routes to the sparse or dense uplink by codec.
func (c *synthClient) pushAny(t *testing.T, ts *httptest.Server, round int) (int, bool, []float64, []float64) {
	t.Helper()
	if c.comp != nil && c.comp.TopK > 0 {
		return c.sparsePush(t, ts, round)
	}
	return c.push(t, ts, round)
}

// TestSparsePushRoundTrip pins the sparse uplink arithmetic end to end: a
// single sparse client's admission must land as base + scatter-add of
// exactly the k dequantized survivors, and the per-form stats split must
// attribute the push as a subset of the compressed totals.
func TestSparsePushRoundTrip(t *testing.T) {
	initParams := synthVec(500, 21)
	initBN := synthVec(6, 22)
	srv := NewServer(initParams, initBN, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &synthClient{id: 0, weight: 2, comp: &Compression{Bits: 4, Chunk: 64, TopK: 30}}
	if r := c.pull(t, ts); r != 0 {
		t.Fatalf("pulled round %d, want 0", r)
	}
	status, dup, rec, bn := c.sparsePush(t, ts, 0)
	if status != http.StatusOK || dup {
		t.Fatalf("sparse push: status %d dup %v", status, dup)
	}
	if srv.Round() != 1 {
		t.Fatalf("round %d, want 1", srv.Round())
	}
	gotP, gotBN := srv.Snapshot()
	for i := range rec {
		if gotP[i] != rec[i] {
			t.Fatalf("params[%d] = %v, want base+scatter-add %v", i, gotP[i], rec[i])
		}
	}
	for i := range bn {
		if gotBN[i] != bn[i] {
			t.Fatalf("bn[%d] = %v, want %v", i, gotBN[i], bn[i])
		}
	}

	st := srv.Stats()
	if st.UpdatesSparse != 1 || st.UpdatesCompressed != 1 {
		t.Fatalf("updates sparse=%d compressed=%d, want 1/1", st.UpdatesSparse, st.UpdatesCompressed)
	}
	if st.BytesInSparse <= 0 || st.BytesInSparse != st.BytesInCompressed {
		t.Fatalf("bytes sparse=%d compressed=%d, want equal and positive (only push was sparse)",
			st.BytesInSparse, st.BytesInCompressed)
	}
	// The sparse body must be far smaller than the dense frame at the same
	// bits: 30 of 500 coordinates against 500.
	denseLen := len(quant.Encode(quant.QuantizeChunks(initParams, 4, 64)))
	if st.BytesInSparse >= int64(denseLen) {
		t.Fatalf("sparse push %dB, dense frame alone is %dB — no wire saving", st.BytesInSparse, denseLen)
	}
}

// TestSparseSharesDenseServedBase pins serveKey: a top-k client and a dense
// client at the same (bits, chunk) must pull the bit-identical served base —
// sparsification is an uplink choice, not a downlink variant, so the server
// keeps one body and one downlink-EF state for both.
func TestSparseSharesDenseServedBase(t *testing.T) {
	srv := NewServer(synthVec(300, 31), synthVec(4, 32), 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dense := &synthClient{id: 0, weight: 1, comp: &Compression{Bits: 8, Chunk: 64}}
	sparse := &synthClient{id: 1, weight: 1, comp: &Compression{Bits: 8, Chunk: 64, TopK: 12}}
	dense.pull(t, ts)
	sparse.pull(t, ts)
	for i := range dense.base {
		if dense.base[i] != sparse.base[i] {
			t.Fatalf("served base diverged at [%d]: dense %v sparse %v (serveKey must erase topk)",
				i, dense.base[i], sparse.base[i])
		}
	}
	if st := srv.Stats(); st.ServedBuilds != 1 {
		t.Fatalf("served builds = %d, want 1 shared body for both pulls", st.ServedBuilds)
	}
}

// TestDeltaDownlinkCatchUp drives the per-client delta downlink with real
// clients: a returning client declaring its held round receives only the
// FPD1 catch-up frames, lands bit-identical to a cold puller at the same
// round, pays far fewer downlink bytes, and its next push resolves against
// the chain's per-round base registry.
func TestDeltaDownlinkCatchUp(t *testing.T) {
	_, _, _, build := testSetup(t, 3, 3)
	m := build()
	srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	comp := &Compression{Bits: 4, Chunk: 64, TopK: 50, Delta: true}
	a := mkClient(t, ts, 0, 10, comp)
	drv := mkClient(t, ts, 1, 11, nil)
	ctx := context.Background()

	// Cold pull: seeds the chain and A's held round.
	if r, err := a.Pull(ctx); err != nil || r != 0 {
		t.Fatalf("cold pull: round %d err %v", r, err)
	}
	if !a.hasChain || a.heldRound != 0 {
		t.Fatalf("after cold pull: hasChain=%v heldRound=%d", a.hasChain, a.heldRound)
	}

	// The raw driver advances two rounds while A is away.
	for i := 0; i < 2; i++ {
		r, err := drv.Pull(ctx)
		if err != nil {
			t.Fatal(err)
		}
		drv.TrainLocal(0.05)
		if counted, err := drv.Push(ctx, r); err != nil || !counted {
			t.Fatalf("driver push round %d: counted=%v err=%v", r, counted, err)
		}
	}

	// Catch-up pull: only the frames from A's held round to the head.
	before := srv.Stats()
	r, err := a.Pull(ctx)
	if err != nil || r != 2 {
		t.Fatalf("catch-up pull: round %d err %v", r, err)
	}
	if !a.hasChain || a.heldRound != 2 {
		t.Fatalf("after catch-up: hasChain=%v heldRound=%d", a.hasChain, a.heldRound)
	}
	mid := srv.Stats()
	deltaBytes := mid.BytesOutDelta - before.BytesOutDelta
	if mid.DeltaPulls-before.DeltaPulls != 1 || deltaBytes <= 0 {
		t.Fatalf("catch-up not attributed: pulls %d bytes %d", mid.DeltaPulls-before.DeltaPulls, deltaBytes)
	}

	// A fresh delta client at the same codec pulls the chain cold at the same
	// round: its base must be bit-identical to A's caught-up base — the chain
	// is one deterministic sequence regardless of entry point.
	b := mkClient(t, ts, 2, 12, comp)
	if r, err := b.Pull(ctx); err != nil || r != 2 {
		t.Fatalf("cold catch pull: round %d err %v", r, err)
	}
	after := srv.Stats()
	coldBytes := after.BytesOutCold - mid.BytesOutCold
	if after.ColdPulls-mid.ColdPulls != 1 || coldBytes <= 0 {
		t.Fatalf("cold pull not attributed: pulls %d bytes %d", after.ColdPulls-mid.ColdPulls, coldBytes)
	}
	for i := range a.baseParams {
		if a.baseParams[i] != b.baseParams[i] {
			t.Fatalf("params[%d]: catch-up %v cold %v (chain not deterministic)", i, a.baseParams[i], b.baseParams[i])
		}
	}
	for i := range a.baseBN {
		if a.baseBN[i] != b.baseBN[i] {
			t.Fatalf("bn[%d]: catch-up %v cold %v", i, a.baseBN[i], b.baseBN[i])
		}
	}
	// The whole point of the diet: a catch-up body is a small multiple of
	// k·bits, a cold body is the full raw model.
	if deltaBytes*5 > coldBytes {
		t.Fatalf("catch-up %dB vs cold %dB — expected ≥5× downlink saving", deltaBytes, coldBytes)
	}

	// A's push declares its codec; the server resolves the training base from
	// the round-2 chain entry, not a served model.
	a.TrainLocal(0.05)
	if counted, err := a.Push(ctx, 2); err != nil || !counted {
		t.Fatalf("delta push: counted=%v err=%v", counted, err)
	}
}

// TestDeltaPushWithoutChainIsStale pins the restart contract: a delta-mode
// push whose round has no chain entry (server restarted, or the round fell
// out of the window) is answered 409 so the client re-pulls cold and
// retrains — never admitted against a wrong base.
func TestDeltaPushWithoutChainIsStale(t *testing.T) {
	initParams := synthVec(200, 41)
	srv := NewServer(initParams, nil, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	comp, _ := Compression{Bits: 8, Chunk: 64, TopK: 10, Delta: true}.normalize()
	frame, _, _ := sparseDelta(perturb(initParams, 0, 0), initParams, nil, comp)
	env, err := encodeUpdateEnvelope(0, 0, 1, frame, quant.EncodeRaw(nil))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/update", bytes.NewReader(env))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentTypeDelta)
	req.Header.Set(codecHeader, codecValue(comp))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delta push with no chain: status %d (%s), want 409", resp.StatusCode, strings.TrimSpace(string(body)))
	}
}

// sparseFleet is the mixed fleet for the determinism pin: raw, dense, and
// two sparse clients — one of which shares its served base with the dense
// 4-bit client (same serveKey).
func sparseFleet() []*synthClient {
	return []*synthClient{
		{id: 0, weight: 3},
		{id: 1, weight: 5, comp: &Compression{Bits: 4, Chunk: 32}},
		{id: 2, weight: 2, comp: &Compression{Bits: 8, Chunk: 64, TopK: 40}},
		{id: 3, weight: 7, comp: &Compression{Bits: 4, Chunk: 32, TopK: 25}},
	}
}

// sparseReferenceRun replays the sparse fleet's protocol sequentially with
// the pre-shard semantics: served bases per serveKey variant (downlink error
// feedback included), sparse contributions reconstructed by scatter-add, the
// fold in client-ID order. The bit-exact oracle for sparseServerRun.
func sparseReferenceRun(initParams, initBN []float64, rounds int) ([]float64, []float64) {
	global := append([]float64(nil), initParams...)
	bn := append([]float64(nil), initBN...)
	clients := sparseFleet()
	downErr := map[Compression][]float64{}
	for r := 0; r < rounds; r++ {
		bases := map[Compression][]float64{}
		nextErr := map[Compression][]float64{}
		for _, c := range clients {
			if c.comp == nil {
				continue
			}
			comp, err := c.comp.normalize()
			if err != nil {
				panic(err)
			}
			key := comp.serveKey()
			if _, ok := bases[key]; ok {
				continue
			}
			v := append([]float64(nil), global...)
			if e := downErr[key]; len(e) == len(v) {
				for i := range v {
					v[i] += e[i]
				}
			}
			deq := quant.QuantizeChunks(v, key.Bits, key.Chunk).Dequantize()
			bases[key] = deq
			for i := range v {
				v[i] -= deq[i]
			}
			nextErr[key] = v
		}
		var vecs, bns [][]float64
		var weights []float64
		for _, c := range clients { // client-ID order
			if c.comp == nil {
				vecs = append(vecs, perturb(global, c.id, r))
				bns = append(bns, perturb(bn, c.id, r))
				weights = append(weights, c.weight)
				continue
			}
			comp, _ := c.comp.normalize()
			base := bases[comp.serveKey()]
			p := perturb(base, c.id, r)
			var rec []float64
			if comp.TopK > 0 {
				_, rec, c.residual = sparseDelta(p, base, c.residual, comp)
			} else {
				q, next := deltaQuantize(p, base, c.residual, comp)
				c.residual = next
				deq := q.Dequantize()
				rec = make([]float64, len(base))
				for i := range rec {
					rec[i] = base[i] + deq[i]
				}
			}
			vecs = append(vecs, rec)
			bns = append(bns, perturb(bn, c.id, r))
			weights = append(weights, c.weight)
		}
		global = fl.WeightedAverage(vecs, weights)
		if len(bn) > 0 {
			bn = fl.WeightedAverage(bns, weights)
		}
		downErr = nextErr
	}
	return global, bn
}

// sparseServerRun drives the sparse fleet against a real sharded server,
// pushing in the given arrival permutation each round.
func sparseServerRun(t *testing.T, initParams, initBN []float64, rounds, shards int, perm [4]int) ([]float64, []float64) {
	t.Helper()
	srv := NewServer(initParams, initBN, 4, WithShards(shards))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	clients := sparseFleet()
	for r := 0; r < rounds; r++ {
		for _, c := range clients {
			if got := c.pull(t, ts); got != r {
				t.Fatalf("client %d pulled round %d, want %d", c.id, got, r)
			}
		}
		for _, i := range perm {
			c := clients[i]
			status, dup, _, _ := c.pushAny(t, ts, r)
			if status != http.StatusOK || dup {
				t.Fatalf("round %d client %d push: status %d dup %v", r, c.id, status, dup)
			}
		}
	}
	return srv.Snapshot()
}

// TestSparseFleetDeterminism is the headline pin for the sparse uplink: a
// seeded mixed sparse/dense/raw fleet aggregates bit-identically to the
// sequential reference at shard counts 1, 4 and 8, under GOMAXPROCS 1 and 4,
// and under every arrival permutation of the four clients.
func TestSparseFleetDeterminism(t *testing.T) {
	initParams := synthVec(1003, 61) // odd length: uneven shards, ragged chunks
	initBN := synthVec(10, 62)
	const rounds = 3
	wantP, wantBN := sparseReferenceRun(initParams, initBN, rounds)

	check := func(t *testing.T, shards int, perm [4]int) {
		t.Helper()
		gotP, gotBN := sparseServerRun(t, initParams, initBN, rounds, shards, perm)
		for i := range wantP {
			if gotP[i] != wantP[i] {
				t.Fatalf("shards=%d perm=%v: params[%d] = %v, want reference %v", shards, perm, i, gotP[i], wantP[i])
			}
		}
		for i := range wantBN {
			if gotBN[i] != wantBN[i] {
				t.Fatalf("shards=%d perm=%v: bn[%d] = %v, want reference %v", shards, perm, i, gotBN[i], wantBN[i])
			}
		}
	}

	idOrder := [4]int{0, 1, 2, 3}
	// Every arrival permutation at the default shard count.
	for _, perm := range permutations4(idOrder) {
		check(t, 4, perm)
	}
	// Shard counts, forward and reversed arrival.
	reversed := [4]int{3, 2, 1, 0}
	for _, shards := range []int{1, 8} {
		check(t, shards, idOrder)
		check(t, shards, reversed)
	}
	// GOMAXPROCS: single-P and multi-P folds.
	for _, gmp := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(gmp)
		check(t, 4, reversed)
		runtime.GOMAXPROCS(prev)
	}
}

// TestTopK4BitConvergesNearRaw pins the training contract of the compound
// diet: top-k sparsification at 4 bits with the delta downlink, both errors
// absorbed by client-side feedback, must stay within 0.10 clean accuracy of
// the uncompressed protocol on the seeded synthetic task.
func TestTopK4BitConvergesNearRaw(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence run")
	}
	_, test, subs, build := testSetup(t, 3, 7)
	const rounds = 6

	run := func(comp *Compression) float64 {
		m := build()
		srv := NewServer(nn.ExportParams(m), nn.ExportBNStats(m), 3)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		var wg sync.WaitGroup
		for id := 0; id < 3; id++ {
			c := &Client{
				ID: id, BaseURL: ts.URL, HTTP: ts.Client(),
				Model: build(), Subset: subs[id], Cfg: clientCfg(),
				Rng:         rand.New(rand.NewSource(int64(100 + id))),
				Compression: comp,
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := c.RunRounds(context.Background(), rounds, 0.05); err != nil {
					t.Errorf("client %d: %v", c.ID, err)
				}
			}()
		}
		wg.Wait()
		params, bn := srv.Snapshot()
		final := build()
		nn.ImportParams(final, params)
		nn.ImportBNStats(final, bn)
		return attack.CleanAccuracy(final, test, 16)
	}

	n := len(nn.ExportParams(build()))
	rawAcc := run(nil)
	sparseAcc := run(&Compression{Bits: 4, Chunk: 128, TopK: n / 5, Delta: true})
	t.Logf("raw acc %.3f, top-k 4-bit delta acc %.3f (n=%d, k=%d)", rawAcc, sparseAcc, n, n/5)
	if rawAcc < 0.5 {
		t.Fatalf("raw baseline failed to learn: acc %.3f", rawAcc)
	}
	if sparseAcc < rawAcc-0.10 {
		t.Fatalf("top-k 4-bit delta acc %.3f more than 0.10 below raw %.3f", sparseAcc, rawAcc)
	}
}

// TestWALMetaFormatCompat pins the log format level: this binary writes
// format 2 (18-byte meta payload), still reads a format-1 log (17 bytes, no
// format byte), and refuses a log stamped with a future format instead of
// misreading it.
func TestWALMetaFormatCompat(t *testing.T) {
	m := walMeta{async: true, quorumOrK: 3, maxStale: 5, nParams: 100, nBN: 4}
	p := appendWALMeta(nil, m)
	if len(p) != 18 || p[17] != walFormat {
		t.Fatalf("meta payload %d bytes, final byte %d; want 18 and format %d", len(p), p[len(p)-1], walFormat)
	}
	got, err := parseWALMeta(p)
	if err != nil || got != m {
		t.Fatalf("parseWALMeta round-trip: %+v err %v", got, err)
	}
	// A format-1 log: same fields, no trailing format byte.
	got, err = parseWALMeta(p[:17])
	if err != nil || got != m {
		t.Fatalf("format-1 meta rejected: %+v err %v", got, err)
	}
	// A future format must be refused loudly.
	future := append(append([]byte(nil), p[:17]...), walFormat+1)
	if _, err := parseWALMeta(future); err == nil {
		t.Fatalf("future log format %d accepted", walFormat+1)
	}
}

// TestRecoverSparseAdmit pins WAL replay of a sparse frame-form admission: a
// top-k client's stale push is admitted just before the crash, so the log
// holds its verbatim sparse frames. Recovery must re-run the handler's
// scatter-add against the identical rebuilt served base and finish on the
// bit-identical model a never-crashed run produces.
func TestRecoverSparseAdmit(t *testing.T) {
	initP, initBN := synthVec(257, 91), synthVec(5, 92)
	mk := func(opts ...ServerOption) *Server {
		return NewServer(initP, initBN, 1, append(opts, WithBufferedAggregation(2, 3))...)
	}

	// The sparse client pulls at round 0, two rounds commit under it, then
	// its top-k push — staleness 2 — is admitted into round 2's open buffer.
	script := func(t *testing.T, ts *httptest.Server) {
		stale := &synthClient{id: 100, weight: 2, comp: &Compression{Bits: 8, Chunk: 64, TopK: 20}}
		if r := stale.pull(t, ts); r != 0 {
			t.Fatalf("sparse client pulled round %d, want 0", r)
		}
		for id := 0; id < 4; id++ {
			fedPush(t, ts, id)
		}
		if st, dup, _, _ := stale.sparsePush(t, ts, 0); st != http.StatusOK || dup {
			t.Fatalf("stale sparse push: status %d dup %v", st, dup)
		}
	}
	finish := func(t *testing.T, ts *httptest.Server) {
		fedPush(t, ts, 4)
	}

	// Never-crashed reference.
	ref := mk()
	ts := httptest.NewServer(ref.Handler())
	script(t, ts)
	finish(t, ts)
	ts.Close()
	refP, refBN := ref.Snapshot()
	ref.Close()

	// Crashed run: die with the sparse frame-form admission uncommitted.
	dir := t.TempDir()
	srv := mk(WithWAL(dir), withWarnf(t.Logf))
	ts = httptest.NewServer(srv.Handler())
	script(t, ts)
	ts.Close()
	if srv.Round() != 2 {
		t.Fatalf("crashed at round %d, want 2 (sparse admit buffered)", srv.Round())
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := RecoverServer(dir, withWarnf(t.Logf))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rec.Close()
	ts2 := httptest.NewServer(rec.Handler())
	defer ts2.Close()
	finish(t, ts2)

	if rec.Round() != 3 {
		t.Fatalf("recovered run ended at round %d, want 3", rec.Round())
	}
	p, bn := rec.Snapshot()
	for i := range refP {
		if p[i] != refP[i] {
			t.Fatalf("params[%d] = %v, want %v (sparse frame replay diverged)", i, p[i], refP[i])
		}
	}
	for i := range refBN {
		if bn[i] != refBN[i] {
			t.Fatalf("bn[%d] = %v, want %v", i, bn[i], refBN[i])
		}
	}
}
