package fldist

// The delta-downlink serve plane: per codec variant negotiated with delta=1,
// the server keeps a quantized, error-fed chain of global-model deltas so a
// returning client that declares the round it already holds pulls only the
// frames that move it from that round to the head — not the whole model.
//
// The chain is its own subsystem beside the dense served cache: a
// deltaChain per variant, advanced lazily at pull time from the immutable
// model snapshot. Each advance quantizes (model − chainBase + err) — top-k
// sparse when the variant negotiated topk, dense otherwise — appends the
// frames as a deltaEntry, and folds the reconstruction error into err, the
// downlink error-feedback residual that keeps the chain base tracking the
// true model over rounds instead of drifting on the quantization grid. The
// entry also records the post-delta chain base vectors: the per-round base
// registry the push path resolves a delta-mode client's training base from.
// BatchNorm statistics ride the same chain as their own dense 8-bit
// error-fed frames (bnDeltaBits) — raw BN would dominate the byte budget of
// a top-k pull out of all proportion to its 56 values.
//
// Because an advance is a pure function of (chain state, snapshot), it is
// deterministic regardless of which client's pull triggers it, and every
// client of the variant reconstructs bit-identical chain-base vectors — the
// invariant the push path's base lookup depends on. Entries older than the
// serve window are evicted; a client holding an evicted round falls back to
// a cold pull (the chain head, raw) and rejoins the chain from there.

import (
	"encoding/binary"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"fedprophet/internal/quant"
)

// bnDeltaBits is the fixed dense quantization width of the BatchNorm frames
// on a delta chain. 8 bits keeps the running statistics' distortion inside
// what their own error-feedback chain absorbs while cutting their bytes 8×.
const bnDeltaBits = 8

// deltaWindowSync is the catch-up depth of a delta chain in synchronous
// mode, where no staleness window exists to derive one from: a client more
// than this many rounds behind the chain head re-pulls cold. Buffered mode
// uses maxStale instead, so every admissible push round stays resolvable.
const deltaWindowSync = 8

// deltaHeaderSize is the fixed FPD1 catch-up envelope prefix: magic,
// version, from-round, to-round, entry count.
const deltaHeaderSize = 4 + 1 + 4 + 4 + 4

// deltaEntry is one link of a variant's delta chain. pFrame/bnFrame are the
// quantized delta frames that move a client from prevRound's chain base to
// this round's; both are nil on the chain-origin entry, which exists only to
// seed the base registry. baseP/baseBN are the chain base *after* this
// round's delta — the exact vectors a client holding this round reconstructs
// — immutable once the entry is appended, so the push path may hold them
// outside the chain lock.
type deltaEntry struct {
	round     int
	prevRound int // -1 on the chain origin
	pFrame    []byte
	bnFrame   []byte
	baseP     []float64
	baseBN    []float64
}

// deltaChain is one delta-mode codec variant's downlink state. mu is the
// variant's single-flight latch, held across the O(model) chain advance the
// same way a servedEntry's latch is held across its build: racing pulls for
// the variant queue here and find the chain already advanced; pulls for
// other variants never wait. round mirrors entries' head round. errP/errBN
// are the downlink error-feedback residuals. coldBody caches the raw pull
// body of the chain head, invalidated by every advance.
type deltaChain struct {
	mu       sync.Mutex
	round    int
	errP     []float64
	errBN    []float64
	entries  []deltaEntry
	coldBody []byte
	coldCLen string
}

// deltaWindow is how many rounds behind the chain head a delta entry stays
// retained: the staleness window in buffered mode (an admissible push's base
// round must be resolvable), a fixed catch-up depth in synchronous mode.
func (s *Server) deltaWindow() int {
	if s.async {
		return s.maxStale
	}
	return deltaWindowSync
}

// getDeltaChain returns (creating on first use) the chain of a delta-mode
// codec variant. Creation leaves the chain empty — the first pull seeds it
// from the snapshot under the chain's own lock — so deltaMu never spans
// O(model) work. Delta variants have their own instance of the codec-variant
// cap: each chain retains a window of model-sized bases.
func (s *Server) getDeltaChain(c Compression) (*deltaChain, error) {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	if ch := s.deltaChains[c]; ch != nil {
		return ch, nil
	}
	if len(s.deltaChains) >= maxCodecVariants {
		return nil, fmt.Errorf("fldist: more than %d delta codec variants", maxCodecVariants)
	}
	ch := &deltaChain{}
	s.deltaChains[c] = ch
	return ch, nil
}

// lookupDeltaChain returns the variant's chain if one exists, without
// creating it — the push path's form: a delta-mode push with no chain means
// the client is talking to a server that never served it (a restart), and
// must re-pull rather than conjure a base.
func (s *Server) lookupDeltaChain(c Compression) *deltaChain {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	return s.deltaChains[c]
}

// deltaBaseAt resolves the chain-base vectors a delta-mode client holding
// the given round trained from — the per-round base registry lookup of the
// push path. The returned slices are immutable entry state, safe to use
// after the lock drops. Reports false when the variant has no chain or the
// round fell out of the window (the push is rejected as stale; the client
// re-pulls and retrains).
func (s *Server) deltaBaseAt(c Compression, round int) ([]float64, []float64, bool) {
	ch := s.lookupDeltaChain(c)
	if ch == nil {
		return nil, nil, false
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for i := len(ch.entries) - 1; i >= 0; i-- {
		if ch.entries[i].round == round {
			return ch.entries[i].baseP, ch.entries[i].baseBN, true
		}
	}
	return nil, nil, false
}

// advanceDeltaChainLocked brings the chain to the snapshot's round: seeds an
// empty chain with an origin entry (the exact model — the first cold pull's
// body), or quantizes the movement since the chain head into one new entry.
// One entry covers the whole gap even when several rounds committed between
// pulls — the chain records *observed* states, and the delta to the current
// snapshot is all a catch-up client needs. Caller holds ch.mu.
func (s *Server) advanceDeltaChainLocked(ch *deltaChain, c Compression, snap *snapshot) {
	if len(ch.entries) == 0 {
		ch.entries = append(ch.entries, deltaEntry{
			round:     snap.round,
			prevRound: -1,
			baseP:     append([]float64(nil), snap.params...),
			baseBN:    append([]float64(nil), snap.bn...),
		})
		ch.round = snap.round
		ch.errP = make([]float64, len(snap.params))
		ch.errBN = make([]float64, len(snap.bn))
		ch.coldBody = nil
		return
	}
	if snap.round <= ch.round {
		return
	}
	lastP := ch.entries[len(ch.entries)-1].baseP
	lastBN := ch.entries[len(ch.entries)-1].baseBN

	// Params: quantize (model − chainBase + err), fold the reconstruction
	// error back into err. Top-k keeps only the largest-magnitude
	// coordinates; everything sparsification drops lands in err and is
	// retried next advance — error feedback absorbs sparsification exactly
	// as it absorbs quantization.
	n := len(snap.params)
	d := make([]float64, n)
	for i := range d {
		d[i] = snap.params[i] - lastP[i] + ch.errP[i]
	}
	newP := append([]float64(nil), lastP...)
	var pFrame []byte
	if c.TopK > 0 {
		idx := quant.TopKIndices(d, c.TopK)
		deq := make([]float64, len(idx))
		pFrame = s.encodeSparseFrame(d, idx, c.Bits, c.Chunk, deq)
		for j, ix := range idx {
			newP[ix] += deq[j]
			d[ix] -= deq[j]
		}
	} else {
		q := quant.QuantizeChunks(d, c.Bits, c.Chunk)
		pFrame = quant.Encode(q)
		deq := q.Dequantize()
		for i := range newP {
			newP[i] += deq[i]
			d[i] -= deq[i]
		}
	}
	ch.errP = d

	db := make([]float64, len(snap.bn))
	for i := range db {
		db[i] = snap.bn[i] - lastBN[i] + ch.errBN[i]
	}
	qb := quant.QuantizeChunks(db, bnDeltaBits, c.Chunk)
	bnFrame := quant.Encode(qb)
	deqb := qb.Dequantize()
	newBN := append([]float64(nil), lastBN...)
	for i := range newBN {
		newBN[i] += deqb[i]
		db[i] -= deqb[i]
	}
	ch.errBN = db

	ch.entries = append(ch.entries, deltaEntry{
		round:     snap.round,
		prevRound: ch.round,
		pFrame:    pFrame,
		bnFrame:   bnFrame,
		baseP:     newP,
		baseBN:    newBN,
	})
	ch.round = snap.round
	ch.coldBody = nil

	// Window eviction: drop entries too old to serve a catch-up or resolve
	// a push base, copying to fresh backing so the retained tail does not
	// pin the evicted entries' model-sized base vectors in memory.
	lo := 0
	for lo < len(ch.entries)-1 && ch.entries[lo].round < snap.round-s.deltaWindow() {
		lo++
	}
	if lo > 0 {
		ch.entries = append(ch.entries[:0:0], ch.entries[lo:]...)
	}
}

// encodeSparseFrame builds one sparse FPQ1 frame segment-parallel: the frame
// size is closed-form (quant.SparseFrameBytes), the header and k field are
// written in place, and each chunk-aligned segment's varints and blocks are
// encoded by its own goroutine into disjoint byte ranges of the one buffer.
// The stitch identity (TestSparseSegmentStitchIdentity) makes the bytes
// identical to the sequential quant.EncodeSparse at any segment count and
// GOMAXPROCS. deq, when non-nil, receives the dequantized value per selected
// index — the error-feedback subtraction the caller folds back.
func (s *Server) encodeSparseFrame(v []float64, idx []int, bits, chunk int, deq []float64) []byte {
	n := len(v)
	frame := make([]byte, quant.SparseFrameBytes(idx, chunk, bits))
	if err := quant.PutSparseFrameHeader(frame[:quant.FrameHeaderSize+4], bits, n, chunk, len(idx)); err != nil {
		// bits/chunk validated by normalize(), idx by TopKIndices; unreachable.
		panic(fmt.Sprintf("fldist: building sparse delta frame: %v", err))
	}
	payload := frame[quant.FrameHeaderSize:]
	segsN := s.buildSegments
	if segsN <= 0 {
		segsN = runtime.GOMAXPROCS(0)
	}
	bounds := quant.SegmentBounds(n, chunk, segsN)
	segs := quant.SparseSegments(idx, bounds, chunk, bits)
	encode := func(sg quant.SparseSegment) {
		if err := quant.EncodeSparseSegmentInto(payload, v, idx, sg, bits, chunk, deq); err != nil {
			panic(fmt.Sprintf("fldist: building sparse delta frame: %v", err))
		}
	}
	if len(segs) > 1 && runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		for k := 0; k+1 < len(segs); k++ {
			sg := segs[k]
			wg.Add(1)
			go func() {
				defer wg.Done()
				encode(sg)
			}()
		}
		// The last segment runs on the calling goroutine.
		encode(segs[len(segs)-1])
		wg.Wait()
	} else {
		for _, sg := range segs {
			encode(sg)
		}
	}
	return frame
}

// appendDeltaHeader appends the FPD1 catch-up envelope prefix.
func appendDeltaHeader(dst []byte, from, to, count int) []byte {
	dst = append(dst, deltaMagic...)
	dst = append(dst, envVersion)
	var b [12]byte
	binary.LittleEndian.PutUint32(b[0:4], uint32(from))
	binary.LittleEndian.PutUint32(b[4:8], uint32(to))
	binary.LittleEndian.PutUint32(b[8:12], uint32(count))
	return append(dst, b[:]...)
}

// catchUpLocked builds the FPD1 body that moves a client from baseR to the
// chain head, or reports nil when the chain cannot serve that jump (baseR
// ahead of, unknown to, or evicted from the chain) and the pull must go
// cold. baseR equal to the head is the empty envelope — the client is
// already current and pays 17 bytes to learn it. The chain is contiguous by
// construction (each entry's prevRound is its predecessor's round), so one
// continuity check at the first served entry covers the whole run. Caller
// holds ch.mu; the returned body is freshly built and immutable.
func (ch *deltaChain) catchUpLocked(baseR int) []byte {
	if baseR == ch.round {
		return appendDeltaHeader(make([]byte, 0, deltaHeaderSize), baseR, ch.round, 0)
	}
	i := 0
	for i < len(ch.entries) && ch.entries[i].round <= baseR {
		i++
	}
	if i == len(ch.entries) || ch.entries[i].prevRound != baseR || ch.entries[i].pFrame == nil {
		return nil
	}
	size := deltaHeaderSize
	for _, e := range ch.entries[i:] {
		size += 4 + len(e.pFrame) + len(e.bnFrame)
	}
	body := appendDeltaHeader(make([]byte, 0, size), baseR, ch.round, len(ch.entries)-i)
	for _, e := range ch.entries[i:] {
		var rb [4]byte
		binary.LittleEndian.PutUint32(rb[:], uint32(e.round))
		body = append(body, rb[:]...)
		body = append(body, e.pFrame...)
		body = append(body, e.bnFrame...)
	}
	return body
}

// coldLocked returns (building and caching on first use per chain head) the
// raw pull body of the chain head: the standard model envelope carrying the
// head's chain-base vectors — not the exact model — so a cold-pulling client
// lands precisely on the chain and every later delta applies bit-exactly.
// Caller holds ch.mu.
func (ch *deltaChain) coldLocked() ([]byte, string) {
	if ch.coldBody == nil {
		head := &ch.entries[len(ch.entries)-1]
		pf := quant.EncodeRaw(head.baseP)
		bf := quant.EncodeRaw(head.baseBN)
		body := make([]byte, 0, 9+len(pf)+len(bf))
		body = append(body, modelMagic...)
		body = append(body, envVersion)
		var rb [4]byte
		binary.LittleEndian.PutUint32(rb[:], uint32(head.round))
		body = append(body, rb[:]...)
		body = append(body, pf...)
		body = append(body, bf...)
		ch.coldBody = body
		ch.coldCLen = strconv.Itoa(len(body))
	}
	return ch.coldBody, ch.coldCLen
}

// handleDeltaModel serves a pull whose codec negotiated delta=1: advance the
// variant's chain to the current snapshot (single-flight, under the chain's
// latch), then answer with the FPD1 catch-up frames when the client's
// declared base round is on the chain, or the cold chain-head body when it
// is not (first pull, evicted round, or post-restart). All bytes count into
// the compressed-out total; the per-form counters split them for /stats.
func (s *Server) handleDeltaModel(w http.ResponseWriter, c Compression, baseR int, start time.Time) {
	ch, err := s.getDeltaChain(c)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap := s.model.Load()
	ch.mu.Lock()
	s.advanceDeltaChainLocked(ch, c, snap)
	var body []byte
	var clen string
	delta := false
	if baseR >= 0 {
		if b := ch.catchUpLocked(baseR); b != nil {
			body, clen, delta = b, strconv.Itoa(len(b)), true
		}
	}
	if body == nil {
		body, clen = ch.coldLocked()
	}
	ch.mu.Unlock()

	w.Header().Set(codecHeader, codecValue(c))
	if delta {
		w.Header().Set("Content-Type", contentTypeModelDelta)
	} else {
		w.Header().Set("Content-Type", contentTypeModel)
	}
	w.Header().Set("Content-Length", clen)
	n, _ := w.Write(body)
	s.bytesOutComp.Add(int64(n))
	if delta {
		s.deltaPulls.Add(1)
		s.bytesOutDelta.Add(int64(n))
	} else {
		s.coldPulls.Add(1)
		s.bytesOutCold.Add(int64(n))
	}
	//lint:ignore determinism latency histogram only; /stats is observability, not state
	s.pullLat.record(time.Since(start))
}
