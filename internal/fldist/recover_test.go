package fldist

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Recovery determinism: a federation that crashes and recovers must end,
// after the surviving clients finish their pushes, on the bit-identical
// model a never-crashed run produces from the same admission sequence. This
// file pins that across aggregation modes and shard counts, plus the live
// handoff path, the edge restart re-push (deduplicated exactly once
// upstream), and the shutdown warning contract for abandoned buffered work.

// fedPush runs one scripted client: pull the current model, train (perturb),
// push. Clients push exactly once, so their update bytes depend only on the
// pulled base — a recovered server serving the bit-identical base therefore
// receives the bit-identical update.
func fedPush(t *testing.T, ts *httptest.Server, id int) {
	t.Helper()
	c := &synthClient{id: id, weight: float64(id%4 + 1)}
	if id%3 == 2 {
		c.comp = &Compression{Bits: 8, Chunk: 64}
	}
	r := c.pull(t, ts)
	if st, dup, _, _ := c.push(t, ts, r); st != http.StatusOK || dup {
		t.Fatalf("client %d push: status %d dup %v", id, st, dup)
	}
}

// TestRecoverBitIdentical crashes a WAL-backed federation mid-run — between
// commits, at a commit boundary, mid-quorum — recovers it, finishes the
// scripted pushes, and demands the final model be bit-identical to the
// never-crashed reference. Buffered mode replays its logged admissions;
// sync mode resumes at the last commit and the clients whose pushes died
// with the process push again, exactly as the wire contract tells them to.
func TestRecoverBitIdentical(t *testing.T) {
	const nPush = 9 // 3 commits of 3 in both modes
	initP, initBN := synthVec(257, 71), synthVec(5, 72)

	mkServer := func(mode string, shards int, opts ...ServerOption) *Server {
		if mode == "buffered" {
			opts = append(opts, WithBufferedAggregation(3, 2))
			return NewServer(initP, initBN, 1, append(opts, WithShards(shards))...)
		}
		return NewServer(initP, initBN, 3, append(opts, WithShards(shards))...)
	}

	// The never-crashed references, one per mode (shard count cannot matter —
	// that is pinned elsewhere — so one reference each suffices).
	refs := map[string][2][]float64{}
	for _, mode := range []string{"buffered", "sync"} {
		srv := mkServer(mode, 2)
		ts := httptest.NewServer(srv.Handler())
		for id := 0; id < nPush; id++ {
			fedPush(t, ts, id)
		}
		ts.Close()
		if srv.Round() != 3 {
			t.Fatalf("%s reference ended at round %d, want 3", mode, srv.Round())
		}
		p, bn := srv.Snapshot()
		refs[mode] = [2][]float64{p, bn}
	}

	for _, mode := range []string{"buffered", "sync"} {
		for _, shards := range []int{1, 4} {
			for _, crashAt := range []int{2, 4, 7} {
				t.Run(fmt.Sprintf("%s/shards=%d/crash=%d", mode, shards, crashAt), func(t *testing.T) {
					dir := t.TempDir()
					srv := mkServer(mode, shards, WithWAL(dir), withWarnf(t.Logf))
					ts := httptest.NewServer(srv.Handler())
					for id := 0; id < crashAt; id++ {
						fedPush(t, ts, id)
					}
					// Crash: the process dies with the flock released and the
					// log exactly as fsync/page cache left it. (The torn-tail
					// variants of this moment are the truncation sweep's job.)
					ts.Close()
					if err := srv.Close(); err != nil {
						t.Fatal(err)
					}

					rec, err := RecoverServer(dir, WithShards(shards), withWarnf(t.Logf))
					if err != nil {
						t.Fatalf("recover: %v", err)
					}
					defer rec.Close()
					ts2 := httptest.NewServer(rec.Handler())
					defer ts2.Close()

					// Where the federation resumes: buffered mode replayed every
					// admission the WAL held, so the next push is exactly the
					// next scripted one; sync mode lost the partial quorum and
					// those clients re-push from the recovered round's start.
					resume := crashAt
					if mode == "sync" {
						resume = rec.Round() * 3
						if resume > crashAt {
							t.Fatalf("sync recovery at round %d implies %d pushes, but only %d happened", rec.Round(), resume, crashAt)
						}
					}
					for id := resume; id < nPush; id++ {
						fedPush(t, ts2, id)
					}

					if rec.Round() != 3 {
						t.Fatalf("recovered run ended at round %d, want 3", rec.Round())
					}
					p, bn := rec.Snapshot()
					want := refs[mode]
					for i := range want[0] {
						if p[i] != want[0][i] {
							t.Fatalf("params[%d] = %v, want %v (not bit-identical to the never-crashed run)", i, p[i], want[0][i])
						}
					}
					for i := range want[1] {
						if bn[i] != want[1][i] {
							t.Fatalf("bn[%d] = %v, want %v", i, bn[i], want[1][i])
						}
					}
				})
			}
		}
	}
}

// Live handoff: a successor blocks on the incumbent's flock and takes over
// at its exact round the moment the incumbent closes — no state lost, no
// double ownership, and the federation keeps moving under the successor.
func TestHandoff(t *testing.T) {
	dir := t.TempDir()
	srv, refP, _ := walScript(t, dir, 2, 0, 2)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	type result struct {
		s   *Server
		err error
	}
	ch := make(chan result, 1)
	go func() {
		s, err := Handoff(ctx, dir, WithShards(4), withWarnf(t.Logf))
		ch <- result{s, err}
	}()

	// The incumbent is live and holds the flock: the successor must wait.
	select {
	case r := <-ch:
		if r.s != nil {
			r.s.Close()
		}
		t.Fatalf("handoff completed while the incumbent was live (err=%v)", r.err)
	case <-time.After(150 * time.Millisecond):
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var suc *Server
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("handoff: %v", r.err)
		}
		suc = r.s
	case <-time.After(10 * time.Second):
		t.Fatal("handoff did not complete after the incumbent closed")
	}
	defer suc.Close()

	if suc.Round() != 2 {
		t.Fatalf("successor at round %d, want 2", suc.Round())
	}
	p, _ := suc.Snapshot()
	for i := range refP[2] {
		if p[i] != refP[2][i] {
			t.Fatalf("successor params[%d] = %v, want %v", i, p[i], refP[2][i])
		}
	}

	// The federation continues under the successor.
	ts := httptest.NewServer(suc.Handler())
	defer ts.Close()
	for id := 100; id < 100+walTestBufferK; id++ {
		fedPush(t, ts, id)
	}
	if suc.Round() != 3 {
		t.Fatalf("successor stuck at round %d after a full buffer, want 3", suc.Round())
	}
}

// edgeRepushFixture runs a cohort of grid clients against a WAL-backed edge
// whose flusher is idle (K too high, age disabled), then commits and parks
// the batch by hand — the state every edge-crash scenario starts from.
// It returns the upstream server, the live edge, its context cancel, and the
// edge WAL dir. Grid values keep every fold exact, so upstream snapshots
// compare bitwise.
func edgeRepushFixture(t *testing.T, dir string) (up *Server, ts *httptest.Server, e *Edge, cancel context.CancelFunc) {
	t.Helper()
	up = NewServer(gridVec(64, 1), gridVec(8, 2), 1,
		WithShards(2), WithBufferedAggregation(1, 2))
	ts = httptest.NewServer(up.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	e = NewEdge(ts.URL,
		WithEdgeClientID(4096), WithEdgeFlush(8, 0), WithEdgeWAL(dir))
	if err := e.Start(ctx); err != nil {
		cancel()
		t.Fatalf("edge start: %v", err)
	}
	ets := httptest.NewServer(e.Handler())
	cohortRun(t, ets.Client(), ets.URL, []int{1, 2})
	ets.Close()
	return up, ts, e, cancel
}

// edgeControlSnapshot is the reference: the same cohort through the same
// edge, pushed cleanly (no crash), and the upstream model it yields.
func edgeControlSnapshot(t *testing.T) ([]float64, []float64) {
	t.Helper()
	up := NewServer(gridVec(64, 1), gridVec(8, 2), 1,
		WithShards(2), WithBufferedAggregation(1, 2))
	ts := httptest.NewServer(up.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := NewEdge(ts.URL, WithEdgeClientID(4096), WithEdgeFlush(8, 0))
	if err := e.Start(ctx); err != nil {
		t.Fatalf("control edge start: %v", err)
	}
	ets := httptest.NewServer(e.Handler())
	cohortRun(t, ets.Client(), ets.URL, []int{1, 2})
	ets.Close()
	if err := e.Drain(context.Background()); err != nil {
		t.Fatalf("control drain: %v", err)
	}
	cancel()
	<-e.done
	if up.Round() != 1 {
		t.Fatalf("control upstream at round %d, want 1", up.Round())
	}
	p, bn := up.Snapshot()
	return p, bn
}

// An edge that crashes AFTER its push was acknowledged but BEFORE it cleared
// the durable slot — the unavoidable window of the park-push-clear protocol.
// The restarted edge re-pushes the recovered batch under its original dedup
// identity and the upstream drops it as a duplicate: the cohort's work lands
// exactly once, bit-identically to the clean run.
func TestEdgeRestartRepushDeduped(t *testing.T) {
	wantP, wantBN := edgeControlSnapshot(t)
	dir := t.TempDir()
	up, ts, e, cancel := edgeRepushFixture(t, dir)

	e.flushMu.Lock()
	batch, ok := e.inner.commitNow()
	if !ok {
		e.flushMu.Unlock()
		t.Fatal("nothing buffered to commit")
	}
	e.parkBatchLocked(batch)
	slot, err := os.ReadFile(filepath.Join(dir, edgeWALName))
	if err != nil {
		e.flushMu.Unlock()
		t.Fatalf("parked slot not durable: %v", err)
	}
	if err := e.pushBatchLocked(context.Background(), false); err != nil {
		e.flushMu.Unlock()
		t.Fatalf("push: %v", err)
	}
	e.flushMu.Unlock()
	// The push landed (upstream committed) and the slot was cleared. Put the
	// pre-push slot bytes back: the on-disk image of a crash inside the
	// acknowledged-but-not-cleared window.
	if err := os.WriteFile(filepath.Join(dir, edgeWALName), slot, 0o644); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-e.done

	if up.Round() != 1 {
		t.Fatalf("upstream at round %d after the first push, want 1", up.Round())
	}
	dupsBefore := up.DuplicatesDropped()

	// The restarted edge: same identity, same WAL dir. Start recovers the
	// parked batch and re-pushes it before anything else.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	e2 := NewEdge(ts.URL, WithEdgeClientID(4096), WithEdgeFlush(8, 0), WithEdgeWAL(dir))
	if err := e2.Start(ctx2); err != nil {
		t.Fatalf("restarted edge start: %v", err)
	}
	defer func() { cancel2(); <-e2.done }()

	if got := up.DuplicatesDropped(); got != dupsBefore+1 {
		t.Fatalf("upstream dropped %d duplicates, want %d — the re-push was not deduplicated", got, dupsBefore+1)
	}
	if up.Round() != 1 {
		t.Fatalf("upstream advanced to round %d on a duplicate re-push", up.Round())
	}
	p, bn := up.Snapshot()
	for i := range wantP {
		if p[i] != wantP[i] {
			t.Fatalf("params[%d] = %v, want %v — the cohort batch did not land exactly once", i, p[i], wantP[i])
		}
	}
	for i := range wantBN {
		if bn[i] != wantBN[i] {
			t.Fatalf("bn[%d] = %v, want %v", i, bn[i], wantBN[i])
		}
	}
	// The acknowledged re-push cleared the slot for good.
	if _, ok, err := readEdgeWAL(dir); err != nil || ok {
		t.Fatalf("slot after deduped re-push: ok=%v err=%v, want empty", ok, err)
	}
	// The batch-ID cursor came back from the slot: the next batch must draw a
	// fresh dedup identity, not reuse the recovered one.
	e2.flushMu.Lock()
	nextID := e2.nextPushIDLocked()
	e2.flushMu.Unlock()
	if nextID != 4096+1 {
		t.Fatalf("next push ID %d, want %d (pushSeq cursor not restored)", nextID, 4096+1)
	}
}

// An edge that crashes BEFORE the push: the parked batch survives in the
// slot, the restarted edge pushes it, and the cohort's work lands exactly
// once — bit-identical to the clean run, with no duplicate involved.
func TestEdgeCrashBeforePushRepushesOnce(t *testing.T) {
	wantP, wantBN := edgeControlSnapshot(t)
	dir := t.TempDir()
	up, ts, e, cancel := edgeRepushFixture(t, dir)

	e.flushMu.Lock()
	batch, ok := e.inner.commitNow()
	if !ok {
		e.flushMu.Unlock()
		t.Fatal("nothing buffered to commit")
	}
	e.parkBatchLocked(batch)
	e.flushMu.Unlock()
	// Crash before the push ever happens.
	cancel()
	<-e.done
	if up.Round() != 0 {
		t.Fatalf("upstream at round %d before any push, want 0", up.Round())
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	e2 := NewEdge(ts.URL, WithEdgeClientID(4096), WithEdgeFlush(8, 0), WithEdgeWAL(dir))
	if err := e2.Start(ctx2); err != nil {
		t.Fatalf("restarted edge start: %v", err)
	}
	defer func() { cancel2(); <-e2.done }()

	if up.Round() != 1 {
		t.Fatalf("upstream at round %d after recovery push, want 1", up.Round())
	}
	if d := up.DuplicatesDropped(); d != 0 {
		t.Fatalf("%d duplicates dropped, want 0", d)
	}
	p, bn := up.Snapshot()
	for i := range wantP {
		if p[i] != wantP[i] {
			t.Fatalf("params[%d] = %v, want %v", i, p[i], wantP[i])
		}
	}
	for i := range wantBN {
		if bn[i] != wantBN[i] {
			t.Fatalf("bn[%d] = %v, want %v", i, bn[i], wantBN[i])
		}
	}
	if _, ok, err := readEdgeWAL(dir); err != nil || ok {
		t.Fatalf("slot after recovery push: ok=%v err=%v, want empty", ok, err)
	}
}

// The shutdown warning contract: closing a server that still buffers
// unaggregated client work says so, says whether the work is recoverable,
// and — with a WAL — is telling the truth: RecoverServer replays exactly
// those updates.
func TestCloseWarnsAboutAbandonedUpdates(t *testing.T) {
	initP, initBN := synthVec(65, 71), synthVec(5, 72)
	capture := func(warns *[]string) ServerOption {
		return withWarnf(func(f string, a ...any) { *warns = append(*warns, fmt.Sprintf(f, a...)) })
	}
	oneAdmit := func(srv *Server) {
		ts := httptest.NewServer(srv.Handler())
		fedPush(t, ts, 0)
		ts.Close()
	}

	t.Run("buffered with WAL: recoverable, and recovery proves it", func(t *testing.T) {
		dir := t.TempDir()
		var warns []string
		srv := NewServer(initP, initBN, 1,
			WithBufferedAggregation(3, 2), WithWAL(dir), capture(&warns))
		oneAdmit(srv)
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if len(warns) != 1 || !strings.Contains(warns[0], "1 buffered update(s)") || !strings.Contains(warns[0], "all logged") {
			t.Fatalf("warnings = %q, want one mentioning the count and full WAL coverage", warns)
		}
		// The promise in the warning: recovery replays the abandoned update,
		// so two more pushes complete the buffer of three.
		rec, err := RecoverServer(dir, withWarnf(t.Logf))
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		ts := httptest.NewServer(rec.Handler())
		defer ts.Close()
		fedPush(t, ts, 1)
		fedPush(t, ts, 2)
		if rec.Round() != 1 {
			t.Fatalf("recovered server at round %d after completing the buffer, want 1", rec.Round())
		}
	})

	t.Run("buffered without WAL: lost", func(t *testing.T) {
		var warns []string
		srv := NewServer(initP, initBN, 1, WithBufferedAggregation(3, 2), capture(&warns))
		oneAdmit(srv)
		srv.Close()
		if len(warns) != 1 || !strings.Contains(warns[0], "no WAL") {
			t.Fatalf("warnings = %q, want one saying the update is lost without a WAL", warns)
		}
	})

	t.Run("sync with WAL: partial quorum not logged", func(t *testing.T) {
		var warns []string
		srv := NewServer(initP, initBN, 3, WithWAL(t.TempDir()), capture(&warns))
		oneAdmit(srv)
		srv.Close()
		if len(warns) != 1 || !strings.Contains(warns[0], "sync mode logs commits only") {
			t.Fatalf("warnings = %q, want one saying sync mode does not log admissions", warns)
		}
	})

	t.Run("clean close: silent", func(t *testing.T) {
		var warns []string
		srv := NewServer(initP, initBN, 1,
			WithBufferedAggregation(3, 2), WithWAL(t.TempDir()), capture(&warns))
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if len(warns) != 0 {
			t.Fatalf("clean close warned: %q", warns)
		}
	})
}

// TestRecoverStaleCompressedAdmit pins the frame-replay path that rebuilds a
// history round's served base. A compressed client pulls, the federation
// commits past its base round, and its stale push is admitted (within the
// staleness window) just before the process dies — so the WAL holds an
// uncommitted frame-form admission whose base round is no longer the head.
// Recovery must re-run the handler's decode against the identical served
// base, rebuilt from the base round's logged snapshot and entry residual
// (servedBaseForReplay's history branch), and the finished federation must
// land bit-identical to a never-crashed run of the same script.
func TestRecoverStaleCompressedAdmit(t *testing.T) {
	initP, initBN := synthVec(257, 81), synthVec(5, 82)
	mk := func(opts ...ServerOption) *Server {
		// Commit every 2 admissions; tolerate staleness 3.
		return NewServer(initP, initBN, 1, append(opts, WithBufferedAggregation(2, 3))...)
	}

	// script drives the federation to the moment of the crash: the stale
	// client pulls at round 0, two rounds commit under it, then its push —
	// staleness 2 — is admitted into round 2's still-open buffer.
	script := func(t *testing.T, ts *httptest.Server) *synthClient {
		stale := &synthClient{id: 100, weight: 2, comp: &Compression{Bits: 8, Chunk: 64}}
		if r := stale.pull(t, ts); r != 0 {
			t.Fatalf("stale client pulled round %d, want 0", r)
		}
		for id := 0; id < 4; id++ {
			fedPush(t, ts, id)
		}
		if st, dup, _, _ := stale.push(t, ts, 0); st != http.StatusOK || dup {
			t.Fatalf("stale push: status %d dup %v", st, dup)
		}
		return stale
	}
	// finish completes round 2 after the crash (or never-crash): one more
	// admission reaches the commit threshold.
	finish := func(t *testing.T, ts *httptest.Server) {
		fedPush(t, ts, 4)
	}

	// Never-crashed reference.
	ref := mk()
	ts := httptest.NewServer(ref.Handler())
	script(t, ts)
	finish(t, ts)
	ts.Close()
	if ref.Round() != 3 {
		t.Fatalf("reference ended at round %d, want 3", ref.Round())
	}
	refP, refBN := ref.Snapshot()
	ref.Close()

	// Crashed run: die with the stale frame-form admission uncommitted.
	dir := t.TempDir()
	srv := mk(WithWAL(dir), withWarnf(t.Logf))
	ts = httptest.NewServer(srv.Handler())
	script(t, ts)
	ts.Close()
	if srv.Round() != 2 {
		t.Fatalf("crashed at round %d, want 2 (stale admit buffered)", srv.Round())
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := RecoverServer(dir, withWarnf(t.Logf))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer rec.Close()
	ts2 := httptest.NewServer(rec.Handler())
	defer ts2.Close()
	finish(t, ts2)

	if rec.Round() != 3 {
		t.Fatalf("recovered run ended at round %d, want 3", rec.Round())
	}
	p, bn := rec.Snapshot()
	for i := range refP {
		if p[i] != refP[i] {
			t.Fatalf("params[%d] = %v, want %v (stale frame replay diverged)", i, p[i], refP[i])
		}
	}
	for i := range refBN {
		if bn[i] != refBN[i] {
			t.Fatalf("bn[%d] = %v, want %v", i, bn[i], refBN[i])
		}
	}
}
