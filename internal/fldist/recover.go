package fldist

// Recovery and handoff for the write-ahead log (wal.go). The algorithm —
// documented with the determinism argument in docs/ARCHITECTURE.md
// ("Durability") — is O(staleness window), independent of log length:
//
//  1. Read the meta record at offset 0 and the wal.idx checkpoint; seek to
//     the oldest in-window commit the idx pins (full forward scan from the
//     meta record only if the idx is missing or disagrees with the log).
//  2. Forward-scan to EOF: commit records rebuild the retained-round history
//     and the latest snapshot + downlink-EF residuals; admission records
//     re-mark the dedup horizon and, for the round after the last commit,
//     re-enter the admission machinery. The first structurally bad record
//     ends the scan — a torn final record is a crash mid-append, and
//     everything before it is intact by CRC.
//  3. Truncate the torn tail and resume appending where the intact log ends.
//
// Replay is bit-identical to never having crashed, by two arguments:
//
// Delta-form admissions (raw-gob pushes) log d = vals−base. The fold consumes
// each contribution only as weight·(vals−base) per element, so replaying as
// (d, 0) feeds the identical difference through the identical
// (baseRound, clientID)-ordered fold.
//
// Frame-form admissions (compressed pushes) log the client's wire frames
// verbatim. Replay re-runs the live handler's own arithmetic — stream-decode,
// add the served base the client pulled — against that base rebuilt from the
// base round's commit record: buildServed is a byte-deterministic function of
// (snapshot, entry residual, codec), and the commit record carries exactly
// those inputs. (d = (base⊕dq)⊖base generally ≠ dq in IEEE-754, which is why
// the frames must be replayed through the add, not substituted for a delta.)
//
// TestRecoverBitIdentical* pin both across modes, shard counts, and crash
// points.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"fedprophet/internal/quant"
)

// walRecCommitPos is one intact commit record found by the scan.
type walRecCommitPos struct {
	c   walCommit
	off int64
}

// walRecovered is everything the forward scan extracted from the intact log
// prefix.
type walRecovered struct {
	meta    walMeta
	commits []walRecCommitPos // in log order; last is the current round
	admits  []*walAdmit       // in log order
	lastSeq uint64
	torn    bool // the log ended in a torn/corrupt record that was truncated
}

// readWALRecordAt reads and validates the single record starting at off.
func readWALRecordAt(f io.ReaderAt, off, size int64) (typ byte, seq uint64, payload []byte, end int64, err error) {
	if size-off < walHeaderSize {
		return 0, 0, nil, 0, fmt.Errorf("%w: %d bytes at offset %d, header needs %d",
			ErrWAL, size-off, off, walHeaderSize)
	}
	hdr := make([]byte, walHeaderSize)
	if _, err := f.ReadAt(hdr, off); err != nil {
		return 0, 0, nil, 0, err
	}
	// Validate magic and declared length from the header alone, so the full
	// read is sized without trusting a corrupt length field.
	if string(hdr[:4]) != walMagic {
		return 0, 0, nil, 0, fmt.Errorf("%w: magic %q at offset %d", ErrWAL, hdr[:4], off)
	}
	plen := int64(binary.LittleEndian.Uint32(hdr[5:9]))
	if plen <= 0 || plen > walMaxPayload || off+walHeaderSize+plen > size {
		return 0, 0, nil, 0, fmt.Errorf("%w: record at offset %d truncated or corrupt", ErrWAL, off)
	}
	rec := make([]byte, walHeaderSize+plen)
	if _, err := f.ReadAt(rec, off); err != nil {
		return 0, 0, nil, 0, err
	}
	typ, seq, payload, n, err := parseWALRecord(rec)
	if err != nil {
		return 0, 0, nil, 0, err
	}
	return typ, seq, payload, off + int64(n), nil
}

// scanWALFile extracts the recovered state and the end of the intact prefix.
func scanWALFile(f *os.File, dir string) (*walRecovered, int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := fi.Size()

	typ, seq, payload, metaEnd, err := readWALRecordAt(f, 0, size)
	if err != nil {
		return nil, 0, fmt.Errorf("fldist: WAL meta record: %w", err)
	}
	if typ != walRecMeta {
		return nil, 0, fmt.Errorf("%w: first record type %d, want meta", ErrWAL, typ)
	}
	meta, err := parseWALMeta(payload)
	if err != nil {
		return nil, 0, err
	}
	st := &walRecovered{meta: meta, lastSeq: seq}

	// The idx pins the oldest in-window commit; trust it only if a commit
	// record actually parses there, otherwise fall back to the full scan.
	scanStart := metaEnd
	if idx, ierr := readWALIdx(dir); ierr == nil && len(idx) > 0 {
		off := idx[0].off
		if off >= metaEnd && off < size {
			if t, _, _, _, rerr := readWALRecordAt(f, off, size); rerr == nil && t == walRecCommit {
				scanStart = off
			}
		}
	}

	end, err := scanWALFrom(f, st, scanStart, size)
	if err != nil {
		return nil, 0, err
	}
	if len(st.commits) == 0 && scanStart != metaEnd {
		// A stale or lying idx pointed past the intact prefix; rescan from
		// the top before declaring the log commitless.
		st.commits, st.admits, st.torn = nil, nil, false
		st.lastSeq = seq
		if end, err = scanWALFrom(f, st, metaEnd, size); err != nil {
			return nil, 0, err
		}
	}
	return st, end, nil
}

// scanWALFrom forward-scans records in [start, size), accumulating into st,
// and returns the offset where the intact prefix ends.
func scanWALFrom(f *os.File, st *walRecovered, start, size int64) (int64, error) {
	buf := make([]byte, size-start)
	if _, err := f.ReadAt(buf, start); err != nil && err != io.EOF {
		return 0, err
	}
	off := start
	rest := buf
	for len(rest) > 0 {
		typ, seq, payload, n, err := parseWALRecord(rest)
		if err != nil {
			// Torn final record (crash mid-append) or trailing corruption:
			// the intact prefix ends here.
			st.torn = true
			break
		}
		switch typ {
		case walRecCommit:
			c, cerr := parseWALCommit(payload)
			if cerr != nil {
				st.torn = true
				return off, nil
			}
			st.commits = append(st.commits, walRecCommitPos{c: c, off: off})
		case walRecAdmit:
			a, aerr := parseWALAdmit(payload)
			if aerr != nil {
				st.torn = true
				return off, nil
			}
			a.seq = seq
			st.admits = append(st.admits, a)
		case walRecMeta, walRecEdgeBatch:
			// A second meta record or an edge record inside a server log is
			// not something this writer produces; stop at it.
			st.torn = true
			return off, nil
		default:
			// Unknown record type from a newer writer: stop, recover the
			// prefix this version understands.
			st.torn = true
			return off, nil
		}
		if seq > st.lastSeq {
			st.lastSeq = seq
		}
		off += int64(n)
		rest = rest[n:]
	}
	return off, nil
}

// openWALForRecovery locks dir, scans the log, truncates any torn tail, and
// returns the log opened for further appends plus the recovered state.
func openWALForRecovery(dir string) (*wal, *walRecovered, error) {
	lf, err := lockWALDir(dir)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walLogName), os.O_RDWR, 0)
	if err != nil {
		lf.Close()
		return nil, nil, err
	}
	st, end, err := scanWALFile(f, dir)
	if err == nil && st.torn {
		err = f.Truncate(end)
	}
	if err == nil {
		_, err = f.Seek(end, io.SeekStart)
	}
	if err != nil {
		f.Close()
		lf.Close()
		return nil, nil, err
	}
	w := newWAL(dir, f, lf, st.meta, WALSyncCommit)
	w.off = end
	w.nextSeq = st.lastSeq + 1
	w.writeSeq = st.lastSeq + 1
	for _, c := range st.commits {
		w.idx = append(w.idx, walIdxEntry{round: c.c.round, off: c.off})
	}
	if len(w.idx) > w.keep {
		w.idx = w.idx[len(w.idx)-w.keep:]
	}
	w.commits.Store(int64(len(st.commits)))
	if n := len(st.commits); n > 0 {
		w.lastRound.Store(int64(st.commits[n-1].c.round))
	}
	return w, st, nil
}

// RecoverServer rebuilds a parameter server from the write-ahead log in dir:
// the model resumes at the last intact commit, buffered-mode admissions
// logged after it re-enter the buffer, and the log stays open for the
// recovered server's own appends. The aggregation mode, commit threshold and
// staleness window come from the log's meta record; opts may tune the
// runtime-only settings (shards, sync policy) but not the aggregation mode.
// It returns ErrWALLocked while another live process holds the log — see
// Handoff for waiting that out.
func RecoverServer(dir string, opts ...ServerOption) (*Server, error) {
	w, st, err := openWALForRecovery(dir)
	if err != nil {
		return nil, err
	}
	s, err := serverFromWAL(w, st, opts)
	if err != nil {
		w.Close()
		return nil, err
	}
	return s, nil
}

// Handoff blocks until the process currently holding the WAL in dir releases
// it (exits, crashes, or closes the server), then recovers and returns the
// server — the live-handoff path: start the successor with Handoff, stop the
// incumbent, and the federation resumes at its last commit with no state
// lost. The flock on wal.lock is the transfer token; the kernel releases it
// on any process death, so a crashed incumbent hands off exactly like a
// graceful one.
func Handoff(ctx context.Context, dir string, opts ...ServerOption) (*Server, error) {
	for {
		s, err := RecoverServer(dir, opts...)
		if !errors.Is(err, ErrWALLocked) {
			return s, err
		}
		if !sleepCtx(ctx, 50*time.Millisecond) {
			return nil, ctx.Err()
		}
	}
}

// serverFromWAL builds the recovered server from scanned state.
func serverFromWAL(w *wal, st *walRecovered, opts []ServerOption) (*Server, error) {
	m := st.meta
	if len(st.commits) == 0 {
		return nil, fmt.Errorf("fldist: WAL in %s has no intact commit record", w.dir)
	}
	var cfg serverConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.walDir != "" {
		return nil, errors.New("fldist: WithWAL is implicit in RecoverServer")
	}
	if cfg.bufferK != 0 || cfg.maxStale != 0 {
		return nil, errors.New("fldist: aggregation mode is fixed by the WAL meta record")
	}
	w.policy = cfg.walSync

	last := st.commits[len(st.commits)-1]
	if len(last.c.params) != m.nParams || len(last.c.bn) != m.nBN {
		return nil, fmt.Errorf("%w: commit shape (%d,%d) does not match meta (%d,%d)",
			ErrWAL, len(last.c.params), len(last.c.bn), m.nParams, m.nBN)
	}
	R := last.c.round

	all := []ServerOption{WithShards(cfg.shards)}
	if m.async {
		all = append(all, WithBufferedAggregation(m.quorumOrK, m.maxStale))
	}
	s := NewServer(last.c.params, last.c.bn, max(m.quorumOrK, 1), all...)
	if cfg.warnf != nil {
		s.warnf = cfg.warnf
	}
	cur := &snapshot{
		round:  R,
		params: append([]float64(nil), last.c.params...),
		bn:     append([]float64(nil), last.c.bn...),
	}
	s.model.Store(cur)

	// Downlink error-feedback residuals of the last commit: the EF chain of
	// each served codec variant continues bit-stably across the restart.
	for _, v := range last.c.downErr {
		if len(v.residual) != m.nParams {
			return nil, fmt.Errorf("%w: variant residual length %d, want %d", ErrWAL, len(v.residual), m.nParams)
		}
		nc, nerr := v.comp.normalize()
		if nerr != nil {
			return nil, fmt.Errorf("%w: variant codec: %v", ErrWAL, nerr)
		}
		s.downErr[nc] = append([]float64(nil), v.residual...)
	}

	// Retained rounds inside the staleness window, so post-recovery raw
	// pushes against an older base still reconstruct. Served codec bodies
	// are not persisted — they are rebuilt on demand: frame-form replay
	// below rebuilds the variants the buffered pushes decoded against
	// (servedBaseForReplay); a stale delta push for a variant nothing
	// rebuilt answers 409 and its client re-pulls — a liveness, not a
	// correctness, cost. docs/ARCHITECTURE.md.
	if m.async {
		for _, cp := range st.commits[:len(st.commits)-1] {
			if cp.c.round >= R-m.maxStale {
				s.history[cp.c.round] = &roundState{
					snap: &snapshot{
						round:  cp.c.round,
						params: append([]float64(nil), cp.c.params...),
						bn:     append([]float64(nil), cp.c.bn...),
					},
					served: map[Compression]*servedModel{},
				}
			}
		}

		// Re-mark the dedup horizon for every in-window admission — committed
		// or not — so a client retrying an already-counted push after the
		// restart is still answered idempotently, never double-counted. Then
		// replay the admissions of the round in flight (admitted after the
		// last commit) into the buffer: delta form as (delta, zero-base)
		// contributions, frame form through the live handler's own decode
		// against the served base rebuilt from the base round's commit record.
		commitAt := make(map[int]*walCommit, len(st.commits))
		for i := range st.commits {
			commitAt[st.commits[i].c.round] = &st.commits[i].c
		}
		zeroP := make([]float64, m.nParams)
		zeroBN := make([]float64, m.nBN)
		for _, a := range st.admits {
			stale := a.admitRound - a.baseRound
			if stale < 0 || stale > m.maxStale || a.admitRound > R {
				return nil, fmt.Errorf("%w: admission (client %d, base %d, at %d) outside window",
					ErrWAL, a.clientID, a.baseRound, a.admitRound)
			}
			if a.baseRound >= R-m.maxStale {
				set := s.admitted[a.baseRound]
				if set == nil {
					set = map[int]bool{}
					s.admitted[a.baseRound] = set
				}
				set[a.clientID] = true
			}
			if a.admitRound != R {
				continue // folded by a later logged commit
			}
			if !(a.effW > 0) || math.IsInf(a.effW, 0) {
				return nil, fmt.Errorf("%w: admission weight %v", ErrWAL, a.effW)
			}
			var buf *updateBuf
			baseP, baseBN := zeroP, zeroBN
			if len(a.frames) > 0 {
				sm, b, err := s.replayFrameAdmit(a, commitAt, m)
				if err != nil {
					return nil, err
				}
				buf, baseP, baseBN = b, sm.params, sm.bn
			} else {
				if len(a.dp) != m.nParams || len(a.db) != m.nBN {
					return nil, fmt.Errorf("%w: admission delta shape (%d,%d), want (%d,%d)",
						ErrWAL, len(a.dp), len(a.db), m.nParams, m.nBN)
				}
				buf = s.bufPool.Get().(*updateBuf)
				copy(buf.params, a.dp)
				copy(buf.bn, a.db)
			}
			s.pendingN++
			s.pendingW += a.effW
			s.pendingBufs = append(s.pendingBufs, buf)
			s.bufferedNow.Add(1)
			s.stalenessHist[stale].Add(1)
			if a.comp {
				s.updatesComp.Add(1)
			} else {
				s.updatesRaw.Add(1)
			}
			for i := range s.shards {
				sh := &s.shards[i]
				sh.add(contrib{clientID: a.clientID, baseRound: a.baseRound, weight: a.effW,
					vals: buf.params[sh.lo:sh.hi], base: baseP[sh.lo:sh.hi]})
			}
			s.bnShard.add(contrib{clientID: a.clientID, baseRound: a.baseRound, weight: a.effW,
				vals: buf.bn, base: baseBN})
		}
		if s.pendingN > 0 {
			//lint:ignore determinism admission age clock paces edge flushes; replayed state is unaffected
			s.oldestAdmit.Store(time.Now().UnixNano())
		}
	}

	w.warnf = s.warn
	s.wal = w

	// A buffer that had already filled when the crash hit (its K-th admission
	// record landed, its commit record did not) commits now — exactly the
	// commit the crashed process was about to write. Frame replay has rebuilt
	// the served variants the buffered pushes decoded against, so the commit
	// also advances their downlink-EF residuals exactly as the dead process
	// would have.
	if s.async && s.pendingN >= s.bufferK {
		s.commitBuffer()
	}
	return s, nil
}

// replayFrameAdmit re-runs the live delta handler's arithmetic on a
// frame-form admission record: stream-decode the logged wire frames, add the
// served base the client pulled (rebuilt if the crash took it), and hand back
// the reconstructed full vectors plus the base they fold against — exactly
// the (vals, base) pair registerAsync saw before the crash.
func (s *Server) replayFrameAdmit(a *walAdmit, commitAt map[int]*walCommit, m walMeta) (*servedModel, *updateBuf, error) {
	br := bytes.NewReader(a.frames)
	var pd quant.StreamDecoder
	if err := pd.Reset(br); err != nil {
		return nil, nil, fmt.Errorf("%w: admit frames (client %d): %v", ErrWAL, a.clientID, err)
	}
	if pd.IsRaw() {
		return nil, nil, fmt.Errorf("%w: frame-form admit carries a raw params frame", ErrWAL)
	}
	comp, err := Compression{Bits: pd.Bits(), Chunk: pd.Chunk()}.normalize()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: admit frames: %v", ErrWAL, err)
	}
	if pd.Len() != m.nParams {
		return nil, nil, fmt.Errorf("%w: admit frames carry %d params, want %d", ErrWAL, pd.Len(), m.nParams)
	}
	sm, err := s.servedBaseForReplay(comp, a.baseRound, commitAt)
	if err != nil {
		return nil, nil, err
	}
	buf := s.bufPool.Get().(*updateBuf)
	fail := func(err error) (*servedModel, *updateBuf, error) {
		s.bufPool.Put(buf)
		return nil, nil, err
	}
	if pd.IsSparse() {
		// Mirror the live handler's sparse branch bit-for-bit: copy the
		// served base whole, then scatter-add the frame's stored values.
		copy(buf.params, sm.params)
		if err := pd.ApplySparse(buf.params); err != nil {
			return fail(fmt.Errorf("%w: admit params frame: %v", ErrWAL, err))
		}
	} else {
		off := 0
		for l := pd.NextLen(); l > 0; l = pd.NextLen() {
			dst := buf.params[off : off+l]
			if err := pd.Next(dst); err != nil {
				return fail(fmt.Errorf("%w: admit params frame: %v", ErrWAL, err))
			}
			base := sm.params[off : off+l]
			for i := range dst {
				dst[i] = dst[i] + base[i] // bit-for-bit the live handler's add
			}
			off += l
		}
	}
	var bd quant.StreamDecoder
	if err := bd.Reset(br); err != nil {
		return fail(fmt.Errorf("%w: admit bn frame: %v", ErrWAL, err))
	}
	if bd.Len() != m.nBN {
		return fail(fmt.Errorf("%w: admit frames carry %d bn values, want %d", ErrWAL, bd.Len(), m.nBN))
	}
	if err := bd.DecodeAll(buf.bn); err != nil {
		return fail(fmt.Errorf("%w: admit bn frame: %v", ErrWAL, err))
	}
	for i := range buf.bn {
		buf.bn[i] = buf.bn[i] + sm.bn[i]
	}
	if br.Len() != 0 {
		return fail(fmt.Errorf("%w: %d trailing bytes after admit frames", ErrWAL, br.Len()))
	}
	return sm, buf, nil
}

// servedBaseForReplay resolves the served codec variant (c, round) a logged
// frame-form admission decoded against. The round in flight builds (and
// publishes) through getServed — the same call the live pull path made, from
// the same restored entry residuals. A retained older round rebuilds from its
// commit record: the snapshot plus the variant's entry residual are exactly
// buildServed's inputs at the time, and buildServed is byte-deterministic, so
// the rebuilt base is bit-identical to the one the dead process served. The
// rebuilt variant is published into the round's history, where later
// admissions of the same variant — and post-recovery stale pushes at these
// codec parameters — find it like the live server's clients did.
func (s *Server) servedBaseForReplay(c Compression, round int, commitAt map[int]*walCommit) (*servedModel, error) {
	if round == s.model.Load().round {
		sm, err := s.getServed(c, round)
		if err != nil {
			return nil, fmt.Errorf("fldist: WAL replay: %w", err)
		}
		return sm, nil
	}
	rs := s.history[round]
	cp := commitAt[round]
	if rs == nil || cp == nil {
		return nil, fmt.Errorf("%w: no retained commit for admitted base round %d", ErrWAL, round)
	}
	if sm := rs.served[c]; sm != nil {
		return sm, nil
	}
	var prevErr []float64
	for _, v := range cp.downErr {
		if nc, err := v.comp.normalize(); err == nil && nc == c {
			prevErr = v.residual
			break
		}
	}
	sm := s.buildServed(rs.snap, prevErr, c)
	rs.served[c] = sm
	return sm, nil
}
