package fl

import (
	"math/rand"

	"fedprophet/internal/attack"
	"fedprophet/internal/data"
	"fedprophet/internal/nn"
)

// Evaluate measures the paper's three evaluation metrics on a trained model:
// clean accuracy, robust accuracy under PGD-EvalPGD, and robust accuracy
// under the AutoAttack surrogate, all at ε = cfg.Eps in ℓ∞.
func Evaluate(model nn.Layer, test *data.Dataset, cfg Config, rng *rand.Rand) (clean, pgd, aa float64) {
	clean = attack.CleanAccuracy(model, test, cfg.EvalBatch)
	pgd = attack.AdvAccuracy(model, test, cfg.EvalBatch, attack.PGDConfig(cfg.Eps, cfg.EvalPGD), rng)
	aa = attack.AutoAttackAccuracy(model, test, cfg.EvalBatch, cfg.Eps, cfg.EvalAASteps, rng)
	return clean, pgd, aa
}

// SampleDataset draws a random subsample of at most n items; used for cheap
// per-round validation during training.
func SampleDataset(ds *data.Dataset, n int, rng *rand.Rand) *data.Dataset {
	if n >= ds.Len() {
		return ds
	}
	idx := rng.Perm(ds.Len())[:n]
	out := &data.Dataset{Name: ds.Name + "-sample", InShape: ds.InShape, NumClasses: ds.NumClasses}
	for _, i := range idx {
		out.X = append(out.X, ds.X[i])
		out.Y = append(out.Y, ds.Y[i])
	}
	return out
}
