package fl

import (
	"fedprophet/internal/attack"
)

// Attack builds the input-space attack configuration used during local
// adversarial training. Implementations translate the experiment's (ε,
// step-budget) pair into a concrete attack; the default is the paper's
// ℓ∞ PGD.
type Attack interface {
	Name() string
	// Config returns the attack configuration for budget eps and the
	// method's configured step count.
	Config(eps float64, steps int) attack.Config
}

// PGDAttack is the paper's training attack: ℓ∞ PGD with the standard
// step-size schedule.
type PGDAttack struct{}

// Name identifies the attack.
func (PGDAttack) Name() string { return "pgd" }

// Config builds the PGD configuration.
func (PGDAttack) Config(eps float64, steps int) attack.Config {
	return attack.PGDConfig(eps, steps)
}

// FGSMAttack is single-step FGSM: one full-ε signed-gradient step. The
// steps argument is ignored beyond enabling the attack.
type FGSMAttack struct{}

// Name identifies the attack.
func (FGSMAttack) Name() string { return "fgsm" }

// Config builds the FGSM configuration.
func (FGSMAttack) Config(eps float64, _ int) attack.Config {
	return attack.Config{Eps: eps, StepSize: eps, Steps: 1, Norm: attack.LInf, ClampMin: 0, ClampMax: 1}
}

// NoAttack disables adversarial training entirely (standard FedAvg-style
// local SGD), whatever the configured PGD step count.
type NoAttack struct{}

// Name identifies the attack.
func (NoAttack) Name() string { return "none" }

// Config returns the zero configuration, which trainers interpret as
// "no perturbation".
func (NoAttack) Config(float64, int) attack.Config { return attack.Config{} }

// TrainAttackConfig resolves the local-training attack for the given step
// budget through the pluggable Attack, defaulting to PGD. steps ≤ 0 yields
// the zero config (standard training).
func (e *Env) TrainAttackConfig(steps int) attack.Config {
	if steps <= 0 {
		return attack.Config{}
	}
	a := e.TrainAttack
	if a == nil {
		a = PGDAttack{}
	}
	return a.Config(e.Cfg.Eps, steps)
}
