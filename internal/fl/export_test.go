package fl

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"fedprophet/internal/simlat"
)

func sampleResult() *Result {
	return &Result{
		Method:   "FedProphet",
		CleanAcc: 0.77, PGDAcc: 0.55, AAAcc: 0.52,
		Latency: simlat.Latency{Compute: 0.5, DataAccess: 0.1},
		History: []RoundMetrics{
			{Round: 0, Module: 0, Loss: 2.1, Latency: simlat.Latency{Compute: 0.2}, PerDimPert: 0.031},
			{Round: 1, Module: 1, Loss: 1.7, Latency: simlat.Latency{Compute: 0.3, DataAccess: 0.1}, PerDimPert: 0.04},
		},
		Extra: map[string]float64{"modules": 8, "comm_up_bytes": 1024},
	}
}

func TestWriteHistoryCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHistoryCSV(&buf, sampleResult()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want header + 2", len(rows))
	}
	if rows[0][0] != "round" || rows[0][6] != "pert_per_dim" {
		t.Fatalf("bad header %v", rows[0])
	}
	if rows[2][1] != "2" { // module is 1-indexed in the export
		t.Fatalf("module column wrong: %v", rows[2])
	}
	if rows[2][5] != "0.400000" {
		t.Fatalf("total latency wrong: %v", rows[2])
	}
}

func TestWriteSummaryCSV(t *testing.T) {
	var buf bytes.Buffer
	other := sampleResult()
	other.Method = "jFAT"
	other.Extra = map[string]float64{"mem_full_bytes": 100}
	if err := WriteSummaryCSV(&buf, []*Result{sampleResult(), other}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	rows, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Union of Extra keys, sorted: comm_up_bytes, mem_full_bytes, modules.
	if rows[0][6] != "comm_up_bytes" || rows[0][7] != "mem_full_bytes" || rows[0][8] != "modules" {
		t.Fatalf("extra columns wrong: %v", rows[0])
	}
	if rows[1][0] != "FedProphet" || rows[2][0] != "jFAT" {
		t.Fatalf("method order wrong: %v %v", rows[1][0], rows[2][0])
	}
	// Missing Extra values render as zero.
	if rows[2][8] != "0" {
		t.Fatalf("missing extra should be 0, got %v", rows[2][8])
	}
}
