package fl

import (
	"context"
	"math/rand"
	"sync"
)

// RoundSeeds draws one child seed per sampled client from the round RNG.
// Drawing all seeds up front (instead of letting clients consume the shared
// stream) is what makes parallel client execution bit-identical to
// sequential execution: the parent stream advances the same way regardless
// of worker count, and each client derives everything it randomizes —
// batch order, attack starts, sub-model picks — from its own seed.
func RoundSeeds(rng *rand.Rand, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	return seeds
}

// ForEachClient runs fn(slot, i, rng) for every client index i in [0, n)
// on a bounded pool of min(workers, n) goroutines. slot identifies the
// worker in [0, workers) so callers can hand each worker its own model
// replica; rng is a fresh generator seeded with seeds[i].
//
// fn must be deterministic given (i, rng) and must not depend on which slot
// or in which order it runs: results should be written into caller-owned
// storage indexed by i, and aggregated by the caller in index order after
// ForEachClient returns. Under that discipline a seeded round is
// bit-identical at any worker count.
//
// When ctx is canceled, no further clients are dispatched; ForEachClient
// waits for in-flight clients and returns ctx's error. The caller must then
// discard the round (some clients never ran).
func ForEachClient(ctx context.Context, workers, n int, seeds []int64, fn func(slot, i int, rng *rand.Rand)) error {
	if len(seeds) != n {
		panic("fl: ForEachClient needs exactly one seed per client")
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(0, i, rand.New(rand.NewSource(seeds[i])))
		}
		return nil
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := range jobs {
				fn(slot, i, rand.New(rand.NewSource(seeds[i])))
			}
		}(s)
	}
	var err error
	for i := 0; i < n; i++ {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return err
}
