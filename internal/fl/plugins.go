package fl

import (
	"math/rand"
	"sort"
)

// ClientSampler selects which clients participate in a round.
type ClientSampler interface {
	Name() string
	// Sample returns clientsPerRound distinct indices in [0, numClients).
	Sample(numClients, clientsPerRound int, rng *rand.Rand) []int
}

// UniformSampler is the paper's sampler: a uniform draw without
// replacement.
type UniformSampler struct{}

// Name identifies the sampler.
func (UniformSampler) Name() string { return "uniform" }

// Sample draws clientsPerRound distinct clients uniformly.
func (UniformSampler) Sample(n, c int, rng *rand.Rand) []int {
	return SampleClients(n, c, rng)
}

// RoundRobinSampler cycles deterministically through the fleet, giving
// every client the same participation count over time; useful for coverage
// experiments and debugging.
type RoundRobinSampler struct {
	next int
}

// Name identifies the sampler.
func (s *RoundRobinSampler) Name() string { return "round-robin" }

// Sample returns the next clientsPerRound clients in cyclic order.
func (s *RoundRobinSampler) Sample(n, c int, _ *rand.Rand) []int {
	if c > n {
		c = n
	}
	out := make([]int, c)
	for i := range out {
		out[i] = s.next % n
		s.next++
	}
	return out
}

// Aggregator combines the parameter vectors uploaded by a round's clients
// into the next global model.
type Aggregator interface {
	Name() string
	// Aggregate combines vecs with the given non-negative client weights.
	Aggregate(vecs [][]float64, weights []float64) []float64
}

// FedAvg is the paper's aggregator: data-size weighted averaging (Eq. 1).
type FedAvg struct{}

// Name identifies the aggregator.
func (FedAvg) Name() string { return "fedavg" }

// Aggregate computes the weighted average of the client vectors.
func (FedAvg) Aggregate(vecs [][]float64, weights []float64) []float64 {
	return WeightedAverage(vecs, weights)
}

// TrimmedMean is a Byzantine-robust aggregator: per coordinate it discards
// the ⌊Frac·k⌋ smallest and largest client values and averages the rest
// (unweighted — trimming and data-size weighting do not compose cleanly).
// With Frac = 0 it degenerates to the unweighted mean.
type TrimmedMean struct {
	Frac float64 // fraction trimmed from EACH end, in [0, 0.5)
}

// Name identifies the aggregator.
func (t TrimmedMean) Name() string { return "trimmed-mean" }

// Aggregate computes the coordinate-wise trimmed mean.
func (t TrimmedMean) Aggregate(vecs [][]float64, _ []float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	k := len(vecs)
	drop := int(t.Frac * float64(k))
	if drop < 0 {
		drop = 0
	}
	if 2*drop >= k {
		drop = (k - 1) / 2
	}
	n := len(vecs[0])
	out := make([]float64, n)
	col := make([]float64, k)
	for j := 0; j < n; j++ {
		for i, v := range vecs {
			col[i] = v[j]
		}
		sort.Float64s(col)
		sum := 0.0
		for i := drop; i < k-drop; i++ {
			sum += col[i]
		}
		out[j] = sum / float64(k-2*drop)
	}
	return out
}
