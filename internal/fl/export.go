package fl

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteHistoryCSV exports a result's per-round telemetry as CSV
// (round, module, loss, compute/data-access/total latency, per-dim ε) —
// the raw series behind Figures 7 and 10, ready for external plotting.
func WriteHistoryCSV(w io.Writer, res *Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"round", "module", "loss", "compute_s", "data_access_s", "total_s", "pert_per_dim",
	}); err != nil {
		return err
	}
	for _, h := range res.History {
		rec := []string{
			fmt.Sprintf("%d", h.Round),
			fmt.Sprintf("%d", h.Module+1),
			fmt.Sprintf("%.6f", h.Loss),
			fmt.Sprintf("%.6f", h.Latency.Compute),
			fmt.Sprintf("%.6f", h.Latency.DataAccess),
			fmt.Sprintf("%.6f", h.Latency.Total()),
			fmt.Sprintf("%.6f", h.PerDimPert),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSummaryCSV exports the headline metrics of several results
// (one row per method), including every Extra key in sorted order.
func WriteSummaryCSV(w io.Writer, results []*Result) error {
	keys := map[string]bool{}
	for _, r := range results {
		for k := range r.Extra {
			keys[k] = true
		}
	}
	extraKeys := make([]string, 0, len(keys))
	for k := range keys {
		extraKeys = append(extraKeys, k)
	}
	sort.Strings(extraKeys)

	cw := csv.NewWriter(w)
	header := append([]string{
		"method", "clean_acc", "pgd_acc", "aa_acc", "compute_s", "data_access_s",
	}, extraKeys...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.Method,
			fmt.Sprintf("%.4f", r.CleanAcc),
			fmt.Sprintf("%.4f", r.PGDAcc),
			fmt.Sprintf("%.4f", r.AAAcc),
			fmt.Sprintf("%.6f", r.Latency.Compute),
			fmt.Sprintf("%.6f", r.Latency.DataAccess),
		}
		for _, k := range extraKeys {
			rec = append(rec, fmt.Sprintf("%.6g", r.Extra[k]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
