package fl

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"fedprophet/internal/nn"
)

// MethodParams carries everything a registered method factory may need to
// instantiate itself for a workload: the model builders plus the
// coordinator hyperparameters that are not part of the shared Config.
// Packages fill only the fields their methods consume.
type MethodParams struct {
	// BuildLarge constructs the workload's large backbone (VGG16-S /
	// ResNet34-S in the paper); used by jFAT, the partial-training family,
	// FedRBN and FedProphet.
	BuildLarge func(*rand.Rand) *nn.Model
	// BuildSmall constructs the workload's small model (Table 1).
	BuildSmall func(*rand.Rand) *nn.Model
	// KDGroup is the architecture family of the knowledge-distillation
	// baselines, ordered small → large.
	KDGroup []func(*rand.Rand) *nn.Model
	// DistillIters is the KD baselines' server-side distillation budget.
	DistillIters int

	// FedProphet coordinator knobs (§6, Table 3).
	RminFrac        float64
	RoundsPerModule int
	Patience        int
	Mu              float64
	AlphaInit       float64
	DeltaAlpha      float64
	GammaThresh     float64
	UseAPA          bool
	UseDMA          bool
	FeaturePGDSteps int
	ValSize         int
	ValPGD          int
	UploadBits      int
	// UploadChunk, when > 0, switches upload quantization from one scale
	// per vector to one scale per chunk of UploadChunk values (the wire
	// codec's form; see internal/quant.QuantizeChunks).
	UploadChunk int
}

// MethodFactory instantiates a Method for one workload's parameters.
type MethodFactory func(MethodParams) Method

var methodRegistry = struct {
	sync.RWMutex
	factories map[string]MethodFactory
}{factories: map[string]MethodFactory{}}

// RegisterMethod adds a named method factory to the global registry.
// Training packages self-register from init; registering the same name
// twice panics to surface wiring mistakes early.
func RegisterMethod(name string, factory MethodFactory) {
	if name == "" || factory == nil {
		panic("fl: RegisterMethod needs a name and a factory")
	}
	methodRegistry.Lock()
	defer methodRegistry.Unlock()
	if _, dup := methodRegistry.factories[name]; dup {
		panic(fmt.Sprintf("fl: method %q registered twice", name))
	}
	methodRegistry.factories[name] = factory
}

// NewMethod instantiates a registered method by name.
func NewMethod(name string, p MethodParams) (Method, error) {
	methodRegistry.RLock()
	factory := methodRegistry.factories[name]
	methodRegistry.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("fl: unknown method %q (registered: %v)", name, MethodNames())
	}
	return factory(p), nil
}

// MethodNames lists the registered methods in sorted order.
func MethodNames() []string {
	methodRegistry.RLock()
	defer methodRegistry.RUnlock()
	names := make([]string, 0, len(methodRegistry.factories))
	for n := range methodRegistry.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HasMethod reports whether name is registered.
func HasMethod(name string) bool {
	methodRegistry.RLock()
	defer methodRegistry.RUnlock()
	_, ok := methodRegistry.factories[name]
	return ok
}
