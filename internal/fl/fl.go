// Package fl provides the federated-learning core shared by FedProphet and
// every baseline: the experiment environment (federated data split, device
// fleet, hyperparameters), client sampling, weighted parameter aggregation
// (FedAvg), and the Method/Result types the experiment harness consumes.
package fl

import (
	"math/rand"

	"fedprophet/internal/data"
	"fedprophet/internal/device"
	"fedprophet/internal/simlat"
)

// Config carries the training hyperparameters of §7.1 / Appendix B.4.
type Config struct {
	NumClients      int     // N
	ClientsPerRound int     // C
	Rounds          int     // total communication rounds
	LocalIters      int     // E local SGD iterations per round
	Batch           int     // B
	LR              float64 // η0
	LRDecay         float64 // γ, ηt = γ^t·η0
	Momentum        float64
	WeightDecay     float64

	// Adversarial training / evaluation.
	Eps         float64 // ε0 = 8/255
	TrainPGD    int     // PGD-n during training (10 in the paper)
	EvalPGD     int     // PGD-n at evaluation (20 in the paper)
	EvalAASteps int     // steps for the AutoAttack surrogate
	EvalBatch   int
	Seed        int64
}

// DefaultConfig returns the paper's hyperparameters scaled to the synthetic
// workloads (learning rate raised for the narrower models; round counts are
// set per experiment).
func DefaultConfig() Config {
	return Config{
		NumClients:      100,
		ClientsPerRound: 10,
		Rounds:          40,
		LocalIters:      30,
		Batch:           16,
		LR:              0.02,
		LRDecay:         0.994,
		Momentum:        0.9,
		WeightDecay:     1e-4,
		Eps:             8.0 / 255,
		TrainPGD:        10,
		EvalPGD:         20,
		EvalAASteps:     20,
		EvalBatch:       32,
		Seed:            1,
	}
}

// Env is the full experimental environment handed to a Method.
type Env struct {
	Train   *data.Dataset
	Subsets []*data.Subset // per-client local data
	Val     *data.Dataset  // server-side validation (APA monitoring)
	Test    *data.Dataset
	Public  *data.Dataset // public distillation set for the KD baselines
	Fleet   *device.Fleet
	Cfg     Config
	Rng     *rand.Rand
}

// RoundMetrics records the per-round telemetry used by Figures 7 and 10.
type RoundMetrics struct {
	Round      int
	Loss       float64
	Latency    simlat.Latency
	PerDimPert float64 // ε per input dimension of the module under training (Fig. 10)
	Module     int     // module index under training (FedProphet)
}

// Result is what a Method reports after training.
type Result struct {
	Method   string
	CleanAcc float64
	PGDAcc   float64
	AAAcc    float64
	Latency  simlat.Latency // accumulated synchronous round latency
	History  []RoundMetrics
	Extra    map[string]float64
}

// Method is a federated training algorithm.
type Method interface {
	Name() string
	Run(env *Env) *Result
}

// SampleClients draws c distinct client indices out of n.
func SampleClients(n, c int, rng *rand.Rand) []int {
	if c > n {
		c = n
	}
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:c]...)
	return out
}

// WeightedAverage aggregates parameter vectors with the given non-negative
// weights (FedAvg, Eq. 1): result = Σ qk·vk / Σ qk.
func WeightedAverage(vecs [][]float64, weights []float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	if len(vecs) != len(weights) {
		panic("fl: vectors and weights length mismatch")
	}
	n := len(vecs[0])
	out := make([]float64, n)
	total := 0.0
	for k, v := range vecs {
		if len(v) != n {
			panic("fl: inconsistent vector lengths")
		}
		w := weights[k]
		if w < 0 {
			panic("fl: negative weight")
		}
		total += w
		for i, x := range v {
			out[i] += w * x
		}
	}
	if total == 0 {
		return out
	}
	inv := 1.0 / total
	for i := range out {
		out[i] *= inv
	}
	return out
}

// SubsetWeights returns the FedAvg data-size weights qk for the selected
// clients.
func SubsetWeights(subsets []*data.Subset, selected []int) []float64 {
	w := make([]float64, len(selected))
	for i, k := range selected {
		w[i] = float64(subsets[k].Len())
	}
	return w
}
