// Package fl provides the federated-learning core shared by FedProphet and
// every baseline: the experiment environment (federated data split, device
// fleet, hyperparameters), client sampling, weighted parameter aggregation
// (FedAvg), the Method/Result training contract, the method registry, and
// the bounded worker pool that trains a round's clients concurrently.
//
// The package is deterministic: sampling and per-client training randomness
// flow from explicit per-round seeds, never the global rand source, so a run
// is reproducible from its seed regardless of worker count or scheduling.
//
//lint:deterministic
package fl

import (
	"context"
	"fmt"
	"math/rand"

	"fedprophet/internal/data"
	"fedprophet/internal/device"
	"fedprophet/internal/nn"
	"fedprophet/internal/simlat"
)

// Config carries the training hyperparameters of §7.1 / Appendix B.4.
type Config struct {
	NumClients      int     // N
	ClientsPerRound int     // C
	Rounds          int     // total communication rounds
	LocalIters      int     // E local SGD iterations per round
	Batch           int     // B
	LR              float64 // η0
	LRDecay         float64 // γ, ηt = γ^t·η0
	Momentum        float64
	WeightDecay     float64

	// Adversarial training / evaluation.
	Eps         float64 // ε0 = 8/255
	TrainPGD    int     // PGD-n during training (10 in the paper)
	EvalPGD     int     // PGD-n at evaluation (20 in the paper)
	EvalAASteps int     // steps for the AutoAttack surrogate
	EvalBatch   int
	Seed        int64
}

// DefaultConfig returns the paper's hyperparameters scaled to the synthetic
// workloads (learning rate raised for the narrower models; round counts are
// set per experiment).
func DefaultConfig() Config {
	return Config{
		NumClients:      100,
		ClientsPerRound: 10,
		Rounds:          40,
		LocalIters:      30,
		Batch:           16,
		LR:              0.02,
		LRDecay:         0.994,
		Momentum:        0.9,
		WeightDecay:     1e-4,
		Eps:             8.0 / 255,
		TrainPGD:        10,
		EvalPGD:         20,
		EvalAASteps:     20,
		EvalBatch:       32,
		Seed:            1,
	}
}

// Env is the full experimental environment handed to a Method. The
// execution-substrate fields are optional; their zero values reproduce the
// paper's behaviour (sequential clients, uniform sampling, FedAvg, PGD).
type Env struct {
	Train   *data.Dataset
	Subsets []*data.Subset // per-client local data
	Val     *data.Dataset  // server-side validation (APA monitoring)
	Test    *data.Dataset
	Public  *data.Dataset // public distillation set for the KD baselines
	Fleet   *device.Fleet
	Cfg     Config
	Rng     *rand.Rand

	// Parallelism bounds the worker pool that trains a round's sampled
	// clients concurrently. Values ≤ 1 train sequentially. For a fixed seed
	// the result is bit-identical at any parallelism level: every client
	// trains from its own deterministically derived RNG and updates are
	// aggregated in sampling order.
	Parallelism int
	// Hook streams each round's telemetry as it completes, in addition to
	// the accumulated Result.History. It is called synchronously from the
	// training loop, so long runs can be observed (and aborted via context)
	// mid-flight.
	Hook func(RoundMetrics)
	// Sampler overrides uniform client sampling.
	Sampler ClientSampler
	// Aggregator overrides FedAvg weighted averaging.
	Aggregator Aggregator
	// TrainAttack overrides the PGD attack used during local adversarial
	// training.
	TrainAttack Attack
}

// Workers returns the effective client-training worker count.
func (e *Env) Workers() int {
	if e.Parallelism < 1 {
		return 1
	}
	return e.Parallelism
}

// ClientWorkers returns Workers() capped at the round cohort size: extra
// workers could never be scheduled, so callers avoid building model
// replicas for them.
func (e *Env) ClientWorkers() int {
	w := e.Workers()
	if c := e.Cfg.ClientsPerRound; c > 0 && w > c {
		w = c
	}
	return w
}

// Sample draws this round's client cohort with the configured sampler.
func (e *Env) Sample(rng *rand.Rand) []int {
	if e.Sampler != nil {
		return e.Sampler.Sample(e.Cfg.NumClients, e.Cfg.ClientsPerRound, rng)
	}
	return SampleClients(e.Cfg.NumClients, e.Cfg.ClientsPerRound, rng)
}

// Aggregate combines client parameter vectors with the configured
// aggregator (FedAvg weighted averaging by default).
func (e *Env) Aggregate(vecs [][]float64, weights []float64) []float64 {
	if e.Aggregator != nil {
		return e.Aggregator.Aggregate(vecs, weights)
	}
	return WeightedAverage(vecs, weights)
}

// Record appends one round of telemetry to the result history and streams
// it to the Hook, if any.
func (e *Env) Record(res *Result, m RoundMetrics) {
	res.History = append(res.History, m)
	if e.Hook != nil {
		e.Hook(m)
	}
}

// RoundMetrics records the per-round telemetry used by Figures 7 and 10.
type RoundMetrics struct {
	Round      int
	Loss       float64
	Latency    simlat.Latency
	PerDimPert float64 // ε per input dimension of the module under training (Fig. 10)
	Module     int     // module index under training (FedProphet)
}

// Result is what a Method reports after training.
type Result struct {
	Method   string
	CleanAcc float64
	PGDAcc   float64
	AAAcc    float64
	Latency  simlat.Latency // accumulated synchronous round latency
	History  []RoundMetrics
	Extra    map[string]float64
	// Model is the trained global model (nil when the run was canceled
	// before any aggregation finished).
	Model nn.Layer
}

// Method is a federated training algorithm. Run trains until the configured
// round budget is exhausted or ctx is canceled; on cancellation it returns
// the partial result accumulated so far together with an error wrapping
// ctx.Err() (see PartialProgress).
type Method interface {
	Name() string
	Run(ctx context.Context, env *Env) (*Result, error)
}

// PartialProgress wraps a cancellation error with how far training got; the
// accompanying Result carries the telemetry of the completed rounds.
func PartialProgress(err error, completedRounds int) error {
	return fmt.Errorf("fl: run canceled after %d completed rounds: %w", completedRounds, err)
}

// SampleClients draws c distinct client indices out of n.
func SampleClients(n, c int, rng *rand.Rand) []int {
	if c > n {
		c = n
	}
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:c]...)
	return out
}

// WeightedAverage aggregates parameter vectors with the given non-negative
// weights (FedAvg, Eq. 1): result = Σ qk·vk / Σ qk.
func WeightedAverage(vecs [][]float64, weights []float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	if len(vecs) != len(weights) {
		panic("fl: vectors and weights length mismatch")
	}
	n := len(vecs[0])
	out := make([]float64, n)
	total := 0.0
	for k, v := range vecs {
		if len(v) != n {
			panic("fl: inconsistent vector lengths")
		}
		w := weights[k]
		if w < 0 {
			panic("fl: negative weight")
		}
		total += w
		for i, x := range v {
			out[i] += w * x
		}
	}
	if total == 0 {
		return out
	}
	inv := 1.0 / total
	for i := range out {
		out[i] *= inv
	}
	return out
}

// SubsetWeights returns the FedAvg data-size weights qk for the selected
// clients.
func SubsetWeights(subsets []*data.Subset, selected []int) []float64 {
	w := make([]float64, len(selected))
	for i, k := range selected {
		w[i] = float64(subsets[k].Len())
	}
	return w
}
