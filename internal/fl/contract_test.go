package fl

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestRoundSeedsAdvanceParentIdentically(t *testing.T) {
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	s1 := RoundSeeds(r1, 7)
	s2 := RoundSeeds(r2, 7)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("seed derivation must be deterministic")
		}
	}
	if r1.Int63() != r2.Int63() {
		t.Fatal("parent streams must stay in lock-step")
	}
}

func TestForEachClientDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []float64 {
		rng := rand.New(rand.NewSource(9))
		seeds := RoundSeeds(rng, 16)
		out := make([]float64, 16)
		err := ForEachClient(context.Background(), workers, 16, seeds, func(slot, i int, crng *rand.Rand) {
			v := 0.0
			for j := 0; j < 100; j++ {
				v += crng.NormFloat64()
			}
			out[i] = v
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	for _, w := range []int{2, 4, 16, 32} {
		par := run(w)
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: client %d diverged", w, i)
			}
		}
	}
}

func TestForEachClientSlotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seeds := RoundSeeds(rng, 10)
	var maxSlot int64 = -1
	err := ForEachClient(context.Background(), 3, 10, seeds, func(slot, i int, _ *rand.Rand) {
		for {
			old := atomic.LoadInt64(&maxSlot)
			if int64(slot) <= old || atomic.CompareAndSwapInt64(&maxSlot, old, int64(slot)) {
				break
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&maxSlot); got >= 3 {
		t.Fatalf("slot %d out of worker bound 3", got)
	}
}

func TestForEachClientCancellationStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rng := rand.New(rand.NewSource(2))
	const n = 64
	seeds := RoundSeeds(rng, n)
	var ran int64
	err := ForEachClient(ctx, 2, n, seeds, func(slot, i int, _ *rand.Rand) {
		if atomic.AddInt64(&ran, 1) == 3 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("canceled pool must report the context error")
	}
	if atomic.LoadInt64(&ran) >= n {
		t.Fatal("cancellation must stop dispatching clients")
	}
}

func TestTrimmedMeanDropsOutliers(t *testing.T) {
	vecs := [][]float64{{1}, {2}, {3}, {1000}, {-1000}}
	got := TrimmedMean{Frac: 0.2}.Aggregate(vecs, nil)
	if got[0] != 2 {
		t.Fatalf("trimmed mean = %v, want 2 (outliers dropped)", got[0])
	}
}

func TestTrimmedMeanZeroFracIsMean(t *testing.T) {
	vecs := [][]float64{{1, 4}, {3, 8}}
	got := TrimmedMean{}.Aggregate(vecs, nil)
	if got[0] != 2 || got[1] != 6 {
		t.Fatalf("got %v, want unweighted mean [2 6]", got)
	}
}

func TestRoundRobinSamplerCoversFleet(t *testing.T) {
	s := &RoundRobinSampler{}
	seen := map[int]int{}
	for round := 0; round < 4; round++ {
		for _, k := range s.Sample(8, 2, nil) {
			seen[k]++
		}
	}
	if len(seen) != 8 {
		t.Fatalf("round-robin covered %d of 8 clients", len(seen))
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("client %d sampled %d times, want exactly 1", k, c)
		}
	}
}

func TestRegistryRegisterAndResolve(t *testing.T) {
	name := "test-only-method"
	if HasMethod(name) {
		t.Skip("already registered by a previous run")
	}
	RegisterMethod(name, func(p MethodParams) Method { return nil })
	if !HasMethod(name) {
		t.Fatal("registered method not found")
	}
	found := false
	for _, n := range MethodNames() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatal("registered method missing from MethodNames")
	}
	if _, err := NewMethod("definitely-not-registered", MethodParams{}); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestEnvDefaultsMatchPaperBehaviour(t *testing.T) {
	e := &Env{Cfg: Config{NumClients: 10, ClientsPerRound: 4, Eps: 0.1}}
	if e.Workers() != 1 {
		t.Fatal("zero parallelism must mean sequential")
	}
	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	a := e.Sample(rng1)
	b := SampleClients(10, 4, rng2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("default sampler must be the uniform paper sampler")
		}
	}
	vecs := [][]float64{{2}, {4}}
	if e.Aggregate(vecs, []float64{1, 1})[0] != 3 {
		t.Fatal("default aggregator must be FedAvg")
	}
	atk := e.TrainAttackConfig(5)
	if atk.Steps != 5 || atk.Eps != 0.1 {
		t.Fatalf("default attack must be PGD with the configured budget, got %+v", atk)
	}
	if e.TrainAttackConfig(0).Steps != 0 {
		t.Fatal("zero steps must disable the attack")
	}
}
