package fl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedprophet/internal/data"
)

func TestSampleClientsDistinctAndInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(100)
		c := 1 + r.Intn(n)
		s := SampleClients(n, c, rng)
		if len(s) != c {
			return false
		}
		seen := map[int]bool{}
		for _, k := range s {
			if k < 0 || k >= n || seen[k] {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleClientsClampsToN(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := SampleClients(3, 10, rng)
	if len(s) != 3 {
		t.Fatalf("got %d clients, want 3", len(s))
	}
}

func TestWeightedAverageExact(t *testing.T) {
	vecs := [][]float64{{1, 2}, {3, 6}}
	w := []float64{1, 3}
	got := WeightedAverage(vecs, w)
	if math.Abs(got[0]-2.5) > 1e-12 || math.Abs(got[1]-5) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestWeightedAverageEqualWeightsIsMean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(5)
		n := 1 + r.Intn(8)
		vecs := make([][]float64, k)
		weights := make([]float64, k)
		for i := range vecs {
			vecs[i] = make([]float64, n)
			for j := range vecs[i] {
				vecs[i][j] = r.NormFloat64()
			}
			weights[i] = 1
		}
		got := WeightedAverage(vecs, weights)
		for j := 0; j < n; j++ {
			mean := 0.0
			for i := 0; i < k; i++ {
				mean += vecs[i][j]
			}
			mean /= float64(k)
			if math.Abs(got[j]-mean) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: FedAvg is affine-equivariant — averaging a·v+b equals
// a·average(v)+b.
func TestWeightedAverageAffineEquivariance(t *testing.T) {
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e3 ||
			math.IsNaN(b) || math.IsInf(b, 0) || math.Abs(b) > 1e3 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		n := 1 + r.Intn(6)
		vecs := make([][]float64, k)
		tv := make([][]float64, k)
		weights := make([]float64, k)
		for i := range vecs {
			vecs[i] = make([]float64, n)
			tv[i] = make([]float64, n)
			for j := range vecs[i] {
				vecs[i][j] = r.NormFloat64()
				tv[i][j] = a*vecs[i][j] + b
			}
			weights[i] = r.Float64() + 0.1
		}
		base := WeightedAverage(vecs, weights)
		trans := WeightedAverage(tv, weights)
		for j := range base {
			want := a*base[j] + b
			if math.Abs(trans[j]-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedAverageZeroWeightIgnored(t *testing.T) {
	vecs := [][]float64{{1, 1}, {100, 100}}
	got := WeightedAverage(vecs, []float64{1, 0})
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("zero-weight vector leaked: %v", got)
	}
}

func TestSubsetWeights(t *testing.T) {
	parent := &data.Dataset{Y: []int{0, 0, 0, 0, 0}, NumClasses: 1}
	subs := []*data.Subset{
		{Parent: parent, Indices: []int{0, 1}},
		{Parent: parent, Indices: []int{2}},
		{Parent: parent, Indices: []int{3, 4}},
	}
	w := SubsetWeights(subs, []int{0, 2})
	if w[0] != 2 || w[1] != 2 {
		t.Fatalf("weights %v", w)
	}
}

func TestDefaultConfigMatchesPaperConstants(t *testing.T) {
	c := DefaultConfig()
	if c.NumClients != 100 || c.ClientsPerRound != 10 || c.LocalIters != 30 {
		t.Fatalf("N/C/E = %d/%d/%d, want 100/10/30", c.NumClients, c.ClientsPerRound, c.LocalIters)
	}
	if math.Abs(c.Eps-8.0/255) > 1e-12 {
		t.Fatalf("eps = %v, want 8/255", c.Eps)
	}
	if c.TrainPGD != 10 || c.EvalPGD != 20 {
		t.Fatalf("PGD train/eval = %d/%d, want 10/20", c.TrainPGD, c.EvalPGD)
	}
}
