package tensor

import (
	"math/rand"
	"testing"
)

// naiveIm2Col is an index-arithmetic-free reference: walk every output
// position and kernel tap, reading through At with explicit bounds checks.
func naiveIm2Col(x *Tensor, k, stride, pad int) *Tensor {
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := ConvOutDims(h, w, k, stride, pad)
	col := New(c*k*k, oh*ow)
	for ic := 0; ic < c; ic++ {
		for kh := 0; kh < k; kh++ {
			for kw := 0; kw < k; kw++ {
				r := (ic*k+kh)*k + kw
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						iy, ix := oy*stride+kh-pad, ox*stride+kw-pad
						v := 0.0
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							v = x.At(ic, iy, ix)
						}
						col.Set(v, r, oy*ow+ox)
					}
				}
			}
		}
	}
	return col
}

var convCases = []struct{ c, h, w, k, stride, pad int }{
	{1, 4, 4, 3, 1, 1},
	{2, 5, 7, 3, 1, 1},
	{3, 6, 6, 3, 2, 1},
	{2, 5, 5, 1, 1, 0},
	{2, 8, 8, 1, 2, 0},
	{1, 4, 4, 4, 4, 0},
	{2, 7, 5, 3, 2, 2},
	{1, 3, 3, 3, 1, 0},
	// Kernel exceeding the unpadded input: the stride-1 fast path must clamp
	// its copy bounds rather than index out of range.
	{1, 2, 2, 6, 1, 2},
	{2, 3, 2, 5, 1, 2},
}

func TestIm2ColMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, cs := range convCases {
		x := Randn(rng, 1, cs.c, cs.h, cs.w)
		got := Im2Col(x, cs.k, cs.stride, cs.pad)
		want := naiveIm2Col(x, cs.k, cs.stride, cs.pad)
		if !got.SameShape(want) {
			t.Fatalf("%+v: shape %v, want %v", cs, got.Shape(), want.Shape())
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%+v: col[%d] = %v, want %v", cs, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: ⟨Im2Col(x), c⟩ == ⟨x, Col2Im(c)⟩ for all
// x and c. This single identity pins every index mapping and the scatter-add
// semantics at once — it is exactly the property conv backward relies on.
func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, cs := range convCases {
		x := Randn(rng, 1, cs.c, cs.h, cs.w)
		col := Im2Col(x, cs.k, cs.stride, cs.pad)
		cotangent := Randn(rng, 1, col.Shape()...)
		back := Col2Im(cotangent, cs.c, cs.h, cs.w, cs.k, cs.stride, cs.pad)
		lhs := Dot(col, cotangent)
		rhs := Dot(x, back)
		if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%+v: adjoint identity violated: %v vs %v", cs, lhs, rhs)
		}
	}
}

func TestCol2ImCountsOverlaps(t *testing.T) {
	// All-ones cotangent: Col2Im must count, per input pixel, how many
	// receptive fields cover it. For a 3×3 kernel, stride 1, pad 1 on 3×3,
	// the center is covered by all 9 output positions' windows.
	col := New(9, 9)
	col.Fill(1)
	img := Col2Im(col, 1, 3, 3, 3, 1, 1)
	if got := img.At(0, 1, 1); got != 9 {
		t.Fatalf("center coverage = %v, want 9", got)
	}
	if got := img.At(0, 0, 0); got != 4 {
		t.Fatalf("corner coverage = %v, want 4", got)
	}
}

func TestConvOutDimsPanicsOnImpossibleGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for kernel larger than padded input")
		}
	}()
	ConvOutDims(2, 2, 5, 1, 0)
}
