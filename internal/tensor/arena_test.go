package tensor

import (
	"sync"
	"testing"
)

func TestArenaReusesBuffers(t *testing.T) {
	a := NewArena()
	b1 := a.Get(64)
	b1[0] = 3.14
	a.Put(b1)
	b2 := a.Get(64)
	if &b1[0] != &b2[0] {
		t.Fatal("arena must hand back the freed buffer for a matching size")
	}
	if b3 := a.Get(64); len(b3) != 64 {
		t.Fatalf("fresh allocation has len %d, want 64", len(b3))
	}
}

func TestArenaGetTensorIsZeroedAndShaped(t *testing.T) {
	a := NewArena()
	dirty := a.Get(12)
	for i := range dirty {
		dirty[i] = 99
	}
	a.Put(dirty)
	tt := a.GetTensor(3, 4)
	if tt.Dim(0) != 3 || tt.Dim(1) != 4 {
		t.Fatalf("bad shape %v", tt.Shape())
	}
	for i, v := range tt.Data {
		if v != 0 {
			t.Fatalf("GetTensor must zero recycled memory, found %v at %d", v, i)
		}
	}
	a.PutTensor(tt)
}

func TestArenaBoundsPerSizeClass(t *testing.T) {
	a := NewArena()
	for i := 0; i < 4*arenaMaxPerSize; i++ {
		a.Put(make([]float64, 8))
	}
	a.mu.Lock()
	kept := len(a.free[8])
	a.mu.Unlock()
	if kept > arenaMaxPerSize {
		t.Fatalf("arena kept %d buffers of one size, cap is %d", kept, arenaMaxPerSize)
	}
}

func TestArenaBoundsTotalBytes(t *testing.T) {
	a := NewArena()
	// Distinct size classes each under the per-class cap: the total-bytes
	// bound must still kick in.
	n := arenaMaxBytes / 8 / 4 // four buffers of this length exceed the cap
	for i := 0; i < 8; i++ {
		a.Put(make([]float64, n+i)) // unique sizes
	}
	a.mu.Lock()
	total := a.bytes
	a.mu.Unlock()
	if total > arenaMaxBytes {
		t.Fatalf("arena retains %d bytes, cap is %d", total, arenaMaxBytes)
	}
}

func TestArenaConcurrentAccess(t *testing.T) {
	a := NewArena()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b := a.Get(32)
				b[0] = float64(i)
				a.Put(b)
			}
		}()
	}
	wg.Wait()
}
