// Package tensor provides a minimal dense float64 tensor library used by the
// neural-network substrate of FedProphet. It supports n-dimensional shapes,
// row-major storage, elementwise arithmetic, matrix multiplication, reductions
// and norms. It deliberately avoids views with non-contiguous strides: every
// tensor owns a contiguous buffer, which keeps the backprop code simple and
// the memory accounting exact.
//
// The package is deterministic: given the same inputs (including explicit
// rand sources for initializers) every operation reproduces the same bits,
// so federated runs can be replayed and compared exactly.
//
//lint:deterministic
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major, contiguous n-dimensional array of float64.
type Tensor struct {
	Data  []float64
	shape []int
}

// New creates a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Data: make([]float64, n), shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// Randn fills a new tensor with N(0, std²) samples drawn from rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Uniform fills a new tensor with U[lo, hi) samples drawn from rng.
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated by the caller.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NumDims returns the number of dimensions.
func (t *Tensor) NumDims() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's buffer with a new shape of equal
// element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.Data), shape, n))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Zero sets all elements to zero in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// AddInPlace computes t += o elementwise.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	mustMatch(t, o, "AddInPlace")
	for i, v := range o.Data {
		t.Data[i] += v
	}
	return t
}

// SubInPlace computes t -= o elementwise.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	mustMatch(t, o, "SubInPlace")
	for i, v := range o.Data {
		t.Data[i] -= v
	}
	return t
}

// MulInPlace computes t *= o elementwise (Hadamard product).
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	mustMatch(t, o, "MulInPlace")
	for i, v := range o.Data {
		t.Data[i] *= v
	}
	return t
}

// ScaleInPlace computes t *= a.
func (t *Tensor) ScaleInPlace(a float64) *Tensor {
	for i := range t.Data {
		t.Data[i] *= a
	}
	return t
}

// AxpyInPlace computes t += a*o elementwise.
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) *Tensor {
	mustMatch(t, o, "AxpyInPlace")
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
	return t
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) *Tensor {
	mustMatch(t, o, "Add")
	r := t.Clone()
	return r.AddInPlace(o)
}

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) *Tensor {
	mustMatch(t, o, "Sub")
	r := t.Clone()
	return r.SubInPlace(o)
}

// Mul returns the elementwise product t ⊙ o as a new tensor.
func Mul(t, o *Tensor) *Tensor {
	mustMatch(t, o, "Mul")
	r := t.Clone()
	return r.MulInPlace(o)
}

// Scale returns a*t as a new tensor.
func Scale(t *Tensor, a float64) *Tensor {
	r := t.Clone()
	return r.ScaleInPlace(a)
}

// ClampInPlace clips every element into [lo, hi].
func (t *Tensor) ClampInPlace(lo, hi float64) *Tensor {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Dot returns the inner product of t and o viewed as flat vectors.
func Dot(t, o *Tensor) float64 {
	mustMatch(t, o, "Dot")
	s := 0.0
	for i, v := range t.Data {
		s += v * o.Data[i]
	}
	return s
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// LInfNorm returns the maximum absolute element.
func (t *Tensor) LInfNorm() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// MaxAbsIndex returns the index (flat) of the element with the largest
// absolute value, and that value.
func (t *Tensor) MaxAbsIndex() (int, float64) {
	bi, bv := -1, -1.0
	for i, v := range t.Data {
		if a := math.Abs(v); a > bv {
			bi, bv = i, a
		}
	}
	return bi, bv
}

// ArgMaxRow returns, for a 2-D tensor, the argmax of row r.
func (t *Tensor) ArgMaxRow(r int) int {
	if len(t.shape) != 2 {
		panic("tensor: ArgMaxRow requires a 2-D tensor")
	}
	cols := t.shape[1]
	row := t.Data[r*cols : (r+1)*cols]
	best, bv := 0, row[0]
	for i, v := range row {
		if v > bv {
			best, bv = i, v
		}
	}
	return best
}

// MatMul computes the matrix product A·B for 2-D tensors
// A (m×k) and B (k×n), returning an m×n tensor. The inner loops are ordered
// ikj for cache efficiency.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransA computes Aᵀ·B for A (k×m) and B (k×n), returning m×n.
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransA requires 2-D tensors")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB computes A·Bᵀ for A (m×k) and B (n×k), returning m×n.
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransB requires 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// SignInPlace replaces every element with its sign (−1, 0 or +1).
func (t *Tensor) SignInPlace() *Tensor {
	for i, v := range t.Data {
		switch {
		case v > 0:
			t.Data[i] = 1
		case v < 0:
			t.Data[i] = -1
		default:
			t.Data[i] = 0
		}
	}
	return t
}

// ProjectL2Ball scales t so that its L2 norm does not exceed eps.
func (t *Tensor) ProjectL2Ball(eps float64) *Tensor {
	n := t.L2Norm()
	if n > eps && n > 0 {
		t.ScaleInPlace(eps / n)
	}
	return t
}

// ProjectLInfBall clips every element into [−eps, eps].
func (t *Tensor) ProjectLInfBall(eps float64) *Tensor {
	return t.ClampInPlace(-eps, eps)
}

func mustMatch(a, b *Tensor, op string) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape))
	}
}

// String renders a compact description for debugging.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
