package tensor

import (
	"runtime"
	"sync"
)

// The package worker pool. Workers are started lazily on the first parallel
// call and sized to GOMAXPROCS at that moment; they live for the process
// lifetime. The job channel is deliberately unbuffered: a submission only
// succeeds by synchronous handoff to a worker that is parked waiting for
// work, and otherwise runs inline on the submitting goroutine. That makes
// nested ParallelFor calls deadlock-free — no job can ever sit queued while
// its submitter blocks in Wait, because there is no queue.
var (
	poolOnce sync.Once
	poolJobs chan func()
)

func startPool() {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 1 {
		return
	}
	poolJobs = make(chan func())
	for i := 0; i < n; i++ {
		go func() {
			for job := range poolJobs {
				job()
			}
		}()
	}
}

// ParallelFor splits [0, n) into at most GOMAXPROCS contiguous chunks and
// runs f(lo, hi) on each, blocking until all chunks complete. The chunk
// boundaries depend only on n and GOMAXPROCS — never on scheduling — so any
// computation whose chunks write disjoint state is bit-deterministic at every
// worker count. With a single CPU (or n ≤ 1) it degenerates to an inline call
// with zero goroutine overhead.
func ParallelFor(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w <= 1 {
		f(0, n)
		return
	}
	poolOnce.Do(startPool)
	if poolJobs == nil {
		f(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		wg.Add(1)
		job := func() {
			defer wg.Done()
			f(lo, hi)
		}
		select {
		case poolJobs <- job:
		default:
			job()
		}
	}
	wg.Wait()
}
