package tensor

import (
	"os"
	"runtime"
	"testing"
)

// The package's parallelism claims are scheduling-independence claims; give
// the test binary real concurrency even on single-CPU CI so the worker pool,
// the unbuffered handoff, and the bit-identity assertions are exercised for
// real rather than degenerating to the inline path.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}
