package tensor

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// The parallel/blocked family must be BIT-identical to the naive kernels:
// blocking and row partitioning may not change any per-element accumulation
// order. Sizes straddle the block boundaries (32 rows, 512 cols) and the
// parallel-dispatch FLOP threshold.
func TestMatMulParFamilyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dims := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {7, 64, 9}, {33, 17, 530},
		{65, 576, 256}, {128, 40, 70},
	}
	for _, d := range dims {
		a := Randn(rng, 1, d.m, d.k)
		b := Randn(rng, 1, d.k, d.n)
		// Sprinkle exact zeros to exercise the zero-skip branches.
		for i := 0; i < len(a.Data); i += 7 {
			a.Data[i] = 0
		}

		want := MatMul(a, b)
		got := MatMulPar(a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("MatMulPar (%d,%d,%d) differs at %d: %v vs %v",
					d.m, d.k, d.n, i, got.Data[i], want.Data[i])
			}
		}

		at := New(d.k, d.m)
		for i := 0; i < d.m; i++ {
			for j := 0; j < d.k; j++ {
				at.Set(a.At(i, j), j, i)
			}
		}
		wantTA := MatMulTransA(at, b)
		gotTA := MatMulTransAPar(at, b)
		for i := range wantTA.Data {
			if gotTA.Data[i] != wantTA.Data[i] {
				t.Fatalf("MatMulTransAPar (%d,%d,%d) differs at %d", d.m, d.k, d.n, i)
			}
		}

		bt := New(d.n, d.k)
		for i := 0; i < d.k; i++ {
			for j := 0; j < d.n; j++ {
				bt.Set(b.At(i, j), j, i)
			}
		}
		wantTB := MatMulTransB(a, bt)
		gotTB := MatMulTransBPar(a, bt)
		for i := range wantTB.Data {
			if gotTB.Data[i] != wantTB.Data[i] {
				t.Fatalf("MatMulTransBPar (%d,%d,%d) differs at %d", d.m, d.k, d.n, i)
			}
		}
	}
}

// Row-range kernels must compose: computing [0,m) in two disjoint calls
// equals one full call, and the accumulate variant must add on top of
// existing contents.
func TestRowRangeKernelsCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, k, n := 10, 12, 14
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)

	full := make([]float64, m*n)
	MatMulInto(full, a.Data, b.Data, m, k, n)
	split := make([]float64, m*n)
	MatMulRowsInto(split, a.Data, b.Data, k, n, 0, 4)
	MatMulRowsInto(split, a.Data, b.Data, k, n, 4, m)
	for i := range full {
		if split[i] != full[i] {
			t.Fatalf("split MatMulRowsInto differs at %d", i)
		}
	}

	bt := New(n, k)
	for i := 0; i < k; i++ {
		for j := 0; j < n; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	acc := make([]float64, m*n)
	MatMulTransBAccRowsInto(acc, a.Data, bt.Data, k, n, 0, m)
	MatMulTransBAccRowsInto(acc, a.Data, bt.Data, k, n, 0, m)
	for i := range full {
		if acc[i] != 2*full[i] {
			t.Fatalf("MatMulTransBAccRowsInto must accumulate: got %v want %v at %d",
				acc[i], 2*full[i], i)
		}
	}
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	const n = 1337
	counts := make([]int32, n)
	ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i := range counts {
		if c := atomic.LoadInt32(&counts[i]); c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
	ParallelFor(0, func(lo, hi int) { t.Error("ParallelFor(0) must not invoke f") })
}

// Nested ParallelFor must not deadlock (inner calls run inline when the pool
// is saturated).
func TestParallelForNested(t *testing.T) {
	var total int64
	ParallelFor(8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelFor(8, func(l, h int) {
				atomic.AddInt64(&total, int64(h-l))
			})
		}
	})
	if got := atomic.LoadInt64(&total); got != 64 {
		t.Fatalf("nested ParallelFor visited %d inner indices, want 64", got)
	}
}
