package tensor

import "fmt"

// Cache-blocked GEMM kernels and their goroutine-parallel wrappers.
//
// Every kernel applies the contributions of the shared dimension p in
// strictly ascending order to each output element, exactly like the naive
// loops in MatMul/MatMulTransA/MatMulTransB. Register tiling only changes
// *which elements* are in flight together, never the per-element accumulation
// order, so for finite inputs the tiled and parallel variants are
// bit-identical to the naive ones — the property the convolution backend's
// equivalence tests rely on. Parallelism partitions output rows into
// contiguous chunks with disjoint writes, so results are also independent of
// worker count and scheduling.
//
// The micro-kernels compute 4×4 output tiles in registers: 16 multiply-adds
// per 8 loads instead of the naive loop's 1 per 3, which is what lets the
// single-threaded GEMM beat the direct convolution loops even on one core.
// Column tiles are the outer loop so the active 4-column B panel (k×4) stays
// L1-resident while A streams through.

// parFLOPs is the approximate multiply-add count below which spawning
// workers costs more than it saves.
const parFLOPs = 1 << 15

// MatMulRowsInto computes rows [i0, i1) of dst = A·B for row-major
// a (≥i1×k), b (k×n), dst (≥i1×n), overwriting those dst rows.
func MatMulRowsInto(dst, a, b []float64, k, n, i0, i1 int) {
	j := 0
	for ; j+4 <= n; j += 4 {
		i := i0
		for ; i+4 <= i1; i += 4 {
			a0 := a[(i+0)*k : (i+1)*k]
			a1 := a[(i+1)*k : (i+2)*k]
			a2 := a[(i+2)*k : (i+3)*k]
			a3 := a[(i+3)*k : (i+4)*k]
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			for p := 0; p < k; p++ {
				bp := b[p*n+j : p*n+j+4 : p*n+j+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				v := a0[p]
				c00 += v * b0
				c01 += v * b1
				c02 += v * b2
				c03 += v * b3
				v = a1[p]
				c10 += v * b0
				c11 += v * b1
				c12 += v * b2
				c13 += v * b3
				v = a2[p]
				c20 += v * b0
				c21 += v * b1
				c22 += v * b2
				c23 += v * b3
				v = a3[p]
				c30 += v * b0
				c31 += v * b1
				c32 += v * b2
				c33 += v * b3
			}
			d0 := dst[(i+0)*n+j : (i+0)*n+j+4 : (i+0)*n+j+4]
			d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
			d1 := dst[(i+1)*n+j : (i+1)*n+j+4 : (i+1)*n+j+4]
			d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
			d2 := dst[(i+2)*n+j : (i+2)*n+j+4 : (i+2)*n+j+4]
			d2[0], d2[1], d2[2], d2[3] = c20, c21, c22, c23
			d3 := dst[(i+3)*n+j : (i+3)*n+j+4 : (i+3)*n+j+4]
			d3[0], d3[1], d3[2], d3[3] = c30, c31, c32, c33
		}
		for ; i < i1; i++ {
			arow := a[i*k : (i+1)*k]
			var c0, c1, c2, c3 float64
			for p, v := range arow {
				bp := b[p*n+j : p*n+j+4 : p*n+j+4]
				c0 += v * bp[0]
				c1 += v * bp[1]
				c2 += v * bp[2]
				c3 += v * bp[3]
			}
			d := dst[i*n+j : i*n+j+4 : i*n+j+4]
			d[0], d[1], d[2], d[3] = c0, c1, c2, c3
		}
	}
	for ; j < n; j++ {
		for i := i0; i < i1; i++ {
			arow := a[i*k : (i+1)*k]
			s := 0.0
			for p, v := range arow {
				s += v * b[p*n+j]
			}
			dst[i*n+j] = s
		}
	}
}

// MatMulInto computes dst = A·B for row-major a (m×k), b (k×n), dst (m×n).
func MatMulInto(dst, a, b []float64, m, k, n int) {
	MatMulRowsInto(dst, a, b, k, n, 0, m)
}

// MatMulTransARowsInto computes rows [i0, i1) of dst = Aᵀ·B for row-major
// a (kk×m), b (kk×n), dst (m×n), overwriting those dst rows. Rows of dst
// correspond to columns of a; both tile loads are contiguous.
func MatMulTransARowsInto(dst, a, b []float64, kk, m, n, i0, i1 int) {
	j := 0
	for ; j+4 <= n; j += 4 {
		i := i0
		for ; i+4 <= i1; i += 4 {
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			for p := 0; p < kk; p++ {
				ap := a[p*m+i : p*m+i+4 : p*m+i+4]
				bp := b[p*n+j : p*n+j+4 : p*n+j+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				v := ap[0]
				c00 += v * b0
				c01 += v * b1
				c02 += v * b2
				c03 += v * b3
				v = ap[1]
				c10 += v * b0
				c11 += v * b1
				c12 += v * b2
				c13 += v * b3
				v = ap[2]
				c20 += v * b0
				c21 += v * b1
				c22 += v * b2
				c23 += v * b3
				v = ap[3]
				c30 += v * b0
				c31 += v * b1
				c32 += v * b2
				c33 += v * b3
			}
			d0 := dst[(i+0)*n+j : (i+0)*n+j+4 : (i+0)*n+j+4]
			d0[0], d0[1], d0[2], d0[3] = c00, c01, c02, c03
			d1 := dst[(i+1)*n+j : (i+1)*n+j+4 : (i+1)*n+j+4]
			d1[0], d1[1], d1[2], d1[3] = c10, c11, c12, c13
			d2 := dst[(i+2)*n+j : (i+2)*n+j+4 : (i+2)*n+j+4]
			d2[0], d2[1], d2[2], d2[3] = c20, c21, c22, c23
			d3 := dst[(i+3)*n+j : (i+3)*n+j+4 : (i+3)*n+j+4]
			d3[0], d3[1], d3[2], d3[3] = c30, c31, c32, c33
		}
		for ; i < i1; i++ {
			var c0, c1, c2, c3 float64
			for p := 0; p < kk; p++ {
				v := a[p*m+i]
				bp := b[p*n+j : p*n+j+4 : p*n+j+4]
				c0 += v * bp[0]
				c1 += v * bp[1]
				c2 += v * bp[2]
				c3 += v * bp[3]
			}
			d := dst[i*n+j : i*n+j+4 : i*n+j+4]
			d[0], d[1], d[2], d[3] = c0, c1, c2, c3
		}
	}
	for ; j < n; j++ {
		for i := i0; i < i1; i++ {
			s := 0.0
			for p := 0; p < kk; p++ {
				s += a[p*m+i] * b[p*n+j]
			}
			dst[i*n+j] = s
		}
	}
}

// MatMulTransAInto computes dst = Aᵀ·B for a (kk×m), b (kk×n), dst (m×n).
func MatMulTransAInto(dst, a, b []float64, kk, m, n int) {
	MatMulTransARowsInto(dst, a, b, kk, m, n, 0, m)
}

// MatMulTransBAccRowsInto accumulates rows [i0, i1) of dst += A·Bᵀ for
// row-major a (≥i1×k), b (n×k), dst (≥i1×n). Each dst element receives one
// fully-reduced dot product, so repeated calls (e.g. once per image of a
// batch) accumulate in caller-controlled order.
func MatMulTransBAccRowsInto(dst, a, b []float64, k, n, i0, i1 int) {
	i := i0
	for ; i+2 <= i1; i += 2 {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := b[(j+0)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			var c00, c01, c10, c11 float64
			for p, v0 := range a0 {
				v1 := a1[p]
				w0, w1 := b0[p], b1[p]
				c00 += v0 * w0
				c01 += v0 * w1
				c10 += v1 * w0
				c11 += v1 * w1
			}
			dst[(i+0)*n+j] += c00
			dst[(i+0)*n+j+1] += c01
			dst[(i+1)*n+j] += c10
			dst[(i+1)*n+j+1] += c11
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var c0, c1 float64
			for p, v0 := range a0 {
				c0 += v0 * brow[p]
				c1 += a1[p] * brow[p]
			}
			dst[(i+0)*n+j] += c0
			dst[(i+1)*n+j] += c1
		}
	}
	for ; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] += s
		}
	}
}

func check2D(a, b *Tensor, op string) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires 2-D tensors, got %v and %v", op, a.shape, b.shape))
	}
}

// MatMulPar computes A·B like MatMul, parallelizing over output row blocks
// on the package worker pool. Bit-identical to MatMul for finite inputs.
func MatMulPar(a, b *Tensor) *Tensor {
	check2D(a, b, "MatMulPar")
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulPar shape mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	if m*k*n < parFLOPs {
		MatMulInto(out.Data, a.Data, b.Data, m, k, n)
		return out
	}
	ParallelFor(m, func(lo, hi int) {
		MatMulRowsInto(out.Data, a.Data, b.Data, k, n, lo, hi)
	})
	return out
}

// MatMulTransAPar computes Aᵀ·B like MatMulTransA, parallelizing over output
// row blocks. Bit-identical to MatMulTransA for finite inputs.
func MatMulTransAPar(a, b *Tensor) *Tensor {
	check2D(a, b, "MatMulTransAPar")
	kk, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if kk != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransAPar shape mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	if m*kk*n < parFLOPs {
		MatMulTransAInto(out.Data, a.Data, b.Data, kk, m, n)
		return out
	}
	ParallelFor(m, func(lo, hi int) {
		MatMulTransARowsInto(out.Data, a.Data, b.Data, kk, m, n, lo, hi)
	})
	return out
}

// MatMulTransBPar computes A·Bᵀ like MatMulTransB, parallelizing over output
// row blocks. Bit-identical to MatMulTransB for finite inputs.
func MatMulTransBPar(a, b *Tensor) *Tensor {
	check2D(a, b, "MatMulTransBPar")
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransBPar shape mismatch %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	if m*k*n < parFLOPs {
		MatMulTransBAccRowsInto(out.Data, a.Data, b.Data, k, n, 0, m)
		return out
	}
	ParallelFor(m, func(lo, hi int) {
		MatMulTransBAccRowsInto(out.Data, a.Data, b.Data, k, n, lo, hi)
	})
	return out
}
