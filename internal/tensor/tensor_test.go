package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.NumDims() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7.5, 2, 1, 3)
	if got := x.At(2, 1, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Row-major offset check: idx = (2*4+1)*5+3 = 48.
	if x.Data[48] != 7.5 {
		t.Fatalf("row-major layout violated")
	}
}

func TestFromSlicePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestReshapeSharesBuffer(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape must share the underlying buffer")
	}
	if y.Dim(0) != 3 || y.Dim(1) != 2 {
		t.Fatalf("bad reshaped dims %v", y.Shape())
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := Add(a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 10 {
		t.Fatalf("Mul wrong: %v", got)
	}
	if got := Scale(a, 2).Data; got[2] != 6 {
		t.Fatalf("Scale wrong: %v", got)
	}
	c := a.Clone()
	c.AxpyInPlace(10, b)
	if c.Data[0] != 41 {
		t.Fatalf("Axpy wrong: %v", c.Data)
	}
}

func TestSumMeanDotNorms(t *testing.T) {
	a := FromSlice([]float64{3, -4}, 2)
	if a.Sum() != -1 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != -0.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if got := Dot(a, a); got != 25 {
		t.Fatalf("Dot = %v", got)
	}
	if !almostEq(a.L2Norm(), 5, 1e-12) {
		t.Fatalf("L2 = %v", a.L2Norm())
	}
	if a.LInfNorm() != 4 {
		t.Fatalf("LInf = %v", a.LInfNorm())
	}
}

func TestClamp(t *testing.T) {
	a := FromSlice([]float64{-2, 0.5, 3}, 3)
	a.ClampInPlace(0, 1)
	if a.Data[0] != 0 || a.Data[1] != 0.5 || a.Data[2] != 1 {
		t.Fatalf("Clamp wrong: %v", a.Data)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulTransposeVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 6)
	b := Randn(rng, 1, 6, 5)
	want := MatMul(a, b)

	// Aᵀ·B where we pass A already transposed.
	at := New(6, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	got := MatMulTransA(at, b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("MatMulTransA mismatch at %d", i)
		}
	}

	// A·Bᵀ where we pass B already transposed.
	bt := New(5, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	got2 := MatMulTransB(a, bt)
	for i := range want.Data {
		if !almostEq(got2.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("MatMulTransB mismatch at %d", i)
		}
	}
}

func TestSignAndProjections(t *testing.T) {
	a := FromSlice([]float64{-3, 0, 2}, 3)
	a.SignInPlace()
	if a.Data[0] != -1 || a.Data[1] != 0 || a.Data[2] != 1 {
		t.Fatalf("Sign wrong: %v", a.Data)
	}

	b := FromSlice([]float64{3, 4}, 2) // norm 5
	b.ProjectL2Ball(1)
	if !almostEq(b.L2Norm(), 1, 1e-12) {
		t.Fatalf("ProjectL2Ball norm = %v", b.L2Norm())
	}

	c := FromSlice([]float64{-0.5, 0.2, 0.9}, 3)
	c.ProjectLInfBall(0.3)
	if c.LInfNorm() > 0.3+1e-15 {
		t.Fatalf("ProjectLInfBall LInf = %v", c.LInfNorm())
	}
}

func TestArgMaxRow(t *testing.T) {
	a := FromSlice([]float64{0, 5, 2, 9, 1, 3}, 2, 3)
	if a.ArgMaxRow(0) != 1 {
		t.Fatalf("ArgMaxRow(0) = %d", a.ArgMaxRow(0))
	}
	if a.ArgMaxRow(1) != 0 {
		t.Fatalf("ArgMaxRow(1) = %d", a.ArgMaxRow(1))
	}
}

// Property: (A·B)·C == A·(B·C) for random small matrices.
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n, p := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, n, p)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		for i := range left.Data {
			if !almostEq(left.Data[i], right.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Scale distributes over Add.
func TestLinearAlgebraProperties(t *testing.T) {
	f := func(seed int64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		a := Randn(r, 1, n)
		b := Randn(r, 1, n)
		ab := Add(a, b)
		ba := Add(b, a)
		for i := range ab.Data {
			if ab.Data[i] != ba.Data[i] {
				return false
			}
		}
		lhs := Scale(Add(a, b), alpha)
		rhs := Add(Scale(a, alpha), Scale(b, alpha))
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i], 1e-6*(1+math.Abs(lhs.Data[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: projection onto the L2 ball never increases the norm and is
// idempotent.
func TestProjectL2BallProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		eps := 0.1 + r.Float64()*3
		x := Randn(r, 2, n)
		x.ProjectL2Ball(eps)
		if x.L2Norm() > eps*(1+1e-12) {
			return false
		}
		before := x.Clone()
		x.ProjectL2Ball(eps)
		for i := range x.Data {
			if !almostEq(x.Data[i], before.Data[i], 1e-12*(1+math.Abs(before.Data[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandnDeterministicBySeed(t *testing.T) {
	a := Randn(rand.New(rand.NewSource(5)), 1, 8)
	b := Randn(rand.New(rand.NewSource(5)), 1, 8)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("Randn must be deterministic for a fixed seed")
		}
	}
}

// Same element count but different shapes must be rejected: (2,3)+(3,2) was
// silently accepted when mustMatch only compared lengths.
func TestElementwiseOpsRejectShapeMismatch(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	for name, f := range map[string]func(){
		"Add":         func() { Add(a, b) },
		"Sub":         func() { Sub(a, b) },
		"Mul":         func() { Mul(a, b) },
		"Dot":         func() { Dot(a, b) },
		"AddInPlace":  func() { a.Clone().AddInPlace(b) },
		"SubInPlace":  func() { a.Clone().SubInPlace(b) },
		"MulInPlace":  func() { a.Clone().MulInPlace(b) },
		"AxpyInPlace": func() { a.Clone().AxpyInPlace(2, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s must panic on shape mismatch (2,3) vs (3,2)", name)
				}
			}()
			f()
		}()
	}
}
