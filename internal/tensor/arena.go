package tensor

import "sync"

// Arena is a size-keyed free list of scratch buffers. The GEMM convolution
// path allocates a fresh column-gradient buffer on every backward pass; with
// PGD-n adversarial training running n+1 forward/backward sweeps per batch,
// recycling those buffers removes the dominant per-step allocation. Buffers
// are keyed by exact length — layer geometries repeat every batch, so exact
// keying hits almost always — and each size class is capped so a burst of
// odd shapes cannot pin memory forever.
type Arena struct {
	mu    sync.Mutex
	free  map[int][][]float64
	bytes int // total retained bytes across all size classes
}

// arenaMaxPerSize bounds how many buffers of one size class an arena keeps;
// arenaMaxBytes bounds total retention across classes, so heterogeneous
// geometries (sub-model sampling, varying batch sizes) cannot grow resident
// memory without limit — buffers offered beyond the cap are simply dropped
// for the GC.
const (
	arenaMaxPerSize = 16
	arenaMaxBytes   = 64 << 20
)

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{free: make(map[int][][]float64)} }

// Scratch is the package-level arena shared by the convolution fast path and
// anything else needing short-lived float64 buffers. It is safe for
// concurrent use.
var Scratch = NewArena()

// Get returns a buffer of length n with undefined contents. Callers that
// need zeroed memory must clear it (or use GetTensor).
func (a *Arena) Get(n int) []float64 {
	a.mu.Lock()
	if bufs := a.free[n]; len(bufs) > 0 {
		b := bufs[len(bufs)-1]
		a.free[n] = bufs[:len(bufs)-1]
		a.bytes -= 8 * n
		a.mu.Unlock()
		return b
	}
	a.mu.Unlock()
	return make([]float64, n)
}

// Put returns a buffer to the arena for reuse. The caller must not touch the
// buffer afterwards. Nil and zero-length buffers are ignored.
func (a *Arena) Put(b []float64) {
	if len(b) == 0 {
		return
	}
	a.mu.Lock()
	if len(a.free[len(b)]) < arenaMaxPerSize && a.bytes+8*len(b) <= arenaMaxBytes {
		a.free[len(b)] = append(a.free[len(b)], b)
		a.bytes += 8 * len(b)
	}
	a.mu.Unlock()
}

// GetTensor returns a zero-filled tensor drawn from the arena's free list,
// interchangeable with New. Release it with PutTensor when its lifetime ends.
func (a *Arena) GetTensor(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	buf := a.Get(n)
	for i := range buf {
		buf[i] = 0
	}
	return FromSlice(buf, shape...)
}

// PutTensor returns a tensor's buffer to the arena. The tensor (and any
// Reshape sharing its buffer) must not be used afterwards.
func (a *Arena) PutTensor(t *Tensor) {
	if t != nil {
		a.Put(t.Data)
	}
}
