package tensor

import "fmt"

// im2col/col2im lower 2-D convolution onto GEMM: Im2Col unrolls every k×k
// receptive field of a C×H×W image into one column of a (C·k·k) × (oh·ow)
// matrix, so that a convolution with weights W (outC × C·k·k) becomes the
// matrix product W·col. Col2Im is the adjoint scatter-add, which maps a
// gradient in column space back to image space. Rows are ordered
// (channel, kh, kw) and columns (oy, ox), matching the row-major layout of
// conv weights (outC, C, k, k), so no weight reshuffling is ever needed.

// ConvOutDims returns the spatial output size of a convolution over an h×w
// input with square kernel k, the given stride, and zero padding pad.
func ConvOutDims(h, w, k, stride, pad int) (oh, ow int) {
	oh = (h+2*pad-k)/stride + 1
	ow = (w+2*pad-k)/stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv output %dx%d not positive for input %dx%d kernel %d stride %d pad %d",
			oh, ow, h, w, k, stride, pad))
	}
	return oh, ow
}

// Im2ColInto unrolls src, one C×H×W image, into dst, a row-major
// (C·k·k) × (oh·ow) column matrix. Every dst element is written (padding
// positions as zero), so dst needs no pre-clearing.
func Im2ColInto(dst, src []float64, c, h, w, k, stride, pad int) {
	oh, ow := ConvOutDims(h, w, k, stride, pad)
	ohow := oh * ow
	if len(dst) != c*k*k*ohow {
		panic(fmt.Sprintf("tensor: Im2ColInto dst has %d elements, need %d", len(dst), c*k*k*ohow))
	}
	if len(src) != c*h*w {
		panic(fmt.Sprintf("tensor: Im2ColInto src has %d elements, need %d", len(src), c*h*w))
	}
	r := 0
	for ic := 0; ic < c; ic++ {
		plane := src[ic*h*w : (ic+1)*h*w]
		for kh := 0; kh < k; kh++ {
			for kw := 0; kw < k; kw++ {
				drow := dst[r*ohow : (r+1)*ohow]
				r++
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + kh - pad
					dseg := drow[oy*ow : (oy+1)*ow]
					if iy < 0 || iy >= h {
						for i := range dseg {
							dseg[i] = 0
						}
						continue
					}
					xrow := plane[iy*w : (iy+1)*w]
					if stride == 1 {
						// Valid ox satisfy 0 ≤ ox+kw−pad < w; both bounds are
						// clamped into [0, ow] (wide padding can push the raw
						// values past either end).
						lo, hi := pad-kw, w-kw+pad
						if lo < 0 {
							lo = 0
						} else if lo > ow {
							lo = ow
						}
						if hi < 0 {
							hi = 0
						} else if hi > ow {
							hi = ow
						}
						for i := 0; i < lo; i++ {
							dseg[i] = 0
						}
						if hi > lo {
							copy(dseg[lo:hi], xrow[lo+kw-pad:hi+kw-pad])
						}
						for i := hi; i < ow; i++ {
							dseg[i] = 0
						}
					} else {
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride + kw - pad
							if ix < 0 || ix >= w {
								dseg[ox] = 0
							} else {
								dseg[ox] = xrow[ix]
							}
						}
					}
				}
			}
		}
	}
}

// Col2ImAccInto scatter-adds col, a row-major (C·k·k) × (oh·ow) matrix, back
// into dst, a C×H×W image. dst is accumulated into, not cleared: overlapping
// receptive fields sum, making this the exact adjoint of Im2ColInto.
func Col2ImAccInto(dst, col []float64, c, h, w, k, stride, pad int) {
	oh, ow := ConvOutDims(h, w, k, stride, pad)
	ohow := oh * ow
	if len(col) != c*k*k*ohow {
		panic(fmt.Sprintf("tensor: Col2ImAccInto col has %d elements, need %d", len(col), c*k*k*ohow))
	}
	if len(dst) != c*h*w {
		panic(fmt.Sprintf("tensor: Col2ImAccInto dst has %d elements, need %d", len(dst), c*h*w))
	}
	r := 0
	for ic := 0; ic < c; ic++ {
		plane := dst[ic*h*w : (ic+1)*h*w]
		for kh := 0; kh < k; kh++ {
			for kw := 0; kw < k; kw++ {
				crow := col[r*ohow : (r+1)*ohow]
				r++
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride + kh - pad
					if iy < 0 || iy >= h {
						continue
					}
					xrow := plane[iy*w : (iy+1)*w]
					cseg := crow[oy*ow : (oy+1)*ow]
					if stride == 1 {
						lo, hi := pad-kw, w-kw+pad
						if lo < 0 {
							lo = 0
						}
						if hi > ow {
							hi = ow
						}
						off := kw - pad
						for i := lo; i < hi; i++ {
							xrow[i+off] += cseg[i]
						}
					} else {
						for ox := 0; ox < ow; ox++ {
							ix := ox*stride + kw - pad
							if ix < 0 || ix >= w {
								continue
							}
							xrow[ix] += cseg[ox]
						}
					}
				}
			}
		}
	}
}

// Im2Col unrolls a (C,H,W) tensor into a (C·k·k, oh·ow) column matrix.
func Im2Col(x *Tensor, k, stride, pad int) *Tensor {
	if x.NumDims() != 3 {
		panic(fmt.Sprintf("tensor: Im2Col requires a (C,H,W) tensor, got %v", x.Shape()))
	}
	c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
	oh, ow := ConvOutDims(h, w, k, stride, pad)
	col := New(c*k*k, oh*ow)
	Im2ColInto(col.Data, x.Data, c, h, w, k, stride, pad)
	return col
}

// Col2Im scatter-adds a (C·k·k, oh·ow) column matrix into a fresh (C,H,W)
// tensor, the adjoint of Im2Col.
func Col2Im(col *Tensor, c, h, w, k, stride, pad int) *Tensor {
	if col.NumDims() != 2 {
		panic(fmt.Sprintf("tensor: Col2Im requires a 2-D column matrix, got %v", col.Shape()))
	}
	img := New(c, h, w)
	Col2ImAccInto(img.Data, col.Data, c, h, w, k, stride, pad)
	return img
}
