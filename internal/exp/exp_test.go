package exp

import (
	"strings"
	"testing"

	"fedprophet/internal/device"
	"fedprophet/internal/fl"
)

func TestQuickAndFullScalesAreSane(t *testing.T) {
	for _, s := range []Scale{QuickScale(), FullScale()} {
		if s.TrainPerClass <= 0 || s.Rounds <= 0 || s.NumClients < s.ClientsPerRound {
			t.Fatalf("bad scale %+v", s)
		}
	}
	if FullScale().Rounds <= QuickScale().Rounds {
		t.Fatal("full scale must run longer than quick")
	}
	if TrimmedScale().Rounds >= QuickScale().Rounds {
		t.Fatal("trimmed scale must run shorter than quick")
	}
}

func TestNewEnvWiresEverything(t *testing.T) {
	env := NewEnv(CIFAR10S(), QuickScale(), device.Balanced, 1)
	if env.Train.Len() == 0 || env.Test.Len() == 0 || env.Val.Len() == 0 || env.Public.Len() == 0 {
		t.Fatal("datasets missing")
	}
	if len(env.Subsets) != env.Cfg.NumClients {
		t.Fatalf("subsets %d, clients %d", len(env.Subsets), env.Cfg.NumClients)
	}
	total := 0
	for _, s := range env.Subsets {
		total += s.Len()
	}
	if total != env.Train.Len() {
		t.Fatal("partition does not cover the training set")
	}
}

func TestMethodsRosterMatchesPaper(t *testing.T) {
	ms := Methods(CIFAR10S(), QuickScale())
	if len(ms) != 8 {
		t.Fatalf("roster has %d methods, want 8", len(ms))
	}
	want := []string{"jFAT", "FedDF-AT", "FedET-AT", "HeteroFL-AT", "FedDrop-AT",
		"FedRolex-AT", "FedRBN", "FedProphet"}
	for i, m := range ms {
		if m.Name() != want[i] {
			t.Fatalf("method %d = %s, want %s", i, m.Name(), want[i])
		}
	}
}

func TestFigure2Shapes(t *testing.T) {
	rep := Figure2(CIFAR10S(), QuickScale(), 1)
	if len(rep.Rows) != 3 {
		t.Fatalf("Figure 2 needs 3 regimes, got %d", len(rep.Rows))
	}
	// "Lim. w/ Swap" must be dominated by data access; the others must have
	// zero data access.
	if rep.Rows[0][2] != "0.000" {
		t.Fatalf("Suff. Mem should have no data access: %v", rep.Rows[0])
	}
	if rep.Rows[1][2] == "0.000" {
		t.Fatalf("Lim. w/ Swap should have data access: %v", rep.Rows[1])
	}
	if rep.Rows[2][2] != "0.000" {
		t.Fatalf("Lim. w/o Swap should have no data access: %v", rep.Rows[2])
	}
}

func TestFigure6ReportsMemoryReduction(t *testing.T) {
	rep := Figure6(CIFAR10S(), QuickScale(), 1)
	found := false
	for _, row := range rep.Rows {
		if row[0] == "memory reduction" {
			found = true
			if !strings.HasSuffix(row[1], "%") {
				t.Fatalf("memory reduction not a percentage: %v", row[1])
			}
		}
	}
	if !found {
		t.Fatal("memory reduction row missing")
	}
}

func TestPartitionTableHasModules(t *testing.T) {
	rep := PartitionTable(CIFAR10S(), QuickScale(), 1)
	if len(rep.Rows) < 2 {
		t.Fatalf("partition should yield multiple modules, got %d", len(rep.Rows))
	}
}

func TestDeviceTablesVerbatim(t *testing.T) {
	reps := DeviceTable()
	if len(reps) != 2 {
		t.Fatal("need two device tables")
	}
	for _, r := range reps {
		if len(r.Rows) != 10 {
			t.Fatalf("%s has %d devices, want 10", r.ID, len(r.Rows))
		}
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "T", Title: "x", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := r.String()
	if !strings.Contains(s, "== T: x ==") || !strings.Contains(s, "bb") {
		t.Fatalf("bad report rendering:\n%s", s)
	}
}

func TestTable2AndFigure7FromSharedRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("training integration test")
	}
	// Run just jFAT + FedProphet end to end at a reduced quick scale; the
	// full roster is exercised by the benchmarks.
	w := CIFAR10S()
	s := QuickScale()
	s.TrainPerClass = 10
	s.TestPerClass = 4
	s.Rounds = 2
	s.RoundsPerModule = 1
	s.LocalIters = 2

	ms := Methods(w, s)
	results := []*fl.Result{
		runMethod(ms[0], NewEnv(w, s, device.Balanced, 3)),
		runMethod(ms[7], NewEnv(w, s, device.Balanced, 3)),
	}
	t2 := Table2(w, device.Balanced, results)
	if len(t2.Rows) != 2 || t2.Rows[0][0] != "jFAT" || t2.Rows[1][0] != "FedProphet" {
		t.Fatalf("Table 2 rows wrong: %v", t2.Rows)
	}
	f7 := Figure7(w, device.Balanced, results)
	if len(f7.Rows) != 2 {
		t.Fatalf("Figure 7 rows wrong: %v", f7.Rows)
	}
	// jFAT's speedup against itself is 1.0x.
	if f7.Rows[0][4] != "1.0x" {
		t.Fatalf("jFAT speedup should be 1.0x, got %v", f7.Rows[0][4])
	}
}
