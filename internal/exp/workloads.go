// Package exp is the experiment harness of the FedProphet reproduction. It
// wires datasets, device fleets, models and methods into the exact
// table/figure generators of the paper's evaluation (§7), shared by the
// cmd/experiments binary and the repository-level benchmarks.
package exp

import (
	"math/rand"

	"fedprophet/internal/data"
	"fedprophet/internal/device"
	"fedprophet/internal/fl"
	"fedprophet/internal/nn"
)

// Scale selects how big an experiment run is. Quick keeps every generator
// fast enough for `go test -bench`; Full is for the cmd/experiments binary.
type Scale struct {
	Name            string
	TrainPerClass   int
	TestPerClass    int
	ValFrac         float64
	PublicFrac      float64
	Width           int // model width multiplier
	Rounds          int // baseline communication rounds
	RoundsPerModule int // FedProphet rounds per module stage
	LocalIters      int
	NumClients      int
	ClientsPerRound int
	TrainPGD        int
	EvalPGD         int
	EvalAASteps     int
	ValSize         int
}

// QuickScale is used by tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		Name:          "quick",
		TrainPerClass: 60, TestPerClass: 10,
		ValFrac: 0.1, PublicFrac: 0.08,
		Width:  4,
		Rounds: 12, RoundsPerModule: 12, LocalIters: 8,
		NumClients: 10, ClientsPerRound: 5,
		TrainPGD: 3, EvalPGD: 5, EvalAASteps: 5,
		ValSize: 32,
	}
}

// TrimmedScale cuts the quick scale down further for the repository
// benchmarks and for cheap parameter sweeps (Figures 8/9, Tables 3/4); runs
// finish in seconds at the cost of noisier absolute accuracy.
func TrimmedScale() Scale {
	s := QuickScale()
	s.TrainPerClass = 30
	s.TestPerClass = 8
	s.Rounds = 4
	s.RoundsPerModule = 3
	s.LocalIters = 4
	s.TrainPGD = 2
	s.EvalPGD = 3
	s.EvalAASteps = 3
	s.ValSize = 16
	s.Name = "trimmed"
	return s
}

// FullScale is used by the cmd/experiments binary for higher-fidelity runs.
func FullScale() Scale {
	return Scale{
		Name:          "full",
		TrainPerClass: 100, TestPerClass: 20,
		ValFrac: 0.1, PublicFrac: 0.08,
		Width:  4,
		Rounds: 30, RoundsPerModule: 18, LocalIters: 10,
		NumClients: 12, ClientsPerRound: 6,
		TrainPGD: 5, EvalPGD: 10, EvalAASteps: 10,
		ValSize: 48,
	}
}

// Workload bundles a dataset surrogate with its model family and device pool.
type Workload struct {
	Name       string
	DataCfg    func(scale Scale, seed int64) data.SyntheticConfig
	Shape      []int
	Classes    int
	Pool       []device.Device
	BuildLarge func(scale Scale) func(*rand.Rand) *nn.Model
	BuildSmall func(scale Scale) func(*rand.Rand) *nn.Model
	KDGroup    func(scale Scale) []func(*rand.Rand) *nn.Model
}

// CIFAR10S is the CIFAR-10 surrogate workload: VGG16-S as the large model,
// CNN3 as the small one, the Table 5 device pool.
func CIFAR10S() Workload {
	shape := []int{3, 16, 16}
	classes := 10
	return Workload{
		Name:    "CIFAR10-S",
		Shape:   shape,
		Classes: classes,
		Pool:    device.CIFARPool(),
		DataCfg: func(s Scale, seed int64) data.SyntheticConfig {
			cfg := data.CIFAR10SConfig(s.TrainPerClass, s.TestPerClass, seed)
			return cfg
		},
		BuildLarge: func(s Scale) func(*rand.Rand) *nn.Model {
			return func(r *rand.Rand) *nn.Model { return nn.VGG16S(shape, classes, s.Width, r) }
		},
		BuildSmall: func(s Scale) func(*rand.Rand) *nn.Model {
			return func(r *rand.Rand) *nn.Model { return nn.CNN3(shape, classes, s.Width, r) }
		},
		KDGroup: func(s Scale) []func(*rand.Rand) *nn.Model {
			return []func(*rand.Rand) *nn.Model{
				func(r *rand.Rand) *nn.Model { return nn.CNN3(shape, classes, s.Width, r) },
				func(r *rand.Rand) *nn.Model { return nn.VGG11S(shape, classes, s.Width, r) },
				func(r *rand.Rand) *nn.Model { return nn.VGG13S(shape, classes, s.Width, r) },
				func(r *rand.Rand) *nn.Model { return nn.VGG16S(shape, classes, s.Width, r) },
			}
		},
	}
}

// Caltech256S is the Caltech-256 surrogate workload: ResNet34-S as the large
// model, CNN4 as the small one, the Table 6 device pool. The quick scale
// shrinks the image size and class count further.
func Caltech256S(quick bool) Workload {
	shape := []int{3, 24, 24}
	classes := 32
	if quick {
		shape = []int{3, 16, 16}
		classes = 8
	}
	return Workload{
		Name:    "Caltech256-S",
		Shape:   shape,
		Classes: classes,
		Pool:    device.CaltechPool(),
		DataCfg: func(s Scale, seed int64) data.SyntheticConfig {
			cfg := data.Caltech256SConfig(s.TrainPerClass, s.TestPerClass, seed)
			cfg.Shape = shape
			cfg.Classes = classes
			return cfg
		},
		BuildLarge: func(s Scale) func(*rand.Rand) *nn.Model {
			return func(r *rand.Rand) *nn.Model { return nn.ResNet34S(shape, classes, s.Width, r) }
		},
		BuildSmall: func(s Scale) func(*rand.Rand) *nn.Model {
			return func(r *rand.Rand) *nn.Model { return nn.CNN4(shape, classes, s.Width, r) }
		},
		KDGroup: func(s Scale) []func(*rand.Rand) *nn.Model {
			return []func(*rand.Rand) *nn.Model{
				func(r *rand.Rand) *nn.Model { return nn.CNN4(shape, classes, s.Width, r) },
				func(r *rand.Rand) *nn.Model { return nn.ResNet10S(shape, classes, s.Width, r) },
				func(r *rand.Rand) *nn.Model { return nn.ResNet18S(shape, classes, s.Width, r) },
				func(r *rand.Rand) *nn.Model { return nn.ResNet34S(shape, classes, s.Width, r) },
			}
		},
	}
}

// ParamsFor assembles the registry method parameters for a workload at the
// given scale: model builders for every family plus the paper-default
// FedProphet coordinator knobs (the short-horizon α tweak documented in
// FedProphetOptions included).
func ParamsFor(w Workload, s Scale) fl.MethodParams {
	return fl.MethodParams{
		BuildLarge:   w.BuildLarge(s),
		BuildSmall:   w.BuildSmall(s),
		KDGroup:      w.KDGroup(s),
		DistillIters: 2 * s.LocalIters,

		RminFrac:        0.2,
		RoundsPerModule: s.RoundsPerModule,
		Patience:        (s.RoundsPerModule + 1) / 2,
		Mu:              1e-5,
		// The paper initializes α at 0.3 and lets APA raise it over hundreds
		// of rounds per module; at this reproduction's much shorter horizons
		// a mid-range start reaches the same operating point.
		AlphaInit:       0.5,
		DeltaAlpha:      0.1,
		GammaThresh:     0.05,
		UseAPA:          true,
		UseDMA:          true,
		FeaturePGDSteps: s.TrainPGD,
		ValSize:         s.ValSize,
		ValPGD:          3,
	}
}

// NewEnv assembles the federated environment for a workload under the given
// systematic heterogeneity and seed.
func NewEnv(w Workload, s Scale, h device.Heterogeneity, seed int64) *fl.Env {
	cfg := fl.DefaultConfig()
	cfg.NumClients = s.NumClients
	cfg.ClientsPerRound = s.ClientsPerRound
	cfg.Rounds = s.Rounds
	cfg.LocalIters = s.LocalIters
	cfg.Batch = 8
	cfg.LR = 0.05
	cfg.TrainPGD = s.TrainPGD
	cfg.EvalPGD = s.EvalPGD
	cfg.EvalAASteps = s.EvalAASteps
	cfg.EvalBatch = 32
	cfg.Seed = seed

	train, test := data.Generate(w.DataCfg(s, seed))
	train, val := data.SplitHoldout(train, s.ValFrac, seed+100)
	train, public := data.SplitHoldout(train, s.PublicFrac, seed+200)
	subs := data.PartitionNonIID(train, data.DefaultPartition(cfg.NumClients, seed+300))
	rng := rand.New(rand.NewSource(seed))
	fleet := device.NewFleet(w.Pool, cfg.NumClients, h, rng)
	return &fl.Env{
		Train: train, Subsets: subs, Val: val, Test: test, Public: public,
		Fleet: fleet, Cfg: cfg, Rng: rng,
	}
}
