package exp

import (
	"context"
	"fmt"
	"math/rand"

	"fedprophet/internal/baselines"
	"fedprophet/internal/cascade"
	"fedprophet/internal/core"
	"fedprophet/internal/device"
	"fedprophet/internal/fl"
	"fedprophet/internal/memmodel"
	"fedprophet/internal/simlat"
)

// Roster is the paper's method order (Table 2 / Figure 7 rows). Every name
// resolves through the fl method registry, where the training packages
// self-register.
var Roster = []string{
	"jFAT", "FedDF-AT", "FedET-AT", "HeteroFL-AT", "FedDrop-AT",
	"FedRolex-AT", "FedRBN", "FedProphet",
}

// runMethod executes a method to completion on a background context; the
// harness never cancels mid-run, so an error here is a programming bug.
func runMethod(m fl.Method, env *fl.Env) *fl.Result {
	res, err := m.Run(context.Background(), env)
	if err != nil {
		panic(fmt.Sprintf("exp: %s: %v", m.Name(), err))
	}
	return res
}

// Report is one regenerated table or figure: a header row plus data rows,
// ready to print.
type Report struct {
	ID     string // e.g. "Table 2"
	Title  string
	Header []string
	Rows   [][]string
}

// String renders the report as aligned plain text.
func (r *Report) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	rows := append([][]string{r.Header}, r.Rows...)
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		for i, c := range row {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			out += c
			for p := 0; p < pad+2; p++ {
				out += " "
			}
		}
		out += "\n"
	}
	return out
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// FedProphetOptions builds the paper-default FedProphet configuration for a
// workload at the given scale.
func FedProphetOptions(w Workload, s Scale) core.Options {
	return core.OptionsFromParams(ParamsFor(w, s))
}

// Methods returns the full method roster of Table 2 / Figure 7, in the
// paper's row order, resolved through the method registry.
func Methods(w Workload, s Scale) []fl.Method {
	params := ParamsFor(w, s)
	out := make([]fl.Method, 0, len(Roster))
	for _, name := range Roster {
		m, err := fl.NewMethod(name, params)
		if err != nil {
			panic(err)
		}
		out = append(out, m)
	}
	return out
}

// RunSetting trains every method on one (workload, heterogeneity) setting
// and returns the results in roster order. Table 2 and Figure 7 are two
// views of this output.
func RunSetting(w Workload, s Scale, h device.Heterogeneity, seed int64) []*fl.Result {
	var out []*fl.Result
	for _, m := range Methods(w, s) {
		env := NewEnv(w, s, h, seed)
		out = append(out, runMethod(m, env))
	}
	return out
}

// Table1 reproduces Table 1: FAT with small vs large vs partially-trained
// large models on both workloads.
func Table1(s Scale, seed int64) *Report {
	rep := &Report{
		ID:    "Table 1",
		Title: "FAT with different model sizes (Clean / PGD adversarial accuracy)",
		Header: []string{"Model (Mem)", "CIFAR10-S Clean", "CIFAR10-S Adv",
			"Caltech256-S Clean", "Caltech256-S Adv"},
	}
	type cell struct{ clean, adv float64 }
	results := map[string][2]cell{}
	for wi, w := range []Workload{CIFAR10S(), Caltech256S(s.Name == "quick")} {
		params := ParamsFor(w, s)
		smallParams := params
		smallParams.BuildLarge = w.BuildSmall(s)
		mk := func(name string, p fl.MethodParams) fl.Method {
			m, err := fl.NewMethod(name, p)
			if err != nil {
				panic(err)
			}
			return m
		}
		small := mk("jFAT", smallParams)
		large := mk("jFAT", params)
		pt := mk("FedRolex-AT", params)
		for i, m := range []fl.Method{small, large, pt} {
			env := NewEnv(w, s, device.Balanced, seed)
			res := runMethod(m, env)
			key := []string{"Small (1x)", "Large (5x)", "Large-PT (1x)"}[i]
			cells := results[key]
			cells[wi] = cell{res.CleanAcc, res.PGDAcc}
			results[key] = cells
		}
	}
	for _, key := range []string{"Small (1x)", "Large (5x)", "Large-PT (1x)"} {
		c := results[key]
		rep.Rows = append(rep.Rows, []string{
			key, pct(c[0].clean), pct(c[0].adv), pct(c[1].clean), pct(c[1].adv),
		})
	}
	return rep
}

// Figure2 reproduces Figure 2: the local-training latency breakdown of a
// memory-constrained client under three regimes — sufficient memory,
// limited memory with swapping, and limited memory with a sub-model
// (FedRolex) instead of swapping. Pure cost-model computation.
func Figure2(w Workload, s Scale, seed int64) *Report {
	rng := rand.New(rand.NewSource(seed))
	model := w.BuildLarge(s)(rng)
	cost := memmodel.MemReqModel(model, 8)
	// Median-bandwidth, median-performance device of the pool.
	dev := w.Pool[1] // TX2 / RX 6800: low-bandwidth representatives
	snap := device.Snapshot{Device: dev, AvailMemGB: dev.PeakMemGB, AvailPerf: dev.PeakTFLOPS * 0.5}

	iters := 30
	batch := 8
	pgd := 10
	flops := int64(iters) * memmodel.TrainingFLOPs(cost.ForwardFLOPs, batch, pgd)
	passes := int64(iters) * simlat.PassesPerBatch(pgd)

	sub := baselines.ExtractSubModel(model, 0.2, baselines.FedRolex, 0, rng)
	subCost := memmodel.MemReqModel(sub, 8)
	subFlops := int64(iters) * memmodel.TrainingFLOPs(subCost.ForwardFLOPs, batch, pgd)

	cases := []struct {
		name string
		work simlat.Work
	}{
		{"Suff. Mem", simlat.Work{FLOPs: flops, MemReq: cost.TotalBytes, MemBudget: cost.TotalBytes, Passes: passes, Swap: true}},
		{"Lim. w/ Swap", simlat.Work{FLOPs: flops, MemReq: cost.TotalBytes, MemBudget: cost.TotalBytes / 5, Passes: passes, Swap: true}},
		{"Lim. w/o Swap", simlat.Work{FLOPs: subFlops, MemReq: subCost.TotalBytes, MemBudget: cost.TotalBytes / 5, Passes: passes, Swap: false}},
	}
	rep := &Report{
		ID:     "Figure 2",
		Title:  fmt.Sprintf("Local training overhead breakdown, %s on %s", model.Label, w.Name),
		Header: []string{"Regime", "Compute (s)", "Data Access (s)", "Total (s)", "Data Access %"},
	}
	base := 0.0
	for _, c := range cases {
		lat := simlat.ClientLatency(c.work, snap)
		if base == 0 {
			base = lat.Total()
		}
		frac := 0.0
		if lat.Total() > 0 {
			frac = lat.DataAccess / lat.Total()
		}
		rep.Rows = append(rep.Rows, []string{
			c.name,
			fmt.Sprintf("%.3f", lat.Compute),
			fmt.Sprintf("%.3f", lat.DataAccess),
			fmt.Sprintf("%.3f", lat.Total()),
			pct(frac),
		})
	}
	return rep
}

// Figure6 reproduces Figure 6: the balanced/unbalanced availability
// distributions of the device fleets, and the peak training memory of jFAT
// vs FedProphet.
func Figure6(w Workload, s Scale, seed int64) *Report {
	rng := rand.New(rand.NewSource(seed))
	rep := &Report{
		ID:     "Figure 6",
		Title:  fmt.Sprintf("Device availability and memory consumption, %s", w.Name),
		Header: []string{"Quantity", "Value"},
	}
	for _, h := range []device.Heterogeneity{device.Balanced, device.Unbalanced} {
		fleet := device.NewFleet(w.Pool, 100, h, rng)
		var memSum, perfSum, memMin, perfMin float64
		memMin, perfMin = 1e18, 1e18
		for c := 0; c < 100; c++ {
			snap := fleet.Snapshot(c, rng)
			memSum += snap.AvailMemGB
			perfSum += snap.AvailPerf
			if snap.AvailMemGB < memMin {
				memMin = snap.AvailMemGB
			}
			if snap.AvailPerf < perfMin {
				perfMin = snap.AvailPerf
			}
		}
		rep.Rows = append(rep.Rows,
			[]string{fmt.Sprintf("%s mean avail mem (GB)", h), fmt.Sprintf("%.2f", memSum/100)},
			[]string{fmt.Sprintf("%s min avail mem (GB)", h), fmt.Sprintf("%.2f", memMin)},
			[]string{fmt.Sprintf("%s mean avail perf (TFLOPS)", h), fmt.Sprintf("%.2f", perfSum/100)},
			[]string{fmt.Sprintf("%s min avail perf (TFLOPS)", h), fmt.Sprintf("%.2f", perfMin)},
		)
	}

	model := w.BuildLarge(s)(rng)
	full := memmodel.MemReqModel(model, 8)
	casc := cascade.Partition(model, int64(0.2*float64(full.TotalBytes)), 8, rng)
	maxMod := int64(0)
	for i := range casc.Modules {
		if r := casc.ModuleMemReq(i); r > maxMod {
			maxMod = r
		}
	}
	rep.Rows = append(rep.Rows,
		[]string{"jFAT training memory (KB)", fmt.Sprintf("%.1f", float64(full.TotalBytes)/1024)},
		[]string{"FedProphet training memory (KB)", fmt.Sprintf("%.1f", float64(maxMod)/1024)},
		[]string{"memory reduction", pct(1 - float64(maxMod)/float64(full.TotalBytes))},
	)
	return rep
}

// Table2 formats the accuracy comparison across all methods for one setting.
func Table2(w Workload, h device.Heterogeneity, results []*fl.Result) *Report {
	rep := &Report{
		ID:     "Table 2",
		Title:  fmt.Sprintf("Accuracy under %s, %s", w.Name, h),
		Header: []string{"Method", "Clean Acc.", "PGD Acc.", "AA Acc."},
	}
	for _, r := range results {
		rep.Rows = append(rep.Rows, []string{r.Method, pct(r.CleanAcc), pct(r.PGDAcc), pct(r.AAAcc)})
	}
	return rep
}

// Figure7 formats the training-time comparison of the same runs.
func Figure7(w Workload, h device.Heterogeneity, results []*fl.Result) *Report {
	rep := &Report{
		ID:     "Figure 7",
		Title:  fmt.Sprintf("Training time under %s, %s", w.Name, h),
		Header: []string{"Method", "Compute (s)", "Data Access (s)", "Total (s)", "Speedup vs jFAT"},
	}
	var jfat float64
	for _, r := range results {
		if r.Method == "jFAT" {
			jfat = r.Latency.Total()
		}
	}
	for _, r := range results {
		speed := "-"
		if r.Latency.Total() > 0 && jfat > 0 {
			speed = fmt.Sprintf("%.1fx", jfat/r.Latency.Total())
		}
		rep.Rows = append(rep.Rows, []string{
			r.Method,
			fmt.Sprintf("%.3f", r.Latency.Compute),
			fmt.Sprintf("%.3f", r.Latency.DataAccess),
			fmt.Sprintf("%.3f", r.Latency.Total()),
			speed,
		})
	}
	return rep
}

// Figure8 reproduces Figure 8: the µ sweep's effect on adversarial accuracy
// and on the measured perturbation magnitude d*₁ = E[max‖Δz₁‖].
func Figure8(w Workload, s Scale, mus []float64, seed int64) *Report {
	rep := &Report{
		ID:     "Figure 8",
		Title:  fmt.Sprintf("Strong-convexity µ sweep, %s", w.Name),
		Header: []string{"mu", "Adv Acc.", "Clean Acc.", "pert L2 d*_1"},
	}
	for _, mu := range mus {
		opts := FedProphetOptions(w, s)
		opts.Mu = mu
		env := NewEnv(w, s, device.Balanced, seed)
		res := runMethod(core.New(opts), env)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.0e", mu), pct(res.PGDAcc), pct(res.CleanAcc),
			fmt.Sprintf("%.3f", res.Extra["pert_z1"]),
		})
	}
	return rep
}

// Figure9 reproduces Figure 9: module count and accuracy vs Rmin/Rmax.
func Figure9(w Workload, s Scale, fracs []float64, seed int64) *Report {
	rep := &Report{
		ID:     "Figure 9",
		Title:  fmt.Sprintf("Rmin sweep, %s", w.Name),
		Header: []string{"Rmin/Rmax", "Modules", "Clean Acc.", "Adv Acc."},
	}
	for _, f := range fracs {
		opts := FedProphetOptions(w, s)
		opts.RminFrac = f
		env := NewEnv(w, s, device.Balanced, seed)
		res := runMethod(core.New(opts), env)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%.1f", f),
			fmt.Sprintf("%.0f", res.Extra["modules"]),
			pct(res.CleanAcc), pct(res.PGDAcc),
		})
	}
	return rep
}

// Table3 reproduces Table 3: the APA × DMA ablation.
func Table3(w Workload, s Scale, h device.Heterogeneity, seed int64) *Report {
	rep := &Report{
		ID:     "Table 3",
		Title:  fmt.Sprintf("APA/DMA ablation, %s, %s", w.Name, h),
		Header: []string{"APA", "DMA", "Clean Acc.", "Adv Acc.", "Total time (s)"},
	}
	for _, combo := range []struct{ apa, dma bool }{
		{true, true}, {false, true}, {true, false}, {false, false},
	} {
		opts := FedProphetOptions(w, s)
		opts.UseAPA, opts.UseDMA = combo.apa, combo.dma
		env := NewEnv(w, s, h, seed)
		res := runMethod(core.New(opts), env)
		mark := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		rep.Rows = append(rep.Rows, []string{
			mark(combo.apa), mark(combo.dma), pct(res.CleanAcc), pct(res.PGDAcc),
			fmt.Sprintf("%.3f", res.Latency.Total()),
		})
	}
	return rep
}

// Figure10 reproduces Figure 10: the per-dimension perturbation trajectory
// across rounds under APA.
func Figure10(w Workload, s Scale, seed int64) *Report {
	opts := FedProphetOptions(w, s)
	env := NewEnv(w, s, device.Balanced, seed)
	res := runMethod(core.New(opts), env)
	rep := &Report{
		ID:     "Figure 10",
		Title:  fmt.Sprintf("Perturbation per dimension across rounds, %s", w.Name),
		Header: []string{"Round", "Module", "Pert. per Dim."},
	}
	for _, hh := range res.History {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", hh.Round),
			fmt.Sprintf("%d", hh.Module+1),
			fmt.Sprintf("%.5f", hh.PerDimPert),
		})
	}
	return rep
}

// Table4 reproduces Table 4: FedProphet training time with and without DMA.
func Table4(w Workload, s Scale, h device.Heterogeneity, seed int64) *Report {
	rep := &Report{
		ID:     "Table 4",
		Title:  fmt.Sprintf("Training time with/without DMA, %s, %s", w.Name, h),
		Header: []string{"Setting", "Total time (s)"},
	}
	for _, dma := range []bool{true, false} {
		opts := FedProphetOptions(w, s)
		opts.UseDMA = dma
		env := NewEnv(w, s, h, seed)
		res := runMethod(core.New(opts), env)
		name := "w/ DMA"
		if !dma {
			name = "w/o DMA"
		}
		rep.Rows = append(rep.Rows, []string{name, fmt.Sprintf("%.3f", res.Latency.Total())})
	}
	return rep
}

// PartitionTable reproduces Tables 7/8: the model partition at Rmin = 20%
// with per-module memory requirement and forward FLOPs.
func PartitionTable(w Workload, s Scale, seed int64) *Report {
	rng := rand.New(rand.NewSource(seed))
	model := w.BuildLarge(s)(rng)
	full := memmodel.MemReqModel(model, 8)
	casc := cascade.Partition(model, int64(0.2*float64(full.TotalBytes)), 8, rng)
	rep := &Report{
		ID:     "Tables 7/8",
		Title:  fmt.Sprintf("Model partition of %s at Rmin = 20%% (%d modules)", model.Label, len(casc.Modules)),
		Header: []string{"Module", "Atoms", "Mem Req (KB)", "Fwd MFLOPs"},
	}
	for i, m := range casc.Modules {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", len(m.Atoms)),
			fmt.Sprintf("%.1f", float64(casc.ModuleMemReq(i))/1024),
			fmt.Sprintf("%.2f", float64(casc.ModuleForwardFLOPs(i))/1e6),
		})
	}
	return rep
}

// DeviceTable prints the verbatim device pools (Tables 5/6).
func DeviceTable() []*Report {
	var reps []*Report
	for _, p := range []struct {
		id   string
		pool []device.Device
	}{
		{"Table 5 (CIFAR-10 pool)", device.CIFARPool()},
		{"Table 6 (Caltech-256 pool)", device.CaltechPool()},
	} {
		rep := &Report{
			ID:     p.id,
			Title:  "Device pool",
			Header: []string{"Device", "Performance (TFLOPS)", "Memory (GB)", "I/O Bandwidth (GB/s)"},
		}
		for _, d := range p.pool {
			rep.Rows = append(rep.Rows, []string{
				d.Name,
				fmt.Sprintf("%.1f", d.PeakTFLOPS),
				fmt.Sprintf("%.0f", d.PeakMemGB),
				fmt.Sprintf("%.1f", d.IOBandwidth),
			})
		}
		reps = append(reps, rep)
	}
	return reps
}
