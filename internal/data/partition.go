package data

import (
	"math"
	"math/rand"
	"sort"
)

// PartitionConfig describes the statistical heterogeneity of the federated
// split. The paper (§7.1, following Shah et al. 2021) uses MajorityFrac=0.8
// and ClassFrac=0.2: on each client 80% of the data comes from ~20% of the
// classes.
type PartitionConfig struct {
	NumClients   int
	MajorityFrac float64 // fraction of a client's data from its majority classes
	ClassFrac    float64 // fraction of all classes that are majority for a client
	Seed         int64
}

// DefaultPartition returns the paper's 80/20 configuration for n clients.
func DefaultPartition(n int, seed int64) PartitionConfig {
	return PartitionConfig{NumClients: n, MajorityFrac: 0.8, ClassFrac: 0.2, Seed: seed}
}

// PartitionNonIID splits ds into per-client subsets. Every sample is assigned
// to exactly one client. Each client receives ≈|D|/N samples, of which
// ≈MajorityFrac come from its own randomly chosen majority classes
// (⌈ClassFrac·K⌉ of them) as long as those class pools last, and the rest
// from the global remainder.
func PartitionNonIID(ds *Dataset, cfg PartitionConfig) []*Subset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.NumClients
	if n <= 0 {
		panic("data: NumClients must be positive")
	}
	k := ds.NumClasses
	numMajor := int(math.Ceil(cfg.ClassFrac * float64(k)))
	if numMajor < 1 {
		numMajor = 1
	}

	// Shuffled per-class index pools.
	pools := make([][]int, k)
	for i, y := range ds.Y {
		pools[y] = append(pools[y], i)
	}
	for c := range pools {
		rng.Shuffle(len(pools[c]), func(i, j int) {
			pools[c][i], pools[c][j] = pools[c][j], pools[c][i]
		})
	}

	// Choose majority classes per client.
	majors := make([][]int, n)
	perm := rng.Perm(k)
	pi := 0
	for c := 0; c < n; c++ {
		m := make([]int, 0, numMajor)
		for len(m) < numMajor {
			if pi == len(perm) {
				perm = rng.Perm(k)
				pi = 0
			}
			m = append(m, perm[pi])
			pi++
		}
		majors[c] = m
	}

	quota := ds.Len() / n
	majorQuota := int(math.Round(cfg.MajorityFrac * float64(quota)))
	subsets := make([]*Subset, n)
	for c := range subsets {
		subsets[c] = &Subset{Parent: ds}
	}

	// Pass 1: majority classes.
	for c := 0; c < n; c++ {
		need := majorQuota
		per := (need + len(majors[c]) - 1) / len(majors[c])
		for _, cls := range majors[c] {
			take := per
			if take > need {
				take = need
			}
			if take > len(pools[cls]) {
				take = len(pools[cls])
			}
			subsets[c].Indices = append(subsets[c].Indices, pools[cls][:take]...)
			pools[cls] = pools[cls][take:]
			need -= take
		}
	}

	// Pass 2: fill each client to its quota from the global remainder.
	var rest []int
	for c := 0; c < k; c++ {
		rest = append(rest, pools[c]...)
	}
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	ri := 0
	for c := 0; c < n; c++ {
		for len(subsets[c].Indices) < quota && ri < len(rest) {
			subsets[c].Indices = append(subsets[c].Indices, rest[ri])
			ri++
		}
	}
	// Distribute any leftovers round-robin so no sample is dropped.
	for c := 0; ri < len(rest); c = (c + 1) % n {
		subsets[c].Indices = append(subsets[c].Indices, rest[ri])
		ri++
	}
	for c := range subsets {
		sort.Ints(subsets[c].Indices)
	}
	return subsets
}

// ClassHistogram counts samples per class in a subset.
func ClassHistogram(s *Subset) []int {
	h := make([]int, s.Parent.NumClasses)
	for _, i := range s.Indices {
		h[s.Parent.Y[i]]++
	}
	return h
}

// MajorityMass returns the fraction of a subset's samples held by its top-m
// most frequent classes.
func MajorityMass(s *Subset, m int) float64 {
	h := ClassHistogram(s)
	sort.Sort(sort.Reverse(sort.IntSlice(h)))
	top := 0
	for i := 0; i < m && i < len(h); i++ {
		top += h[i]
	}
	if len(s.Indices) == 0 {
		return 0
	}
	return float64(top) / float64(len(s.Indices))
}

// SplitHoldout removes a fraction of ds into a held-out set (used as the
// server validation set for APA and the public distillation set for the KD
// baselines). Returns (remaining, holdout).
func SplitHoldout(ds *Dataset, frac float64, seed int64) (*Dataset, *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(ds.Len())
	nh := int(float64(ds.Len()) * frac)
	hold := &Dataset{Name: ds.Name + "-holdout", InShape: ds.InShape, NumClasses: ds.NumClasses}
	rem := &Dataset{Name: ds.Name, InShape: ds.InShape, NumClasses: ds.NumClasses}
	for i, id := range idx {
		if i < nh {
			hold.X = append(hold.X, ds.X[id])
			hold.Y = append(hold.Y, ds.Y[id])
		} else {
			rem.X = append(rem.X, ds.X[id])
			rem.Y = append(rem.Y, ds.Y[id])
		}
	}
	return rem, hold
}
