// Package data provides the synthetic image-classification datasets that
// stand in for CIFAR-10 and Caltech-256 (a deliberate paper-scale
// substitution; docs/ARCHITECTURE.md places the package in the layer map),
// the paper's 80%/20% non-IID federated partition, and batching utilities.
//
// Images are class-structured: each class owns a smooth spatial prototype
// (a sum of random low-frequency sinusoids per channel); a sample is a convex
// mixture of its class prototype with a random "confuser" class plus Gaussian
// pixel noise, clamped to [0,1]. Small CNNs reach high clean accuracy on
// these tasks while standard-trained models remain genuinely vulnerable to
// ℓ∞-bounded attacks, which is the property every FedProphet experiment
// depends on.
package data

import (
	"math"
	"math/rand"

	"fedprophet/internal/tensor"
)

// Dataset is an in-memory labelled image dataset.
type Dataset struct {
	Name       string
	X          []*tensor.Tensor // per-sample (C,H,W), values in [0,1]
	Y          []int
	InShape    []int
	NumClasses int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// SyntheticConfig controls synthetic dataset generation.
type SyntheticConfig struct {
	Name          string
	Classes       int
	Shape         []int // (C,H,W)
	TrainPerClass int
	TestPerClass  int
	NoiseStd      float64 // pixel noise σ
	MixMax        float64 // max confuser mixing coefficient
	Seed          int64
}

// CIFAR10SConfig returns the default CIFAR10-S surrogate configuration:
// 10 classes of 3×16×16 images.
func CIFAR10SConfig(trainPerClass, testPerClass int, seed int64) SyntheticConfig {
	return SyntheticConfig{
		Name: "CIFAR10-S", Classes: 10, Shape: []int{3, 16, 16},
		TrainPerClass: trainPerClass, TestPerClass: testPerClass,
		NoiseStd: 0.12, MixMax: 0.35, Seed: seed,
	}
}

// Caltech256SConfig returns the default Caltech256-S surrogate configuration:
// 32 classes of 3×24×24 images (scaled from 256 classes of 3×224×224).
func Caltech256SConfig(trainPerClass, testPerClass int, seed int64) SyntheticConfig {
	return SyntheticConfig{
		Name: "Caltech256-S", Classes: 32, Shape: []int{3, 24, 24},
		TrainPerClass: trainPerClass, TestPerClass: testPerClass,
		NoiseStd: 0.10, MixMax: 0.30, Seed: seed,
	}
}

type prototype struct {
	img []float64
}

// makePrototypes builds one smooth spatial pattern per class.
func makePrototypes(cfg SyntheticConfig, rng *rand.Rand) []prototype {
	c, h, w := cfg.Shape[0], cfg.Shape[1], cfg.Shape[2]
	protos := make([]prototype, cfg.Classes)
	for k := range protos {
		img := make([]float64, c*h*w)
		for ch := 0; ch < c; ch++ {
			// Sum of three random sinusoidal plane waves per channel.
			type wave struct{ fx, fy, phase, amp float64 }
			waves := make([]wave, 3)
			for i := range waves {
				waves[i] = wave{
					fx:    (rng.Float64()*2 - 1) * 3,
					fy:    (rng.Float64()*2 - 1) * 3,
					phase: rng.Float64() * 2 * math.Pi,
					amp:   0.10 + rng.Float64()*0.15,
				}
			}
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := 0.5
					for _, wv := range waves {
						v += wv.amp * math.Sin(2*math.Pi*(wv.fx*float64(x)/float64(w)+
							wv.fy*float64(y)/float64(h))+wv.phase)
					}
					img[ch*h*w+y*w+x] = v
				}
			}
		}
		protos[k] = prototype{img: img}
	}
	return protos
}

func sampleImage(cfg SyntheticConfig, protos []prototype, class int, rng *rand.Rand) *tensor.Tensor {
	n := len(protos[class].img)
	img := make([]float64, n)
	mix := rng.Float64() * cfg.MixMax
	other := rng.Intn(cfg.Classes)
	for other == class && cfg.Classes > 1 {
		other = rng.Intn(cfg.Classes)
	}
	po := protos[other].img
	pc := protos[class].img
	for i := 0; i < n; i++ {
		v := (1-mix)*pc[i] + mix*po[i] + rng.NormFloat64()*cfg.NoiseStd
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		img[i] = v
	}
	return tensor.FromSlice(img, cfg.Shape...)
}

// Generate produces a train/test pair from the configuration. The same seed
// always yields identical datasets.
func Generate(cfg SyntheticConfig) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := makePrototypes(cfg, rng)

	build := func(perClass int) *Dataset {
		d := &Dataset{
			Name:       cfg.Name,
			InShape:    append([]int(nil), cfg.Shape...),
			NumClasses: cfg.Classes,
		}
		for k := 0; k < cfg.Classes; k++ {
			for i := 0; i < perClass; i++ {
				d.X = append(d.X, sampleImage(cfg, protos, k, rng))
				d.Y = append(d.Y, k)
			}
		}
		// Shuffle so class blocks are interleaved.
		rng.Shuffle(len(d.X), func(i, j int) {
			d.X[i], d.X[j] = d.X[j], d.X[i]
			d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
		})
		return d
	}
	return build(cfg.TrainPerClass), build(cfg.TestPerClass)
}

// Subset is an index view into a parent dataset — the local data of one
// federated client.
type Subset struct {
	Parent  *Dataset
	Indices []int
}

// Len returns the number of samples in the subset.
func (s *Subset) Len() int { return len(s.Indices) }

// Batch stacks the samples at ds indices idx into a (B,C,H,W) tensor plus
// labels.
func Batch(ds *Dataset, idx []int) (*tensor.Tensor, []int) {
	if len(idx) == 0 {
		panic("data: empty batch")
	}
	shape := append([]int{len(idx)}, ds.InShape...)
	x := tensor.New(shape...)
	per := tensor.New(ds.InShape...).Len()
	labels := make([]int, len(idx))
	for i, id := range idx {
		copy(x.Data[i*per:(i+1)*per], ds.X[id].Data)
		labels[i] = ds.Y[id]
	}
	return x, labels
}

// Batches splits indices into shuffled batches of size bs (the last partial
// batch is kept if it has at least 2 samples, else dropped so batch norm
// stays well-defined).
func Batches(indices []int, bs int, rng *rand.Rand) [][]int {
	idx := append([]int(nil), indices...)
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	var out [][]int
	for start := 0; start < len(idx); start += bs {
		end := start + bs
		if end > len(idx) {
			end = len(idx)
		}
		if end-start >= 2 {
			out = append(out, idx[start:end])
		}
	}
	return out
}
