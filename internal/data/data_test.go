package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCfg(seed int64) SyntheticConfig {
	return SyntheticConfig{
		Name: "test", Classes: 4, Shape: []int{3, 8, 8},
		TrainPerClass: 25, TestPerClass: 5,
		NoiseStd: 0.1, MixMax: 0.3, Seed: seed,
	}
}

func TestGenerateShapesAndRanges(t *testing.T) {
	train, test := Generate(smallCfg(1))
	if train.Len() != 100 || test.Len() != 20 {
		t.Fatalf("sizes: train %d test %d", train.Len(), test.Len())
	}
	for _, x := range train.X {
		if x.Dim(0) != 3 || x.Dim(1) != 8 || x.Dim(2) != 8 {
			t.Fatalf("bad sample shape %v", x.Shape())
		}
		for _, v := range x.Data {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v outside [0,1]", v)
			}
		}
	}
	// Labels cover all classes.
	seen := map[int]bool{}
	for _, y := range train.Y {
		if y < 0 || y >= 4 {
			t.Fatalf("label %d out of range", y)
		}
		seen[y] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d classes present", len(seen))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(smallCfg(7))
	b, _ := Generate(smallCfg(7))
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.X[i].Data {
			if a.X[i].Data[j] != b.X[i].Data[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
	c, _ := Generate(smallCfg(8))
	same := true
	for j := range a.X[0].Data {
		if a.X[0].Data[j] != c.X[0].Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestClassesAreSeparated(t *testing.T) {
	// Mean intra-class distance should be well below mean inter-class
	// distance — otherwise the task would be unlearnable.
	train, _ := Generate(smallCfg(3))
	centroid := make([][]float64, 4)
	counts := make([]int, 4)
	dim := train.X[0].Len()
	for k := range centroid {
		centroid[k] = make([]float64, dim)
	}
	for i, x := range train.X {
		y := train.Y[i]
		counts[y]++
		for j, v := range x.Data {
			centroid[y][j] += v
		}
	}
	for k := range centroid {
		for j := range centroid[k] {
			centroid[k][j] /= float64(counts[k])
		}
	}
	dist := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return s
	}
	inter := 0.0
	n := 0
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			inter += dist(centroid[a], centroid[b])
			n++
		}
	}
	inter /= float64(n)
	intra := 0.0
	for i, x := range train.X {
		intra += dist(x.Data, centroid[train.Y[i]])
	}
	intra /= float64(train.Len())
	// Centroid spread must be a significant fraction of sample scatter.
	if inter < intra/20 {
		t.Fatalf("classes not separated: inter %g intra %g", inter, intra)
	}
}

func TestBatchStacksCorrectly(t *testing.T) {
	train, _ := Generate(smallCfg(2))
	x, y := Batch(train, []int{3, 7, 11})
	if x.Dim(0) != 3 || x.Dim(1) != 3 || x.Dim(2) != 8 || x.Dim(3) != 8 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if y[1] != train.Y[7] {
		t.Fatal("label order broken")
	}
	per := 3 * 8 * 8
	for j := 0; j < per; j++ {
		if x.Data[per+j] != train.X[7].Data[j] {
			t.Fatal("pixel data broken")
		}
	}
}

func TestBatchesCoverAndRespectSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idx := make([]int, 53)
	for i := range idx {
		idx[i] = i
	}
	bs := Batches(idx, 10, rng)
	seen := map[int]bool{}
	for _, b := range bs {
		if len(b) > 10 || len(b) < 2 {
			t.Fatalf("bad batch size %d", len(b))
		}
		for _, i := range b {
			if seen[i] {
				t.Fatal("duplicate index across batches")
			}
			seen[i] = true
		}
	}
	if len(seen) != 53 { // 53 = 5*10+3, final batch of 3 kept
		t.Fatalf("covered %d of 53", len(seen))
	}
}

func TestPartitionNonIIDBasicInvariants(t *testing.T) {
	train, _ := Generate(smallCfg(4))
	subs := PartitionNonIID(train, DefaultPartition(10, 99))
	if len(subs) != 10 {
		t.Fatalf("got %d subsets", len(subs))
	}
	seen := map[int]int{}
	total := 0
	for _, s := range subs {
		total += s.Len()
		for _, i := range s.Indices {
			seen[i]++
		}
	}
	if total != train.Len() {
		t.Fatalf("partition covers %d of %d samples", total, train.Len())
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d assigned %d times", i, c)
		}
	}
}

func TestPartitionNonIIDIsSkewed(t *testing.T) {
	cfg := SyntheticConfig{
		Name: "skew", Classes: 10, Shape: []int{1, 4, 4},
		TrainPerClass: 100, TestPerClass: 1,
		NoiseStd: 0.05, MixMax: 0.1, Seed: 5,
	}
	train, _ := Generate(cfg)
	subs := PartitionNonIID(train, DefaultPartition(20, 42))
	// With ClassFrac=0.2 → 2 majority classes per client; the top-2 classes
	// should hold roughly 80% of each client's data.
	low := 0
	for _, s := range subs {
		if MajorityMass(s, 2) < 0.6 {
			low++
		}
	}
	if low > 4 {
		t.Fatalf("%d of 20 clients insufficiently skewed", low)
	}
}

func TestPartitionNonIIDProperty(t *testing.T) {
	train, _ := Generate(smallCfg(6))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		subs := PartitionNonIID(train, DefaultPartition(n, seed))
		total := 0
		seen := map[int]bool{}
		for _, s := range subs {
			total += s.Len()
			for _, i := range s.Indices {
				if seen[i] || i < 0 || i >= train.Len() {
					return false
				}
				seen[i] = true
			}
		}
		return total == train.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitHoldout(t *testing.T) {
	train, _ := Generate(smallCfg(9))
	rem, hold := SplitHoldout(train, 0.1, 3)
	if hold.Len() != 10 || rem.Len() != 90 {
		t.Fatalf("sizes %d/%d", rem.Len(), hold.Len())
	}
	if rem.NumClasses != 4 || hold.NumClasses != 4 {
		t.Fatal("class count lost")
	}
}
