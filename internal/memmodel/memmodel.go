// Package memmodel estimates the memory requirement and computational cost
// of training a (sub)model, following the methodology of Rajbhandari et al.
// (2020) as adopted by FedProphet §6.1: the training memory of a module is
// the sum of model parameters, gradients, optimizer states, and intermediate
// activations. FLOPs counts come from the layers themselves.
package memmodel

import (
	"fedprophet/internal/nn"
)

// BytesPerScalar is the training precision assumed by the cost model
// (float32, as on the paper's edge devices). The Go implementation trains in
// float64 for numerical convenience; the cost model deliberately charges 4
// bytes to match the systems analysis.
const BytesPerScalar = 4

// Costs summarizes the training footprint of a model slice.
type Costs struct {
	ParamBytes      int64 // parameters + gradients + optimizer state
	ActivationBytes int64 // cached activations for one batch
	TotalBytes      int64
	ForwardFLOPs    int64 // one forward pass, one sample
}

// MemReq returns the bytes needed to train `layers` (treated as a cascade)
// on inputs of per-sample shape inShape with the given batch size.
//
// Parameters are charged three times (weight, gradient, momentum buffer of
// SGD). Activations are charged for the input plus every atom's output,
// which is what a backward pass must retain.
func MemReq(layers []nn.Layer, inShape []int, batch int) Costs {
	var c Costs
	params := 0
	for _, l := range layers {
		params += nn.NumParams(l)
	}
	c.ParamBytes = int64(params) * (1 + 1 + nn.OptimizerStatesPerParam) * BytesPerScalar

	elems := int64(prod(inShape))
	shape := inShape
	var flops int64
	for _, l := range layers {
		flops += l.ForwardFLOPs(shape)
		shape = l.OutShape(shape)
		elems += int64(prod(shape))
	}
	c.ActivationBytes = elems * int64(batch) * BytesPerScalar
	c.TotalBytes = c.ParamBytes + c.ActivationBytes
	c.ForwardFLOPs = flops
	return c
}

// MemReqModel is MemReq over all atoms of a model.
func MemReqModel(m *nn.Model, batch int) Costs {
	return MemReq(m.Atoms, m.InShape, batch)
}

// TrainingFLOPs returns the FLOPs of one local training iteration on a batch
// under PGD-n adversarial training: n attack iterations (forward + input
// backward) plus one training iteration (forward + full backward). The
// backward pass is charged at twice the forward cost, the standard
// approximation.
func TrainingFLOPs(forwardPerSample int64, batch, pgdSteps int) int64 {
	fwd := forwardPerSample * int64(batch)
	perPass := fwd + 2*fwd // forward + backward
	return int64(pgdSteps)*perPass + perPass
}

func prod(s []int) int {
	p := 1
	for _, v := range s {
		p *= v
	}
	return p
}
