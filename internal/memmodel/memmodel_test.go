package memmodel

import (
	"math/rand"
	"testing"

	"fedprophet/internal/nn"
)

func TestMemReqLinearLayerExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := nn.NewLinear(10, 5, rng)
	c := MemReq([]nn.Layer{l}, []int{10}, 4)
	// Params: 10*5 + 5 = 55; ×3 states ×4 bytes = 660.
	if c.ParamBytes != 660 {
		t.Fatalf("ParamBytes = %d, want 660", c.ParamBytes)
	}
	// Activations: input 10 + output 5 = 15 per sample ×4 batch ×4 bytes = 240.
	if c.ActivationBytes != 240 {
		t.Fatalf("ActivationBytes = %d, want 240", c.ActivationBytes)
	}
	if c.TotalBytes != 900 {
		t.Fatalf("TotalBytes = %d, want 900", c.TotalBytes)
	}
	// FLOPs: 2·10·5 = 100 per sample.
	if c.ForwardFLOPs != 100 {
		t.Fatalf("ForwardFLOPs = %d, want 100", c.ForwardFLOPs)
	}
}

func TestMemReqModelSumsAtoms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := nn.CNN3([]int{3, 16, 16}, 10, 4, rng)
	whole := MemReqModel(m, 8)

	// Sum of per-atom costs must reproduce the whole-model parameter bytes,
	// and activation bytes must add up after removing double-counted
	// module-boundary inputs.
	var paramSum int64
	for _, a := range m.Atoms {
		paramSum += int64(nn.NumParams(a)) * 3 * BytesPerScalar
	}
	if paramSum != whole.ParamBytes {
		t.Fatalf("per-atom params %d != whole %d", paramSum, whole.ParamBytes)
	}
	if whole.TotalBytes <= whole.ParamBytes {
		t.Fatal("activations must contribute")
	}
}

func TestLargerBatchMoreActivationMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := nn.CNN3([]int{3, 16, 16}, 10, 4, rng)
	small := MemReqModel(m, 4)
	large := MemReqModel(m, 32)
	if large.ActivationBytes != 8*small.ActivationBytes {
		t.Fatalf("activation bytes must scale linearly with batch: %d vs %d",
			small.ActivationBytes, large.ActivationBytes)
	}
	if small.ParamBytes != large.ParamBytes {
		t.Fatal("param bytes must not depend on batch")
	}
}

func TestVGG16SNeedsMoreThanCNN3(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := MemReqModel(nn.CNN3([]int{3, 16, 16}, 10, 8, rng), 16)
	large := MemReqModel(nn.VGG16S([]int{3, 16, 16}, 10, 8, rng), 16)
	if large.TotalBytes <= 2*small.TotalBytes {
		t.Fatalf("VGG16-S (%d) should dwarf CNN3 (%d)", large.TotalBytes, small.TotalBytes)
	}
}

func TestTrainingFLOPs(t *testing.T) {
	// forward = 100 FLOPs/sample, batch 2, PGD-3:
	// per pass = (100+200)*2 = 600; total = 3*600 + 600 = 2400.
	got := TrainingFLOPs(100, 2, 3)
	if got != 2400 {
		t.Fatalf("TrainingFLOPs = %d, want 2400", got)
	}
	// Standard training is the PGD-0 case.
	if TrainingFLOPs(100, 2, 0) != 600 {
		t.Fatal("PGD-0 should equal one training pass")
	}
}

func TestMemReqSubsliceIsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := nn.VGG16S([]int{3, 16, 16}, 10, 4, rng)
	prev := int64(0)
	shape := m.InShape
	for i := 1; i <= len(m.Atoms); i++ {
		c := MemReq(m.Atoms[:i], m.InShape, 8)
		if c.TotalBytes <= prev {
			t.Fatalf("prefix cost must strictly grow: atom %d cost %d prev %d", i, c.TotalBytes, prev)
		}
		prev = c.TotalBytes
		shape = m.Atoms[i-1].OutShape(shape)
	}
	_ = shape
}
