package quant

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
	}
	return v
}

// The streamed frame must be byte-identical to the buffered encoder's output
// for every chunk geometry, including degenerate tails and all-zero chunks.
func TestStreamEncoderMatchesEncode(t *testing.T) {
	cases := []struct {
		n, bits, chunk int
	}{
		{0, 8, 16}, {1, 8, 16}, {15, 4, 16}, {16, 4, 16}, {17, 4, 16},
		{1000, 8, 64}, {1000, 2, 7}, {333, 5, 100}, {256, 8, 256},
	}
	for _, c := range cases {
		v := randVec(c.n, int64(c.n*1000+c.bits*10+c.chunk))
		if c.n > 20 {
			for i := 20; i < 30 && i < c.n; i++ {
				v[i] = 0 // an all-zero region to hit scale-0 chunks at chunk=7
			}
		}
		want := Encode(QuantizeChunks(v, c.bits, c.chunk))
		var buf bytes.Buffer
		deq := make([]float64, c.n)
		if err := EncodeStream(&buf, v, c.bits, c.chunk, deq); err != nil {
			t.Fatalf("n=%d bits=%d chunk=%d: %v", c.n, c.bits, c.chunk, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("n=%d bits=%d chunk=%d: streamed bytes differ from Encode", c.n, c.bits, c.chunk)
		}
		wantDeq := QuantizeChunks(v, c.bits, c.chunk).Dequantize()
		for i := range deq {
			if deq[i] != wantDeq[i] {
				t.Fatalf("n=%d bits=%d chunk=%d: deq[%d] = %v, want %v", c.n, c.bits, c.chunk, i, deq[i], wantDeq[i])
			}
		}
	}
}

// Stream-decoding a buffered encoding must reproduce Dequantize exactly, and
// leave trailing bytes unread.
func TestStreamDecoderMatchesDequantize(t *testing.T) {
	v := randVec(777, 42)
	q := QuantizeChunks(v, 6, 50)
	frame := Encode(q)
	trailing := []byte{0xAA, 0xBB, 0xCC}
	r := bytes.NewReader(append(append([]byte(nil), frame...), trailing...))

	d, err := NewStreamDecoder(r)
	if err != nil {
		t.Fatal(err)
	}
	if d.IsRaw() || d.Bits() != 6 || d.Chunk() != 50 || d.Len() != 777 {
		t.Fatalf("header: bits=%d chunk=%d n=%d raw=%v", d.Bits(), d.Chunk(), d.Len(), d.IsRaw())
	}
	got := make([]float64, 777)
	off := 0
	for l := d.NextLen(); l > 0; l = d.NextLen() {
		if err := d.Next(got[off : off+l]); err != nil {
			t.Fatal(err)
		}
		off += l
	}
	if err := d.Next(nil); err != io.EOF {
		t.Fatalf("Next past end = %v, want io.EOF", err)
	}
	want := q.Dequantize()
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("value[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	rest, _ := io.ReadAll(r)
	if !bytes.Equal(rest, trailing) {
		t.Fatalf("decoder consumed trailing bytes: %x left, want %x", rest, trailing)
	}
}

// Raw frames stream too, in bounded blocks.
func TestStreamDecoderRawFrame(t *testing.T) {
	v := randVec(rawBlock*2+37, 7)
	frame := EncodeRaw(v)
	d, err := NewStreamDecoder(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsRaw() || d.Len() != len(v) {
		t.Fatalf("raw header: raw=%v n=%d", d.IsRaw(), d.Len())
	}
	got := make([]float64, len(v))
	if err := d.DecodeAll(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != v[i] {
			t.Fatalf("raw value[%d] = %v, want %v", i, got[i], v[i])
		}
	}
}

// Structural violations must wrap ErrCodec, never panic, matching Decode.
func TestStreamDecoderRejectsCorruption(t *testing.T) {
	v := randVec(100, 9)
	frame := Encode(QuantizeChunks(v, 8, 32))

	cases := map[string][]byte{
		"empty":          {},
		"short header":   frame[:10],
		"bad magic":      append([]byte("XXXX"), frame[4:]...),
		"bad version":    append(append([]byte(nil), frame[:4]...), append([]byte{99}, frame[5:]...)...),
		"truncated body": frame[:len(frame)-3],
		"bits 1":         append(append([]byte(nil), frame[:5]...), append([]byte{1}, frame[6:]...)...),
		"zero chunk":     func() []byte { b := append([]byte(nil), frame...); b[10], b[11], b[12], b[13] = 0, 0, 0, 0; return b }(),
		"raw with chunk": func() []byte { b := append([]byte(nil), frame...); b[5] = 0; return b }(),
		"NaN scale chunk": func() []byte {
			b := append([]byte(nil), frame...)
			for i := 14; i < 22; i++ {
				b[i] = 0xFF
			}
			return b
		}(),
	}
	for name, b := range cases {
		d, err := NewStreamDecoder(bytes.NewReader(b))
		if err == nil {
			dst := make([]float64, d.Len())
			err = d.DecodeAll(dst)
		}
		if !errors.Is(err, ErrCodec) {
			t.Fatalf("%s: error %v does not wrap ErrCodec", name, err)
		}
	}
}

// The encoder enforces exact chunk boundaries and completeness.
func TestStreamEncoderMisuse(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewStreamEncoder(&buf, 1, 16, 10); err == nil {
		t.Fatal("bits=1 accepted")
	}
	if _, err := NewStreamEncoder(&buf, 8, 0, 10); err == nil {
		t.Fatal("chunk=0 accepted")
	}
	e, err := NewStreamEncoder(&buf, 8, 16, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.WriteChunk(make([]float64, 7), nil); err == nil {
		t.Fatal("short chunk accepted")
	}
	if err := e.Close(); err == nil {
		t.Fatal("incomplete frame closed without error")
	}
	if err := e.WriteChunk(make([]float64, 16), nil); err != nil {
		t.Fatal(err)
	}
	if got := e.NextLen(); got != 4 {
		t.Fatalf("tail NextLen = %d, want 4", got)
	}
	if err := e.WriteChunk(make([]float64, 4), nil); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteChunk(make([]float64, 1), nil); err == nil {
		t.Fatal("write past end accepted")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// Steady-state streaming must reuse pooled scratch: encoding a second frame
// after a first should allocate (almost) nothing beyond the output buffer.
func TestStreamScratchPooled(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse; allocation counts are meaningless")
	}
	v := randVec(4096, 11)
	var buf bytes.Buffer
	// Warm the pool.
	if err := EncodeStream(&buf, v, 8, 256, nil); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), buf.Bytes()...)
	dst := make([]float64, len(v))
	allocs := testing.AllocsPerRun(50, func() {
		d, err := NewStreamDecoder(bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.DecodeAll(dst); err != nil {
			t.Fatal(err)
		}
	})
	// bytes.Reader + decoder struct + pool bookkeeping; the per-chunk code
	// buffers themselves must come from the pool.
	if allocs > 8 {
		t.Fatalf("stream decode allocates %.0f objects/frame, want ≤ 8 (scratch not pooled?)", allocs)
	}
}
