package quant

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The binary frame codec: a self-describing serialization of either a
// chunk-quantized vector (Encode) or an exact float64 vector (EncodeRaw),
// with a magic+version header so receivers can reject foreign or truncated
// bodies before touching the payload. docs/WIRE.md specifies the layout
// byte-for-byte for non-Go implementations.
//
//	[0:4)   magic "FPQ1"
//	[4:5)   version (currently 1)
//	[5:6)   bits — 0 for a raw float64 payload, 2..8 for packed codes
//	[6:10)  n, uint32 little-endian — number of float64 values
//	[10:14) chunk, uint32 little-endian — values per chunk (0 when bits = 0)
//	[14:)   payload:
//	        bits = 0:  n × float64 little-endian
//	        bits ≥ 2:  per chunk: float64 LE scale, then ceil(len·bits/8)
//	                   packed code bytes (chunks start on byte boundaries)
//
// A bits byte with the high flag bit set (0x80 | bits) marks the sparse
// top-k form, whose payload layout lives in sparse.go — receivers that
// predate it reject the flagged value as out of range instead of misparsing.
const (
	frameMagic      = "FPQ1"
	frameVersion    = 1
	frameHeaderSize = 14

	// RawBits is the bits field of an uncompressed float64 frame.
	RawBits = 0
)

// ErrCodec is the sentinel wrapped by every Decode error, so callers can
// distinguish malformed frames from transport failures with errors.Is.
var ErrCodec = errors.New("quant: bad frame")

// Frame is a decoded wire frame: an exact float64 vector (Bits == RawBits,
// Raw set), a dense chunk-quantized one (Bits ≥ 2, Q set), or a sparse
// top-k one (Bits ≥ 2, Sparse set — Bits is the base code width with the
// wire flag bit already stripped).
type Frame struct {
	Bits   int
	Chunk  int
	Raw    []float64  // when Bits == RawBits
	Q      Chunked    // when Bits ≥ 2 and Sparse == nil
	Sparse *SparseVec // when the frame is sparse
}

// IsRaw reports whether the frame carries exact float64 values.
func (f *Frame) IsRaw() bool { return f.Bits == RawBits }

// IsSparse reports whether the frame stores only selected coordinates.
func (f *Frame) IsSparse() bool { return f.Sparse != nil }

// Len returns the number of float64 values the frame describes.
func (f *Frame) Len() int {
	if f.IsSparse() {
		return f.Sparse.N
	}
	if f.IsRaw() {
		return len(f.Raw)
	}
	return f.Q.N
}

// Vector materializes the frame's values: a copy of Raw, the dequantized
// chunks, or the scatter of a sparse frame's stored values over zeros.
func (f *Frame) Vector() []float64 {
	if f.IsSparse() {
		return f.Sparse.Dequantize()
	}
	if f.IsRaw() {
		return append([]float64(nil), f.Raw...)
	}
	return f.Q.Dequantize()
}

// Encode serializes a chunk-quantized vector into a frame. The inverse of
// Decode: Decode(Encode(c)) yields a frame whose re-encoding is
// byte-identical. Panics on a structurally invalid Chunked (wrong scale or
// code lengths), which indicates a programming error, not wire corruption.
func Encode(c Chunked) []byte {
	if c.Bits < 2 || c.Bits > 8 {
		panic(fmt.Sprintf("quant: Encode: bits %d out of range", c.Bits))
	}
	nc := NumChunks(c.N, c.Chunk)
	if len(c.Scales) != nc {
		panic(fmt.Sprintf("quant: Encode: %d scales for %d chunks", len(c.Scales), nc))
	}
	total := quantPayloadSize(c.N, c.Chunk, c.Bits) - 8*int64(nc)
	if int64(len(c.Codes)) != total {
		panic(fmt.Sprintf("quant: Encode: %d code bytes, want %d", len(c.Codes), total))
	}
	buf := make([]byte, 0, c.Bytes())
	buf = appendHeader(buf, c.Bits, c.N, c.Chunk)
	off := 0
	for i := 0; i < nc; i++ {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Scales[i]))
		nb := codeBytes(chunkLen(c.N, c.Chunk, i), c.Bits)
		buf = append(buf, c.Codes[off:off+nb]...)
		off += nb
	}
	return buf
}

// EncodeRaw serializes v as an exact float64 frame (bits = RawBits) — the
// fallback body for receivers that did not negotiate compression, and the
// format of the server's global-model pulls when compression is off.
func EncodeRaw(v []float64) []byte {
	return AppendRaw(make([]byte, 0, frameHeaderSize+8*len(v)), v)
}

// AppendRaw appends v's exact float64 frame onto dst and returns the extended
// slice — EncodeRaw for callers embedding frames inside a larger record (the
// fldist write-ahead log frames every vector payload this way, so logged
// snapshots share the wire codec's byte-stable encoding and its corruption
// checks). The appended bytes are identical to EncodeRaw(v).
func AppendRaw(dst []byte, v []float64) []byte {
	dst = appendHeader(dst, RawBits, len(v), 0)
	for _, x := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// quantPayloadSize returns the quantized payload size (scales + packed
// codes) in closed form — O(1), since header fields are attacker-controlled
// and the size must be known before trusting (or looping over) anything.
func quantPayloadSize(n, chunk, bits int) int64 {
	nc := NumChunks(n, chunk)
	if nc == 0 {
		return 0
	}
	full := int64(nc - 1)
	last := chunkLen(n, chunk, nc-1)
	return full*int64(8+codeBytes(chunk, bits)) + int64(8+codeBytes(last, bits))
}

func appendHeader(buf []byte, bits, n, chunk int) []byte {
	if n > math.MaxUint32 {
		panic(fmt.Sprintf("quant: vector of %d values exceeds frame capacity", n))
	}
	buf = append(buf, frameMagic...)
	buf = append(buf, frameVersion, byte(bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(chunk))
	return buf
}

// Decode parses exactly one frame occupying all of b. Trailing bytes are an
// error; use DecodeFirst to parse a frame embedded in a larger message.
func Decode(b []byte) (*Frame, error) {
	f, rest, err := DecodeFirst(b)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after frame", ErrCodec, len(rest))
	}
	return f, nil
}

// DecodeFirst parses the frame at the head of b and returns it together
// with the remaining bytes. All structural violations — short buffer, wrong
// magic, unknown version, bits outside {0, 2..8}, zero chunk on a quantized
// frame, truncated payload, non-finite scale — return an error wrapping
// ErrCodec; no input panics.
func DecodeFirst(b []byte) (*Frame, []byte, error) {
	if len(b) < frameHeaderSize {
		return nil, nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrCodec, len(b), frameHeaderSize)
	}
	if string(b[:4]) != frameMagic {
		return nil, nil, fmt.Errorf("%w: magic %q, want %q", ErrCodec, b[:4], frameMagic)
	}
	if b[4] != frameVersion {
		return nil, nil, fmt.Errorf("%w: version %d, want %d", ErrCodec, b[4], frameVersion)
	}
	bits := int(b[5])
	n := int(binary.LittleEndian.Uint32(b[6:10]))
	chunk := int(binary.LittleEndian.Uint32(b[10:14]))
	body := b[frameHeaderSize:]

	if bits&sparseFlag != 0 {
		base := bits &^ sparseFlag
		if base < 2 || base > 8 {
			return nil, nil, fmt.Errorf("%w: sparse bits %d outside [2,8]", ErrCodec, base)
		}
		if chunk < 1 {
			return nil, nil, fmt.Errorf("%w: sparse frame with chunk %d", ErrCodec, chunk)
		}
		s, rest, err := decodeSparseBody(body, base, n, chunk)
		if err != nil {
			return nil, nil, err
		}
		return &Frame{Bits: base, Chunk: chunk, Sparse: s}, rest, nil
	}

	if bits == RawBits {
		if chunk != 0 {
			return nil, nil, fmt.Errorf("%w: raw frame with chunk %d", ErrCodec, chunk)
		}
		need := int64(8) * int64(n)
		if int64(len(body)) < need {
			return nil, nil, fmt.Errorf("%w: raw payload %d bytes, want %d", ErrCodec, len(body), need)
		}
		f := &Frame{Bits: RawBits, Raw: make([]float64, n)}
		for i := range f.Raw {
			f.Raw[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
		}
		return f, body[need:], nil
	}

	if bits < 2 || bits > 8 {
		return nil, nil, fmt.Errorf("%w: bits %d outside {0, 2..8}", ErrCodec, bits)
	}
	if chunk < 1 {
		return nil, nil, fmt.Errorf("%w: quantized frame with chunk %d", ErrCodec, chunk)
	}
	nc := NumChunks(n, chunk)
	need := quantPayloadSize(n, chunk, bits)
	if int64(len(body)) < need {
		return nil, nil, fmt.Errorf("%w: quantized payload %d bytes, want %d", ErrCodec, len(body), need)
	}
	f := &Frame{
		Bits:  bits,
		Chunk: chunk,
		Q: Chunked{
			Bits:   bits,
			Chunk:  chunk,
			N:      n,
			Scales: make([]float64, nc),
			Codes:  make([]byte, need-8*int64(nc)),
		},
	}
	src, dst := 0, 0
	for i := 0; i < nc; i++ {
		s := math.Float64frombits(binary.LittleEndian.Uint64(body[src:]))
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			return nil, nil, fmt.Errorf("%w: chunk %d scale %v not a finite non-negative value", ErrCodec, i, s)
		}
		f.Q.Scales[i] = s
		src += 8
		nb := codeBytes(chunkLen(n, chunk, i), bits)
		copy(f.Q.Codes[dst:dst+nb], body[src:src+nb])
		src += nb
		dst += nb
	}
	return f, body[need:], nil
}
